// Command telemetry-lint validates a telemetry JSONL event stream written
// by -telemetry-out: it decodes every line against the event schema and
// prints per-kind counts. A file that is empty, has undecodable lines, or
// contains unknown event kinds fails with a non-zero exit, so the stream
// format stays machine-readable (make telemetry-smoke relies on this).
//
// Usage:
//
//	telemetry-lint events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lbchat/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry-lint: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: telemetry-lint <events.jsonl>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected exactly one input file")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no events", path)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Kind()]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("%s: %d events, %d kinds\n", path, len(events), len(kinds))
	for _, k := range kinds {
		fmt.Printf("  %-20s %d\n", k, counts[k])
	}
	return nil
}
