// Command telemetry-lint validates a telemetry JSONL event stream written
// by -telemetry-out: it decodes every line against the event schema and
// prints per-kind counts. A file that is empty, has undecodable lines, or
// contains unknown event kinds fails with a non-zero exit, so the stream
// format stays machine-readable (make telemetry-smoke relies on this).
//
// With -summary it additionally validates a summary CSV dump (from
// lbchat-sim -summary-out) against the canonical metric-name registry, so
// counters added by new subsystems — e.g. the trace.chunk_* fetch-pipeline
// counters remote-streamed runs emit — are caught if they drift from
// telemetry.KnownMetrics.
//
// Usage:
//
//	telemetry-lint events.jsonl
//	telemetry-lint -summary summary.csv events.jsonl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"lbchat/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry-lint: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	summaryPath := flag.String("summary", "",
		"also validate this summary CSV (lbchat-sim -summary-out) against the canonical metric names")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: telemetry-lint [-summary summary.csv] <events.jsonl>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected exactly one input file")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no events", path)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Kind()]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("%s: %d events, %d kinds\n", path, len(events), len(kinds))
	for _, k := range kinds {
		fmt.Printf("  %-20s %d\n", k, counts[k])
	}
	if *summaryPath != "" {
		return lintSummary(*summaryPath)
	}
	return nil
}

// lintSummary validates a Registry.WriteCSV dump: every row must be
// counter/hist, name a canonical metric (or a dynamic per-fault counter),
// and carry a numeric value.
func lintSummary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	known := map[string]bool{}
	for _, name := range telemetry.KnownMetrics() {
		known[name] = true
	}
	names := map[string]bool{}
	rows := 0
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return fmt.Errorf("%s:%d: %d fields, want 4 (kind,name,label,value)", path, line, len(parts))
		}
		kind, name, value := parts[0], parts[1], parts[3]
		if kind != "counter" && kind != "hist" {
			return fmt.Errorf("%s:%d: unknown row kind %q", path, line, kind)
		}
		if !known[name] && !strings.HasPrefix(name, "fault.") {
			return fmt.Errorf("%s:%d: metric %q is not in telemetry.KnownMetrics", path, line, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("%s:%d: non-numeric value %q", path, line, value)
		}
		names[name] = true
		rows++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rows == 0 {
		return fmt.Errorf("%s: no summary rows", path)
	}
	fmt.Printf("%s: %d rows, %d metrics, all canonical\n", path, rows, len(names))
	return nil
}
