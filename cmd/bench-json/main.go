// Command bench-json converts `go test -bench -benchmem` output on stdin
// into a stable JSON document mapping each benchmark name to its ns/op,
// B/op and allocs/op. make bench-json pipes the spatial hot-path
// benchmarks through it to produce BENCH_PR4.json, the baseline that
// cmd/bench-compare diffs candidate runs against in CI.
//
// Usage:
//
//	go test -bench . -benchmem ./... | bench-json -o BENCH.json
package main

import (
	"flag"
	"fmt"
	"os"

	"lbchat/internal/benchjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: go test -bench . -benchmem ./... | bench-json [-o file.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments %v; benchmark output is read from stdin", flag.Args())
	}

	file, err := benchjson.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(file) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	data, err := file.Marshal()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench-json: wrote %d benchmarks to %s\n", len(file), *out)
	return nil
}
