// Command bench-json converts `go test -bench -benchmem` output on stdin
// into a stable JSON document mapping each benchmark name to its ns/op,
// B/op and allocs/op. make bench-json pipes the hot-path benchmarks
// through it to produce the committed baseline that cmd/bench-compare
// diffs candidate runs against in CI.
//
// With -append-history the same result set is also appended as one JSONL
// line to a persistent history file (BENCH_HISTORY.jsonl in this repo),
// labelled by -label, so bench-compare -history can report ns/op trends
// across runs instead of only one pairwise diff.
//
// Usage:
//
//	go test -bench . -benchmem ./... | bench-json -o BENCH.json \
//	    -append-history BENCH_HISTORY.jsonl -label pr6
package main

import (
	"flag"
	"fmt"
	"os"

	"lbchat/internal/benchjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output file (default stdout)")
	history := flag.String("append-history", "", "also append the results as one JSONL line to this history file")
	label := flag.String("label", "local", "run label recorded in the history entry")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: go test -bench . -benchmem ./... | bench-json [-o file.json] [-append-history hist.jsonl -label run]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments %v; benchmark output is read from stdin", flag.Args())
	}

	file, err := benchjson.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(file) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	data, err := file.Marshal()
	if err != nil {
		return err
	}
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench-json: wrote %d benchmarks to %s\n", len(file), *out)
	}
	if *history != "" {
		if err := benchjson.AppendHistory(*history, *label, file); err != nil {
			return fmt.Errorf("appending history: %w", err)
		}
		fmt.Fprintf(os.Stderr, "bench-json: appended entry %q to %s\n", *label, *history)
	}
	return nil
}
