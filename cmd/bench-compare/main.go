// Command bench-compare diffs two benchmark JSON files written by
// cmd/bench-json and exits non-zero when a hot path regresses. Hot paths
// are named with -hot as comma-separated substrings of benchmark names;
// a hot benchmark fails the run when its ns/op grows by more than
// -threshold percent over the baseline, or when it disappeared from the
// candidate file. Everything else is reported for context but never fails,
// so noisy cold benchmarks cannot block CI.
//
// Usage:
//
//	bench-compare -hot 'CandidatePairs,WorldTick' baseline.json candidate.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbchat/internal/benchjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	hot := flag.String("hot", "", "comma-separated substrings naming hot-path benchmarks that must not regress")
	threshold := flag.Float64("threshold", 15, "maximum allowed ns/op growth for hot paths, in percent")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bench-compare [-hot a,b] [-threshold pct] <baseline.json> <candidate.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return fmt.Errorf("expected a baseline and a candidate file")
	}

	baseline, err := benchjson.Load(flag.Arg(0))
	if err != nil {
		return err
	}
	candidate, err := benchjson.Load(flag.Arg(1))
	if err != nil {
		return err
	}

	var patterns []string
	for _, p := range strings.Split(*hot, ",") {
		if p = strings.TrimSpace(p); p != "" {
			patterns = append(patterns, p)
		}
	}

	deltas, regressions := benchjson.Compare(baseline, candidate, patterns, *threshold)
	for _, d := range deltas {
		mark := " "
		if d.Hot {
			mark = "*"
		}
		fmt.Printf("%s %-60s %12.0f -> %12.0f ns/op  %+7.1f%%\n", mark, d.Name, d.Old, d.New, d.Pct)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d hot-path regression(s) beyond %+.1f%%", len(regressions), *threshold)
	}
	fmt.Printf("ok: %d benchmarks compared, no hot-path regression beyond %+.1f%% (hot: %s)\n",
		len(deltas), *threshold, strings.Join(patterns, ", "))
	return nil
}
