// Command bench-compare diffs two benchmark JSON files written by
// cmd/bench-json and exits non-zero when a hot path regresses. Hot paths
// are named with -hot as comma-separated substrings of benchmark names;
// a hot benchmark fails the run when its ns/op grows by more than
// -threshold percent over the baseline, or when it disappeared from the
// candidate file. Everything else is reported for context but never fails,
// so noisy cold benchmarks cannot block CI.
//
// With -history the trend of every hot-path benchmark across the JSONL
// history file (written by bench-json -append-history) is printed after
// the pairwise diff, so a slow drift that stays under the per-run
// threshold is still visible.
//
// Usage:
//
//	bench-compare -hot 'CandidatePairs,WorldTick' -history BENCH_HISTORY.jsonl baseline.json candidate.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbchat/internal/benchjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	hot := flag.String("hot", "", "comma-separated substrings naming hot-path benchmarks that must not regress")
	threshold := flag.Float64("threshold", 15, "maximum allowed ns/op growth for hot paths, in percent")
	historyPath := flag.String("history", "", "JSONL history file; prints hot-path ns/op trends across its entries")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bench-compare [-hot a,b] [-threshold pct] [-history hist.jsonl] <baseline.json> <candidate.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return fmt.Errorf("expected a baseline and a candidate file")
	}

	baseline, err := benchjson.Load(flag.Arg(0))
	if err != nil {
		return err
	}
	candidate, err := benchjson.Load(flag.Arg(1))
	if err != nil {
		return err
	}

	var patterns []string
	for _, p := range strings.Split(*hot, ",") {
		if p = strings.TrimSpace(p); p != "" {
			patterns = append(patterns, p)
		}
	}

	deltas, regressions := benchjson.Compare(baseline, candidate, patterns, *threshold)
	for _, d := range deltas {
		mark := " "
		if d.Hot {
			mark = "*"
		}
		fmt.Printf("%s %-60s %12.0f -> %12.0f ns/op  %+7.1f%%\n", mark, d.Name, d.Old, d.New, d.Pct)
	}
	if *historyPath != "" {
		if err := printTrends(*historyPath, patterns); err != nil {
			return err
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d hot-path regression(s) beyond %+.1f%%", len(regressions), *threshold)
	}
	fmt.Printf("ok: %d benchmarks compared, no hot-path regression beyond %+.1f%% (hot: %s)\n",
		len(deltas), *threshold, strings.Join(patterns, ", "))
	return nil
}

// printTrends renders each hot benchmark's ns/op series across the history
// file, oldest entry first, with the cumulative drift from the first to the
// last entry that recorded it. The trend is advisory: it never fails the
// run, it exists to make slow drift visible before it trips the threshold.
func printTrends(path string, patterns []string) error {
	entries, err := benchjson.LoadHistory(path)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Printf("\nhistory %s: no entries yet\n", path)
		return nil
	}
	labels := make([]string, len(entries))
	for i, e := range entries {
		labels[i] = e.Label
	}
	fmt.Printf("\nhot-path trend across %d history entries (%s):\n", len(entries), strings.Join(labels, " -> "))
	for _, row := range benchjson.Trend(entries, patterns) {
		var cells []string
		first, last := -1.0, -1.0
		for i, ok := range row.Present {
			if !ok {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.0f", row.Vals[i]))
			if first < 0 {
				first = row.Vals[i]
			}
			last = row.Vals[i]
		}
		drift := ""
		if first > 0 && last >= 0 {
			drift = fmt.Sprintf("  (%+.1f%%)", (last-first)/first*100)
		}
		fmt.Printf("  %-60s %s ns/op%s\n", row.Name, strings.Join(cells, " -> "), drift)
	}
	return nil
}
