// Command lbchat-bench regenerates the paper's tables and figures
// end-to-end: it builds the driving world, collects per-vehicle datasets,
// records mobility traces, trains fleets under every protocol, and prints
// each artifact in the paper's layout.
//
// Usage:
//
//	lbchat-bench -exp all -scale bench
//	lbchat-bench -exp fig2a,tab2 -scale full
//
// Experiments: fig2a fig2b recvrate tab2 tab3 tab4 tab5 tab6 tab7 fig3 all.
// Scales: test (seconds), bench (minutes), full (paper scale: 32 vehicles).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbchat/internal/experiments"
	"lbchat/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lbchat-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	expFlag := flag.String("exp", "all", "comma-separated experiments: fig2a,fig2b,recvrate,tab2,tab3,tab4,tab5,tab6,tab7,fig3,all; extensions: routeshare,methods,adaptive,hetero,quant")
	scaleFlag := flag.String("scale", "bench", "experiment scale: test, bench, or full")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "test":
		scale = experiments.TestScale()
	case "bench":
		scale = experiments.BenchScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	fmt.Printf("Building environment (scale=%s: %d vehicles, %d frames/vehicle, %.0fs training)...\n",
		scale.Name, scale.Vehicles, scale.CollectTicks, scale.TrainDuration)
	env, err := experiments.BuildEnv(scale)
	if err != nil {
		return err
	}

	// Fig. 2 runs are shared with Tables II/III and the receive rates.
	var runsLossless, runsLossy []*experiments.Run
	needLossless := selected("fig2a") || selected("tab2")
	needLossy := selected("fig2b") || selected("tab3") || selected("recvrate")

	if needLossless {
		fmt.Println("\n== Training all protocols (W/O wireless loss)...")
		if runsLossless, err = env.Fig2(true); err != nil {
			return err
		}
	}
	if needLossy {
		fmt.Println("\n== Training all protocols (W wireless loss)...")
		if runsLossy, err = env.Fig2(false); err != nil {
			return err
		}
	}

	plot := func(runs []*experiments.Run) string {
		curves := make([]*metrics.Curve, len(runs))
		for i := range runs {
			curves[i] = &runs[i].Curve
		}
		return metrics.PlotCurves(72, 18, curves...)
	}
	if selected("fig2a") {
		fmt.Println("\n=== Figure 2(a): training loss vs time, W/O wireless loss ===")
		fmt.Print(plot(runsLossless))
		fmt.Print(experiments.RenderCurves(runsLossless))
	}
	if selected("fig2b") {
		fmt.Println("\n=== Figure 2(b): training loss vs time, W wireless loss ===")
		fmt.Print(plot(runsLossy))
		fmt.Print(experiments.RenderCurves(runsLossy))
	}
	if selected("recvrate") {
		fmt.Println("\n=== §IV-C: successful model receiving rate ===")
		fmt.Print(experiments.RenderReceiveRates(experiments.ReceiveRates(runsLossy)))
	}
	if selected("tab2") {
		fmt.Println("\n=== Table II (driving success rate, W/O wireless loss) ===")
		rates := env.SuccessRates(runsLossless)
		fmt.Print(env.SuccessTable("", experiments.BenchmarkProtocols, rates).Render())
	}
	if selected("tab3") {
		fmt.Println("\n=== Table III (driving success rate, W wireless loss) ===")
		rates := env.SuccessRates(runsLossy)
		fmt.Print(env.SuccessTable("", experiments.BenchmarkProtocols, rates).Render())
	}
	if selected("tab4") {
		fmt.Println("\n=== Table IV (coreset-size sweep) ===")
		tbl, err := env.Table4()
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if selected("tab5") {
		fmt.Println("\n=== Table V (equal compression ablation) ===")
		tbl, err := env.Table5()
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if selected("tab6") {
		fmt.Println("\n=== Table VI (average aggregation ablation) ===")
		tbl, err := env.Table6()
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if selected("tab7") {
		fmt.Println("\n=== Table VII (sharing coreset only) ===")
		tbl, err := env.Table7()
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if want["routeshare"] {
		fmt.Println("\n=== Extension: route-sharing (Eq. 5) ablation ===")
		tbl, err := env.RouteSharingStudy()
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if want["methods"] {
		fmt.Println("\n=== Extension: coreset construction methods (§V) ===")
		tbl, err := env.CoresetMethodStudy(true)
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if want["hetero"] {
		fmt.Println("\n=== Extension: bandwidth heterogeneity (footnote 1 future work) ===")
		tbl, err := env.HeterogeneityStudy(true)
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if want["quant"] {
		fmt.Println("\n=== Extension: compression schemes (top-k vs quantization) ===")
		tbl, err := env.CompressionSchemeStudy(true)
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if want["adaptive"] {
		fmt.Println("\n=== Extension: adaptive coreset sizing (future work) ===")
		tbl, err := env.AdaptiveCoresetStudy(true)
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
	}
	if selected("fig3") {
		fmt.Println("\n=== Figure 3 (LbChat vs SCO) ===")
		lb, sco, ratio, err := env.Fig3(true)
		if err != nil {
			return err
		}
		fmt.Print(metrics.PlotCurves(72, 18, &lb.Curve, &sco.Curve))
		fmt.Print(lb.Curve.Render())
		fmt.Print(sco.Curve.Render())
		fmt.Printf("SCO convergence slowdown vs LbChat: %.2fx (paper: 1.5-1.8x)\n", ratio)
	}
	return nil
}
