// Command lbchat-bench regenerates the paper's tables and figures
// end-to-end: it builds the driving world, collects per-vehicle datasets,
// records mobility traces, trains fleets under every protocol, and prints
// each artifact in the paper's layout.
//
// Usage:
//
//	lbchat-bench -exp all -scale bench
//	lbchat-bench -exp fig2a,tab2 -scale full -workers 8
//	lbchat-bench -speedup -workers 4
//
// Experiments: fig2a fig2b recvrate tab2 tab3 tab4 tab5 tab6 tab7 fig3 all.
// Scales: test (seconds), bench (minutes), full (paper scale: 32 vehicles).
// Every experiment reports its wall-clock time; -speedup additionally
// calibrates the configured worker count against the serial baseline on one
// LbChat training run. Results are bit-identical at every -workers setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lbchat/internal/experiments"
	"lbchat/internal/metrics"
	"lbchat/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lbchat-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	expFlag := flag.String("exp", "all", "comma-separated experiments: fig2a,fig2b,recvrate,tab2,tab3,tab4,tab5,tab6,tab7,fig3,all; extensions: routeshare,methods,adaptive,hetero,quant")
	scaleFlag := flag.String("scale", "bench", "experiment scale: test, bench, or full")
	workersFlag := flag.Int("workers", 0, "parallel workers at every level (0 = one per CPU, 1 = serial); results are bit-identical at any setting")
	speedupFlag := flag.Bool("speedup", false, "measure the -workers speedup vs the serial baseline on one LbChat run, then exit")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "test":
		scale = experiments.TestScale()
	case "bench":
		scale = experiments.BenchScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	scale.Workers = *workersFlag
	tensor.SetWorkers(*workersFlag)

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	fmt.Printf("Building environment (scale=%s: %d vehicles, %d frames/vehicle, %.0fs training, workers=%s)...\n",
		scale.Name, scale.Vehicles, scale.CollectTicks, scale.TrainDuration, workersLabel(*workersFlag))
	buildStart := time.Now()
	env, err := experiments.BuildEnv(scale)
	if err != nil {
		return err
	}
	fmt.Printf("-- environment built in %s\n", time.Since(buildStart).Round(time.Millisecond))

	if *speedupFlag {
		return measureSpeedup(env, *workersFlag)
	}

	// timed runs one experiment and reports its wall-clock, so scale and
	// worker-count choices can be compared run to run.
	timed := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("-- %s finished in %s\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	renderTable := func(name, header string, build func() (*metrics.Table, error)) error {
		return timed(name, func() error {
			fmt.Printf("\n=== %s ===\n", header)
			tbl, err := build()
			if err != nil {
				return err
			}
			fmt.Print(tbl.Render())
			return nil
		})
	}

	// Fig. 2 runs are shared with Tables II/III and the receive rates.
	var runsLossless, runsLossy []*experiments.Run
	needLossless := selected("fig2a") || selected("tab2")
	needLossy := selected("fig2b") || selected("tab3") || selected("recvrate")

	if needLossless {
		fmt.Println("\n== Training all protocols (W/O wireless loss)...")
		if err := timed("training (W/O wireless loss)", func() error {
			runsLossless, err = env.Fig2(true)
			return err
		}); err != nil {
			return err
		}
	}
	if needLossy {
		fmt.Println("\n== Training all protocols (W wireless loss)...")
		if err := timed("training (W wireless loss)", func() error {
			runsLossy, err = env.Fig2(false)
			return err
		}); err != nil {
			return err
		}
	}

	plot := func(runs []*experiments.Run) string {
		curves := make([]*metrics.Curve, len(runs))
		for i := range runs {
			curves[i] = &runs[i].Curve
		}
		return metrics.PlotCurves(72, 18, curves...)
	}
	if selected("fig2a") {
		fmt.Println("\n=== Figure 2(a): training loss vs time, W/O wireless loss ===")
		fmt.Print(plot(runsLossless))
		fmt.Print(experiments.RenderCurves(runsLossless))
	}
	if selected("fig2b") {
		fmt.Println("\n=== Figure 2(b): training loss vs time, W wireless loss ===")
		fmt.Print(plot(runsLossy))
		fmt.Print(experiments.RenderCurves(runsLossy))
	}
	if selected("recvrate") {
		fmt.Println("\n=== §IV-C: successful model receiving rate ===")
		fmt.Print(experiments.RenderReceiveRates(experiments.ReceiveRates(runsLossy)))
	}
	if selected("tab2") {
		if err := timed("Table II", func() error {
			fmt.Println("\n=== Table II (driving success rate, W/O wireless loss) ===")
			rates := env.SuccessRates(runsLossless)
			fmt.Print(env.SuccessTable("", experiments.BenchmarkProtocols, rates).Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if selected("tab3") {
		if err := timed("Table III", func() error {
			fmt.Println("\n=== Table III (driving success rate, W wireless loss) ===")
			rates := env.SuccessRates(runsLossy)
			fmt.Print(env.SuccessTable("", experiments.BenchmarkProtocols, rates).Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if selected("tab4") {
		if err := renderTable("Table IV", "Table IV (coreset-size sweep)", env.Table4); err != nil {
			return err
		}
	}
	if selected("tab5") {
		if err := renderTable("Table V", "Table V (equal compression ablation)", env.Table5); err != nil {
			return err
		}
	}
	if selected("tab6") {
		if err := renderTable("Table VI", "Table VI (average aggregation ablation)", env.Table6); err != nil {
			return err
		}
	}
	if selected("tab7") {
		if err := renderTable("Table VII", "Table VII (sharing coreset only)", env.Table7); err != nil {
			return err
		}
	}
	if want["routeshare"] {
		if err := renderTable("route-sharing study", "Extension: route-sharing (Eq. 5) ablation", env.RouteSharingStudy); err != nil {
			return err
		}
	}
	if want["methods"] {
		if err := renderTable("coreset-method study", "Extension: coreset construction methods (§V)",
			func() (*metrics.Table, error) { return env.CoresetMethodStudy(true) }); err != nil {
			return err
		}
	}
	if want["hetero"] {
		if err := renderTable("heterogeneity study", "Extension: bandwidth heterogeneity (footnote 1 future work)",
			func() (*metrics.Table, error) { return env.HeterogeneityStudy(true) }); err != nil {
			return err
		}
	}
	if want["quant"] {
		if err := renderTable("compression-scheme study", "Extension: compression schemes (top-k vs quantization)",
			func() (*metrics.Table, error) { return env.CompressionSchemeStudy(true) }); err != nil {
			return err
		}
	}
	if want["adaptive"] {
		if err := renderTable("adaptive-coreset study", "Extension: adaptive coreset sizing (future work)",
			func() (*metrics.Table, error) { return env.AdaptiveCoresetStudy(true) }); err != nil {
			return err
		}
	}
	if selected("fig3") {
		if err := timed("Figure 3", func() error {
			fmt.Println("\n=== Figure 3 (LbChat vs SCO) ===")
			lb, sco, ratio, err := env.Fig3(true)
			if err != nil {
				return err
			}
			fmt.Print(metrics.PlotCurves(72, 18, &lb.Curve, &sco.Curve))
			fmt.Print(lb.Curve.Render())
			fmt.Print(sco.Curve.Render())
			fmt.Printf("SCO convergence slowdown vs LbChat: %.2fx (paper: 1.5-1.8x)\n", ratio)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// measureSpeedup trains one LbChat fleet serially and again at the
// configured worker count, verifies the two runs agree bit for bit, and
// reports the wall-clock ratio.
func measureSpeedup(env *experiments.Env, workers int) error {
	runOnce := func(w int) (*experiments.Run, time.Duration, error) {
		tensor.SetWorkers(w)
		e := *env
		e.Scale.Workers = w
		start := time.Now()
		run, err := e.RunProtocol(experiments.ProtoLbChat, false, nil)
		return run, time.Since(start), err
	}
	fmt.Println("\n== Speedup calibration: one LbChat run (W wireless loss) ==")
	serialRun, serialTime, err := runOnce(1)
	if err != nil {
		return err
	}
	fmt.Printf("workers=1: %s\n", serialTime.Round(time.Millisecond))
	parRun, parTime, err := runOnce(workers)
	if err != nil {
		return err
	}
	fmt.Printf("workers=%s: %s\n", workersLabel(workers), parTime.Round(time.Millisecond))
	fmt.Printf("speedup: %.2fx\n", serialTime.Seconds()/parTime.Seconds())
	if serialRun.Curve.Final() != parRun.Curve.Final() || serialRun.Recv != parRun.Recv {
		return fmt.Errorf("determinism violation: serial and parallel runs disagree (final loss %v vs %v)",
			serialRun.Curve.Final(), parRun.Curve.Final())
	}
	fmt.Println("determinism check: serial and parallel runs agree")
	return nil
}

// workersLabel formats a worker count for output ("auto" for 0).
func workersLabel(n int) string {
	if n <= 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", n)
}
