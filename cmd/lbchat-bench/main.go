// Command lbchat-bench regenerates the paper's tables and figures
// end-to-end: it builds the driving world, collects per-vehicle datasets,
// records mobility traces, trains fleets under every protocol, and prints
// each artifact in the paper's layout, followed by a per-protocol
// communication-efficiency report (bytes on air vs final loss).
//
// Usage:
//
//	lbchat-bench -exp all -scale bench
//	lbchat-bench -exp fig2a,tab2 -scale full -workers 8
//	lbchat-bench -exp fig2b -telemetry-out events.jsonl
//	lbchat-bench -exp faultsweep -scale test
//	lbchat-bench -speedup -workers 4
//
// Experiments: fig2a fig2b recvrate tab2 tab3 tab4 tab5 tab6 tab7 fig3 all,
// plus the extension studies and the faultsweep robustness grid (which
// manages its own fault settings; -faults applies a profile to the others).
// Scales: test (seconds), bench (minutes), full (paper scale: 32 vehicles).
// Every experiment reports its wall-clock time; -speedup additionally
// calibrates the configured worker count against the serial baseline on one
// LbChat training run. Results are bit-identical at every -workers setting.
// SIGINT cancels at the next engine tick and reports partial results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lbchat/cmd/internal/cli"
	"lbchat/internal/benchjson"
	"lbchat/internal/experiments"
	"lbchat/internal/metrics"
	"lbchat/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lbchat-bench: %v\n", err)
		os.Exit(1)
	}
}

// errCanceled stops the experiment sequence after a partial run.
var errCanceled = fmt.Errorf("canceled: partial results above")

func run() error {
	expFlag := flag.String("exp", "all", "comma-separated experiments: fig2a,fig2b,recvrate,tab2,tab3,tab4,tab5,tab6,tab7,fig3,all; extensions: routeshare,methods,adaptive,hetero,quant,faultsweep; scale workload: fleetscan")
	speedupFlag := flag.Bool("speedup", false, "measure the -workers speedup vs the serial baseline on one LbChat run, then exit")
	speedupHistory := flag.String("speedup-history", "", "append the -speedup wall times as one labelled JSONL line to this benchmark history file")
	speedupLabel := flag.String("speedup-label", "local-speedup", "run label recorded in the -speedup-history entry")
	vehiclesFlag := flag.Int("vehicles", 0, "fleet size for -exp fleetscan (0 = 2048)")
	durationFlag := flag.Float64("duration", 0, "virtual seconds for -exp fleetscan (0 = 60)")
	common := cli.Register(flag.CommandLine)
	flag.Parse()

	scale, err := common.Scale()
	if err != nil {
		return err
	}
	traceCloser, err := common.ApplyTrace(&scale)
	if err != nil {
		return err
	}
	defer traceCloser.Close()
	sink, err := common.OpenSink()
	if err != nil {
		return err
	}
	fcfg, err := common.Faults()
	if err != nil {
		return err
	}
	ctx, stop := cli.SignalContext()
	defer stop()

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	// The fleetscan scale workload runs before (and without) the environment
	// build: a 10k-vehicle synthetic fleet needs no datasets or eval suite,
	// and building them at that size would dwarf the measurement.
	if want["fleetscan"] {
		delete(want, "fleetscan")
		if err := timedFleetScan(ctx, *vehiclesFlag, *durationFlag, common); err != nil {
			return err
		}
		if len(want) == 0 {
			return common.CloseSink(sink)
		}
	}

	fmt.Printf("Building environment (scale=%s: %d vehicles, %d frames/vehicle, %.0fs training, workers=%s)...\n",
		scale.Name, scale.Vehicles, scale.CollectTicks, scale.TrainDuration, cli.WorkersLabel(common.Workers))
	buildStart := time.Now()
	env, err := experiments.BuildEnv(scale)
	if err != nil {
		return err
	}
	defer env.Close()
	env.Cfg.Faults = fcfg
	fmt.Printf("-- environment built in %s\n", time.Since(buildStart).Round(time.Millisecond))

	if *speedupFlag {
		return measureSpeedup(env, common.Workers, *speedupHistory, *speedupLabel)
	}

	// timed runs one experiment and reports its wall-clock, so scale and
	// worker-count choices can be compared run to run.
	timed := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			if err == errCanceled {
				return err
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("-- %s finished in %s\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	// runExp trains/evaluates one Run-API experiment and prints its table
	// plus the communication-efficiency report for the runs it performed.
	runExp := func(name, header, experiment string, lossless bool) error {
		return timed(name, func() error {
			fmt.Printf("\n=== %s ===\n", header)
			res, err := experiments.Run(ctx, experiments.Spec{
				Experiment: experiment, Lossless: lossless, Env: env, Telemetry: sink,
			})
			if err != nil {
				return err
			}
			if res.Table != nil {
				fmt.Print(res.Table.Render())
			}
			fmt.Print(experiments.CommTable(res.Runs).Render())
			if res.Canceled {
				return errCanceled
			}
			return nil
		})
	}

	// Fig. 2 runs are shared with Tables II/III and the receive rates.
	var runsLossless, runsLossy []*experiments.ProtocolRun
	needLossless := selected("fig2a") || selected("tab2")
	needLossy := selected("fig2b") || selected("tab3") || selected("recvrate")

	trainAll := func(lossless bool, into *[]*experiments.ProtocolRun) error {
		regime := "W/O wireless loss"
		if !lossless {
			regime = "W wireless loss"
		}
		fmt.Printf("\n== Training all protocols (%s)...\n", regime)
		return timed("training ("+regime+")", func() error {
			res, err := experiments.Run(ctx, experiments.Spec{
				Experiment: experiments.ExpFig2, Lossless: lossless, Env: env, Telemetry: sink,
			})
			if err != nil {
				return err
			}
			*into = res.Runs
			fmt.Printf("\n=== Communication efficiency (%s) ===\n", regime)
			fmt.Print(experiments.CommTable(res.Runs).Render())
			if res.Canceled {
				return errCanceled
			}
			return nil
		})
	}
	if needLossless {
		if err := trainAll(true, &runsLossless); err != nil {
			return err
		}
	}
	if needLossy {
		if err := trainAll(false, &runsLossy); err != nil {
			return err
		}
	}

	plot := func(runs []*experiments.ProtocolRun) string {
		curves := make([]*metrics.Curve, len(runs))
		for i := range runs {
			curves[i] = &runs[i].Curve
		}
		return metrics.PlotCurves(72, 18, curves...)
	}
	if selected("fig2a") {
		fmt.Println("\n=== Figure 2(a): training loss vs time, W/O wireless loss ===")
		fmt.Print(plot(runsLossless))
		fmt.Print(experiments.RenderCurves(runsLossless))
	}
	if selected("fig2b") {
		fmt.Println("\n=== Figure 2(b): training loss vs time, W wireless loss ===")
		fmt.Print(plot(runsLossy))
		fmt.Print(experiments.RenderCurves(runsLossy))
	}
	if selected("recvrate") {
		fmt.Println("\n=== §IV-C: successful model receiving rate ===")
		fmt.Print(experiments.RenderReceiveRates(experiments.ReceiveRates(runsLossy)))
	}
	if selected("tab2") {
		if err := timed("Table II", func() error {
			fmt.Println("\n=== Table II (driving success rate, W/O wireless loss) ===")
			rates := env.SuccessRates(runsLossless)
			fmt.Print(env.SuccessTable("", experiments.BenchmarkProtocols, rates).Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if selected("tab3") {
		if err := timed("Table III", func() error {
			fmt.Println("\n=== Table III (driving success rate, W wireless loss) ===")
			rates := env.SuccessRates(runsLossy)
			fmt.Print(env.SuccessTable("", experiments.BenchmarkProtocols, rates).Render())
			return nil
		}); err != nil {
			return err
		}
	}
	if selected("tab4") {
		if err := runExp("Table IV", "Table IV (coreset-size sweep)", experiments.ExpTable4, false); err != nil {
			return err
		}
	}
	if selected("tab5") {
		if err := runExp("Table V", "Table V (equal compression ablation)", experiments.ExpTable5, false); err != nil {
			return err
		}
	}
	if selected("tab6") {
		if err := runExp("Table VI", "Table VI (average aggregation ablation)", experiments.ExpTable6, false); err != nil {
			return err
		}
	}
	if selected("tab7") {
		if err := runExp("Table VII", "Table VII (sharing coreset only)", experiments.ExpTable7, false); err != nil {
			return err
		}
	}
	if want["routeshare"] {
		if err := runExp("route-sharing study", "Extension: route-sharing (Eq. 5) ablation", experiments.ExpRouteShare, false); err != nil {
			return err
		}
	}
	if want["methods"] {
		if err := runExp("coreset-method study", "Extension: coreset construction methods (§V)", experiments.ExpMethods, true); err != nil {
			return err
		}
	}
	if want["hetero"] {
		if err := runExp("heterogeneity study", "Extension: bandwidth heterogeneity (footnote 1 future work)", experiments.ExpHetero, true); err != nil {
			return err
		}
	}
	if want["quant"] {
		if err := runExp("compression-scheme study", "Extension: compression schemes (top-k vs quantization)", experiments.ExpQuant, true); err != nil {
			return err
		}
	}
	if want["adaptive"] {
		if err := runExp("adaptive-coreset study", "Extension: adaptive coreset sizing (future work)", experiments.ExpAdaptive, true); err != nil {
			return err
		}
	}
	if want["faultsweep"] {
		if err := runExp("fault sweep", "Robustness: fault sweep (burst loss x churn, with vs without resumption)", experiments.ExpFaultSweep, false); err != nil {
			return err
		}
	}
	if selected("fig3") {
		if err := timed("Figure 3", func() error {
			fmt.Println("\n=== Figure 3 (LbChat vs SCO) ===")
			res, err := experiments.Run(ctx, experiments.Spec{
				Experiment: experiments.ExpFig3, Lossless: true, Env: env, Telemetry: sink,
			})
			if err != nil {
				return err
			}
			lb, sco := res.Runs[0], res.Runs[1]
			fmt.Print(metrics.PlotCurves(72, 18, &lb.Curve, &sco.Curve))
			fmt.Print(lb.Curve.Render())
			fmt.Print(sco.Curve.Render())
			fmt.Printf("SCO convergence slowdown vs LbChat: %.2fx (paper: 1.5-1.8x)\n", res.Ratio)
			fmt.Print(experiments.CommTable(res.Runs).Render())
			if res.Canceled {
				return errCanceled
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return common.CloseSink(sink)
}

// timedFleetScan runs the fleetscan scale workload at the flagged size and
// prints its wall-clock/peak-heap table.
func timedFleetScan(ctx context.Context, vehicles int, duration float64, common *cli.Common) error {
	fmt.Printf("\n=== Fleet scan scale workload (shards=%d, workers=%s) ===\n",
		common.Shards, cli.WorkersLabel(common.Workers))
	start := time.Now()
	res, err := experiments.Run(ctx, experiments.Spec{
		Experiment: experiments.ExpFleetScan,
		Vehicles:   vehicles,
		Duration:   duration,
		Workers:    common.Workers,
		Shards:     common.Shards,
		Seed:       common.Seed,
	})
	if err != nil {
		return fmt.Errorf("fleetscan: %w", err)
	}
	fmt.Print(res.Table.Render())
	fmt.Printf("-- fleetscan finished in %s\n", time.Since(start).Round(time.Millisecond))
	if res.Canceled {
		return errCanceled
	}
	return nil
}

// measureSpeedup trains one LbChat fleet serially and again at the
// configured worker count, verifies the two runs agree bit for bit, and
// reports the wall-clock ratio. With a history path the two wall times are
// also appended as one labelled benchmark-history line (the same JSONL
// bench-compare -history reads), so CI runners with real cores can extend
// the speedup trend the single-core dev box cannot measure.
func measureSpeedup(env *experiments.Env, workers int, historyPath, label string) error {
	runOnce := func(w int) (*experiments.ProtocolRun, time.Duration, error) {
		tensor.SetWorkers(w)
		e := *env
		e.Scale.Workers = w
		start := time.Now()
		res, err := experiments.Run(context.Background(), experiments.Spec{
			Experiment: experiments.ExpProtocol,
			Protocol:   experiments.ProtoLbChat,
			Env:        &e,
		})
		if err != nil {
			return nil, 0, err
		}
		return res.Runs[0], time.Since(start), nil
	}
	fmt.Println("\n== Speedup calibration: one LbChat run (W wireless loss) ==")
	serialRun, serialTime, err := runOnce(1)
	if err != nil {
		return err
	}
	fmt.Printf("workers=1: %s\n", serialTime.Round(time.Millisecond))
	parRun, parTime, err := runOnce(workers)
	if err != nil {
		return err
	}
	fmt.Printf("workers=%s: %s\n", cli.WorkersLabel(workers), parTime.Round(time.Millisecond))
	fmt.Printf("speedup: %.2fx\n", serialTime.Seconds()/parTime.Seconds())
	if serialRun.Curve.Final() != parRun.Curve.Final() || serialRun.Recv != parRun.Recv {
		return fmt.Errorf("determinism violation: serial and parallel runs disagree (final loss %v vs %v)",
			serialRun.Curve.Final(), parRun.Curve.Final())
	}
	fmt.Println("determinism check: serial and parallel runs agree")
	if historyPath != "" {
		entry := benchjson.File{
			"SpeedupLbChatRun/workers=1": {NsOp: float64(serialTime.Nanoseconds())},
			fmt.Sprintf("SpeedupLbChatRun/workers=%s", cli.WorkersLabel(workers)): {
				NsOp: float64(parTime.Nanoseconds()),
			},
		}
		if err := benchjson.AppendHistory(historyPath, label, entry); err != nil {
			return fmt.Errorf("appending speedup history: %w", err)
		}
		fmt.Printf("appended %q to %s\n", label, historyPath)
	}
	return nil
}
