// Command lbchat-eval runs the paper's online evaluation (§IV-D): it trains
// a fleet under a chosen protocol and deploys the trained models on a
// testing autopilot over the CARLA-style driving benchmark — Straight, One
// Turn, and full navigation with empty, normal, and dense traffic —
// printing the driving success rate per condition.
//
// Usage:
//
//	lbchat-eval -protocol LbChat -trials 16
//	lbchat-eval -protocol DP -wireless-loss
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"lbchat/internal/eval"
	"lbchat/internal/experiments"
	"lbchat/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lbchat-eval: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", "LbChat",
		"protocol: LbChat, ProxSkip, RSU-L, DFL-DDS, DP, SCO, LbChat-EqualComp, LbChat-AvgAgg")
	vehicles := flag.Int("vehicles", 8, "expert fleet size")
	duration := flag.Float64("duration", 1800, "virtual training duration (s)")
	trials := flag.Int("trials", 16, "driving trials per condition")
	lossy := flag.Bool("wireless-loss", false, "enable the distance-based wireless loss model")
	seed := flag.Uint64("seed", 7, "root random seed")
	loadDir := flag.String("load-fleet", "", "skip training: load model blobs saved by lbchat-sim -save-fleet")
	flag.Parse()

	scale := experiments.BenchScale()
	scale.Vehicles = *vehicles
	scale.TrainDuration = *duration
	scale.EvalTrials = *trials
	scale.Seed = *seed

	fmt.Printf("Building environment (%d vehicles)...\n", scale.Vehicles)
	env, err := experiments.BuildEnv(scale)
	if err != nil {
		return err
	}
	var fleet []*model.Policy
	if *loadDir != "" {
		blobs, err := filepath.Glob(filepath.Join(*loadDir, "*.lbp"))
		if err != nil {
			return err
		}
		if len(blobs) == 0 {
			return fmt.Errorf("no .lbp model blobs in %s", *loadDir)
		}
		sort.Strings(blobs)
		for _, path := range blobs {
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			pol, err := model.New(env.Cfg.Model, 0)
			if err != nil {
				return err
			}
			if err := pol.UnmarshalBinary(raw); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fleet = append(fleet, pol)
		}
		fmt.Printf("Loaded %d models from %s\n", len(fleet), *loadDir)
	} else {
		fmt.Printf("Training fleet under %s (%.0fs virtual, wireless loss: %v)...\n",
			*protocol, *duration, *lossy)
		run, err := env.RunProtocol(experiments.ProtocolName(*protocol), !*lossy, nil)
		if err != nil {
			return err
		}
		fmt.Printf("Final probe loss: %.4f\n", run.Curve.Final())
		fleet = run.Fleet
	}

	fmt.Printf("Running driving benchmark (%d trials per condition)...\n", *trials)
	rates := env.EvalFleet(fleet)
	fmt.Printf("\n%-16s %8s\n", "Task", *protocol)
	for _, cond := range eval.Conditions {
		fmt.Printf("%-16s %7.0f%%\n", cond.String(), rates[cond])
	}
	return nil
}
