// Command lbchat-eval runs the paper's online evaluation (§IV-D): it trains
// a fleet under a chosen protocol and deploys the trained models on a
// testing autopilot over the CARLA-style driving benchmark — Straight, One
// Turn, and full navigation with empty, normal, and dense traffic —
// printing the driving success rate per condition.
//
// Usage:
//
//	lbchat-eval -protocol LbChat -trials 16
//	lbchat-eval -protocol DP -wireless-loss -telemetry-out events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"lbchat/cmd/internal/cli"
	"lbchat/internal/eval"
	"lbchat/internal/experiments"
	"lbchat/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lbchat-eval: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", "LbChat",
		"protocol: LbChat, ProxSkip, RSU-L, DFL-DDS, DP, SCO, LbChat-EqualComp, LbChat-AvgAgg")
	vehicles := flag.Int("vehicles", 8, "expert fleet size")
	duration := flag.Float64("duration", 1800, "virtual training duration (s)")
	trials := flag.Int("trials", 16, "driving trials per condition")
	lossy := flag.Bool("wireless-loss", false, "enable the distance-based wireless loss model")
	loadDir := flag.String("load-fleet", "", "skip training: load model blobs saved by lbchat-sim -save-fleet")
	common := cli.Register(flag.CommandLine)
	flag.Parse()

	scale, err := common.Scale()
	if err != nil {
		return err
	}
	scale.Vehicles = *vehicles
	scale.TrainDuration = *duration
	scale.EvalTrials = *trials
	traceCloser, err := common.ApplyTrace(&scale)
	if err != nil {
		return err
	}
	defer traceCloser.Close()

	ctx, stop := cli.SignalContext()
	defer stop()

	fmt.Printf("Building environment (%d vehicles)...\n", scale.Vehicles)
	env, err := experiments.BuildEnv(scale)
	if err != nil {
		return err
	}
	defer env.Close()
	var fleet []*model.Policy
	if *loadDir != "" {
		blobs, err := filepath.Glob(filepath.Join(*loadDir, "*.lbp"))
		if err != nil {
			return err
		}
		if len(blobs) == 0 {
			return fmt.Errorf("no .lbp model blobs in %s", *loadDir)
		}
		sort.Strings(blobs)
		for _, path := range blobs {
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			pol, err := model.New(env.Cfg.Model, 0)
			if err != nil {
				return err
			}
			if err := pol.UnmarshalBinary(raw); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fleet = append(fleet, pol)
		}
		fmt.Printf("Loaded %d models from %s\n", len(fleet), *loadDir)
	} else {
		sink, err := common.OpenSink()
		if err != nil {
			return err
		}
		fcfg, err := common.Faults()
		if err != nil {
			return err
		}
		fmt.Printf("Training fleet under %s (%.0fs virtual, wireless loss: %v)...\n",
			*protocol, *duration, *lossy)
		res, err := experiments.Run(ctx, experiments.Spec{
			Experiment: experiments.ExpProtocol,
			Protocol:   experiments.ProtocolName(*protocol),
			Lossless:   !*lossy,
			Env:        env,
			Telemetry:  sink,
			Faults:     fcfg,
		})
		if err != nil {
			return err
		}
		run := res.Runs[0]
		if res.Canceled {
			return fmt.Errorf("training canceled")
		}
		fmt.Printf("Final probe loss: %.4f\n", run.Curve.Final())
		fmt.Print(experiments.CommTable(res.Runs).Render())
		if err := common.CloseSink(sink); err != nil {
			return err
		}
		fleet = run.Fleet
	}

	fmt.Printf("Running driving benchmark (%d trials per condition)...\n", *trials)
	rates := env.EvalFleet(fleet)
	fmt.Printf("\n%-16s %8s\n", "Task", *protocol)
	for _, cond := range eval.Conditions {
		fmt.Printf("%-16s %7.0f%%\n", cond.String(), rates[cond])
	}
	return nil
}
