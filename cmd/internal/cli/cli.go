// Package cli collects the flag handling shared by the lbchat commands so
// -seed, -workers, -shards, -scale, -faults, -telemetry-out, -stream-trace,
// -trace-file, -trace-url, -full-coreset-rebuild, and -legacy-due-scan parse
// and behave identically everywhere.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"lbchat/internal/experiments"
	"lbchat/internal/faults"
	"lbchat/internal/telemetry"
	"lbchat/internal/tensor"
	"lbchat/internal/trace"
	"lbchat/internal/traceserve"
)

// Common holds the parsed shared flags.
type Common struct {
	// Seed is the root random seed (-seed). It only overrides the scale's
	// own seed when the flag was given explicitly, so e.g. -scale test
	// keeps its historical seed by default.
	Seed uint64
	// Workers bounds parallelism at every level (-workers); 0 = one per
	// CPU, 1 = serial. Results are bit-identical at any setting.
	Workers int
	// Shards partitions engine encounter scans into grid regions (-shards);
	// 0 or 1 keeps the single-index path. Results are bit-identical at any
	// setting.
	Shards int
	// ScaleName names the experiment scale (-scale): test, bench, full.
	ScaleName string
	// TelemetryOut is the JSONL event-stream output path (-telemetry-out);
	// empty disables the stream sink.
	TelemetryOut string
	// FaultsName names the fault-injection profile (-faults): off, light,
	// heavy (internal/faults). Resolve it with Faults.
	FaultsName string
	// FullCoresetRebuild selects the original full Algorithm-1 coreset
	// rebuild (-full-coreset-rebuild) instead of the default incremental
	// partition-tree refresh (DESIGN.md §14). Each arm is individually
	// bit-identical at any -workers/-shards setting.
	FullCoresetRebuild bool
	// LegacyDueScan selects the original per-tick O(N) due-vehicle fleet
	// scan (-legacy-due-scan) instead of the default calendar queue
	// (DESIGN.md §15). Both arms produce byte-identical event streams; this
	// is the A/B reference and benchmark-baseline arm.
	LegacyDueScan bool
	// StreamTrace drives engine runs from a bounded sliding-window trace
	// source (-stream-trace) instead of holding the whole mobility trace
	// resident. Results are bit-identical either way.
	StreamTrace bool
	// TraceFile loads the mobility trace from this LBTC file (-trace-file,
	// e.g. a worldgen -trace-out recording) instead of recording one; the
	// vehicle count is taken from the file. Resolve it with ApplyTrace.
	TraceFile string
	// TraceURL pages the mobility trace from a remote chunk server
	// (-trace-url, see cmd/trace-serve) instead of a local file. Remote
	// traces always stream through a sliding window; mutually exclusive
	// with -trace-file. Resolve it with ApplyTrace.
	TraceURL string

	fs *flag.FlagSet
}

// Register installs the shared flags on fs and returns the struct they
// parse into.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{fs: fs}
	fs.Uint64Var(&c.Seed, "seed", 7, "root random seed (default: the scale's own seed)")
	fs.IntVar(&c.Workers, "workers", 0,
		"parallel workers at every level (0 = one per CPU, 1 = serial); results are bit-identical at any setting")
	fs.IntVar(&c.Shards, "shards", 0,
		"grid-region shards for encounter scans (0 or 1 = single index); results are bit-identical at any setting")
	fs.StringVar(&c.ScaleName, "scale", "bench", "experiment scale: test, bench, or full")
	fs.StringVar(&c.TelemetryOut, "telemetry-out", "",
		"write the run's telemetry event stream as JSONL to this file")
	fs.StringVar(&c.FaultsName, "faults", "off",
		"fault-injection profile: off, light, or heavy (burst loss, window truncation, churn, corruption)")
	fs.BoolVar(&c.FullCoresetRebuild, "full-coreset-rebuild", false,
		"rebuild coresets with a full Algorithm-1 pass instead of the incremental partition tree")
	fs.BoolVar(&c.LegacyDueScan, "legacy-due-scan", false,
		"find due training vehicles with the original per-tick fleet scan instead of the calendar queue; results are byte-identical")
	fs.BoolVar(&c.StreamTrace, "stream-trace", false,
		"stream the mobility trace through a bounded sliding window instead of holding it resident; results are bit-identical")
	fs.StringVar(&c.TraceFile, "trace-file", "",
		"load the mobility trace from this LBTC file (see worldgen -trace-out) instead of recording one")
	fs.StringVar(&c.TraceURL, "trace-url", "",
		"page the mobility trace from a trace-serve chunk server at this base URL (always streamed; excludes -trace-file)")
	return c
}

// Faults resolves the -faults profile name into a fault-injection config;
// "off" (the default) returns the zero config, which disables injection.
func (c *Common) Faults() (faults.Config, error) {
	return faults.ByName(c.FaultsName)
}

// Scale resolves -scale with the -seed and -workers overrides applied, and
// configures tensor-level parallelism to match.
func (c *Common) Scale() (experiments.Scale, error) {
	scale, err := experiments.ScaleByName(c.ScaleName)
	if err != nil {
		return experiments.Scale{}, err
	}
	if c.flagSet("seed") {
		scale.Seed = c.Seed
	}
	scale.Workers = c.Workers
	scale.Shards = c.Shards
	scale.FullCoresetRebuild = c.FullCoresetRebuild
	scale.LegacyDueScan = c.LegacyDueScan
	scale.StreamTrace = c.StreamTrace
	tensor.SetWorkers(c.Workers)
	return scale, nil
}

// OpenTrace opens an LBTC mobility-trace file as an engine-ready source:
// fully resident when stream is false, or a bounded sliding window that
// pages chunks on demand when stream is true. The returned closer releases
// the file handle and must be closed after the run (it is never nil).
func OpenTrace(path string, stream bool) (trace.Source, io.Closer, error) {
	if stream {
		src, closer, err := trace.OpenWindowFile(path, trace.WindowConfig{Prefetch: true})
		if err != nil {
			return nil, nil, fmt.Errorf("opening trace window %s: %w", path, err)
		}
		return src, closer, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("opening trace: %w", err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		return nil, nil, fmt.Errorf("reading trace %s: %w", path, err)
	}
	return tr, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// ApplyTrace resolves -trace-file or -trace-url onto the scale. A file is
// opened through OpenTrace (resident or windowed per -stream-trace) and
// installed as the scale's trace source; a URL is dialed once for its
// stream metadata and recorded as Scale.TraceURL for the experiment layer
// to page through (remote traces always stream). Either way the scale's
// vehicle count is taken from the trace — overriding any -vehicles
// setting, which only sizes recorded traces. The returned closer must be
// closed after the run; without either flag it is a no-op and the scale is
// untouched.
func (c *Common) ApplyTrace(scale *experiments.Scale) (io.Closer, error) {
	if c.TraceFile != "" && c.TraceURL != "" {
		return nil, fmt.Errorf("-trace-file and -trace-url are mutually exclusive")
	}
	if c.TraceURL != "" {
		probe, err := traceserve.Dial(c.TraceURL, traceserve.ClientConfig{})
		if err != nil {
			return nil, err
		}
		probe.Close()
		scale.TraceURL = c.TraceURL
		scale.Vehicles = probe.NumVehicles()
		scale.TraceTicks = probe.NumTicks()
		return nopCloser{}, nil
	}
	if c.TraceFile == "" {
		return nopCloser{}, nil
	}
	src, closer, err := OpenTrace(c.TraceFile, c.StreamTrace)
	if err != nil {
		return nil, err
	}
	scale.TraceSource = src
	scale.TracePath = c.TraceFile
	scale.Vehicles = src.NumVehicles()
	scale.TraceTicks = src.NumTicks()
	return closer, nil
}

// flagSet reports whether the named flag was given explicitly.
func (c *Common) flagSet(name string) bool {
	set := false
	c.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// OpenSink opens the -telemetry-out JSONL sink, or returns nil when the
// flag is unset. The caller must Close a non-nil sink to flush it.
func (c *Common) OpenSink() (telemetry.Sink, error) {
	if c.TelemetryOut == "" {
		return nil, nil
	}
	f, err := os.Create(c.TelemetryOut)
	if err != nil {
		return nil, fmt.Errorf("opening -telemetry-out: %w", err)
	}
	return telemetry.NewJSONL(f), nil
}

// CloseSink closes a sink from OpenSink and reports where the stream went.
// Safe on nil sinks and best-effort: errors are returned for the caller to
// surface.
func (c *Common) CloseSink(sink telemetry.Sink) error {
	if sink == nil {
		return nil
	}
	if err := sink.Close(); err != nil {
		return fmt.Errorf("closing -telemetry-out: %w", err)
	}
	fmt.Printf("Wrote telemetry event stream to %s\n", c.TelemetryOut)
	return nil
}

// SignalContext returns a context canceled on SIGINT/SIGTERM, so long
// experiment runs stop at the next engine tick and report partial results.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WorkersLabel formats a worker count for output ("auto" for 0).
func WorkersLabel(n int) string {
	if n <= 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", n)
}
