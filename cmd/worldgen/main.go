// Command worldgen generates and inspects the driving world: it prints map
// statistics, renders an ASCII overview of the road network, and reports
// encounter statistics from a freshly recorded mobility trace — useful for
// sanity-checking workload generation before long experiment runs.
//
// Usage:
//
//	worldgen                                # map stats + ASCII render
//	worldgen -trace 3600                    # also record a trace and report encounters
//	worldgen -trace 3600 -trace-out t.lbtc  # save the recording as an LBTC stream
//
// A saved LBTC trace feeds the lbchat commands' -trace-file flag, so one
// recording can drive many runs (streamed through a bounded window with
// -stream-trace, or loaded resident).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbchat/internal/geom"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
	"lbchat/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	traceTicks := flag.Int("trace", 0, "record a mobility trace of this many 0.5s ticks and report encounter statistics")
	traceOut := flag.String("trace-out", "", "write the recorded trace to this LBTC file (for the lbchat commands' -trace-file)")
	vehicles := flag.Int("vehicles", 8, "expert vehicles for the trace")
	seed := flag.Uint64("seed", 7, "root random seed")
	flag.Parse()

	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		return err
	}
	w, h := m.Bounds()
	crosses := 0
	var roadLen float64
	for _, n := range m.Nodes {
		if len(n.Out) >= 3 {
			crosses++
		}
	}
	for _, e := range m.Edges {
		roadLen += e.Length()
	}
	fmt.Printf("Map: %.0fm x %.0fm, %d nodes (%d intersections), %d directed edges, %.1f km of lanes\n",
		w, h, len(m.Nodes), crosses, len(m.Edges), roadLen/1000)

	fmt.Println(renderASCII(m, 60, 30))

	if *traceTicks <= 0 {
		if *traceOut != "" {
			return fmt.Errorf("-trace-out needs -trace to set the recording length")
		}
		return nil
	}
	wl, err := world.New(m, world.SpawnConfig{
		Experts: *vehicles, BackgroundCars: 50, Pedestrians: 250,
	}, simrand.New(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("Recording %d ticks of mobility for %d vehicles...\n", *traceTicks, *vehicles)
	tr := trace.Record(wl, *traceTicks, 0.5)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		err = tr.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(*traceOut)
			return fmt.Errorf("writing %s: %w", *traceOut, err)
		}
		fmt.Printf("Wrote %d-tick LBTC trace to %s\n", tr.NumTicks(), *traceOut)
	}

	// Encounter statistics at a few ranges.
	for _, rng := range []float64{150, 250, 500} {
		var contactSum float64
		contacts := 0
		for t := 0.0; t < tr.Duration(); t += 30 {
			for a := 0; a < tr.NumVehicles(); a++ {
				for b := a + 1; b < tr.NumVehicles(); b++ {
					if tr.Distance(a, b, t) <= rng {
						contacts++
						contactSum += tr.ContactDuration(a, b, t, rng, 120)
					}
				}
			}
		}
		if contacts > 0 {
			fmt.Printf("range %3.0fm: %4d in-range pair samples, mean remaining contact %.1fs\n",
				rng, contacts, contactSum/float64(contacts))
		} else {
			fmt.Printf("range %3.0fm: no in-range pairs sampled\n", rng)
		}
	}
	return nil
}

// renderASCII draws the road bitmap scaled into a cols×rows character grid.
// Each character cell covers ~30 m while roads are only ~12 m wide, so every
// cell is supersampled on a 3×3 grid to avoid aliasing roads away.
func renderASCII(m *world.Map, cols, rows int) string {
	w, h := m.Bounds()
	var b strings.Builder
	offsets := []float64{0.17, 0.5, 0.83}
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			road := false
			for _, f := range offsets {
				for _, g := range offsets {
					x := (float64(c) + f) / float64(cols) * w
					y := (float64(r) + g) / float64(rows) * h
					if m.IsRoad(geom.Pt(x, y)) {
						road = true
					}
				}
			}
			if road {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
