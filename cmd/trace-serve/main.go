// Command trace-serve exposes one LBTC mobility trace as a chunk server,
// so the lbchat commands can page it remotely with -trace-url instead of
// reading a local file with -trace-file.
//
// Usage:
//
//	trace-serve -file city.lbtc                       # serve on a random localhost port
//	trace-serve -file city.lbtc -addr :9347           # fixed port
//	trace-serve -file city.lbtc -addr-file addr.txt   # write host:port for scripts
//	trace-serve -file city.lbtc -fetch-faults flaky   # inject latency + 503s
//
// The bound address is printed on stdout (and, with -addr-file, written to
// a file once the listener is up — the Makefile smoke targets use that as
// a startup handshake). The server runs until SIGINT/SIGTERM, then shuts
// down gracefully and reports how many requests it handled.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lbchat/internal/faults"
	"lbchat/internal/trace"
	"lbchat/internal/traceserve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "trace-serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	file := flag.String("file", "", "LBTC trace file to serve (required)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address; port 0 picks a free port")
	addrFile := flag.String("addr-file", "", "write the bound host:port to this file once listening")
	faultsName := flag.String("fetch-faults", "off", "fetch fault profile: off, slow, lossy, or flaky")
	flag.Parse()

	if *file == "" {
		return fmt.Errorf("-file is required")
	}
	fc, err := faults.FetchByName(*faultsName)
	if err != nil {
		return err
	}
	src, err := trace.OpenFileSource(*file)
	if err != nil {
		return err
	}
	defer src.Close()
	srv, err := traceserve.NewServer(src, traceserve.ServerConfig{Faults: fc})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	meta := srv.Meta()
	fmt.Printf("trace-serve: serving %s (%d ticks, %d vehicles, %d chunks) on http://%s\n",
		*file, meta.TotalTicks, meta.Vehicles, meta.NumChunks, ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Printf("trace-serve: handled %d requests\n", srv.Requests())
	return nil
}
