// Command lbchat-sim runs one co-simulation: a fleet of vehicles training
// under a chosen protocol over a generated mobility trace, printing the
// probe-loss curve, communication statistics, and the run's
// communication-efficiency summary.
//
// Usage:
//
//	lbchat-sim -protocol LbChat -vehicles 8 -duration 1800
//	lbchat-sim -protocol DP -wireless-loss -telemetry-out events.jsonl
//	lbchat-sim -protocol LbChat -wireless-loss -faults light
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lbchat/cmd/internal/cli"
	"lbchat/internal/core"
	"lbchat/internal/experiments"
	"lbchat/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lbchat-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", "LbChat",
		"protocol: LbChat, ProxSkip, RSU-L, DFL-DDS, DP, SCO, LbChat-EqualComp, LbChat-AvgAgg")
	vehicles := flag.Int("vehicles", 8, "expert fleet size")
	duration := flag.Float64("duration", 1800, "virtual training duration (s)")
	traceTicks := flag.Int("trace-ticks", 0, "mobility-trace length in 0.5s ticks (0 = the scale's default)")
	lossy := flag.Bool("wireless-loss", false, "enable the distance-based wireless loss model")
	logChats := flag.Bool("log-chats", false, "trace every pairwise chat decision to stderr")
	saveDir := flag.String("save-fleet", "", "directory to write the trained fleet's model blobs into")
	jsonPath := flag.String("json", "", "write the loss curve and transfer stats as JSON to this file")
	summaryOut := flag.String("summary-out", "",
		"write the run's aggregated telemetry counters and histograms as CSV to this file (see telemetry-lint -summary)")
	common := cli.Register(flag.CommandLine)
	flag.Parse()

	scale, err := common.Scale()
	if err != nil {
		return err
	}
	scale.Vehicles = *vehicles
	scale.TrainDuration = *duration
	if *traceTicks > 0 {
		scale.TraceTicks = *traceTicks
	}
	traceCloser, err := common.ApplyTrace(&scale)
	if err != nil {
		return err
	}
	defer traceCloser.Close()

	sink, err := common.OpenSink()
	if err != nil {
		return err
	}
	fcfg, err := common.Faults()
	if err != nil {
		return err
	}
	ctx, stop := cli.SignalContext()
	defer stop()

	fmt.Printf("Building environment: %d vehicles on a %d-tick trace...\n",
		scale.Vehicles, scale.TraceTicks)
	fmt.Printf("Running %s for %.0fs of virtual time (wireless loss: %v)...\n",
		*protocol, *duration, *lossy)
	start := time.Now()
	res, err := experiments.Run(ctx, experiments.Spec{
		Experiment: experiments.ExpProtocol,
		Protocol:   experiments.ProtocolName(*protocol),
		Lossless:   !*lossy,
		Scale:      &scale,
		Telemetry:  sink,
		Faults:     fcfg,
		Config:     func(c *core.Config) { c.LogChats = *logChats },
	})
	if err != nil {
		return err
	}
	run := res.Runs[0]
	if res.Canceled {
		fmt.Println("Run canceled: reporting partial results")
	}
	fmt.Printf("Run finished in %s wall-clock\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("\nTraining loss vs virtual time:")
	fmt.Print(run.Curve.Render())
	stats := run.Recv
	if stats.Attempts > 0 {
		fmt.Printf("\nModel transfers: %d attempted, %d received (%.0f%%)\n",
			stats.Attempts, stats.Successes, 100*stats.Rate())
	} else {
		fmt.Println("\nModel transfers: none (coreset-only or no encounters)")
	}
	fmt.Println("\nCommunication efficiency:")
	fmt.Print(experiments.CommTable(res.Runs).Render())
	if err := common.CloseSink(sink); err != nil {
		return err
	}
	if *summaryOut != "" {
		f, err := os.Create(*summaryOut)
		if err != nil {
			return err
		}
		err = run.Comm.Reg.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing -summary-out: %w", err)
		}
		fmt.Printf("Wrote telemetry summary to %s\n", *summaryOut)
	}
	if *jsonPath != "" {
		payload := struct {
			Protocol string               `json:"protocol"`
			Lossless bool                 `json:"lossless"`
			Curve    metrics.Curve        `json:"curve"`
			Recv     metrics.ReceiveStats `json:"receive"`
		}{*protocol, !*lossy, run.Curve, run.Recv}
		raw, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("Wrote %s\n", *jsonPath)
	}
	if *saveDir != "" {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			return err
		}
		for i, pol := range run.Fleet {
			blob, err := pol.MarshalBinary()
			if err != nil {
				return err
			}
			path := filepath.Join(*saveDir, fmt.Sprintf("vehicle-%02d.lbp", i))
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("Saved %d model blobs to %s\n", len(run.Fleet), *saveDir)
	}
	return nil
}
