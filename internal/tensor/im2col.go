package tensor

// Im2Col lowers a CHW image into a matrix whose rows are receptive fields, so
// convolution becomes a single matrix multiplication.
//
// Input is a (channels, height, width) tensor; output is a
// (outH*outW, channels*kernel*kernel) matrix for the given kernel size,
// stride, and zero padding.
func Im2Col(img *Dense, kernel, stride, pad int) *Dense {
	return Im2ColInto(nil, img, kernel, stride, pad)
}

// Im2ColInto is Im2Col writing into dst, which is reused when its capacity
// suffices and reallocated otherwise (dst may be nil). Every element of the
// result is written, so no clearing is needed.
func Im2ColInto(dst, img *Dense, kernel, stride, pad int) *Dense {
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	outH := (h+2*pad-kernel)/stride + 1
	outW := (w+2*pad-kernel)/stride + 1
	cols := Reuse2D(dst, outH*outW, c*kernel*kernel)
	src := img.data
	out := cols.data
	rowLen := c * kernel * kernel
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			base := (oy*outW + ox) * rowLen
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kernel; ky++ {
					iy := oy*stride + ky - pad
					for kx := 0; kx < kernel; kx++ {
						ix := ox*stride + kx - pad
						di := base + (ch*kernel+ky)*kernel + kx
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							out[di] = 0
							continue
						}
						out[di] = src[(ch*h+iy)*w+ix]
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters gradient columns back into an
// image-shaped gradient, accumulating where receptive fields overlap.
func Col2Im(cols *Dense, channels, height, width, kernel, stride, pad int) *Dense {
	return Col2ImInto(nil, cols, channels, height, width, kernel, stride, pad)
}

// Col2ImInto is Col2Im writing into dst, which is reused (and zeroed — the
// scatter accumulates) when its capacity suffices, reallocated otherwise
// (dst may be nil).
func Col2ImInto(dst, cols *Dense, channels, height, width, kernel, stride, pad int) *Dense {
	outH := (height+2*pad-kernel)/stride + 1
	outW := (width+2*pad-kernel)/stride + 1
	n := channels * height * width
	var img *Dense
	if dst == nil || cap(dst.data) < n {
		img = New(channels, height, width)
	} else {
		img = dst
		img.data = img.data[:n]
		if len(img.shape) == 3 {
			img.shape[0], img.shape[1], img.shape[2] = channels, height, width
		} else {
			img.shape = []int{channels, height, width}
		}
		img.Zero()
	}
	src := cols.data
	out := img.data
	rowLen := channels * kernel * kernel
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			base := (oy*outW + ox) * rowLen
			for ch := 0; ch < channels; ch++ {
				for ky := 0; ky < kernel; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= height {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= width {
							continue
						}
						out[(ch*height+iy)*width+ix] += src[base+(ch*kernel+ky)*kernel+kx]
					}
				}
			}
		}
	}
	return img
}
