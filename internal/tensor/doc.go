// Package tensor implements the dense float64 tensors underlying the neural
// network substrate. It is intentionally small: shapes, elementwise
// arithmetic, matrix multiplication, and the im2col transform needed for
// convolution — everything the driving model requires and nothing more.
//
// Matrix multiplication optionally fans out across row blocks
// (SetWorkers); results are bit-identical at every worker count because
// each row of the output is computed by exactly one worker with a fixed
// serial inner loop.
package tensor
