package tensor

import (
	"fmt"
	"testing"
)

// Representative shapes for the default policy (model.DefaultConfig):
// input 3·16·16+3 = 771, hidden 64, training batch 16, probe batches up to
// ~128, and the optional conv front-end (3×16×16 BEV, 3×3 kernel, stride 2,
// pad 1 → 8×8 spatial, 27-wide receptive fields). The parallel-matmul
// threshold (matMulParallelFlops) is chosen from this data: shapes below it
// are too small to amortize goroutine dispatch, shapes above it are the
// probe-evaluation and scaled-up-model batches that benefit.
func fill(t *Dense) *Dense {
	d := t.Data()
	for i := range d {
		d[i] = float64(i%17) * 0.25
	}
	return t
}

func benchMatMulInto(b *testing.B, m, k, n int) {
	a := fill(New(m, k))
	bm := fill(New(k, n))
	dst := New(m, n)
	b.SetBytes(int64(8 * m * k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, bm)
	}
}

func BenchmarkMatMulInto(b *testing.B) {
	shapes := []struct{ m, k, n int }{
		{16, 771, 64},  // fc1 forward, training batch
		{16, 64, 64},   // fc2 forward
		{96, 771, 64},  // fc1 forward, probe batch
		{256, 771, 64}, // scaled-up batch: crosses the parallel threshold
	}
	for _, s := range shapes {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			benchMatMulInto(b, s.m, s.k, s.n)
		})
	}
}

// BenchmarkMatMulIntoWorkers isolates the parallel path at a
// threshold-crossing shape so the serial/parallel crossover is measurable on
// multi-core hosts (on a single core the two runs should tie, which is
// itself the "no regression at workers=1" guarantee).
func BenchmarkMatMulIntoWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			SetWorkers(w)
			defer SetWorkers(0)
			benchMatMulInto(b, 256, 771, 64)
		})
	}
}

func BenchmarkMatMulTransAInto(b *testing.B) {
	// Weight gradient: dW (771×64) = xᵀ (16×771) · grad (16×64).
	a := fill(New(16, 771))
	g := fill(New(16, 64))
	dst := New(771, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAInto(dst, a, g)
	}
}

func BenchmarkMatMulTransBInto(b *testing.B) {
	// Input gradient: dx (16×771) = grad (16×64) · Wᵀ (771×64).
	g := fill(New(16, 64))
	w := fill(New(771, 64))
	dst := New(16, 771)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, g, w)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	// Conv front-end receptive-field lowering: 3×16×16 BEV, 3×3 kernel,
	// stride 2, pad 1.
	img := fill(New(3, 16, 16))
	b.Run("alloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Im2Col(img, 3, 2, 1)
		}
	})
	b.Run("into", func(b *testing.B) {
		dst := Im2Col(img, 3, 2, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = Im2ColInto(dst, img, 3, 2, 1)
		}
	})
}
