package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense row-major tensor of float64 values.
type Dense struct {
	shape []int
	data  []float64
}

// New allocates a zero-filled tensor with the given shape. Each dimension
// must be positive.
func New(shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data is NOT
// copied; the caller must not alias it unexpectedly. The data length must
// match the shape volume.
func FromSlice(data []float64, shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense{shape: s, data: data}
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Dense) Shape() []int { return t.shape }

// Size returns the total number of elements.
func (t *Dense) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Dense) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	out := New(t.shape...)
	copy(out.data, t.data)
	return out
}

// Reuse2D returns a (rows, cols) matrix, reusing t's storage when its
// capacity suffices and allocating otherwise (t may be nil). The returned
// tensor's CONTENTS ARE UNSPECIFIED — callers must overwrite every element.
// This is the scratch-reuse primitive behind the allocation-free training
// hot path in internal/nn.
func Reuse2D(t *Dense, rows, cols int) *Dense {
	n := rows * cols
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: non-positive reuse shape %dx%d", rows, cols))
	}
	if t == nil || cap(t.data) < n {
		return New(rows, cols)
	}
	t.data = t.data[:n]
	if len(t.shape) == 2 {
		t.shape[0], t.shape[1] = rows, cols
	} else {
		t.shape = []int{rows, cols}
	}
	return t
}

// ReuseLike is Reuse2D with the target shape taken from ref (any rank).
// Contents are unspecified, exactly as for Reuse2D.
func ReuseLike(t *Dense, ref *Dense) *Dense {
	n := len(ref.data)
	if t == nil || cap(t.data) < n {
		t = &Dense{data: make([]float64, n)}
	} else {
		t.data = t.data[:n]
	}
	if len(t.shape) == len(ref.shape) {
		copy(t.shape, ref.shape)
	} else {
		t.shape = append([]int(nil), ref.shape...)
	}
	return t
}

// Reshape returns a view of the same data with a new shape of equal volume.
func (t *Dense) Reshape(shape ...int) *Dense {
	return FromSlice(t.data, shape...)
}

// At returns the element at the given multi-index.
func (t *Dense) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set writes the element at the given multi-index.
func (t *Dense) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Dense) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Zero sets every element to zero.
func (t *Dense) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Dense) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// AddInPlace adds other elementwise into t. Shapes must have equal volume.
func (t *Dense) AddInPlace(other *Dense) {
	assertSameSize(t, other)
	for i, v := range other.data {
		t.data[i] += v
	}
}

// SubInPlace subtracts other elementwise from t.
func (t *Dense) SubInPlace(other *Dense) {
	assertSameSize(t, other)
	for i, v := range other.data {
		t.data[i] -= v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Dense) ScaleInPlace(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AxpyInPlace computes t += alpha * other.
func (t *Dense) AxpyInPlace(alpha float64, other *Dense) {
	assertSameSize(t, other)
	for i, v := range other.data {
		t.data[i] += alpha * v
	}
}

// Dot returns the inner product of t and other viewed as flat vectors.
func (t *Dense) Dot(other *Dense) float64 {
	assertSameSize(t, other)
	var acc float64
	for i, v := range t.data {
		acc += v * other.data[i]
	}
	return acc
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Dense) L2Norm() float64 {
	var acc float64
	for _, v := range t.data {
		acc += v * v
	}
	return math.Sqrt(acc)
}

// SumAbs returns the L1 norm of the flattened tensor.
func (t *Dense) SumAbs() float64 {
	var acc float64
	for _, v := range t.data {
		acc += math.Abs(v)
	}
	return acc
}

// MaxAbs returns the maximum absolute element, or 0 for an empty tensor.
func (t *Dense) MaxAbs() float64 {
	var m float64
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether two tensors have identical shapes and elementwise
// differences at most tol.
func Equal(a, b *Dense, tol float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

func assertSameSize(a, b *Dense) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: size mismatch %v vs %v", a.shape, b.shape))
	}
}
