package tensor

import "fmt"

// MatMul computes C = A·B for 2D tensors A (m×k) and B (k×n), writing into a
// newly allocated m×n tensor.
func MatMul(a, b *Dense) *Dense {
	m, k := mustMatrix(a)
	k2, n := mustMatrix(b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Dense) {
	m, k := mustMatrix(a)
	_, n := mustMatrix(b)
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	// ikj loop order: streams through b and c rows sequentially.
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransAInto computes dst = Aᵀ·B where A is k×m and B is k×n;
// dst must be m×n. Used for weight gradients.
func MatMulTransAInto(dst, a, b *Dense) {
	k, m := mustMatrix(a)
	k2, n := mustMatrix(b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulTransA inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	cd := dst.data
	for i := range cd {
		cd[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes dst = A·Bᵀ where A is m×k and B is n×k;
// dst must be m×n. Used for input gradients.
func MatMulTransBInto(dst, a, b *Dense) {
	m, k := mustMatrix(a)
	n, k2 := mustMatrix(b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulTransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	cd := dst.data
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var acc float64
			for p, av := range arow {
				acc += av * brow[p]
			}
			crow[j] = acc
		}
	}
}

func mustMatrix(t *Dense) (rows, cols int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2D tensor, got shape %v", t.shape))
	}
	return t.shape[0], t.shape[1]
}
