package tensor

import (
	"fmt"
	"sync/atomic"

	"lbchat/internal/parallel"
)

// workerCount is the package-wide worker budget for data-parallel kernels.
// Zero (the default) resolves to GOMAXPROCS; one disables parallel kernels
// entirely. It is read on every large matmul, so it is an atomic rather than
// a plain variable.
var workerCount atomic.Int64

// SetWorkers sets the worker budget for parallel kernels. n <= 0 restores
// the default (one worker per logical CPU); 1 forces the serial paths.
func SetWorkers(n int) { workerCount.Store(int64(n)) }

// Workers returns the effective worker count for parallel kernels.
func Workers() int { return parallel.Resolve(int(workerCount.Load())) }

// matMulParallelFlops is the minimum multiply-accumulate count before a
// matmul fans out across workers. Chosen from the BenchmarkMatMul* data in
// matmul_bench_test.go: goroutine dispatch costs a few microseconds (~10k
// FLOPs of ikj matmul), so each worker must amortize well above that. At
// 1<<20 MACs split 16 ways a worker gets ≥64k MACs (~20µs), keeping dispatch
// overhead under a few percent, while the default policy's training-step
// matmuls (16×771×64 ≈ 790k MACs) stay on the serial path — they sit inside
// the per-vehicle parallel loop, which already owns the cores at that scale.
const matMulParallelFlops = 1 << 20

// MatMul computes C = A·B for 2D tensors A (m×k) and B (k×n), writing into a
// newly allocated m×n tensor.
func MatMul(a, b *Dense) *Dense {
	m, k := mustMatrix(a)
	k2, n := mustMatrix(b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
//
// Above matMulParallelFlops the row range is split into contiguous chunks,
// one per worker. Each output row is produced by exactly the same arithmetic
// in exactly the same order as the serial path, so results are bit-identical
// at any worker count.
func MatMulInto(dst, a, b *Dense) {
	m, k := mustMatrix(a)
	_, n := mustMatrix(b)
	ad, bd, cd := a.data, b.data, dst.data
	if w := Workers(); w > 1 && m > 1 && m*k*n >= matMulParallelFlops {
		parallel.Chunks(w, m, func(lo, hi int) {
			matMulRows(cd, ad, bd, lo, hi, k, n)
		})
		return
	}
	matMulRows(cd, ad, bd, 0, m, k, n)
}

// matMulRows computes rows [lo, hi) of C = A·B.
func matMulRows(cd, ad, bd []float64, lo, hi, k, n int) {
	for i := lo * n; i < hi*n; i++ {
		cd[i] = 0
	}
	// ikj loop order: streams through b and c rows sequentially.
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransAInto computes dst = Aᵀ·B where A is k×m and B is k×n;
// dst must be m×n. Used for weight gradients.
//
// This kernel stays serial: its outer loop runs over the shared reduction
// dimension k, with every iteration accumulating into the whole of dst, so a
// row split would either race or have to reorder the floating-point
// accumulation and break bit-determinism.
func MatMulTransAInto(dst, a, b *Dense) {
	k, m := mustMatrix(a)
	k2, n := mustMatrix(b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulTransA inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	cd := dst.data
	for i := range cd {
		cd[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes dst = A·Bᵀ where A is m×k and B is n×k;
// dst must be m×n. Used for input gradients. Rows of dst are independent, so
// large shapes take the same chunked-parallel path as MatMulInto.
func MatMulTransBInto(dst, a, b *Dense) {
	m, k := mustMatrix(a)
	n, k2 := mustMatrix(b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmulTransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	ad, bd, cd := a.data, b.data, dst.data
	if w := Workers(); w > 1 && m > 1 && m*k*n >= matMulParallelFlops {
		parallel.Chunks(w, m, func(lo, hi int) {
			matMulTransBRows(cd, ad, bd, lo, hi, k, n)
		})
		return
	}
	matMulTransBRows(cd, ad, bd, 0, m, k, n)
}

// matMulTransBRows computes rows [lo, hi) of C = A·Bᵀ.
func matMulTransBRows(cd, ad, bd []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var acc float64
			for p, av := range arow {
				acc += av * brow[p]
			}
			crow[j] = acc
		}
	}
}

func mustMatrix(t *Dense) (rows, cols int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2D tensor, got shape %v", t.shape))
	}
	return t.shape[0], t.shape[1]
}
