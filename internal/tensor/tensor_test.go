package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("size = %d", x.Size())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("not zero-filled")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceNoCopy(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	x := FromSlice(data, 2, 2)
	data[0] = 9
	if x.At(0, 0) != 9 {
		t.Error("FromSlice must wrap, not copy")
	}
}

func TestFromSliceLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSet(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.At(1, 2) != 7 {
		t.Error("At after Set")
	}
	if x.Data()[5] != 7 {
		t.Error("row-major layout broken")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 5
	if x.Data()[0] != 1 {
		t.Error("clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data()[0] = 9
	if x.At(0, 0) != 9 {
		t.Error("reshape must share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{3, 5}, 2)
	x.AddInPlace(y)
	if x.Data()[0] != 4 || x.Data()[1] != 7 {
		t.Errorf("AddInPlace: %v", x.Data())
	}
	x.SubInPlace(y)
	if x.Data()[0] != 1 || x.Data()[1] != 2 {
		t.Errorf("SubInPlace: %v", x.Data())
	}
	x.ScaleInPlace(3)
	if x.Data()[0] != 3 || x.Data()[1] != 6 {
		t.Errorf("ScaleInPlace: %v", x.Data())
	}
	x.AxpyInPlace(2, y)
	if x.Data()[0] != 9 || x.Data()[1] != 16 {
		t.Errorf("AxpyInPlace: %v", x.Data())
	}
}

func TestNorms(t *testing.T) {
	x := FromSlice([]float64{3, -4}, 2)
	if x.L2Norm() != 5 {
		t.Errorf("L2Norm = %v", x.L2Norm())
	}
	if x.SumAbs() != 7 {
		t.Errorf("SumAbs = %v", x.SumAbs())
	}
	if x.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v", x.MaxAbs())
	}
	if x.Dot(x) != 25 {
		t.Errorf("Dot = %v", x.Dot(x))
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if !Equal(a, b, 1e-6) {
		t.Error("Equal within tolerance failed")
	}
	if Equal(a, b, 1e-9) {
		t.Error("Equal beyond tolerance passed")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if Equal(a, c, 1) {
		t.Error("Equal across shapes passed")
	}
}

func naiveMatMul(a, b *Dense) *Dense {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += a.At(i, p) * b.At(p, j)
			}
			c.Set(acc, i, j)
		}
	}
	return c
}

func TestMatMulAgainstNaive(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	if !Equal(got, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got.Data(), want.Data())
	}
}

func TestMatMulProperty(t *testing.T) {
	f := func(raw int64) bool {
		seed := raw
		if seed < 0 {
			seed = -(seed + 1)
		}
		m, k, n := int(seed%4)+1, int(seed%3)+1, int(seed%5)+1
		a := New(m, k)
		b := New(k, n)
		for i := range a.Data() {
			a.Data()[i] = float64((seed+int64(i)*7)%13) / 3
		}
		for i := range b.Data() {
			b.Data()[i] = float64((seed+int64(i)*11)%17) / 5
		}
		return Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMatMulTransA(t *testing.T) {
	// Aᵀ·B computed directly must match transposing then multiplying.
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2) // 3×2 → Aᵀ is 2×3
	b := FromSlice([]float64{1, 0, 0, 1, 1, 1}, 3, 2)
	got := New(2, 2)
	MatMulTransAInto(got, a, b)
	at := FromSlice([]float64{1, 3, 5, 2, 4, 6}, 2, 3)
	want := naiveMatMul(at, b)
	if !Equal(got, want, 1e-12) {
		t.Errorf("TransA = %v, want %v", got.Data(), want.Data())
	}
}

func TestMatMulTransB(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2) // Bᵀ = [[5,7],[6,8]]
	got := New(2, 2)
	MatMulTransBInto(got, a, b)
	bt := FromSlice([]float64{5, 7, 6, 8}, 2, 2)
	want := naiveMatMul(a, bt)
	if !Equal(got, want, 1e-12) {
		t.Errorf("TransB = %v, want %v", got.Data(), want.Data())
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on inner-dimension mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 2))
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1×1 kernel, stride 1, no padding: im2col rows are exactly the pixels.
	img := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(img, 1, 1, 0)
	if cols.Shape()[0] != 4 || cols.Shape()[1] != 1 {
		t.Fatalf("shape = %v", cols.Shape())
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if cols.Data()[i] != want {
			t.Errorf("col %d = %v", i, cols.Data()[i])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	img := FromSlice([]float64{5}, 1, 1, 1)
	cols := Im2Col(img, 3, 1, 1) // single 3×3 receptive field centered on pixel
	if cols.Shape()[0] != 1 || cols.Shape()[1] != 9 {
		t.Fatalf("shape = %v", cols.Shape())
	}
	var sum float64
	for _, v := range cols.Data() {
		sum += v
	}
	if sum != 5 || cols.Data()[4] != 5 {
		t.Errorf("padded field = %v", cols.Data())
	}
}

func TestCol2ImIsAdjoint(t *testing.T) {
	// <Im2Col(x), y> must equal <x, Col2Im(y)> (adjoint property),
	// which is exactly what backprop through im2col requires.
	const c, h, w, k, stride, pad = 2, 4, 4, 3, 1, 1
	x := New(c, h, w)
	for i := range x.Data() {
		x.Data()[i] = float64(i%7) - 3
	}
	cols := Im2Col(x, k, stride, pad)
	y := New(cols.Shape()[0], cols.Shape()[1])
	for i := range y.Data() {
		y.Data()[i] = float64((i*5)%11) - 5
	}
	lhs := cols.Dot(y)
	back := Col2Im(y, c, h, w, k, stride, pad)
	rhs := x.Dot(back)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}
