package tensor

import "testing"

// TestParallelMatMulBitIdentical pins the determinism contract of the
// chunked kernels: at shapes well above matMulParallelFlops, every worker
// count must produce the exact bits the serial path produces.
func TestParallelMatMulBitIdentical(t *testing.T) {
	const m, k, n = 192, 130, 64 // m·k·n ≈ 1.6M MACs > matMulParallelFlops
	a, b := New(m, k), New(k, n)
	for i, d := range a.Data() {
		a.Data()[i] = d + float64(i%31)*0.37 - 3.1
	}
	for i := range b.Data() {
		b.Data()[i] = float64((i*7)%23)*0.11 - 1.2
	}
	bt := New(n, k) // bᵀ for the TransB kernel
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			bt.Data()[j*k+i] = b.Data()[i*n+j]
		}
	}

	SetWorkers(1)
	serial := New(m, n)
	MatMulInto(serial, a, b)
	serialTransB := New(m, n)
	MatMulTransBInto(serialTransB, a, bt)

	for _, w := range []int{2, 3, 8, 64} {
		SetWorkers(w)
		got := New(m, n)
		MatMulInto(got, a, b)
		for i, v := range got.Data() {
			if v != serial.Data()[i] {
				t.Fatalf("workers=%d: MatMulInto[%d] = %v, serial %v", w, i, v, serial.Data()[i])
			}
		}
		gotTB := New(m, n)
		MatMulTransBInto(gotTB, a, bt)
		for i, v := range gotTB.Data() {
			if v != serialTransB.Data()[i] {
				t.Fatalf("workers=%d: MatMulTransBInto[%d] = %v, serial %v", w, i, v, serialTransB.Data()[i])
			}
		}
	}
	SetWorkers(0)
}

func TestReuse2D(t *testing.T) {
	a := New(4, 8)
	b := Reuse2D(a, 2, 8) // shrink: must reuse storage
	if &b.Data()[0] != &a.Data()[0] {
		t.Error("Reuse2D reallocated despite sufficient capacity")
	}
	if s := b.Shape(); s[0] != 2 || s[1] != 8 {
		t.Errorf("shape = %v", s)
	}
	c := Reuse2D(b, 16, 16) // grow: must reallocate
	if c.Size() != 256 {
		t.Errorf("grown size = %d", c.Size())
	}
	if d := Reuse2D(nil, 3, 3); d.Size() != 9 {
		t.Errorf("nil reuse size = %d", d.Size())
	}
}

func TestReuseLike(t *testing.T) {
	ref := New(2, 3, 4)
	got := ReuseLike(nil, ref)
	if len(got.Shape()) != 3 || got.Size() != 24 {
		t.Errorf("ReuseLike(nil): shape %v", got.Shape())
	}
	big := New(100)
	reused := ReuseLike(big, ref)
	if &reused.Data()[0] != &big.Data()[0] {
		t.Error("ReuseLike reallocated despite capacity")
	}
	if s := reused.Shape(); s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Errorf("ReuseLike shape = %v", s)
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	img := New(3, 16, 16)
	for i := range img.Data() {
		img.Data()[i] = float64(i % 13)
	}
	want := Im2Col(img, 3, 2, 1)
	scratch := New(1, 1)
	got := Im2ColInto(scratch, img, 3, 2, 1)
	if !Equal(want, got, 0) {
		t.Error("Im2ColInto differs from Im2Col")
	}
	// Reuse with dirty contents must still match: every cell is overwritten.
	got.Fill(99)
	got = Im2ColInto(got, img, 3, 2, 1)
	if !Equal(want, got, 0) {
		t.Error("Im2ColInto reuse with dirty scratch differs")
	}
}
