// Package metrics records the observables the paper reports: training-loss
// curves over virtual time (Figs. 2 and 3), successful model-receiving rates
// (§IV-C), and helper renderers that print table rows in the paper's layout.
//
// Curve accumulates (virtual time, value) points and renders ASCII plots;
// ReceiveStats counts model-transfer outcomes; Table is the fixed-layout
// numeric table behind every printed artifact (Tables II–VII, the extension
// studies, and the communication-efficiency and FaultSweep reports).
package metrics
