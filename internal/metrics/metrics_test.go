package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCurveBasics(t *testing.T) {
	var c Curve
	if !math.IsNaN(c.Final()) || !math.IsNaN(c.Min()) {
		t.Error("empty curve should report NaN")
	}
	c.Add(0, 1.0)
	c.Add(60, 0.5)
	c.Add(120, 0.7)
	if c.Final() != 0.7 {
		t.Errorf("Final = %v", c.Final())
	}
	if c.Min() != 0.5 {
		t.Errorf("Min = %v", c.Min())
	}
}

func TestTimeToReach(t *testing.T) {
	var c Curve
	c.Add(0, 1.0)
	c.Add(60, 0.5)
	c.Add(120, 0.2)
	if got := c.TimeToReach(0.5); got != 60 {
		t.Errorf("TimeToReach(0.5) = %v", got)
	}
	if got := c.TimeToReach(0.1); !math.IsNaN(got) {
		t.Errorf("unreachable threshold = %v", got)
	}
}

func TestCurveRender(t *testing.T) {
	c := Curve{Name: "LbChat"}
	c.Add(0, 0.5)
	out := c.Render()
	if !strings.Contains(out, "LbChat") || !strings.Contains(out, "0.5") {
		t.Errorf("render = %q", out)
	}
}

func TestReceiveStats(t *testing.T) {
	var s ReceiveStats
	if !math.IsNaN(s.Rate()) {
		t.Error("no-attempt rate should be NaN")
	}
	s.Record(true)
	s.Record(true)
	s.Record(false)
	if s.Rate() != 2.0/3 {
		t.Errorf("Rate = %v", s.Rate())
	}
	var other ReceiveStats
	other.Record(true)
	s.Merge(other)
	if s.Attempts != 4 || s.Successes != 3 {
		t.Errorf("after merge: %+v", s)
	}
}

func TestTableValueAndRender(t *testing.T) {
	tbl := NewTable("Title", "A", "B")
	tbl.AddRow("Straight", 100, 98)
	tbl.AddRow("Navi. (Dense)", 78.25, 65)
	if got := tbl.Value("Straight", "B"); got != 98 {
		t.Errorf("Value = %v", got)
	}
	if got := tbl.Value("Straight", "missing"); !math.IsNaN(got) {
		t.Errorf("missing column = %v", got)
	}
	if got := tbl.Value("missing", "A"); !math.IsNaN(got) {
		t.Errorf("missing row = %v", got)
	}
	out := tbl.Render()
	for _, want := range []string{"Title", "Straight", "Navi. (Dense)", "100", "78.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestPlotCurves(t *testing.T) {
	a := &Curve{Name: "LbChat"}
	b := &Curve{Name: "DP"}
	for i := 0; i < 10; i++ {
		a.Add(float64(i*60), 1/float64(i+1))
		b.Add(float64(i*60), 1.5/float64(i+1))
	}
	out := PlotCurves(40, 10, a, b)
	if !strings.Contains(out, "LbChat") || !strings.Contains(out, "DP") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("marks missing:\n%s", out)
	}
	if PlotCurves(2, 1) != "" {
		t.Error("degenerate plot should be empty")
	}
	empty := &Curve{Name: "empty"}
	if PlotCurves(40, 10, empty) != "" {
		t.Error("empty curve should produce empty plot")
	}
}
