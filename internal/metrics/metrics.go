package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CurvePoint is one (time, value) sample of a training-loss curve.
type CurvePoint struct {
	Time  float64 `json:"time"`
	Value float64 `json:"value"`
}

// Curve is a named time series.
type Curve struct {
	Name   string       `json:"name"`
	Points []CurvePoint `json:"points"`
}

// Add appends a sample.
func (c *Curve) Add(t, v float64) {
	c.Points = append(c.Points, CurvePoint{Time: t, Value: v})
}

// Final returns the last recorded value (NaN when empty).
func (c *Curve) Final() float64 {
	if len(c.Points) == 0 {
		return math.NaN()
	}
	return c.Points[len(c.Points)-1].Value
}

// Min returns the smallest recorded value (NaN when empty).
func (c *Curve) Min() float64 {
	if len(c.Points) == 0 {
		return math.NaN()
	}
	m := math.Inf(1)
	for _, p := range c.Points {
		m = math.Min(m, p.Value)
	}
	return m
}

// TimeToReach returns the earliest time at which the curve drops to at most
// threshold, or NaN if it never does. Used for the Fig. 3 convergence-speed
// comparison (SCO takes 1.5–1.8× longer than LbChat).
func (c *Curve) TimeToReach(threshold float64) float64 {
	for _, p := range c.Points {
		if p.Value <= threshold {
			return p.Time
		}
	}
	return math.NaN()
}

// Render prints the curve as aligned "time value" rows.
func (c *Curve) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", c.Name)
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%8.0f  %.6f\n", p.Time, p.Value)
	}
	return b.String()
}

// ReceiveStats counts model-transfer outcomes, the basis of the §IV-C
// "successful model receiving rate" comparison.
type ReceiveStats struct {
	Attempts  int `json:"attempts"`
	Successes int `json:"successes"`
}

// Record adds one transfer outcome.
func (s *ReceiveStats) Record(ok bool) {
	s.Attempts++
	if ok {
		s.Successes++
	}
}

// Rate returns the success fraction (NaN with no attempts).
func (s *ReceiveStats) Rate() float64 {
	if s.Attempts == 0 {
		return math.NaN()
	}
	return float64(s.Successes) / float64(s.Attempts)
}

// Merge accumulates other into s.
func (s *ReceiveStats) Merge(other ReceiveStats) {
	s.Attempts += other.Attempts
	s.Successes += other.Successes
}

// Table renders rows of labeled values in the paper's table style.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
}

type tableRow struct {
	label  string
	values []float64
}

// NewTable creates a table with the given title and value-column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a labeled row; the number of values must match the columns.
func (t *Table) AddRow(label string, values ...float64) {
	t.rows = append(t.rows, tableRow{label: label, values: values})
}

// Value returns the cell at (rowLabel, column), or NaN if absent.
func (t *Table) Value(rowLabel, column string) float64 {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return math.NaN()
	}
	for _, r := range t.rows {
		if r.label == rowLabel && col < len(r.values) {
			return r.values[col]
		}
	}
	return math.NaN()
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	labelWidth := len("Task")
	for _, r := range t.rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	// Column width follows the widest header, so long names (e.g.
	// "LbChat-NoResume") never mash into their neighbor.
	colWidth := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colWidth[i] = 12
		if len(c)+2 > colWidth[i] {
			colWidth[i] = len(c) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", labelWidth+2, "Task")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colWidth[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelWidth+2, r.label)
		for i, v := range r.values {
			w := 12
			if i < len(colWidth) {
				w = colWidth[i]
			}
			if v == math.Trunc(v) && math.Abs(v) < 1e6 {
				fmt.Fprintf(&b, "%*.0f", w, v)
			} else {
				fmt.Fprintf(&b, "%*.2f", w, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns the map's keys in sorted order, for deterministic
// rendering of per-protocol results.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PlotCurves renders one or more curves as a shared ASCII chart: time on
// the x-axis, value on the y-axis, one mark character per curve. It is the
// terminal stand-in for the paper's loss-vs-time figures.
func PlotCurves(width, height int, curves ...*Curve) string {
	if width < 8 || height < 2 || len(curves) == 0 {
		return ""
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	minV, maxV := math.Inf(1), math.Inf(-1)
	var maxT float64
	for _, c := range curves {
		for _, p := range c.Points {
			minV = math.Min(minV, p.Value)
			maxV = math.Max(maxV, p.Value)
			maxT = math.Max(maxT, p.Time)
		}
	}
	if math.IsInf(minV, 1) || maxT == 0 {
		return ""
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for ci, curve := range curves {
		mark := marks[ci%len(marks)]
		for _, p := range curve.Points {
			col := int(p.Time / maxT * float64(width-1))
			row := int((maxV - p.Value) / (maxV - minV) * float64(height-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.4f\n", maxV)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%.4f +%s t=%.0fs\n", minV, strings.Repeat("-", width-8), maxT)
	for i, c := range curves {
		fmt.Fprintf(&b, "  %c %s\n", marks[i%len(marks)], c.Name)
	}
	return b.String()
}
