package baselines

import (
	"math"

	"lbchat/internal/core"
	"lbchat/internal/dataset"
	"lbchat/internal/model"
)

// DP is the Decentralized Powerloss gossip baseline [5]: vehicles exchange
// models with whoever is in range (no route-aware prioritization, no
// coresets) and merge with weights derived from a normalized logarithmic
// function of the received model's loss on a held-out local validation
// split. Per §IV-B it runs under LbChat's communication constraints, with a
// per-encounter compression ratio sized to fit the contact duration.
type DP struct {
	// ValidationFraction is the share of local data held out for scoring
	// received models.
	ValidationFraction float64

	valSets [][]dataset.Weighted
	scratch *model.Policy
}

var _ core.Protocol = (*DP)(nil)

// NewDP returns the gossip baseline with a 10% validation split.
func NewDP() *DP { return &DP{ValidationFraction: 0.1} }

// Name implements core.Protocol.
func (p *DP) Name() string { return "DP" }

// Setup implements core.Protocol: carve per-vehicle validation splits.
func (p *DP) Setup(e *core.Engine) error {
	p.valSets = make([][]dataset.Weighted, len(e.Vehicles))
	for i, v := range e.Vehicles {
		n := v.Data.Len()
		k := int(p.ValidationFraction * float64(n))
		if k < 8 {
			k = minInt(8, n)
		}
		perm := v.RNG().Derive("dp-val").Perm(n)[:k]
		p.valSets[i] = v.Data.Subset(perm).Items()
	}
	if len(e.Vehicles) > 0 {
		p.scratch = e.Vehicles[0].Policy.Clone()
	}
	return nil
}

// OnTick implements core.Protocol.
func (p *DP) OnTick(e *core.Engine, now float64) {
	// No value- or route-awareness: any in-range pair is equally good. A
	// jittered constant score keeps the matching unbiased across IDs.
	rng := e.RNG()
	pairs := e.CandidatePairs(func(a, b int) float64 {
		return 1 + 0.01*rng.Float64()
	})
	for _, pr := range e.GreedyMatch(pairs) {
		p.gossip(e, pr.A, pr.B)
	}
}

func (p *DP) gossip(e *core.Engine, a, b int) {
	va, vb := e.Vehicles[a], e.Vehicles[b]
	window := math.Min(e.Cfg.TimeBudget, e.Contact(a, b))
	if window <= 0 {
		return
	}
	psi := fitWindowPsi(window, math.Min(va.Bandwidth, vb.Bandwidth), e.ModelWireBytes())
	fromA, fromB, elapsed := exchangeModels(e, va, vb, psi, window)
	doneAt := e.Now() + elapsed
	if fromA != nil {
		flat := fromA
		e.Events.Schedule(doneAt, func() { p.merge(vb, p.valSets[b], flat) })
	}
	if fromB != nil {
		flat := fromB
		e.Events.Schedule(doneAt, func() { p.merge(va, p.valSets[a], flat) })
	}
	e.MarkChatted(a, b, doneAt)
}

// merge folds a received model in with the normalized-log loss weights of
// [5]: the smaller the received model's validation loss, the larger its
// share.
func (p *DP) merge(v *core.Vehicle, val []dataset.Weighted, peerFlat []float64) {
	lossSelf := v.Policy.Loss(val)
	if err := p.scratch.SetFlat(peerFlat); err != nil {
		return
	}
	lossPeer := p.scratch.Loss(val)
	wPeer := math.Log(1+lossSelf) / (math.Log(1+lossSelf) + math.Log(1+lossPeer))
	if math.IsNaN(wPeer) {
		wPeer = 0.5
	}
	_ = core.MergeModels(v, peerFlat, 1-wPeer, wPeer)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
