package baselines

import (
	"math"

	"lbchat/internal/core"
	"lbchat/internal/telemetry"
)

// fitWindowPsi returns the equal compression level at which two model
// payloads fit the exchange window at the negotiated bandwidth.
func fitWindowPsi(windowSeconds, minBWBps float64, modelBytes int) float64 {
	if windowSeconds <= 0 || minBWBps <= 0 || modelBytes <= 0 {
		return 0
	}
	psi := windowSeconds * minBWBps / 8 / float64(2*modelBytes)
	return math.Min(1, psi)
}

// exchangeModels ships both vehicles' models compressed at the given equal
// level, sequentially within the window. It returns each direction's
// decompressed payload (nil when the transfer failed) and the total elapsed
// time. Receive counters are recorded on the receiving vehicles.
func exchangeModels(e *core.Engine, a, b *core.Vehicle, psi, window float64) (fromA, fromB []float64, elapsed float64) {
	if psi <= 0 {
		return nil, nil, 0
	}
	bytes := e.CompressedModelBytes(psi)
	e.Emit(telemetry.CompressionChosen{Time: e.Now(), From: a.ID, To: b.ID, Psi: psi, Bytes: bytes})
	e.Emit(telemetry.CompressionChosen{Time: e.Now(), From: b.ID, To: a.ID, Psi: psi, Bytes: bytes})
	recA := e.CompressReconstruct(a.Policy.Flat(), psi)
	resAB := e.SimulateTransfer(bytes, a.ID, b.ID, window)
	b.Recv.Record(resAB.Completed)
	elapsed = resAB.Elapsed
	if resAB.Completed {
		fromA = recA
	}

	recB := e.CompressReconstruct(b.Policy.Flat(), psi)
	resBA := e.SimulateTransfer(bytes, b.ID, a.ID, window-elapsed)
	a.Recv.Record(resBA.Completed)
	elapsed += resBA.Elapsed
	if resBA.Completed {
		fromB = recB
	}
	return fromA, fromB, elapsed
}

// averageFlat returns the elementwise mean of the given parameter vectors.
// Empty input returns nil.
func averageFlat(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1 / float64(len(vecs))
	for i := range out {
		out[i] *= inv
	}
	return out
}
