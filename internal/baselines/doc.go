// Package baselines reimplements the paper's four comparison protocols over
// the same co-simulation engine, radio model, and driving model as LbChat:
//
//   - ProxSkip [28]: central-server federated learning with probabilistic
//     communication skipping and an idealistic unconstrained backend.
//   - RSU-L [29]: road-side-unit coordinators at intersections that merge
//     and redistribute models opportunistically.
//   - DFL-DDS [30]: synchronous fully-decentralized rounds with
//     data-source-diversity aggregation weights.
//   - DP [5]: asynchronous gossip with loss-based logarithmic merge weights.
//
// DFL-DDS and DP are subject to exactly LbChat's communication constraints
// (same radio, bandwidths, contact windows), with per-encounter compression
// ratios computed to fit the contact duration, as §IV-B prescribes for a
// fair comparison.
package baselines
