package baselines

import (
	"math"

	"lbchat/internal/core"
)

// DFLDDS is the synchronous fully-decentralized baseline [30]: all vehicles
// proceed in lock-step rounds (the round length equals LbChat's T_B, per
// §IV-B), exchanging models at round boundaries with in-range peers and
// tuning aggregation weights to DIVERSIFY the data sources contributing to
// each model. Each model carries a contribution vector over source vehicles;
// the merge weight is chosen to pull the combined vector toward uniform.
type DFLDDS struct {
	// contrib[i] is vehicle i's current data-source contribution vector.
	contrib [][]float64
	// nextRound is the next synchronized round boundary.
	nextRound float64
}

var _ core.Protocol = (*DFLDDS)(nil)

// NewDFLDDS returns the synchronous decentralized baseline.
func NewDFLDDS() *DFLDDS { return &DFLDDS{} }

// Name implements core.Protocol.
func (p *DFLDDS) Name() string { return "DFL-DDS" }

// Setup implements core.Protocol.
func (p *DFLDDS) Setup(e *core.Engine) error {
	n := len(e.Vehicles)
	p.contrib = make([][]float64, n)
	for i := range p.contrib {
		c := make([]float64, n)
		c[i] = 1
		p.contrib[i] = c
	}
	p.nextRound = e.Cfg.TimeBudget
	return nil
}

// OnTick implements core.Protocol: exchanges happen only at round
// boundaries — the synchronization requirement that makes round-based
// schemes brittle among moving vehicles.
func (p *DFLDDS) OnTick(e *core.Engine, now float64) {
	if now < p.nextRound {
		return
	}
	p.nextRound += e.Cfg.TimeBudget
	rng := e.RNG()
	pairs := e.CandidatePairs(func(a, b int) float64 {
		return 1 + 0.01*rng.Float64()
	})
	for _, pr := range e.GreedyMatch(pairs) {
		p.exchange(e, pr.A, pr.B)
	}
}

func (p *DFLDDS) exchange(e *core.Engine, a, b int) {
	va, vb := e.Vehicles[a], e.Vehicles[b]
	// The adapted baseline compresses so the pair can finish within the
	// contact duration, capped by the round length.
	window := math.Min(e.Cfg.TimeBudget, e.Contact(a, b))
	if window <= 0 {
		return
	}
	psi := fitWindowPsi(window, math.Min(va.Bandwidth, vb.Bandwidth), e.ModelWireBytes())
	fromA, fromB, elapsed := exchangeModels(e, va, vb, psi, window)
	doneAt := e.Now() + elapsed
	// Contribution vectors ride along with the models (negligible size).
	contribA := append([]float64(nil), p.contrib[a]...)
	contribB := append([]float64(nil), p.contrib[b]...)
	if fromA != nil {
		flat := fromA
		e.Events.Schedule(doneAt, func() { p.merge(vb, b, flat, contribA) })
	}
	if fromB != nil {
		flat := fromB
		e.Events.Schedule(doneAt, func() { p.merge(va, a, flat, contribB) })
	}
	e.MarkChatted(a, b, doneAt)
}

// merge picks the self-weight α minimizing the distance of the combined
// contribution vector from uniform — the data-source-diversifying weight
// tuning of DFL-DDS — then blends models and updates the receiver's vector.
func (p *DFLDDS) merge(v *core.Vehicle, idx int, peerFlat, peerContrib []float64) {
	self := p.contrib[idx]
	n := len(self)
	uniform := 1 / float64(n)
	bestAlpha, bestDist := 0.5, math.Inf(1)
	for step := 0; step <= 20; step++ {
		alpha := float64(step) / 20
		var dist float64
		for i := range self {
			d := alpha*self[i] + (1-alpha)*peerContrib[i] - uniform
			dist += d * d
		}
		if dist < bestDist {
			bestAlpha, bestDist = alpha, dist
		}
	}
	// Guard against degenerate all-peer merges: keep at least a 20% stake
	// in the local model, as the original work bounds self-weights.
	alpha := math.Max(0.2, math.Min(0.8, bestAlpha))
	if err := core.MergeModels(v, peerFlat, alpha, 1-alpha); err != nil {
		return
	}
	for i := range self {
		self[i] = alpha*self[i] + (1-alpha)*peerContrib[i]
	}
}
