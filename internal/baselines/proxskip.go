package baselines

import (
	"lbchat/internal/core"
	"lbchat/internal/simrand"
	"lbchat/internal/telemetry"
)

// ProxSkip is the central-server federated-learning baseline [28]. Vehicles
// run local steps continuously (the engine's training loop) and, at each
// round boundary, communicate with the server only with probability
// SyncProb — ProxSkip's hallmark communication skipping. The backend is
// idealistically unconstrained (§IV-B): transfers are instantaneous and
// unlimited in bandwidth. Under the lossy regime, each up/downlink suffers
// a wireless loss uniformly sampled from the distance-loss lookup table
// (§IV-C), exactly as the paper evaluates it.
type ProxSkip struct {
	// SyncProb is the per-round probability of a global synchronization.
	SyncProb float64
	// RoundInterval is the round length in seconds (defaults to T_B).
	RoundInterval float64

	nextRound float64
	rng       *simrand.Rand
}

var _ core.Protocol = (*ProxSkip)(nil)

// NewProxSkip returns the baseline with the standard skip probability.
func NewProxSkip() *ProxSkip { return &ProxSkip{SyncProb: 0.5} }

// Name implements core.Protocol.
func (p *ProxSkip) Name() string { return "ProxSkip" }

// Setup implements core.Protocol.
func (p *ProxSkip) Setup(e *core.Engine) error {
	if p.RoundInterval <= 0 {
		p.RoundInterval = e.Cfg.TimeBudget
	}
	p.nextRound = p.RoundInterval
	p.rng = e.RNG().Derive("proxskip")
	return nil
}

// OnTick implements core.Protocol.
func (p *ProxSkip) OnTick(e *core.Engine, now float64) {
	if now < p.nextRound {
		return
	}
	p.nextRound += p.RoundInterval
	if !p.rng.Bernoulli(p.SyncProb) {
		return // skip this round's communication: local steps continue
	}
	p.globalSync(e)
}

// globalSync gathers every vehicle's model over a lossy uplink, averages
// the survivors, and pushes the average back over a lossy downlink.
func (p *ProxSkip) globalSync(e *core.Engine) {
	var received [][]float64
	bytes := e.ModelWireBytes()
	for _, v := range e.Vehicles {
		ok := p.linkSurvives(e, bytes)
		p.emitLink(e, v.ID, telemetry.PeerInfra, bytes, ok)
		v.Recv.Record(ok) // server-receive leg, counted per vehicle
		if ok {
			received = append(received, v.Policy.Flat())
		}
	}
	avg := averageFlat(received)
	if avg == nil {
		return
	}
	for _, v := range e.Vehicles {
		ok := p.linkSurvives(e, bytes)
		p.emitLink(e, telemetry.PeerInfra, v.ID, bytes, ok)
		if !ok {
			continue
		}
		flat := append([]float64(nil), avg...)
		// Ignore impossible length-mismatch errors (identical models).
		_ = v.Policy.SetFlat(flat)
	}
}

// emitLink records one cellular leg as a telemetry transfer. The backend is
// idealistically instantaneous, so Elapsed is zero; a lost leg delivers
// nothing and is labeled a wireless loss.
func (p *ProxSkip) emitLink(e *core.Engine, from, to, bytes int, ok bool) {
	if !e.TelemetryEnabled() {
		return
	}
	ev := telemetry.Transfer{
		Time: e.Now(), From: from, To: to, Payload: telemetry.PayloadModel,
		BytesRequested: bytes, Completed: ok,
	}
	if ok {
		ev.BytesDelivered = bytes
	} else {
		ev.Truncated = telemetry.TruncLoss
	}
	e.Emit(ev)
}

// linkSurvives samples one cellular transfer outcome. The paper applies "a
// wireless loss uniformly sampled from the distance-loss lookup table"; a
// cellular leg with HARQ is reliable per packet, so the sampled loss acts
// as an outage probability for the whole transfer (squared: both the radio
// bearer and the backhaul handoff must hold for the multi-second transfer).
func (p *ProxSkip) linkSurvives(e *core.Engine, payloadBytes int) bool {
	if e.Radio.Lossless {
		return true
	}
	dist := p.rng.Uniform(0, e.Radio.Params.MaxRangeMeters)
	per := e.Radio.Table.At(dist)
	good := (1 - per) * (1 - per)
	return p.rng.Bernoulli(good)
}
