package baselines

import (
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/core"
	"lbchat/internal/geom"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
	"lbchat/internal/world"
)

// tinyEnv builds a small engine plus the map's intersection positions.
func tinyEnv(t *testing.T, lossless bool) (*core.Engine, []geom.Point) {
	t.Helper()
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(m, world.SpawnConfig{Experts: 3, BackgroundCars: 6, Pedestrians: 15}, simrand.New(31))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.CoresetSize = 30
	cfg.LayeringSample = 96
	cfg.EvalSubset = 32
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	datasets := world.CollectDataset(w, ras, cfg.Model.NumWaypoints, 200, 0.5)
	tr := trace.Record(w, 1000, 0.5)
	probe := datasets[0].Items()[:32]
	eng, err := core.NewEngine(cfg, tr, datasets, radio.NewModel(lossless), probe)
	if err != nil {
		t.Fatal(err)
	}
	var rsus []geom.Point
	for _, n := range m.Nodes {
		if len(n.Out) >= 3 {
			rsus = append(rsus, n.Pos)
		}
	}
	return eng, rsus
}

func runAndCheckLearning(t *testing.T, eng *core.Engine, p core.Protocol) {
	t.Helper()
	if err := eng.Run(p, 400); err != nil {
		t.Fatalf("%s run: %v", p.Name(), err)
	}
	first := eng.LossCurve.Points[0].Value
	final := eng.LossCurve.Final()
	t.Logf("%s: loss %.4f -> %.4f, recv %+v", p.Name(), first, final, eng.FleetReceiveStats())
	if final >= first {
		t.Errorf("%s did not learn: %v -> %v", p.Name(), first, final)
	}
}

func TestProxSkipRuns(t *testing.T) {
	eng, _ := tinyEnv(t, true)
	runAndCheckLearning(t, eng, NewProxSkip())
}

func TestProxSkipLossyDropsTransfers(t *testing.T) {
	eng, _ := tinyEnv(t, false)
	runAndCheckLearning(t, eng, NewProxSkip())
	stats := eng.FleetReceiveStats()
	if stats.Attempts == 0 {
		t.Fatal("ProxSkip never attempted a sync")
	}
	if stats.Successes == stats.Attempts {
		t.Error("lossy regime lost no transfers at all")
	}
}

func TestProxSkipSynchronizesModels(t *testing.T) {
	eng, _ := tinyEnv(t, true)
	if err := eng.Run(NewProxSkip(), 400); err != nil {
		t.Fatal(err)
	}
	// After lossless syncs, vehicle models should be much closer to each
	// other than independent training would leave them.
	a := eng.Vehicles[0].Policy.Flat()
	b := eng.Vehicles[1].Policy.Flat()
	var dist float64
	for i := range a {
		dist += (a[i] - b[i]) * (a[i] - b[i])
	}
	if dist == 0 {
		t.Log("models exactly equal (sync at final tick)")
	}
	// Compare against a no-communication engine: distance must be smaller.
	eng2, _ := tinyEnv(t, true)
	if err := eng2.Run(noComm{}, 400); err != nil {
		t.Fatal(err)
	}
	a2 := eng2.Vehicles[0].Policy.Flat()
	b2 := eng2.Vehicles[1].Policy.Flat()
	var dist2 float64
	for i := range a2 {
		dist2 += (a2[i] - b2[i]) * (a2[i] - b2[i])
	}
	if dist >= dist2 {
		t.Errorf("ProxSkip models no closer than isolated training: %v vs %v", dist, dist2)
	}
}

// noComm is a Protocol that never communicates (isolated local training).
type noComm struct{}

func (noComm) Name() string                 { return "NoComm" }
func (noComm) Setup(*core.Engine) error     { return nil }
func (noComm) OnTick(*core.Engine, float64) {}

func TestRSULRuns(t *testing.T) {
	eng, rsus := tinyEnv(t, true)
	runAndCheckLearning(t, eng, NewRSUL(rsus))
}

func TestRSULRequiresPositions(t *testing.T) {
	eng, _ := tinyEnv(t, true)
	if err := eng.Run(NewRSUL(nil), 100); err == nil {
		t.Error("RSU-L without positions accepted")
	}
}

func TestDFLDDSRuns(t *testing.T) {
	eng, _ := tinyEnv(t, true)
	runAndCheckLearning(t, eng, NewDFLDDS())
}

func TestDFLDDSRoundBoundariesOnly(t *testing.T) {
	eng, _ := tinyEnv(t, true)
	p := NewDFLDDS()
	if err := p.Setup(eng); err != nil {
		t.Fatal(err)
	}
	// Before the first round boundary nothing happens.
	p.OnTick(eng, 1)
	if eng.FleetReceiveStats().Attempts != 0 {
		t.Error("DFL-DDS exchanged before the round boundary")
	}
}

func TestDPRuns(t *testing.T) {
	eng, _ := tinyEnv(t, true)
	runAndCheckLearning(t, eng, NewDP())
}

func TestFitWindowPsi(t *testing.T) {
	// 15 s × 31 Mbps / 8 bits ≈ 58 MB of air time; two 52 MB models need
	// ψ ≈ 0.56.
	psi := fitWindowPsi(15, 31e6, 52_000_000)
	if psi < 0.5 || psi > 0.62 {
		t.Errorf("fit-window ψ = %v", psi)
	}
	if fitWindowPsi(0, 31e6, 52_000_000) != 0 {
		t.Error("zero window should not transfer")
	}
	if fitWindowPsi(1000, 31e6, 1000) != 1 {
		t.Error("huge window should cap ψ at 1")
	}
}

func TestAverageFlat(t *testing.T) {
	got := averageFlat([][]float64{{1, 3}, {3, 5}})
	if got[0] != 2 || got[1] != 4 {
		t.Errorf("averageFlat = %v", got)
	}
	if averageFlat(nil) != nil {
		t.Error("empty average should be nil")
	}
}
