package baselines

import (
	"fmt"
	"math"

	"lbchat/internal/core"
	"lbchat/internal/geom"
	"lbchat/internal/telemetry"
)

// RSUL is the road-side-unit baseline [29]: coordinators at intersections
// maintain RSU models, receive models from passing vehicles over the lossy
// V2I radio, aggregate, and send the result back. RSUs share a free backend
// (§IV-B assumes no backend bandwidth constraint) over which they
// periodically average their models.
type RSUL struct {
	// Positions are the RSU deployment sites (road crosses, per [29]).
	Positions []geom.Point
	// BackboneInterval is how often RSU models average over the backend (s).
	BackboneInterval float64
	// VehicleCooldown is the minimum interval between one vehicle's RSU
	// exchanges (s).
	VehicleCooldown float64

	rsuModels    [][]float64
	rsuSeen      []int
	nextBackbone float64
	lastVisit    []float64
}

var _ core.Protocol = (*RSUL)(nil)

// NewRSUL deploys RSUs at the given intersection positions.
func NewRSUL(positions []geom.Point) *RSUL {
	return &RSUL{
		Positions:        positions,
		BackboneInterval: 120,
		VehicleCooldown:  45,
	}
}

// Name implements core.Protocol.
func (p *RSUL) Name() string { return "RSU-L" }

// Setup implements core.Protocol.
func (p *RSUL) Setup(e *core.Engine) error {
	if len(p.Positions) == 0 {
		return fmt.Errorf("baselines: RSU-L needs at least one RSU position")
	}
	if len(e.Vehicles) == 0 {
		return fmt.Errorf("baselines: RSU-L needs vehicles")
	}
	init := e.Vehicles[0].Policy.Flat()
	p.rsuModels = make([][]float64, len(p.Positions))
	for i := range p.rsuModels {
		p.rsuModels[i] = append([]float64(nil), init...)
	}
	p.rsuSeen = make([]int, len(p.Positions))
	p.lastVisit = make([]float64, len(e.Vehicles))
	for i := range p.lastVisit {
		p.lastVisit[i] = math.Inf(-1)
	}
	p.nextBackbone = p.BackboneInterval
	return nil
}

// OnTick implements core.Protocol.
func (p *RSUL) OnTick(e *core.Engine, now float64) {
	if now >= p.nextBackbone {
		p.backboneSync()
		p.nextBackbone += p.BackboneInterval
	}
	for _, v := range e.Vehicles {
		if v.BusyUntil > now || now-p.lastVisit[v.ID] < p.VehicleCooldown {
			continue
		}
		rsu, dist := p.nearestRSU(e, v.ID)
		// Vehicles associate with an RSU only well inside radio range —
		// starting a 52 MB transfer at the cell edge would always fail.
		if rsu < 0 || dist > 0.7*e.Radio.Params.MaxRangeMeters {
			continue
		}
		p.visit(e, v, rsu)
	}
}

// nearestRSU returns the closest RSU to the vehicle's current position.
func (p *RSUL) nearestRSU(e *core.Engine, vid int) (int, float64) {
	pos := e.Trace.At(vid, e.Now())
	best, bestD := -1, math.Inf(1)
	for i, rp := range p.Positions {
		if d := pos.Dist(rp); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// visit runs one vehicle↔RSU exchange: lossy upload, RSU-side aggregation,
// lossy download of the aggregate.
func (p *RSUL) visit(e *core.Engine, v *core.Vehicle, rsu int) {
	now := e.Now()
	start := now
	rsuPos := p.Positions[rsu]
	dist := func(elapsed float64) float64 { return e.Trace.At(v.ID, start+elapsed).Dist(rsuPos) }
	bytes := e.ModelWireBytes()
	// The exchange window is the time the vehicle stays inside the RSU's
	// radio range (capped), estimated from its shared route — RSUs are
	// fixed, so this is even easier than the vehicle-to-vehicle case.
	window := p.contactWindow(e, v.ID, rsuPos)

	up := e.Radio.SimulateTransfer(bytes, dist, v.Bandwidth, window, e.RNG())
	e.Emit(telemetry.Transfer{
		Time: now, From: v.ID, To: telemetry.PeerInfra, Payload: telemetry.PayloadModel,
		BytesRequested: bytes, BytesDelivered: up.BytesDelivered,
		Completed: up.Completed, Elapsed: up.Elapsed, Truncated: up.Truncated,
	})
	elapsed := up.Elapsed
	if up.Completed {
		// RSU aggregates the received model into its model with a bounded
		// step, so it tracks the fleet instead of averaging history away.
		m := p.rsuModels[rsu]
		flat := v.Policy.Flat()
		w := math.Max(0.4, 1/float64(p.rsuSeen[rsu]+2))
		for i := range m {
			m[i] = (1-w)*m[i] + w*flat[i]
		}
		p.rsuSeen[rsu]++
	}
	// A cold RSU (no uploads yet) has nothing useful to send back: its
	// model is still the shared initialization.
	if p.rsuSeen[rsu] == 0 {
		v.BusyUntil = now + elapsed
		p.lastVisit[v.ID] = now
		return
	}
	down := e.Radio.SimulateTransfer(bytes, func(el float64) float64 { return dist(elapsed + el) },
		v.Bandwidth, window-elapsed, e.RNG())
	e.Emit(telemetry.Transfer{
		Time: now, From: telemetry.PeerInfra, To: v.ID, Payload: telemetry.PayloadModel,
		BytesRequested: bytes, BytesDelivered: down.BytesDelivered,
		Completed: down.Completed, Elapsed: down.Elapsed, Truncated: down.Truncated,
	})
	v.Recv.Record(down.Completed)
	elapsed += down.Elapsed
	if down.Completed {
		agg := append([]float64(nil), p.rsuModels[rsu]...)
		e.Events.Schedule(now+elapsed, func() {
			// Vehicle blends the RSU aggregate with its local model,
			// keeping the larger share local: the RSU model is a few
			// visits stale.
			_ = core.MergeModels(v, agg, 0.65, 0.35)
		})
	}
	v.BusyUntil = now + elapsed
	p.lastVisit[v.ID] = now
}

// contactWindow estimates how long the vehicle remains within radio range
// of the RSU, capped at 120 s — clamped to the engine's ContactHorizon so
// the scan never reads past the span a sliding-window trace reserves.
func (p *RSUL) contactWindow(e *core.Engine, vid int, rsuPos geom.Point) float64 {
	window := 120.0
	if h := e.Cfg.ContactHorizon; h > 0 && h < window {
		window = h
	}
	now := e.Now()
	maxRange := e.Radio.Params.MaxRangeMeters
	for dt := 0.0; dt < window; dt += 2 {
		if e.Trace.At(vid, now+dt).Dist(rsuPos) > maxRange {
			return dt
		}
	}
	return window
}

// backboneSync averages all RSU models over the free backend.
func (p *RSUL) backboneSync() {
	avg := averageFlat(p.rsuModels)
	if avg == nil {
		return
	}
	for i := range p.rsuModels {
		copy(p.rsuModels[i], avg)
	}
}
