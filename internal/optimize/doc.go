// Package optimize solves the Eq. (7) compression-ratio optimization: given
// the coreset-based value assessments of two encountered vehicles' models
// and the fitted φ curves predicting compressed-model losses, choose the
// per-direction compression levels (ψ_i, ψ_j) maximizing the joint exchange
// gain under the contact-time and bandwidth constraints.
//
// Sign convention (see DESIGN.md "intent-vs-text corrections"): a vehicle's
// gain from receiving the peer's model compressed at ψ is
//
//	ReLU( f(x_self; C_peer) − φ_peer(ψ) )
//
// — positive exactly when the peer's (compressed) model explains the peer's
// data better than the receiver's own model does, which is the "value"
// semantics of §III-C. The third term rewards unused exchange time so
// uninterested vehicles decouple quickly.
package optimize
