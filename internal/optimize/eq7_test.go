package optimize

import (
	"math"
	"testing"
)

// phiFlat builds a φ curve with constant loss at every ψ.
func phiFlat(t *testing.T, loss float64) *PhiCurve {
	t.Helper()
	c, err := FitPhi([]float64{0.1, 0.5, 1.0}, []float64{loss, loss, loss})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// phiDecreasing builds a realistic φ: high loss at strong compression,
// approaching base at ψ = 1.
func phiDecreasing(t *testing.T, base float64) *PhiCurve {
	t.Helper()
	c, err := FitPhi(
		[]float64{0.05, 0.2, 0.5, 1.0},
		[]float64{base + 0.4, base + 0.1, base + 0.02, base},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func baseProblem(t *testing.T) Problem {
	t.Helper()
	return Problem{
		PhiSelf:         phiDecreasing(t, 0.02),
		PhiPeer:         phiDecreasing(t, 0.02),
		LossSelfOnPeer:  0.10, // peer model is much better on its data
		LossPeerOnSelf:  0.10,
		ModelBytes:      52_000_000,
		MinBandwidthBps: 31e6,
		TimeBudget:      15,
		ContactTime:     60,
		LambdaC:         0.0008,
	}
}

func TestFitPhiExcludesZeroPsi(t *testing.T) {
	c, err := FitPhi([]float64{0, 0.5, 1.0}, []float64{0, 0.1, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// The (0,0) placeholder pair must not drag the curve to zero.
	if got := c.Predict(0.01); got < 0.09 {
		t.Errorf("Predict near 0 = %v; the ψ=0 pair leaked in", got)
	}
}

func TestFitPhiNeedsTwoPoints(t *testing.T) {
	if _, err := FitPhi([]float64{0, 1}, []float64{0, 0.1}); err == nil {
		t.Error("single positive-ψ sample accepted")
	}
}

func TestPredictClampsToSampledRange(t *testing.T) {
	c := phiDecreasing(t, 0.02)
	if got, edge := c.Predict(0.0), c.Predict(0.05); got != edge {
		t.Errorf("Predict(0) = %v, want clamp to %v", got, edge)
	}
	if got, edge := c.Predict(5), c.Predict(1); got != edge {
		t.Errorf("Predict(5) = %v, want clamp to %v", got, edge)
	}
}

func TestSolveRespectsTimeConstraint(t *testing.T) {
	p := baseProblem(t)
	sol := Solve(p)
	window := math.Min(p.TimeBudget, p.ContactTime)
	if sol.TransferTime > window+1e-9 {
		t.Errorf("transfer time %v exceeds window %v", sol.TransferTime, window)
	}
	if sol.PsiSelf < 0 || sol.PsiSelf > 1 || sol.PsiPeer < 0 || sol.PsiPeer > 1 {
		t.Errorf("ψ out of bounds: %v, %v", sol.PsiSelf, sol.PsiPeer)
	}
}

func TestSolveSendsWhenValuable(t *testing.T) {
	sol := Solve(baseProblem(t))
	if sol.PsiSelf == 0 && sol.PsiPeer == 0 {
		t.Fatalf("no exchange chosen despite large value gaps: %+v", sol)
	}
	if sol.GainSelf <= 0 && sol.GainPeer <= 0 {
		t.Errorf("no positive gain recorded: %+v", sol)
	}
}

func TestSolveDeclinesWorthlessExchange(t *testing.T) {
	p := baseProblem(t)
	// Both models already explain the peer's data better than the peers
	// themselves: no possible gain.
	p.LossSelfOnPeer = 0.001
	p.LossPeerOnSelf = 0.001
	sol := Solve(p)
	if sol.PsiSelf != 0 || sol.PsiPeer != 0 {
		t.Errorf("worthless exchange not declined: ψ=(%v, %v)", sol.PsiSelf, sol.PsiPeer)
	}
}

func TestSolveAsymmetricValue(t *testing.T) {
	p := baseProblem(t)
	// Only the PEER's model is valuable to self; self's model is worthless
	// to the peer.
	p.LossSelfOnPeer = 0.5
	p.LossPeerOnSelf = 0.001
	sol := Solve(p)
	if sol.PsiPeer <= sol.PsiSelf {
		t.Errorf("asymmetric value not reflected: ψSelf=%v ψPeer=%v", sol.PsiSelf, sol.PsiPeer)
	}
}

func TestSolveTightContactLimitsTransfer(t *testing.T) {
	p := baseProblem(t)
	p.ContactTime = 3 // barely any time together
	sol := Solve(p)
	if sol.TransferTime > 3+1e-9 {
		t.Errorf("transfer %vs exceeds 3s contact", sol.TransferTime)
	}
	maxPsi := 3 * p.MinBandwidthBps / 8 / float64(p.ModelBytes)
	if sol.PsiSelf+sol.PsiPeer > maxPsi+0.021 { // one grid step of slack
		t.Errorf("total ψ %v exceeds feasible %v", sol.PsiSelf+sol.PsiPeer, maxPsi)
	}
}

func TestSolveDegenerateInputs(t *testing.T) {
	p := baseProblem(t)
	p.ModelBytes = 0
	sol := Solve(p)
	if sol.PsiSelf != 0 || sol.PsiPeer != 0 {
		t.Error("zero-size model should not be scheduled")
	}
	p = baseProblem(t)
	p.ContactTime = 0
	if sol := Solve(p); sol.PsiSelf != 0 || sol.PsiPeer != 0 {
		t.Error("zero contact should not transfer")
	}
	p = baseProblem(t)
	p.PhiSelf, p.PhiPeer = nil, nil
	if sol := Solve(p); sol.PsiSelf != 0 || sol.PsiPeer != 0 {
		t.Error("nil φ curves should disable gains")
	}
}

func TestSolveObjectiveMatchesComponents(t *testing.T) {
	p := baseProblem(t)
	sol := Solve(p)
	window := math.Min(p.TimeBudget, p.ContactTime)
	want := sol.GainSelf + sol.GainPeer + p.LambdaC*(window-sol.TransferTime)
	if math.Abs(sol.Objective-want) > 1e-9 {
		t.Errorf("objective %v != components %v", sol.Objective, want)
	}
}

func TestSolveLambdaPressure(t *testing.T) {
	// A huge time award must suppress marginal exchanges.
	p := baseProblem(t)
	p.LossSelfOnPeer = 0.05
	p.LossPeerOnSelf = 0.05
	p.LambdaC = 10
	sol := Solve(p)
	if sol.PsiSelf != 0 || sol.PsiPeer != 0 {
		t.Errorf("large λc should force decoupling: %+v", sol)
	}
}

func TestSolveGridStepOverride(t *testing.T) {
	p := baseProblem(t)
	p.GridStep = 0.25 // coarse grid: solutions land on multiples of 0.25
	sol := Solve(p)
	for _, psi := range []float64{sol.PsiSelf, sol.PsiPeer} {
		frac := psi / 0.25
		if math.Abs(frac-math.Round(frac)) > 1e-9 {
			t.Errorf("ψ %v not on the 0.25 grid", psi)
		}
	}
}
