package optimize

import (
	"fmt"
	"math"

	"lbchat/internal/interp"
)

// PhiCurve is the fitted mapping φ from compression level ψ to the model's
// predicted loss on a coreset. It is built from sampled
// (ψ_k, f(x̂^{ψ_k}; C)) pairs via Akima interpolation, as the paper
// prescribes (its reference [21]).
type PhiCurve struct {
	spline  *interp.Akima
	minPsi  float64
	maxPsi  float64
	minLoss float64
}

// FitPhi fits a φ curve through sampled (ψ, loss) pairs. ψ = 0 pairs are
// excluded automatically (no model is received at ψ = 0; the solver treats
// that case specially). At least two distinct positive-ψ samples are needed.
func FitPhi(psis, losses []float64) (*PhiCurve, error) {
	if len(psis) != len(losses) {
		return nil, fmt.Errorf("optimize: %d psis vs %d losses", len(psis), len(losses))
	}
	var xs, ys []float64
	for i, p := range psis {
		if p > 0 {
			xs = append(xs, p)
			ys = append(ys, losses[i])
		}
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("optimize: need ≥2 positive-ψ samples, got %d", len(xs))
	}
	sp, err := interp.NewAkima(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("optimize: fitting φ: %w", err)
	}
	knots := sp.Knots()
	minLoss := ys[0]
	for _, y := range ys[1:] {
		if y < minLoss {
			minLoss = y
		}
	}
	if minLoss < 0 {
		minLoss = 0
	}
	return &PhiCurve{spline: sp, minPsi: knots[0], maxPsi: knots[len(knots)-1], minLoss: minLoss}, nil
}

// Predict returns the predicted loss at compression level ψ. ψ is clamped
// to the sampled range (losses outside it are not extrapolated, avoiding
// runaway cubic tails) and the prediction is floored at the minimum sampled
// loss: a cubic can undershoot between steep knots, and predicting a
// compressed model to outperform the best measured variant would fabricate
// exchange gains out of interpolation noise.
func (c *PhiCurve) Predict(psi float64) float64 {
	if psi < c.minPsi {
		psi = c.minPsi
	}
	if psi > c.maxPsi {
		psi = c.maxPsi
	}
	v := c.spline.Eval(psi)
	if v < c.minLoss {
		return c.minLoss
	}
	return v
}

// Problem is one Eq. (7) instance between a "self" and a "peer" vehicle.
type Problem struct {
	// PhiSelf predicts f(x̂_self^ψ; C_self): the self model compressed at ψ
	// evaluated on the self coreset. The peer's gain derives from it.
	PhiSelf *PhiCurve
	// PhiPeer predicts f(x̂_peer^ψ; C_peer); the self gain derives from it.
	PhiPeer *PhiCurve
	// LossSelfOnPeer is f(x_self; C_peer), the self model evaluated on the
	// peer's coreset.
	LossSelfOnPeer float64
	// LossPeerOnSelf is f(x_peer; C_self).
	LossPeerOnSelf float64
	// ModelBytes is the uncompressed model wire size S.
	ModelBytes int
	// MinBandwidthBps is min{B_i, B_j} in bits/s.
	MinBandwidthBps float64
	// TimeBudget is T_B (s) and ContactTime the estimated contact duration.
	TimeBudget  float64
	ContactTime float64
	// LambdaC weights the time-saved award term (loss units per second).
	LambdaC float64
	// GridStep is the ψ search resolution (default 0.02).
	GridStep float64
}

// Solution is the optimizer's output.
type Solution struct {
	// PsiSelf is the compression level for the model the SELF vehicle
	// sends; PsiPeer for the model it receives.
	PsiSelf, PsiPeer float64
	// Objective is the achieved Eq. (7) value.
	Objective float64
	// TransferTime is T_c at the optimum (s).
	TransferTime float64
	// GainSelf is the self's expected gain from receiving the peer model;
	// GainPeer the peer's expected gain from receiving the self model.
	GainSelf, GainPeer float64
}

func relu(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Solve maximizes Eq. (7) by grid search over (ψ_self, ψ_peer) ∈ [0, 1]²
// subject to T_c ≤ min{T_B, T_contact}. The objective is piecewise smooth in
// each variable and the grid is tiny, so exhaustive search is both exact
// enough and fast (≈2600 spline evaluations at the default resolution).
func Solve(p Problem) Solution {
	step := p.GridStep
	if step <= 0 {
		step = 0.02
	}
	window := math.Min(p.TimeBudget, p.ContactTime)
	best := Solution{PsiSelf: 0, PsiPeer: 0, Objective: p.LambdaC * window}

	if p.ModelBytes <= 0 || p.MinBandwidthBps <= 0 || window <= 0 {
		return best
	}
	timePerPsi := float64(p.ModelBytes) * 8 / p.MinBandwidthBps // seconds per unit ψ

	gainSelf := func(psiPeer float64) float64 {
		if psiPeer == 0 || p.PhiPeer == nil {
			return 0
		}
		return relu(p.LossSelfOnPeer - p.PhiPeer.Predict(psiPeer))
	}
	gainPeer := func(psiSelf float64) float64 {
		if psiSelf == 0 || p.PhiSelf == nil {
			return 0
		}
		return relu(p.LossPeerOnSelf - p.PhiSelf.Predict(psiSelf))
	}

	steps := int(1/step) + 1
	for a := 0; a < steps; a++ {
		psiSelf := math.Min(1, float64(a)*step)
		gp := gainPeer(psiSelf)
		for b := 0; b < steps; b++ {
			psiPeer := math.Min(1, float64(b)*step)
			tc := (psiSelf + psiPeer) * timePerPsi
			if tc > window {
				break // ψ_peer only grows within this row
			}
			obj := gainSelf(psiPeer) + gp + p.LambdaC*(window-tc)
			if obj > best.Objective {
				best = Solution{
					PsiSelf:      psiSelf,
					PsiPeer:      psiPeer,
					Objective:    obj,
					TransferTime: tc,
					GainSelf:     gainSelf(psiPeer),
					GainPeer:     gp,
				}
			}
		}
	}
	return best
}
