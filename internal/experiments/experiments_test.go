package experiments

import (
	"math"
	"strings"
	"testing"

	"lbchat/internal/core"
	"lbchat/internal/eval"
	"lbchat/internal/metrics"
)

// sharedEnv is built once: env construction collects data and records a
// trace, which dominates test time.
var sharedEnv *Env

func getEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		env, err := BuildEnv(TestScale())
		if err != nil {
			t.Fatalf("BuildEnv: %v", err)
		}
		sharedEnv = env
	}
	return sharedEnv
}

func TestBuildEnvShape(t *testing.T) {
	env := getEnv(t)
	s := env.Scale
	if env.Trace.NumVehicles() != s.Vehicles {
		t.Errorf("trace vehicles = %d", env.Trace.NumVehicles())
	}
	if len(env.Probe) == 0 || len(env.Probe) > s.ProbeFrames {
		t.Errorf("probe size = %d", len(env.Probe))
	}
	if len(env.Suite.Routes[eval.CondStraight]) == 0 {
		t.Error("no straight routes")
	}
	if len(env.RSUPositions()) == 0 {
		t.Error("no RSU positions")
	}
	fresh := env.FreshDatasets()
	if len(fresh) != s.Vehicles {
		t.Fatalf("fresh datasets = %d", len(fresh))
	}
	// Clones must be independent: growing one run's dataset must not leak.
	before := env.datasets[0].Len()
	fresh[0].Absorb(fresh[1], 1)
	if env.datasets[0].Len() != before {
		t.Error("FreshDatasets aliases master copies")
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	env := getEnv(t)
	if _, err := env.RunProtocol("Nonsense", true, nil); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunProtocolLbChat(t *testing.T) {
	env := getEnv(t)
	run, err := env.RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Name != ProtoLbChat || !run.Lossless {
		t.Errorf("run metadata: %+v", run)
	}
	if len(run.Fleet) != env.Scale.Vehicles {
		t.Errorf("fleet size = %d", len(run.Fleet))
	}
	first := run.Curve.Points[0].Value
	if run.Curve.Final() >= first {
		t.Errorf("LbChat did not learn: %v -> %v", first, run.Curve.Final())
	}
}

func TestRunProtocolConfigOverride(t *testing.T) {
	env := getEnv(t)
	run, err := env.RunProtocol(ProtoLbChat, true, func(c *core.Config) { c.CoresetSize = 10 })
	if err != nil {
		t.Fatal(err)
	}
	if run.Curve.Final() >= run.Curve.Points[0].Value {
		t.Error("coreset-size override run did not learn")
	}
}

func TestEveryProtocolRuns(t *testing.T) {
	env := getEnv(t)
	names := append([]ProtocolName{}, BenchmarkProtocols...)
	names = append(names, ProtoSCO, ProtoEqualComp, ProtoAvgAgg)
	for _, name := range names {
		run, err := env.RunProtocol(name, false, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if run.Curve.Final() >= run.Curve.Points[0].Value {
			t.Errorf("%s did not learn under loss", name)
		}
	}
}

func TestEvalFleetAndTable(t *testing.T) {
	env := getEnv(t)
	run, err := env.RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	rates := env.EvalFleet(run.Fleet)
	for _, cond := range eval.Conditions {
		r, ok := rates[cond]
		if !ok {
			t.Fatalf("missing condition %v", cond)
		}
		if math.IsNaN(r) || r < 0 || r > 100 {
			t.Errorf("%v rate = %v", cond, r)
		}
	}
	tbl := env.SuccessTable("T", []ProtocolName{ProtoLbChat},
		map[ProtocolName]map[eval.Condition]float64{ProtoLbChat: rates})
	out := tbl.Render()
	if !strings.Contains(out, "Straight") || !strings.Contains(out, "LbChat") {
		t.Errorf("table render:\n%s", out)
	}
}

func TestConvergenceRatio(t *testing.T) {
	var a, b metrics.Curve
	a.Add(0, 1)
	a.Add(100, 0.1)
	b.Add(0, 1)
	b.Add(100, 0.5)
	b.Add(200, 0.1)
	if got := ConvergenceRatio(&a, &b); math.Abs(got-2) > 1e-9 {
		t.Errorf("ratio = %v, want 2", got)
	}
	var c metrics.Curve
	c.Add(50, 1) // never converges
	if got := ConvergenceRatio(&a, &c); !math.IsNaN(got) {
		t.Errorf("unreachable ratio = %v", got)
	}
}

func TestExtensionStudiesRun(t *testing.T) {
	env := getEnv(t)
	tbl, err := env.RouteSharingStudy()
	if err != nil {
		t.Fatalf("RouteSharingStudy: %v", err)
	}
	if math.IsNaN(tbl.Value("final probe loss (x1000)", "LbChat")) {
		t.Error("route-sharing table missing LbChat loss")
	}
	tbl, err = env.AdaptiveCoresetStudy(true)
	if err != nil {
		t.Fatalf("AdaptiveCoresetStudy: %v", err)
	}
	if math.IsNaN(tbl.Value("final probe loss (x1000)", "adaptive |C|")) {
		t.Error("adaptive table missing value")
	}
}

func TestCoresetMethodStudyRuns(t *testing.T) {
	env := getEnv(t)
	tbl, err := env.CoresetMethodStudy(true)
	if err != nil {
		t.Fatalf("CoresetMethodStudy: %v", err)
	}
	for _, col := range []string{"layered", "sensitivity", "clustering", "uniform"} {
		if math.IsNaN(tbl.Value("final probe loss (x1000)", col)) {
			t.Errorf("missing method column %q", col)
		}
	}
}

func TestHeterogeneityStudyRuns(t *testing.T) {
	env := getEnv(t)
	tbl, err := env.HeterogeneityStudy(true)
	if err != nil {
		t.Fatalf("HeterogeneityStudy: %v", err)
	}
	if math.IsNaN(tbl.Value("final probe loss (x1000)", "5-31 Mbps")) {
		t.Error("heterogeneity table missing value")
	}
}

func TestScalePresets(t *testing.T) {
	for _, s := range []Scale{TestScale(), BenchScale(), FullScale()} {
		if s.Vehicles < 2 || s.CollectTicks <= 0 || s.TrainDuration <= 0 {
			t.Errorf("scale %q has degenerate parameters: %+v", s.Name, s)
		}
	}
	if FullScale().Vehicles != 32 {
		t.Errorf("full scale must match the paper's 32 vehicles")
	}
}

func TestRenderHelpers(t *testing.T) {
	env := getEnv(t)
	run, err := env.RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	curves := RenderCurves([]*ProtocolRun{run})
	if !strings.Contains(curves, "LbChat") {
		t.Error("curve render missing protocol name")
	}
	rates := RenderReceiveRates(map[ProtocolName]float64{ProtoLbChat: 87.5, ProtoDP: 51})
	if !strings.Contains(rates, "LbChat") || !strings.Contains(rates, "87.5") {
		t.Errorf("rate render:\n%s", rates)
	}
}

func TestCompressionSchemeStudyRuns(t *testing.T) {
	env := getEnv(t)
	tbl, err := env.CompressionSchemeStudy(true)
	if err != nil {
		t.Fatalf("CompressionSchemeStudy: %v", err)
	}
	if math.IsNaN(tbl.Value("final probe loss (x1000)", "quantization")) {
		t.Error("quantization column missing")
	}
}
