package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"lbchat/internal/telemetry"
)

// envWithSink copies the shared env so a test-local telemetry sink never
// leaks into the other tests (sharedEnv is reused across the package).
func envWithSink(t *testing.T, sink telemetry.Sink) *Env {
	t.Helper()
	e := *getEnv(t)
	e.Telemetry = sink
	return &e
}

// sameRun asserts two protocol runs agree bit for bit: loss curve, receive
// stats, and every vehicle's final parameter vector.
func sameRun(t *testing.T, label string, a, b *ProtocolRun) {
	t.Helper()
	if len(a.Curve.Points) != len(b.Curve.Points) {
		t.Fatalf("%s: curve lengths %d vs %d", label, len(a.Curve.Points), len(b.Curve.Points))
	}
	for i := range a.Curve.Points {
		if a.Curve.Points[i] != b.Curve.Points[i] {
			t.Fatalf("%s: curve point %d: %+v vs %+v", label, i, a.Curve.Points[i], b.Curve.Points[i])
		}
	}
	if a.Recv != b.Recv {
		t.Fatalf("%s: receive stats %+v vs %+v", label, a.Recv, b.Recv)
	}
	if len(a.Fleet) != len(b.Fleet) {
		t.Fatalf("%s: fleet sizes %d vs %d", label, len(a.Fleet), len(b.Fleet))
	}
	for v := range a.Fleet {
		pa, pb := a.Fleet[v].Flat(), b.Fleet[v].Flat()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: vehicle %d param %d: %v vs %v", label, v, i, pa[i], pb[i])
			}
		}
	}
}

// TestTelemetryDoesNotPerturbRun is the acceptance criterion: attaching a
// full event-stream sink must leave the run's loss curve, receive stats,
// and final parameters bit-identical to a plain run.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	env := getEnv(t)
	plain, err := env.RunProtocol(ProtoLbChat, false, nil)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	mem := telemetry.NewMemorySink()
	res, err := Run(context.Background(), Spec{
		Experiment: ExpProtocol, Protocol: ProtoLbChat,
		Env: envWithSink(t, mem),
	})
	if err != nil {
		t.Fatalf("telemetry run: %v", err)
	}
	sameRun(t, "telemetry on vs off", plain, res.Runs[0])
	if mem.Len() == 0 {
		t.Fatal("sink received no events")
	}
}

// TestEventStreamDeterministicAcrossWorkers runs the concurrent Fig. 3
// harness (two protocols in parallel) at workers=1 and workers=8 and
// requires the drained event streams to be identical element for element.
func TestEventStreamDeterministicAcrossWorkers(t *testing.T) {
	runAt := func(workers int) ([]telemetry.Event, []*ProtocolRun) {
		mem := telemetry.NewMemorySink()
		env := envWithSink(t, mem)
		env.Scale.Workers = workers
		res, err := Run(context.Background(), Spec{Experiment: ExpFig3, Lossless: true, Env: env})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return mem.Events(), res.Runs
	}
	ev1, runs1 := runAt(1)
	ev8, runs8 := runAt(8)
	if len(ev1) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(ev1, ev8) {
		if len(ev1) != len(ev8) {
			t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev8))
		}
		for i := range ev1 {
			if !reflect.DeepEqual(ev1[i], ev8[i]) {
				t.Fatalf("event %d differs: %#v vs %#v", i, ev1[i], ev8[i])
			}
		}
	}
	for i := range runs1 {
		sameRun(t, string(runs1[i].Name), runs1[i], runs8[i])
	}
}

// TestRunCancellationReturnsPartialResult: a pre-canceled context must stop
// at the first engine tick and surface a partial Result with Canceled set —
// not an error.
func TestRunCancellationReturnsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Spec{Experiment: ExpProtocol, Protocol: ProtoLbChat, Env: getEnv(t)})
	if err != nil {
		t.Fatalf("canceled run returned error: %v", err)
	}
	if !res.Canceled {
		t.Fatal("Result.Canceled = false for canceled context")
	}
	run := res.Runs[0]
	if !run.Canceled {
		t.Fatal("run.Canceled = false")
	}
	if run.Comm == nil {
		t.Fatal("canceled run dropped its telemetry summary")
	}
	full, err := getEnv(t).RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if len(run.Curve.Points) >= len(full.Curve.Points) {
		t.Errorf("canceled run recorded %d curve points, full run %d — expected an early stop",
			len(run.Curve.Points), len(full.Curve.Points))
	}
}

// TestRunCanceledTableExperiment: canceling a table experiment must skip
// evaluation (nil table) while still returning the partial runs.
func TestRunCanceledTableExperiment(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Spec{Experiment: ExpTable7, Env: getEnv(t)})
	if err != nil {
		t.Fatalf("canceled table run returned error: %v", err)
	}
	if !res.Canceled {
		t.Fatal("Result.Canceled = false")
	}
	if res.Table != nil {
		t.Error("canceled experiment still produced a table")
	}
	if len(res.Runs) == 0 {
		t.Error("canceled experiment dropped its partial runs")
	}
}

// TestRunJSONLEndToEnd streams a run into the JSONL sink, reads the stream
// back, and cross-checks it against the run's aggregate summary.
func TestRunJSONLEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewJSONL(&buf)
	res, err := Run(context.Background(), Spec{
		Experiment: ExpProtocol, Protocol: ProtoLbChat, Lossless: true,
		Env: envWithSink(t, sink),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("closing sink: %v", err)
	}
	events, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	if events[0].Kind() != telemetry.KindRunStarted {
		t.Errorf("first event kind = %s, want %s", events[0].Kind(), telemetry.KindRunStarted)
	}
	if last := events[len(events)-1]; last.Kind() != telemetry.KindRunFinished {
		t.Errorf("last event kind = %s, want %s", last.Kind(), telemetry.KindRunFinished)
	}
	counts := map[string]int64{}
	for _, ev := range events {
		counts[ev.Kind()]++
	}
	initiated, completed, aborted := res.Runs[0].Comm.Chats()
	if counts[telemetry.KindChatInitiated] != initiated {
		t.Errorf("stream has %d chat_initiated, summary says %d", counts[telemetry.KindChatInitiated], initiated)
	}
	if counts[telemetry.KindChatCompleted] != completed {
		t.Errorf("stream has %d chat_completed, summary says %d", counts[telemetry.KindChatCompleted], completed)
	}
	if counts[telemetry.KindChatAborted] != aborted {
		t.Errorf("stream has %d chat_aborted, summary says %d", counts[telemetry.KindChatAborted], aborted)
	}
}

// TestCommTableFromRun checks the Fig. 6-style report against the summary
// it renders.
func TestCommTableFromRun(t *testing.T) {
	env := getEnv(t)
	run, err := env.RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatalf("RunProtocol: %v", err)
	}
	tbl := CommTable([]*ProtocolRun{run, nil})
	_, done, _ := run.Comm.Chats()
	if got := tbl.Value("chats completed", "LbChat"); got != float64(done) {
		t.Errorf("chats completed = %v, want %d", got, done)
	}
	const mb = 1.0 / (1 << 20)
	if got := tbl.Value("total MB requested", "LbChat"); got != float64(run.Comm.TotalBytesRequested())*mb {
		t.Errorf("total MB requested = %v", got)
	}
	if got := tbl.Value("final probe loss (x1000)", "LbChat"); got != 1000*run.Curve.Final() {
		t.Errorf("final loss row = %v, want %v", got, 1000*run.Curve.Final())
	}
}

func TestScaleByName(t *testing.T) {
	for name, vehicles := range map[string]int{
		"test": TestScale().Vehicles, "bench": BenchScale().Vehicles,
		"": BenchScale().Vehicles, "full": FullScale().Vehicles,
	} {
		s, err := ScaleByName(name)
		if err != nil {
			t.Fatalf("ScaleByName(%q): %v", name, err)
		}
		if s.Vehicles != vehicles {
			t.Errorf("ScaleByName(%q).Vehicles = %d, want %d", name, s.Vehicles, vehicles)
		}
	}
	if _, err := ScaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Experiment: "tab99", Env: getEnv(t)}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
