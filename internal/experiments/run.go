package experiments

import (
	"context"
	"fmt"

	"lbchat/internal/core"
	"lbchat/internal/faults"
	"lbchat/internal/metrics"
	"lbchat/internal/telemetry"
)

// Experiment names accepted by Spec.Experiment. They match the -exp tokens
// of cmd/lbchat-bench.
const (
	// ExpProtocol trains one fleet under Spec.Protocol (the default).
	ExpProtocol = "protocol"
	// ExpFig2 trains the five-protocol lineup (Fig. 2 loss curves).
	ExpFig2 = "fig2"
	// ExpFig3 trains LbChat vs SCO and computes the convergence ratio.
	ExpFig3 = "fig3"
	// ExpTable2 and ExpTable3 are the driving-success tables (lossless /
	// lossy); ExpTable4–ExpTable7 the coreset-size sweep and ablations.
	ExpTable2 = "tab2"
	ExpTable3 = "tab3"
	ExpTable4 = "tab4"
	ExpTable5 = "tab5"
	ExpTable6 = "tab6"
	ExpTable7 = "tab7"
	// Extension studies beyond the paper's tables.
	ExpRouteShare = "routeshare"
	ExpMethods    = "methods"
	ExpAdaptive   = "adaptive"
	ExpHetero     = "hetero"
	ExpQuant      = "quant"
	// ExpFaultSweep is the robustness grid: burst-loss × churn settings,
	// LbChat with vs without session resumption (EXPERIMENTS.md
	// "Robustness").
	ExpFaultSweep = "faultsweep"
	// ExpFleetScan is the scale workload: a synthetic random-waypoint fleet
	// (internal/shard.Fleet) ticked and pair-scanned for Spec.Duration
	// virtual seconds, streaming its trace instead of holding it resident
	// when sharded. It skips the full environment build, so fleets of 10k+
	// vehicles measure the scan/trace machinery, not dataset collection.
	ExpFleetScan = "fleetscan"
)

// Spec selects and parameterizes one experiment for Run. The zero value
// trains LbChat at bench scale in the lossless regime.
type Spec struct {
	// Experiment picks the harness (Exp* constants); "" means ExpProtocol.
	Experiment string
	// Protocol is the protocol to train for ExpProtocol ("" = LbChat).
	// Harness experiments (fig2, tables) ignore it.
	Protocol ProtocolName
	// Lossless selects the wireless regime for regime-parameterized
	// experiments (protocol, fig2, fig3, methods, adaptive, hetero, quant).
	// The tables fix their own regimes.
	Lossless bool
	// ScaleName resolves via ScaleByName ("" = bench). Ignored when Scale
	// or Env is set.
	ScaleName string
	// Scale overrides ScaleName with an explicit scale.
	Scale *Scale
	// Seed, Vehicles, Duration, Workers and Shards, when non-zero, override
	// the resolved scale's fields (Workers=1 forces the serial paths;
	// Shards=1 forces the single-index scan).
	Seed     uint64
	Vehicles int
	Duration float64
	Workers  int
	Shards   int
	// FullCoresetRebuild selects the full Algorithm-1 coreset rebuild arm
	// instead of the default incremental partition tree
	// (Scale.FullCoresetRebuild). Ignored when Env is set.
	FullCoresetRebuild bool
	// LegacyDueScan selects the original per-tick O(N) due-vehicle fleet
	// scan instead of the default calendar queue (Scale.LegacyDueScan).
	// Both arms are byte-identical; this is the A/B reference arm.
	// Ignored when Env is set.
	LegacyDueScan bool
	// StreamTrace drives engine runs from a bounded sliding-window trace
	// source (Scale.StreamTrace); TracePath loads the mobility trace from
	// an LBTC file (Scale.TracePath). Both are ignored when Env is set.
	StreamTrace bool
	TracePath   string
	// Telemetry, when non-nil, receives every run's full event stream in
	// deterministic order (see Env.Telemetry). The caller owns Close.
	Telemetry telemetry.Sink
	// Faults configures fault injection (internal/faults) for every engine
	// run the experiment performs; the zero value leaves faults off. It is
	// applied to the environment's engine config, so it also reaches the
	// table/figure harnesses. The FaultSweep experiment manages its own
	// grid and overrides this field per run.
	Faults faults.Config
	// Env reuses a prebuilt environment instead of building one from the
	// scale fields (which are then ignored). Its Telemetry field is
	// overwritten when Spec.Telemetry is set.
	Env *Env
	// Config, when non-nil, adjusts the engine config of every run the
	// experiment performs (e.g. coreset-size or compression overrides).
	Config func(*core.Config)
}

// Result is the typed outcome of Run.
type Result struct {
	// Experiment echoes the resolved Spec.Experiment.
	Experiment string
	// Runs holds every protocol run the experiment performed, in harness
	// order. Each carries its loss curve, receive stats, final fleet, and
	// telemetry summary.
	Runs []*ProtocolRun
	// Table is the experiment's rendered table, when it produces one
	// (tables II–VII and the extension studies). Nil when the experiment
	// was canceled before evaluation.
	Table *metrics.Table
	// Ratio is the Fig. 3 convergence-time ratio (0 otherwise).
	Ratio float64
	// Canceled reports that the context was canceled: Runs hold partial
	// state and downstream evaluation was skipped.
	Canceled bool
	// Env is the environment the experiment ran against, for reuse in
	// follow-up Run calls (build it once, run many specs).
	Env *Env
}

// ScaleByName resolves the named experiment scale: "test", "bench" (also
// ""), or "full".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "test":
		return TestScale(), nil
	case "bench", "":
		return BenchScale(), nil
	case "full":
		return FullScale(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
	}
}

// Run is the unified experiment entrypoint: it resolves the Spec into an
// environment, executes the selected experiment under ctx, and returns a
// typed Result. Cancellation is honored once per engine tick; a canceled
// experiment returns the partial Result with Canceled set and a nil error.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if spec.Experiment == "" {
		spec.Experiment = ExpProtocol
	}
	// The fleetscan scale workload builds no environment (a 10k-vehicle
	// dataset collection would dwarf the measurement), so it short-circuits
	// before scale resolution.
	if spec.Experiment == ExpFleetScan {
		return runFleetScan(ctx, spec)
	}
	env := spec.Env
	if env == nil {
		var scale Scale
		if spec.Scale != nil {
			scale = *spec.Scale
		} else {
			var err error
			if scale, err = ScaleByName(spec.ScaleName); err != nil {
				return nil, err
			}
		}
		if spec.Seed != 0 {
			scale.Seed = spec.Seed
		}
		if spec.Vehicles > 0 {
			scale.Vehicles = spec.Vehicles
		}
		if spec.Duration > 0 {
			scale.TrainDuration = spec.Duration
		}
		if spec.Workers != 0 {
			scale.Workers = spec.Workers
		}
		if spec.Shards != 0 {
			scale.Shards = spec.Shards
		}
		if spec.FullCoresetRebuild {
			scale.FullCoresetRebuild = true
		}
		if spec.LegacyDueScan {
			scale.LegacyDueScan = true
		}
		if spec.StreamTrace {
			scale.StreamTrace = true
		}
		if spec.TracePath != "" {
			scale.TracePath = spec.TracePath
		}
		var err error
		if env, err = BuildEnv(scale); err != nil {
			return nil, err
		}
		// Run owns the env it built: release trace resources (window file
		// handles, temporary stream spills) once the experiment completes.
		// Caller-supplied envs stay open — the caller closes them.
		defer env.Close()
	}
	if spec.Telemetry != nil {
		env.Telemetry = spec.Telemetry
	}
	if spec.Faults.Enabled() {
		env.Cfg.Faults = spec.Faults
	}

	res := &Result{Experiment: spec.Experiment, Env: env}
	var err error
	switch spec.Experiment {
	case ExpProtocol:
		name := spec.Protocol
		if name == "" {
			name = ProtoLbChat
		}
		var run *ProtocolRun
		if run, err = env.runProtocol(ctx, name, spec.Lossless, spec.Config); err == nil {
			env.flushRuns(run)
			res.Runs = []*ProtocolRun{run}
		}
	case ExpFig2:
		res.Runs, err = env.fig2(ctx, spec.Lossless)
	case ExpFig3:
		var lb, sco *ProtocolRun
		if lb, sco, res.Ratio, err = env.fig3(ctx, spec.Lossless); err == nil {
			res.Runs = []*ProtocolRun{lb, sco}
		}
	case ExpTable2:
		res.Table, res.Runs, err = env.benchmarkTable(ctx, true)
	case ExpTable3:
		res.Table, res.Runs, err = env.benchmarkTable(ctx, false)
	case ExpTable4:
		res.Table, res.Runs, err = env.table4(ctx)
	case ExpTable5:
		res.Table, res.Runs, err = env.ablationTable(ctx,
			"Table V: driving success rate with equal comp. ratio (%)", ProtoEqualComp)
	case ExpTable6:
		res.Table, res.Runs, err = env.ablationTable(ctx,
			"Table VI: driving success rate with avg. aggregation (%)", ProtoAvgAgg)
	case ExpTable7:
		res.Table, res.Runs, err = env.ablationTable(ctx,
			"Table VII: driving success rate with sharing coreset only (%)", ProtoSCO)
	case ExpRouteShare:
		res.Table, res.Runs, err = env.routeSharingStudy(ctx)
	case ExpMethods:
		res.Table, res.Runs, err = env.coresetMethodStudy(ctx, spec.Lossless)
	case ExpAdaptive:
		res.Table, res.Runs, err = env.adaptiveCoresetStudy(ctx, spec.Lossless)
	case ExpHetero:
		res.Table, res.Runs, err = env.heterogeneityStudy(ctx, spec.Lossless)
	case ExpQuant:
		res.Table, res.Runs, err = env.compressionSchemeStudy(ctx, spec.Lossless)
	case ExpFaultSweep:
		res.Table, res.Runs, err = env.faultSweep(ctx)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", spec.Experiment)
	}
	if err != nil {
		return nil, err
	}
	res.Canceled = anyCanceled(res.Runs)
	return res, nil
}

// CommTable renders the communication-efficiency report for a set of runs:
// over-the-air byte demand per protocol against the loss it bought — the
// Fig. 6-style tradeoff, from each run's telemetry summary.
func CommTable(runs []*ProtocolRun) *metrics.Table {
	cols := make([]string, 0, len(runs))
	live := make([]*ProtocolRun, 0, len(runs))
	for _, r := range runs {
		if r != nil && r.Comm != nil {
			cols = append(cols, string(r.Name))
			live = append(live, r)
		}
	}
	tbl := metrics.NewTable("Communication efficiency: bytes on air vs final loss", cols...)
	row := func(label string, f func(r *ProtocolRun) float64) {
		vals := make([]float64, len(live))
		for i, r := range live {
			vals[i] = f(r)
		}
		tbl.AddRow(label, vals...)
	}
	const mb = 1.0 / (1 << 20)
	row("chats completed", func(r *ProtocolRun) float64 {
		_, done, _ := r.Comm.Chats()
		return float64(done)
	})
	row("model MB requested", func(r *ProtocolRun) float64 {
		m, _ := r.Comm.BytesRequested()
		return float64(m) * mb
	})
	row("coreset MB requested", func(r *ProtocolRun) float64 {
		_, c := r.Comm.BytesRequested()
		return float64(c) * mb
	})
	row("total MB requested", func(r *ProtocolRun) float64 {
		return float64(r.Comm.TotalBytesRequested()) * mb
	})
	row("total MB delivered", func(r *ProtocolRun) float64 {
		m, c := r.Comm.BytesDelivered()
		return float64(m+c) * mb
	})
	row("model receive rate (%)", func(r *ProtocolRun) float64 {
		return 100 * r.Recv.Rate()
	})
	// Resilience rows appear only when some run actually exercised them, so
	// fault-free reports render exactly as before the faults layer existed.
	anyCount := func(metric string) bool {
		for _, r := range live {
			if r.Comm.Reg.Counter(metric) != 0 {
				return true
			}
		}
		return false
	}
	if anyCount(telemetry.MFaultsInjected) {
		row("faults injected", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MFaultsInjected))
		})
	}
	if anyCount(telemetry.MChatResumed) {
		row("chats resumed", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MChatResumed))
		})
		row("resume MB saved", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MResumeSavedB)) * mb
		})
	}
	if anyCount(telemetry.MSalvages) {
		row("partial salvages", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MSalvages))
		})
	}
	// Shard rows appear only for sharded runs, so single-index reports
	// render exactly as before the shard layer existed.
	if anyCount(telemetry.MShardScans) {
		row("shard scans", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MShardScans))
		})
		row("shard halo guests", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MShardGuests))
		})
	}
	// Incremental-coreset rows appear only when a run refreshed through the
	// partition tree, so full-rebuild reports render exactly as before.
	if anyCount(telemetry.MCoresetLeavesRebuilt) || anyCount(telemetry.MCoresetLeavesCached) {
		row("coreset leaves rebuilt", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MCoresetLeavesRebuilt))
		})
		row("coreset leaves cached", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MCoresetLeavesCached))
		})
		row("coreset tree merges", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MCoresetTreeMerges))
		})
	}
	// Streaming-trace rows appear only when a run was driven by a sliding
	// window, so resident-trace reports render exactly as before.
	if anyCount(telemetry.MTraceLoads) {
		row("trace chunk loads", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MTraceLoads))
		})
		row("trace chunk evicts", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MTraceEvicts))
		})
		row("trace chunk prefetches", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MTracePrefetches))
		})
		// Fetch-pipeline rows appear only when some run actually retried or
		// blocked on a fetch — i.e. remote or degraded chunk sources.
		if anyCount(telemetry.MTraceFetchRetries) || anyCount(telemetry.MTraceFetchWaitNs) {
			row("trace fetch retries", func(r *ProtocolRun) float64 {
				return float64(r.Comm.Reg.Counter(telemetry.MTraceFetchRetries))
			})
			row("trace fetch wait (ms)", func(r *ProtocolRun) float64 {
				return float64(r.Comm.Reg.Counter(telemetry.MTraceFetchWaitNs)) / 1e6
			})
		}
	}
	// Scheduler rows appear only when a run used the calendar queue, so
	// legacy-due-scan reports render exactly as before the scheduler layer
	// existed.
	if anyCount(telemetry.MSchedDueDequeued) || anyCount(telemetry.MSchedBucketsTouched) {
		row("sched due dequeued", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MSchedDueDequeued))
		})
		row("sched buckets touched", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MSchedBucketsTouched))
		})
	}
	if anyCount(telemetry.MSchedShardBatches) {
		row("sched shard batches", func(r *ProtocolRun) float64 {
			return float64(r.Comm.Reg.Counter(telemetry.MSchedShardBatches))
		})
	}
	row("final probe loss (x1000)", func(r *ProtocolRun) float64 {
		return 1000 * r.Curve.Final()
	})
	return tbl
}
