package experiments

import (
	"bytes"
	"testing"

	"lbchat/internal/core"
	"lbchat/internal/telemetry"
)

// TestFullRebuildABDeterminism covers the arm TestShardABDeterminism leaves
// out: with the incremental partition tree disabled, a full LbChat run must
// still produce a byte-identical telemetry event stream and bit-identical
// experiment metrics at every worker × shard combination. The two coreset
// arms are distinct sampling processes — only within-arm determinism is
// asserted; cross-arm quality is covered in internal/core.
func TestFullRebuildABDeterminism(t *testing.T) {
	runWith := func(workers, shards int) (*ProtocolRun, [][]byte) {
		mem := telemetry.NewMemorySink()
		env := envWithSink(t, mem)
		run, err := env.RunProtocol(ProtoLbChat, false, func(c *core.Config) {
			c.DisableIncrementalCoreset = true
			c.Workers = workers
			c.Shards = shards
		})
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
		}
		lines := make([][]byte, 0, mem.Len())
		for _, ev := range mem.Events() {
			line, err := telemetry.Encode(ev)
			if err != nil {
				t.Fatalf("encoding %s: %v", ev.Kind(), err)
			}
			lines = append(lines, line)
		}
		return run, lines
	}

	refRun, refStream := runWith(1, 1)
	if len(refStream) == 0 {
		t.Fatal("full-rebuild reference run emitted no events")
	}
	for _, combo := range [][2]int{{4, 2}, {8, 4}} {
		workers, shards := combo[0], combo[1]
		run, stream := runWith(workers, shards)
		if len(stream) != len(refStream) {
			t.Fatalf("workers=%d shards=%d: %d events, reference %d",
				workers, shards, len(stream), len(refStream))
		}
		for i := range stream {
			if !bytes.Equal(stream[i], refStream[i]) {
				t.Fatalf("workers=%d shards=%d: event %d differs:\nparallel:  %s\nreference: %s",
					workers, shards, i, stream[i], refStream[i])
			}
		}
		sameRun(t, "full-rebuild parallel vs serial", run, refRun)
	}
}

// TestCoresetTreeMetricsSideChannel asserts the incremental-refresh stats
// reach the run summary through the CoresetObserver side channel — and stay
// out of it entirely on the full-rebuild arm, whose reports must render
// exactly as before the tree existed.
func TestCoresetTreeMetricsSideChannel(t *testing.T) {
	env := getEnv(t)
	incRun, err := env.RunProtocol(ProtoLbChat, false, nil)
	if err != nil {
		t.Fatalf("incremental run: %v", err)
	}
	if got := incRun.Comm.Reg.Counter(telemetry.MCoresetLeavesRebuilt); got == 0 {
		t.Error("incremental run recorded no rebuilt leaves")
	}
	if got := incRun.Comm.Reg.Counter(telemetry.MCoresetTreeMerges); got == 0 {
		t.Error("incremental run recorded no tree merges")
	}

	fullRun, err := env.RunProtocol(ProtoLbChat, false, func(c *core.Config) {
		c.DisableIncrementalCoreset = true
	})
	if err != nil {
		t.Fatalf("full-rebuild run: %v", err)
	}
	for _, metric := range []string{
		telemetry.MCoresetLeavesRebuilt,
		telemetry.MCoresetLeavesCached,
		telemetry.MCoresetTreeMerges,
	} {
		if got := fullRun.Comm.Reg.Counter(metric); got != 0 {
			t.Errorf("full-rebuild run recorded %s = %d, want 0", metric, got)
		}
	}
}
