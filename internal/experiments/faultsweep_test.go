package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"lbchat/internal/faults"
	"lbchat/internal/telemetry"
)

func TestFaultSweepGridShape(t *testing.T) {
	cells := FaultSweepGrid()
	if len(cells) != 5 {
		t.Fatalf("grid has %d cells, want 5", len(cells))
	}
	if cells[0].Cfg.Enabled() {
		t.Error("first cell must be the fault-free baseline")
	}
	for i, cell := range cells[1:] {
		if !cell.Cfg.Enabled() {
			t.Errorf("cell %d (%s) has faults disabled", i+1, cell.Label)
		}
		if err := cell.Cfg.Validate(); err != nil {
			t.Errorf("cell %q invalid: %v", cell.Label, err)
		}
	}
	// The burst-only cells must really have churn off.
	if cells[1].Cfg.ChurnPerHour != 0 || cells[2].Cfg.ChurnPerHour != 0 {
		t.Error("burst-only cells still churn")
	}
	if cells[3].Cfg.ChurnPerHour == 0 || cells[4].Cfg.ChurnPerHour == 0 {
		t.Error("churn cells have churn disabled")
	}
}

// TestNoResumeProtocolResolves: the FaultSweep comparison arm must be a
// first-class protocol name.
func TestNoResumeProtocolResolves(t *testing.T) {
	env := getEnv(t)
	run, err := env.RunProtocol(ProtoNoResume, true, nil)
	if err != nil {
		t.Fatalf("ProtoNoResume: %v", err)
	}
	if run.Curve.Final() >= run.Curve.Points[0].Value {
		t.Error("no-resumption arm did not learn")
	}
}

// TestFaultedRunDeterministicAcrossWorkers is the faults acceptance
// criterion: with the heavy profile active (bursts, churn, truncation,
// corruption all firing), a run's full telemetry event stream and results
// must be bit-identical at workers=1 and workers=8.
func TestFaultedRunDeterministicAcrossWorkers(t *testing.T) {
	runAt := func(workers int) ([]telemetry.Event, *ProtocolRun) {
		mem := telemetry.NewMemorySink()
		env := envWithSink(t, mem)
		env.Scale.Workers = workers
		res, err := Run(context.Background(), Spec{
			Experiment: ExpProtocol, Protocol: ProtoLbChat,
			Faults: faults.Heavy(), Env: env,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return mem.Events(), res.Runs[0]
	}
	ev1, run1 := runAt(1)
	ev8, run8 := runAt(8)
	injected := 0
	for _, ev := range ev1 {
		if ev.Kind() == telemetry.KindFaultInjected {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("heavy profile injected nothing; determinism check is vacuous")
	}
	if len(ev1) != len(ev8) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev8))
	}
	for i := range ev1 {
		if !reflect.DeepEqual(ev1[i], ev8[i]) {
			t.Fatalf("event %d differs: %#v vs %#v", i, ev1[i], ev8[i])
		}
	}
	sameRun(t, "faulted workers 1 vs 8", run1, run8)
}

// TestSpecFaultsReachesSummary: a faulted Spec must surface its injections
// in the run's telemetry summary, and CommTable must then grow the
// resilience rows (which stay absent for fault-free runs).
func TestSpecFaultsReachesSummary(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Experiment: ExpProtocol, Protocol: ProtoLbChat,
		Faults: faults.Heavy(), Env: envWithSink(t, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	run := res.Runs[0]
	if run.Comm.Reg.Counter(telemetry.MFaultsInjected) == 0 {
		t.Fatal("faulted run's summary counted no injections")
	}
	tbl := CommTable(res.Runs)
	if got := tbl.Value("faults injected", "LbChat"); got <= 0 {
		t.Errorf("CommTable faults-injected row = %v", got)
	}

	clean, err := getEnv(t).RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanTbl := CommTable([]*ProtocolRun{clean}).Render()
	for _, row := range []string{"faults injected", "chats resumed", "partial salvages"} {
		if strings.Contains(cleanTbl, row) {
			t.Errorf("fault-free report grew a %q row:\n%s", row, cleanTbl)
		}
	}
}
