package experiments

import (
	"context"
	"fmt"

	"lbchat/internal/core"
	"lbchat/internal/coreset"
	"lbchat/internal/metrics"
	"lbchat/internal/parallel"
)

// Extension studies beyond the paper's published tables: the route-sharing
// ablation its design section argues for, the alternative coreset
// constructions §V discusses, and the adaptive coreset sizing the paper
// names as future work.

// runSpec names one protocol run for runConcurrent.
type runSpec struct {
	name     ProtocolName
	lossless bool
	mut      func(*core.Config)
}

// runConcurrent executes independent protocol runs concurrently (each gets
// its own engine and fresh datasets) and returns results in argument order.
// Buffered telemetry streams drain into the Env's user sink in that same
// order, so a shared sink sees a deterministic stream at any worker count.
func (e *Env) runConcurrent(ctx context.Context, specs ...runSpec) ([]*ProtocolRun, error) {
	runs, err := parallel.MapErr(parallel.Resolve(e.Scale.Workers), len(specs), func(i int) (*ProtocolRun, error) {
		return e.runProtocol(ctx, specs[i].name, specs[i].lossless, specs[i].mut)
	})
	if err != nil {
		return nil, err
	}
	e.flushRuns(runs...)
	return runs, nil
}

// RouteSharingStudy isolates the Eq. (5) neighbor prioritization by running
// LbChat with and without it under wireless loss. The paper credits
// route-sharing for LbChat's 87% receiving rate (vs ~51–60% for the
// benchmarks); the ablation shows how much of that margin the priority
// score carries.
func (e *Env) RouteSharingStudy() (*metrics.Table, error) {
	tbl, _, err := e.routeSharingStudy(context.Background())
	return tbl, err
}

func (e *Env) routeSharingStudy(ctx context.Context) (*metrics.Table, []*ProtocolRun, error) {
	runs, err := e.runConcurrent(ctx,
		runSpec{name: ProtoLbChat},
		runSpec{name: ProtoNoPrio},
	)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	withPrio, without := runs[0], runs[1]
	tbl := metrics.NewTable("Route-sharing ablation (W wireless loss)",
		"LbChat", "LbChat-NoPrio")
	tbl.AddRow("final probe loss (x1000)", 1000*withPrio.Curve.Final(), 1000*without.Curve.Final())
	tbl.AddRow("model receive rate (%)", 100*withPrio.Recv.Rate(), 100*without.Recv.Rate())
	tbl.AddRow("transfers attempted", float64(withPrio.Recv.Attempts), float64(without.Recv.Attempts))
	return tbl, runs, nil
}

// CoresetMethodStudy reruns LbChat with each §V coreset-construction
// alternative, reporting the final probe loss per method. All methods share
// the identical workload, radio, and budget |C|.
func (e *Env) CoresetMethodStudy(lossless bool) (*metrics.Table, error) {
	tbl, _, err := e.coresetMethodStudy(context.Background(), lossless)
	return tbl, err
}

func (e *Env) coresetMethodStudy(ctx context.Context, lossless bool) (*metrics.Table, []*ProtocolRun, error) {
	methods := []coreset.Method{
		coreset.MethodLayered,
		coreset.MethodSensitivity,
		coreset.MethodClustering,
		coreset.MethodUniform,
	}
	cols := make([]string, len(methods))
	specs := make([]runSpec, len(methods))
	for i, m := range methods {
		m := m
		cols[i] = m.String()
		specs[i] = runSpec{name: ProtoLbChat, lossless: lossless,
			mut: func(c *core.Config) { c.CoresetMethod = m }}
	}
	runs, err := e.runConcurrent(ctx, specs...)
	if err != nil {
		return nil, nil, fmt.Errorf("coreset method study: %w", err)
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	finals := make([]float64, len(methods))
	rates := make([]float64, len(methods))
	for i, run := range runs {
		finals[i] = 1000 * run.Curve.Final()
		rates[i] = 100 * run.Recv.Rate()
	}
	tbl := metrics.NewTable("Coreset construction methods (LbChat)", cols...)
	tbl.AddRow("final probe loss (x1000)", finals...)
	tbl.AddRow("model receive rate (%)", rates...)
	return tbl, runs, nil
}

// AdaptiveCoresetStudy compares the fixed default coreset budget against
// the adaptive per-vehicle sizing (the paper's future work: "Adaptive
// tuning the size of coreset will be our future work").
func (e *Env) AdaptiveCoresetStudy(lossless bool) (*metrics.Table, error) {
	tbl, _, err := e.adaptiveCoresetStudy(context.Background(), lossless)
	return tbl, err
}

func (e *Env) adaptiveCoresetStudy(ctx context.Context, lossless bool) (*metrics.Table, []*ProtocolRun, error) {
	runs, err := e.runConcurrent(ctx,
		runSpec{name: ProtoLbChat, lossless: lossless},
		runSpec{name: ProtoAdaptive, lossless: lossless},
	)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	fixed, adaptive := runs[0], runs[1]
	tbl := metrics.NewTable("Adaptive coreset sizing", "fixed |C|", "adaptive |C|")
	tbl.AddRow("final probe loss (x1000)", 1000*fixed.Curve.Final(), 1000*adaptive.Curve.Final())
	tbl.AddRow("model receive rate (%)", 100*fixed.Recv.Rate(), 100*adaptive.Recv.Rate())
	return tbl, runs, nil
}

// HeterogeneityStudy explores the heterogeneous communication capabilities
// the paper's footnote 1 defers to future work: the fleet's bandwidths are
// spread over a wide range instead of the near-homogeneous default, and the
// Eq. (5)/Eq. (7) machinery — which already negotiates min{B_i, B_j} — is
// measured under the imbalance.
func (e *Env) HeterogeneityStudy(lossless bool) (*metrics.Table, error) {
	tbl, _, err := e.heterogeneityStudy(context.Background(), lossless)
	return tbl, err
}

func (e *Env) heterogeneityStudy(ctx context.Context, lossless bool) (*metrics.Table, []*ProtocolRun, error) {
	runs, err := e.runConcurrent(ctx,
		runSpec{name: ProtoLbChat, lossless: lossless},
		runSpec{name: ProtoLbChat, lossless: lossless, mut: func(c *core.Config) {
			c.BandwidthMinBps = 5e6 // 5–31 Mbps spread
		}},
	)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	homogeneous, heterogeneous := runs[0], runs[1]
	tbl := metrics.NewTable("Bandwidth heterogeneity (LbChat)",
		"20-31 Mbps", "5-31 Mbps")
	tbl.AddRow("final probe loss (x1000)", 1000*homogeneous.Curve.Final(), 1000*heterogeneous.Curve.Final())
	tbl.AddRow("model receive rate (%)", 100*homogeneous.Recv.Rate(), 100*heterogeneous.Recv.Rate())
	tbl.AddRow("transfers attempted", float64(homogeneous.Recv.Attempts), float64(heterogeneous.Recv.Attempts))
	return tbl, runs, nil
}

// CompressionSchemeStudy compares the paper's default top-k delta
// sparsification against unbiased stochastic quantization (§III-C: "other
// biased/unbiased model compression methods can also be applied, such as
// quantization") inside full LbChat runs.
func (e *Env) CompressionSchemeStudy(lossless bool) (*metrics.Table, error) {
	tbl, _, err := e.compressionSchemeStudy(context.Background(), lossless)
	return tbl, err
}

func (e *Env) compressionSchemeStudy(ctx context.Context, lossless bool) (*metrics.Table, []*ProtocolRun, error) {
	runs, err := e.runConcurrent(ctx,
		runSpec{name: ProtoLbChat, lossless: lossless},
		runSpec{name: ProtoLbChat, lossless: lossless, mut: func(c *core.Config) {
			c.CompressionScheme = core.SchemeQuantize
		}},
	)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	topk, quant := runs[0], runs[1]
	tbl := metrics.NewTable("Compression schemes (LbChat)", "top-k", "quantization")
	tbl.AddRow("final probe loss (x1000)", 1000*topk.Curve.Final(), 1000*quant.Curve.Final())
	tbl.AddRow("model receive rate (%)", 100*topk.Recv.Rate(), 100*quant.Recv.Rate())
	tbl.AddRow("transfers attempted", float64(topk.Recv.Attempts), float64(quant.Recv.Attempts))
	return tbl, runs, nil
}
