package experiments

import (
	"context"
	"fmt"
	"math"

	"lbchat/internal/core"
	"lbchat/internal/eval"
	"lbchat/internal/metrics"
)

// Fig2 reproduces Figure 2: training loss vs time for LbChat and the four
// benchmarks. lossless=true is Fig. 2(a) ("W/O wireless loss"),
// lossless=false is Fig. 2(b) ("W wireless loss").
//
// The five protocol runs are fully independent — each gets its own engine,
// fresh dataset clones, and seed-derived random streams — so they execute
// concurrently; results come back in protocol order either way.
func (e *Env) Fig2(lossless bool) ([]*ProtocolRun, error) {
	return e.fig2(context.Background(), lossless)
}

func (e *Env) fig2(ctx context.Context, lossless bool) ([]*ProtocolRun, error) {
	specs := make([]runSpec, len(BenchmarkProtocols))
	for i, name := range BenchmarkProtocols {
		specs[i] = runSpec{name: name, lossless: lossless}
	}
	return e.runConcurrent(ctx, specs...)
}

// ReceiveRates extracts the §IV-C successful model-receiving rates from a
// set of lossy-regime runs (the paper reports LbChat 87% vs 51–60% for the
// benchmarks).
func ReceiveRates(runs []*ProtocolRun) map[ProtocolName]float64 {
	out := make(map[ProtocolName]float64, len(runs))
	for _, r := range runs {
		out[r.Name] = 100 * r.Recv.Rate()
	}
	return out
}

// SuccessRates evaluates the final fleets of a set of runs on the driving
// benchmark, returning per-protocol condition→rate maps (Tables II–III).
func (e *Env) SuccessRates(runs []*ProtocolRun) map[ProtocolName]map[eval.Condition]float64 {
	out := make(map[ProtocolName]map[eval.Condition]float64, len(runs))
	for _, r := range runs {
		out[r.Name] = e.EvalFleet(r.Fleet)
	}
	return out
}

// Table2 reproduces Table II (driving success rate, W/O wireless loss):
// train all five protocols lossless and evaluate their fleets.
func (e *Env) Table2() (*metrics.Table, []*ProtocolRun, error) {
	return e.benchmarkTable(context.Background(), true)
}

// Table3 reproduces Table III (driving success rate, W wireless loss).
func (e *Env) Table3() (*metrics.Table, []*ProtocolRun, error) {
	return e.benchmarkTable(context.Background(), false)
}

// benchmarkTable trains the five-protocol lineup in the given regime and
// evaluates the fleets (Tables II/III). A canceled training phase returns
// the partial runs with a nil table.
func (e *Env) benchmarkTable(ctx context.Context, lossless bool) (*metrics.Table, []*ProtocolRun, error) {
	runs, err := e.fig2(ctx, lossless)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	title := "Table II: driving success rate on average (W/O wireless loss) (%)"
	if !lossless {
		title = "Table III: driving success rate on average (W wireless loss) (%)"
	}
	rates := e.SuccessRates(runs)
	return e.SuccessTable(title, BenchmarkProtocols, rates), runs, nil
}

// Table4 reproduces Table IV: LbChat with coreset sizes 10× and 1/10 the
// default, in both wireless regimes. Columns follow the paper: 1500 (W/O),
// 15 (W/O), 1500 (W), 15 (W).
func (e *Env) Table4() (*metrics.Table, error) {
	tbl, _, err := e.table4(context.Background())
	return tbl, err
}

func (e *Env) table4(ctx context.Context) (*metrics.Table, []*ProtocolRun, error) {
	type variant struct {
		label    string
		size     int
		lossless bool
	}
	variants := []variant{
		{"1500 (W/O)", e.Cfg.CoresetSize * 10, true},
		{"15 (W/O)", maxInt(e.Cfg.CoresetSize/10, 2), true},
		{"1500 (W)", e.Cfg.CoresetSize * 10, false},
		{"15 (W)", maxInt(e.Cfg.CoresetSize/10, 2), false},
	}
	cols := make([]string, len(variants))
	specs := make([]runSpec, len(variants))
	for i, v := range variants {
		size := v.size
		cols[i] = v.label
		specs[i] = runSpec{name: ProtoLbChat, lossless: v.lossless,
			mut: func(c *core.Config) { c.CoresetSize = size }}
	}
	// The four coreset-size variants are independent runs and train
	// concurrently; fleet evaluation itself fans out across workers.
	runs, err := e.runConcurrent(ctx, specs...)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	tbl := metrics.NewTable("Table IV: driving success rate with different coreset size (%)", cols...)
	rates := make([]map[eval.Condition]float64, len(runs))
	for i, run := range runs {
		rates[i] = e.EvalFleet(run.Fleet)
	}
	for _, cond := range eval.Conditions {
		vals := make([]float64, len(variants))
		for i := range variants {
			vals[i] = rates[i][cond]
		}
		tbl.AddRow(cond.String(), vals...)
	}
	return tbl, runs, nil
}

// ablationTable runs one LbChat variant in both wireless regimes (the two
// regimes are independent runs and execute concurrently).
func (e *Env) ablationTable(ctx context.Context, title string, name ProtocolName) (*metrics.Table, []*ProtocolRun, error) {
	runs, err := e.runConcurrent(ctx,
		runSpec{name: name, lossless: true},
		runSpec{name: name, lossless: false},
	)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	wo, w := e.EvalFleet(runs[0].Fleet), e.EvalFleet(runs[1].Fleet)
	tbl := metrics.NewTable(title, "W/O wireless loss", "W wireless loss")
	for _, cond := range eval.Conditions {
		tbl.AddRow(cond.String(), wo[cond], w[cond])
	}
	return tbl, runs, nil
}

// Table5 reproduces Table V: the equal-compression ablation (Eq. (7)
// masked).
func (e *Env) Table5() (*metrics.Table, error) {
	tbl, _, err := e.ablationTable(context.Background(), "Table V: driving success rate with equal comp. ratio (%)", ProtoEqualComp)
	return tbl, err
}

// Table6 reproduces Table VI: the average-aggregation ablation (Eq. (8)
// masked).
func (e *Env) Table6() (*metrics.Table, error) {
	tbl, _, err := e.ablationTable(context.Background(), "Table VI: driving success rate with avg. aggregation (%)", ProtoAvgAgg)
	return tbl, err
}

// Table7 reproduces Table VII: SCO, sharing coresets only.
func (e *Env) Table7() (*metrics.Table, error) {
	tbl, _, err := e.ablationTable(context.Background(), "Table VII: driving success rate with sharing coreset only (%)", ProtoSCO)
	return tbl, err
}

// Fig3 reproduces Figure 3: LbChat vs SCO loss curves, plus the
// convergence-time ratio the paper highlights (SCO takes 1.5–1.8× longer).
// The threshold is the loss both curves eventually reach, placed at 10%
// above the slower curve's best.
func (e *Env) Fig3(lossless bool) (lbchat, sco *ProtocolRun, ratio float64, err error) {
	return e.fig3(context.Background(), lossless)
}

func (e *Env) fig3(ctx context.Context, lossless bool) (lbchat, sco *ProtocolRun, ratio float64, err error) {
	runs, err := e.runConcurrent(ctx,
		runSpec{name: ProtoLbChat, lossless: lossless},
		runSpec{name: ProtoSCO, lossless: lossless},
	)
	if err != nil {
		return nil, nil, 0, err
	}
	lbchat, sco = runs[0], runs[1]
	ratio = ConvergenceRatio(&lbchat.Curve, &sco.Curve)
	return lbchat, sco, ratio, nil
}

// ConvergenceRatio returns how much longer the second curve takes to reach
// a common loss threshold (NaN when either never reaches it).
func ConvergenceRatio(fast, slow *metrics.Curve) float64 {
	threshold := 1.10 * math.Max(fast.Min(), slow.Min())
	tFast := fast.TimeToReach(threshold)
	tSlow := slow.TimeToReach(threshold)
	if math.IsNaN(tFast) || math.IsNaN(tSlow) || tFast <= 0 {
		return math.NaN()
	}
	return tSlow / tFast
}

// RenderCurves prints a set of loss curves in aligned columns for plotting.
func RenderCurves(runs []*ProtocolRun) string {
	out := ""
	for _, r := range runs {
		out += r.Curve.Render() + "\n"
	}
	return out
}

// RenderReceiveRates prints the §IV-C receive-rate comparison.
func RenderReceiveRates(rates map[ProtocolName]float64) string {
	out := "Successful model receiving rate (%)\n"
	for _, name := range BenchmarkProtocols {
		if r, ok := rates[name]; ok {
			out += fmt.Sprintf("  %-10s %5.1f\n", name, r)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
