package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"lbchat/internal/baselines"
	"lbchat/internal/bev"
	"lbchat/internal/core"
	"lbchat/internal/dataset"
	"lbchat/internal/eval"
	"lbchat/internal/geom"
	"lbchat/internal/metrics"
	"lbchat/internal/model"
	"lbchat/internal/parallel"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/telemetry"
	"lbchat/internal/trace"
	"lbchat/internal/traceserve"
	"lbchat/internal/world"
)

// Scale sets the size of every experiment ingredient.
type Scale struct {
	// Name labels output.
	Name string
	// Vehicles is the expert fleet size (the paper runs 32).
	Vehicles int
	// BackgroundCars and Pedestrians populate the data-collection world.
	BackgroundCars, Pedestrians int
	// CollectTicks is the number of 2 fps data-collection ticks (the paper
	// collects for one hour: 7200 ticks).
	CollectTicks int
	// TraceTicks is the number of 2 fps mobility-trace ticks driving
	// encounters (the paper records 120 extra hours).
	TraceTicks int
	// TrainDuration is the co-simulation virtual time (s).
	TrainDuration float64
	// ProbeFrames sizes the held-out probe set for loss curves.
	ProbeFrames int
	// EvalTrials is the trial count per driving condition.
	EvalTrials int
	// EvalFleetSample is how many fleet models are evaluated and averaged
	// per protocol.
	EvalFleetSample int
	// RoutesPerCondition sizes the driving benchmark suite.
	RoutesPerCondition int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds parallelism at every level: concurrent protocol runs
	// within a harness, per-vehicle work inside each engine tick, and
	// fleet-evaluation rollouts. 0 means one worker per available CPU; 1
	// forces the fully serial paths. Output is bit-identical at any setting.
	Workers int
	// Shards partitions engine encounter scans into grid regions
	// (core.Config.Shards); 0 or 1 keeps the single-index path. Output is
	// bit-identical at any setting.
	Shards int
	// FullCoresetRebuild disables the incremental partition-tree coreset
	// refresh (core.Config.DisableIncrementalCoreset), selecting the
	// original full Algorithm-1 rebuild arm instead (DESIGN.md §14). The
	// two arms produce equal-quality summaries but are distinct sampling
	// processes; each is individually bit-identical at any Workers/Shards.
	FullCoresetRebuild bool
	// LegacyDueScan disables the due-time calendar queue
	// (core.Config.LegacyDueScan), selecting the original per-tick O(N)
	// fleet scan for due training vehicles instead (DESIGN.md §15). Unlike
	// the coreset arms, both scheduler arms are byte-identical — this is a
	// reference arm for A/B validation and benchmark baselines only.
	LegacyDueScan bool
	// StreamTrace drives engine runs from a bounded sliding-window trace
	// source instead of the resident columnar trace (DESIGN.md §12).
	// Without a TracePath the recorded trace is spilled to a temporary
	// LBTC file (removed by Env.Close); results are bit-identical either
	// way — streaming only bounds the trace working set.
	StreamTrace bool
	// TracePath, when set, loads the mobility trace from this LBTC file
	// (e.g. a worldgen -trace-out recording) instead of recording one from
	// the world. The file's vehicle count must match Vehicles.
	TracePath string
	// TraceSource, when non-nil, is a pre-opened mobility source supplied
	// by the caller (cli.OpenTrace); it overrides recording and TracePath
	// loading. Streamed runs still reopen fresh windows from TracePath,
	// since a window's cursor only moves forward.
	TraceSource trace.Source
	// TraceURL, when set, pages the mobility trace from a remote chunk
	// server (cmd/trace-serve) at this base URL instead of a local file.
	// Remote traces always stream — each run gets a fresh window over a
	// shared retrying client — and take precedence over TraceSource and
	// TracePath. Results are bit-identical to the resident and
	// local-streamed paths.
	TraceURL string
}

// TestScale is a minimal configuration for unit tests.
func TestScale() Scale {
	return Scale{
		Name:     "test",
		Vehicles: 4, BackgroundCars: 10, Pedestrians: 30,
		CollectTicks: 240, TraceTicks: 1600,
		TrainDuration: 400, ProbeFrames: 48,
		EvalTrials: 4, EvalFleetSample: 1, RoutesPerCondition: 3,
		Seed: 1,
	}
}

// BenchScale is the default benchmark configuration: large enough to show
// the paper's orderings, small enough to regenerate every artifact on one
// CPU core in minutes.
func BenchScale() Scale {
	return Scale{
		Name:     "bench",
		Vehicles: 12, BackgroundCars: 50, Pedestrians: 250,
		CollectTicks: 1500, TraceTicks: 14400,
		TrainDuration: 2400, ProbeFrames: 96,
		EvalTrials: 16, EvalFleetSample: 3, RoutesPerCondition: 8,
		Seed: 7,
	}
}

// FullScale mirrors the paper: 32 expert vehicles, 50 background cars, 250
// pedestrians, long traces.
func FullScale() Scale {
	return Scale{
		Name:     "full",
		Vehicles: 32, BackgroundCars: 50, Pedestrians: 250,
		CollectTicks: 3600, TraceTicks: 28800,
		TrainDuration: 3600, ProbeFrames: 128,
		EvalTrials: 24, EvalFleetSample: 4, RoutesPerCondition: 10,
		Seed: 7,
	}
}

// Env is the shared workload every protocol runs against.
type Env struct {
	Scale Scale
	Map   *world.Map
	// Trace is the env-level mobility source — resident, or a metadata
	// window over the backing stream when the scale streams. Streamed
	// protocol runs do not share it: each run opens a fresh window over
	// streamPath (a window's cursor only moves forward).
	Trace    trace.Source
	Probe    []dataset.Weighted
	Suite    *eval.Suite
	Cfg      core.Config
	datasets []*dataset.Dataset // master copies; runs get fresh clones

	// Telemetry, when non-nil, receives every run's full event stream
	// (e.g. a JSONL sink). Concurrent protocol runs buffer their events
	// and drain them in harness order after the parallel phase, so the
	// sink sees a deterministic stream at any worker count. Per-run
	// aggregate summaries (ProtocolRun.Comm) are collected regardless.
	Telemetry telemetry.Sink

	// streamPath is the LBTC file per-run windows reopen; empty for
	// resident envs. ownsStream marks a temporary spill Close removes, and
	// traceCloser owns the env-level window's file handle.
	streamPath  string
	ownsStream  bool
	traceCloser io.Closer
	// remote is the shared chunk-server client remote envs page through;
	// per-run windows all fetch via it (the client is concurrency-safe and
	// its LRU is shared). Close releases it after the env-level window.
	remote *traceserve.Client
}

// Close releases the env's trace resources: the env-level window's file
// handle and, for spilled recordings, the temporary LBTC file. Safe to
// call on resident envs and idempotent.
func (e *Env) Close() error {
	var first error
	if e.traceCloser != nil {
		first = e.traceCloser.Close()
		e.traceCloser = nil
	}
	if e.ownsStream && e.streamPath != "" {
		if err := os.Remove(e.streamPath); err != nil && first == nil {
			first = err
		}
		e.ownsStream = false
	}
	if e.remote != nil {
		if err := e.remote.Close(); err != nil && first == nil {
			first = err
		}
		e.remote = nil
	}
	return first
}

// envWindowConfig is how env-owned windows are opened: default spans (the
// engine reserves its own lookahead) with background prefetch on.
func envWindowConfig() trace.WindowConfig {
	return trace.WindowConfig{Prefetch: true}
}

// buildTrace resolves the scale's mobility-trace source: a remote chunk
// server, a caller-supplied source, an LBTC file, or a recording from the
// world (resident, or spilled to a temporary stream when the scale
// streams). It returns the env fields it populates.
func buildTrace(scale Scale, w *world.World) (src trace.Source, streamPath string, owns bool, closer io.Closer, remote *traceserve.Client, err error) {
	switch {
	case scale.TraceURL != "":
		remote, err = traceserve.Dial(scale.TraceURL, traceserve.ClientConfig{})
		if err != nil {
			return nil, "", false, nil, nil, fmt.Errorf("experiments: dialing trace server: %w", err)
		}
		win := trace.NewWindowSource(remote, envWindowConfig())
		// The window's own Close drains its prefetches; the shared client
		// is released by Env.Close after every window is done.
		src, closer = win, win
	case scale.TraceSource != nil:
		src = scale.TraceSource
		if scale.StreamTrace {
			streamPath = scale.TracePath
		}
	case scale.TracePath != "":
		if scale.StreamTrace {
			var win *trace.Window
			win, closer, err = trace.OpenWindowFile(scale.TracePath, envWindowConfig())
			if err != nil {
				return nil, "", false, nil, nil, fmt.Errorf("experiments: opening trace window: %w", err)
			}
			src, streamPath = win, scale.TracePath
		} else {
			f, ferr := os.Open(scale.TracePath)
			if ferr != nil {
				return nil, "", false, nil, nil, fmt.Errorf("experiments: opening trace: %w", ferr)
			}
			tr, rerr := trace.ReadTrace(f)
			f.Close()
			if rerr != nil {
				return nil, "", false, nil, nil, fmt.Errorf("experiments: reading trace %s: %w", scale.TracePath, rerr)
			}
			src = tr
		}
	case scale.StreamTrace:
		// Record through a ChunkWriter straight to a temporary spill so
		// the full trace is never resident, then open a window over it.
		f, ferr := os.CreateTemp("", "lbchat-trace-*.lbtc")
		if ferr != nil {
			return nil, "", false, nil, nil, fmt.Errorf("experiments: creating trace spill: %w", ferr)
		}
		streamPath, owns = f.Name(), true
		cw := trace.NewChunkWriter(f, 0.5, len(w.Experts), trace.DefaultChunkTicks)
		recErr := trace.RecordStream(w, scale.TraceTicks, 0.5, cw)
		if cerr := cw.Close(); recErr == nil {
			recErr = cerr
		}
		if cerr := f.Close(); recErr == nil {
			recErr = cerr
		}
		if recErr != nil {
			os.Remove(streamPath)
			return nil, "", false, nil, nil, fmt.Errorf("experiments: spilling trace: %w", recErr)
		}
		var win *trace.Window
		win, closer, err = trace.OpenWindowFile(streamPath, envWindowConfig())
		if err != nil {
			os.Remove(streamPath)
			return nil, "", false, nil, nil, fmt.Errorf("experiments: reopening trace spill: %w", err)
		}
		src = win
	default:
		src = trace.Record(w, scale.TraceTicks, 0.5)
	}
	return src, streamPath, owns, closer, remote, nil
}

// BuildEnv constructs the workload: generate the map, spawn the fleet,
// collect per-vehicle datasets at 2 fps, record the mobility trace, build
// the held-out probe set and the driving benchmark suite.
func BuildEnv(scale Scale) (*Env, error) {
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: building map: %w", err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = scale.Seed
	cfg.Workers = scale.Workers
	cfg.Shards = scale.Shards
	cfg.DisableIncrementalCoreset = scale.FullCoresetRebuild
	cfg.LegacyDueScan = scale.LegacyDueScan

	rng := simrand.New(scale.Seed)
	w, err := world.New(m, world.SpawnConfig{
		Experts:        scale.Vehicles,
		BackgroundCars: scale.BackgroundCars,
		Pedestrians:    scale.Pedestrians,
	}, rng.Derive("collect-world"))
	if err != nil {
		return nil, fmt.Errorf("experiments: spawning world: %w", err)
	}
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	datasets := world.CollectDataset(w, ras, cfg.Model.NumWaypoints, scale.CollectTicks, 0.5)

	// The paper records additional mobility (beyond the collection hour) to
	// drive encounters; we keep stepping the same world. RecordStream spills
	// the identical positions when the scale streams, so streamed and
	// resident envs see the same trajectories bit for bit.
	tr, streamPath, owns, closer, remote, err := buildTrace(scale, w)
	if err != nil {
		return nil, err
	}
	env := &Env{
		Scale: scale, Map: m, Trace: tr, Cfg: cfg, datasets: datasets,
		streamPath: streamPath, ownsStream: owns, traceCloser: closer,
		remote: remote,
	}
	if tr.NumVehicles() != scale.Vehicles {
		env.Close()
		return nil, fmt.Errorf("experiments: trace has %d vehicles, scale %s wants %d",
			tr.NumVehicles(), scale.Name, scale.Vehicles)
	}
	probe, err := eval.ProbeSet(m, bev.DefaultConfig(), cfg.Model.NumWaypoints, scale.ProbeFrames, scale.Seed+1000)
	if err != nil {
		env.Close()
		return nil, fmt.Errorf("experiments: building probe: %w", err)
	}
	suite, err := eval.BuildSuite(m, eval.SuiteConfig{
		RoutesPerCondition: scale.RoutesPerCondition,
		Seed:               scale.Seed + 2000,
	})
	if err != nil {
		env.Close()
		return nil, fmt.Errorf("experiments: building eval suite: %w", err)
	}
	env.Probe, env.Suite = probe, suite
	return env, nil
}

// FreshDatasets returns per-run dataset clones: protocols expand their local
// datasets in place, so each run starts from pristine copies (sample
// payloads are shared — they are immutable).
func (e *Env) FreshDatasets() []*dataset.Dataset {
	out := make([]*dataset.Dataset, len(e.datasets))
	for i, d := range e.datasets {
		out[i] = dataset.FromWeighted(append([]dataset.Weighted(nil), d.Items()...))
	}
	return out
}

// RSUPositions returns the road-side-unit deployment: a subset of the
// road-cross intersections, as in [29] — RSU coverage is sparse enough that
// vehicles spend real time out of range (every third cross, which on the
// default map leaves coverage holes in both town and rural areas).
func (e *Env) RSUPositions() []geom.Point {
	var out []geom.Point
	crosses := 0
	for _, n := range e.Map.Nodes {
		if len(n.Out) >= 3 {
			if crosses%3 == 0 {
				out = append(out, n.Pos)
			}
			crosses++
		}
	}
	return out
}

// ProtocolName identifies a runnable protocol or variant.
type ProtocolName string

// The protocols and variants of §IV.
const (
	ProtoLbChat    ProtocolName = "LbChat"
	ProtoProxSkip  ProtocolName = "ProxSkip"
	ProtoRSUL      ProtocolName = "RSU-L"
	ProtoDFLDDS    ProtocolName = "DFL-DDS"
	ProtoDP        ProtocolName = "DP"
	ProtoSCO       ProtocolName = "SCO"
	ProtoEqualComp ProtocolName = "LbChat-EqualComp"
	ProtoAvgAgg    ProtocolName = "LbChat-AvgAgg"
	ProtoNoPrio    ProtocolName = "LbChat-NoPrio"
	ProtoAdaptive  ProtocolName = "LbChat-AdaptiveCS"
	ProtoNoResume  ProtocolName = "LbChat-NoResume"
)

// BenchmarkProtocols lists the Fig. 2 / Tables II–III lineup in the paper's
// column order.
var BenchmarkProtocols = []ProtocolName{ProtoProxSkip, ProtoRSUL, ProtoDFLDDS, ProtoDP, ProtoLbChat}

// newProtocol constructs a protocol instance by name.
func (e *Env) newProtocol(name ProtocolName) (core.Protocol, error) {
	switch name {
	case ProtoLbChat:
		return core.NewLbChat(), nil
	case ProtoSCO:
		return core.NewSCO(), nil
	case ProtoEqualComp:
		return core.NewLbChatVariant(string(name), core.Variant{EqualCompression: true}), nil
	case ProtoAvgAgg:
		return core.NewLbChatVariant(string(name), core.Variant{AverageAggregation: true}), nil
	case ProtoNoPrio:
		return core.NewLbChatVariant(string(name), core.Variant{NoPrioritization: true}), nil
	case ProtoAdaptive:
		return core.NewLbChatVariant(string(name), core.Variant{AdaptiveCoresetSize: true}), nil
	case ProtoNoResume:
		return core.NewLbChatVariant(string(name), core.Variant{NoResumption: true}), nil
	case ProtoProxSkip:
		return baselines.NewProxSkip(), nil
	case ProtoRSUL:
		return baselines.NewRSUL(e.RSUPositions()), nil
	case ProtoDFLDDS:
		return baselines.NewDFLDDS(), nil
	case ProtoDP:
		return baselines.NewDP(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown protocol %q", name)
	}
}

// ProtocolRun is one protocol training run's outputs.
type ProtocolRun struct {
	Name ProtocolName
	// Lossless records the wireless regime the run used.
	Lossless bool
	// Curve is the probe-loss trajectory (Figs. 2–3).
	Curve metrics.Curve
	// Recv aggregates the fleet's model-receive outcomes (§IV-C).
	Recv metrics.ReceiveStats
	// Fleet holds every vehicle's final model.
	Fleet []*model.Policy
	// Comm aggregates the run's telemetry into counters and histograms
	// (chat counts, over-the-air bytes per payload, ψ distribution). It is
	// always collected — the Summary sink is cheap.
	Comm *telemetry.Summary
	// Canceled marks a run cut short by context cancellation. Curve, Recv
	// and Fleet hold the partial state at the stop point.
	Canceled bool

	// events buffers the run's full event stream while the Env has a user
	// sink attached; the harness drains it in deterministic order.
	events *telemetry.MemorySink
}

// RunProtocol trains the fleet under one protocol and wireless regime.
// cfgMut, when non-nil, adjusts the engine config (coreset-size sweeps).
//
// Deprecated: new callers should use the package-level Run with
// Spec{Experiment: ExpProtocol}; this wrapper remains for incremental
// migration and is equivalent to a background-context run.
func (e *Env) RunProtocol(name ProtocolName, lossless bool, cfgMut func(*core.Config)) (*ProtocolRun, error) {
	run, err := e.runProtocol(context.Background(), name, lossless, cfgMut)
	if err != nil {
		return nil, err
	}
	e.flushRuns(run)
	return run, nil
}

// runProtocol is the core runner: it brackets the run with
// RunStarted/RunFinished telemetry, honors ctx cancellation (returning a
// partial run with Canceled set and a nil error), and leaves the event
// buffer attached for the caller to drain via flushRuns — concurrent
// callers drain in harness order to keep the user sink deterministic.
func (e *Env) runProtocol(ctx context.Context, name ProtocolName, lossless bool, cfgMut func(*core.Config)) (*ProtocolRun, error) {
	cfg := e.Cfg
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	proto, err := e.newProtocol(name)
	if err != nil {
		return nil, err
	}
	sum := telemetry.NewSummary()
	sink := telemetry.Sink(sum)
	var buf *telemetry.MemorySink
	if e.Telemetry != nil {
		buf = telemetry.NewMemorySink()
		sink = telemetry.Tee(sum, buf)
	}
	cfg.Telemetry = sink
	src, srcCloser, err := e.openRunTrace()
	if err != nil {
		return nil, fmt.Errorf("experiments: trace for %s: %w", name, err)
	}
	if srcCloser != nil {
		defer srcCloser.Close()
	}
	sink.Emit(telemetry.RunStarted{Protocol: string(name), Lossless: lossless})
	eng, err := core.NewEngine(cfg, src, e.FreshDatasets(), radio.NewModel(lossless), e.Probe)
	if err != nil {
		return nil, fmt.Errorf("experiments: engine for %s: %w", name, err)
	}
	canceled := false
	if err := eng.RunContext(ctx, proto, e.Scale.TrainDuration); err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("experiments: running %s: %w", name, err)
		}
		canceled = true
	}
	sink.Emit(telemetry.RunFinished{
		Protocol: string(name), Time: eng.Now(),
		FinalLoss: eng.LossCurve.Final(), Canceled: canceled,
	})
	run := &ProtocolRun{
		Name: name, Lossless: lossless,
		Curve: eng.LossCurve, Recv: eng.FleetReceiveStats(),
		Comm: sum, Canceled: canceled, events: buf,
	}
	for _, v := range eng.Vehicles {
		run.Fleet = append(run.Fleet, v.Policy)
	}
	return run, nil
}

// openRunTrace returns the mobility source for one protocol run. Resident
// envs share Env.Trace (and return a nil closer); streamed envs open a
// fresh window over the backing stream — or over the shared remote client
// — because a window's cursor is forward-only and concurrent harness runs
// each need their own.
func (e *Env) openRunTrace() (trace.Source, io.Closer, error) {
	if e.remote != nil {
		win := trace.NewWindowSource(e.remote, envWindowConfig())
		return win, win, nil
	}
	if e.streamPath != "" {
		win, closer, err := trace.OpenWindowFile(e.streamPath, envWindowConfig())
		if err != nil {
			return nil, nil, err
		}
		return win, closer, nil
	}
	if _, windowed := e.Trace.(trace.Windowed); windowed {
		return nil, nil, fmt.Errorf("experiments: windowed env trace has no backing stream to reopen")
	}
	return e.Trace, nil, nil
}

// flushRuns drains buffered per-run event streams into the Env's user
// sink in the given order. Called after parallel phases so a shared sink
// (JSONL file) sees whole runs in harness order regardless of scheduling.
func (e *Env) flushRuns(runs ...*ProtocolRun) {
	if e.Telemetry == nil {
		return
	}
	for _, r := range runs {
		if r != nil && r.events != nil {
			r.events.Drain(e.Telemetry)
			r.events = nil
		}
	}
}

// anyCanceled reports whether any run in the set was cut short.
func anyCanceled(runs []*ProtocolRun) bool {
	for _, r := range runs {
		if r != nil && r.Canceled {
			return true
		}
	}
	return false
}

// EvalFleet computes fleet-averaged driving success rates for every
// condition: EvalFleetSample models spread across the fleet are each run on
// EvalTrials trials and the rates averaged — the per-model average is what
// the paper reports ("driving success rate on average").
func (e *Env) EvalFleet(fleet []*model.Policy) map[eval.Condition]float64 {
	ev := eval.NewEvaluator(e.Suite)
	ev.NormalTraffic = world.SpawnConfig{
		BackgroundCars: e.Scale.BackgroundCars,
		Pedestrians:    e.Scale.Pedestrians,
	}
	sample := e.Scale.EvalFleetSample
	if sample < 1 {
		sample = 1
	}
	if sample > len(fleet) {
		sample = len(fleet)
	}
	// Fan the (condition, fleet-sample) grid out across workers. Each task
	// clones its policy — the same fleet model appears in several tasks, and
	// policies are not concurrency-safe; a clone has identical parameters, so
	// identical predictions. Rates come back in task-index order and are
	// reduced per condition in k order, so the float averages match the
	// serial nested loops bit for bit.
	type task struct {
		cond eval.Condition
		k    int
	}
	tasks := make([]task, 0, len(eval.Conditions)*sample)
	for _, cond := range eval.Conditions {
		for k := 0; k < sample; k++ {
			tasks = append(tasks, task{cond, k})
		}
	}
	rates := parallel.Map(parallel.Resolve(e.Scale.Workers), len(tasks), func(t int) float64 {
		cond, k := tasks[t].cond, tasks[t].k
		idx := k * len(fleet) / sample
		seed := e.Scale.Seed*1_000_003 + uint64(k)*501 + uint64(cond)*77
		return ev.SuccessRate(fleet[idx].Clone(), cond, e.Scale.EvalTrials, seed)
	})
	out := make(map[eval.Condition]float64, len(eval.Conditions))
	for ci, cond := range eval.Conditions {
		var sum float64
		for k := 0; k < sample; k++ {
			sum += rates[ci*sample+k]
		}
		out[cond] = sum / float64(sample)
	}
	return out
}

// SuccessTable renders per-protocol driving success rates as a paper-style
// table with one column per protocol, in the given order.
func (e *Env) SuccessTable(title string, order []ProtocolName, rates map[ProtocolName]map[eval.Condition]float64) *metrics.Table {
	cols := make([]string, len(order))
	for i, n := range order {
		cols[i] = string(n)
	}
	tbl := metrics.NewTable(title, cols...)
	for _, cond := range eval.Conditions {
		vals := make([]float64, len(order))
		for i, n := range order {
			vals[i] = rates[n][cond]
		}
		tbl.AddRow(cond.String(), vals...)
	}
	return tbl
}
