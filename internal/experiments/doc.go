// Package experiments reproduces the paper's evaluation (§IV): one harness
// per table and figure, each building the same workload (map, per-vehicle
// datasets, mobility trace, probe set, driving benchmark routes), running
// the protocols under identical communication constraints, and rendering
// results in the paper's row/series layout.
//
// Everything is parameterized by a Scale so the identical code paths run as
// fast unit tests, as medium benchmarks, and as full paper-scale
// reproductions (32 vehicles).
package experiments
