package experiments

import (
	"bytes"
	"testing"

	"lbchat/internal/core"
	"lbchat/internal/telemetry"
)

// TestShardABDeterminism is the sharded-engine acceptance criterion: a full
// LbChat run must produce a byte-identical telemetry event stream and
// bit-identical experiment metrics (loss curve, receive stats, final
// parameters) at every shard count × worker count combination, with the
// unsharded serial run as the reference. Per-shard scan stats flow through
// the ShardObserver side channel, never the event stream, so the streams
// must match even though shard counts differ.
//
// The grid additionally runs the legacy-due-scan scheduler arm at every
// combination: unlike the coreset arms, the calendar queue and the legacy
// scan must surface the same due vehicles in the same order, so BOTH arms
// must match the single calendar reference stream byte for byte.
func TestShardABDeterminism(t *testing.T) {
	runWith := func(shards, workers int, legacyDueScan bool) (*ProtocolRun, [][]byte) {
		mem := telemetry.NewMemorySink()
		env := envWithSink(t, mem)
		run, err := env.RunProtocol(ProtoLbChat, false, func(c *core.Config) {
			c.Shards = shards
			c.Workers = workers
			c.LegacyDueScan = legacyDueScan
		})
		if err != nil {
			t.Fatalf("shards=%d workers=%d legacy=%v: %v", shards, workers, legacyDueScan, err)
		}
		lines := make([][]byte, 0, mem.Len())
		for _, ev := range mem.Events() {
			line, err := telemetry.Encode(ev)
			if err != nil {
				t.Fatalf("encoding %s: %v", ev.Kind(), err)
			}
			lines = append(lines, line)
		}
		return run, lines
	}

	refRun, refStream := runWith(1, 1, false)
	if len(refStream) == 0 {
		t.Fatal("unsharded reference run emitted no events")
	}
	for _, legacy := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4, 8} {
				if shards == 1 && workers == 1 && !legacy {
					continue
				}
				run, stream := runWith(shards, workers, legacy)
				if len(stream) != len(refStream) {
					t.Fatalf("shards=%d workers=%d legacy=%v: %d events, reference %d",
						shards, workers, legacy, len(stream), len(refStream))
				}
				for i := range stream {
					if !bytes.Equal(stream[i], refStream[i]) {
						t.Fatalf("shards=%d workers=%d legacy=%v: event %d differs:\ngot:       %s\nreference: %s",
							shards, workers, legacy, i, stream[i], refStream[i])
					}
				}
				sameRun(t, "vs calendar serial unsharded", run, refRun)
			}
		}
	}
}
