package experiments

import (
	"context"

	"lbchat/internal/core"
	"lbchat/internal/faults"
	"lbchat/internal/metrics"
)

// FaultSweep is the robustness study (EXPERIMENTS.md "Robustness"): a grid
// of burst-loss intensity × churn over the lossy wireless regime, with each
// cell trained twice — full LbChat (session resumption on) against the
// restart-on-reencounter arm (Variant.NoResumption) — so the table isolates
// what the DESIGN.md §9 resilience machinery buys as conditions degrade.

// faultSweepCell is one fault setting of the sweep grid.
type faultSweepCell struct {
	Label string
	Cfg   faults.Config
}

// FaultSweepGrid returns the sweep's fault settings in row order.
func FaultSweepGrid() []faultSweepCell {
	noChurn := func(c faults.Config) faults.Config {
		c.ChurnPerHour, c.AwayMeanSecs = 0, 0
		return c
	}
	return []faultSweepCell{
		{"no faults", faults.Config{}},
		{"light bursts", noChurn(faults.Light())},
		{"heavy bursts", noChurn(faults.Heavy())},
		{"light bursts + churn", faults.Light()},
		{"heavy bursts + churn", faults.Heavy()},
	}
}

// FaultSweep runs the robustness grid and renders the final-loss table.
func (e *Env) FaultSweep() (*metrics.Table, error) {
	tbl, _, err := e.faultSweep(context.Background())
	return tbl, err
}

func (e *Env) faultSweep(ctx context.Context) (*metrics.Table, []*ProtocolRun, error) {
	cells := FaultSweepGrid()
	protos := []ProtocolName{ProtoLbChat, ProtoNoResume}
	specs := make([]runSpec, 0, len(cells)*len(protos))
	for _, cell := range cells {
		fc := cell.Cfg
		for _, p := range protos {
			specs = append(specs, runSpec{name: p,
				mut: func(c *core.Config) { c.Faults = fc }})
		}
	}
	runs, err := e.runConcurrent(ctx, specs...)
	if err != nil {
		return nil, nil, err
	}
	if anyCanceled(runs) {
		return nil, runs, nil
	}
	tbl := metrics.NewTable("FaultSweep: final probe loss (x1000), W wireless loss",
		"LbChat", "LbChat-NoResume")
	for i, cell := range cells {
		lb, nr := runs[2*i], runs[2*i+1]
		tbl.AddRow(cell.Label, 1000*lb.Curve.Final(), 1000*nr.Curve.Final())
	}
	return tbl, runs, nil
}
