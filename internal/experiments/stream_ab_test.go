package experiments

import (
	"bytes"
	"net/http/httptest"
	"os"
	"testing"

	"lbchat/internal/core"
	"lbchat/internal/telemetry"
	"lbchat/internal/trace"
	"lbchat/internal/traceserve"
)

// TestMain closes the package's shared envs so the streamed env's temporary
// LBTC spill is removed instead of leaking past the test process.
func TestMain(m *testing.M) {
	code := m.Run()
	if streamedEnv != nil {
		streamedEnv.Close()
	}
	if sharedEnv != nil {
		sharedEnv.Close()
	}
	os.Exit(code)
}

// streamedEnv builds an env identical to the shared test env except that its
// engine runs are driven by a bounded sliding-window trace spilled to a temp
// LBTC file instead of the resident trace. Built once: env construction
// collects data and records a trace, which dominates test time.
var streamedEnv *Env

func getStreamedEnv(t *testing.T) *Env {
	t.Helper()
	if streamedEnv == nil {
		scale := TestScale()
		scale.StreamTrace = true
		env, err := BuildEnv(scale)
		if err != nil {
			t.Fatalf("BuildEnv(streamed): %v", err)
		}
		streamedEnv = env
	}
	return streamedEnv
}

// TestStreamABDeterminism is the streaming-trace acceptance criterion: a full
// LbChat run driven by the sliding-window source must produce a
// byte-identical telemetry event stream and bit-identical experiment metrics
// (loss curve, receive stats, final parameters) as the resident-trace run, at
// every shard count × worker count combination. Chunk loads/evicts/prefetches
// flow through the TraceObserver side channel, never the event stream, so the
// streams must match even though one run pages chunks and the other holds the
// whole trace.
func TestStreamABDeterminism(t *testing.T) {
	runWith := func(env *Env, shards, workers int) (*ProtocolRun, [][]byte) {
		mem := telemetry.NewMemorySink()
		e := *env
		e.Telemetry = mem
		run, err := e.RunProtocol(ProtoLbChat, false, func(c *core.Config) {
			c.Shards = shards
			c.Workers = workers
		})
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
		}
		lines := make([][]byte, 0, mem.Len())
		for _, ev := range mem.Events() {
			line, err := telemetry.Encode(ev)
			if err != nil {
				t.Fatalf("encoding %s: %v", ev.Kind(), err)
			}
			lines = append(lines, line)
		}
		return run, lines
	}

	refRun, refStream := runWith(getEnv(t), 1, 1)
	if len(refStream) == 0 {
		t.Fatal("resident reference run emitted no events")
	}
	streamed := getStreamedEnv(t)

	// Third arm: the same spilled LBTC stream, but paged over localhost
	// through a trace-serve chunk server — the remote runs must match the
	// resident reference byte for byte too.
	fileSrc, err := trace.OpenFileSource(streamed.streamPath)
	if err != nil {
		t.Fatalf("indexing spill: %v", err)
	}
	defer fileSrc.Close()
	srv, err := traceserve.NewServer(fileSrc, traceserve.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{})
	if err != nil {
		t.Fatalf("dialing chunk server: %v", err)
	}
	defer client.Close()
	remoteEnv := *streamed
	remoteEnv.remote = client
	remoteEnv.streamPath, remoteEnv.ownsStream, remoteEnv.traceCloser = "", false, nil

	for _, arm := range []struct {
		name string
		env  *Env
	}{
		{"streamed", streamed},
		{"remote", &remoteEnv},
	} {
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4, 8} {
				run, stream := runWith(arm.env, shards, workers)
				if len(stream) != len(refStream) {
					t.Fatalf("%s shards=%d workers=%d: %d events, resident reference %d",
						arm.name, shards, workers, len(stream), len(refStream))
				}
				for i := range stream {
					if !bytes.Equal(stream[i], refStream[i]) {
						t.Fatalf("%s shards=%d workers=%d: event %d differs:\n%s: %s\nresident: %s",
							arm.name, shards, workers, i, arm.name, stream[i], refStream[i])
					}
				}
				sameRun(t, arm.name+" vs resident", run, refRun)
			}
		}
	}
}

// TestStreamTraceSummaryCounters checks the side channel end to end: a
// streamed run's telemetry summary must count chunk loads (and report them in
// CommTable), while a resident run's summary must stay at zero so resident
// reports render exactly as before the streaming layer existed.
func TestStreamTraceSummaryCounters(t *testing.T) {
	run, err := getStreamedEnv(t).RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatalf("streamed run: %v", err)
	}
	loads := run.Comm.Reg.Counter(telemetry.MTraceLoads)
	if loads == 0 {
		t.Fatal("streamed run counted no chunk loads")
	}
	tbl := CommTable([]*ProtocolRun{run})
	if got := tbl.Value("trace chunk loads", "LbChat"); got != float64(loads) {
		t.Errorf("trace chunk loads row = %v, want %d", got, loads)
	}
	resident, err := getEnv(t).RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatalf("resident run: %v", err)
	}
	if n := resident.Comm.Reg.Counter(telemetry.MTraceLoads); n != 0 {
		t.Errorf("resident run counted %d chunk loads, want 0", n)
	}
}
