package experiments

import (
	"testing"

	"lbchat/internal/core"
	"lbchat/internal/eval"
)

// TestParallelRunDeterminism pins the PR's central contract: an LbChat run
// produces bit-identical results at every worker count. Loss-curve points
// (times and values), fleet receive stats, and every vehicle's final flat
// parameter vector must match exactly between workers=1 (the historical
// serial path, run twice to establish the baseline is itself stable) and
// workers=8 (real concurrency even on a single-core host).
func TestParallelRunDeterminism(t *testing.T) {
	env := getEnv(t)
	runAt := func(workers int) *ProtocolRun {
		run, err := env.RunProtocol(ProtoLbChat, false, func(c *core.Config) {
			c.Workers = workers
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return run
	}

	serial := runAt(1)
	for _, workers := range []int{1, 8} {
		got := runAt(workers)
		if len(got.Curve.Points) != len(serial.Curve.Points) {
			t.Fatalf("workers=%d: %d curve points, serial has %d",
				workers, len(got.Curve.Points), len(serial.Curve.Points))
		}
		for i, p := range got.Curve.Points {
			sp := serial.Curve.Points[i]
			if p.Time != sp.Time || p.Value != sp.Value {
				t.Errorf("workers=%d: curve[%d] = (%v, %v), serial (%v, %v)",
					workers, i, p.Time, p.Value, sp.Time, sp.Value)
			}
		}
		if got.Recv != serial.Recv {
			t.Errorf("workers=%d: receive stats %+v, serial %+v", workers, got.Recv, serial.Recv)
		}
		if len(got.Fleet) != len(serial.Fleet) {
			t.Fatalf("workers=%d: fleet size %d, serial %d", workers, len(got.Fleet), len(serial.Fleet))
		}
		for v := range got.Fleet {
			gf, sf := got.Fleet[v].Flat(), serial.Fleet[v].Flat()
			for i := range gf {
				if gf[i] != sf[i] {
					t.Fatalf("workers=%d: vehicle %d param[%d] = %v, serial %v",
						workers, v, i, gf[i], sf[i])
				}
			}
		}
	}
}

// TestParallelEvalDeterminism checks that fleet evaluation fans out without
// changing a single reported rate: EvalFleet at workers=6 must equal the
// serial workers=1 result exactly (integer success counts, order-independent;
// per-condition float averages reduced in sample order).
func TestParallelEvalDeterminism(t *testing.T) {
	env := getEnv(t)
	run, err := env.RunProtocol(ProtoLbChat, true, nil)
	if err != nil {
		t.Fatal(err)
	}

	withWorkers := func(workers int) map[eval.Condition]float64 {
		e2 := *env
		e2.Scale.Workers = workers
		return e2.EvalFleet(run.Fleet)
	}
	serial := withWorkers(1)
	parallelRates := withWorkers(6)
	for cond, want := range serial {
		if got := parallelRates[cond]; got != want {
			t.Errorf("%v: parallel rate %v, serial %v", cond, got, want)
		}
	}
}
