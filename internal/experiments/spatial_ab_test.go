package experiments

import (
	"bytes"
	"testing"

	"lbchat/internal/core"
	"lbchat/internal/telemetry"
)

// TestSpatialIndexABDeterminism is the PR's engine-level acceptance
// criterion: a full LbChat run with the spatial index enabled must produce
// a byte-identical telemetry event stream and bit-identical experiment
// metrics (loss curve, receive stats, final parameters) to the pre-index
// brute-force path, at workers=1 and workers=8.
func TestSpatialIndexABDeterminism(t *testing.T) {
	runWith := func(disable bool, workers int) (*ProtocolRun, [][]byte) {
		mem := telemetry.NewMemorySink()
		env := envWithSink(t, mem)
		run, err := env.RunProtocol(ProtoLbChat, false, func(c *core.Config) {
			c.DisableSpatialIndex = disable
			c.Workers = workers
		})
		if err != nil {
			t.Fatalf("disable=%v workers=%d: %v", disable, workers, err)
		}
		lines := make([][]byte, 0, mem.Len())
		for _, ev := range mem.Events() {
			line, err := telemetry.Encode(ev)
			if err != nil {
				t.Fatalf("encoding %s: %v", ev.Kind(), err)
			}
			lines = append(lines, line)
		}
		return run, lines
	}

	bruteRun, bruteStream := runWith(true, 1)
	if len(bruteStream) == 0 {
		t.Fatal("brute-force reference run emitted no events")
	}
	for _, workers := range []int{1, 4, 8} {
		run, stream := runWith(false, workers)
		if len(stream) != len(bruteStream) {
			t.Fatalf("workers=%d: %d events, brute reference %d", workers, len(stream), len(bruteStream))
		}
		for i := range stream {
			if !bytes.Equal(stream[i], bruteStream[i]) {
				t.Fatalf("workers=%d: event %d differs:\nindex: %s\nbrute: %s", workers, i, stream[i], bruteStream[i])
			}
		}
		sameRun(t, "spatial index vs brute force", run, bruteRun)
	}
}
