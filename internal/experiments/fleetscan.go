package experiments

import (
	"context"
	"io"
	"math"
	"runtime"
	"time"

	"lbchat/internal/metrics"
	"lbchat/internal/radio"
	"lbchat/internal/shard"
	"lbchat/internal/spatial"
	"lbchat/internal/trace"
)

// fleetScanDensityCell is the arena scaling constant: one vehicle per
// 250 m × 250 m on average, matching the spatial benchmarks, so the mean
// in-range neighborhood (~13 peers at 500 m) is size-independent and per-tick
// cost differences reflect the scan machinery, not density drift.
const fleetScanDensityCell = 250.0

// runFleetScan executes the fleetscan scale workload: a synthetic
// random-waypoint fleet is ticked for the spec duration while every tick's
// radio-range pairs are enumerated and its positions recorded. Unsharded
// (Shards <= 1) the trace is held resident and scanned through the single
// spatial index — today's engine path; sharded, positions stream through a
// ChunkWriter and pairs come from the region-sharded scanner, the
// configuration that keeps 10k-vehicle fleets inside memory. The result
// table reports wall-clock, per-tick rate, peak heap, and pair throughput.
func runFleetScan(ctx context.Context, spec Spec) (*Result, error) {
	n := spec.Vehicles
	if n <= 0 {
		n = 2048
	}
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	dur := spec.Duration
	if dur <= 0 {
		dur = 60
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	const dt = 0.5
	ticks := int(dur / dt)
	if ticks < 1 {
		ticks = 1
	}
	maxRange := radio.NewModel(false).Params.MaxRangeMeters
	side := fleetScanDensityCell * math.Sqrt(float64(n))
	fleet := shard.NewFleet(seed, n, side)

	var (
		scanner  *shard.Scanner
		ix       *spatial.Index
		resident *trace.Trace
		cw       *trace.ChunkWriter
	)
	if shards > 1 {
		scanner = shard.NewScanner(shards, spec.Workers)
		cw = trace.NewChunkWriter(io.Discard, dt, n, trace.DefaultChunkTicks)
	} else {
		ix = spatial.New(maxRange)
		resident = trace.New(dt, n)
	}

	var pairs []spatial.Pair
	totalPairs := 0
	peakHeap := heapInUse()
	start := time.Now()
	done := 0
	for t := 0; t < ticks; t++ {
		if err := ctx.Err(); err != nil {
			break
		}
		fleet.Tick(dt, spec.Workers)
		pts := fleet.Positions()
		if shards > 1 {
			copy(cw.AppendRow(), pts)
			pairs = scanner.Scan(pairs[:0], pts, maxRange)
		} else {
			copy(resident.AppendRow(), pts)
			ix.Rebuild(pts)
			pairs = ix.Pairs(pairs[:0], maxRange)
		}
		totalPairs += len(pairs)
		done++
		if t%16 == 15 {
			if h := heapInUse(); h > peakHeap {
				peakHeap = h
			}
		}
	}
	wall := time.Since(start)
	if cw != nil {
		if err := cw.Close(); err != nil {
			return nil, err
		}
	}
	if h := heapInUse(); h > peakHeap {
		peakHeap = h
	}

	tbl := metrics.NewTable("Fleet scan scale workload", "value")
	tbl.AddRow("vehicles", float64(n))
	tbl.AddRow("ticks", float64(done))
	tbl.AddRow("shards", float64(shards))
	tbl.AddRow("wall ms", float64(wall.Milliseconds()))
	if wall > 0 {
		tbl.AddRow("ticks per s", float64(done)/wall.Seconds())
	}
	tbl.AddRow("peak heap MB", float64(peakHeap)/(1<<20))
	if done > 0 {
		tbl.AddRow("pairs per tick", float64(totalPairs)/float64(done))
	}
	return &Result{
		Experiment: ExpFleetScan,
		Table:      tbl,
		Canceled:   ctx.Err() != nil,
	}, nil
}

// heapInUse samples the live heap size.
func heapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}
