// Package repolint holds repository-wide static checks that run as plain
// go tests. Unlike external linters these need no module proxy access, so
// they gate CI even on offline boxes. The current checks walk every Go
// file and reject (1) declarations that shadow predeclared identifiers
// (cap, len, max, min, new, ...), which read as builtin calls at a glance
// and break them for the rest of the scope, and (2) function parameters
// typed with the concrete trace.Trace or trace.Window outside the trace
// package — consumers must accept trace.Source so resident and streamed
// mobility sources stay interchangeable (DESIGN.md §12).
package repolint
