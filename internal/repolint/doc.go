// Package repolint holds repository-wide static checks that run as plain
// go tests. Unlike external linters these need no module proxy access, so
// they gate CI even on offline boxes. The current check walks every Go
// file and rejects declarations that shadow predeclared identifiers (cap,
// len, max, min, new, ...), which read as builtin calls at a glance and
// break them for the rest of the scope.
package repolint
