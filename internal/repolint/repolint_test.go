package repolint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoShadowedBuiltins is the repository-wide assertion: no Go file in
// the module may declare a name that shadows a predeclared identifier.
func TestNoShadowedBuiltins(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	findings, err := ShadowedBuiltins(root)
	if err != nil {
		t.Fatalf("ShadowedBuiltins: %v", err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestDetectsShadowingForms pins down the declaration sites the checker
// must catch, and the ones it must deliberately ignore.
func TestDetectsShadowingForms(t *testing.T) {
	src := `package p

func cap() {}                  // function name

func f(len int) (min int) {   // param and named result
	max := 1                   // short declaration
	var new int                // var spec
	const copy = 2             // const spec
	for clear := range []int{} { _ = clear } // range key
	g := func(delete string) {} // func literal param
	_ = g
	_, _, _ = max, new, copy
	return
}

type append struct{}           // type name

type ok struct {
	len int                    // struct field: must NOT be flagged
}

func (o ok) close() {}         // method name: must NOT be flagged
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := ShadowedBuiltins(dir)
	if err != nil {
		t.Fatalf("ShadowedBuiltins: %v", err)
	}
	want := []string{"cap", "len", "min", "max", "new", "copy", "clear", "delete", "append"}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
	for _, name := range want {
		hit := false
		for _, f := range findings {
			if strings.Contains(f, `"`+name+`"`) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("no finding for shadowed builtin %q in:\n%s", name, strings.Join(findings, "\n"))
		}
	}
	for _, f := range findings {
		if strings.Contains(f, `"close"`) || strings.Contains(f, `"ok"`) {
			t.Errorf("field/method name wrongly flagged: %s", f)
		}
	}
}
