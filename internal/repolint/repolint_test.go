package repolint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoShadowedBuiltins is the repository-wide assertion: no Go file in
// the module may declare a name that shadows a predeclared identifier.
func TestNoShadowedBuiltins(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	findings, err := ShadowedBuiltins(root)
	if err != nil {
		t.Fatalf("ShadowedBuiltins: %v", err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestNoConcreteTraceParams is the repository-wide assertion: outside
// internal/trace, no function may take the concrete trace.Trace or
// trace.Window as a parameter — consumers go through trace.Source so the
// resident and streamed implementations stay interchangeable.
func TestNoConcreteTraceParams(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	findings, err := ConcreteTraceParams(root)
	if err != nil {
		t.Fatalf("ConcreteTraceParams: %v", err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestDetectsConcreteTraceParams pins down the signature forms the checker
// must catch, and the ones it must deliberately allow.
func TestDetectsConcreteTraceParams(t *testing.T) {
	src := `package p

import tr "lbchat/internal/trace"

func f(t *tr.Trace) {}                  // pointer param
func g(w tr.Window, n int) {}           // value param
func h(fn func(*tr.Trace)) {}           // func-typed param's param
func ok1(s tr.Source) {}                // interface param: allowed
func ok2(w tr.Windowed) {}              // capability param: allowed
func ok3() *tr.Trace { return nil }     // concrete result: allowed
func ok4(cfg tr.WindowConfig) {}        // config struct: allowed

type i interface {
	m(*tr.Window) // interface method param
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := ConcreteTraceParams(dir)
	if err != nil {
		t.Fatalf("ConcreteTraceParams: %v", err)
	}
	if len(findings) != 4 {
		t.Fatalf("got %d findings, want 4:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	for _, f := range findings {
		if strings.Contains(f, "ok") || strings.Contains(f, "Source") && !strings.Contains(f, "accept") {
			t.Errorf("allowed form wrongly flagged: %s", f)
		}
	}
}

// TestConcreteTraceParamsExemptsTracePackage: the trace package's own files
// (and files that never import it) produce no findings.
func TestConcreteTraceParamsExemptsTracePackage(t *testing.T) {
	dir := t.TempDir()
	inTrace := filepath.Join(dir, "internal", "trace")
	if err := os.MkdirAll(inTrace, 0o755); err != nil {
		t.Fatal(err)
	}
	own := `package trace

import tr "lbchat/internal/trace"

func internalHelper(t *tr.Trace) {}
`
	if err := os.WriteFile(filepath.Join(inTrace, "x.go"), []byte(own), 0o644); err != nil {
		t.Fatal(err)
	}
	noImport := `package p

type Trace struct{}

func f(t *Trace) {} // unrelated local type named Trace
`
	if err := os.WriteFile(filepath.Join(dir, "y.go"), []byte(noImport), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := ConcreteTraceParams(dir)
	if err != nil {
		t.Fatalf("ConcreteTraceParams: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings:\n%s", strings.Join(findings, "\n"))
	}
}

// TestNoDirectCoresetBuilds is the repository-wide assertion: outside the
// coreset package and the engine's construction layer, no non-test code may
// call coreset.Build/BuildWith directly — coresets flow through
// Engine.EnsureCoreset so the partition tree and the A/B arm flag apply.
func TestNoDirectCoresetBuilds(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	findings, err := DirectCoresetBuilds(root)
	if err != nil {
		t.Fatalf("DirectCoresetBuilds: %v", err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestDetectsDirectCoresetBuilds pins down the call forms the checker must
// catch, and the ones it must deliberately allow.
func TestDetectsDirectCoresetBuilds(t *testing.T) {
	src := `package p

import cs "lbchat/internal/coreset"

func bad1() { cs.Build(nil, nil, 10, nil) }                   // direct Build
func bad2() { cs.BuildWith(cs.MethodLayered, nil, nil, 10, nil) } // direct BuildWith
func ok1() { cs.FromDataset(nil) }                            // wrapping: allowed
func ok2() { cs.MergeReduce(nil, nil, 10, nil) }              // maintenance: allowed
func ok3() { cs.NewTree(cs.TreeConfig{}) }                    // tree: allowed
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := DirectCoresetBuilds(dir)
	if err != nil {
		t.Fatalf("DirectCoresetBuilds: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	for _, f := range findings {
		if strings.Contains(f, "ok") {
			t.Errorf("allowed form wrongly flagged: %s", f)
		}
	}
}

// TestDirectCoresetBuildsExemptions: the coreset package itself, the
// engine's coreset_mgmt.go, test files, the examples tree, and files that
// never import the package produce no findings.
func TestDirectCoresetBuildsExemptions(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	call := `import cs "lbchat/internal/coreset"

func f() { cs.Build(nil, nil, 10, nil) }
`
	write(filepath.Join("internal", "coreset", "x.go"), "package coreset\n\n"+call)
	write(filepath.Join("internal", "core", "coreset_mgmt.go"), "package core\n\n"+call)
	write(filepath.Join("internal", "core", "x_test.go"), "package core\n\n"+call)
	write(filepath.Join("examples", "demo", "main.go"), "package main\n\n"+call)
	write("y.go", `package p

type coreset struct{}

func (coreset) Build() {}

func g() { var c coreset; c.Build() } // unrelated local type: allowed
`)
	findings, err := DirectCoresetBuilds(dir)
	if err != nil {
		t.Fatalf("DirectCoresetBuilds: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings:\n%s", strings.Join(findings, "\n"))
	}
}

// TestNoHotPathFleetScans is the repository-wide assertion: the engine's
// per-tick hot-path functions (trainTick, probeLossMean, recordLoss,
// calendarDue, dispatchPhase) may not range over the full Vehicles slice —
// due work comes from the calendar queue and batched work from the shard
// grouper, so empty ticks stay O(1).
func TestNoHotPathFleetScans(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	findings, err := HotPathFleetScans(root)
	if err != nil {
		t.Fatalf("HotPathFleetScans: %v", err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestDetectsHotPathFleetScans pins down the loop forms the checker must
// catch inside hot-path functions, and the contexts it must deliberately
// allow.
func TestDetectsHotPathFleetScans(t *testing.T) {
	src := `package core

type engine struct{ Vehicles []int }

func (e *engine) trainTick() {
	for range e.Vehicles { // fleet scan in a hot path
	}
}

func (e *engine) probeLossMean() {
	for _, v := range e.Vehicles { // fleet scan in a hot path
		_ = v
	}
}

func (e *engine) calendarDue(due []int32) []int32 {
	for _, id := range due { // due-set iteration: allowed
		_ = id
	}
	return due
}

func (e *engine) legacyDueScan() {
	for range e.Vehicles { // the sanctioned reference arm: allowed
	}
}

func (e *engine) FleetReceiveStats() {
	for range e.Vehicles { // end-of-run aggregation, not a hot path: allowed
	}
}
`
	dir := t.TempDir()
	coreDir := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(coreDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(coreDir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := HotPathFleetScans(dir)
	if err != nil {
		t.Fatalf("HotPathFleetScans: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	for _, f := range findings {
		if strings.Contains(f, "legacyDueScan") || strings.Contains(f, "FleetReceiveStats") ||
			strings.Contains(f, "calendarDue") {
			t.Errorf("allowed form wrongly flagged: %s", f)
		}
	}
}

// TestHotPathFleetScansExemptsTestsAndOutsideCore: test files inside
// internal/core and hot-named functions outside internal/core produce no
// findings.
func TestHotPathFleetScansExemptsTestsAndOutsideCore(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	scan := `type engine struct{ Vehicles []int }

func (e *engine) trainTick() {
	for range e.Vehicles {
	}
}
`
	write(filepath.Join("internal", "core", "x_test.go"), "package core\n\n"+scan)
	write(filepath.Join("internal", "other", "x.go"), "package other\n\n"+scan)
	findings, err := HotPathFleetScans(dir)
	if err != nil {
		t.Fatalf("HotPathFleetScans: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings:\n%s", strings.Join(findings, "\n"))
	}
}

// TestDetectsShadowingForms pins down the declaration sites the checker
// must catch, and the ones it must deliberately ignore.
func TestDetectsShadowingForms(t *testing.T) {
	src := `package p

func cap() {}                  // function name

func f(len int) (min int) {   // param and named result
	max := 1                   // short declaration
	var new int                // var spec
	const copy = 2             // const spec
	for clear := range []int{} { _ = clear } // range key
	g := func(delete string) {} // func literal param
	_ = g
	_, _, _ = max, new, copy
	return
}

type append struct{}           // type name

type ok struct {
	len int                    // struct field: must NOT be flagged
}

func (o ok) close() {}         // method name: must NOT be flagged
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := ShadowedBuiltins(dir)
	if err != nil {
		t.Fatalf("ShadowedBuiltins: %v", err)
	}
	want := []string{"cap", "len", "min", "max", "new", "copy", "clear", "delete", "append"}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
	for _, name := range want {
		hit := false
		for _, f := range findings {
			if strings.Contains(f, `"`+name+`"`) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("no finding for shadowed builtin %q in:\n%s", name, strings.Join(findings, "\n"))
		}
	}
	for _, f := range findings {
		if strings.Contains(f, `"close"`) || strings.Contains(f, `"ok"`) {
			t.Errorf("field/method name wrongly flagged: %s", f)
		}
	}
}
