package repolint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// ShadowedBuiltins parses every .go file under root and returns one
// "path:line:col: name" finding per declaration whose name shadows a
// predeclared identifier — anything in the types.Universe scope, which
// covers the builtin functions (append, cap, clear, copy, delete, len,
// make, max, min, new, ...), the predeclared types, and the constants
// true/false/iota/nil. Checked declaration sites: short variable
// declarations, range clauses, var/const specs, type names, function
// names, and func parameter/result/receiver lists. Struct fields and
// method names are not checked — they are selector-qualified and cannot
// shadow anything. The blank identifier is always allowed.
func ShadowedBuiltins(root string) ([]string, error) {
	var findings []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			rel = path
		}
		checkFile(fset, rel, file, &findings)
		return nil
	})
	return findings, err
}

// checkFile appends a finding for each shadowing declaration in one file.
func checkFile(fset *token.FileSet, path string, file *ast.File, findings *[]string) {
	flag := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if types.Universe.Lookup(id.Name) == nil {
			return
		}
		pos := fset.Position(id.Pos())
		*findings = append(*findings,
			fmt.Sprintf("%s:%d:%d: declaration shadows builtin %q", path, pos.Line, pos.Column, id.Name))
	}
	flagFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				flag(name)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						flag(id)
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					flag(id)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				flag(name)
			}
		case *ast.TypeSpec:
			flag(n.Name)
			flagFields(n.TypeParams)
		case *ast.FuncDecl:
			if n.Recv == nil {
				// Method names are selector-qualified; only plain
				// functions can shadow a builtin at the call site.
				flag(n.Name)
			}
			flagFields(n.Recv)
		case *ast.FuncType:
			// Covers both declarations and literals: FuncDecl.Type and
			// FuncLit.Type are visited here.
			flagFields(n.TypeParams)
			flagFields(n.Params)
			flagFields(n.Results)
		}
		return true
	})
}

// ConcreteTraceParams parses every .go file under root and returns one
// "path:line:col: ..." finding per function parameter declared with a
// concrete mobility-source type — trace.Trace or trace.Window, with any
// number of pointer indirections — outside the trace package itself.
// Consumers must accept the trace.Source interface (or trace.Windowed for
// window-specific capabilities) so both the resident trace and the bounded
// sliding window satisfy them; a concrete parameter type quietly pins a
// call path to one implementation and breaks the streamed/resident A/B
// guarantee. Returning a concrete type is fine — constructors do — and the
// trace package's own internals are exempt.
func ConcreteTraceParams(root string) ([]string, error) {
	var findings []string
	fset := token.NewFileSet()
	tracePkgDir := filepath.Join("internal", "trace")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			rel = path
		}
		if strings.HasPrefix(rel, tracePkgDir+string(filepath.Separator)) {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		checkTraceParams(fset, rel, file, &findings)
		return nil
	})
	return findings, err
}

// checkTraceParams appends a finding for each concrete-trace parameter in
// one file. It resolves the file's local name for the trace import (usually
// "trace", but aliases count too) and then flags parameters of that
// package's Trace and Window types in every function signature — top-level
// declarations, methods, function literals, func-typed fields, and
// interface methods all share *ast.FuncType and are visited alike.
func checkTraceParams(fset *token.FileSet, path string, file *ast.File, findings *[]string) {
	local := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "lbchat/internal/trace" {
			continue
		}
		local = "trace"
		if imp.Name != nil {
			local = imp.Name.Name
		}
	}
	if local == "" || local == "." || local == "_" {
		return
	}
	concrete := func(expr ast.Expr) string {
		for {
			star, ok := expr.(*ast.StarExpr)
			if !ok {
				break
			}
			expr = star.X
		}
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != local {
			return ""
		}
		if sel.Sel.Name == "Trace" || sel.Sel.Name == "Window" {
			return local + "." + sel.Sel.Name
		}
		return ""
	}
	ast.Inspect(file, func(n ast.Node) bool {
		ft, ok := n.(*ast.FuncType)
		if !ok || ft.Params == nil {
			return true
		}
		for _, f := range ft.Params.List {
			name := concrete(f.Type)
			if name == "" {
				continue
			}
			pos := fset.Position(f.Type.Pos())
			*findings = append(*findings, fmt.Sprintf(
				"%s:%d:%d: parameter typed with concrete %s; accept trace.Source (or trace.Windowed) instead",
				path, pos.Line, pos.Column, name))
		}
		return true
	})
}

// DirectCoresetBuilds parses every .go file under root and returns one
// "path:line:col: ..." finding per call to coreset.Build or
// coreset.BuildWith outside the construction layer. Coresets must be built
// through the engine's EnsureCoreset (internal/core/coreset_mgmt.go), which
// routes every refresh through the partition tree or the full-rebuild arm —
// a direct Build call bypasses the incremental cache, the A/B arm flag, and
// the telemetry side channel. Exempt: the coreset package itself, the
// engine's coreset_mgmt.go, test files, and the examples tree (pedagogical
// standalone programs).
func DirectCoresetBuilds(root string) ([]string, error) {
	var findings []string
	fset := token.NewFileSet()
	coresetPkgDir := filepath.Join("internal", "coreset")
	mgmtFile := filepath.Join("internal", "core", "coreset_mgmt.go")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "examples" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			rel = path
		}
		if strings.HasPrefix(rel, coresetPkgDir+string(filepath.Separator)) || rel == mgmtFile {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		checkCoresetBuilds(fset, rel, file, &findings)
		return nil
	})
	return findings, err
}

// checkCoresetBuilds appends a finding for each direct coreset-construction
// call in one file. It resolves the file's local name for the coreset import
// (aliases count too) and flags calls to that package's Build and BuildWith.
func checkCoresetBuilds(fset *token.FileSet, path string, file *ast.File, findings *[]string) {
	local := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "lbchat/internal/coreset" {
			continue
		}
		local = "coreset"
		if imp.Name != nil {
			local = imp.Name.Name
		}
	}
	if local == "" || local == "." || local == "_" {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != local {
			return true
		}
		if sel.Sel.Name != "Build" && sel.Sel.Name != "BuildWith" {
			return true
		}
		pos := fset.Position(call.Pos())
		*findings = append(*findings, fmt.Sprintf(
			"%s:%d:%d: direct %s.%s call; build coresets through Engine.EnsureCoreset so the partition tree and arm flag apply",
			path, pos.Line, pos.Column, local, sel.Sel.Name))
		return true
	})
}

// hotPathFuncs are the engine's per-tick hot-path functions: the ones that
// run every tick (or every probe) and therefore must scale with the due or
// batched working set, never with fleet size. legacyDueScan is deliberately
// absent — it IS the sanctioned O(fleet) reference arm.
var hotPathFuncs = map[string]bool{
	"trainTick":     true,
	"probeLossMean": true,
	"recordLoss":    true,
	"calendarDue":   true,
	"dispatchPhase": true,
}

// HotPathFleetScans parses every non-test .go file under root's
// internal/core and returns one "path:line:col: ..." finding per
// `for ... range e.Vehicles` loop inside a per-tick hot-path function
// (hotPathFuncs). The calendar queue exists precisely so empty ticks cost
// O(1) and due ticks cost O(due); a fleet-sized range in one of these
// functions silently reverts the engine to the O(N)-per-tick regime the
// scheduler replaced (DESIGN.md §15). The legacy reference arm
// (legacyDueScan) and everything outside the hot set — construction,
// end-of-run aggregation, the encounter scan's own spatial index — are
// exempt.
func HotPathFleetScans(root string) ([]string, error) {
	var findings []string
	fset := token.NewFileSet()
	coreDir := filepath.Join(root, "internal", "core")
	err := filepath.WalkDir(coreDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			rel = path
		}
		checkHotPathScans(fset, rel, file, &findings)
		return nil
	})
	return findings, err
}

// checkHotPathScans appends a finding for each fleet-sized range statement
// inside a hot-path function in one file. It flags `range X.Vehicles` for
// any receiver X — the selector, not the receiver name, is the signature of
// a fleet scan.
func checkHotPathScans(fset *token.FileSet, path string, file *ast.File, findings *[]string) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !hotPathFuncs[fn.Name.Name] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			sel, ok := rng.X.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Vehicles" {
				return true
			}
			pos := fset.Position(rng.Pos())
			*findings = append(*findings, fmt.Sprintf(
				"%s:%d:%d: fleet-sized range over Vehicles in per-tick hot path %s; use the calendar queue's due set or the shard batcher instead",
				path, pos.Line, pos.Column, fn.Name.Name))
			return true
		})
	}
}

// ModuleRoot walks upward from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
