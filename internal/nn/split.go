package nn

import "lbchat/internal/tensor"

// SplitTail wraps an inner layer so that the last Tail input columns bypass
// it: the inner layer processes columns [0, in−Tail) and the bypassed
// columns are concatenated after its output. Used to route the BEV through
// a convolutional front-end while the ego-speed scalar joins the dense
// trunk directly.
type SplitTail struct {
	Inner Layer
	Tail  int

	tailCache *tensor.Dense
}

var _ Layer = (*SplitTail)(nil)

// NewSplitTail wraps inner with a tail bypass of the given width.
func NewSplitTail(inner Layer, tail int) *SplitTail {
	return &SplitTail{Inner: inner, Tail: tail}
}

// Forward implements Layer.
func (s *SplitTail) Forward(x *tensor.Dense) *tensor.Dense {
	batch, cols := x.Shape()[0], x.Shape()[1]
	headCols := cols - s.Tail
	head := tensor.New(batch, headCols)
	tail := tensor.New(batch, s.Tail)
	for b := 0; b < batch; b++ {
		row := x.Data()[b*cols : (b+1)*cols]
		copy(head.Data()[b*headCols:(b+1)*headCols], row[:headCols])
		copy(tail.Data()[b*s.Tail:(b+1)*s.Tail], row[headCols:])
	}
	s.tailCache = tail
	innerOut := s.Inner.Forward(head)
	outCols := innerOut.Shape()[1] + s.Tail
	out := tensor.New(batch, outCols)
	for b := 0; b < batch; b++ {
		copy(out.Data()[b*outCols:], innerOut.Data()[b*innerOut.Shape()[1]:(b+1)*innerOut.Shape()[1]])
		copy(out.Data()[b*outCols+innerOut.Shape()[1]:], tail.Data()[b*s.Tail:(b+1)*s.Tail])
	}
	return out
}

// Backward implements Layer.
func (s *SplitTail) Backward(grad *tensor.Dense) *tensor.Dense {
	batch, outCols := grad.Shape()[0], grad.Shape()[1]
	innerCols := outCols - s.Tail
	innerGrad := tensor.New(batch, innerCols)
	for b := 0; b < batch; b++ {
		copy(innerGrad.Data()[b*innerCols:(b+1)*innerCols], grad.Data()[b*outCols:b*outCols+innerCols])
	}
	dHead := s.Inner.Backward(innerGrad)
	headCols := dHead.Shape()[1]
	inCols := headCols + s.Tail
	dx := tensor.New(batch, inCols)
	for b := 0; b < batch; b++ {
		copy(dx.Data()[b*inCols:b*inCols+headCols], dHead.Data()[b*headCols:(b+1)*headCols])
		copy(dx.Data()[b*inCols+headCols:(b+1)*inCols], grad.Data()[b*outCols+innerCols:(b+1)*outCols])
	}
	return dx
}

// Params implements Layer.
func (s *SplitTail) Params() ParamSet { return s.Inner.Params() }
