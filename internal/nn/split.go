package nn

import "lbchat/internal/tensor"

// SplitTail wraps an inner layer so that the last Tail input columns bypass
// it: the inner layer processes columns [0, in−Tail) and the bypassed
// columns are concatenated after its output. Used to route the BEV through
// a convolutional front-end while the ego-speed scalar joins the dense
// trunk directly.
type SplitTail struct {
	Inner Layer
	Tail  int

	tailCache *tensor.Dense
	// Scratch tensors reused across steps (fully overwritten per call).
	head, out, innerGrad, dx *tensor.Dense
}

var _ Layer = (*SplitTail)(nil)

// NewSplitTail wraps inner with a tail bypass of the given width.
func NewSplitTail(inner Layer, tail int) *SplitTail {
	return &SplitTail{Inner: inner, Tail: tail}
}

// Forward implements Layer.
func (s *SplitTail) Forward(x *tensor.Dense) *tensor.Dense {
	batch, cols := x.Shape()[0], x.Shape()[1]
	headCols := cols - s.Tail
	s.head = tensor.Reuse2D(s.head, batch, headCols)
	head := s.head
	s.tailCache = tensor.Reuse2D(s.tailCache, batch, s.Tail)
	tail := s.tailCache
	for b := 0; b < batch; b++ {
		row := x.Data()[b*cols : (b+1)*cols]
		copy(head.Data()[b*headCols:(b+1)*headCols], row[:headCols])
		copy(tail.Data()[b*s.Tail:(b+1)*s.Tail], row[headCols:])
	}
	innerOut := s.Inner.Forward(head)
	outCols := innerOut.Shape()[1] + s.Tail
	s.out = tensor.Reuse2D(s.out, batch, outCols)
	out := s.out
	for b := 0; b < batch; b++ {
		copy(out.Data()[b*outCols:], innerOut.Data()[b*innerOut.Shape()[1]:(b+1)*innerOut.Shape()[1]])
		copy(out.Data()[b*outCols+innerOut.Shape()[1]:], tail.Data()[b*s.Tail:(b+1)*s.Tail])
	}
	return out
}

// Backward implements Layer.
func (s *SplitTail) Backward(grad *tensor.Dense) *tensor.Dense {
	batch, outCols := grad.Shape()[0], grad.Shape()[1]
	innerCols := outCols - s.Tail
	s.innerGrad = tensor.Reuse2D(s.innerGrad, batch, innerCols)
	innerGrad := s.innerGrad
	for b := 0; b < batch; b++ {
		copy(innerGrad.Data()[b*innerCols:(b+1)*innerCols], grad.Data()[b*outCols:b*outCols+innerCols])
	}
	dHead := s.Inner.Backward(innerGrad)
	headCols := dHead.Shape()[1]
	inCols := headCols + s.Tail
	s.dx = tensor.Reuse2D(s.dx, batch, inCols)
	dx := s.dx
	for b := 0; b < batch; b++ {
		copy(dx.Data()[b*inCols:b*inCols+headCols], dHead.Data()[b*headCols:(b+1)*headCols])
		copy(dx.Data()[b*inCols+headCols:(b+1)*inCols], grad.Data()[b*outCols+innerCols:(b+1)*outCols])
	}
	return dx
}

// Params implements Layer.
func (s *SplitTail) Params() ParamSet { return s.Inner.Params() }
