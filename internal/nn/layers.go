package nn

import (
	"math"

	"lbchat/internal/simrand"
	"lbchat/internal/tensor"
)

// Layer is a differentiable module operating on batched activations shaped
// (batch, features). Forward caches whatever Backward needs; a layer instance
// therefore serves one forward/backward pair at a time and is not safe for
// concurrent use. The fleet trains in parallel by giving every vehicle its
// own layer instances (one Policy each), never by sharing layers.
//
// Layers return SCRATCH tensors from Forward and Backward: the returned
// tensor is owned by the layer and overwritten on its next call. Callers
// that need the values past the next Forward/Backward must copy them (the
// model layer's loss/prediction paths already do).
type Layer interface {
	// Forward computes the layer output for a batch of inputs.
	Forward(x *tensor.Dense) *tensor.Dense
	// Backward receives dLoss/dOutput and returns dLoss/dInput, accumulating
	// parameter gradients along the way.
	Backward(grad *tensor.Dense) *tensor.Dense
	// Params returns the layer's trainable parameters (possibly empty).
	Params() ParamSet
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	W, B    *Param

	x *tensor.Dense // cached input
	// Scratch tensors reused across steps to keep the training hot path
	// allocation-free: the forward output, the weight-gradient accumulator,
	// and the input gradient. Reuse is safe because each is fully
	// overwritten per call and consumed before the next Forward/Backward
	// on this layer.
	out, wGrad, dx *tensor.Dense
}

var _ Layer = (*Dense)(nil)

// NewDense creates a fully connected layer with He-uniform initialization.
func NewDense(name string, in, out int, rng *simrand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".b", out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	wd := d.W.Value.Data()
	for i := range wd {
		wd[i] = rng.Uniform(-bound, bound)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Dense) *tensor.Dense {
	d.x = x
	batch := x.Shape()[0]
	d.out = tensor.Reuse2D(d.out, batch, d.Out)
	out := d.out
	tensor.MatMulInto(out, x, d.W.Value)
	bd := d.B.Value.Data()
	od := out.Data()
	for i := 0; i < batch; i++ {
		row := od[i*d.Out : (i+1)*d.Out]
		for j, bv := range bd {
			row[j] += bv
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Dense) *tensor.Dense {
	batch := grad.Shape()[0]
	// dW += xᵀ·grad
	d.wGrad = tensor.Reuse2D(d.wGrad, d.In, d.Out)
	wGrad := d.wGrad
	tensor.MatMulTransAInto(wGrad, d.x, grad)
	d.W.Grad.AddInPlace(wGrad)
	// db += column sums of grad
	bg := d.B.Grad.Data()
	gd := grad.Data()
	for i := 0; i < batch; i++ {
		row := gd[i*d.Out : (i+1)*d.Out]
		for j, gv := range row {
			bg[j] += gv
		}
	}
	// dx = grad·Wᵀ
	d.dx = tensor.Reuse2D(d.dx, batch, d.In)
	dx := d.dx
	tensor.MatMulTransBInto(dx, grad, d.W.Value)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() ParamSet { return ParamSet{d.W, d.B} }

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
	// out and gout are scratch tensors reused across steps (fully
	// overwritten per call).
	out, gout *tensor.Dense
}

var _ Layer = (*ReLU)(nil)

// NewReLU creates a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Dense) *tensor.Dense {
	r.out = tensor.ReuseLike(r.out, x)
	out := r.out
	od := out.Data()
	xd := x.Data()
	if cap(r.mask) < len(od) {
		r.mask = make([]bool, len(od))
	}
	r.mask = r.mask[:len(od)]
	for i, v := range xd {
		if v > 0 {
			r.mask[i] = true
			od[i] = v
		} else {
			r.mask[i] = false
			od[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Dense) *tensor.Dense {
	r.gout = tensor.ReuseLike(r.gout, grad)
	out := r.gout
	od := out.Data()
	gd := grad.Data()
	for i, g := range gd {
		if r.mask[i] {
			od[i] = g
		} else {
			od[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() ParamSet { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	// y is the cached forward output (doubles as the reused output
	// scratch); gout is the reused backward scratch.
	y, gout *tensor.Dense
}

var _ Layer = (*Tanh)(nil)

// NewTanh creates a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Dense) *tensor.Dense {
	t.y = tensor.ReuseLike(t.y, x)
	out := t.y
	od := out.Data()
	for i, v := range x.Data() {
		od[i] = math.Tanh(v)
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Dense) *tensor.Dense {
	t.gout = tensor.ReuseLike(t.gout, grad)
	out := t.gout
	od := out.Data()
	yd := t.y.Data()
	for i, g := range grad.Data() {
		od[i] = g * (1 - yd[i]*yd[i])
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() ParamSet { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a sequential container from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Dense) *tensor.Dense {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Dense) *tensor.Dense {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() ParamSet {
	var ps ParamSet
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
