package nn

import (
	"math"

	"lbchat/internal/simrand"
	"lbchat/internal/tensor"
)

// Layer is a differentiable module operating on batched activations shaped
// (batch, features). Forward caches whatever Backward needs; a layer instance
// therefore serves one forward/backward pair at a time and is not safe for
// concurrent use.
type Layer interface {
	// Forward computes the layer output for a batch of inputs.
	Forward(x *tensor.Dense) *tensor.Dense
	// Backward receives dLoss/dOutput and returns dLoss/dInput, accumulating
	// parameter gradients along the way.
	Backward(grad *tensor.Dense) *tensor.Dense
	// Params returns the layer's trainable parameters (possibly empty).
	Params() ParamSet
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	W, B    *Param

	x *tensor.Dense // cached input
}

var _ Layer = (*Dense)(nil)

// NewDense creates a fully connected layer with He-uniform initialization.
func NewDense(name string, in, out int, rng *simrand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".b", out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	wd := d.W.Value.Data()
	for i := range wd {
		wd[i] = rng.Uniform(-bound, bound)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Dense) *tensor.Dense {
	d.x = x
	batch := x.Shape()[0]
	out := tensor.New(batch, d.Out)
	tensor.MatMulInto(out, x, d.W.Value)
	bd := d.B.Value.Data()
	od := out.Data()
	for i := 0; i < batch; i++ {
		row := od[i*d.Out : (i+1)*d.Out]
		for j, bv := range bd {
			row[j] += bv
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Dense) *tensor.Dense {
	batch := grad.Shape()[0]
	// dW += xᵀ·grad
	wGrad := tensor.New(d.In, d.Out)
	tensor.MatMulTransAInto(wGrad, d.x, grad)
	d.W.Grad.AddInPlace(wGrad)
	// db += column sums of grad
	bg := d.B.Grad.Data()
	gd := grad.Data()
	for i := 0; i < batch; i++ {
		row := gd[i*d.Out : (i+1)*d.Out]
		for j, gv := range row {
			bg[j] += gv
		}
	}
	// dx = grad·Wᵀ
	dx := tensor.New(batch, d.In)
	tensor.MatMulTransBInto(dx, grad, d.W.Value)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() ParamSet { return ParamSet{d.W, d.B} }

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU creates a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Dense) *tensor.Dense {
	out := x.Clone()
	od := out.Data()
	if cap(r.mask) < len(od) {
		r.mask = make([]bool, len(od))
	}
	r.mask = r.mask[:len(od)]
	for i, v := range od {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			od[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Dense) *tensor.Dense {
	out := grad.Clone()
	od := out.Data()
	for i := range od {
		if !r.mask[i] {
			od[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() ParamSet { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y *tensor.Dense
}

var _ Layer = (*Tanh)(nil)

// NewTanh creates a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Dense) *tensor.Dense {
	out := x.Clone()
	od := out.Data()
	for i, v := range od {
		od[i] = math.Tanh(v)
	}
	t.y = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Dense) *tensor.Dense {
	out := grad.Clone()
	od := out.Data()
	yd := t.y.Data()
	for i := range od {
		od[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() ParamSet { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a sequential container from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Dense) *tensor.Dense {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Dense) *tensor.Dense {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() ParamSet {
	var ps ParamSet
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
