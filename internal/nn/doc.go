// Package nn is a small, from-scratch neural-network library: dense and
// convolutional layers with full backpropagation, SGD and Adam optimizers,
// and a flat parameter-vector view used by the compression, aggregation, and
// serialization layers of LbChat.
//
// It substitutes for the PyTorch imitation-learning stack the paper runs on a
// GPU: same input/output contract and loss family, sized so that dozens of
// model replicas can be trained on a CPU inside the co-simulation.
package nn
