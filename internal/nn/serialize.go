package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format: a little-endian header (magic, element count) followed by the
// flat parameter vector as float32 values. Float32 matches what practical
// systems ship over the air and halves transfer size relative to the float64
// training representation.
const (
	wireMagic = 0x4C624368 // "LbCh"
	// BytesPerParam is the on-the-wire size of one model parameter.
	BytesPerParam = 4
	headerBytes   = 8
)

// ErrBadWireFormat is returned when deserialization encounters a corrupt or
// truncated payload.
var ErrBadWireFormat = errors.New("nn: bad wire format")

// Serialize encodes a flat parameter vector into wire bytes.
func Serialize(flat []float64) []byte {
	buf := make([]byte, headerBytes+BytesPerParam*len(flat))
	binary.LittleEndian.PutUint32(buf[0:4], wireMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(flat)))
	for i, v := range flat {
		binary.LittleEndian.PutUint32(buf[headerBytes+4*i:], math.Float32bits(float32(v)))
	}
	return buf
}

// Deserialize decodes wire bytes produced by Serialize.
func Deserialize(buf []byte) ([]float64, error) {
	if len(buf) < headerBytes {
		return nil, fmt.Errorf("%w: payload too short (%d bytes)", ErrBadWireFormat, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadWireFormat)
	}
	n := int(binary.LittleEndian.Uint32(buf[4:8]))
	if len(buf) != headerBytes+BytesPerParam*n {
		return nil, fmt.Errorf("%w: expected %d bytes for %d params, got %d",
			ErrBadWireFormat, headerBytes+BytesPerParam*n, n, len(buf))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[headerBytes+4*i:])))
	}
	return out, nil
}

// WireSize returns the serialized size in bytes of a model with numParams
// parameters, without materializing the payload.
func WireSize(numParams int) int {
	return headerBytes + BytesPerParam*numParams
}
