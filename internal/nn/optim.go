package nn

import "math"

// Optimizer applies accumulated gradients to a parameter set.
type Optimizer interface {
	// Step applies one update using the parameters' current gradients.
	Step(params ParamSet)
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step implements Optimizer.
func (o *SGD) Step(params ParamSet) {
	if o.velocity == nil && o.Momentum != 0 {
		o.velocity = make(map[*Param][]float64, len(params))
	}
	for _, p := range params {
		vd := p.Value.Data()
		gd := p.Grad.Data()
		if o.Momentum == 0 {
			for i := range vd {
				g := gd[i] + o.WeightDecay*vd[i]
				vd[i] -= o.LR * g
			}
			continue
		}
		vel := o.velocity[p]
		if vel == nil {
			vel = make([]float64, len(vd))
			o.velocity[p] = vel
		}
		for i := range vd {
			g := gd[i] + o.WeightDecay*vd[i]
			vel[i] = o.Momentum*vel[i] + g
			vd[i] -= o.LR * vel[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam creates an Adam optimizer with the standard default moments
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(params ParamSet) {
	if o.m == nil {
		o.m = make(map[*Param][]float64, len(params))
		o.v = make(map[*Param][]float64, len(params))
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		vd := p.Value.Data()
		gd := p.Grad.Data()
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make([]float64, len(vd))
			v = make([]float64, len(vd))
			o.m[p] = m
			o.v[p] = v
		}
		for i := range vd {
			g := gd[i] + o.WeightDecay*vd[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			vd[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
}

// ClipGradNorm rescales all gradients so their joint L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params ParamSet, maxNorm float64) float64 {
	var acc float64
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			acc += g * g
		}
	}
	norm := math.Sqrt(acc)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
