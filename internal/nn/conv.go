package nn

import (
	"math"

	"lbchat/internal/simrand"
	"lbchat/internal/tensor"
)

// Conv2D is a 2D convolution over CHW images flattened into rows of a
// (batch, C*H*W) activation tensor. Convolution is computed per sample via
// im2col + matmul.
type Conv2D struct {
	InC, InH, InW       int
	OutC                int
	Kernel, Stride, Pad int
	OutH, OutW          int

	W *Param // (OutC, InC*Kernel*Kernel)
	B *Param // (OutC)

	cols []*tensor.Dense // cached im2col matrices per sample (reused)
	// Scratch tensors reused across steps (fully overwritten or explicitly
	// zeroed per call).
	out, y, dx, g, dW, dCols, dImg *tensor.Dense
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He-uniform initialization.
func NewConv2D(name string, inC, inH, inW, outC, kernel, stride, pad int, rng *simrand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC:   outC,
		Kernel: kernel, Stride: stride, Pad: pad,
		OutH: (inH+2*pad-kernel)/stride + 1,
		OutW: (inW+2*pad-kernel)/stride + 1,
		W:    NewParam(name+".W", outC, inC*kernel*kernel),
		B:    NewParam(name+".b", outC),
	}
	fanIn := float64(inC * kernel * kernel)
	bound := math.Sqrt(6.0 / fanIn)
	wd := c.W.Value.Data()
	for i := range wd {
		wd[i] = rng.Uniform(-bound, bound)
	}
	return c
}

// OutSize returns the flattened per-sample output size.
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH * c.OutW }

// InSize returns the flattened per-sample input size.
func (c *Conv2D) InSize() int { return c.InC * c.InH * c.InW }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Dense) *tensor.Dense {
	batch := x.Shape()[0]
	c.out = tensor.Reuse2D(c.out, batch, c.OutSize())
	out := c.out
	for len(c.cols) < batch {
		c.cols = append(c.cols, nil)
	}
	spatial := c.OutH * c.OutW
	for s := 0; s < batch; s++ {
		img := tensor.FromSlice(x.Data()[s*c.InSize():(s+1)*c.InSize()], c.InC, c.InH, c.InW)
		c.cols[s] = tensor.Im2ColInto(c.cols[s], img, c.Kernel, c.Stride, c.Pad) // (spatial, inC*k*k)
		cols := c.cols[s]
		// y = cols · Wᵀ  → (spatial, outC), stored transposed as CHW.
		c.y = tensor.Reuse2D(c.y, spatial, c.OutC)
		y := c.y
		tensor.MatMulTransBInto(y, cols, c.W.Value)
		od := out.Data()[s*c.OutSize() : (s+1)*c.OutSize()]
		yd := y.Data()
		bd := c.B.Value.Data()
		for pos := 0; pos < spatial; pos++ {
			for ch := 0; ch < c.OutC; ch++ {
				od[ch*spatial+pos] = yd[pos*c.OutC+ch] + bd[ch]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Dense) *tensor.Dense {
	batch := grad.Shape()[0]
	c.dx = tensor.Reuse2D(c.dx, batch, c.InSize())
	dx := c.dx
	spatial := c.OutH * c.OutW
	wg := c.W.Grad
	bg := c.B.Grad.Data()
	for s := 0; s < batch; s++ {
		gd := grad.Data()[s*c.OutSize() : (s+1)*c.OutSize()]
		// Reassemble grad as (spatial, outC).
		c.g = tensor.Reuse2D(c.g, spatial, c.OutC)
		g := c.g
		gdM := g.Data()
		for ch := 0; ch < c.OutC; ch++ {
			for pos := 0; pos < spatial; pos++ {
				gdM[pos*c.OutC+ch] = gd[ch*spatial+pos]
				bg[ch] += gd[ch*spatial+pos]
			}
		}
		// dW += gᵀ · cols → (outC, inC*k*k)
		c.dW = tensor.Reuse2D(c.dW, c.OutC, c.InC*c.Kernel*c.Kernel)
		dW := c.dW
		tensor.MatMulTransAInto(dW, g, c.cols[s])
		wg.AddInPlace(dW)
		// dCols = g · W → (spatial, inC*k*k), then scatter back to image.
		c.dCols = tensor.Reuse2D(c.dCols, spatial, c.InC*c.Kernel*c.Kernel)
		dCols := c.dCols
		tensor.MatMulInto(dCols, g, c.W.Value)
		c.dImg = tensor.Col2ImInto(c.dImg, dCols, c.InC, c.InH, c.InW, c.Kernel, c.Stride, c.Pad)
		copy(dx.Data()[s*c.InSize():(s+1)*c.InSize()], c.dImg.Data())
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() ParamSet { return ParamSet{c.W, c.B} }
