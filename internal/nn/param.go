package nn

import (
	"fmt"
	"math"

	"lbchat/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// NewParam allocates a parameter and its gradient with the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ParamSet is an ordered collection of parameters, typically all parameters
// of a network. The order is stable and defines the layout of the flat
// parameter vector.
type ParamSet []*Param

// NumElements returns the total number of scalar parameters.
func (ps ParamSet) NumElements() int {
	n := 0
	for _, p := range ps {
		n += p.Value.Size()
	}
	return n
}

// Flatten copies all parameter values into a single flat vector.
func (ps ParamSet) Flatten() []float64 {
	out := make([]float64, 0, ps.NumElements())
	for _, p := range ps {
		out = append(out, p.Value.Data()...)
	}
	return out
}

// FlattenGrad copies all gradients into a single flat vector.
func (ps ParamSet) FlattenGrad() []float64 {
	out := make([]float64, 0, ps.NumElements())
	for _, p := range ps {
		out = append(out, p.Grad.Data()...)
	}
	return out
}

// LoadFlat copies a flat vector back into the parameter values. The vector
// length must equal NumElements.
func (ps ParamSet) LoadFlat(flat []float64) error {
	if len(flat) != ps.NumElements() {
		return fmt.Errorf("nn: flat vector length %d does not match parameter count %d", len(flat), ps.NumElements())
	}
	off := 0
	for _, p := range ps {
		n := p.Value.Size()
		copy(p.Value.Data(), flat[off:off+n])
		off += n
	}
	return nil
}

// ZeroGrad clears every gradient in the set.
func (ps ParamSet) ZeroGrad() {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// L2Norm returns the Euclidean norm of the whole parameter vector.
func (ps ParamSet) L2Norm() float64 {
	var acc float64
	for _, p := range ps {
		for _, v := range p.Value.Data() {
			acc += v * v
		}
	}
	return math.Sqrt(acc)
}
