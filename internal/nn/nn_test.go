package nn

import (
	"math"
	"testing"

	"lbchat/internal/simrand"
	"lbchat/internal/tensor"
)

// numericalGradCheck verifies analytic parameter gradients of a layer against
// central finite differences on a scalar loss L = 0.5·‖y‖².
func numericalGradCheck(t *testing.T, layer Layer, batch, in int, seed uint64) {
	t.Helper()
	rng := simrand.New(seed)
	x := tensor.New(batch, in)
	for i := range x.Data() {
		x.Data()[i] = rng.Normal(0, 1)
	}
	loss := func() float64 {
		y := layer.Forward(x)
		var acc float64
		for _, v := range y.Data() {
			acc += 0.5 * v * v
		}
		return acc
	}
	// Analytic gradients.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	y := layer.Forward(x)
	layer.Backward(y.Clone()) // dL/dy = y
	const eps = 1e-6
	for _, p := range layer.Params() {
		data := p.Value.Data()
		grad := p.Grad.Data()
		// Check a subset of coordinates for speed.
		step := len(data)/7 + 1
		for i := 0; i < len(data); i += step {
			orig := data[i]
			data[i] = orig + eps
			up := loss()
			data[i] = orig - eps
			down := loss()
			data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, grad[i], numeric)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := simrand.New(1)
	numericalGradCheck(t, NewDense("d", 5, 3, rng), 4, 5, 2)
}

func TestConvGradients(t *testing.T) {
	rng := simrand.New(1)
	conv := NewConv2D("c", 2, 4, 4, 3, 3, 2, 1, rng)
	numericalGradCheck(t, conv, 2, conv.InSize(), 3)
}

func TestSequentialGradients(t *testing.T) {
	rng := simrand.New(5)
	seq := NewSequential(
		NewDense("a", 6, 5, rng.Derive("a")),
		NewReLU(),
		NewDense("b", 5, 2, rng.Derive("b")),
	)
	numericalGradCheck(t, seq, 3, 6, 7)
}

func TestSplitTailGradients(t *testing.T) {
	rng := simrand.New(9)
	inner := NewDense("i", 4, 3, rng)
	numericalGradCheck(t, NewSplitTail(inner, 2), 3, 6, 11)
}

func TestDenseInputGradient(t *testing.T) {
	// dL/dx from Backward must match finite differences on the input.
	rng := simrand.New(2)
	d := NewDense("d", 4, 3, rng)
	x := tensor.New(2, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.Normal(0, 1)
	}
	loss := func() float64 {
		y := d.Forward(x)
		var acc float64
		for _, v := range y.Data() {
			acc += 0.5 * v * v
		}
		return acc
	}
	y := d.Forward(x)
	dx := d.Backward(y.Clone())
	const eps = 1e-6
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		up := loss()
		x.Data()[i] = orig - eps
		down := loss()
		x.Data()[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dx.Data()[i]) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx.Data()[i], numeric)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	y := r.Forward(x)
	want := []float64{0, 0, 2}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Errorf("forward[%d] = %v", i, v)
		}
	}
	g := r.Backward(tensor.FromSlice([]float64{5, 5, 5}, 1, 3))
	wantG := []float64{0, 0, 5}
	for i, v := range g.Data() {
		if v != wantG[i] {
			t.Errorf("backward[%d] = %v", i, v)
		}
	}
}

func TestTanhRange(t *testing.T) {
	th := NewTanh()
	x := tensor.FromSlice([]float64{-10, 0, 10}, 1, 3)
	y := th.Forward(x)
	if y.Data()[0] > -0.99 || math.Abs(y.Data()[1]) > 1e-12 || y.Data()[2] < 0.99 {
		t.Errorf("tanh outputs: %v", y.Data())
	}
}

func TestParamSetFlattenRoundTrip(t *testing.T) {
	rng := simrand.New(3)
	d := NewDense("d", 3, 2, rng)
	ps := d.Params()
	flat := ps.Flatten()
	if len(flat) != ps.NumElements() {
		t.Fatalf("flat length %d != %d", len(flat), ps.NumElements())
	}
	for i := range flat {
		flat[i] += 0.5
	}
	if err := ps.LoadFlat(flat); err != nil {
		t.Fatal(err)
	}
	round := ps.Flatten()
	for i := range flat {
		if round[i] != flat[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
	if err := ps.LoadFlat(flat[:1]); err == nil {
		t.Error("LoadFlat accepted short vector")
	}
}

func TestSGDDescendsQuadratic(t *testing.T) {
	p := NewParam("w", 1)
	p.Value.Data()[0] = 4
	opt := NewSGD(0.1, 0, 0)
	for i := 0; i < 100; i++ {
		p.ZeroGrad()
		p.Grad.Data()[0] = 2 * p.Value.Data()[0] // d(w²)/dw
		opt.Step(ParamSet{p})
	}
	if math.Abs(p.Value.Data()[0]) > 1e-6 {
		t.Errorf("SGD did not converge: %v", p.Value.Data()[0])
	}
}

func TestSGDMomentumFasterOnIllConditioned(t *testing.T) {
	run := func(momentum float64) float64 {
		p := NewParam("w", 1)
		p.Value.Data()[0] = 5
		opt := NewSGD(0.02, momentum, 0)
		for i := 0; i < 60; i++ {
			p.ZeroGrad()
			p.Grad.Data()[0] = 2 * p.Value.Data()[0]
			opt.Step(ParamSet{p})
		}
		return math.Abs(p.Value.Data()[0])
	}
	if run(0.9) >= run(0) {
		t.Error("momentum did not accelerate convergence")
	}
}

func TestAdamDescends(t *testing.T) {
	p := NewParam("w", 2)
	p.Value.Data()[0] = 3
	p.Value.Data()[1] = -7
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		p.Grad.Data()[0] = 2 * p.Value.Data()[0]
		p.Grad.Data()[1] = 20 * p.Value.Data()[1] // ill-conditioned
		opt.Step(ParamSet{p})
	}
	if math.Abs(p.Value.Data()[0]) > 1e-3 || math.Abs(p.Value.Data()[1]) > 1e-3 {
		t.Errorf("Adam did not converge: %v", p.Value.Data())
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 2)
	p.Grad.Data()[0] = 3
	p.Grad.Data()[1] = 4
	norm := ClipGradNorm(ParamSet{p}, 1)
	if norm != 5 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	var acc float64
	for _, g := range p.Grad.Data() {
		acc += g * g
	}
	if math.Abs(math.Sqrt(acc)-1) > 1e-9 {
		t.Errorf("post-clip norm = %v", math.Sqrt(acc))
	}
	// Below the bound: untouched.
	ClipGradNorm(ParamSet{p}, 10)
	if math.Abs(math.Sqrt(acc)-1) > 1e-9 {
		t.Error("clip modified in-bound gradient")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	flat := []float64{0, 1.5, -2.25, 1e-3}
	buf := Serialize(flat)
	if len(buf) != WireSize(len(flat)) {
		t.Fatalf("wire size %d != %d", len(buf), WireSize(len(flat)))
	}
	got, err := Deserialize(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if math.Abs(got[i]-flat[i]) > 1e-6 {
			t.Errorf("round trip [%d]: %v vs %v", i, got[i], flat[i])
		}
	}
}

func TestDeserializeRejectsCorrupt(t *testing.T) {
	if _, err := Deserialize([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
	buf := Serialize([]float64{1, 2})
	buf[0] ^= 0xFF
	if _, err := Deserialize(buf); err == nil {
		t.Error("bad magic accepted")
	}
	buf = Serialize([]float64{1, 2})
	if _, err := Deserialize(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestSplitTailRouting(t *testing.T) {
	// Tail values must pass through untouched in forward and backward.
	rng := simrand.New(4)
	inner := NewDense("i", 2, 2, rng)
	st := NewSplitTail(inner, 1)
	x := tensor.FromSlice([]float64{1, 2, 42}, 1, 3)
	y := st.Forward(x)
	if y.Shape()[1] != 3 {
		t.Fatalf("out cols = %d", y.Shape()[1])
	}
	if y.Data()[2] != 42 {
		t.Errorf("tail not passed through: %v", y.Data())
	}
	g := st.Backward(tensor.FromSlice([]float64{0, 0, 7}, 1, 3))
	if g.Data()[2] != 7 {
		t.Errorf("tail gradient not passed through: %v", g.Data())
	}
}

func TestWeightDecayShrinksParams(t *testing.T) {
	p := NewParam("w", 1)
	p.Value.Data()[0] = 10
	opt := NewSGD(0.1, 0, 0.5)
	for i := 0; i < 50; i++ {
		p.ZeroGrad() // zero task gradient: only decay acts
		opt.Step(ParamSet{p})
	}
	if v := p.Value.Data()[0]; v >= 1 || v < 0 {
		t.Errorf("weight decay left %v", v)
	}
	// Without decay the parameter must not move under zero gradients.
	q := NewParam("q", 1)
	q.Value.Data()[0] = 10
	plain := NewSGD(0.1, 0, 0)
	plain.Step(ParamSet{q})
	if q.Value.Data()[0] != 10 {
		t.Error("zero gradient moved a parameter without decay")
	}
}
