// Package coreset implements the paper's coreset machinery: layered-sampling
// construction (Algorithm 1, after [15]), weight assignment inside the
// coreset, the ε-coreset property check of Definition II.2, and the
// merge-plus-reduce updating used when local datasets expand quickly
// (§III-D, after [10]).
//
// A coreset here is a small weighted subset of a driving dataset whose
// weighted loss approximates the full dataset's weighted loss for models
// near the current one — cheap enough to ship over a vehicular link
// (~0.6 MB for 150 frames) yet informative enough to price a peer's model.
package coreset
