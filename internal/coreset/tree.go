package coreset

import (
	"fmt"

	"lbchat/internal/dataset"
	"lbchat/internal/simrand"
)

// This file implements incremental coreset maintenance as a merge-and-reduce
// partition tree (the classic streaming-coreset construction, applied to
// Algorithm 1's layered leaf summaries). The vehicle's append-only dataset is
// partitioned into fixed-size leaves; each leaf keeps a cached coreset built
// from a bounded scoring pool, and appended or invalidated ranges only mark
// the covering leaves dirty. A refresh rebuilds the dirty leaves and then
// re-merges just the invalidated paths of a cached binary merge tree, so its
// cost scales with the data added since the last refresh rather than with the
// total dataset size. Weight totals are preserved exactly at every level:
// leaf builds rescale to their leaf's total weight, Merge unions weights
// unchanged, and Reduce rescales survivors to the pre-reduce total.

// TreeConfig parameterizes a merge-and-reduce partition tree. The zero value
// of any field takes its default.
type TreeConfig struct {
	// LeafSize is the number of consecutive dataset samples per leaf
	// (default 256). The tail leaf is partial until it fills and is
	// re-dirtied as it grows.
	LeafSize int
	// LeafSample bounds how many of a leaf's samples are scored to build its
	// coreset (default 80) — the per-leaf analogue of Config.LayeringSample:
	// the pool is drawn uniformly and the built coreset is rescaled to the
	// leaf's full weight. Scoring dominates refresh cost (one model forward
	// per pooled sample), so this knob directly sets the incremental arm's
	// advantage over the full rebuild's LayeringSample-sized pool.
	LeafSample int
	// LeafTarget is the per-leaf coreset budget (default 64). It is capped
	// by the refresh budget, and must stay below LeafSample for the
	// loss-aware construction to engage (a pool at or under the target is
	// its own coreset).
	LeafTarget int
	// Method selects the leaf construction algorithm (default MethodLayered,
	// Algorithm 1).
	Method Method
}

// Tree defaults.
const (
	DefaultLeafSize   = 256
	DefaultLeafSample = 80
	DefaultLeafTarget = 64
)

// withDefaults resolves zero fields.
func (c TreeConfig) withDefaults() TreeConfig {
	if c.LeafSize <= 0 {
		c.LeafSize = DefaultLeafSize
	}
	if c.LeafSample <= 0 {
		c.LeafSample = DefaultLeafSample
	}
	if c.LeafTarget <= 0 {
		c.LeafTarget = DefaultLeafTarget
	}
	if c.Method == 0 {
		c.Method = MethodLayered
	}
	return c
}

// LossScorer evaluates per-sample losses for leaf construction; the engine
// passes the vehicle's current policy (Policy.PerSampleLosses). It is called
// only for the leaves a refresh actually rebuilds.
type LossScorer func(items []dataset.Weighted) []float64

// RefreshStats reports what one Refresh did, for the telemetry side channel
// and for tests asserting cache behavior.
type RefreshStats struct {
	// LeavesRebuilt and LeavesCached partition the tree's leaves: rebuilt
	// ones were dirty (appended, invalidated, or budget-changed), cached
	// ones were reused as-is.
	LeavesRebuilt, LeavesCached int
	// TreeMerges counts the internal merge-and-reduce nodes recomputed
	// because a descendant leaf changed; cached nodes are reused without
	// touching their subtree.
	TreeMerges int
}

// treeLeaf is one fixed-size partition of the dataset. A nil core marks the
// leaf dirty: its range was appended to, invalidated, or never built.
type treeLeaf struct {
	lo, hi int
	core   *Coreset
}

// Tree is a merge-and-reduce partition tree over one append-only dataset.
// It references the dataset by index only — samples are immutable and
// Dataset.Absorb appends — so the tree stays valid across absorbs as long as
// Extend is called with the new length. Tree is not concurrency-safe; like
// the vehicle state it summarizes, it is owned by one goroutine at a time.
type Tree struct {
	cfg    TreeConfig
	n      int
	budget int
	leaves []treeLeaf
	// levels caches the merge tree from the previous refresh: levels[0] is
	// the leaf coresets, levels[k][i] summarizes levels[k-1][2i:2i+2]. A
	// node is reused verbatim when neither child changed, so only the dirty
	// leaves' root paths are re-merged.
	levels [][]*Coreset
	// changed is reusable scratch for the per-level change flags.
	changed []bool
}

// NewTree returns an empty tree; Extend (or the first Refresh) covers the
// dataset.
func NewTree(cfg TreeConfig) *Tree {
	return &Tree{cfg: cfg.withDefaults()}
}

// Config returns the tree's resolved configuration.
func (t *Tree) Config() TreeConfig { return t.cfg }

// Len returns the dataset length the tree currently covers.
func (t *Tree) Len() int { return t.n }

// NumLeaves returns the current leaf count.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// DirtyLeaves returns how many leaves the next Refresh will rebuild.
func (t *Tree) DirtyLeaves() int {
	dirty := 0
	for i := range t.leaves {
		if t.leaves[i].core == nil {
			dirty++
		}
	}
	return dirty
}

// Extend grows the tree's coverage to a dataset of n samples, marking the
// leaves that gained samples dirty: the partial tail leaf it grows into and
// every new leaf after it. Sealed leaves keep their cached coresets. n below
// the current coverage resets the tree entirely — the datasets this
// summarizes are append-only, so a shrink means the caller replaced the
// dataset and no cache can be trusted.
func (t *Tree) Extend(n int) {
	if n < t.n {
		t.leaves, t.levels, t.n = nil, nil, 0
	}
	if n == t.n {
		return
	}
	ls := t.cfg.LeafSize
	old := t.leaves
	leaves := make([]treeLeaf, (n+ls-1)/ls)
	for i := range leaves {
		lo := i * ls
		hi := lo + ls
		if hi > n {
			hi = n
		}
		leaves[i] = treeLeaf{lo: lo, hi: hi}
		// A leaf keeps its cache only when its range is untouched; the old
		// tail leaf's hi moves when it absorbs appended samples, which
		// naturally re-dirties it.
		if i < len(old) && old[i].lo == lo && old[i].hi == hi {
			leaves[i].core = old[i].core
		}
	}
	t.leaves, t.n = leaves, n
}

// Invalidate marks every leaf overlapping the sample index range [lo, hi)
// dirty, forcing the next Refresh to rebuild them. It is the escape hatch
// for callers that mutate summarized samples out of band (mirroring
// world.InvalidateIndex), and gives benchmarks a repeatable dirty state.
func (t *Tree) Invalidate(lo, hi int) {
	if hi <= lo {
		return
	}
	for i := range t.leaves {
		if t.leaves[i].hi > lo && t.leaves[i].lo < hi {
			t.leaves[i].core = nil
		}
	}
}

// Refresh returns a coreset of budget items summarizing d, rebuilding only
// the dirty leaves and the merge nodes on their root paths; everything else
// is served from cache. The tree auto-extends to d's length first, and a
// budget change invalidates every cache (leaf targets and reduce sizes
// depend on it). rng must be a stream derived for this tree (e.g.
// rng.Derive("coreset-tree")): all randomness flows through per-leaf and
// per-node derived streams, so a leaf rebuilt at any refresh draws exactly
// the streams it would have drawn at any other — results depend on the data
// and the scorer, never on cache history.
func (t *Tree) Refresh(d *dataset.Dataset, budget int, score LossScorer, rng *simrand.Rand) (*Coreset, RefreshStats, error) {
	var stats RefreshStats
	if budget <= 0 {
		return nil, stats, fmt.Errorf("coreset: non-positive tree budget %d", budget)
	}
	if d == nil || d.Len() == 0 {
		return nil, stats, fmt.Errorf("coreset: refreshing tree over empty dataset")
	}
	t.Extend(d.Len())
	if budget != t.budget {
		for i := range t.leaves {
			t.leaves[i].core = nil
		}
		t.budget = budget
	}

	// Rebuild dirty leaves.
	if cap(t.changed) < len(t.leaves) {
		t.changed = make([]bool, len(t.leaves))
	}
	changed := t.changed[:len(t.leaves)]
	for i := range t.leaves {
		if t.leaves[i].core != nil {
			changed[i] = false
			stats.LeavesCached++
			continue
		}
		core, err := t.buildLeaf(d, i, budget, score, rng)
		if err != nil {
			return nil, stats, err
		}
		t.leaves[i].core = core
		changed[i] = true
		stats.LeavesRebuilt++
	}

	// Merge up, reusing every cached node whose children are unchanged. An
	// unchanged node carries the same *Coreset pointer as the previous
	// refresh, so "neither child changed" certifies the cached parent at the
	// same (level, index) — pairing is index-stable — still summarizes
	// exactly these children. The odd tail node propagates unmerged.
	cur := make([]*Coreset, len(t.leaves))
	for i := range t.leaves {
		cur[i] = t.leaves[i].core
	}
	prev := t.levels
	levels := make([][]*Coreset, 0, len(prev)+1)
	levels = append(levels, cur)
	for lvl := 1; len(cur) > 1; lvl++ {
		next := make([]*Coreset, (len(cur)+1)/2)
		nextChanged := make([]bool, len(next))
		for i := range next {
			a := cur[2*i]
			if 2*i+1 >= len(cur) {
				next[i] = a
				nextChanged[i] = changed[2*i]
				continue
			}
			b := cur[2*i+1]
			if !changed[2*i] && !changed[2*i+1] &&
				lvl < len(prev) && i < len(prev[lvl]) && prev[lvl][i] != nil {
				next[i] = prev[lvl][i]
				continue
			}
			merged, err := MergeReduce(a, b, budget, rng.DeriveIndexed(fmt.Sprintf("tree-merge-%d", lvl), i))
			if err != nil {
				return nil, stats, fmt.Errorf("coreset: tree merge at level %d node %d: %w", lvl, i, err)
			}
			next[i] = merged
			nextChanged[i] = true
			stats.TreeMerges++
		}
		levels = append(levels, next)
		cur, changed = next, nextChanged
	}
	t.levels = levels
	return cur[0], stats, nil
}

// buildLeaf constructs one leaf's coreset: the whole leaf when it fits the
// target, otherwise a loss-scored build over a bounded uniform pool,
// rescaled so the result carries the leaf's exact total weight.
func (t *Tree) buildLeaf(d *dataset.Dataset, idx, budget int, score LossScorer, rng *simrand.Rand) (*Coreset, error) {
	lf := t.leaves[idx]
	leafLen := lf.hi - lf.lo
	target := t.cfg.LeafTarget
	if budget < target {
		target = budget
	}
	lrng := rng.DeriveIndexed("tree-leaf", idx)
	if leafLen <= target {
		// The leaf is its own 0-coreset: no pool, no scoring.
		out := dataset.New(leafLen)
		for i := lf.lo; i < lf.hi; i++ {
			it := d.At(i)
			out.Add(it.Sample, it.Weight)
		}
		return FromDataset(out), nil
	}
	var leafTotal float64
	indices := make([]int, leafLen)
	for i := range indices {
		indices[i] = lf.lo + i
		leafTotal += d.At(lf.lo + i).Weight
	}
	if leafLen > t.cfg.LeafSample {
		perm := lrng.Perm(leafLen)[:t.cfg.LeafSample]
		pool := make([]int, t.cfg.LeafSample)
		for i, p := range perm {
			pool[i] = lf.lo + p
		}
		indices = pool
	}
	base := d.Subset(indices)
	losses := score(base.Items())
	cs, err := BuildWith(t.cfg.Method, base, losses, target, lrng.Derive("build"))
	if err != nil {
		return nil, fmt.Errorf("coreset: building leaf %d [%d,%d): %w", idx, lf.lo, lf.hi, err)
	}
	// Rescale so the leaf coreset represents the LEAF's weight, not just the
	// scored pool's — the per-leaf analogue of EnsureCoreset's
	// LayeringSample rescale.
	if poolTotal := base.TotalWeight(); poolTotal > 0 {
		if scale := leafTotal / poolTotal; scale != 1 {
			scaled := dataset.New(cs.Len())
			for _, it := range cs.Items() {
				scaled.Add(it.Sample, it.Weight*scale)
			}
			cs = FromDataset(scaled)
		}
	}
	return cs, nil
}
