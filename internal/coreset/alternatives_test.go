package coreset

import (
	"math"
	"testing"

	"lbchat/internal/simrand"
)

func TestMethodStrings(t *testing.T) {
	for _, m := range []Method{MethodLayered, MethodSensitivity, MethodClustering, MethodUniform} {
		if m.String() == "" || m.String()[0] == 'M' {
			t.Errorf("method %d has bad name %q", m, m.String())
		}
	}
}

func TestBuildWithAllMethods(t *testing.T) {
	d, losses := syntheticDataset(300, unitWeights)
	for _, m := range []Method{MethodLayered, MethodSensitivity, MethodClustering, MethodUniform} {
		cs, err := BuildWith(m, d, losses, 40, simrand.New(uint64(m)))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if cs.Len() == 0 || cs.Len() > 40 {
			t.Errorf("%v: size %d", m, cs.Len())
		}
		if math.Abs(cs.TotalWeight()-d.TotalWeight()) > 0.05*d.TotalWeight() {
			t.Errorf("%v: total weight %v, want ≈%v", m, cs.TotalWeight(), d.TotalWeight())
		}
		for _, it := range cs.Items() {
			if it.Weight <= 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
				t.Fatalf("%v: bad weight %v", m, it.Weight)
			}
		}
	}
	if _, err := BuildWith(Method(99), d, losses, 40, simrand.New(1)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestBuildWithDegenerate(t *testing.T) {
	d, losses := syntheticDataset(10, unitWeights)
	for _, m := range []Method{MethodSensitivity, MethodClustering, MethodUniform} {
		// Oversized budget returns the identity coreset.
		cs, err := BuildWith(m, d, losses, 99, simrand.New(1))
		if err != nil || cs.Len() != 10 {
			t.Errorf("%v oversized: %v len %d", m, err, cs.Len())
		}
		if _, err := BuildWith(m, d, losses, 0, simrand.New(1)); err == nil {
			t.Errorf("%v accepted zero size", m)
		}
	}
	// Zero losses must not break sensitivity sampling.
	flat := make([]float64, 10)
	cs, err := BuildWith(MethodSensitivity, d, flat, 4, simrand.New(2))
	if err != nil || cs.Len() != 4 {
		t.Errorf("zero-loss sensitivity: %v len %d", err, cs.Len())
	}
}

func TestAllMethodsApproximateLoss(t *testing.T) {
	// Every construction must estimate the weighted loss within a loose
	// bound on a skewed dataset; the informed methods should do well.
	n := 600
	d, _ := syntheticDataset(n, unitWeights)
	losses := make([]float64, n)
	rng := simrand.New(5)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		losses[i] = v * v * 5
		d.SetWeight(i, 1)
		// Make loss and target agree so weightedLoss is the estimand.
		it := d.At(i)
		it.Sample.Targets[0] = losses[i]
	}
	full := weightedLoss(d.Items())
	for _, m := range []Method{MethodLayered, MethodSensitivity, MethodClustering, MethodUniform} {
		var errAcc float64
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			cs, err := BuildWith(m, d, losses, 60, simrand.New(uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			errAcc += math.Abs(weightedLoss(cs.Items())-full) / full
		}
		mean := errAcc / trials
		t.Logf("%v: mean relative error %.4f", m, mean)
		if mean > 0.5 {
			t.Errorf("%v approximation too loose: %v", m, mean)
		}
	}
}

func TestKmeans1D(t *testing.T) {
	rng := simrand.New(7)
	values := []float64{0, 0.1, 0.05, 10, 10.2, 9.9, 20, 20.5}
	centers := kmeans1D(values, 3, rng)
	if len(centers) != 3 {
		t.Fatalf("centers = %v", centers)
	}
	// Each true cluster mean must be near one center.
	for _, want := range []float64{0.05, 10.03, 20.25} {
		best := math.Inf(1)
		for _, c := range centers {
			if d := math.Abs(c - want); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Errorf("no center near %v: %v", want, centers)
		}
	}
	// Degenerate: identical values collapse.
	same := kmeans1D([]float64{3, 3, 3}, 2, rng)
	if len(same) == 0 || same[0] != 3 {
		t.Errorf("degenerate kmeans = %v", same)
	}
}
