package coreset

import (
	"math"
	"testing"
	"testing/quick"

	"lbchat/internal/dataset"
	"lbchat/internal/simrand"
)

// syntheticDataset builds n single-feature samples whose "loss" under the
// synthetic model is simply a function of the stored speed value, letting
// tests control the loss landscape exactly.
func syntheticDataset(n int, weightOf func(i int) float64) (*dataset.Dataset, []float64) {
	d := dataset.New(n)
	losses := make([]float64, n)
	for i := 0; i < n; i++ {
		s := dataset.Sample{
			BEV:     []uint8{uint8(i % 2)},
			Command: dataset.CmdFollow,
			Speed:   float64(i) / float64(n),
			Targets: []float64{float64(i)},
		}
		d.Add(s, weightOf(i))
		losses[i] = 0.01 + 0.001*float64(i) // strictly increasing losses
	}
	return d, losses
}

func unitWeights(int) float64 { return 1 }

// weightedLoss is the f(x; ξ) of Eq. (4) for the synthetic task: the
// weighted mean of each sample's first target value.
func weightedLoss(items []dataset.Weighted) float64 {
	var acc, w float64
	for _, it := range items {
		acc += it.Weight * it.Sample.Targets[0]
		w += it.Weight
	}
	if w == 0 {
		return 0
	}
	return acc / w
}

func TestComputeLayeringBasics(t *testing.T) {
	d, losses := syntheticDataset(100, unitWeights)
	lay, err := ComputeLayering(d, losses)
	if err != nil {
		t.Fatal(err)
	}
	if lay.CenterLoss != losses[0] {
		t.Errorf("center = %v, want %v", lay.CenterLoss, losses[0])
	}
	if lay.NumLayers < 2 {
		t.Errorf("expected multiple layers, got %d", lay.NumLayers)
	}
	maxLayer := int(math.Log2(101)) + 1
	for i, l := range lay.Assignment {
		if l < 0 || l > maxLayer {
			t.Fatalf("sample %d assigned to layer %d", i, l)
		}
	}
	// Larger losses land in equal-or-outer layers.
	for i := 1; i < len(lay.Assignment); i++ {
		if lay.Assignment[i] < lay.Assignment[i-1] {
			t.Fatalf("layer order violated at %d: %d < %d", i, lay.Assignment[i], lay.Assignment[i-1])
		}
	}
}

func TestComputeLayeringErrors(t *testing.T) {
	d, losses := syntheticDataset(5, unitWeights)
	if _, err := ComputeLayering(dataset.New(0), nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := ComputeLayering(d, losses[:3]); err == nil {
		t.Error("loss/sample count mismatch accepted")
	}
}

func TestBuildSizeAndWeights(t *testing.T) {
	d, losses := syntheticDataset(200, unitWeights)
	rng := simrand.New(1)
	cs, err := Build(d, losses, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 30 {
		t.Errorf("coreset size = %d, want 30", cs.Len())
	}
	// Total coreset weight preserves the dataset's total weight exactly
	// (each layer preserves its share).
	if math.Abs(cs.TotalWeight()-d.TotalWeight()) > 1e-6 {
		t.Errorf("total weight %v, want %v", cs.TotalWeight(), d.TotalWeight())
	}
	for _, it := range cs.Items() {
		if it.Weight <= 0 {
			t.Fatalf("non-positive coreset weight %v", it.Weight)
		}
	}
}

func TestBuildDegenerateCases(t *testing.T) {
	d, losses := syntheticDataset(10, unitWeights)
	rng := simrand.New(2)
	// Budget ≥ dataset: identity coreset.
	cs, err := Build(d, losses, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 10 {
		t.Errorf("oversized budget should return whole dataset, got %d", cs.Len())
	}
	if _, err := Build(d, losses, 0, rng); err == nil {
		t.Error("zero budget accepted")
	}
	// All-equal losses: single layer, still works.
	flat := make([]float64, 10)
	cs, err = Build(d, flat, 4, rng)
	if err != nil || cs.Len() != 4 {
		t.Errorf("flat-loss build: %v, len %d", err, cs.Len())
	}
}

func TestBuildApproximatesWeightedLoss(t *testing.T) {
	// The coreset's weighted loss estimate must be close to the full
	// dataset's — the ε-coreset property realized on the synthetic task —
	// and much closer than a size-matched UNIFORM random subset with naive
	// weights on a skewed dataset.
	n := 500
	d := dataset.New(n)
	losses := make([]float64, n)
	rng := simrand.New(3)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		v = v * v * v * 10 // heavy right skew
		d.Add(dataset.Sample{
			BEV:     []uint8{1},
			Command: dataset.CmdFollow,
			Targets: []float64{v},
		}, 1)
		losses[i] = v // loss proportional to value: outliers land in outer layers
	}
	full := weightedLoss(d.Items())

	var coresetErr, uniformErr float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		tr := simrand.New(uint64(100 + trial))
		cs, err := Build(d, losses, 40, tr)
		if err != nil {
			t.Fatal(err)
		}
		coresetErr += math.Abs(weightedLoss(cs.Items()) - full)

		perm := tr.Perm(n)[:40]
		uniformErr += math.Abs(weightedLoss(d.Subset(perm).Items()) - full)
	}
	t.Logf("mean |err|: layered coreset %.4f vs uniform subset %.4f (full %.4f)",
		coresetErr/trials, uniformErr/trials, full)
	if coresetErr >= uniformErr {
		t.Errorf("layered sampling (%.4f) no better than uniform (%.4f)", coresetErr/trials, uniformErr/trials)
	}
}

func TestBuildRespectsSampleWeights(t *testing.T) {
	// A sample with overwhelming weight must almost always be selected.
	n := 50
	d, losses := syntheticDataset(n, func(i int) float64 {
		if i == 7 {
			return 1e6
		}
		return 1
	})
	picked := 0
	for trial := 0; trial < 20; trial++ {
		cs, err := Build(d, losses, 5, simrand.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range cs.Items() {
			if it.Sample.Targets[0] == 7 {
				picked++
				break
			}
		}
	}
	if picked < 15 {
		t.Errorf("heavy sample picked only %d/20 times", picked)
	}
}

func TestMergePreservesWeights(t *testing.T) {
	d1, l1 := syntheticDataset(40, unitWeights)
	d2, l2 := syntheticDataset(60, unitWeights)
	rng := simrand.New(5)
	c1, _ := Build(d1, l1, 10, rng)
	c2, _ := Build(d2, l2, 15, rng)
	merged := Merge(c1, c2)
	if merged.Len() != 25 {
		t.Errorf("merged length = %d", merged.Len())
	}
	want := c1.TotalWeight() + c2.TotalWeight()
	if math.Abs(merged.TotalWeight()-want) > 1e-9 {
		t.Errorf("merged weight %v, want %v", merged.TotalWeight(), want)
	}
}

func TestReducePreservesTotalWeight(t *testing.T) {
	d, losses := syntheticDataset(100, unitWeights)
	rng := simrand.New(6)
	cs, _ := Build(d, losses, 60, rng)
	red, err := Reduce(cs, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if red.Len() != 20 {
		t.Errorf("reduced length = %d", red.Len())
	}
	if math.Abs(red.TotalWeight()-cs.TotalWeight()) > 1e-6 {
		t.Errorf("reduce changed total weight: %v vs %v", red.TotalWeight(), cs.TotalWeight())
	}
	// Reduce is a no-op when already small enough.
	same, err := Reduce(red, 50, rng)
	if err != nil || same != red {
		t.Error("reduce below size should return the coreset unchanged")
	}
	if _, err := Reduce(red, 0, rng); err == nil {
		t.Error("zero reduce size accepted")
	}
}

func TestMergeReduceKeepsEstimate(t *testing.T) {
	d1, l1 := syntheticDataset(300, unitWeights)
	d2, l2 := syntheticDataset(300, unitWeights)
	rng := simrand.New(7)
	c1, _ := Build(d1, l1, 50, rng)
	c2, _ := Build(d2, l2, 50, rng)
	mr, err := MergeReduce(c1, c2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Len() != 50 {
		t.Errorf("merge-reduce size = %d", mr.Len())
	}
	union := Merge(c1, c2)
	if math.Abs(weightedLoss(mr.Items())-weightedLoss(union.Items())) > 0.2*weightedLoss(union.Items()) {
		t.Errorf("merge-reduce estimate drifted: %v vs %v",
			weightedLoss(mr.Items()), weightedLoss(union.Items()))
	}
}

func TestApproximationError(t *testing.T) {
	d, losses := syntheticDataset(200, unitWeights)
	cs, _ := Build(d, losses, 40, simrand.New(8))
	eps := ApproximationError(cs, d, weightedLoss)
	if eps < 0 || eps > 0.5 {
		t.Errorf("relative error = %v", eps)
	}
	// Degenerate zero-loss dataset.
	zero := dataset.New(1)
	zero.Add(dataset.Sample{BEV: []uint8{1}, Command: dataset.CmdFollow, Targets: []float64{0}}, 1)
	if got := ApproximationError(FromDataset(zero), zero, weightedLoss); got != 0 {
		t.Errorf("zero-loss error = %v", got)
	}
}

func TestBuildWeightConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%200)
		d, losses := syntheticDataset(n, func(i int) float64 { return 1 + float64(i%5) })
		size := 5 + int(seed%20)
		cs, err := Build(d, losses, size, simrand.New(seed))
		if err != nil {
			return false
		}
		if cs.Len() > n || (size <= n && cs.Len() != size) {
			return false
		}
		return math.Abs(cs.TotalWeight()-d.TotalWeight()) < 1e-6*d.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
