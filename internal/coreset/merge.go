package coreset

import (
	"fmt"

	"lbchat/internal/dataset"
	"lbchat/internal/simrand"
)

// Merge unions two coresets. By the composition property of ε-coresets
// (§III-D, after [15]): if C₁ and C₂ are ε-coresets of disjoint D₁ and D₂,
// C₁ ∪ C₂ is an ε-coreset of D₁ ∪ D₂. Weights are preserved.
func Merge(a, b *Coreset) *Coreset {
	out := dataset.New(a.Len() + b.Len())
	for _, it := range a.Items() {
		out.Add(it.Sample, it.Weight)
	}
	for _, it := range b.Items() {
		out.Add(it.Sample, it.Weight)
	}
	return &Coreset{data: out}
}

// Reduce shrinks a coreset back to the given size by w_C-weighted sampling
// without replacement, rescaling the surviving weights so the total weight
// (and hence the loss estimate's scale) is preserved. This is the 'reduce'
// operation of the merge-and-reduce framework [10] applied after each Merge
// to keep the coreset size constant.
func Reduce(c *Coreset, size int, rng *simrand.Rand) (*Coreset, error) {
	if size <= 0 {
		return nil, fmt.Errorf("coreset: non-positive reduce size %d", size)
	}
	if c.Len() <= size {
		return c, nil
	}
	items := c.Items()
	weights := make([]float64, len(items))
	var total float64
	for i, it := range items {
		weights[i] = it.Weight
		total += it.Weight
	}
	picked := rng.WeightedSampleWithoutReplacement(weights, size)
	var selected float64
	for _, pi := range picked {
		selected += weights[pi]
	}
	if selected <= 0 {
		return nil, fmt.Errorf("coreset: reduce selected zero total weight")
	}
	scale := total / selected
	out := dataset.New(size)
	for _, pi := range picked {
		out.Add(items[pi].Sample, items[pi].Weight*scale)
	}
	return &Coreset{data: out}, nil
}

// MergeReduce merges two coresets and reduces the union to size, the fast
// coreset-updating path for frequent encounters (§III-D).
func MergeReduce(a, b *Coreset, size int, rng *simrand.Rand) (*Coreset, error) {
	return Reduce(Merge(a, b), size, rng)
}

// LossFunc evaluates a model's weighted mean loss over a set of weighted
// samples; the coreset quality check is generic over it.
type LossFunc func(items []dataset.Weighted) float64

// ApproximationError returns the relative error |f(x;C) − f(x;D)| / f(x;D)
// of the coreset's loss estimate under the given loss function — the ε of
// Definition II.2 realized on one concrete model. A zero dataset loss yields
// zero error only when the coreset loss is also zero.
func ApproximationError(c *Coreset, d *dataset.Dataset, loss LossFunc) float64 {
	fd := loss(d.Items())
	fc := loss(c.Items())
	if fd == 0 {
		if fc == 0 {
			return 0
		}
		return 1
	}
	diff := fc - fd
	if diff < 0 {
		diff = -diff
	}
	return diff / fd
}
