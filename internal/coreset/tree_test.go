package coreset

import (
	"math"
	"testing"

	"lbchat/internal/dataset"
	"lbchat/internal/simrand"
)

// treeScorer mirrors syntheticDataset's loss landscape: losses are a pure
// function of the sample's first target, so any subset scores consistently.
func treeScorer(items []dataset.Weighted) []float64 {
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = 0.01 + 0.001*it.Sample.Targets[0]
	}
	return out
}

// treeRNG returns the refresh stream a caller would pass to Refresh. A fresh
// derivation per call matches the engine's v.rng.Derive("coreset-tree"):
// derivations are stateless, so every refresh sees identical streams.
func treeRNG() *simrand.Rand { return simrand.New(42).Derive("coreset-tree") }

func sameCoreset(t *testing.T, a, b *Coreset) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("coreset lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i, ita := range a.Items() {
		itb := b.Data().At(i)
		if ita.Sample.Targets[0] != itb.Sample.Targets[0] || ita.Weight != itb.Weight {
			t.Fatalf("item %d differs: (%v, w=%v) vs (%v, w=%v)",
				i, ita.Sample.Targets[0], ita.Weight, itb.Sample.Targets[0], itb.Weight)
		}
	}
}

func TestTreeExtendPartition(t *testing.T) {
	tr := NewTree(TreeConfig{})
	tr.Extend(600)
	if got, want := tr.NumLeaves(), 3; got != want {
		t.Fatalf("NumLeaves = %d, want %d", got, want)
	}
	if got, want := tr.DirtyLeaves(), 3; got != want {
		t.Fatalf("DirtyLeaves = %d, want %d (all new leaves dirty)", got, want)
	}
	if tr.Len() != 600 {
		t.Fatalf("Len = %d, want 600", tr.Len())
	}
	// Leaf ranges tile [0, n) in LeafSize steps with a partial tail.
	want := [][2]int{{0, 256}, {256, 512}, {512, 600}}
	for i, w := range want {
		if tr.leaves[i].lo != w[0] || tr.leaves[i].hi != w[1] {
			t.Fatalf("leaf %d = [%d,%d), want [%d,%d)",
				i, tr.leaves[i].lo, tr.leaves[i].hi, w[0], w[1])
		}
	}
	// Same length is a no-op; shorter resets the tree (append-only contract).
	tr.Extend(600)
	if tr.NumLeaves() != 3 {
		t.Fatalf("no-op Extend changed leaf count to %d", tr.NumLeaves())
	}
	tr.Extend(100)
	if tr.Len() != 100 || tr.NumLeaves() != 1 || tr.DirtyLeaves() != 1 {
		t.Fatalf("shrink should reset: len=%d leaves=%d dirty=%d",
			tr.Len(), tr.NumLeaves(), tr.DirtyLeaves())
	}
}

func TestTreeRefreshStatsAndCaching(t *testing.T) {
	d, _ := syntheticDataset(1024, unitWeights)
	tr := NewTree(TreeConfig{})
	cs, stats, err := tr.Refresh(d, 150, treeScorer, treeRNG())
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if cs.Len() == 0 || cs.Len() > 150 {
		t.Fatalf("root coreset size %d outside (0, 150]", cs.Len())
	}
	if stats.LeavesRebuilt != 4 || stats.LeavesCached != 0 {
		t.Fatalf("first refresh stats = %+v, want 4 rebuilt / 0 cached", stats)
	}
	if stats.TreeMerges != 3 {
		t.Fatalf("first refresh merges = %d, want 3 (full binary tree over 4 leaves)", stats.TreeMerges)
	}

	// A second refresh over unchanged data is a pure cache hit.
	cs2, stats2, err := tr.Refresh(d, 150, treeScorer, treeRNG())
	if err != nil {
		t.Fatalf("second Refresh: %v", err)
	}
	if stats2.LeavesRebuilt != 0 || stats2.LeavesCached != 4 || stats2.TreeMerges != 0 {
		t.Fatalf("cached refresh stats = %+v, want 0/4/0", stats2)
	}
	if cs2 != cs {
		t.Fatalf("cached refresh should return the same root coreset pointer")
	}
}

func TestTreeRefreshRebuildsOnlyAppendedLeaves(t *testing.T) {
	d, _ := syntheticDataset(1024, unitWeights)
	tr := NewTree(TreeConfig{})
	if _, _, err := tr.Refresh(d, 150, treeScorer, treeRNG()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	// Append half a leaf: only the new tail leaf is dirty (1024 is a leaf
	// boundary), and only its root path re-merges.
	for i := 0; i < 128; i++ {
		d.Add(dataset.Sample{Targets: []float64{float64(1024 + i)}}, 1)
	}
	_, stats, err := tr.Refresh(d, 150, treeScorer, treeRNG())
	if err != nil {
		t.Fatalf("Refresh after append: %v", err)
	}
	if stats.LeavesRebuilt != 1 || stats.LeavesCached != 4 {
		t.Fatalf("append refresh stats = %+v, want 1 rebuilt / 4 cached", stats)
	}
	// 5 leaves: the new leaf's path re-merges at the level pairing it with
	// the cached left subtree; the 4-leaf left side is fully cached.
	if stats.TreeMerges == 0 || stats.TreeMerges > 2 {
		t.Fatalf("append refresh merges = %d, want 1-2 (dirty root path only)", stats.TreeMerges)
	}
}

func TestTreeRefreshMatchesColdRebuild(t *testing.T) {
	// Incremental refreshes must be cache-history independent: a tree that
	// grew in stages and a cold tree over the final dataset produce
	// identical coresets, because all randomness flows through derived
	// streams keyed by leaf/node position.
	d, _ := syntheticDataset(600, unitWeights)
	warm := NewTree(TreeConfig{})
	if _, _, err := warm.Refresh(d, 150, treeScorer, treeRNG()); err != nil {
		t.Fatalf("warm Refresh: %v", err)
	}
	for i := 0; i < 400; i++ {
		d.Add(dataset.Sample{Targets: []float64{float64(600 + i)}}, 1)
	}
	warm.Extend(d.Len())
	warmCS, warmStats, err := warm.Refresh(d, 150, treeScorer, treeRNG())
	if err != nil {
		t.Fatalf("warm second Refresh: %v", err)
	}
	if warmStats.LeavesCached == 0 {
		t.Fatalf("warm refresh used no cache: %+v", warmStats)
	}

	cold := NewTree(TreeConfig{})
	coldCS, coldStats, err := cold.Refresh(d, 150, treeScorer, treeRNG())
	if err != nil {
		t.Fatalf("cold Refresh: %v", err)
	}
	if coldStats.LeavesCached != 0 {
		t.Fatalf("cold refresh claims cached leaves: %+v", coldStats)
	}
	sameCoreset(t, warmCS, coldCS)
}

func TestTreeInvalidate(t *testing.T) {
	d, _ := syntheticDataset(1024, unitWeights)
	tr := NewTree(TreeConfig{})
	if _, _, err := tr.Refresh(d, 150, treeScorer, treeRNG()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	tr.Invalidate(300, 520) // overlaps leaves [256,512) and [512,768)
	if got := tr.DirtyLeaves(); got != 2 {
		t.Fatalf("DirtyLeaves after Invalidate = %d, want 2", got)
	}
	_, stats, err := tr.Refresh(d, 150, treeScorer, treeRNG())
	if err != nil {
		t.Fatalf("Refresh after Invalidate: %v", err)
	}
	if stats.LeavesRebuilt != 2 || stats.LeavesCached != 2 {
		t.Fatalf("post-invalidate stats = %+v, want 2 rebuilt / 2 cached", stats)
	}
	// An empty or out-of-range span dirties nothing.
	tr.Invalidate(2000, 3000)
	tr.Invalidate(100, 100)
	if got := tr.DirtyLeaves(); got != 0 {
		t.Fatalf("DirtyLeaves after no-op Invalidates = %d, want 0", got)
	}
}

func TestTreeBudgetChangeInvalidatesAll(t *testing.T) {
	d, _ := syntheticDataset(1024, unitWeights)
	tr := NewTree(TreeConfig{})
	if _, _, err := tr.Refresh(d, 150, treeScorer, treeRNG()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	_, stats, err := tr.Refresh(d, 100, treeScorer, treeRNG())
	if err != nil {
		t.Fatalf("Refresh with new budget: %v", err)
	}
	if stats.LeavesRebuilt != 4 || stats.LeavesCached != 0 {
		t.Fatalf("budget-change stats = %+v, want full rebuild", stats)
	}
}

func TestTreeRefreshPreservesTotalWeight(t *testing.T) {
	for _, n := range []int{100, 256, 600, 1024, 2500} {
		d, _ := syntheticDataset(n, func(i int) float64 { return 1 + float64(i%5) })
		tr := NewTree(TreeConfig{})
		cs, _, err := tr.Refresh(d, 150, treeScorer, treeRNG())
		if err != nil {
			t.Fatalf("n=%d: Refresh: %v", n, err)
		}
		if got, want := cs.TotalWeight(), d.TotalWeight(); math.Abs(got-want) > 1e-6*want {
			t.Fatalf("n=%d: coreset total weight %v, dataset %v", n, got, want)
		}
	}
}

func TestTreeRefreshErrors(t *testing.T) {
	d, _ := syntheticDataset(100, unitWeights)
	tr := NewTree(TreeConfig{})
	if _, _, err := tr.Refresh(d, 0, treeScorer, treeRNG()); err == nil {
		t.Fatal("Refresh with zero budget should fail")
	}
	if _, _, err := tr.Refresh(dataset.New(0), 150, treeScorer, treeRNG()); err == nil {
		t.Fatal("Refresh over empty dataset should fail")
	}
	if _, _, err := tr.Refresh(nil, 150, treeScorer, treeRNG()); err == nil {
		t.Fatal("Refresh over nil dataset should fail")
	}
}

func TestTreeConfigDefaults(t *testing.T) {
	cfg := NewTree(TreeConfig{}).Config()
	if cfg.LeafSize != DefaultLeafSize || cfg.LeafSample != DefaultLeafSample ||
		cfg.LeafTarget != DefaultLeafTarget || cfg.Method != MethodLayered {
		t.Fatalf("zero TreeConfig resolved to %+v", cfg)
	}
	if cfg.LeafTarget >= cfg.LeafSample {
		t.Fatalf("LeafTarget %d must stay below LeafSample %d for loss-aware leaf builds",
			cfg.LeafTarget, cfg.LeafSample)
	}
	custom := NewTree(TreeConfig{LeafSize: 64, LeafSample: 48, LeafTarget: 32, Method: MethodUniform}).Config()
	if custom.LeafSize != 64 || custom.LeafSample != 48 || custom.LeafTarget != 32 || custom.Method != MethodUniform {
		t.Fatalf("explicit TreeConfig mangled: %+v", custom)
	}
}
