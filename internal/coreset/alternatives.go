package coreset

import (
	"fmt"
	"math"

	"lbchat/internal/dataset"
	"lbchat/internal/simrand"
)

// Alternative coreset constructions (§V "Alternative coreset construction
// approaches"): the paper's framework only requires that model values be
// comparable on shared sample sets, so other constructions plug in directly.
// This file provides the two families the paper cites — sensitivity-based
// importance sampling (after Langberg–Schulman [16]) and clustering-based
// selection (after Lu et al. [31]) — plus plain uniform sampling as the
// natural floor. The ablation benchmark compares all of them against
// Algorithm 1's layered sampling.

// Method selects a coreset construction algorithm.
type Method int

// Construction methods.
const (
	// MethodLayered is Algorithm 1: partition by loss rings, sample within
	// each ring (the paper's default).
	MethodLayered Method = iota + 1
	// MethodSensitivity importance-samples proportionally to each sample's
	// share of the total loss (its empirical sensitivity), with inverse-
	// probability coreset weights.
	MethodSensitivity
	// MethodClustering k-means-clusters the per-sample losses and picks
	// representatives per cluster, weighting each by its cluster's mass.
	MethodClustering
	// MethodUniform samples uniformly with population-preserving weights.
	MethodUniform
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodLayered:
		return "layered"
	case MethodSensitivity:
		return "sensitivity"
	case MethodClustering:
		return "clustering"
	case MethodUniform:
		return "uniform"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// BuildWith constructs a coreset of the given size with the chosen method.
// losses[i] must be the current model's loss on sample i, as in Build.
func BuildWith(method Method, d *dataset.Dataset, losses []float64, size int, rng *simrand.Rand) (*Coreset, error) {
	switch method {
	case MethodLayered:
		return Build(d, losses, size, rng)
	case MethodSensitivity:
		return buildSensitivity(d, losses, size, rng)
	case MethodClustering:
		return buildClustering(d, losses, size, rng)
	case MethodUniform:
		return buildUniform(d, size, rng)
	default:
		return nil, fmt.Errorf("coreset: unknown method %v", method)
	}
}

// buildSensitivity importance-samples by empirical sensitivity: sample i is
// drawn proportionally to w(d_i)·f(x;d_i) (its share of the weighted loss)
// and carries weight w(d_i)/(m·p_i), the standard unbiased importance
// estimator. A small uniform floor keeps zero-loss samples representable.
func buildSensitivity(d *dataset.Dataset, losses []float64, size int, rng *simrand.Rand) (*Coreset, error) {
	n := d.Len()
	if n == 0 {
		return nil, fmt.Errorf("coreset: empty dataset")
	}
	if len(losses) != n {
		return nil, fmt.Errorf("coreset: %d losses for %d samples", len(losses), n)
	}
	if size <= 0 {
		return nil, fmt.Errorf("coreset: non-positive size %d", size)
	}
	if size >= n {
		return identityCoreset(d), nil
	}
	// Sampling distribution: sensitivity share with a uniform floor.
	probs := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		probs[i] = d.At(i).Weight * math.Max(losses[i], 0)
		total += probs[i]
	}
	const floor = 0.2 // 20% uniform mixture
	for i := range probs {
		uniform := 1.0 / float64(n)
		share := uniform
		if total > 0 {
			share = probs[i] / total
		}
		probs[i] = (1-floor)*share + floor*uniform
	}
	out := dataset.New(size)
	for k := 0; k < size; k++ {
		idx := rng.WeightedIndex(probs)
		if idx < 0 {
			idx = rng.Intn(n)
		}
		it := d.At(idx)
		out.Add(it.Sample, it.Weight/(float64(size)*probs[idx]))
	}
	// Normalize so the total weight matches the dataset exactly (the
	// estimator is unbiased but any single draw is noisy).
	if tw := out.TotalWeight(); tw > 0 {
		scale := d.TotalWeight() / tw
		for i := 0; i < out.Len(); i++ {
			out.SetWeight(i, out.At(i).Weight*scale)
		}
	}
	return &Coreset{data: out}, nil
}

// buildClustering 1-D k-means-clusters the per-sample losses into
// min(size, 8) clusters, then draws each cluster's share of the budget from
// within it, weighting representatives to preserve the cluster's weight
// mass — the robust-coreset recipe of [31] specialized to the loss
// statistic the LbChat framework compares models on.
func buildClustering(d *dataset.Dataset, losses []float64, size int, rng *simrand.Rand) (*Coreset, error) {
	n := d.Len()
	if n == 0 {
		return nil, fmt.Errorf("coreset: empty dataset")
	}
	if len(losses) != n {
		return nil, fmt.Errorf("coreset: %d losses for %d samples", len(losses), n)
	}
	if size <= 0 {
		return nil, fmt.Errorf("coreset: non-positive size %d", size)
	}
	if size >= n {
		return identityCoreset(d), nil
	}
	k := size
	if k > 8 {
		k = 8
	}
	centers := kmeans1D(losses, k, rng)
	// Assign samples to nearest center.
	clusters := make([][]int, len(centers))
	clusterWeight := make([]float64, len(centers))
	for i, l := range losses {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if dd := math.Abs(l - ctr); dd < bestD {
				best, bestD = c, dd
			}
		}
		clusters[best] = append(clusters[best], i)
		clusterWeight[best] += d.At(i).Weight
	}
	var totalWeight float64
	for _, w := range clusterWeight {
		totalWeight += w
	}
	alloc := allocateBudget(clusters, clusterWeight, totalWeight, size)
	out := dataset.New(size)
	for c, members := range clusters {
		if len(members) == 0 || alloc[c] == 0 {
			continue
		}
		weights := make([]float64, len(members))
		for i, idx := range members {
			weights[i] = d.At(idx).Weight
		}
		picked := rng.WeightedSampleWithoutReplacement(weights, alloc[c])
		var sel float64
		for _, pi := range picked {
			sel += weights[pi]
		}
		if sel <= 0 {
			continue
		}
		scale := clusterWeight[c] / sel
		for _, pi := range picked {
			it := d.At(members[pi])
			out.Add(it.Sample, it.Weight*scale)
		}
	}
	return &Coreset{data: out}, nil
}

// buildUniform samples uniformly without replacement, scaling weights to
// preserve the dataset's total weight — the floor every smarter method must
// beat.
func buildUniform(d *dataset.Dataset, size int, rng *simrand.Rand) (*Coreset, error) {
	n := d.Len()
	if n == 0 {
		return nil, fmt.Errorf("coreset: empty dataset")
	}
	if size <= 0 {
		return nil, fmt.Errorf("coreset: non-positive size %d", size)
	}
	if size >= n {
		return identityCoreset(d), nil
	}
	perm := rng.Perm(n)[:size]
	out := dataset.New(size)
	var sel float64
	for _, i := range perm {
		sel += d.At(i).Weight
	}
	scale := 1.0
	if sel > 0 {
		scale = d.TotalWeight() / sel
	}
	for _, i := range perm {
		it := d.At(i)
		out.Add(it.Sample, it.Weight*scale)
	}
	return &Coreset{data: out}, nil
}

func identityCoreset(d *dataset.Dataset) *Coreset {
	out := dataset.New(d.Len())
	for _, it := range d.Items() {
		out.Add(it.Sample, it.Weight)
	}
	return &Coreset{data: out}
}

// kmeans1D runs Lloyd's algorithm on scalar values with k-means++ style
// seeding, returning the final centers (possibly fewer than k if values
// collapse).
func kmeans1D(values []float64, k int, rng *simrand.Rand) []float64 {
	if k < 1 {
		k = 1
	}
	// Seed: first center uniform, then proportional to squared distance.
	centers := []float64{values[rng.Intn(len(values))]}
	for len(centers) < k {
		d2 := make([]float64, len(values))
		var total float64
		for i, v := range values {
			best := math.Inf(1)
			for _, c := range centers {
				if dd := (v - c) * (v - c); dd < best {
					best = dd
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			break // all values on existing centers
		}
		idx := rng.WeightedIndex(d2)
		if idx < 0 {
			break
		}
		centers = append(centers, values[idx])
	}
	// Lloyd iterations.
	for iter := 0; iter < 20; iter++ {
		sums := make([]float64, len(centers))
		counts := make([]int, len(centers))
		for _, v := range values {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if dd := math.Abs(v - ctr); dd < bestD {
					best, bestD = c, dd
				}
			}
			sums[best] += v
			counts[best]++
		}
		moved := false
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			next := sums[c] / float64(counts[c])
			if math.Abs(next-centers[c]) > 1e-12 {
				centers[c] = next
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return centers
}
