package coreset

import (
	"fmt"
	"math"

	"lbchat/internal/dataset"
	"lbchat/internal/simrand"
)

// Coreset is a weighted subset of a dataset. Weights are the coreset weights
// w_C(d) of Eq. (4), not the original sample weights.
type Coreset struct {
	data *dataset.Dataset
}

// Data returns the coreset's weighted samples as a dataset.
func (c *Coreset) Data() *dataset.Dataset { return c.data }

// Len returns the number of samples in the coreset.
func (c *Coreset) Len() int { return c.data.Len() }

// Items returns the coreset's weighted samples.
func (c *Coreset) Items() []dataset.Weighted { return c.data.Items() }

// TotalWeight returns the sum of coreset weights, which approximates the
// total weight of the summarized dataset.
func (c *Coreset) TotalWeight() float64 { return c.data.TotalWeight() }

// WireSize returns the transmission size of the coreset in bytes.
func (c *Coreset) WireSize() int { return c.data.WireSize() }

// FromDataset wraps an existing weighted dataset as a coreset (weights are
// taken as w_C). Used by tests and by merge operations.
func FromDataset(d *dataset.Dataset) *Coreset { return &Coreset{data: d} }

// Layering describes how Algorithm 1 partitioned a dataset, exposed for
// inspection and testing.
type Layering struct {
	// CenterLoss is f(x; d̃), the smallest per-sample loss.
	CenterLoss float64
	// Radius is R = f(x; D)/|D|, the 0-th layer radius.
	Radius float64
	// Assignment[i] is the layer index of sample i.
	Assignment []int
	// NumLayers is the number of distinct layers (≤ log₂(|D|+1)+1).
	NumLayers int
}

// ComputeLayering partitions the dataset into concentric loss-rings around
// the best-explained sample (Algorithm 1, lines 1–6). losses[i] must be the
// current model's loss f(x; d_i) on sample i.
func ComputeLayering(d *dataset.Dataset, losses []float64) (*Layering, error) {
	n := d.Len()
	if n == 0 {
		return nil, fmt.Errorf("coreset: empty dataset")
	}
	if len(losses) != n {
		return nil, fmt.Errorf("coreset: %d losses for %d samples", len(losses), n)
	}
	center := math.Inf(1)
	var weightedTotal float64
	for i := 0; i < n; i++ {
		if losses[i] < center {
			center = losses[i]
		}
		weightedTotal += d.At(i).Weight * losses[i]
	}
	radius := weightedTotal / float64(n)
	if radius <= 0 {
		radius = 1e-12 // all-zero losses: everything lands in layer 0
	}
	maxLayer := int(math.Log2(float64(n)+1)) + 1
	layering := &Layering{CenterLoss: center, Radius: radius, Assignment: make([]int, n)}
	for i := 0; i < n; i++ {
		// Distance from the center in units of R. The paper's line 4/5
		// divides by R twice as printed; we apply the ratio once (see
		// DESIGN.md "intent-vs-text corrections").
		dist := (losses[i] - center) / radius
		layer := 0
		if dist > 1 {
			layer = int(math.Floor(math.Log2(dist))) + 1
		}
		if layer > maxLayer {
			layer = maxLayer
		}
		layering.Assignment[i] = layer
		if layer+1 > layering.NumLayers {
			layering.NumLayers = layer + 1
		}
	}
	return layering, nil
}

// Build runs Algorithm 1: layer the dataset by per-sample loss, then take a
// w(d)-weighted random sample from each layer, assigning the layer-preserving
// coreset weights of line 12. size is the total coreset budget |C|; the
// budget is split across layers proportionally to layer weight (each
// non-empty layer keeps at least one representative).
func Build(d *dataset.Dataset, losses []float64, size int, rng *simrand.Rand) (*Coreset, error) {
	if size <= 0 {
		return nil, fmt.Errorf("coreset: non-positive size %d", size)
	}
	layering, err := ComputeLayering(d, losses)
	if err != nil {
		return nil, err
	}
	n := d.Len()
	if size >= n {
		// Degenerate: the whole dataset is its own 0-coreset.
		out := dataset.New(n)
		for _, it := range d.Items() {
			out.Add(it.Sample, it.Weight)
		}
		return &Coreset{data: out}, nil
	}

	// Group samples per layer.
	layers := make([][]int, layering.NumLayers)
	layerWeight := make([]float64, layering.NumLayers)
	for i := 0; i < n; i++ {
		l := layering.Assignment[i]
		layers[l] = append(layers[l], i)
		layerWeight[l] += d.At(i).Weight
	}
	var totalWeight float64
	for _, w := range layerWeight {
		totalWeight += w
	}

	// Budget allocation: proportional to layer weight, ≥1 per non-empty
	// layer, never more than the layer population.
	alloc := allocateBudget(layers, layerWeight, totalWeight, size)

	out := dataset.New(size)
	for l, members := range layers {
		if len(members) == 0 || alloc[l] == 0 {
			continue
		}
		weights := make([]float64, len(members))
		for i, idx := range members {
			weights[i] = d.At(idx).Weight
		}
		picked := rng.WeightedSampleWithoutReplacement(weights, alloc[l])
		var selWeight float64
		for _, pi := range picked {
			selWeight += weights[pi]
		}
		if selWeight <= 0 {
			continue
		}
		// Line 12: w_C(d) = Σ_{D̂_j} w(d') / Σ_{Ĉ_j} w(d'), scaled by the
		// sample's own weight so the layer total is preserved exactly.
		scale := layerWeight[l] / selWeight
		for _, pi := range picked {
			it := d.At(members[pi])
			out.Add(it.Sample, it.Weight*scale)
		}
	}
	return &Coreset{data: out}, nil
}

// allocateBudget distributes the coreset budget across layers.
func allocateBudget(layers [][]int, layerWeight []float64, totalWeight float64, size int) []int {
	alloc := make([]int, len(layers))
	used := 0
	for l, members := range layers {
		if len(members) == 0 {
			continue
		}
		share := 0
		if totalWeight > 0 {
			share = int(math.Floor(layerWeight[l] / totalWeight * float64(size)))
		}
		if share < 1 {
			share = 1
		}
		if share > len(members) {
			share = len(members)
		}
		alloc[l] = share
		used += share
	}
	// Trim overshoot from the most-allocated layers; distribute any slack to
	// layers with remaining population, largest weight first.
	for used > size {
		worst, biggest := -1, 0
		for l, a := range alloc {
			if a > biggest {
				worst, biggest = l, a
			}
		}
		if worst < 0 || biggest <= 1 {
			break
		}
		alloc[worst]--
		used--
	}
	for used < size {
		best := -1
		var bestW float64
		for l, members := range layers {
			if alloc[l] < len(members) && (best == -1 || layerWeight[l] > bestW) {
				best, bestW = l, layerWeight[l]
			}
		}
		if best == -1 {
			break
		}
		alloc[best]++
		used++
	}
	return alloc
}
