package shard

import (
	"math"

	"lbchat/internal/geom"
)

// Grouper assigns a working set of vehicles to their owning grid regions so
// per-vehicle phases (train steps, probe evaluations) can be dispatched as
// shard-major batches: one parallel task per occupied region, touching only
// vehicles that are spatially colocated. It uses the same region geometry as
// the Scanner — the fleet's occupied bounding box split into an Sx×Sy grid —
// so a vehicle's batch owner matches its encounter-scan owner tick for tick.
//
// Grouping changes only how work is scheduled, never what is computed:
// batches partition the input ids, each batch preserves ascending id order,
// and callers write results into id-indexed (or input-indexed) scratch and
// reduce in canonical order, so outputs are bit-identical at any worker ×
// shard combination. All scratch is reused across calls; a Grouper is not
// safe for concurrent use.
type Grouper struct {
	shards int
	sx, sy int

	groups [][]int32 // per-region: positions into the last Group call's ids
	filled []int32   // indices of non-empty groups, ascending
}

// NewGrouper returns a grouper over the given region count (clamped to 1).
func NewGrouper(shards int) *Grouper {
	if shards < 1 {
		shards = 1
	}
	sx, sy := Grid(shards)
	return &Grouper{
		shards: shards,
		sx:     sx,
		sy:     sy,
		groups: make([][]int32, shards),
	}
}

// Group partitions ids — a subset of the fleet in ascending order — into
// region batches. pts holds the whole fleet's positions this tick, indexed
// by vehicle id; region ownership comes from the occupied bounding box over
// all of pts (the Scanner's geometry), so a sparse due set still lands in
// the same regions as a full scan. The ids slice is read, not retained.
func (g *Grouper) Group(ids []int32, pts []geom.Point) {
	for i := range g.groups {
		g.groups[i] = g.groups[i][:0]
	}
	g.filled = g.filled[:0]
	if len(ids) == 0 {
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	wx := (maxX - minX) / float64(g.sx)
	wy := (maxY - minY) / float64(g.sy)
	for pos, id := range ids {
		p := pts[id]
		sxi := regionOf(p.X-minX, wx, g.sx)
		syi := regionOf(p.Y-minY, wy, g.sy)
		own := syi*g.sx + sxi
		if len(g.groups[own]) == 0 {
			g.filled = append(g.filled, int32(own))
		}
		g.groups[own] = append(g.groups[own], int32(pos))
	}
}

// Batches returns the number of non-empty batches from the last Group.
func (g *Grouper) Batches() int { return len(g.filled) }

// Batch returns the i-th non-empty batch: positions into the Group call's
// ids slice, in ascending order. The slice is owned by the grouper and
// overwritten by the next Group.
func (g *Grouper) Batch(i int) []int32 { return g.groups[g.filled[i]] }
