package shard

import (
	"math"
	"slices"

	"lbchat/internal/geom"
	"lbchat/internal/parallel"
	"lbchat/internal/spatial"
)

// Grid chooses the near-square Sx×Sy region factorization for a shard
// count: Sx is the largest divisor of shards not exceeding its square root,
// so 4 shards tile 2×2, 6 tile 2×3, and a prime count degrades to one strip
// per shard.
func Grid(shards int) (sx, sy int) {
	if shards < 1 {
		shards = 1
	}
	sx = 1
	for d := 1; d*d <= shards; d++ {
		if shards%d == 0 {
			sx = d
		}
	}
	return sx, shards / sx
}

// ShardStats describes one shard's share of the last scan.
type ShardStats struct {
	// Locals is the number of vehicles owned by the shard.
	Locals int
	// Guests is the number of halo copies imported from other shards.
	Guests int
	// Pairs is the number of radio-range pairs the shard owned and emitted.
	Pairs int
}

// Scanner enumerates radio-range pairs with the fleet partitioned into
// Sx×Sy grid regions, each scanned independently (and concurrently) on the
// parallel pool. All scratch state is reused across scans, so steady-state
// scans allocate nothing. A Scanner is not safe for concurrent use.
type Scanner struct {
	shards  int
	sx, sy  int
	workers int

	owner   []int32 // owner shard per point
	shState []shardScratch
	merged  []uint64
	stats   []ShardStats
}

// shardScratch is one shard's reusable scan state.
type shardScratch struct {
	ids    []int32      // population: local point ids then guest ids
	pts    []geom.Point // gathered positions, aligned with ids
	locals int          // ids[:locals] are owned by this shard

	// Dense counting-sort grid over the population.
	counts []int32 // per-cell counts, then prefix-summed into starts
	order  []int32 // population indices bucketed by cell
	pairs  []uint64
}

// NewScanner returns a scanner over the given shard count, running shards
// on up to workers goroutines (0 = one per CPU, the parallel package's
// convention). Shard counts below 1 are clamped to 1.
func NewScanner(shards, workers int) *Scanner {
	if shards < 1 {
		shards = 1
	}
	sx, sy := Grid(shards)
	return &Scanner{
		shards:  shards,
		sx:      sx,
		sy:      sy,
		workers: workers,
		shState: make([]shardScratch, shards),
		stats:   make([]ShardStats, shards),
	}
}

// Shards returns the shard count.
func (s *Scanner) Shards() int { return s.shards }

// Grid returns the scanner's region grid dimensions.
func (s *Scanner) Grid() (sx, sy int) { return s.sx, s.sy }

// Stats returns per-shard statistics for the most recent Scan. The slice is
// owned by the scanner and overwritten by the next Scan.
func (s *Scanner) Stats() []ShardStats { return s.stats }

// regionOf clamps a coordinate offset to a region index in [0, n).
func regionOf(off, width float64, n int) int {
	if width <= 0 || n <= 1 {
		return 0
	}
	i := int(off / width)
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Scan appends to dst every pair of points within distance r of each other
// (closed ball, the spatial.WithinBall predicate) in canonical ascending
// (A, B) order — the same set and order spatial.Index.Pairs produces, and
// therefore the same as the brute-force double loop. The pts slice is read
// but not retained.
func (s *Scanner) Scan(dst []spatial.Pair, pts []geom.Point, r float64) []spatial.Pair {
	n := len(pts)
	for i := range s.stats {
		s.stats[i] = ShardStats{}
	}
	if n == 0 || r < 0 {
		return dst
	}

	// Occupied bounding box → Sx×Sy regions.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	wx := (maxX - minX) / float64(s.sx)
	wy := (maxY - minY) / float64(s.sy)

	// Assign owners and build each shard's population: owned points first,
	// then halo guests — every point is exported to each region its radio
	// disc [x±r, y±r] overlaps, so the owner of a pair's lower-ID member
	// always has the partner in its population.
	if cap(s.owner) < n {
		s.owner = make([]int32, n)
	}
	s.owner = s.owner[:n]
	for i := range s.shState {
		st := &s.shState[i]
		st.ids = st.ids[:0]
		st.pts = st.pts[:0]
		st.pairs = st.pairs[:0]
	}
	for i, p := range pts {
		sxi := regionOf(p.X-minX, wx, s.sx)
		syi := regionOf(p.Y-minY, wy, s.sy)
		own := syi*s.sx + sxi
		s.owner[i] = int32(own)
		st := &s.shState[own]
		st.ids = append(st.ids, int32(i))
		st.pts = append(st.pts, p)
	}
	for i := range s.shState {
		s.shState[i].locals = len(s.shState[i].ids)
	}
	if s.shards > 1 {
		for i, p := range pts {
			cx0 := regionOf(p.X-r-minX, wx, s.sx)
			cx1 := regionOf(p.X+r-minX, wx, s.sx)
			cy0 := regionOf(p.Y-r-minY, wy, s.sy)
			cy1 := regionOf(p.Y+r-minY, wy, s.sy)
			for ry := cy0; ry <= cy1; ry++ {
				for rx := cx0; rx <= cx1; rx++ {
					sh := ry*s.sx + rx
					if int32(sh) == s.owner[i] {
						continue
					}
					st := &s.shState[sh]
					st.ids = append(st.ids, int32(i))
					st.pts = append(st.pts, p)
				}
			}
		}
	}

	// Each shard enumerates the pairs it owns, independently.
	parallel.ForEach(s.workers, s.shards, func(sh int) {
		st := &s.shState[sh]
		st.scanPairs(r)
		s.stats[sh] = ShardStats{
			Locals: st.locals,
			Guests: len(st.ids) - st.locals,
			Pairs:  len(st.pairs),
		}
	})

	// Merge: per-shard pair sets are disjoint; one global sort of the packed
	// (A<<32 | B) keys restores the canonical ascending (A, B) order.
	s.merged = s.merged[:0]
	for i := range s.shState {
		s.merged = append(s.merged, s.shState[i].pairs...)
	}
	slices.Sort(s.merged)
	for _, key := range s.merged {
		dst = append(dst, spatial.Pair{A: int(key >> 32), B: int(uint32(key))})
	}
	return dst
}

// scanPairs enumerates the radio-range pairs this shard owns from its
// population via a dense counting-sort grid with cell size >= r: for each
// local point, candidates live in the cells overlapping its [±r] box.
func (st *shardScratch) scanPairs(r float64) {
	npts := len(st.ids)
	if npts < 2 || st.locals == 0 {
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range st.pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	// Grid dimensions: cells of size >= r, capped so the dense arrays stay
	// O(population) even when r is tiny relative to the spread.
	maxCells := 4*npts + 64
	maxDim := int(math.Sqrt(float64(maxCells)))
	ncx := gridDim(maxX-minX, r, maxDim)
	ncy := gridDim(maxY-minY, r, maxDim)
	cw := cellWidth(maxX-minX, ncx)
	ch := cellWidth(maxY-minY, ncy)
	ncells := ncx * ncy

	if cap(st.counts) < ncells+1 {
		st.counts = make([]int32, ncells+1)
	}
	st.counts = st.counts[:ncells+1]
	for i := range st.counts {
		st.counts[i] = 0
	}
	if cap(st.order) < npts {
		st.order = make([]int32, npts)
	}
	st.order = st.order[:npts]

	// Counting sort of the population into cells.
	cellOf := func(p geom.Point) int {
		cx := regionOf(p.X-minX, cw, ncx)
		cy := regionOf(p.Y-minY, ch, ncy)
		return cy*ncx + cx
	}
	for _, p := range st.pts {
		st.counts[cellOf(p)+1]++
	}
	for c := 1; c <= ncells; c++ {
		st.counts[c] += st.counts[c-1]
	}
	// counts[c] is now the fill cursor for cell c; after the placement loop
	// it has advanced to the cell's end offset, i.e. counts[c] = start[c+1].
	for i, p := range st.pts {
		c := cellOf(p)
		st.order[st.counts[c]] = int32(i)
		st.counts[c]++
	}

	rr := r * r
	for li := 0; li < st.locals; li++ {
		a := st.ids[li]
		p := st.pts[li]
		cx0 := regionOf(p.X-r-minX, cw, ncx)
		cx1 := regionOf(p.X+r-minX, cw, ncx)
		cy0 := regionOf(p.Y-r-minY, ch, ncy)
		cy1 := regionOf(p.Y+r-minY, ch, ncy)
		for cy := cy0; cy <= cy1; cy++ {
			rowBase := cy * ncx
			for cx := cx0; cx <= cx1; cx++ {
				c := rowBase + cx
				lo := int32(0)
				if c > 0 {
					lo = st.counts[c-1]
				}
				for _, pi := range st.order[lo:st.counts[c]] {
					b := st.ids[pi]
					if b <= a {
						continue
					}
					// This shard owns pair (a, b) iff it owns min(a, b)
					// = a; a is local by construction. A guest with a
					// smaller id than a local partner is another shard's
					// pair, and guests are never iterated here.
					if spatial.WithinBall(p, st.pts[pi], r, rr) {
						st.pairs = append(st.pairs, uint64(a)<<32|uint64(uint32(b)))
					}
				}
			}
		}
	}
}

// gridDim returns the cell count along one axis: enough cells that each is
// at least r wide, capped at maxDim, and at least 1.
func gridDim(span, r float64, maxDim int) int {
	if span <= 0 || r <= 0 {
		if span <= 0 {
			return 1
		}
		return maxDim
	}
	d := int(span/r) + 1
	if d > maxDim {
		d = maxDim
	}
	if d < 1 {
		d = 1
	}
	return d
}

// cellWidth returns the width of one cell along an axis (0 collapses the
// axis to a single column).
func cellWidth(span float64, dim int) float64 {
	if span <= 0 || dim <= 0 {
		return 0
	}
	return span / float64(dim)
}
