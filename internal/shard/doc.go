// Package shard partitions a fleet into grid regions so encounter scans and
// vehicle ticks stay local to a region, the scale-out step the paper's
// 10k-vehicle regime needs.
//
// The Scanner splits the occupied bounding box into an Sx×Sy region grid,
// assigns each vehicle to the region holding its position, and halo-exports
// every vehicle to the neighboring regions its radio disc overlaps, so each
// shard enumerates its radio-range pairs from purely local state (a dense
// counting-sort grid per shard). A pair is owned — and emitted — by exactly
// one shard: the owner of its lower-ID member, which the halo guarantees can
// see the partner. Per-shard outputs are packed as uint64 keys and merged
// with one global sort, reproducing internal/spatial's canonical ascending
// (A, B) order bit for bit; the in-range predicate is the exact
// spatial.WithinBall screen, so the pair set is bit-identical too. Shards
// run on the internal/parallel pool and results are independent of both the
// worker count and the shard count.
//
// Grouper reuses the Scanner's region geometry to batch per-vehicle work
// (train steps, probe evaluations) shard-major: vehicle indices are bucketed
// by owning region and dispatched as one parallel task per region, with
// outputs written to index-addressed scratch and reduced in canonical
// vehicle order so results stay bit-identical at any worker or shard count
// (DESIGN.md §15).
//
// Fleet is the synthetic random-waypoint workload used by the fleetscan
// scale experiment: per-vehicle derived RNG streams keep its kinematics
// bit-identical at any worker count.
package shard
