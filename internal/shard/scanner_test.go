package shard

import (
	"fmt"
	"math"
	"testing"

	"lbchat/internal/geom"
	"lbchat/internal/simrand"
	"lbchat/internal/spatial"
)

// brutePairs is the reference O(N²) enumeration in canonical order.
func brutePairs(pts []geom.Point, r float64) []spatial.Pair {
	var out []spatial.Pair
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			if pts[a].Dist(pts[b]) <= r {
				out = append(out, spatial.Pair{A: a, B: b})
			}
		}
	}
	return out
}

func samePairs(t *testing.T, label string, got, want []spatial.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// scatter draws n points; clustered pulls a third of them into tight knots
// that straddle region borders once sharded.
func scatter(seed uint64, n int, side float64, clustered bool) []geom.Point {
	rng := simrand.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Uniform(0, side), rng.Uniform(0, side))
	}
	if clustered {
		for i := 0; i < n/3; i++ {
			cx, cy := side/2, side*float64(i%3)/3
			pts[i] = geom.Pt(rng.Normal(cx, side/100), rng.Normal(cy, side/100))
		}
	}
	return pts
}

func TestScanMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 120} {
		for _, clustered := range []bool{false, true} {
			pts := scatter(uint64(n)+7, n, 4000, clustered)
			want := brutePairs(pts, 500)
			for _, shards := range []int{1, 2, 3, 4, 7, 8} {
				for _, workers := range []int{1, 4} {
					sc := NewScanner(shards, workers)
					got := sc.Scan(nil, pts, 500)
					samePairs(t, fmt.Sprintf("n=%d clustered=%v shards=%d workers=%d", n, clustered, shards, workers), got, want)
				}
			}
		}
	}
}

func TestScanMatchesSpatialIndex(t *testing.T) {
	pts := scatter(11, 200, 6000, true)
	const r = 500
	ix := spatial.New(r)
	ix.Rebuild(pts)
	want := ix.Pairs(nil, r)
	for _, shards := range []int{2, 4, 6} {
		sc := NewScanner(shards, 2)
		got := sc.Scan(nil, pts, r)
		samePairs(t, fmt.Sprintf("shards=%d", shards), got, want)
	}
}

func TestScanDegenerateGeometry(t *testing.T) {
	cases := map[string][]geom.Point{
		"coincident":  {geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5)},
		"collinear-x": {geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0), geom.Pt(301, 0)},
		"collinear-y": {geom.Pt(0, 0), geom.Pt(0, 100), geom.Pt(0, 200)},
		"exact-range": {geom.Pt(0, 0), geom.Pt(300, 0), geom.Pt(0, 300.0000001)},
		"negative":    {geom.Pt(-1000, -2000), geom.Pt(-1100, -2050), geom.Pt(500, 400)},
	}
	for name, pts := range cases {
		want := brutePairs(pts, 300)
		for _, shards := range []int{1, 2, 4, 9} {
			sc := NewScanner(shards, 1)
			got := sc.Scan(nil, pts, 300)
			samePairs(t, name+fmt.Sprintf("/shards=%d", shards), got, want)
		}
	}
}

func TestScanReusedScannerStaysCorrect(t *testing.T) {
	// Scratch reuse across scans of different sizes must not leak state.
	sc := NewScanner(4, 2)
	for _, n := range []int{150, 40, 0, 90, 150} {
		pts := scatter(uint64(n)*13+1, n, 3000, n%2 == 0)
		want := brutePairs(pts, 400)
		got := sc.Scan(nil, pts, 400)
		samePairs(t, fmt.Sprintf("reuse n=%d", n), got, want)
	}
}

func TestScanStats(t *testing.T) {
	pts := scatter(3, 100, 2000, false)
	sc := NewScanner(4, 1)
	got := sc.Scan(nil, pts, 300)
	stats := sc.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats for %d shards", len(stats))
	}
	locals, pairs := 0, 0
	for _, st := range stats {
		locals += st.Locals
		pairs += st.Pairs
		if st.Locals < 0 || st.Guests < 0 || st.Pairs < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
	}
	if locals != len(pts) {
		t.Errorf("locals sum to %d, want %d", locals, len(pts))
	}
	if pairs != len(got) {
		t.Errorf("per-shard pairs sum to %d, want %d", pairs, len(got))
	}
}

func TestGridFactorization(t *testing.T) {
	for _, tc := range []struct{ shards, sx, sy int }{
		{1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 2, 2}, {6, 2, 3},
		{7, 1, 7}, {8, 2, 4}, {9, 3, 3}, {12, 3, 4}, {0, 1, 1},
	} {
		sx, sy := Grid(tc.shards)
		if sx != tc.sx || sy != tc.sy {
			t.Errorf("Grid(%d) = %d×%d, want %d×%d", tc.shards, sx, sy, tc.sx, tc.sy)
		}
	}
}

// TestHaloCrossingMidContact drives two vehicles toward and across a shard
// border while inside radio range: the pair must be reported by exactly one
// shard at every step, before, during, and after the ownership handoff.
func TestHaloCrossingMidContact(t *testing.T) {
	const r = 300
	sc := NewScanner(2, 1) // 1×2 grid: horizontal border at the arena's mid-y
	// A third, far-away stationary pair pins the bounding box so the border
	// stays put while the crossing pair moves.
	anchor := []geom.Point{geom.Pt(0, 0), geom.Pt(4000, 4000)}
	for step := 0; step <= 40; step++ {
		y := 1800 + 10*float64(step) // 1800 → 2200, crossing y=2000
		pts := append([]geom.Point{
			geom.Pt(1000, y),
			geom.Pt(1100, y+60), // partner stays within r, offset across the border
		}, anchor...)
		want := brutePairs(pts, r)
		got := sc.Scan(nil, pts, r)
		samePairs(t, fmt.Sprintf("crossing step %d (y=%g)", step, y), got, want)
		found := false
		for _, pr := range got {
			if pr == (spatial.Pair{A: 0, B: 1}) {
				found = true
			}
		}
		if !found {
			t.Fatalf("crossing pair lost at step %d (y=%g)", step, y)
		}
		// The two shards see the moving pair exactly once in total.
		total := 0
		for _, st := range sc.Stats() {
			total += st.Pairs
		}
		if total != len(got) {
			t.Fatalf("step %d: shards emitted %d pairs, merged %d", step, total, len(got))
		}
	}
}

func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []geom.Point {
		f := NewFleet(42, 64, 2000)
		for i := 0; i < 200; i++ {
			f.Tick(0.5, workers)
		}
		return append([]geom.Point(nil), f.Positions()...)
	}
	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("fleet diverges at vehicle %d with %d workers", i, workers)
			}
		}
	}
}

func TestFleetStaysInArena(t *testing.T) {
	f := NewFleet(7, 32, 1000)
	for i := 0; i < 500; i++ {
		f.Tick(1, 1)
	}
	for i, p := range f.Positions() {
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 ||
			math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("vehicle %d escaped to %v", i, p)
		}
	}
}

// BenchmarkShardScan measures per-tick pair enumeration at fleet scale for
// shard counts {1, 4} against the single spatial.Index path, at matching
// density (~13 in-range peers at 500 m).
func BenchmarkShardScan(b *testing.B) {
	for _, n := range []int{2048, 10240} {
		side := 250 * math.Sqrt(float64(n))
		pts := scatter(uint64(n), n, side, false)
		b.Run(fmt.Sprintf("N=%d/index", n), func(b *testing.B) {
			ix := spatial.New(500)
			var pairs []spatial.Pair
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Rebuild(pts)
				pairs = ix.Pairs(pairs[:0], 500)
			}
			b.ReportMetric(float64(len(pairs)), "pairs")
		})
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("N=%d/shards=%d", n, shards), func(b *testing.B) {
				sc := NewScanner(shards, 0)
				var pairs []spatial.Pair
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					pairs = sc.Scan(pairs[:0], pts, 500)
				}
				b.ReportMetric(float64(len(pairs)), "pairs")
			})
		}
	}
}
