package shard

import (
	"lbchat/internal/geom"
	"lbchat/internal/parallel"
	"lbchat/internal/simrand"
)

// Fleet is a synthetic random-waypoint fleet: each vehicle drives toward a
// private waypoint at a private speed and draws the next waypoint from its
// own derived RNG stream on arrival. Because every vehicle owns its stream,
// a tick is embarrassingly parallel and bit-identical at any worker count —
// the scale workload for the fleetscan experiment, where the full world
// simulation would dominate the measurement.
type Fleet struct {
	// Side is the square arena's side length in meters.
	Side float64

	pts  []geom.Point
	tgt  []geom.Point
	spd  []float64
	rngs []*simrand.Rand
}

// NewFleet spawns n vehicles uniformly in a side×side arena with waypoint
// speeds of 5–20 m/s (urban driving range), deterministically from seed.
func NewFleet(seed uint64, n int, side float64) *Fleet {
	f := &Fleet{
		Side: side,
		pts:  make([]geom.Point, n),
		tgt:  make([]geom.Point, n),
		spd:  make([]float64, n),
		rngs: make([]*simrand.Rand, n),
	}
	root := simrand.New(seed)
	for i := 0; i < n; i++ {
		rng := root.DeriveIndexed("fleet", i)
		f.rngs[i] = rng
		f.pts[i] = geom.Pt(rng.Uniform(0, side), rng.Uniform(0, side))
		f.tgt[i] = geom.Pt(rng.Uniform(0, side), rng.Uniform(0, side))
		f.spd[i] = rng.Uniform(5, 20)
	}
	return f
}

// Len returns the vehicle count.
func (f *Fleet) Len() int { return len(f.pts) }

// Positions returns the current vehicle positions. The slice is owned by
// the fleet and mutated by Tick; callers needing a snapshot must copy.
func (f *Fleet) Positions() []geom.Point { return f.pts }

// Tick advances every vehicle by dt seconds on up to workers goroutines.
// Vehicles within dt·speed of their waypoint snap to it and draw the next
// one; per-vehicle RNG streams make the result independent of the worker
// count.
func (f *Fleet) Tick(dt float64, workers int) {
	parallel.ForEach(workers, len(f.pts), func(i int) {
		p, t := f.pts[i], f.tgt[i]
		step := f.spd[i] * dt
		d := p.Dist(t)
		if d <= step {
			f.pts[i] = t
			rng := f.rngs[i]
			f.tgt[i] = geom.Pt(rng.Uniform(0, f.Side), rng.Uniform(0, f.Side))
			f.spd[i] = rng.Uniform(5, 20)
			return
		}
		f.pts[i] = geom.Pt(p.X+(t.X-p.X)/d*step, p.Y+(t.Y-p.Y)/d*step)
	})
}
