package radio

import (
	"math"
	"testing"

	"lbchat/internal/simrand"
)

func TestLossTableMonotone(t *testing.T) {
	lt := DefaultLossTable()
	prev := -1.0
	for d := 0.0; d <= 600; d += 10 {
		per := lt.At(d)
		if per < prev {
			t.Fatalf("loss table not monotone at %vm: %v < %v", d, per, prev)
		}
		if per < 0 || per > 1 {
			t.Fatalf("PER %v out of range at %vm", per, d)
		}
		prev = per
	}
	if lt.At(10_000) != 1 {
		t.Error("beyond table should lose everything")
	}
	if lt.At(-5) != lt.At(0) {
		t.Error("negative distance should clamp to zero")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.PacketSizeBytes = 0
	if bad.Validate() == nil {
		t.Error("zero packet size accepted")
	}
	bad = DefaultParams()
	bad.MaxTransmissions = 0
	if bad.Validate() == nil {
		t.Error("zero transmission budget accepted")
	}
}

func TestLosslessMode(t *testing.T) {
	m := NewModel(true)
	if got := m.PacketDeliveryProb(400); got != 1 {
		t.Errorf("lossless delivery prob = %v", got)
	}
	// Range still applies even without loss.
	if got := m.PacketDeliveryProb(10_000); got != 0 {
		t.Errorf("out-of-range delivery prob = %v", got)
	}
}

func TestPacketDeliveryImprovedByRetransmission(t *testing.T) {
	m := NewModel(false)
	single := Model{Params: m.Params, Table: m.Table}
	single.Params.MaxTransmissions = 1
	d := 300.0
	if m.PacketDeliveryProb(d) <= single.PacketDeliveryProb(d) {
		t.Error("retransmissions did not improve delivery")
	}
}

func TestExpectedAttemptsBounds(t *testing.T) {
	m := NewModel(false)
	for d := 0.0; d <= 500; d += 50 {
		a := m.ExpectedAttempts(d)
		if a < 1 || a > float64(m.Params.MaxTransmissions) {
			t.Fatalf("attempts %v out of [1, %d] at %vm", a, m.Params.MaxTransmissions, d)
		}
	}
	if got := m.ExpectedAttempts(10_000); got != float64(m.Params.MaxTransmissions) {
		t.Errorf("out-of-range attempts = %v", got)
	}
}

func TestNumPackets(t *testing.T) {
	m := NewModel(false)
	if m.NumPackets(0) != 0 || m.NumPackets(-5) != 0 {
		t.Error("non-positive payload packets")
	}
	if m.NumPackets(1) != 1 || m.NumPackets(1500) != 1 || m.NumPackets(1501) != 2 {
		t.Error("packet rounding wrong")
	}
}

func TestTransferTimeScaling(t *testing.T) {
	m := NewModel(true)
	base := m.TransferTime(1_000_000, 0, 31e6)
	double := m.TransferTime(2_000_000, 0, 31e6)
	if math.Abs(double-2*base) > 0.02*base {
		t.Errorf("transfer time not linear in size: %v vs %v", base, double)
	}
	slower := m.TransferTime(1_000_000, 0, 15.5e6)
	if math.Abs(slower-2*base) > 0.02*base {
		t.Errorf("transfer time not inverse in bandwidth")
	}
	if !math.IsInf(m.TransferTime(100, 0, 0), 1) {
		t.Error("zero bandwidth should be infinite")
	}
	if m.TransferTime(0, 0, 31e6) != 0 {
		t.Error("empty payload should be instant")
	}
	// The paper's headline number: a 52 MB model at 31 Mbps ≈ 13.4 s.
	if got := m.TransferTime(52_000_000, 0, 31e6); math.Abs(got-13.42) > 0.3 {
		t.Errorf("52MB @ 31Mbps = %vs, want ≈13.4", got)
	}
}

func TestMessageSuccessProbMonotone(t *testing.T) {
	m := NewModel(false)
	const bytes = 600_000 // a coreset
	prev := 2.0
	for d := 0.0; d <= 500; d += 50 {
		p := m.MessageSuccessProb(bytes, d)
		if p > prev+1e-12 {
			t.Fatalf("success prob not decreasing in distance at %vm", d)
		}
		prev = p
	}
	// Larger payloads are harder to land.
	if m.MessageSuccessProb(52_000_000, 250) >= m.MessageSuccessProb(600_000, 250) {
		t.Error("bigger payload should be less likely to succeed")
	}
	if m.MessageSuccessProb(0, 250) != 1 {
		t.Error("empty payload should always succeed")
	}
}

func TestSimulateTransferCompletesCloseRange(t *testing.T) {
	m := NewModel(false)
	rng := simrand.New(1)
	res := m.SimulateTransfer(600_000, func(float64) float64 { return 20 }, 31e6, 30, rng)
	if !res.Completed {
		t.Fatalf("close-range coreset transfer failed: %+v", res)
	}
	if res.Elapsed <= 0 || res.Elapsed > 2 {
		t.Errorf("elapsed = %v, want ≈0.16s", res.Elapsed)
	}
	if res.BytesDelivered < 600_000 {
		t.Errorf("delivered %d bytes", res.BytesDelivered)
	}
	if res.Truncated != "" {
		t.Errorf("completed transfer reports truncation %q", res.Truncated)
	}
}

func TestSimulateTransferFailsFarRange(t *testing.T) {
	m := NewModel(false)
	fails := 0
	for i := 0; i < 20; i++ {
		rng := simrand.New(uint64(i))
		res := m.SimulateTransfer(52_000_000, func(float64) float64 { return 480 }, 31e6, 60, rng)
		if !res.Completed {
			fails++
		}
	}
	if fails < 18 {
		t.Errorf("far-range 52MB transfers succeeded too often: %d/20 failed", fails)
	}
}

func TestSimulateTransferDeadline(t *testing.T) {
	m := NewModel(true)
	rng := simrand.New(2)
	res := m.SimulateTransfer(52_000_000, func(float64) float64 { return 10 }, 31e6, 5, rng)
	if res.Completed {
		t.Error("transfer needing 13s completed within 5s deadline")
	}
	if res.Elapsed > 5+1e-9 {
		t.Errorf("elapsed %v exceeds deadline", res.Elapsed)
	}
	if res.BytesDelivered <= 0 {
		t.Error("partial transfer delivered nothing")
	}
	if res.Truncated != TruncDeadline {
		t.Errorf("truncation reason = %q, want %q", res.Truncated, TruncDeadline)
	}
}

func TestSimulateTransferOutOfRange(t *testing.T) {
	m := NewModel(false)
	rng := simrand.New(3)
	res := m.SimulateTransfer(1000, func(float64) float64 { return 600 }, 31e6, 10, rng)
	if res.Completed {
		t.Error("out-of-range transfer completed")
	}
	if res.Truncated != TruncRange {
		t.Errorf("truncation reason = %q, want %q", res.Truncated, TruncRange)
	}
}

// TestSimulateTransferLossReason drives a large transfer over a lossy but
// in-range link with an effectively unlimited deadline: the only way it can
// fail is a packet exhausting its retransmission budget, so every failure
// must carry TruncLoss.
func TestSimulateTransferLossReason(t *testing.T) {
	m := NewModel(false)
	fails := 0
	for i := 0; i < 20; i++ {
		rng := simrand.New(uint64(i))
		res := m.SimulateTransfer(52_000_000, func(float64) float64 { return 480 }, 31e6, 600, rng)
		if res.Completed {
			continue
		}
		fails++
		if res.Truncated != TruncLoss {
			t.Fatalf("seed %d: truncation reason = %q, want %q", i, res.Truncated, TruncLoss)
		}
	}
	if fails == 0 {
		t.Error("no lossy-link failures observed; test exercises nothing")
	}
}

func TestContactPriority(t *testing.T) {
	if got := ContactPriority(30, 15); got != 1 {
		t.Errorf("long contact priority = %v", got)
	}
	if got := ContactPriority(7.5, 15); got != 0.5 {
		t.Errorf("half contact priority = %v", got)
	}
	if got := ContactPriority(10, 0); got != 0 {
		t.Errorf("zero budget priority = %v", got)
	}
}

func TestScoreOrdersPairsSensibly(t *testing.T) {
	m := NewModel(false)
	base := PriorityInputs{
		ContactDuration: 30,
		Distance:        50,
		BandwidthA:      31e6,
		BandwidthB:      31e6,
		PayloadBytes:    600_000,
		TimeBudget:      15,
	}
	near := m.Score(base)
	far := base
	far.Distance = 450
	if m.Score(far) >= near {
		t.Error("distant pair scored no lower")
	}
	short := base
	short.ContactDuration = 2
	if m.Score(short) >= near {
		t.Error("brief contact scored no lower")
	}
	slow := base
	slow.BandwidthB = 5e6
	if m.Score(slow) >= near {
		t.Error("slow pair scored no lower")
	}
}

func TestScoreNormalized(t *testing.T) {
	m := NewModel(true)
	in := PriorityInputs{
		ContactDuration: 1000,
		Distance:        0,
		BandwidthA:      m.Params.MaxBandwidthBps,
		BandwidthB:      m.Params.MaxBandwidthBps,
		PayloadBytes:    0,
		TimeBudget:      15,
	}
	// Perfect link at max bandwidth scores exactly 1.
	if got := m.Score(in); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect-link score = %v", got)
	}
	if AssistiveInfoBytes != 184 {
		t.Errorf("assistive info size = %d, paper says 184", AssistiveInfoBytes)
	}
}

func TestSimulateTransferInvariants(t *testing.T) {
	m := NewModel(false)
	for seed := uint64(0); seed < 40; seed++ {
		rng := simrand.New(seed)
		bytes := int(rng.Uniform(1, 60e6))
		deadline := rng.Uniform(0.5, 30)
		d0 := rng.Uniform(0, 550)
		drift := rng.Uniform(-15, 15)
		res := m.SimulateTransfer(bytes, func(el float64) float64 { return d0 + drift*el }, 25e6, deadline, rng)
		if res.Elapsed < 0 || res.Elapsed > deadline+1e-9 {
			t.Fatalf("seed %d: elapsed %v outside [0, %v]", seed, res.Elapsed, deadline)
		}
		if res.BytesDelivered < 0 || res.BytesDelivered > bytes+m.Params.PacketSizeBytes {
			t.Fatalf("seed %d: delivered %d of %d", seed, res.BytesDelivered, bytes)
		}
		if res.Completed && res.BytesDelivered < bytes {
			t.Fatalf("seed %d: completed but delivered only %d/%d", seed, res.BytesDelivered, bytes)
		}
	}
}

// TestSimulateTransferTruncationBranches is the table-driven sweep over
// every way a transfer can stop early (and the degenerate inputs that never
// start): the scenario fixes payload, geometry, and budget so exactly one
// truncation branch fires deterministically.
func TestSimulateTransferTruncationBranches(t *testing.T) {
	cases := []struct {
		name      string
		lossless  bool
		bytes     int
		dist      func(float64) float64
		bps       float64
		deadline  float64
		seed      uint64
		completed bool
		truncated string
		wantBytes bool // some bytes must have landed
	}{
		{
			name: "completes in close range", lossless: false,
			bytes: 600_000, dist: func(float64) float64 { return 20 },
			bps: 31e6, deadline: 30, seed: 1,
			completed: true, truncated: "", wantBytes: true,
		},
		{
			name: "deadline expires mid-transfer", lossless: true,
			bytes: 52_000_000, dist: func(float64) float64 { return 10 },
			bps: 31e6, deadline: 5, seed: 2,
			completed: false, truncated: TruncDeadline, wantBytes: true,
		},
		{
			name: "peer out of range at start", lossless: false,
			bytes: 1000, dist: func(float64) float64 { return 600 },
			bps: 31e6, deadline: 10, seed: 3,
			completed: false, truncated: TruncRange,
		},
		{
			name: "peer drifts out of range", lossless: true,
			bytes: 52_000_000, dist: func(el float64) float64 { return 400 + 40*el },
			bps: 31e6, deadline: 60, seed: 4,
			completed: false, truncated: TruncRange, wantBytes: true,
		},
		{
			name: "packet loss kills far-range transfer", lossless: false,
			bytes: 52_000_000, dist: func(float64) float64 { return 480 },
			bps: 31e6, deadline: 600, seed: 0,
			completed: false, truncated: TruncLoss, wantBytes: true,
		},
		{
			name: "zero deadline never starts", lossless: false,
			bytes: 1000, dist: func(float64) float64 { return 20 },
			bps: 31e6, deadline: 0, seed: 5,
			completed: false, truncated: TruncDeadline,
		},
		{
			name: "zero bandwidth never starts", lossless: false,
			bytes: 1000, dist: func(float64) float64 { return 20 },
			bps: 0, deadline: 10, seed: 6,
			completed: false, truncated: TruncDeadline,
		},
		{
			name: "empty payload is trivially complete", lossless: false,
			bytes: 0, dist: func(float64) float64 { return 20 },
			bps: 31e6, deadline: 10, seed: 7,
			completed: true, truncated: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewModel(tc.lossless)
			res := m.SimulateTransfer(tc.bytes, tc.dist, tc.bps, tc.deadline, simrand.New(tc.seed))
			if res.Completed != tc.completed {
				t.Errorf("Completed = %v, want %v (%+v)", res.Completed, tc.completed, res)
			}
			if res.Truncated != tc.truncated {
				t.Errorf("Truncated = %q, want %q", res.Truncated, tc.truncated)
			}
			if tc.wantBytes && res.BytesDelivered <= 0 {
				t.Errorf("no bytes delivered: %+v", res)
			}
			if res.Elapsed > tc.deadline+1e-9 {
				t.Errorf("elapsed %v exceeds deadline %v", res.Elapsed, tc.deadline)
			}
		})
	}
}

// TestSimulateTransferPerturbedNilBoost pins the faults-off acceptance
// criterion at the radio layer: a nil boost must reproduce SimulateTransfer
// bit for bit, including the rng draw sequence (checked by comparing a draw
// made after each call).
func TestSimulateTransferPerturbedNilBoost(t *testing.T) {
	m := NewModel(false)
	for seed := uint64(0); seed < 20; seed++ {
		r1, r2 := simrand.New(seed), simrand.New(seed)
		dist := func(el float64) float64 { return 100 + 10*el }
		a := m.SimulateTransfer(5_000_000, dist, 25e6, 20, r1)
		b := m.SimulateTransferPerturbed(5_000_000, dist, nil, 25e6, 20, r2)
		if a != b {
			t.Fatalf("seed %d: results diverge: %+v vs %+v", seed, a, b)
		}
		if x, y := r1.Uniform(0, 1), r2.Uniform(0, 1); x != y {
			t.Fatalf("seed %d: rng draw counts diverge (%v vs %v)", seed, x, y)
		}
	}
}

// TestSimulateTransferPerturbedBoostHurts: a saturating packet-error boost
// must abort a transfer that succeeds cleanly without it.
func TestSimulateTransferPerturbedBoostHurts(t *testing.T) {
	m := NewModel(false)
	dist := func(float64) float64 { return 20 }
	clean := m.SimulateTransferPerturbed(600_000, dist, nil, 31e6, 30, simrand.New(1))
	if !clean.Completed {
		t.Fatalf("baseline transfer failed: %+v", clean)
	}
	jammed := m.SimulateTransferPerturbed(600_000, dist,
		func(float64) float64 { return 1 }, 31e6, 30, simrand.New(1))
	if jammed.Completed {
		t.Fatal("transfer completed through a PER=1 burst")
	}
	if jammed.Truncated != TruncLoss {
		t.Errorf("jammed truncation = %q, want %q", jammed.Truncated, TruncLoss)
	}
	// Partial boost raises expected attempts, so the same payload takes
	// longer when it does survive.
	slow := m.SimulateTransferPerturbed(600_000, dist,
		func(float64) float64 { return 0.3 }, 31e6, 30, simrand.New(42))
	if slow.Completed && slow.Elapsed <= clean.Elapsed {
		t.Errorf("boosted transfer not slower: %v vs %v", slow.Elapsed, clean.Elapsed)
	}
}
