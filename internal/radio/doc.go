// Package radio models pairwise vehicle-to-vehicle wireless communication
// with the parameters of §IV-A: 1500-byte packets, 31 Mbps peak bandwidth,
// 500 m maximum range, up to three retransmissions per packet, and a
// distance-based packet-error lookup table in the style of [13].
//
// It provides both closed-form quantities (expected transfer time, message
// success probability — the p_ij of Eq. (5)) and a stochastic transfer
// simulation used by the co-simulation engines. SimulateTransferPerturbed
// additionally accepts a time-varying packet-error boost, the hook the
// fault-injection layer (internal/faults) uses to overlay burst-loss
// episodes on the distance table without touching it; a nil boost is
// byte-identical to SimulateTransfer.
package radio
