package radio

import "math"

// PriorityInputs collects the assistive information two vehicles exchange
// before deciding whether (and in what order) to chat: estimated contact
// duration, link distance, and both sides' available bandwidth. The paper
// notes this information totals 184 bytes and its transmission time is
// negligible.
type PriorityInputs struct {
	// ContactDuration is the estimated remaining contact time (s), derived
	// from the shared future routes.
	ContactDuration float64
	// Distance is the current link distance (m).
	Distance float64
	// BandwidthA and BandwidthB are the two vehicles' available bandwidths
	// (bits/s); the link runs at the minimum of the two.
	BandwidthA, BandwidthB float64
	// PayloadBytes is the size of the model payload whose delivery the
	// score estimates.
	PayloadBytes int
	// TimeBudget is T_B, the per-pair exchange time budget (s).
	TimeBudget float64
}

// AssistiveInfoBytes is the wire size of the route/bandwidth information
// exchanged for Eq. (5), as measured in the paper's experiments.
const AssistiveInfoBytes = 184

// ContactPriority computes z_ij, the truncated-ratio contact-duration
// priority of [7]: how much of the needed exchange window the contact
// covers, capped at 1. A higher z means the contact is short yet sufficient.
func ContactPriority(contactDuration, timeBudget float64) float64 {
	if timeBudget <= 0 {
		return 0
	}
	return math.Min(contactDuration/timeBudget, 1)
}

// Score computes the Eq. (5) exchange-sequence priority
// c_ij = z_ij · p_ij · min{B_i, B_j}. Bandwidth is normalized by the model's
// peak rate so scores stay comparable across parameter settings.
func (m *Model) Score(in PriorityInputs) float64 {
	z := ContactPriority(in.ContactDuration, in.TimeBudget)
	p := m.MessageSuccessProb(in.PayloadBytes, in.Distance)
	minBW := math.Min(in.BandwidthA, in.BandwidthB)
	return z * p * minBW / m.Params.MaxBandwidthBps
}
