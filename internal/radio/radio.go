package radio

import (
	"fmt"
	"math"

	"lbchat/internal/simrand"
)

// Params holds the physical-layer constants.
type Params struct {
	// PacketSizeBytes is the MTU-sized radio packet (1500 B in the paper).
	PacketSizeBytes int
	// MaxBandwidthBps is the peak link bandwidth in bits/s (31 Mbps).
	MaxBandwidthBps float64
	// MaxRangeMeters is the maximum communication range (500 m).
	MaxRangeMeters float64
	// MaxTransmissions is 1 + the retransmission budget per packet (4).
	MaxTransmissions int
}

// DefaultParams returns the paper's communication parameters.
func DefaultParams() Params {
	return Params{
		PacketSizeBytes:  1500,
		MaxBandwidthBps:  31e6,
		MaxRangeMeters:   500,
		MaxTransmissions: 4,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.PacketSizeBytes <= 0:
		return fmt.Errorf("radio: non-positive packet size %d", p.PacketSizeBytes)
	case p.MaxBandwidthBps <= 0:
		return fmt.Errorf("radio: non-positive bandwidth %g", p.MaxBandwidthBps)
	case p.MaxRangeMeters <= 0:
		return fmt.Errorf("radio: non-positive range %g", p.MaxRangeMeters)
	case p.MaxTransmissions < 1:
		return fmt.Errorf("radio: transmission budget %d < 1", p.MaxTransmissions)
	}
	return nil
}

// LossTable maps distance to per-packet error rate via uniform bins, the
// "distance-loss lookup table" the paper bases its wireless-loss estimate on.
type LossTable struct {
	// BinMeters is the width of each distance bin.
	BinMeters float64
	// PER[i] is the packet error rate for distances in
	// [i*BinMeters, (i+1)*BinMeters). Distances beyond the last bin lose
	// every packet.
	PER []float64
}

// DefaultLossTable reproduces the monotone distance→loss shape of the
// V2X measurement study [13]: near-perfect delivery in close range and a
// steep degradation toward the edge of the 500 m range.
func DefaultLossTable() LossTable {
	return LossTable{
		BinMeters: 50,
		PER: []float64{
			0.01, 0.03, 0.06, 0.10, 0.16,
			0.24, 0.34, 0.46, 0.58, 0.72,
		},
	}
}

// At returns the packet error rate at the given distance.
func (lt LossTable) At(dist float64) float64 {
	if dist < 0 {
		dist = 0
	}
	i := int(dist / lt.BinMeters)
	if i >= len(lt.PER) {
		return 1
	}
	return lt.PER[i]
}

// Model combines physical parameters with a loss table.
type Model struct {
	Params Params
	Table  LossTable
	// Lossless disables wireless loss entirely (the paper's "W/O wireless
	// loss" regime); bandwidth and range limits still apply.
	Lossless bool
}

// NewModel builds a radio model with the paper's defaults.
func NewModel(lossless bool) *Model {
	return &Model{Params: DefaultParams(), Table: DefaultLossTable(), Lossless: lossless}
}

// per returns the effective packet error rate at a distance.
func (m *Model) per(dist float64) float64 {
	if dist > m.Params.MaxRangeMeters {
		return 1
	}
	if m.Lossless {
		return 0
	}
	return m.Table.At(dist)
}

// PacketDeliveryProb returns the probability that one packet is delivered
// within the retransmission budget at the given distance.
func (m *Model) PacketDeliveryProb(dist float64) float64 {
	return m.deliveryProbFromPER(m.per(dist))
}

// deliveryProbFromPER is PacketDeliveryProb for an explicit packet-error
// rate (the perturbed-transfer path layers burst loss on top of the table).
func (m *Model) deliveryProbFromPER(per float64) float64 {
	return 1 - math.Pow(per, float64(m.Params.MaxTransmissions))
}

// ExpectedAttempts returns the expected number of transmissions spent per
// packet (counting retransmissions, whether or not the packet ultimately
// gets through).
func (m *Model) ExpectedAttempts(dist float64) float64 {
	return m.attemptsFromPER(m.per(dist))
}

// attemptsFromPER is ExpectedAttempts for an explicit packet-error rate.
func (m *Model) attemptsFromPER(per float64) float64 {
	if per >= 1 {
		return float64(m.Params.MaxTransmissions)
	}
	// Sum_{k=0}^{T-1} per^k — attempts stop early on success.
	return (1 - math.Pow(per, float64(m.Params.MaxTransmissions))) / (1 - per)
}

// NumPackets returns how many packets a payload of the given size needs.
func (m *Model) NumPackets(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + m.Params.PacketSizeBytes - 1) / m.Params.PacketSizeBytes
}

// TransferTime returns the expected time in seconds to push a payload over a
// link at the given distance with the given negotiated bandwidth (bits/s).
func (m *Model) TransferTime(bytes int, dist, bps float64) float64 {
	if bytes <= 0 {
		return 0
	}
	if bps <= 0 {
		return math.Inf(1)
	}
	packets := float64(m.NumPackets(bytes))
	packetTime := float64(m.Params.PacketSizeBytes*8) / bps
	return packets * packetTime * m.ExpectedAttempts(dist)
}

// MessageSuccessProb returns the probability that every packet of the
// payload survives within its retransmission budget at the given distance —
// the p_ij ingredient of the Eq. (5) priority score.
func (m *Model) MessageSuccessProb(bytes int, dist float64) float64 {
	if bytes <= 0 {
		return 1
	}
	q := m.PacketDeliveryProb(dist)
	if q <= 0 {
		return 0
	}
	return math.Exp(float64(m.NumPackets(bytes)) * math.Log(q))
}

// TransferResult reports the outcome of a simulated transfer.
type TransferResult struct {
	// Completed is true when every packet was delivered before the deadline.
	Completed bool
	// Elapsed is the time spent transmitting (s), whether or not it
	// completed.
	Elapsed float64
	// BytesDelivered counts payload bytes that made it across.
	BytesDelivered int
	// Truncated names why an incomplete transfer stopped: TruncDeadline
	// (ran out of time), TruncRange (peers moved out of radio range), or
	// TruncLoss (a packet exhausted its retransmission budget). Empty when
	// Completed, and when the transfer never started (zero deadline or
	// bandwidth also report TruncDeadline for accounting purposes).
	Truncated string
}

// Truncation reasons for incomplete transfers.
const (
	TruncDeadline = "deadline"
	TruncRange    = "range"
	TruncLoss     = "loss"
)

// SimulateTransfer plays out a payload transfer in one-second slices. dist
// gives the link distance as a function of elapsed time (the vehicles keep
// moving), bps is the negotiated bandwidth, and deadline bounds the total
// time. A slice delivers its packets with the per-packet delivery
// probability; a packet that exhausts its retransmissions aborts the
// transfer (the paper counts such models as not received).
func (m *Model) SimulateTransfer(bytes int, dist func(elapsed float64) float64, bps, deadline float64, rng *simrand.Rand) TransferResult {
	return m.SimulateTransferPerturbed(bytes, dist, nil, bps, deadline, rng)
}

// SimulateTransferPerturbed is SimulateTransfer with an optional
// packet-error perturbation: boost(elapsed) is ADDED to the table's
// packet-error rate (clamped to 1) for the slice starting at elapsed. The
// fault-injection layer uses it to overlay burst-loss episodes without
// touching the loss table. A nil boost makes this byte-identical to
// SimulateTransfer — same math, same rng draws.
func (m *Model) SimulateTransferPerturbed(bytes int, dist func(elapsed float64) float64, boost func(elapsed float64) float64, bps, deadline float64, rng *simrand.Rand) TransferResult {
	const slice = 1.0
	if bytes <= 0 {
		return TransferResult{Completed: true}
	}
	if bps <= 0 || deadline <= 0 {
		return TransferResult{Truncated: TruncDeadline}
	}
	remaining := m.NumPackets(bytes)
	packetBytes := m.Params.PacketSizeBytes
	var elapsed float64
	delivered := 0
	for remaining > 0 {
		if elapsed >= deadline {
			// Clamp: slice-capacity rounding may overshoot by a fraction
			// of a packet, but a transfer can never consume more than its
			// deadline.
			return TransferResult{Elapsed: deadline, BytesDelivered: delivered * packetBytes, Truncated: TruncDeadline}
		}
		d := dist(elapsed)
		if d > m.Params.MaxRangeMeters {
			return TransferResult{Elapsed: elapsed, BytesDelivered: delivered * packetBytes, Truncated: TruncRange}
		}
		per := m.per(d)
		if boost != nil {
			per = math.Min(1, per+boost(elapsed))
		}
		dt := math.Min(slice, deadline-elapsed)
		attempts := m.attemptsFromPER(per)
		packetTime := float64(packetBytes*8) / bps
		sliceCapacity := int(dt / (packetTime * attempts))
		if sliceCapacity <= 0 {
			sliceCapacity = 1
		}
		n := remaining
		if n > sliceCapacity {
			n = sliceCapacity
		}
		// Fatal loss: any of the n packets exhausting its budget kills the
		// transfer.
		q := m.deliveryProbFromPER(per)
		surviveAll := math.Exp(float64(n) * math.Log(math.Max(q, 1e-300)))
		if q < 1 && !rng.Bernoulli(surviveAll) {
			// The abort happens partway through the slice on average.
			return TransferResult{
				Elapsed:        elapsed + dt/2,
				BytesDelivered: (delivered + n/2) * packetBytes,
				Truncated:      TruncLoss,
			}
		}
		delivered += n
		remaining -= n
		elapsed += float64(n) * packetTime * attempts
	}
	got := delivered * packetBytes
	if got > bytes {
		got = bytes
	}
	return TransferResult{Completed: true, Elapsed: elapsed, BytesDelivered: got}
}
