// Package dataset defines the weighted driving datasets exchanged and
// expanded by LbChat: individual (BEV, command, waypoints) samples with the
// per-sample weights w(d) of Eq. (2), plus the weighted-dataset container
// vehicles train on and expand by absorbing peer coresets.
package dataset
