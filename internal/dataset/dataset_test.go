package dataset

import (
	"math"
	"testing"

	"lbchat/internal/simrand"
)

func sample(cmd Command, speed float64) Sample {
	return Sample{
		BEV:     []uint8{0, 1, 0, 1},
		Command: cmd,
		Speed:   speed,
		NavDist: 1,
		Targets: []float64{0.1, 0, 0.2, 0},
	}
}

func TestCommandProperties(t *testing.T) {
	if NumCommands != 4 {
		t.Fatalf("NumCommands = %d", NumCommands)
	}
	for c := CmdFollow; c <= CmdStraight; c++ {
		if !c.Valid() {
			t.Errorf("%v invalid", c)
		}
		if c.Index() < 0 || c.Index() >= NumCommands {
			t.Errorf("%v index %d", c, c.Index())
		}
	}
	if Command(0).Valid() || Command(5).Valid() {
		t.Error("out-of-range command considered valid")
	}
	if CmdLeft.String() != "left" {
		t.Errorf("String = %q", CmdLeft.String())
	}
}

func TestSampleClone(t *testing.T) {
	s := sample(CmdLeft, 0.5)
	c := s.Clone()
	c.BEV[0] = 9
	c.Targets[0] = 9
	if s.BEV[0] == 9 || s.Targets[0] == 9 {
		t.Error("clone shares payloads")
	}
	if c.Command != s.Command || c.Speed != s.Speed || c.NavDist != s.NavDist {
		t.Error("clone dropped metadata")
	}
}

func TestSampleWireSize(t *testing.T) {
	s := sample(CmdFollow, 0)
	// 4 BEV bits → 1 byte, 1 command byte, 12 scalar bytes, 4×4 targets.
	if got := s.WireSize(); got != 1+1+12+16 {
		t.Errorf("WireSize = %d", got)
	}
}

func TestAddLenAt(t *testing.T) {
	d := New(0)
	d.Add(sample(CmdFollow, 0), 2)
	d.Add(sample(CmdLeft, 0), 3)
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.At(1).Weight != 3 {
		t.Errorf("At(1).Weight = %v", d.At(1).Weight)
	}
	if d.TotalWeight() != 5 {
		t.Errorf("TotalWeight = %v", d.TotalWeight())
	}
	d.SetWeight(0, 7)
	if d.At(0).Weight != 7 {
		t.Error("SetWeight")
	}
}

func TestAbsorbUniformWeights(t *testing.T) {
	a := New(0)
	a.Add(sample(CmdFollow, 0), 1)
	b := New(0)
	b.Add(sample(CmdLeft, 0), 99)
	b.Add(sample(CmdRight, 0), 42)
	a.Absorb(b, 1)
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i).Weight != 1 {
			t.Errorf("absorbed weight [%d] = %v, want uniform 1", i, a.At(i).Weight)
		}
	}
	// Absorbing must not mutate the source's weights.
	if b.At(0).Weight != 99 {
		t.Error("Absorb mutated the source dataset")
	}
}

func TestSampleBatchWeighted(t *testing.T) {
	d := New(0)
	d.Add(sample(CmdFollow, 0), 0.001)
	d.Add(sample(CmdLeft, 0), 100)
	rng := simrand.New(5)
	heavy := 0
	const n = 500
	for _, it := range d.SampleBatch(n, rng) {
		if it.Sample.Command == CmdLeft {
			heavy++
		}
	}
	if heavy < n*9/10 {
		t.Errorf("heavy sample drawn only %d/%d times", heavy, n)
	}
}

func TestSampleBatchEmpty(t *testing.T) {
	d := New(0)
	if got := d.SampleBatch(5, simrand.New(1)); got != nil {
		t.Errorf("empty dataset batch = %v", got)
	}
}

func TestCommandHistogram(t *testing.T) {
	d := New(0)
	d.Add(sample(CmdFollow, 0), 3)
	d.Add(sample(CmdLeft, 0), 1)
	h := d.CommandHistogram()
	if math.Abs(h[CmdFollow.Index()]-0.75) > 1e-12 {
		t.Errorf("follow share = %v", h[CmdFollow.Index()])
	}
	if math.Abs(h[CmdLeft.Index()]-0.25) > 1e-12 {
		t.Errorf("left share = %v", h[CmdLeft.Index()])
	}
	var total float64
	for _, v := range h {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("histogram sums to %v", total)
	}
}

func TestSubset(t *testing.T) {
	d := New(0)
	for i := 0; i < 5; i++ {
		d.Add(sample(CmdFollow, float64(i)), float64(i))
	}
	s := d.Subset([]int{4, 0})
	if s.Len() != 2 || s.At(0).Weight != 4 || s.At(1).Weight != 0 {
		t.Errorf("subset wrong: %+v", s.Items())
	}
}

func TestFromWeightedShares(t *testing.T) {
	items := []Weighted{{Sample: sample(CmdFollow, 0), Weight: 1}}
	d := FromWeighted(items)
	if d.Len() != 1 {
		t.Fatal("length")
	}
	// Weights are copied by value: mutating the dataset must not change the
	// caller's slice.
	d.SetWeight(0, 5)
	if items[0].Weight != 1 {
		t.Error("FromWeighted aliases the input slice values")
	}
}

func TestDatasetWireSize(t *testing.T) {
	d := New(0)
	d.Add(sample(CmdFollow, 0), 1)
	d.Add(sample(CmdLeft, 0), 1)
	per := sample(CmdFollow, 0).WireSize() + 4
	if got := d.WireSize(); got != 2*per {
		t.Errorf("WireSize = %d, want %d", got, 2*per)
	}
}
