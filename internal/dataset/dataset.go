package dataset

import (
	"fmt"

	"lbchat/internal/simrand"
)

// Command is the high-level navigation command attached to each frame,
// supplied by the (simulated) navigation service.
type Command int

// High-level driving commands, mirroring the conditional imitation-learning
// command set the paper's model consumes.
const (
	CmdFollow Command = iota + 1
	CmdLeft
	CmdRight
	CmdStraight
)

// NumCommands is the number of distinct commands (and branched model heads).
const NumCommands = 4

// String returns the human-readable command name.
func (c Command) String() string {
	switch c {
	case CmdFollow:
		return "follow"
	case CmdLeft:
		return "left"
	case CmdRight:
		return "right"
	case CmdStraight:
		return "straight"
	default:
		return fmt.Sprintf("Command(%d)", int(c))
	}
}

// Valid reports whether c is a defined command.
func (c Command) Valid() bool { return c >= CmdFollow && c <= CmdStraight }

// Index returns the zero-based head index for the command.
func (c Command) Index() int { return int(c) - 1 }

// Sample is one training frame: a flattened binary bird's-eye-view tensor
// (one byte per cell, holding 0 or 1 — the paper's BEV is a sparse binary
// tensor), the active high-level command, and the expert's next waypoints
// expressed in the ego frame (normalized coordinates), flattened as
// x0,y0,x1,y1,...
//
// Samples are immutable once created: coresets and expanded datasets share
// the underlying payload slices freely.
type Sample struct {
	BEV     []uint8
	Command Command
	// Speed is the ego speed at frame time, normalized to [0, 1] by the
	// world's maximum speed. Waypoint spacing encodes the planned speed, so
	// the model needs the current speed as input to predict it (as the
	// paper's imitation-learning model [19] does).
	Speed float64
	// NavDist is the distance to the next maneuver point, normalized to
	// [0, 1] over the navigation horizon (1 = no upcoming maneuver). Real
	// navigation services announce "turn left in 120 m"; the distance tells
	// the model WHEN to execute the command it was given.
	NavDist float64
	// RedDist is the normalized distance to a red-light stop line ahead
	// (1 = no red light constrains the approach). Signal phase arrives over
	// V2I (SPaT), as it does for CARLA agents.
	RedDist float64
	Targets []float64
}

// Clone returns a deep copy of the sample.
func (s Sample) Clone() Sample {
	bev := make([]uint8, len(s.BEV))
	copy(bev, s.BEV)
	tgt := make([]float64, len(s.Targets))
	copy(tgt, s.Targets)
	return Sample{BEV: bev, Command: s.Command, Speed: s.Speed, NavDist: s.NavDist, RedDist: s.RedDist, Targets: tgt}
}

// WireSize returns the approximate transmission size of the sample in bytes:
// the BEV ships as a bitmask (the paper's BEV is a sparse binary tensor),
// the command as one byte, the speed and each waypoint coordinate as
// float32.
func (s Sample) WireSize() int {
	return (len(s.BEV)+7)/8 + 1 + 12 + 4*len(s.Targets)
}

// Weighted couples a sample with a weight. Inside a local dataset the weight
// is the original w(d); inside a coreset it is the coreset weight w_C(d).
type Weighted struct {
	Sample Sample
	Weight float64
}

// Dataset is a weighted collection of samples.
type Dataset struct {
	items []Weighted
}

// New returns an empty dataset with capacity for hint samples.
func New(hint int) *Dataset {
	return &Dataset{items: make([]Weighted, 0, hint)}
}

// FromWeighted builds a dataset from existing weighted samples (copied
// shallowly: sample payloads are shared).
func FromWeighted(items []Weighted) *Dataset {
	ds := New(len(items))
	ds.items = append(ds.items, items...)
	return ds
}

// Add appends a sample with the given weight.
func (d *Dataset) Add(s Sample, weight float64) {
	d.items = append(d.items, Weighted{Sample: s, Weight: weight})
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.items) }

// At returns the i-th weighted sample.
func (d *Dataset) At(i int) Weighted { return d.items[i] }

// SetWeight updates the weight of the i-th sample.
func (d *Dataset) SetWeight(i int, w float64) { d.items[i].Weight = w }

// Items returns the underlying weighted samples. The returned slice must not
// be appended to; elements may be read freely.
func (d *Dataset) Items() []Weighted { return d.items }

// TotalWeight returns the sum of all sample weights.
func (d *Dataset) TotalWeight() float64 {
	var acc float64
	for _, it := range d.items {
		acc += it.Weight
	}
	return acc
}

// Absorb appends every sample of other into d, assigning each the weight
// uniformWeight. This implements the paper's local-dataset expansion: the
// original weights w(d) of all samples in the expanded dataset are kept the
// same (§III-D).
func (d *Dataset) Absorb(other *Dataset, uniformWeight float64) {
	for _, it := range other.items {
		d.items = append(d.items, Weighted{Sample: it.Sample, Weight: uniformWeight})
	}
}

// SampleBatch draws a batch of k samples by weighted sampling with
// replacement. It returns fewer than k only when the dataset is empty.
func (d *Dataset) SampleBatch(k int, rng *simrand.Rand) []Weighted {
	if len(d.items) == 0 || k <= 0 {
		return nil
	}
	weights := make([]float64, len(d.items))
	for i, it := range d.items {
		weights[i] = it.Weight
	}
	out := make([]Weighted, 0, k)
	for len(out) < k {
		idx := rng.WeightedIndex(weights)
		if idx < 0 {
			idx = rng.Intn(len(d.items))
		}
		out = append(out, d.items[idx])
	}
	return out
}

// CommandHistogram returns the weighted share of each command in the
// dataset, indexed by Command.Index().
func (d *Dataset) CommandHistogram() [NumCommands]float64 {
	var hist [NumCommands]float64
	var total float64
	for _, it := range d.items {
		if it.Sample.Command.Valid() {
			hist[it.Sample.Command.Index()] += it.Weight
			total += it.Weight
		}
	}
	if total > 0 {
		for i := range hist {
			hist[i] /= total
		}
	}
	return hist
}

// WireSize returns the approximate transmission size of the whole dataset in
// bytes, including a 4-byte weight per sample.
func (d *Dataset) WireSize() int {
	var n int
	for _, it := range d.items {
		n += it.Sample.WireSize() + 4
	}
	return n
}

// Subset returns a new dataset holding the samples at the given indices.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := New(len(indices))
	for _, i := range indices {
		out.items = append(out.items, d.items[i])
	}
	return out
}
