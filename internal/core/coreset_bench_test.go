package core

import (
	"fmt"
	"math"
	"testing"

	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
)

// synthDataset builds n frames shaped like real collected data — a sparse
// binary BEV at the model's input geometry and a full waypoint target — so
// the per-sample loss evaluation inside EnsureCoreset costs what it costs
// in a real run, without paying for world simulation in benchmark setup.
func synthDataset(rng *simrand.Rand, cfg Config, n int) *dataset.Dataset {
	bevSize := cfg.Model.BEVSize()
	tgtSize := cfg.Model.TargetSize()
	ds := dataset.New(n)
	for i := 0; i < n; i++ {
		s := dataset.Sample{
			BEV:     make([]uint8, bevSize),
			Command: dataset.Command(i%dataset.NumCommands + 1),
			Speed:   rng.Uniform(0, 1),
			NavDist: rng.Uniform(0, 1),
			RedDist: rng.Uniform(0, 1),
			Targets: make([]float64, tgtSize),
		}
		for j := range s.BEV {
			if rng.Uniform(0, 1) < 0.1 {
				s.BEV[j] = 1
			}
		}
		for j := range s.Targets {
			s.Targets[j] = rng.Uniform(-1, 1)
		}
		ds.Add(s, 1)
	}
	return ds
}

// benchCoresetEngine builds a two-vehicle engine whose vehicles each hold a
// synthetic local dataset of datasetLen frames; mutate adjusts the config
// before construction (nil for defaults).
func benchCoresetEngine(b *testing.B, datasetLen int, mutate func(*Config)) *Engine {
	b.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	rng := simrand.New(uint64(datasetLen))
	datasets := []*dataset.Dataset{
		synthDataset(rng.Derive("v0"), cfg, datasetLen),
		synthDataset(rng.Derive("v1"), cfg, datasetLen),
	}
	tr := trace.FromRows(1, [][]geom.Point{{geom.Pt(0, 0), geom.Pt(100, 0)}})
	eng, err := NewEngine(cfg, tr, datasets, radio.NewModel(false), nil)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// BenchmarkEnsureCoreset compares the two refresh arms at local-dataset
// sizes from a fresh vehicle up to the expanded datasets absorbed from many
// peers.
//
// full: the original Algorithm-1 rebuild — per-sample loss scoring,
// layering, per-layer sampling over the whole dataset (capped at
// LayeringSample=384 scored samples above that size).
//
// incremental: the partition-tree refresh after a 128-frame tail append —
// the steady state of a vehicle that absorbed one peer coreset since its
// last refresh. Only the dirty tail leaf is rescored (LeafSample=80) and
// only its root path re-merged; at N=4096 that is 1 of 16 leaves (6.25%
// dirty), which is where the tree's ≥3x advantage over the full rebuild is
// gated (ROADMAP: bench-compare hot list).
func BenchmarkEnsureCoreset(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("N=%d/full", n), func(b *testing.B) {
			eng := benchCoresetEngine(b, n, func(c *Config) { c.DisableIncrementalCoreset = true })
			v := eng.Vehicles[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Core = nil
				v.CoreBuiltAt = math.Inf(-1)
				if _, err := eng.EnsureCoreset(v); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("N=%d/incremental", n), func(b *testing.B) {
			eng := benchCoresetEngine(b, n, nil)
			v := eng.Vehicles[0]
			if _, err := eng.EnsureCoreset(v); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Tree.Invalidate(n-128, n)
				v.CoreBuiltAt = math.Inf(-1)
				if _, err := eng.EnsureCoreset(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAbsorbCoreset measures the merge-and-reduce maintenance path: a
// received peer coreset is absorbed into the local dataset, the partition
// tree extended over the appended range, and the resident coreset refreshed,
// at growing local-dataset sizes.
func BenchmarkAbsorbCoreset(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		eng := benchCoresetEngine(b, n, nil)
		v := eng.Vehicles[0]
		baseCore, err := eng.EnsureCoreset(v)
		if err != nil {
			b.Fatal(err)
		}
		peer, err := eng.EnsureCoreset(eng.Vehicles[1])
		if err != nil {
			b.Fatal(err)
		}
		baseItems := v.Data.Items()
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Absorb mutates the vehicle; restore the pre-chat state
				// outside the timer so every iteration does the same work.
				// The tree is rewound to cover exactly the restored dataset
				// (reset, then re-extend) so each absorb's Extend grows it
				// over the appended range like a real chat would.
				b.StopTimer()
				v.Data = dataset.FromWeighted(baseItems)
				v.Core = baseCore
				if v.Tree != nil {
					v.Tree.Extend(0)
					v.Tree.Extend(v.Data.Len())
				}
				b.StartTimer()
				if err := eng.AbsorbCoreset(v, peer); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
