package core

import (
	"fmt"
	"math"
	"testing"

	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
)

// synthDataset builds n frames shaped like real collected data — a sparse
// binary BEV at the model's input geometry and a full waypoint target — so
// the per-sample loss evaluation inside EnsureCoreset costs what it costs
// in a real run, without paying for world simulation in benchmark setup.
func synthDataset(rng *simrand.Rand, cfg Config, n int) *dataset.Dataset {
	bevSize := cfg.Model.BEVSize()
	tgtSize := cfg.Model.TargetSize()
	ds := dataset.New(n)
	for i := 0; i < n; i++ {
		s := dataset.Sample{
			BEV:     make([]uint8, bevSize),
			Command: dataset.Command(i%dataset.NumCommands + 1),
			Speed:   rng.Uniform(0, 1),
			NavDist: rng.Uniform(0, 1),
			RedDist: rng.Uniform(0, 1),
			Targets: make([]float64, tgtSize),
		}
		for j := range s.BEV {
			if rng.Uniform(0, 1) < 0.1 {
				s.BEV[j] = 1
			}
		}
		for j := range s.Targets {
			s.Targets[j] = rng.Uniform(-1, 1)
		}
		ds.Add(s, 1)
	}
	return ds
}

// benchCoresetEngine builds a two-vehicle engine whose vehicles each hold a
// synthetic local dataset of datasetLen frames.
func benchCoresetEngine(b *testing.B, datasetLen int) *Engine {
	b.Helper()
	rng := simrand.New(uint64(datasetLen))
	datasets := []*dataset.Dataset{
		synthDataset(rng.Derive("v0"), DefaultConfig(), datasetLen),
		synthDataset(rng.Derive("v1"), DefaultConfig(), datasetLen),
	}
	tr := trace.FromRows(1, [][]geom.Point{{geom.Pt(0, 0), geom.Pt(100, 0)}})
	eng, err := NewEngine(DefaultConfig(), tr, datasets, radio.NewModel(false), nil)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// BenchmarkEnsureCoreset measures a full Algorithm-1 rebuild (per-sample
// loss scoring, layering, per-layer sampling) at local-dataset sizes from a
// fresh vehicle up to the expanded datasets absorbed from many peers. Above
// LayeringSample (384) the layering subsample caps the scored set, so the
// large sizes also exercise the subsample-and-rescale path.
func BenchmarkEnsureCoreset(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		eng := benchCoresetEngine(b, n)
		v := eng.Vehicles[0]
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.Core = nil
				v.CoreBuiltAt = math.Inf(-1)
				if _, err := eng.EnsureCoreset(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAbsorbCoreset measures the merge-and-reduce maintenance path: a
// received peer coreset is absorbed into the local dataset and the resident
// coreset refreshed, at growing local-dataset sizes.
func BenchmarkAbsorbCoreset(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		eng := benchCoresetEngine(b, n)
		v := eng.Vehicles[0]
		baseCore, err := eng.EnsureCoreset(v)
		if err != nil {
			b.Fatal(err)
		}
		peer, err := eng.EnsureCoreset(eng.Vehicles[1])
		if err != nil {
			b.Fatal(err)
		}
		baseItems := v.Data.Items()
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Absorb mutates the vehicle; restore the pre-chat state
				// outside the timer so every iteration does the same work.
				b.StopTimer()
				v.Data = dataset.FromWeighted(baseItems)
				v.Core = baseCore
				b.StartTimer()
				if err := eng.AbsorbCoreset(v, peer); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
