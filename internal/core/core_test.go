package core

import (
	"math"
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
	"lbchat/internal/world"
)

func TestAggregationWeights(t *testing.T) {
	// Corrected semantics: the better (lower-loss) model gets the larger
	// weight.
	wSelf, wPeer := AggregationWeights(0.1, 0.3, false)
	if wSelf <= wPeer {
		t.Errorf("better self model under-weighted: %v vs %v", wSelf, wPeer)
	}
	if math.Abs(wSelf+wPeer-1) > 1e-12 {
		t.Errorf("weights do not sum to 1: %v + %v", wSelf, wPeer)
	}
	if math.Abs(wSelf-0.75) > 1e-12 {
		t.Errorf("wSelf = %v, want 0.75", wSelf)
	}
	// Literal printed form: weights proportional to OWN losses.
	wSelf, wPeer = AggregationWeights(0.1, 0.3, true)
	if wSelf >= wPeer {
		t.Errorf("literal form should weight the worse model more: %v vs %v", wSelf, wPeer)
	}
	// Degenerate zero losses fall back to plain averaging.
	wSelf, wPeer = AggregationWeights(0, 0, false)
	if wSelf != 0.5 || wPeer != 0.5 {
		t.Errorf("zero-loss weights = %v, %v", wSelf, wPeer)
	}
	// Negative inputs are clamped, not propagated.
	wSelf, wPeer = AggregationWeights(-1, 0.5, false)
	if wSelf < 0 || wSelf > 1 || wPeer < 0 || wPeer > 1 {
		t.Errorf("negative-loss weights escaped [0,1]: %v, %v", wSelf, wPeer)
	}
}

func TestGreedyMatchDisjointAndOrdered(t *testing.T) {
	pairs := []CandidatePair{
		{A: 0, B: 1, Score: 0.5},
		{A: 1, B: 2, Score: 0.9},
		{A: 2, B: 3, Score: 0.8},
		{A: 0, B: 3, Score: 0.7},
	}
	got := GreedyMatch(pairs)
	// Highest score (1,2) first; then (0,3) — (2,3) and (0,1) conflict.
	if len(got) != 2 {
		t.Fatalf("matched %d pairs: %v", len(got), got)
	}
	if got[0].A != 1 || got[0].B != 2 {
		t.Errorf("first match = %+v", got[0])
	}
	if got[1].A != 0 || got[1].B != 3 {
		t.Errorf("second match = %+v", got[1])
	}
}

func TestGreedyMatchDeterministicTies(t *testing.T) {
	pairs := []CandidatePair{
		{A: 2, B: 3, Score: 1},
		{A: 0, B: 1, Score: 1},
	}
	a := GreedyMatch(pairs)
	b := GreedyMatch([]CandidatePair{pairs[1], pairs[0]})
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] {
		t.Errorf("tie-breaking not deterministic: %v vs %v", a, b)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.TickSeconds = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.TimeBudget = -1 },
		func(c *Config) { c.CoresetSize = 0 },
		func(c *Config) { c.BandwidthMaxBps = 1 },
		func(c *Config) { c.PaperModelBytes = 0 },
	} {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

// tinyEnv builds a minimal engine world for protocol tests.
func tinyEnv(t *testing.T, vehicles int, lossless bool) (*Engine, Config) {
	return tinyEnvWith(t, vehicles, lossless, nil)
}

// tinyEnvWith is tinyEnv with a config hook, for tests that flip engine
// arms (e.g. DisableIncrementalCoreset) before construction.
func tinyEnvWith(t *testing.T, vehicles int, lossless bool, mutate func(*Config)) (*Engine, Config) {
	t.Helper()
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(m, world.SpawnConfig{Experts: vehicles, BackgroundCars: 6, Pedestrians: 15}, simrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CoresetSize = 30
	cfg.LayeringSample = 96
	cfg.EvalSubset = 32
	if mutate != nil {
		mutate(&cfg)
	}
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	datasets := world.CollectDataset(w, ras, cfg.Model.NumWaypoints, 200, 0.5)
	tr := trace.Record(w, 1000, 0.5)
	probe := datasets[0].Items()[:32]
	eng, err := NewEngine(cfg, tr, datasets, radio.NewModel(lossless), probe)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cfg
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []float64 {
		eng, _ := tinyEnv(t, 3, true)
		if err := eng.Run(NewLbChat(), 300); err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, 0, len(eng.LossCurve.Points))
		for _, p := range eng.LossCurve.Points {
			vals = append(vals, p.Value)
		}
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineRejectsMismatchedInputs(t *testing.T) {
	eng, cfg := tinyEnv(t, 3, true)
	short := []*dataset.Dataset{eng.Vehicles[0].Data}
	if _, err := NewEngine(cfg, eng.Trace, short, eng.Radio, eng.Probe); err == nil {
		t.Error("dataset/trace count mismatch accepted")
	}
}

func TestEnsureCoresetBuildsAndCaches(t *testing.T) {
	eng, cfg := tinyEnv(t, 2, true)
	v := eng.Vehicles[0]
	cs, err := eng.EnsureCoreset(v)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != cfg.CoresetSize {
		t.Errorf("coreset size = %d, want %d", cs.Len(), cfg.CoresetSize)
	}
	// The coreset represents the FULL dataset's weight even though layering
	// used a subsample.
	if math.Abs(cs.TotalWeight()-v.Data.TotalWeight()) > 1e-6*v.Data.TotalWeight() {
		t.Errorf("coreset weight %v, dataset weight %v", cs.TotalWeight(), v.Data.TotalWeight())
	}
	// Cached until CoresetRefresh elapses.
	again, err := eng.EnsureCoreset(v)
	if err != nil {
		t.Fatal(err)
	}
	if again != cs {
		t.Error("fresh coreset rebuilt before refresh interval")
	}
}

func TestAbsorbCoresetExpandsDataset(t *testing.T) {
	eng, cfg := tinyEnv(t, 2, true)
	va, vb := eng.Vehicles[0], eng.Vehicles[1]
	csB, err := eng.EnsureCoreset(vb)
	if err != nil {
		t.Fatal(err)
	}
	before := va.Data.Len()
	if _, err := eng.EnsureCoreset(va); err != nil {
		t.Fatal(err)
	}
	if err := eng.AbsorbCoreset(va, csB); err != nil {
		t.Fatal(err)
	}
	if va.Data.Len() != before+csB.Len() {
		t.Errorf("dataset %d -> %d after absorbing %d", before, va.Data.Len(), csB.Len())
	}
	// Absorbed samples carry the uniform local weight.
	for i := before; i < va.Data.Len(); i++ {
		if va.Data.At(i).Weight != va.LocalWeight {
			t.Fatalf("absorbed weight = %v", va.Data.At(i).Weight)
		}
	}
	// The vehicle's own coreset stayed at budget after merge-reduce.
	if va.Core.Len() != cfg.CoresetSize {
		t.Errorf("coreset size after absorb = %d", va.Core.Len())
	}
}

func TestCompressDeltaReconstruct(t *testing.T) {
	eng, _ := tinyEnv(t, 2, true)
	v := eng.Vehicles[0]
	// Train a little so the delta is nonzero.
	for i := 0; i < 10; i++ {
		v.Policy.TrainStep(v.Data.SampleBatch(8, v.RNG()))
	}
	flat := v.Policy.Flat()
	full := eng.CompressDelta(flat, 1)
	rec := eng.ReconstructDelta(full)
	for i := range flat {
		if math.Abs(rec[i]-flat[i]) > 1e-12 {
			t.Fatal("ψ=1 reconstruction differs from original")
		}
	}
	// Moderate compression keeps the model closer to the original than the
	// shared initialization is.
	half := eng.ReconstructDelta(eng.CompressDelta(flat, 0.5))
	var dHalf, dInit float64
	for i := range flat {
		dHalf += (half[i] - flat[i]) * (half[i] - flat[i])
		dInit += (eng.initFlat[i] - flat[i]) * (eng.initFlat[i] - flat[i])
	}
	if dHalf >= dInit {
		t.Errorf("ψ=0.5 reconstruction no better than init: %v vs %v", dHalf, dInit)
	}
}

func TestPayloadSizes(t *testing.T) {
	eng, cfg := tinyEnv(t, 2, true)
	if eng.ModelWireBytes() != cfg.PaperModelBytes {
		t.Errorf("model wire bytes = %d", eng.ModelWireBytes())
	}
	if got := eng.CompressedModelBytes(0.5); got != cfg.PaperModelBytes/2 {
		t.Errorf("half-compressed bytes = %d", got)
	}
	if eng.CompressedModelBytes(0) != 0 || eng.CompressedModelBytes(2) != cfg.PaperModelBytes {
		t.Error("compressed-bytes clamping broken")
	}
	if got := eng.CoresetWireBytes(150); got != 150*cfg.PaperFrameBytes {
		t.Errorf("coreset wire bytes = %d", got)
	}
}

func TestMergeModelsBlends(t *testing.T) {
	eng, _ := tinyEnv(t, 2, true)
	v := eng.Vehicles[0]
	selfFlat := v.Policy.Flat()
	peer := make([]float64, len(selfFlat))
	for i := range peer {
		peer[i] = selfFlat[i] + 1
	}
	if err := MergeModels(v, peer, 0.75, 0.25); err != nil {
		t.Fatal(err)
	}
	got := v.Policy.Flat()
	for i := range got {
		want := selfFlat[i] + 0.25
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("blend[%d] = %v, want %v", i, got[i], want)
		}
	}
	if err := MergeModels(v, peer[:3], 0.5, 0.5); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSCORunSharesDataNotModels(t *testing.T) {
	eng, _ := tinyEnv(t, 3, true)
	sizeBefore := eng.Vehicles[0].Data.Len()
	if err := eng.Run(NewSCO(), 400); err != nil {
		t.Fatal(err)
	}
	stats := eng.FleetReceiveStats()
	if stats.Attempts != 0 {
		t.Errorf("SCO attempted %d model transfers", stats.Attempts)
	}
	grew := false
	for _, v := range eng.Vehicles {
		if v.Data.Len() > sizeBefore {
			grew = true
		}
	}
	if !grew {
		t.Error("SCO never expanded any local dataset")
	}
}

func TestVariantsRun(t *testing.T) {
	for _, v := range []Variant{
		{EqualCompression: true},
		{AverageAggregation: true},
		{LiteralEq8: true},
		{NoDataExpansion: true},
	} {
		eng, _ := tinyEnv(t, 3, true)
		proto := NewLbChatVariant("variant", v)
		if err := eng.Run(proto, 300); err != nil {
			t.Fatalf("variant %+v failed: %v", v, err)
		}
		if eng.LossCurve.Final() >= eng.LossCurve.Points[0].Value {
			t.Errorf("variant %+v did not learn", v)
		}
	}
}

func TestLossyRegimeRuns(t *testing.T) {
	eng, _ := tinyEnv(t, 3, false)
	if err := eng.Run(NewLbChat(), 300); err != nil {
		t.Fatal(err)
	}
	if eng.LossCurve.Final() >= eng.LossCurve.Points[0].Value {
		t.Error("lossy run did not learn")
	}
}

func TestMarkChattedSetsCooldowns(t *testing.T) {
	eng, cfg := tinyEnv(t, 2, true)
	eng.MarkChatted(0, 1, 42)
	va, vb := eng.Vehicles[0], eng.Vehicles[1]
	if va.BusyUntil != 42 || vb.BusyUntil != 42 {
		t.Error("busy-until not stamped")
	}
	if va.NextChatAt != 42+cfg.ChatCooldown {
		t.Errorf("chat cooldown = %v", va.NextChatAt)
	}
	// The pair must not re-match within the pair cooldown.
	pairs := eng.CandidatePairs(func(a, b int) float64 { return 1 })
	if len(pairs) != 0 {
		t.Errorf("cooled-down pair re-matched: %v", pairs)
	}
}

func TestNoPrioritizationVariantRuns(t *testing.T) {
	eng, _ := tinyEnv(t, 3, false)
	proto := NewLbChatVariant("no-prio", Variant{NoPrioritization: true})
	if err := eng.Run(proto, 300); err != nil {
		t.Fatal(err)
	}
	if eng.LossCurve.Final() >= eng.LossCurve.Points[0].Value {
		t.Error("no-prioritization variant did not learn")
	}
}

func TestAdaptiveCoresetSizing(t *testing.T) {
	eng, _ := tinyEnv(t, 3, true)
	proto := NewLbChatVariant("adaptive", Variant{AdaptiveCoresetSize: true})
	if err := eng.Run(proto, 400); err != nil {
		t.Fatal(err)
	}
	// At least one vehicle should have chatted and tuned its budget.
	tuned := 0
	for _, v := range eng.Vehicles {
		if v.CoresetSizeOverride > 0 {
			tuned++
			if v.CoresetSizeOverride < 15 || v.CoresetSizeOverride > 1500 {
				t.Errorf("override %d outside [15, 1500]", v.CoresetSizeOverride)
			}
			if v.ContactEMA <= 0 {
				t.Error("contact EMA not tracked")
			}
		}
	}
	if tuned == 0 {
		t.Error("no vehicle adapted its coreset size")
	}
}

func TestCoresetMethodOverride(t *testing.T) {
	eng, cfg := tinyEnv(t, 2, true)
	cfg.CoresetMethod = coreset.MethodUniform
	eng.Cfg = cfg
	cs, err := eng.EnsureCoreset(eng.Vehicles[0])
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != cfg.CoresetSize {
		t.Errorf("uniform-method coreset size = %d", cs.Len())
	}
}

func TestRunInvariants(t *testing.T) {
	eng, cfg := tinyEnv(t, 4, false)
	initial := make([]int, len(eng.Vehicles))
	for i, v := range eng.Vehicles {
		initial[i] = v.Data.Len()
	}
	if err := eng.Run(NewLbChat(), 500); err != nil {
		t.Fatal(err)
	}
	for i, v := range eng.Vehicles {
		if v.Data.Len() < initial[i] {
			t.Errorf("vehicle %d dataset shrank: %d -> %d", i, initial[i], v.Data.Len())
		}
		if v.Core != nil && v.Core.Len() > cfg.CoresetSize {
			t.Errorf("vehicle %d coreset %d exceeds budget %d", i, v.Core.Len(), cfg.CoresetSize)
		}
		if v.Recv.Successes > v.Recv.Attempts {
			t.Errorf("vehicle %d: %d successes > %d attempts", i, v.Recv.Successes, v.Recv.Attempts)
		}
		if v.BusyUntil < 0 || v.NextChatAt < 0 {
			t.Errorf("vehicle %d has negative cooldown state", i)
		}
		for _, it := range v.Data.Items() {
			if it.Weight <= 0 {
				t.Fatalf("vehicle %d holds a non-positive sample weight %v", i, it.Weight)
			}
		}
	}
}

func TestQuantizationSchemeRuns(t *testing.T) {
	eng, cfg := tinyEnv(t, 3, true)
	cfg.CompressionScheme = SchemeQuantize
	eng.Cfg = cfg
	if err := eng.Run(NewLbChat(), 400); err != nil {
		t.Fatal(err)
	}
	if eng.LossCurve.Final() >= eng.LossCurve.Points[0].Value {
		t.Error("quantization-scheme run did not learn")
	}
}

func TestCompressReconstructSchemes(t *testing.T) {
	eng, _ := tinyEnv(t, 2, true)
	v := eng.Vehicles[0]
	for i := 0; i < 10; i++ {
		v.Policy.TrainStep(v.Data.SampleBatch(8, v.RNG()))
	}
	flat := v.Policy.Flat()
	if eng.CompressReconstruct(flat, 0) != nil {
		t.Error("ψ=0 should reconstruct nothing")
	}
	topk := eng.CompressReconstruct(flat, 0.5)
	if len(topk) != len(flat) {
		t.Fatalf("topk reconstruction length %d", len(topk))
	}
	eng.Cfg.CompressionScheme = SchemeQuantize
	quant := eng.CompressReconstruct(flat, 0.5)
	if len(quant) != len(flat) {
		t.Fatalf("quant reconstruction length %d", len(quant))
	}
	// Both schemes must produce something closer to the model than init.
	var dQ, dInit float64
	for i := range flat {
		dQ += (quant[i] - flat[i]) * (quant[i] - flat[i])
		dInit += (eng.initFlat[i] - flat[i]) * (eng.initFlat[i] - flat[i])
	}
	if dQ >= dInit {
		t.Errorf("quantized reconstruction worse than init: %v vs %v", dQ, dInit)
	}
}
