package core

import (
	"math"
	"testing"

	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
)

// expireCoreset forces the next EnsureCoreset past the freshness check
// without advancing engine time.
func expireCoreset(v *Vehicle) { v.CoreBuiltAt = math.Inf(-1) }

func TestIncrementalRefreshBuildsAndCachesTree(t *testing.T) {
	eng, cfg := tinyEnv(t, 2, true)
	v := eng.Vehicles[0]
	cs, err := eng.EnsureCoreset(v)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tree == nil {
		t.Fatal("incremental arm did not create the partition tree")
	}
	if cs.Len() == 0 || cs.Len() > cfg.CoresetSize {
		t.Fatalf("coreset size %d outside (0, %d]", cs.Len(), cfg.CoresetSize)
	}
	if math.Abs(cs.TotalWeight()-v.Data.TotalWeight()) > 1e-6*v.Data.TotalWeight() {
		t.Errorf("coreset weight %v, dataset weight %v", cs.TotalWeight(), v.Data.TotalWeight())
	}
	if got := v.Tree.DirtyLeaves(); got != 0 {
		t.Fatalf("dirty leaves after refresh = %d, want 0", got)
	}
	// With nothing dirtied, an expired re-ensure is a pure cache hit: the
	// tree hands back the same cached root.
	expireCoreset(v)
	again, err := eng.EnsureCoreset(v)
	if err != nil {
		t.Fatal(err)
	}
	if again != cs {
		t.Error("clean tree re-ensure rebuilt instead of serving the cached root")
	}
}

func TestFullRebuildArmSkipsTree(t *testing.T) {
	eng, _ := tinyEnvWith(t, 2, true, func(c *Config) { c.DisableIncrementalCoreset = true })
	v := eng.Vehicles[0]
	if _, err := eng.EnsureCoreset(v); err != nil {
		t.Fatal(err)
	}
	if v.Tree != nil {
		t.Fatal("full-rebuild arm built a partition tree")
	}
}

func TestAbsorbEmptyPeerCoreset(t *testing.T) {
	eng, _ := tinyEnv(t, 2, true)
	v := eng.Vehicles[0]
	if _, err := eng.EnsureCoreset(v); err != nil {
		t.Fatal(err)
	}
	before, coreBefore := v.Data.Len(), v.Core.Len()
	empty := coreset.FromDataset(dataset.New(0))
	if err := eng.AbsorbCoreset(v, empty); err != nil {
		t.Fatalf("absorbing an empty coreset: %v", err)
	}
	if v.Data.Len() != before {
		t.Errorf("empty absorb changed dataset length %d -> %d", before, v.Data.Len())
	}
	if v.Core.Len() != coreBefore {
		t.Errorf("empty absorb changed coreset length %d -> %d", coreBefore, v.Core.Len())
	}
	if got := v.Tree.DirtyLeaves(); got != 0 {
		t.Errorf("empty absorb dirtied %d leaves", got)
	}
}

func TestAbsorbMarksAppendedLeavesDirty(t *testing.T) {
	eng, _ := tinyEnv(t, 2, true)
	va, vb := eng.Vehicles[0], eng.Vehicles[1]
	csB, err := eng.EnsureCoreset(vb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EnsureCoreset(va); err != nil {
		t.Fatal(err)
	}
	// Precondition: the absorb lands on a vehicle with no dirty leaves.
	if got := va.Tree.DirtyLeaves(); got != 0 {
		t.Fatalf("dirty leaves before absorb = %d, want 0", got)
	}
	before := va.Data.Len()
	if err := eng.AbsorbCoreset(va, csB); err != nil {
		t.Fatal(err)
	}
	if va.Tree.Len() != va.Data.Len() {
		t.Fatalf("tree covers %d samples, dataset has %d", va.Tree.Len(), va.Data.Len())
	}
	// Exactly the leaves overlapping the appended range [before, len) are
	// dirty; sealed leaves before it keep their caches.
	ls := va.Tree.Config().LeafSize
	wantDirty := (va.Data.Len()+ls-1)/ls - before/ls
	if got := va.Tree.DirtyLeaves(); got != wantDirty {
		t.Fatalf("dirty leaves after absorb = %d, want %d", got, wantDirty)
	}
	// The next refresh clears them and summarizes the expanded dataset.
	expireCoreset(va)
	cs, err := eng.EnsureCoreset(va)
	if err != nil {
		t.Fatal(err)
	}
	if got := va.Tree.DirtyLeaves(); got != 0 {
		t.Fatalf("dirty leaves after refresh = %d, want 0", got)
	}
	if math.Abs(cs.TotalWeight()-va.Data.TotalWeight()) > 1e-6*va.Data.TotalWeight() {
		t.Errorf("refreshed coreset weight %v, expanded dataset weight %v",
			cs.TotalWeight(), va.Data.TotalWeight())
	}
}

func TestAbsorbPartialSalvageExtendsTree(t *testing.T) {
	eng, _ := tinyEnv(t, 2, true)
	va, vb := eng.Vehicles[0], eng.Vehicles[1]
	csB, err := eng.EnsureCoreset(vb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EnsureCoreset(va); err != nil {
		t.Fatal(err)
	}
	salvaged := salvageCoreset(csB, csB.Len()/2)
	if salvaged == nil || salvaged.Len() != csB.Len()/2 {
		t.Fatalf("salvage of %d frames returned %v", csB.Len()/2, salvaged)
	}
	before := va.Data.Len()
	if err := eng.AbsorbCoreset(va, salvaged); err != nil {
		t.Fatal(err)
	}
	if va.Data.Len() != before+salvaged.Len() {
		t.Fatalf("dataset %d -> %d after absorbing %d salvaged frames",
			before, va.Data.Len(), salvaged.Len())
	}
	if va.Tree.Len() != va.Data.Len() {
		t.Fatalf("tree covers %d samples, dataset has %d", va.Tree.Len(), va.Data.Len())
	}
	if got := va.Tree.DirtyLeaves(); got == 0 {
		t.Fatal("partial-salvage absorb left no leaf dirty")
	}
	expireCoreset(va)
	if _, err := eng.EnsureCoreset(va); err != nil {
		t.Fatalf("refresh after salvage absorb: %v", err)
	}
}

func TestCoresetArmsEquivalentQuality(t *testing.T) {
	// The incremental and full-rebuild arms are distinct sampling processes,
	// so they produce different coresets — but equal-quality ones: both
	// carry the dataset's exact total weight and both estimate the policy
	// loss proxy to comparable relative error (DESIGN.md §14).
	inc, _ := tinyEnv(t, 2, true)
	full, _ := tinyEnvWith(t, 2, true, func(c *Config) { c.DisableIncrementalCoreset = true })
	for i := range inc.Vehicles {
		vi, vf := inc.Vehicles[i], full.Vehicles[i]
		csI, err := inc.EnsureCoreset(vi)
		if err != nil {
			t.Fatal(err)
		}
		csF, err := full.EnsureCoreset(vf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(csI.TotalWeight()-csF.TotalWeight()) > 1e-6*csF.TotalWeight() {
			t.Errorf("vehicle %d: arm weight totals diverge: %v vs %v",
				i, csI.TotalWeight(), csF.TotalWeight())
		}
		proxy := func(v *Vehicle) coreset.LossFunc {
			return func(items []dataset.Weighted) float64 {
				losses := v.Policy.PerSampleLosses(items)
				var acc, w float64
				for j, it := range items {
					acc += it.Weight * losses[j]
					w += it.Weight
				}
				if w == 0 {
					return 0
				}
				return acc / w
			}
		}
		errI := coreset.ApproximationError(csI, vi.Data, proxy(vi))
		errF := coreset.ApproximationError(csF, vf.Data, proxy(vf))
		const bound = 0.35
		if errI > bound || errF > bound {
			t.Errorf("vehicle %d: loss-proxy error out of bounds: incremental %.3f, full %.3f",
				i, errI, errF)
		}
		if math.Abs(errI-errF) > bound {
			t.Errorf("vehicle %d: arm loss-proxy errors diverge: %.3f vs %.3f", i, errI, errF)
		}
	}
}
