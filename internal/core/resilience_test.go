package core

import (
	"testing"

	"lbchat/internal/faults"
	"lbchat/internal/simrand"
	"lbchat/internal/telemetry"
)

// salvageScenario pins a two-vehicle geometry where the coreset exchange
// deterministically breaks one-sided: with both bandwidths forced to 24 Mbps
// and a 45 ms exchange window over a lossless radio, the 30-frame (120 kB)
// A→B leg completes in exactly 40 ms and the B→A leg gets 5 ms — 10 packets,
// 3 frames, below the 25% viability threshold of 7.
func salvageScenario(t *testing.T) (*Engine, *LbChat, *telemetry.MemorySink, float64) {
	t.Helper()
	eng, _ := tinyEnv(t, 2, true)
	eng.Cfg.TimeBudget = 0.045
	va, vb := eng.Vehicles[0], eng.Vehicles[1]
	va.Bandwidth, vb.Bandwidth = 24e6, 24e6
	// Find a moment when the pair is comfortably in range (and stays there
	// for the following second, for the resumption re-encounter).
	at := -1.0
	for ts := 0.0; ts < 490; ts += 0.5 {
		if eng.Trace.Distance(0, 1, ts) < 300 && eng.Trace.Distance(0, 1, ts+1.5) < 400 {
			at = ts
			break
		}
	}
	if at < 0 {
		t.Fatal("no close encounter between vehicles 0 and 1 in the trace")
	}
	eng.now = at
	sink := telemetry.NewMemorySink()
	eng.Cfg.Telemetry = sink
	eng.tel = sink
	eng.contactOpen = make(map[[2]int]float64)
	l := NewLbChat()
	if err := l.Setup(eng); err != nil {
		t.Fatal(err)
	}
	return eng, l, sink, at
}

// eventKinds counts the sink's events by kind.
func eventKinds(sink *telemetry.MemorySink) map[string]int {
	counts := map[string]int{}
	for _, ev := range sink.Events() {
		counts[ev.Kind()]++
	}
	return counts
}

// TestOneSidedSalvageOnAbort is the regression test for the historical bug
// where an aborted coreset exchange discarded the direction that HAD been
// delivered: when the A→B leg lands and the B→A leg breaks, B must still
// absorb A's full coreset and A must absorb the discounted salvaged prefix —
// even with fault injection off.
func TestOneSidedSalvageOnAbort(t *testing.T) {
	eng, l, sink, _ := salvageScenario(t)
	va, vb := eng.Vehicles[0], eng.Vehicles[1]
	beforeA, beforeB := va.Data.Len(), vb.Data.Len()

	l.chat(eng, 0, 1)
	eng.Events.RunUntil(eng.now + 1)

	counts := eventKinds(sink)
	if counts[telemetry.KindChatAborted] != 1 {
		t.Fatalf("chat_aborted count = %d, want 1 (events: %v)", counts[telemetry.KindChatAborted], counts)
	}
	if counts[telemetry.KindPartialSalvage] != 1 {
		t.Fatalf("partial_salvage count = %d, want 1", counts[telemetry.KindPartialSalvage])
	}
	// B holds A's complete 30-frame coreset; A holds the 3-frame salvage.
	if got := vb.Data.Len() - beforeB; got != 30 {
		t.Errorf("B absorbed %d frames from the delivered direction, want 30", got)
	}
	if got := va.Data.Len() - beforeA; got != 3 {
		t.Errorf("A absorbed %d salvaged frames, want 3", got)
	}
	var salvage telemetry.PartialSalvage
	for _, ev := range sink.Events() {
		if s, ok := ev.(telemetry.PartialSalvage); ok {
			salvage = s
		}
	}
	if salvage.Vehicle != 0 || salvage.From != 1 {
		t.Errorf("salvage direction = %d<-%d, want 0<-1", salvage.Vehicle, salvage.From)
	}
	if salvage.Frames != 3 || salvage.Total != 30 {
		t.Errorf("salvage frames = %d/%d, want 3/30", salvage.Frames, salvage.Total)
	}
	if salvage.Discount != 0.1 {
		t.Errorf("salvage discount = %v, want 0.1", salvage.Discount)
	}
	// The broken session is parked for resumption.
	if len(l.sessions) != 1 {
		t.Errorf("broken session not recorded: %d sessions", len(l.sessions))
	}
}

// TestChatResumptionSkipsDeliveredLeg re-encounters the pair after the
// one-sided abort: the resumed session must not re-send (or re-absorb) A's
// already-delivered coreset, and with the full window available to the B→A
// leg alone, the chat completes.
func TestChatResumptionSkipsDeliveredLeg(t *testing.T) {
	eng, l, sink, at := salvageScenario(t)
	va, vb := eng.Vehicles[0], eng.Vehicles[1]

	l.chat(eng, 0, 1)
	eng.Events.RunUntil(eng.now + 0.5)
	midA, midB := va.Data.Len(), vb.Data.Len()

	eng.now = at + 1 // re-encounter, well inside resumeTTL
	l.chat(eng, 0, 1)
	eng.Events.RunUntil(eng.now + 1)

	counts := eventKinds(sink)
	if counts[telemetry.KindChatResumed] != 1 {
		t.Fatalf("chat_resumed count = %d, want 1 (events: %v)", counts[telemetry.KindChatResumed], counts)
	}
	if counts[telemetry.KindChatCompleted] != 1 {
		t.Fatalf("resumed chat did not complete (events: %v)", counts)
	}
	var resumed telemetry.ChatResumed
	for _, ev := range sink.Events() {
		if r, ok := ev.(telemetry.ChatResumed); ok {
			resumed = r
		}
	}
	// The saved re-transmission is A's full 30-frame coreset: 120 kB.
	if want := eng.CoresetWireBytes(30); resumed.SavedBytes != want {
		t.Errorf("resume saved %d bytes, want %d", resumed.SavedBytes, want)
	}
	if resumed.Age != 1 {
		t.Errorf("resume age = %v, want 1", resumed.Age)
	}
	// Double-count guard: B already absorbed A's coreset when the session
	// broke, so the resumed chat must not grow B's dataset again. A now
	// absorbs B's freshly delivered full coreset.
	if vb.Data.Len() != midB {
		t.Errorf("B re-absorbed a resumed leg: %d -> %d", midB, vb.Data.Len())
	}
	if got := va.Data.Len() - midA; got != 30 {
		t.Errorf("A absorbed %d frames from the resent direction, want 30", got)
	}
	if len(l.sessions) != 0 {
		t.Errorf("%d sessions left after successful resume", len(l.sessions))
	}
}

// TestNoResumptionVariantRestartsFromScratch is the FaultSweep comparison
// arm: with NoResumption set, a broken exchange is forgotten — the
// re-encounter re-sends everything and never emits chat_resumed.
func TestNoResumptionVariantRestartsFromScratch(t *testing.T) {
	eng, l, sink, at := salvageScenario(t)
	l.Variant.NoResumption = true
	vb := eng.Vehicles[1]

	l.chat(eng, 0, 1)
	eng.Events.RunUntil(eng.now + 0.5)
	if len(l.sessions) != 0 {
		t.Fatalf("NoResumption recorded %d sessions", len(l.sessions))
	}
	midB := vb.Data.Len()

	eng.now = at + 1
	l.chat(eng, 0, 1)
	eng.Events.RunUntil(eng.now + 1)

	counts := eventKinds(sink)
	if counts[telemetry.KindChatResumed] != 0 {
		t.Errorf("NoResumption emitted %d chat_resumed events", counts[telemetry.KindChatResumed])
	}
	// The A→B leg was re-sent from scratch and re-absorbed.
	if got := vb.Data.Len() - midB; got != 30 {
		t.Errorf("restarted exchange absorbed %d frames at B, want 30", got)
	}
}

// TestSendCoresetZeroDeadline pins the zero-window early return: a leg with
// no time left must not touch the radio (no transfer event, no elapsed time,
// no randomness) and reports an empty outcome.
func TestSendCoresetZeroDeadline(t *testing.T) {
	eng, l, sink, _ := salvageScenario(t)
	cs, err := eng.EnsureCoreset(eng.Vehicles[0])
	if err != nil {
		t.Fatal(err)
	}
	before := sink.Len()
	for _, deadline := range []float64{0, -1} {
		leg, elapsed := l.sendCoreset(eng, cs, 0, 1, deadline)
		if leg.core != nil || leg.frames != 0 || leg.full || elapsed != 0 {
			t.Errorf("deadline %v: leg = %+v, elapsed = %v; want empty outcome", deadline, leg, elapsed)
		}
	}
	if sink.Len() != before {
		t.Error("zero-deadline leg emitted events")
	}
}

// TestTransferResilientWithoutFaults: with faults off, TransferResilient is
// exactly one transfer — the retry loop must not engage, keeping no-fault
// runs byte-compatible with the pre-resilience engine.
func TestTransferResilientWithoutFaults(t *testing.T) {
	eng, _, sink, _ := salvageScenario(t)
	res := eng.TransferResilient(telemetry.PayloadCoreset, 120_000, 0, 1, 0.045)
	if !res.Completed {
		t.Fatalf("clean transfer failed: %+v", res)
	}
	transfers := 0
	for _, ev := range sink.Events() {
		if _, ok := ev.(telemetry.Transfer); ok {
			transfers++
		}
	}
	if transfers != 1 {
		t.Errorf("faults-off resilient transfer made %d attempts, want 1", transfers)
	}
}

// TestFaultedEngineRunsAndLearns drives a short LbChat run under the heavy
// fault profile end to end: it must not error, must keep learning, and must
// actually inject faults (visible in telemetry). The injector is installed
// the way NewEngine builds it — from the root seed's derived "faults"
// stream, which is identical regardless of what else the root has served.
func TestFaultedEngineRunsAndLearns(t *testing.T) {
	eng, _ := tinyEnv(t, 3, false)
	cfgf, err := faults.ByName("heavy")
	if err != nil {
		t.Fatal(err)
	}
	eng.Cfg.Faults = cfgf
	eng.faults = faults.NewInjector(cfgf, simrand.New(eng.Cfg.Seed).Derive("faults"), len(eng.Vehicles))
	sink := telemetry.NewMemorySink()
	eng.Cfg.Telemetry = sink
	eng.tel = sink
	eng.contactOpen = make(map[[2]int]float64)
	if !eng.FaultsEnabled() {
		t.Fatal("faults config did not enable the injector")
	}
	if err := eng.Run(NewLbChat(), 300); err != nil {
		t.Fatal(err)
	}
	if eng.LossCurve.Final() >= eng.LossCurve.Points[0].Value {
		t.Error("faulted run did not learn")
	}
	counts := eventKinds(sink)
	if counts[telemetry.KindFaultInjected] == 0 {
		t.Error("heavy profile injected no faults in 300s")
	}
}
