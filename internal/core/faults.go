package core

import (
	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
	"lbchat/internal/radio"
	"lbchat/internal/telemetry"
)

// This file is the engine side of the fault-injection layer: thin hooks
// that consult the internal/faults injector (all no-ops when faults are
// off) plus the salvage and retry primitives the resilient chat path in
// lbchat.go builds on. See DESIGN.md §9.

// FaultsEnabled reports whether this run injects faults.
func (e *Engine) FaultsEnabled() bool { return e.faults != nil }

// VehicleAway reports whether churn currently has the vehicle out of the
// communication system (always false with faults off).
func (e *Engine) VehicleAway(id int) bool {
	return e.faults != nil && e.faults.Away(id)
}

// faultsTick advances the churn processes one engine tick and emits the
// depart/rejoin transitions. It runs on the serial phase, before contact
// scanning, so a departed vehicle disappears from pairing the same tick.
func (e *Engine) faultsTick() {
	if e.faults == nil {
		return
	}
	for _, tr := range e.faults.Tick(e.now) {
		if tr.Rejoin {
			e.Emit(telemetry.FaultInjected{Time: e.now, Fault: telemetry.FaultChurnRejoin, A: tr.Vehicle, B: telemetry.NoPeer})
		} else {
			e.Emit(telemetry.FaultInjected{
				Time: e.now, Fault: telemetry.FaultChurnDepart,
				A: tr.Vehicle, B: telemetry.NoPeer, Value: tr.Until - e.now,
			})
		}
	}
}

// FaultWindow applies the window-truncation fault to a chat's exchange
// window, emitting the injection when it fires. With faults off it returns
// the window unchanged without drawing randomness.
func (e *Engine) FaultWindow(a, b int, window float64) float64 {
	if e.faults == nil {
		return window
	}
	if w, ok := e.faults.TruncateWindow(window); ok {
		e.Emit(telemetry.FaultInjected{Time: e.now, Fault: telemetry.FaultWindowTrunc, A: a, B: b, Value: w})
		return w
	}
	return window
}

// FaultCorruptCoreset applies the payload-corruption fault to a fully
// delivered frames-frame coreset from `from` to `to`, returning how many
// leading frames arrived intact (frames itself when the fault does not
// fire).
func (e *Engine) FaultCorruptCoreset(from, to, frames int) int {
	if e.faults == nil || frames <= 0 {
		return frames
	}
	if keep, ok := e.faults.CorruptPayload(frames); ok {
		e.Emit(telemetry.FaultInjected{
			Time: e.now, Fault: telemetry.FaultPayloadCorrupt,
			A: to, B: from, Value: float64(keep),
		})
		return keep
	}
	return frames
}

// TransferResilient is SimulateTransferPayload plus bounded
// retry-with-backoff: a transfer truncated by wireless loss is re-attempted
// up to Config.Faults.MaxRetries times, each retry preceded by an
// exponentially growing backoff spent from the same window. Retries resend
// the payload from the start (half-duplex, no packet-level resume); the
// receiver keeps the longest intact prefix across attempts. With faults off
// this is exactly one SimulateTransferPayload call.
func (e *Engine) TransferResilient(payload string, bytes, a, b int, deadline float64) radio.TransferResult {
	total := e.SimulateTransferPayload(payload, bytes, a, b, deadline)
	if e.faults == nil {
		return total
	}
	cfg := e.faults.Config()
	backoff := cfg.RetryBackoffSecs
	for attempt := 0; attempt < cfg.MaxRetries && !total.Completed && total.Truncated == radio.TruncLoss; attempt++ {
		remaining := deadline - total.Elapsed - backoff
		if remaining <= 0 {
			break
		}
		res := e.SimulateTransferPayload(payload, bytes, a, b, remaining)
		if !res.Completed && total.BytesDelivered > res.BytesDelivered {
			res.BytesDelivered = total.BytesDelivered
		}
		res.Elapsed += total.Elapsed + backoff
		total = res
		backoff *= 2
	}
	return total
}

// salvageCoreset truncates a coreset to its first `frames` intact items
// with every weight discounted by the delivered fraction frames/total — the
// salvaged prefix still informs Eq. (8) value estimation and data
// expansion, but proportionally to how much of the summary actually made it
// across.
func salvageCoreset(cs *coreset.Coreset, frames int) *coreset.Coreset {
	items := cs.Items()
	if frames >= len(items) {
		return cs
	}
	if frames <= 0 {
		return nil
	}
	discount := float64(frames) / float64(len(items))
	ds := dataset.New(frames)
	for _, it := range items[:frames] {
		ds.Add(it.Sample, it.Weight*discount)
	}
	return coreset.FromDataset(ds)
}
