package core

import (
	"fmt"

	"lbchat/internal/dataset"
)

// AggregationWeights computes the Eq. (8) merge weights from the two models'
// losses on the joint evaluation set (the receiver's data joined with the
// sender's coreset, §III-C).
//
// As printed, Eq. (8) weights each model by its OWN loss, which would favor
// the worse model and contradicts the surrounding text ("assigns larger
// weights to better-performing models"). The default here implements the
// stated intent — each model is weighted by the OTHER model's normalized
// loss — and the literal printed form remains available for comparison via
// literal=true. See DESIGN.md §4.
func AggregationWeights(lossSelf, lossPeer float64, literal bool) (wSelf, wPeer float64) {
	if lossSelf < 0 || lossPeer < 0 {
		lossSelf, lossPeer = clampNonNeg(lossSelf), clampNonNeg(lossPeer)
	}
	total := lossSelf + lossPeer
	if total <= 0 {
		return 0.5, 0.5
	}
	if literal {
		return lossSelf / total, lossPeer / total
	}
	return lossPeer / total, lossSelf / total
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// MergeModels blends a received (decompressed) peer parameter vector into
// the vehicle's policy: x ← wSelf·x + wPeer·x̂_peer.
func MergeModels(v *Vehicle, peerFlat []float64, wSelf, wPeer float64) error {
	selfFlat := v.Policy.Flat()
	if len(peerFlat) != len(selfFlat) {
		return fmt.Errorf("core: peer model has %d params, local has %d", len(peerFlat), len(selfFlat))
	}
	for i := range selfFlat {
		selfFlat[i] = wSelf*selfFlat[i] + wPeer*peerFlat[i]
	}
	return v.Policy.SetFlat(selfFlat)
}

// JointEvalSet builds the weighted sample set both models are scored on for
// aggregation: the receiver's coreset (standing in for D_i via the ε-coreset
// property) unioned with the sender's coreset — the fast path of §III-D.
func JointEvalSet(e *Engine, v *Vehicle, peerItems []dataset.Weighted) []dataset.Weighted {
	var own []dataset.Weighted
	if v.Core != nil {
		own = v.Core.Items()
	} else {
		own = v.Data.Items()
	}
	joint := make([]dataset.Weighted, 0, len(own)+len(peerItems))
	joint = append(joint, own...)
	joint = append(joint, peerItems...)
	return e.EvalSubset(v, joint)
}
