package core

import (
	"fmt"
	"math"
	"testing"

	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
)

// benchEngine builds an engine over a synthetic static trace of n vehicles
// scattered at constant density (one vehicle per densityCell² on average),
// so the in-range neighborhood size stays O(1) as the fleet scales — the
// regime where the spatial index's asymptotic win shows.
func benchEngine(b *testing.B, n int) *Engine {
	b.Helper()
	const densityCell = 250.0 // m² per vehicle → ~13 in-range peers at 500 m
	side := densityCell * math.Sqrt(float64(n))
	rng := simrand.New(uint64(n))
	snap := make([]geom.Point, n)
	for i := range snap {
		snap[i] = geom.Pt(rng.Uniform(0, side), rng.Uniform(0, side))
	}
	tr := trace.FromRows(1, [][]geom.Point{snap})
	datasets := make([]*dataset.Dataset, n)
	for i := range datasets {
		datasets[i] = dataset.New(0)
	}
	cfg := DefaultConfig()
	eng, err := NewEngine(cfg, tr, datasets, radio.NewModel(false), nil)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// BenchmarkCandidatePairs measures per-tick pair enumeration at scaled
// fleet sizes: the spatial-index fast path against the pre-index O(N²)
// double loop (DisableSpatialIndex). BENCH_*.json tracks both so
// cmd/bench-compare catches regressions on either.
func BenchmarkCandidatePairs(b *testing.B) {
	score := func(a, c int) float64 { return 1 }
	for _, n := range []int{16, 64, 256} {
		eng := benchEngine(b, n)
		for _, path := range []struct {
			name    string
			disable bool
		}{{"index", false}, {"brute", true}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, path.name), func(b *testing.B) {
				eng.Cfg.DisableSpatialIndex = path.disable
				b.ReportAllocs()
				var pairs int
				for i := 0; i < b.N; i++ {
					pairs = len(eng.CandidatePairs(score))
				}
				b.ReportMetric(float64(pairs), "pairs")
			})
		}
	}
}
