package core

import (
	"fmt"

	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
	"lbchat/internal/telemetry"
)

// EnsureCoreset returns the vehicle's current coreset, (re)building it with
// Algorithm 1 when it is missing or stale (older than CoresetRefresh).
// Between rebuilds the coreset is maintained by the cheap merge-and-reduce
// path, matching §III-D's two-speed updating.
//
// Construction guard: layering scores every sample with the current model;
// on large expanded datasets we layer a uniformly drawn subsample of
// LayeringSample items and scale coreset weights so they still represent the
// full dataset's total weight.
func (e *Engine) EnsureCoreset(v *Vehicle) (*coreset.Coreset, error) {
	if v.Core != nil && e.now-v.CoreBuiltAt < e.Cfg.CoresetRefresh {
		return v.Core, nil
	}
	if v.Data.Len() == 0 {
		return nil, fmt.Errorf("core: vehicle %d has no local data", v.ID)
	}
	size := e.Cfg.CoresetSize
	if v.CoresetSizeOverride > 0 {
		size = v.CoresetSizeOverride
	}
	base := v.Data
	if limit := e.Cfg.LayeringSample; limit > 0 && base.Len() > limit {
		perm := v.rng.Perm(base.Len())[:limit]
		base = v.Data.Subset(perm)
	}
	losses := v.Policy.PerSampleLosses(base.Items())
	method := e.Cfg.CoresetMethod
	if method == 0 {
		method = coreset.MethodLayered
	}
	cs, err := coreset.BuildWith(method, base, losses, size, v.rng.Derive("coreset"))
	if err != nil {
		return nil, fmt.Errorf("core: building coreset for vehicle %d: %w", v.ID, err)
	}
	// Rescale so the coreset represents the FULL dataset's weight, not just
	// the layered subsample's.
	if subTotal := base.TotalWeight(); subTotal > 0 {
		scale := v.Data.TotalWeight() / subTotal
		if scale != 1 {
			scaled := dataset.New(cs.Len())
			for _, it := range cs.Items() {
				scaled.Add(it.Sample, it.Weight*scale)
			}
			cs = coreset.FromDataset(scaled)
		}
	}
	v.Core = cs
	v.CoreBuiltAt = e.now
	e.Emit(telemetry.CoresetRebuilt{Time: e.now, Vehicle: v.ID, Size: cs.Len()})
	return cs, nil
}

// AbsorbCoreset expands the vehicle's local dataset with a received peer
// coreset (uniform original weights, §III-D) and refreshes the vehicle's own
// coreset via merge-and-reduce so it summarizes the expanded dataset.
func (e *Engine) AbsorbCoreset(v *Vehicle, peer *coreset.Coreset) error {
	v.Data.Absorb(peer.Data(), v.LocalWeight)
	e.Emit(telemetry.CoresetAbsorbed{Time: e.now, Vehicle: v.ID, Frames: peer.Len()})
	if v.Core == nil {
		return nil
	}
	size := e.Cfg.CoresetSize
	if v.CoresetSizeOverride > 0 {
		size = v.CoresetSizeOverride
	}
	prev := v.Core.Len()
	merged, err := coreset.MergeReduce(v.Core, peer, size, v.rng.Derive("reduce"))
	if err != nil {
		return fmt.Errorf("core: merge-reduce for vehicle %d: %w", v.ID, err)
	}
	if dropped := prev + peer.Len() - merged.Len(); dropped > 0 {
		e.Emit(telemetry.CoresetEvicted{Time: e.now, Vehicle: v.ID, Dropped: dropped})
	}
	v.Core = merged
	return nil
}

// EvalSubset returns up to cfg.EvalSubset items of a weighted set, drawn
// uniformly without replacement with the vehicle's stream. Value assessments
// run on this subset to bound computation per chat.
func (e *Engine) EvalSubset(v *Vehicle, items []dataset.Weighted) []dataset.Weighted {
	limit := e.Cfg.EvalSubset
	if limit <= 0 || len(items) <= limit {
		return items
	}
	perm := v.rng.Perm(len(items))[:limit]
	out := make([]dataset.Weighted, limit)
	for i, idx := range perm {
		out[i] = items[idx]
	}
	return out
}
