package core

import (
	"fmt"

	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
	"lbchat/internal/telemetry"
)

// EnsureCoreset returns the vehicle's current coreset, (re)building it when
// it is missing or stale (older than CoresetRefresh). Between rebuilds the
// coreset is maintained by the cheap merge-and-reduce path, matching
// §III-D's two-speed updating.
//
// The default refresh is incremental (DESIGN.md §14): a merge-and-reduce
// partition tree over the vehicle's append-only dataset rebuilds only the
// leaves dirtied since the last refresh (absorbed peer frames, salvages)
// and re-merges their root paths, so refresh cost scales with the data
// added rather than the dataset size. Config.DisableIncrementalCoreset
// selects the original arm instead: one full Algorithm-1 rebuild over a
// LayeringSample-bounded subsample of the whole dataset.
//
// Construction guard (full arm): layering scores every sample with the
// current model; on large expanded datasets we layer a uniformly drawn
// subsample of LayeringSample items and scale coreset weights so they still
// represent the full dataset's total weight. The incremental arm bounds
// scoring per leaf instead (TreeConfig.LeafSample).
func (e *Engine) EnsureCoreset(v *Vehicle) (*coreset.Coreset, error) {
	if v.Core != nil && e.now-v.CoreBuiltAt < e.Cfg.CoresetRefresh {
		return v.Core, nil
	}
	if v.Data.Len() == 0 {
		return nil, fmt.Errorf("core: vehicle %d has no local data", v.ID)
	}
	size := e.Cfg.CoresetSize
	if v.CoresetSizeOverride > 0 {
		size = v.CoresetSizeOverride
	}
	if !e.Cfg.DisableIncrementalCoreset {
		return e.refreshCoresetTree(v, size)
	}
	base := v.Data
	if limit := e.Cfg.LayeringSample; limit > 0 && base.Len() > limit {
		perm := v.rng.Perm(base.Len())[:limit]
		base = v.Data.Subset(perm)
	}
	losses := v.Policy.PerSampleLosses(base.Items())
	method := e.Cfg.CoresetMethod
	if method == 0 {
		method = coreset.MethodLayered
	}
	cs, err := coreset.BuildWith(method, base, losses, size, v.rng.Derive("coreset"))
	if err != nil {
		return nil, fmt.Errorf("core: building coreset for vehicle %d: %w", v.ID, err)
	}
	// Rescale so the coreset represents the FULL dataset's weight, not just
	// the layered subsample's.
	if subTotal := base.TotalWeight(); subTotal > 0 {
		scale := v.Data.TotalWeight() / subTotal
		if scale != 1 {
			scaled := dataset.New(cs.Len())
			for _, it := range cs.Items() {
				scaled.Add(it.Sample, it.Weight*scale)
			}
			cs = coreset.FromDataset(scaled)
		}
	}
	v.Core = cs
	v.CoreBuiltAt = e.now
	e.Emit(telemetry.CoresetRebuilt{Time: e.now, Vehicle: v.ID, Size: cs.Len()})
	return cs, nil
}

// refreshCoresetTree is the incremental refresh arm: it lazily creates the
// vehicle's partition tree, rebuilds the dirty leaves with the current
// policy's losses, and re-merges only the invalidated tree paths. The
// emitted CoresetRebuilt event matches the full arm's; the leaf/merge stats
// flow through the CoresetObserver side channel only, so the event stream
// stays identical in shape across arms and worker/shard counts.
func (e *Engine) refreshCoresetTree(v *Vehicle, size int) (*coreset.Coreset, error) {
	if v.Tree == nil {
		method := e.Cfg.CoresetMethod
		if method == 0 {
			method = coreset.MethodLayered
		}
		v.Tree = coreset.NewTree(coreset.TreeConfig{Method: method})
	}
	cs, stats, err := v.Tree.Refresh(v.Data, size, v.Policy.PerSampleLosses, v.rng.Derive("coreset-tree"))
	if err != nil {
		return nil, fmt.Errorf("core: incremental coreset refresh for vehicle %d: %w", v.ID, err)
	}
	v.Core = cs
	v.CoreBuiltAt = e.now
	e.Emit(telemetry.CoresetRebuilt{Time: e.now, Vehicle: v.ID, Size: cs.Len()})
	if e.coresetObs != nil {
		e.coresetObs.ObserveCoresetRefresh(telemetry.CoresetRefresh{
			Vehicle:       v.ID,
			LeavesRebuilt: stats.LeavesRebuilt,
			LeavesCached:  stats.LeavesCached,
			TreeMerges:    stats.TreeMerges,
		})
	}
	return cs, nil
}

// AbsorbCoreset expands the vehicle's local dataset with a received peer
// coreset (uniform original weights, §III-D) and refreshes the vehicle's own
// coreset via merge-and-reduce so it summarizes the expanded dataset.
// The vehicle's partition tree, when present, is extended over the appended
// range so the next incremental refresh rebuilds exactly the leaves the
// absorb dirtied — this covers every absorb path (full coresets, SCO, and
// weight-discounted partial salvages alike append through here).
func (e *Engine) AbsorbCoreset(v *Vehicle, peer *coreset.Coreset) error {
	v.Data.Absorb(peer.Data(), v.LocalWeight)
	if v.Tree != nil {
		v.Tree.Extend(v.Data.Len())
	}
	e.Emit(telemetry.CoresetAbsorbed{Time: e.now, Vehicle: v.ID, Frames: peer.Len()})
	if v.Core == nil {
		return nil
	}
	size := e.Cfg.CoresetSize
	if v.CoresetSizeOverride > 0 {
		size = v.CoresetSizeOverride
	}
	prev := v.Core.Len()
	merged, err := coreset.MergeReduce(v.Core, peer, size, v.rng.Derive("reduce"))
	if err != nil {
		return fmt.Errorf("core: merge-reduce for vehicle %d: %w", v.ID, err)
	}
	if dropped := prev + peer.Len() - merged.Len(); dropped > 0 {
		e.Emit(telemetry.CoresetEvicted{Time: e.now, Vehicle: v.ID, Dropped: dropped})
	}
	v.Core = merged
	return nil
}

// EvalSubset returns up to cfg.EvalSubset items of a weighted set, drawn
// uniformly without replacement with the vehicle's stream. Value assessments
// run on this subset to bound computation per chat.
func (e *Engine) EvalSubset(v *Vehicle, items []dataset.Weighted) []dataset.Weighted {
	limit := e.Cfg.EvalSubset
	if limit <= 0 || len(items) <= limit {
		return items
	}
	perm := v.rng.Perm(len(items))[:limit]
	out := make([]dataset.Weighted, limit)
	for i, idx := range perm {
		out[i] = items[idx]
	}
	return out
}
