package core

import (
	"bytes"
	"testing"

	"lbchat/internal/faults"
	"lbchat/internal/telemetry"
)

// encodeStream renders a memory sink's events as JSONL lines for
// byte-comparison.
func encodeStream(t *testing.T, mem *telemetry.MemorySink) [][]byte {
	t.Helper()
	events := mem.Events()
	lines := make([][]byte, 0, len(events))
	for _, ev := range events {
		line, err := telemetry.Encode(ev)
		if err != nil {
			t.Fatalf("encoding %s: %v", ev.Kind(), err)
		}
		lines = append(lines, line)
	}
	return lines
}

// sameStream asserts two encoded event streams are byte-identical.
func sameStream(t *testing.T, label string, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events vs %d", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: event %d differs:\ngot:  %s\nwant: %s", label, i, got[i], want[i])
		}
	}
}

// TestCalendarDueMatchesLegacyScan is the scheduler's A/B acceptance
// criterion at unit scale: the calendar-queue and legacy-due-scan arms must
// produce byte-identical telemetry event streams and bit-identical loss
// curves — the calendar changes how due vehicles are discovered, never
// which vehicles are due or in what order they are surfaced.
func TestCalendarDueMatchesLegacyScan(t *testing.T) {
	run := func(legacy bool) ([][]byte, []float64) {
		mem := telemetry.NewMemorySink()
		eng, _ := tinyEnvWith(t, 3, true, func(c *Config) {
			c.LegacyDueScan = legacy
			c.Telemetry = mem
		})
		if err := eng.Run(NewLbChat(), 300); err != nil {
			t.Fatal(err)
		}
		var curve []float64
		for _, p := range eng.LossCurve.Points {
			curve = append(curve, p.Value)
		}
		return encodeStream(t, mem), curve
	}
	calStream, calCurve := run(false)
	legStream, legCurve := run(true)
	if len(calStream) == 0 {
		t.Fatal("calendar run emitted no events")
	}
	sameStream(t, "calendar vs legacy", calStream, legStream)
	if len(calCurve) != len(legCurve) {
		t.Fatalf("curve lengths %d vs %d", len(calCurve), len(legCurve))
	}
	for i := range calCurve {
		if calCurve[i] != legCurve[i] {
			t.Fatalf("curve point %d: %v vs %v", i, calCurve[i], legCurve[i])
		}
	}
}

// TestChurnRequeuesCalendarEntries proves departed vehicles are moved
// forward on the wheel, not skipped forever and not stranded: under heavy
// churn the calendar arm's event stream still matches the legacy scan byte
// for byte (a departed vehicle's schedule advances identically in both
// arms), at least one vehicle actually departed while due, and at the end
// of the run every vehicle holds exactly one live future entry on the
// wheel.
func TestChurnRequeuesCalendarEntries(t *testing.T) {
	churn := faults.Config{ChurnPerHour: 90, AwayMeanSecs: 60}
	run := func(legacy bool) (*Engine, [][]byte) {
		mem := telemetry.NewMemorySink()
		eng, _ := tinyEnvWith(t, 3, true, func(c *Config) {
			c.LegacyDueScan = legacy
			c.Telemetry = mem
			c.Faults = churn
		})
		if err := eng.Run(NewLbChat(), 300); err != nil {
			t.Fatal(err)
		}
		return eng, encodeStream(t, mem)
	}
	calEng, calStream := run(false)
	_, legStream := run(true)
	sameStream(t, "churned calendar vs legacy", calStream, legStream)

	departs := 0
	for _, line := range calStream {
		if bytes.Contains(line, []byte(telemetry.FaultChurnDepart)) {
			departs++
		}
	}
	if departs == 0 {
		t.Fatal("churn regime produced no departures; the re-queue path was not exercised")
	}
	if got, want := calEng.calendar.Len(), len(calEng.Vehicles); got != want {
		t.Fatalf("wheel holds %d scheduled vehicles after the run, want %d (one live entry each)",
			got, want)
	}
	for _, v := range calEng.Vehicles {
		tick, ok := calEng.calendar.Scheduled(int32(v.ID))
		if !ok {
			t.Fatalf("vehicle %d fell off the wheel", v.ID)
		}
		if tick < calEng.tickIndex {
			t.Fatalf("vehicle %d scheduled at past tick %d (cursor %d): stranded behind the cursor",
				v.ID, tick, calEng.tickIndex)
		}
	}
}

// TestProbeLossMeanReusesScratch pins the satellite fix: steady-state probe
// evaluations must reuse the engine-held loss scratch rather than allocate a
// fresh []float64 per call (the model's own forward-pass allocations are out
// of scope here — the test checks the scratch backing array is stable).
func TestProbeLossMeanReusesScratch(t *testing.T) {
	eng, _ := tinyEnv(t, 3, true)
	eng.probeLossMean() // warm the scratch
	if len(eng.lossScratch) != len(eng.Vehicles) {
		t.Fatalf("scratch sized %d, want %d", len(eng.lossScratch), len(eng.Vehicles))
	}
	before := &eng.lossScratch[0]
	for i := 0; i < 10; i++ {
		eng.probeLossMean()
	}
	if &eng.lossScratch[0] != before {
		t.Fatal("probeLossMean reallocated its loss scratch on a steady-state call")
	}
}
