package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"lbchat/internal/compress"
	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
	"lbchat/internal/faults"
	"lbchat/internal/geom"
	"lbchat/internal/metrics"
	"lbchat/internal/model"
	"lbchat/internal/parallel"
	"lbchat/internal/radio"
	"lbchat/internal/sched"
	"lbchat/internal/shard"
	"lbchat/internal/simrand"
	"lbchat/internal/spatial"
	"lbchat/internal/telemetry"
	"lbchat/internal/trace"
)

// Config parameterizes the co-simulation.
type Config struct {
	// Seed drives every random stream in the run.
	Seed uint64
	// TickSeconds is the engine step (s).
	TickSeconds float64
	// TrainInterval is the virtual time between local training steps (s).
	TrainInterval float64
	// BatchSize is the per-step training batch.
	BatchSize int
	// RecordInterval is the loss-curve sampling period (s).
	RecordInterval float64
	// TimeBudget is T_B, the per-pair exchange budget (15 s in the paper).
	TimeBudget float64
	// ContactHorizon caps route-based contact-duration estimation (s).
	ContactHorizon float64
	// CoresetSize is the coreset budget |C| (150 frames in the paper).
	CoresetSize int
	// CoresetMethod selects the construction algorithm (Algorithm 1 layered
	// sampling by default; §V notes sensitivity- and clustering-based
	// alternatives plug in unchanged).
	CoresetMethod coreset.Method
	// CoresetRefresh is the minimum age (s) before a vehicle rebuilds its
	// coreset from scratch with Algorithm 1; between rebuilds the cheap
	// merge-and-reduce path maintains it.
	CoresetRefresh float64
	// LayeringSample bounds how many local samples are scored to layer the
	// dataset during coreset construction (computation guard).
	LayeringSample int
	// EvalSubset bounds how many coreset samples value assessments use.
	EvalSubset int
	// PsiSamples are the compression levels sampled when fitting φ.
	PsiSamples []float64
	// LambdaC is the Eq. (7) time-award coefficient (loss units per second).
	LambdaC float64
	// ChatCooldown is the minimum time between chats initiated by one
	// vehicle (s); it models the duty cycle of the exchange radio.
	ChatCooldown float64
	// PairCooldown is the minimum re-chat interval for one vehicle pair (s).
	PairCooldown float64
	// BandwidthMinBps and BandwidthMaxBps bound per-vehicle available
	// bandwidth, sampled uniformly per vehicle.
	BandwidthMinBps, BandwidthMaxBps float64
	// PaperModelBytes is the over-the-air size of one uncompressed model.
	// The simulation trains compact stand-in networks, but the radio layer
	// must see the PAPER's payload economics — a 52 MB imitation model
	// takes ≈13.4 s at 31 Mbps, comparable to T_B, which is the whole
	// tension LbChat's compression optimization resolves.
	PaperModelBytes int
	// PaperFrameBytes is the over-the-air size of one coreset frame (the
	// paper's 150-frame coreset is ≈0.6 MB ⇒ 4 kB per frame).
	PaperFrameBytes int
	// CompressionScheme selects how model payloads are compressed for the
	// air: top-k delta sparsification [22] (default) or unbiased stochastic
	// quantization — the alternative §III-C notes can be applied unchanged.
	CompressionScheme CompressionScheme
	// CompressionConcentration calibrates the stand-in model's top-k
	// degradation to a large net's. Big over-parameterized models tolerate
	// top-k sparsification gracefully (updates concentrate in few large
	// coordinates [20][22]); a compact dense stand-in does not. When a
	// payload is compressed to byte-fraction ψ, the stand-in keeps
	// ψ^CompressionConcentration of its delta coordinates, reproducing the
	// gentle loss-vs-ψ curve the paper's 52 MB model would show. 1 disables
	// the calibration.
	CompressionConcentration float64
	// LogChats prints per-chat decision traces (value assessments, fitted φ
	// samples, Eq. (7) solutions) to standard error — a debugging aid.
	LogChats bool
	// Workers bounds the engine's per-tick parallelism (local training and
	// probe evaluation fan out across vehicles). 0 means one worker per
	// available CPU; 1 forces the serial path. Results are bit-identical at
	// every worker count: vehicles touch only private state during the
	// parallel phases and float reductions run in vehicle-index order.
	Workers int
	// Telemetry receives the run's structured event stream (chats,
	// transfers, coreset maintenance, train steps, contact windows). nil
	// disables telemetry at ~zero hot-path cost: every emission site checks
	// the sink before constructing an event. Telemetry never consumes
	// simulation randomness, so run results are bit-identical with any sink
	// (or none), and events are emitted in deterministic order at every
	// worker count.
	Telemetry telemetry.Sink
	// Faults configures the deterministic fault-injection layer
	// (internal/faults, DESIGN.md §9). The zero value disables it: no
	// injector is built, no extra randomness is drawn, and runs behave
	// exactly as without the layer.
	Faults faults.Config
	// DisableIncrementalCoreset forces EnsureCoreset down the original full
	// Algorithm-1 rebuild — rescoring a LayeringSample-bounded subsample of
	// the whole dataset every CoresetRefresh interval — instead of the
	// merge-and-reduce partition tree that rebuilds only dirty leaves
	// (DESIGN.md §14). The two arms produce equal-weight, comparable-quality
	// summaries but not identical ones (they score different sample pools),
	// so the flag selects an arm rather than a bit-identical fast path; each
	// arm is individually deterministic at every worker and shard count. It
	// exists as the A/B reference for quality tests and the full-rebuild
	// benchmark baseline.
	DisableIncrementalCoreset bool
	// LegacyDueScan forces trainTick's due-vehicle discovery down the
	// original per-tick O(N) serial scan of the whole fleet instead of the
	// due-time calendar queue (internal/sched.Calendar, DESIGN.md §15),
	// which pops exactly the due vehicles in O(k). Results are byte-identical
	// either way — both arms surface the same due sets in the same ascending
	// vehicle order — so the flag exists as the A/B reference for determinism
	// tests and the trainTick benchmark baseline, not as a tuning knob.
	LegacyDueScan bool
	// DisableSpatialIndex forces pair enumeration and contact scanning down
	// the pre-index O(N²) loops (DESIGN.md §10). Results are bit-identical
	// either way — the flag exists as the A/B reference for determinism
	// tests and the brute-force benchmark baseline, not as a tuning knob.
	// It takes precedence over Shards.
	DisableSpatialIndex bool
	// Shards partitions encounter scans into grid regions (internal/shard,
	// DESIGN.md §11): each region enumerates its radio-range pairs locally
	// (with halo copies of border vehicles) on the parallel pool, and the
	// per-region outputs merge back into the canonical (A, B) order. 0 or 1
	// keeps today's single-index path; any value produces bit-identical
	// results — sharding changes only how the scan is scheduled.
	Shards int
	// TraceWindowBehind is the trailing slack (s) a bounded sliding-window
	// trace source retains behind the engine cursor (DESIGN.md §12). The
	// engine reserves its own leading span (ContactHorizon + TimeBudget)
	// automatically; this knob only affects memory, never results, and 0
	// takes the trace package default. Ignored for resident traces.
	TraceWindowBehind float64
	// Model configures the policy architecture.
	Model model.Config
}

// DefaultConfig returns the experiment defaults (paper values where the
// paper gives them).
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		TickSeconds:     1,
		TrainInterval:   2,
		BatchSize:       16,
		RecordInterval:  60,
		TimeBudget:      15,
		ContactHorizon:  120,
		CoresetSize:     150,
		CoresetMethod:   coreset.MethodLayered,
		CoresetRefresh:  120,
		LayeringSample:  384,
		EvalSubset:      64,
		PsiSamples:      []float64{0.05, 0.2, 0.5, 1.0},
		LambdaC:         0.0008,
		ChatCooldown:    75,
		PairCooldown:    150,
		BandwidthMinBps: 20e6,
		BandwidthMaxBps: 31e6,
		PaperModelBytes: 52_000_000,
		PaperFrameBytes: 4_000,

		CompressionConcentration: 1.0 / 3,
		Model:                    model.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TickSeconds <= 0:
		return fmt.Errorf("core: non-positive tick %g", c.TickSeconds)
	case c.TrainInterval <= 0:
		return fmt.Errorf("core: non-positive train interval %g", c.TrainInterval)
	case c.BatchSize <= 0:
		return fmt.Errorf("core: non-positive batch size %d", c.BatchSize)
	case c.TimeBudget <= 0:
		return fmt.Errorf("core: non-positive time budget %g", c.TimeBudget)
	case c.CoresetSize <= 0:
		return fmt.Errorf("core: non-positive coreset size %d", c.CoresetSize)
	case c.BandwidthMinBps <= 0 || c.BandwidthMaxBps < c.BandwidthMinBps:
		return fmt.Errorf("core: invalid bandwidth range [%g, %g]", c.BandwidthMinBps, c.BandwidthMaxBps)
	case c.PaperModelBytes <= 0 || c.PaperFrameBytes <= 0:
		return fmt.Errorf("core: non-positive paper payload sizes (%d, %d)", c.PaperModelBytes, c.PaperFrameBytes)
	case c.Shards < 0:
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return c.Model.Validate()
}

// Vehicle is one fleet member's live training state.
type Vehicle struct {
	// ID indexes the vehicle in the fleet and the mobility trace.
	ID int
	// Policy is the local model x_i.
	Policy *model.Policy
	// Data is the (expanding) local dataset D_i.
	Data *dataset.Dataset
	// Core is the current coreset C_i (nil until first built).
	Core *coreset.Coreset
	// Tree is the vehicle's merge-and-reduce partition tree over Data,
	// lazily created by the incremental EnsureCoreset path (nil until the
	// first incremental refresh, and always nil when
	// Config.DisableIncrementalCoreset is set). Absorbs extend it so
	// appended ranges mark their covering leaves dirty.
	Tree *coreset.Tree
	// CoreBuiltAt is when the coreset was last rebuilt via Algorithm 1.
	CoreBuiltAt float64
	// Bandwidth is the vehicle's available bandwidth B_i (bits/s).
	Bandwidth float64
	// BusyUntil blocks new chats while a pairwise exchange is in flight.
	BusyUntil float64
	// NextChatAt enforces the chat cooldown.
	NextChatAt float64
	// Recv counts model-transfer outcomes toward the §IV-C receive rate.
	Recv metrics.ReceiveStats

	// LocalWeight is the uniform original weight w(d) for absorbed samples.
	LocalWeight float64
	// CoresetSizeOverride, when positive, replaces Config.CoresetSize for
	// this vehicle — the adaptive-coreset-size variant tunes it per vehicle
	// from observed contact durations.
	CoresetSizeOverride int
	// ContactEMA tracks an exponential moving average of this vehicle's
	// observed contact durations (s); 0 until the first encounter.
	ContactEMA float64

	nextTrain float64
	lastChat  map[int]float64
	rng       *simrand.Rand
}

// RNG returns the vehicle's private random stream.
func (v *Vehicle) RNG() *simrand.Rand { return v.rng }

// Protocol is a pluggable communication strategy evaluated on the engine.
type Protocol interface {
	// Name labels metrics and output rows.
	Name() string
	// Setup runs once before the simulation loop.
	Setup(e *Engine) error
	// OnTick runs every engine tick after local training and event
	// processing; it is where encounters are detected and exchanges happen.
	OnTick(e *Engine, now float64)
}

// Engine is the co-simulation.
type Engine struct {
	Cfg      Config
	Vehicles []*Vehicle
	// Trace is the fleet mobility source: a resident *trace.Trace or a
	// bounded sliding *trace.Window. The engine advances it once per tick
	// and only ever reads [now, now + ContactHorizon + TimeBudget], which
	// is the span it reserves on windowed sources.
	Trace trace.Source
	Radio *radio.Model
	Probe []dataset.Weighted

	// LossCurve is the average probe loss over time.
	LossCurve metrics.Curve
	// Events is the deferred-effect queue (transfer completions).
	Events sched.Queue

	rng        *simrand.Rand
	now        float64
	nextRecord float64
	initFlat   []float64

	// tickIndex counts completed engine ticks; it is the integer key of the
	// due-time calendar (e.now accumulates float rounding, tickIndex never
	// does).
	tickIndex int64
	// invTick is 1/TickSeconds, hoisted so dueTick multiplies instead of
	// divides on every re-enqueue.
	invTick float64
	// calendar is the due-time calendar queue over vehicle ids (nil on the
	// -legacy-due-scan arm): each vehicle is enqueued at the tick its
	// nextTrain comes due and re-enqueued after every step, so discovering
	// the tick's due set costs O(due), not O(fleet). Buckets are keyed
	// never-late (see dueTick) and lazily re-checked at dequeue, so float
	// drift between e.now and tickIndex can cost a harmless early pop but
	// never a late one.
	calendar *sched.Calendar
	// dueIDs and popScratch are trainTick's reused id scratch: the tick's
	// due set in ascending vehicle order, and the raw calendar pop feeding
	// it. Ids, not pointers, so the scratch pins no departed vehicles.
	dueIDs     []int32
	popScratch []int32
	// allIDs is the static identity id list [0, n), the whole-fleet working
	// set probe evaluation dispatches over.
	allIDs []int32
	// stepFn, stepObsFn, and probeFn are the per-vehicle phase bodies
	// (stepDue, stepDueObserved, probeOne) bound once at construction, so
	// dispatching a tick's phases allocates no closures.
	stepFn    func(i int)
	stepObsFn func(i int)
	probeFn   func(i int)

	// tel and wall cache the configured telemetry sink and its optional
	// wall-clock side channel; both nil when telemetry is disabled.
	tel  telemetry.Sink
	wall telemetry.WallObserver
	// stepScratch carries per-vehicle training outcomes out of the parallel
	// phase so events are emitted serially in vehicle-index order.
	stepScratch []stepOutcome
	// contactOpen tracks open contact windows (key {a,b}, a < b → open
	// time) for contact open/close telemetry; nil when telemetry is off.
	contactOpen map[[2]int]float64
	// faults is the run's fault injector; nil when Cfg.Faults is the zero
	// value, in which case every fault hook is a no-op.
	faults *faults.Injector

	// spatialIdx accelerates radio-range queries (candidate pairs, contact
	// scans); its cell size is the radio range. The pts/pair/free/open
	// slices are reused scratch for the per-tick rebuild and enumeration,
	// and matchTaken is GreedyMatch's reusable vehicle-taken set. All of
	// them are touched only from the serial section of a tick.
	spatialIdx  *spatial.Index
	spatialPts  []geom.Point
	pairScratch []spatial.Pair
	freeScratch []int
	openScratch [][2]int
	matchTaken  []bool
	// shardScan replaces spatialIdx for pair enumeration when Cfg.Shards > 1
	// (and the brute-force flag is off); shardObs is the telemetry sink's
	// optional per-shard statistics side channel.
	shardScan *shard.Scanner
	shardObs  telemetry.ShardObserver
	// grouper batches per-vehicle phase work (train steps, probe
	// evaluations) by owning grid region when Cfg.Shards > 1, using the same
	// region geometry as shardScan; schedObs is the sink's optional
	// scheduling-statistics side channel, and lossScratch the reused
	// per-vehicle loss buffer probe evaluation reduces from in id order.
	grouper     *shard.Grouper
	schedObs    telemetry.SchedObserver
	lossScratch []float64
	// coresetObs is the telemetry sink's optional incremental-refresh side
	// channel: leaf rebuild/cache and tree-merge counts flow through it,
	// never the event stream, so both coreset arms emit identical event
	// kinds.
	coresetObs telemetry.CoresetObserver
}

// stepOutcome is one vehicle's training work within one tick.
type stepOutcome struct {
	steps  int
	loss   float64
	wallNs int64
}

// NewEngine builds a fleet over the given mobility trace and local datasets.
// All vehicles start from an identical model initialization (the paper's
// assumption) but distinct random streams.
//
// The trace may be resident or a bounded sliding window (trace.Source);
// windowed sources are reserved to the engine's lookahead — ContactHorizon
// plus TimeBudget past the cursor — and advanced once per tick, so results
// are bit-identical either way while a streamed run's trace working set
// stays O(window) chunks.
func NewEngine(cfg Config, tr trace.Source, datasets []*dataset.Dataset, rm *radio.Model, probe []dataset.Weighted) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.NumVehicles() != len(datasets) {
		return nil, fmt.Errorf("core: trace has %d vehicles, got %d datasets", tr.NumVehicles(), len(datasets))
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	root := simrand.New(cfg.Seed)
	e := &Engine{
		Cfg:   cfg,
		Trace: tr,
		Radio: rm,
		Probe: probe,
		rng:   root.Derive("engine"),
		tel:   cfg.Telemetry,
	}
	e.spatialIdx = spatial.New(rm.Params.MaxRangeMeters)
	if cfg.Shards > 1 && !cfg.DisableSpatialIndex {
		e.shardScan = shard.NewScanner(cfg.Shards, cfg.Workers)
	}
	if cfg.Shards > 1 {
		e.grouper = shard.NewGrouper(cfg.Shards)
	}
	e.invTick = 1 / cfg.TickSeconds
	e.stepFn = e.stepDue
	e.stepObsFn = e.stepDueObserved
	e.probeFn = e.probeOne
	if !cfg.LegacyDueScan {
		e.calendar = sched.NewCalendar(len(datasets))
	}
	if w, ok := e.tel.(telemetry.WallObserver); ok {
		e.wall = w
	}
	if o, ok := e.tel.(telemetry.ShardObserver); ok {
		e.shardObs = o
	}
	if o, ok := e.tel.(telemetry.CoresetObserver); ok {
		e.coresetObs = o
	}
	if o, ok := e.tel.(telemetry.SchedObserver); ok {
		e.schedObs = o
	}
	if e.tel != nil {
		e.contactOpen = make(map[[2]int]float64)
	}
	if w, ok := tr.(trace.Windowed); ok {
		// The engine's deepest lookahead past the cursor: a contact scan
		// reaches ContactHorizon ahead and an in-flight transfer samples
		// distances up to its deadline (≤ TimeBudget) past its start, with
		// one tick of slack for the snap-to-tick clamp.
		w.Reserve(cfg.TraceWindowBehind, cfg.ContactHorizon+cfg.TimeBudget+cfg.TickSeconds)
		if obs, ok := e.tel.(telemetry.TraceObserver); ok {
			w.SetChunkObserver(func(op trace.ChunkOp) {
				obs.ObserveTraceChunk(telemetry.TraceChunk{
					Op:       op.Kind.String(),
					Chunk:    op.Chunk,
					Ticks:    op.Ticks,
					Resident: op.Resident,
					Depth:    op.Depth,
					Retries:  op.Retries,
					WaitNs:   op.WaitNs,
				})
			})
		}
		if err := w.Advance(0); err != nil {
			return nil, fmt.Errorf("core: loading initial trace window: %w", err)
		}
	}
	if cfg.Faults.Enabled() {
		e.faults = faults.NewInjector(cfg.Faults, root.Derive("faults"), tr.NumVehicles())
	}
	initPolicy, err := model.New(cfg.Model, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: building reference init: %w", err)
	}
	e.initFlat = initPolicy.Flat()
	for i, d := range datasets {
		pol, err := model.New(cfg.Model, cfg.Seed) // same seed: identical init
		if err != nil {
			return nil, fmt.Errorf("core: building vehicle %d policy: %w", i, err)
		}
		vr := root.DeriveIndexed("vehicle", i)
		e.Vehicles = append(e.Vehicles, &Vehicle{
			ID:          i,
			Policy:      pol,
			Data:        d,
			Bandwidth:   vr.Uniform(cfg.BandwidthMinBps, cfg.BandwidthMaxBps),
			LocalWeight: 1,
			lastChat:    make(map[int]float64),
			rng:         vr,
			// Stagger training so vehicles do not all step on the same tick.
			nextTrain: vr.Uniform(0, cfg.TrainInterval),
		})
	}
	e.allIDs = make([]int32, len(e.Vehicles))
	for i := range e.allIDs {
		e.allIDs[i] = int32(i)
	}
	if e.calendar != nil {
		for _, v := range e.Vehicles {
			e.calendar.Schedule(int32(v.ID), e.dueTick(v.nextTrain))
		}
	}
	return e, nil
}

// Now returns the current virtual time (s).
func (e *Engine) Now() float64 { return e.now }

// Run drives the co-simulation for duration seconds of virtual time under
// the given protocol.
func (e *Engine) Run(p Protocol, duration float64) error {
	return e.RunContext(context.Background(), p, duration)
}

// RunContext drives the co-simulation for duration seconds of virtual time
// under the given protocol, stopping early when ctx is canceled. The
// cancellation check runs once per tick; on cancellation the engine returns
// ctx.Err() with its state (loss curve, vehicles, receive stats) intact and
// consistent up to the last completed tick, so callers can surface a partial
// result.
//
// A windowed trace source is advanced to the cursor tick before each step;
// a chunk decode failure aborts the run with the position-annotated error,
// and a lookup that escapes the reserved window (a *trace.WindowViolation
// panic from the strict-window path) is returned as an error rather than
// crashing the process.
func (e *Engine) RunContext(ctx context.Context, p Protocol, duration float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*trace.WindowViolation); ok {
				err = fmt.Errorf("core: trace lookup escaped the reserved window at t=%gs: %w", e.now, v)
				return
			}
			panic(r)
		}
	}()
	if err := p.Setup(e); err != nil {
		return fmt.Errorf("core: protocol %s setup: %w", p.Name(), err)
	}
	e.LossCurve.Name = p.Name()
	e.recordLoss() // t = 0 baseline
	e.nextRecord = e.Cfg.RecordInterval
	for e.now < duration {
		if err := ctx.Err(); err != nil {
			e.closeContacts()
			return err
		}
		if err := e.advanceTrace(); err != nil {
			return err
		}
		e.Events.RunUntil(e.now)
		e.faultsTick()
		e.scanContacts()
		e.trainTick()
		p.OnTick(e, e.now)
		if e.now >= e.nextRecord {
			e.recordLoss()
			e.nextRecord += e.Cfg.RecordInterval
		}
		e.now += e.Cfg.TickSeconds
		e.tickIndex++
	}
	e.Events.RunUntil(duration)
	e.recordLoss()
	e.closeContacts()
	return nil
}

// advanceTrace moves a windowed trace source's cursor to the current tick.
// Resident traces make this a no-op.
func (e *Engine) advanceTrace() error {
	dt := e.Trace.DT()
	if dt <= 0 {
		return nil
	}
	if err := e.Trace.Advance(int(e.now / dt)); err != nil {
		return fmt.Errorf("core: advancing trace window to t=%gs: %w", e.now, err)
	}
	return nil
}

// TelemetryEnabled reports whether the engine has a telemetry sink, so
// protocols can skip building expensive event payloads.
func (e *Engine) TelemetryEnabled() bool { return e.tel != nil }

// Emit forwards an event to the configured telemetry sink; without one it
// is a no-op. Protocol implementations should guard construction of
// non-trivial events with TelemetryEnabled.
func (e *Engine) Emit(ev telemetry.Event) {
	if e.tel != nil {
		e.tel.Emit(ev)
	}
}

// scanContacts diffs the fleet's in-range pair set against the previous
// tick and emits contact open/close events. It runs only with telemetry
// enabled. The fast path enumerates in-range pairs via the spatial index
// and merges them with the sorted open-contact set; every pair produces at
// most one event and both sequences are (a, b)-ascending, so the merged
// event stream is byte-identical to the full O(N²) diff the brute-force
// path (Cfg.DisableSpatialIndex) still performs.
func (e *Engine) scanContacts() {
	if e.tel == nil {
		return
	}
	maxRange := e.Radio.Params.MaxRangeMeters
	if e.Cfg.DisableSpatialIndex {
		for a := 0; a < len(e.Vehicles); a++ {
			for b := a + 1; b < len(e.Vehicles); b++ {
				key := [2]int{a, b}
				openedAt, open := e.contactOpen[key]
				in := e.Trace.Distance(a, b, e.now) <= maxRange
				switch {
				case in && !open:
					e.contactOpen[key] = e.now
					e.tel.Emit(telemetry.ContactOpen{Time: e.now, A: a, B: b})
				case !in && open:
					delete(e.contactOpen, key)
					e.tel.Emit(telemetry.ContactClose{Time: e.now, A: a, B: b, Duration: e.now - openedAt})
				}
			}
		}
		return
	}
	// One contiguous row read covers every vehicle this tick; the copy into
	// scratch keeps the slice valid across the window's next Advance.
	pts := append(e.spatialPts[:0], e.Trace.RowAt(e.now)...)
	e.spatialPts = pts
	inRange := e.rangePairs(pts, maxRange)
	open := e.openScratch[:0]
	for key := range e.contactOpen {
		open = append(open, key)
	}
	e.openScratch = open
	sort.Slice(open, func(i, j int) bool {
		if open[i][0] != open[j][0] {
			return open[i][0] < open[j][0]
		}
		return open[i][1] < open[j][1]
	})
	i, j := 0, 0
	for i < len(inRange) || j < len(open) {
		var cmp int
		switch {
		case i >= len(inRange):
			cmp = 1
		case j >= len(open):
			cmp = -1
		default:
			in, op := inRange[i], open[j]
			switch {
			case in.A != op[0]:
				cmp = in.A - op[0]
			default:
				cmp = in.B - op[1]
			}
		}
		switch {
		case cmp < 0: // newly in range
			key := [2]int{inRange[i].A, inRange[i].B}
			e.contactOpen[key] = e.now
			e.tel.Emit(telemetry.ContactOpen{Time: e.now, A: key[0], B: key[1]})
			i++
		case cmp > 0: // left range
			key := open[j]
			openedAt := e.contactOpen[key]
			delete(e.contactOpen, key)
			e.tel.Emit(telemetry.ContactClose{Time: e.now, A: key[0], B: key[1], Duration: e.now - openedAt})
			j++
		default: // still in contact
			i++
			j++
		}
	}
}

// closeContacts flushes still-open contact windows at the end (or
// cancellation) of a run, in pair-index order.
func (e *Engine) closeContacts() {
	if e.tel == nil || len(e.contactOpen) == 0 {
		return
	}
	for a := 0; a < len(e.Vehicles); a++ {
		for b := a + 1; b < len(e.Vehicles); b++ {
			key := [2]int{a, b}
			if openedAt, open := e.contactOpen[key]; open {
				delete(e.contactOpen, key)
				e.tel.Emit(telemetry.ContactClose{Time: e.now, A: a, B: b, Duration: e.now - openedAt})
			}
		}
	}
}

// workers resolves the engine's per-tick parallelism.
func (e *Engine) workers() int { return parallel.Resolve(e.Cfg.Workers) }

// rangePairs enumerates the pairs of pts within distance r of each other in
// canonical ascending (A, B) order, through the sharded scanner when
// Cfg.Shards > 1 and the single spatial index otherwise. Both paths produce
// the identical pair sequence (the sharded merge restores canonical order
// and applies the same in-range predicate), so callers are oblivious to the
// topology. The result aliases e.pairScratch.
func (e *Engine) rangePairs(pts []geom.Point, r float64) []spatial.Pair {
	if e.shardScan != nil {
		e.pairScratch = e.shardScan.Scan(e.pairScratch[:0], pts, r)
		if e.shardObs != nil {
			stats := e.shardScan.Stats()
			for i, st := range stats {
				e.shardObs.ObserveShardScan(telemetry.ShardScan{
					Shard: i, Shards: len(stats),
					Locals: st.Locals, Guests: st.Guests, Pairs: st.Pairs,
				})
			}
		}
		return e.pairScratch
	}
	e.spatialIdx.Rebuild(pts)
	e.pairScratch = e.spatialIdx.Pairs(e.pairScratch[:0], r)
	return e.pairScratch
}

// dueTickEps bounds how close the tick-offset quotient must sit to an
// integer before dueTick refuses to round it up: far wider than any float
// drift the accumulated e.now can carry, far narrower than a real schedule
// offset.
const dueTickEps = 1e-7

// dueTick maps a virtual due time onto the calendar's integer tick key:
// the first tick whose now reaches at — the ceiling of the tick offset —
// except within dueTickEps of an integer quotient, where float error could
// over-round and fire a tick LATE (diverging from the legacy scan); there
// it conservatively floors instead. A conservative-early pop is always
// safe: calendarDue re-checks nextTrain against now and re-enqueues.
func (e *Engine) dueTick(at float64) int64 {
	if at <= e.now {
		return e.tickIndex
	}
	q := (at - e.now) * e.invTick
	k := int64(q)
	if q-float64(k) > dueTickEps {
		k++
	}
	return e.tickIndex + k
}

// reDueTick is dueTick for re-enqueues from the current tick's pop: at
// least one tick ahead, so a conservative-early pop cannot respin in place.
func (e *Engine) reDueTick(at float64) int64 {
	if t := e.dueTick(at); t > e.tickIndex {
		return t
	}
	return e.tickIndex + 1
}

// legacyDueScan is the original O(fleet) due discovery: a serial scan of
// every vehicle per tick. It is the -legacy-due-scan A/B arm and the
// benchmark baseline the calendar queue is gated against; nothing else may
// iterate the fleet in a per-tick hot path (internal/repolint enforces it).
func (e *Engine) legacyDueScan(due []int32) []int32 {
	for _, v := range e.Vehicles {
		if v.nextTrain <= e.now {
			if e.faults != nil && e.faults.Away(v.ID) {
				// Departed vehicles skip their due steps: the model stays
				// frozen (and stale on rejoin) but the schedule advances so
				// they do not burst-train on return.
				for v.nextTrain <= e.now {
					v.nextTrain += e.Cfg.TrainInterval
				}
				continue
			}
			due = append(due, int32(v.ID))
		}
	}
	return due
}

// calendarDue discovers the tick's due set by popping the calendar queue:
// O(1) on an idle tick, O(due) otherwise. Popped ids arrive in ascending
// vehicle order — the legacy scan's order — and each is re-checked against
// its float due time: a conservative-early pop goes back on the wheel, and
// a departed vehicle's schedule advances past now (exactly the legacy arm's
// bookkeeping) before it is re-enqueued for its post-absence step — churn
// moves wheel entries forward, it never strands or leaks them.
func (e *Engine) calendarDue(due []int32) ([]int32, int) {
	popped, buckets := e.calendar.PopDue(e.tickIndex, e.popScratch[:0])
	e.popScratch = popped
	if e.faults == nil {
		// Fault-free fast path: every on-time pop is due.
		for _, id := range popped {
			v := e.Vehicles[id]
			if v.nextTrain > e.now {
				e.calendar.Schedule(id, e.reDueTick(v.nextTrain))
				continue
			}
			due = append(due, id)
		}
		return due, buckets
	}
	for _, id := range popped {
		v := e.Vehicles[id]
		if v.nextTrain > e.now {
			e.calendar.Schedule(id, e.reDueTick(v.nextTrain))
			continue
		}
		if e.faults.Away(v.ID) {
			for v.nextTrain <= e.now {
				v.nextTrain += e.Cfg.TrainInterval
			}
			e.calendar.Schedule(id, e.reDueTick(v.nextTrain))
			continue
		}
		due = append(due, id)
	}
	return due, buckets
}

// dispatchPhase runs fn(i) for every position i in ids — a per-vehicle
// phase where each index touches only its own vehicle's state and writes
// results to index-addressed scratch. Sharded engines dispatch it as
// shard-major batches: ids grouped by owning grid region (the encounter
// scan's ownership), one parallel task per occupied region, so a batch's
// vehicles are spatially colocated — the layout a future multi-process
// shard split needs. Unsharded engines fan out per vehicle. Grouping only
// reorders execution; outputs reduce in canonical id order either way, so
// results are bit-identical at any workers × shards. Returns the number of
// shard batches dispatched (0 when unsharded).
func (e *Engine) dispatchPhase(ids []int32, fn func(i int)) int {
	if e.grouper == nil || len(ids) <= 1 {
		parallel.ForEach(e.workers(), len(ids), fn)
		return 0
	}
	// One contiguous row read covers every vehicle this tick; the copy into
	// scratch keeps the slice valid across the window's next Advance.
	pts := append(e.spatialPts[:0], e.Trace.RowAt(e.now)...)
	e.spatialPts = pts
	e.grouper.Group(ids, pts)
	batches := e.grouper.Batches()
	parallel.ForEach(e.workers(), batches, func(b int) {
		for _, pos := range e.grouper.Batch(b) {
			fn(int(pos))
		}
	})
	return batches
}

// stepDue runs vehicle dueIDs[i]'s pending local-SGD steps — the
// unobserved fast path: no outcome recording, no per-call scratch.
func (e *Engine) stepDue(i int) {
	v := e.Vehicles[e.dueIDs[i]]
	for v.nextTrain <= e.now {
		if batch := v.Data.SampleBatch(e.Cfg.BatchSize, v.rng); len(batch) > 0 {
			v.Policy.TrainStep(batch)
		}
		v.nextTrain += e.Cfg.TrainInterval
	}
}

// stepDueObserved is stepDue recording the vehicle's outcome (and wall
// time, when a wall observer is attached) into index-addressed stepScratch
// for trainTick's serial emission pass.
func (e *Engine) stepDueObserved(i int) {
	v := e.Vehicles[e.dueIDs[i]]
	var out stepOutcome
	var start time.Time
	if e.wall != nil {
		start = time.Now()
	}
	for v.nextTrain <= e.now {
		batch := v.Data.SampleBatch(e.Cfg.BatchSize, v.rng)
		if len(batch) > 0 {
			out.loss = v.Policy.TrainStep(batch)
			out.steps++
		}
		v.nextTrain += e.Cfg.TrainInterval
	}
	if e.wall != nil {
		out.wallNs = time.Since(start).Nanoseconds()
	}
	e.stepScratch[i] = out
}

// trainTick runs every vehicle's due local-SGD steps. Each vehicle touches
// only its own policy, dataset cursor, and private RNG stream, so the due
// vehicles train concurrently; training order across vehicles never mattered
// (no shared state), so the result is bit-identical to the serial loop.
func (e *Engine) trainTick() {
	due := e.dueIDs[:0]
	var buckets int
	if e.calendar != nil {
		due, buckets = e.calendarDue(due)
	} else {
		due = e.legacyDueScan(due)
	}
	e.dueIDs = due
	if len(due) == 0 {
		if e.schedObs != nil && e.calendar != nil {
			e.schedObs.ObserveSchedTick(telemetry.SchedTick{BucketsTouched: buckets})
		}
		return
	}
	// With telemetry on, the parallel phase records each vehicle's outcome
	// into index-addressed scratch; events are then emitted serially in
	// vehicle-index order so the stream is identical at every worker count.
	// The two phase bodies are pre-bound methods (stepFn/stepObsFn), not
	// per-tick closures, so a quiet tick allocates nothing.
	observe := e.tel != nil || e.wall != nil
	fn := e.stepFn
	if observe {
		if cap(e.stepScratch) < len(due) {
			e.stepScratch = make([]stepOutcome, len(due))
		}
		fn = e.stepObsFn
	}
	batches := e.dispatchPhase(due, fn)
	if e.schedObs != nil && e.calendar != nil {
		e.schedObs.ObserveSchedTick(telemetry.SchedTick{
			DueDequeued: len(due), BucketsTouched: buckets, ShardBatches: batches,
		})
	}
	if e.calendar != nil {
		// Re-enqueue each stepped vehicle at its next due tick, serially —
		// the wheel is single-writer scratch like every engine index.
		for _, id := range due {
			e.calendar.Schedule(id, e.reDueTick(e.Vehicles[id].nextTrain))
		}
	}
	if !observe {
		return
	}
	for i, id := range due {
		out := e.stepScratch[i]
		if out.steps == 0 {
			continue
		}
		if e.tel != nil {
			e.tel.Emit(telemetry.TrainStep{Time: e.now, Vehicle: e.Vehicles[id].ID, Steps: out.steps, Loss: out.loss})
		}
		if e.wall != nil {
			e.wall.ObserveTrainWall(out.wallNs)
		}
	}
}

// probeLossMean evaluates every vehicle on the probe set (in parallel — the
// probe is read-only and each policy is private, dispatched shard-major on
// sharded engines) and reduces the losses from the engine-held scratch in
// vehicle-index order, so the float sum is bit-identical at any worker and
// shard count and steady-state probes allocate nothing.
func (e *Engine) probeLossMean() float64 {
	n := len(e.Vehicles)
	if cap(e.lossScratch) < n {
		e.lossScratch = make([]float64, n)
	}
	losses := e.lossScratch[:n]
	batches := e.dispatchPhase(e.allIDs, e.probeFn)
	if e.schedObs != nil && batches > 0 {
		e.schedObs.ObserveSchedTick(telemetry.SchedTick{ShardBatches: batches})
	}
	var sum float64
	for _, l := range losses {
		sum += l
	}
	return sum / float64(n)
}

// probeOne evaluates vehicle i on the probe set into the loss scratch.
func (e *Engine) probeOne(i int) {
	e.lossScratch[i] = e.Vehicles[i].Policy.Loss(e.Probe)
}

func (e *Engine) recordLoss() {
	if len(e.Probe) == 0 {
		return
	}
	loss := e.probeLossMean()
	e.LossCurve.Add(e.now, loss)
	if e.tel != nil {
		e.tel.Emit(telemetry.LossRecorded{Time: e.now, Loss: loss})
	}
}

// AvgProbeLoss returns the fleet's current mean loss on the probe set.
func (e *Engine) AvgProbeLoss() float64 {
	if len(e.Probe) == 0 {
		return math.NaN()
	}
	return e.probeLossMean()
}

// Distance returns the current distance between two vehicles.
func (e *Engine) Distance(a, b int) float64 {
	return e.Trace.Distance(a, b, e.now)
}

// Contact estimates the remaining contact duration between two vehicles
// from their shared routes.
func (e *Engine) Contact(a, b int) float64 {
	return e.Trace.ContactDuration(a, b, e.now, e.Radio.Params.MaxRangeMeters, e.Cfg.ContactHorizon)
}

// Neighbors returns vehicle IDs currently within radio range of v.
func (e *Engine) Neighbors(v int) []int {
	return e.Trace.Neighbors(v, e.now, e.Radio.Params.MaxRangeMeters)
}

// FleetReceiveStats aggregates the model-receive counters across vehicles.
func (e *Engine) FleetReceiveStats() metrics.ReceiveStats {
	var s metrics.ReceiveStats
	for _, v := range e.Vehicles {
		s.Merge(v.Recv)
	}
	return s
}

// SimulateTransfer plays a payload transfer from vehicle a to vehicle b
// starting now, bounded by deadline seconds, over the live trace geometry.
// The payload is reported to telemetry as a model transfer; use
// SimulateTransferPayload to label coreset payloads.
func (e *Engine) SimulateTransfer(bytes, a, b int, deadline float64) radio.TransferResult {
	return e.SimulateTransferPayload(telemetry.PayloadModel, bytes, a, b, deadline)
}

// SimulateTransferPayload is SimulateTransfer with an explicit telemetry
// payload label (telemetry.PayloadModel or telemetry.PayloadCoreset).
func (e *Engine) SimulateTransferPayload(payload string, bytes, a, b int, deadline float64) radio.TransferResult {
	start := e.now
	bw := math.Min(e.Vehicles[a].Bandwidth, e.Vehicles[b].Bandwidth)
	dist := func(elapsed float64) float64 { return e.Trace.Distance(a, b, start+elapsed) }
	// With bursts configured, layer the link's episode timeline over the
	// loss table and remember the strongest boost the transfer saw.
	var boost func(elapsed float64) float64
	var burstPER float64
	if e.faults != nil {
		if link := e.faults.LinkBoost(a, b); link != nil {
			boost = func(elapsed float64) float64 {
				p := link(start + elapsed)
				if p > burstPER {
					burstPER = p
				}
				return p
			}
		}
	}
	res := e.Radio.SimulateTransferPerturbed(bytes, dist, boost, bw, deadline, e.rng)
	if burstPER > 0 {
		e.Emit(telemetry.FaultInjected{Time: e.now, Fault: telemetry.FaultBurstLoss, A: a, B: b, Value: burstPER})
	}
	if e.tel != nil {
		e.tel.Emit(telemetry.Transfer{
			Time: e.now, From: a, To: b, Payload: payload,
			BytesRequested: bytes, BytesDelivered: res.BytesDelivered,
			Completed: res.Completed, Elapsed: res.Elapsed, Truncated: res.Truncated,
		})
	}
	return res
}

// RNG returns the engine's own random stream (pairing decisions etc.).
func (e *Engine) RNG() *simrand.Rand { return e.rng }

// ModelWireBytes returns the over-the-air size of one uncompressed model
// (the paper-scale S of the compression ratio φ = S/S_c).
func (e *Engine) ModelWireBytes() int { return e.Cfg.PaperModelBytes }

// CompressedModelBytes returns the over-the-air size of a model compressed
// to level ψ.
func (e *Engine) CompressedModelBytes(psi float64) int {
	if psi <= 0 {
		return 0
	}
	if psi > 1 {
		psi = 1
	}
	return int(psi * float64(e.Cfg.PaperModelBytes))
}

// CoresetWireBytes returns the over-the-air size of a coreset: frames × the
// paper's per-frame size.
func (e *Engine) CoresetWireBytes(frames int) int {
	return frames * e.Cfg.PaperFrameBytes
}

// CompressionScheme identifies a model-payload compression method.
type CompressionScheme int

// Compression schemes.
const (
	// SchemeTopK is top-k delta sparsification with index-value encoding
	// (the paper's default, [22][23]).
	SchemeTopK CompressionScheme = iota
	// SchemeQuantize is unbiased stochastic uniform quantization of the
	// delta, with the bit width chosen to meet the ψ byte budget.
	SchemeQuantize
)

// CompressReconstruct compresses a model to relative payload size ψ under
// the configured scheme and returns the receiver-side reconstruction. This
// is what every exchange path uses: the sender evaluates exactly what the
// receiver will materialize.
func (e *Engine) CompressReconstruct(flat []float64, psi float64) []float64 {
	if psi <= 0 {
		return nil
	}
	if e.Cfg.CompressionScheme == SchemeQuantize {
		delta := make([]float64, len(flat))
		for i, v := range flat {
			delta[i] = v - e.initFlat[i]
		}
		bits := int(psi*32 + 0.5)
		if bits < 1 {
			bits = 1
		}
		if bits > compress.MaxQuantBits {
			bits = compress.MaxQuantBits
		}
		q, err := compress.Quantize(delta, bits, e.rng)
		if err != nil {
			return nil
		}
		out := append([]float64(nil), e.initFlat...)
		for i, dv := range q.Dense() {
			out[i] += dv
		}
		return out
	}
	return e.ReconstructDelta(e.CompressDelta(flat, psi))
}

// CompressDelta top-k sparsifies a model's DELTA from the fleet's shared
// initialization at level ψ. Vehicles exchange sparsified deltas rather than
// raw parameters: every peer holds the same initialization (§II-A), so a
// receiver reconstructs the compressed model exactly, and dropping small
// delta coordinates degrades the model far more gracefully than zeroing raw
// weights [22].
func (e *Engine) CompressDelta(flat []float64, psi float64) *compress.Sparse {
	delta := make([]float64, len(flat))
	for i, v := range flat {
		delta[i] = v - e.initFlat[i]
	}
	keep := psi
	if c := e.Cfg.CompressionConcentration; c > 0 && c != 1 && psi > 0 && psi < 1 {
		keep = math.Pow(psi, c)
	}
	return compress.TopK(delta, int(keep*float64(len(delta))))
}

// ReconstructDelta materializes a model from a sparsified delta:
// x̂ = x_init + sparse(Δ).
func (e *Engine) ReconstructDelta(sp *compress.Sparse) []float64 {
	out := append([]float64(nil), e.initFlat...)
	for i, idx := range sp.Indices {
		out[idx] += sp.Values[i]
	}
	return out
}
