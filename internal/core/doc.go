// Package core implements LbChat itself (Algorithm 2) and the virtual-time
// co-simulation engine that LbChat and every benchmark protocol run on:
// per-vehicle local training, trace-driven mobility and encounters,
// radio-constrained transfers, and loss-curve/receive-rate metrics.
//
// The engine is deliberately protocol-agnostic: a Protocol sees the fleet
// each tick and decides who chats with whom and what crosses the air. LbChat,
// its SCO variant and ablations (this package), and the four benchmarks
// (internal/baselines) all plug into the same loop, which is what makes the
// paper's "same communication ability and constraints" comparisons honest.
//
// The engine optionally layers deterministic fault injection on top of the
// loop (Config.Faults, internal/faults): burst packet loss, chat-window
// truncation, vehicle churn, and payload corruption, answered on the LbChat
// side by session resumption, partial-transfer salvage, and bounded
// retry-with-backoff (faults.go, lbchat.go; DESIGN.md §9). With the zero
// Faults config every hook is a no-op and runs are bit-identical to an
// engine without the layer.
package core
