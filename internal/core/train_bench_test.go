package core

import (
	"fmt"
	"math"
	"testing"

	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
)

// benchTrainEngine builds an engine over a synthetic static trace of n
// vehicles with empty datasets (so trainTick's cost is pure scheduling, not
// SGD), a 1-second tick, and the given train interval: interval 100 makes
// ~1% of the fleet due per tick (the sparse steady state a real run sits
// in), interval 1 makes the whole fleet due every tick (the dense worst
// case).
func benchTrainEngine(b *testing.B, n int, trainInterval float64, legacy bool) *Engine {
	b.Helper()
	const densityCell = 250.0
	side := densityCell * math.Sqrt(float64(n))
	rng := simrand.New(uint64(n))
	snap := make([]geom.Point, n)
	for i := range snap {
		snap[i] = geom.Pt(rng.Uniform(0, side), rng.Uniform(0, side))
	}
	tr := trace.FromRows(1, [][]geom.Point{snap})
	datasets := make([]*dataset.Dataset, n)
	for i := range datasets {
		datasets[i] = dataset.New(0)
	}
	cfg := DefaultConfig()
	cfg.TickSeconds = 1
	cfg.TrainInterval = trainInterval
	cfg.LegacyDueScan = legacy
	// Tiny policies: the benchmark measures scheduling, and 10k full-size
	// models would make setup (and its GC shadow in the timed region) the
	// dominant cost.
	cfg.Model.UseConv = false
	cfg.Model.BEVChannels, cfg.Model.BEVHeight, cfg.Model.BEVWidth = 1, 2, 2
	cfg.Model.Hidden = 2
	cfg.Model.NumWaypoints = 1
	// Serial dispatch isolates due discovery — the thing the two arms do
	// differently — from goroutine fan-out cost, which is identical in both
	// arms and drowns the scan at bench step sizes.
	cfg.Workers = 1
	eng, err := NewEngine(cfg, tr, datasets, radio.NewModel(false), nil)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// BenchmarkTrainTick measures per-tick due-vehicle discovery at scaled
// fleet sizes: the calendar queue against the legacy O(N) fleet scan
// (LegacyDueScan), at a sparse (1% due) and a dense (100% due) tick mix.
// The sparse calendar arm is the headline number — empty and lightly-due
// ticks are the common case, and the wheel makes them O(due) instead of
// O(fleet). BENCH_*.json tracks all arms so cmd/bench-compare catches
// regressions on either.
func BenchmarkTrainTick(b *testing.B) {
	for _, n := range []int{1024, 10240} {
		for _, due := range []struct {
			name     string
			interval float64
		}{{"sparse", 100}, {"dense", 1}} {
			for _, arm := range []struct {
				name   string
				legacy bool
			}{{"calendar", false}, {"legacy", true}} {
				b.Run(fmt.Sprintf("N=%d/due=%s/%s", n, due.name, arm.name), func(b *testing.B) {
					eng := benchTrainEngine(b, n, due.interval, arm.legacy)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						eng.trainTick()
						eng.now += eng.Cfg.TickSeconds
						eng.tickIndex++
					}
				})
			}
		}
	}
}
