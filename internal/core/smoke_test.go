package core_test

import (
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/core"
	"lbchat/internal/radio"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
	"lbchat/internal/world"
)

// TestSmokeLbChatRun exercises the full pipeline end to end at a tiny
// scale: map → data collection → trace → engine → LbChat run, checking that
// training reduces the probe loss and that chats actually happen.
func TestSmokeLbChatRun(t *testing.T) {
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	rng := simrand.New(7)
	w, err := world.New(m, world.SpawnConfig{Experts: 4, BackgroundCars: 8, Pedestrians: 20}, rng)
	if err != nil {
		t.Fatalf("world.New: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.CoresetSize = 40
	cfg.LayeringSample = 128
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	datasets := world.CollectDataset(w, ras, cfg.Model.NumWaypoints, 300, 0.5)
	for i, d := range datasets {
		if d.Len() != 300 {
			t.Fatalf("dataset %d has %d samples, want 300", i, d.Len())
		}
	}
	tr := trace.Record(w, 1200, 0.5) // 600 s of mobility
	probe := datasets[0].Items()[:64]

	eng, err := core.NewEngine(cfg, tr, datasets, radio.NewModel(false), probe)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	proto := core.NewLbChat()
	if err := eng.Run(proto, 500); err != nil {
		t.Fatalf("Run: %v", err)
	}

	curve := eng.LossCurve
	if len(curve.Points) < 3 {
		t.Fatalf("loss curve has %d points", len(curve.Points))
	}
	first, last := curve.Points[0].Value, curve.Final()
	t.Logf("loss: %.4f -> %.4f over %d points", first, last, len(curve.Points))
	if last >= first {
		t.Errorf("training did not reduce probe loss: %.4f -> %.4f", first, last)
	}
	stats := eng.FleetReceiveStats()
	t.Logf("model transfers: %d attempts, %d successes", stats.Attempts, stats.Successes)
	if stats.Attempts == 0 {
		t.Error("no model transfers were attempted; chats never happened")
	}
}
