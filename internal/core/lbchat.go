package core

import (
	"fmt"
	"log"
	"math"

	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
	"lbchat/internal/model"
	"lbchat/internal/optimize"
	"lbchat/internal/radio"
	"lbchat/internal/telemetry"
)

// Variant toggles LbChat's components for the paper's ablations and the SCO
// study. The zero value is full LbChat.
type Variant struct {
	// SCO shares coresets only: no model exchange or aggregation (§IV-G).
	SCO bool
	// EqualCompression masks the Eq. (7) optimization and splits the
	// exchange window into equal fixed compression ratios (Table V).
	EqualCompression bool
	// AverageAggregation masks the Eq. (8) weights and merges with plain
	// averaging (Table VI).
	AverageAggregation bool
	// LiteralEq8 uses the printed (own-loss) Eq. (8) weights instead of the
	// corrected intent; see DESIGN.md §4.
	LiteralEq8 bool
	// NoDataExpansion skips absorbing peer coresets into the local dataset
	// (extra ablation isolating the value-assessment contribution).
	NoDataExpansion bool
	// NoPrioritization masks the Eq. (5) route-sharing neighbor
	// prioritization: encounters pair up at random like the gossip
	// baselines, isolating what the priority score contributes.
	NoPrioritization bool
	// AdaptiveCoresetSize enables the paper's stated future-work feature:
	// each vehicle tunes its coreset budget so the coreset exchange
	// consumes at most a small share of its typically observed contact
	// duration — short-contact vehicles shrink their coresets, vehicles
	// with long encounters can afford richer ones.
	AdaptiveCoresetSize bool
	// NoResumption disables chat-session resumption: a re-encountered peer
	// restarts a broken coreset exchange from scratch instead of resuming
	// from the last completed payload — the FaultSweep comparison arm
	// (DESIGN.md §9).
	NoResumption bool
}

// Adaptive coreset sizing constants: the coreset exchange should claim at
// most adaptiveCoresetShare of the typical contact, and the budget stays
// within the paper's sweep range [15, 1500].
const (
	adaptiveCoresetShare = 0.06
	adaptiveCoresetMin   = 15
	adaptiveCoresetMax   = 1500
	contactEMAAlpha      = 0.3
)

// Resilient-chat constants (DESIGN.md §9): a coreset leg must land at least
// salvageViableFrac of its frames for the chat to proceed to the model
// exchange, and a broken session stays resumable for resumeTTL seconds of
// virtual time.
const (
	salvageViableFrac = 0.25
	resumeTTL         = 900.0
)

// legOutcome is what the receiver of one coreset leg ends up holding.
type legOutcome struct {
	// core is the coreset as held by the receiver: the sender's coreset
	// when full, a discounted prefix when salvaged, nil when nothing
	// usable arrived.
	core *coreset.Coreset
	// frames counts the intact frames delivered.
	frames int
	// full marks a complete, uncorrupted payload.
	full bool
	// resumed marks a leg carried over from a broken session; its payload
	// was already absorbed when that session broke, so absorption must not
	// repeat.
	resumed bool
}

// chatSession records a broken coreset exchange so a re-encounter within
// resumeTTL can resume from the last completed payload instead of
// restarting (DESIGN.md §9 state machine).
type chatSession struct {
	brokenAt float64
	// toB is what the higher-indexed vehicle holds of the lower's coreset
	// (pair keys are ordered a < b); toA the reverse direction.
	toB, toA legOutcome
}

// viableFrames is the minimum salvaged-frame count for a coreset leg of
// the given size to count as delivered.
func viableFrames(total int) int {
	v := int(salvageViableFrac * float64(total))
	if v < 1 {
		v = 1
	}
	return v
}

// LbChat is the paper's protocol (Algorithm 2) as an engine Protocol.
type LbChat struct {
	// Variant selects ablation behaviour.
	Variant Variant

	name    string
	scratch *model.Policy // reusable buffer for evaluating received models
	// sessions holds broken coreset exchanges by ordered pair key for
	// resumption on re-encounter.
	sessions map[[2]int]*chatSession
}

// NewLbChat returns the full protocol.
func NewLbChat() *LbChat { return &LbChat{name: "LbChat"} }

// NewLbChatVariant returns a named protocol variant.
func NewLbChatVariant(name string, v Variant) *LbChat {
	return &LbChat{name: name, Variant: v}
}

// NewSCO returns the share-coreset-only protocol of §IV-G.
func NewSCO() *LbChat {
	return &LbChat{name: "SCO", Variant: Variant{SCO: true}}
}

// Name implements Protocol.
func (l *LbChat) Name() string { return l.name }

// Setup implements Protocol.
func (l *LbChat) Setup(e *Engine) error {
	if len(e.Vehicles) > 0 {
		l.scratch = e.Vehicles[0].Policy.Clone()
	}
	l.sessions = make(map[[2]int]*chatSession)
	return nil
}

// OnTick implements Protocol: detect encounters, determine the exchange
// sequence with Eq. (5), and run pairwise chats.
func (l *LbChat) OnTick(e *Engine, now float64) {
	score := func(a, b int) float64 {
		va, vb := e.Vehicles[a], e.Vehicles[b]
		return e.Radio.Score(radio.PriorityInputs{
			ContactDuration: e.Contact(a, b),
			Distance:        e.Distance(a, b),
			BandwidthA:      va.Bandwidth,
			BandwidthB:      vb.Bandwidth,
			// Score against a typical compressed-model payload: the raw
			// 52 MB model would zero out p_ij at any useful distance.
			PayloadBytes: e.CompressedModelBytes(0.5),
			TimeBudget:   e.Cfg.TimeBudget,
		})
	}
	if l.Variant.NoPrioritization {
		// Route-sharing ablation: any in-range pair is equally good.
		rng := e.RNG()
		score = func(a, b int) float64 { return 1 + 0.01*rng.Float64() }
	}
	pairs := e.CandidatePairs(score)
	for _, p := range e.GreedyMatch(pairs) {
		l.chat(e, p.A, p.B)
	}
}

// chat runs one pairwise LbChat session between vehicles a and b
// (Algorithm 2, lines 8–16). Decisions are computed now; model merges and
// dataset expansion take effect when their transfers complete.
func (l *LbChat) chat(e *Engine, a, b int) {
	va, vb := e.Vehicles[a], e.Vehicles[b]
	contact := e.Contact(a, b)
	window := math.Min(e.Cfg.TimeBudget, contact)
	if window <= 0 {
		return
	}
	window = e.FaultWindow(a, b, window)
	e.Emit(telemetry.ChatInitiated{Time: e.Now(), A: a, B: b, Contact: contact, Window: window})
	if l.Variant.AdaptiveCoresetSize {
		l.adaptCoresetSize(e, va, contact)
		l.adaptCoresetSize(e, vb, contact)
	}

	// Line 8: construct (or refresh) both coresets.
	ca, err := e.EnsureCoreset(va)
	if err != nil {
		e.Emit(telemetry.ChatAborted{Time: e.Now(), A: a, B: b, Reason: telemetry.AbortCoresetBuild})
		return
	}
	cb, err := e.EnsureCoreset(vb)
	if err != nil {
		e.Emit(telemetry.ChatAborted{Time: e.Now(), A: a, B: b, Reason: telemetry.AbortCoresetBuild})
		return
	}

	// Line 9: exchange coresets (half-duplex, sequential). A recently broken
	// session with this peer resumes from its last completed payload: fully
	// delivered legs are not re-sent (DESIGN.md §9).
	key := [2]int{a, b}
	var resumed *chatSession
	if s, ok := l.sessions[key]; ok {
		delete(l.sessions, key)
		if !l.Variant.NoResumption && e.Now()-s.brokenAt <= resumeTTL {
			resumed = s
		}
	}
	elapsed := 0.0
	var legAB, legBA legOutcome
	if resumed != nil {
		if resumed.toB.full {
			legAB = resumed.toB
			legAB.resumed = true
		}
		if resumed.toA.full {
			legBA = resumed.toA
			legBA.resumed = true
		}
		savedFrames := 0
		if legAB.resumed {
			savedFrames += legAB.frames
		}
		if legBA.resumed {
			savedFrames += legBA.frames
		}
		if savedFrames > 0 {
			e.Emit(telemetry.ChatResumed{
				Time: e.Now(), A: a, B: b,
				SavedBytes: e.CoresetWireBytes(savedFrames),
				Age:        e.Now() - resumed.brokenAt,
			})
		}
	}
	if !legAB.resumed {
		var t float64
		legAB, t = l.sendCoreset(e, ca, a, b, window)
		elapsed += t
	}
	if !legBA.resumed && legAB.full {
		var t float64
		legBA, t = l.sendCoreset(e, cb, b, a, window-elapsed)
		elapsed += t
	}
	viable := func(leg legOutcome, sent *coreset.Coreset) bool {
		return leg.full || leg.frames >= viableFrames(sent.Len())
	}
	if !viable(legAB, ca) || !viable(legBA, cb) {
		// Coreset exchange failed: the pair decouples, time was spent. The
		// delivered direction is NOT wasted — its receiver still absorbs it
		// (one-sided salvage) — and the broken session is recorded so a
		// re-encounter can resume it.
		doneAt := e.Now() + elapsed
		if !l.Variant.NoDataExpansion {
			if core := legAB.core; core != nil && !legAB.resumed {
				e.Events.Schedule(doneAt, func() { _ = e.AbsorbCoreset(vb, core) })
			}
			if core := legBA.core; core != nil && !legBA.resumed {
				e.Events.Schedule(doneAt, func() { _ = e.AbsorbCoreset(va, core) })
			}
		}
		if !l.Variant.NoResumption {
			l.sessions[key] = &chatSession{brokenAt: e.Now(), toB: legAB, toA: legBA}
		}
		e.Emit(telemetry.ChatAborted{Time: e.Now(), A: a, B: b, Reason: telemetry.AbortCoresetExchange})
		e.MarkChatted(a, b, doneAt)
		return
	}

	// Both directions are across (possibly as discounted salvaged
	// prefixes): caAtB is what b now holds of a's coreset, cbAtA the
	// reverse. The rest of the chat works from the held copies.
	caAtB, cbAtA := legAB.core, legBA.core

	if l.Variant.SCO {
		doneAt := e.Now() + elapsed
		absorbAB, absorbBA := !legAB.resumed, !legBA.resumed
		e.Events.Schedule(doneAt, func() {
			if absorbBA {
				_ = e.AbsorbCoreset(va, cbAtA)
			}
			if absorbAB {
				_ = e.AbsorbCoreset(vb, caAtB)
			}
		})
		e.Emit(telemetry.ChatCompleted{Time: e.Now(), A: a, B: b, Elapsed: elapsed})
		e.MarkChatted(a, b, doneAt)
		return
	}

	// Lines 10–12: evaluate both models on both coresets; fit φ curves from
	// sampled compressed-model losses. The evaluation results and φ samples
	// are exchanged; their wire size is negligible next to the coresets.
	// Value assessment runs on the HELD copies, so a salvaged prefix
	// contributes with its discounted weights (Eq. 8 value estimation).
	evalA := e.EvalSubset(va, caAtB.Items())
	evalB := e.EvalSubset(vb, cbAtA.Items())
	lossAonB := va.Policy.Loss(evalB)
	lossBonA := vb.Policy.Loss(evalA)

	remaining := window - elapsed
	modelBytes := e.ModelWireBytes()
	minBW := math.Min(va.Bandwidth, vb.Bandwidth)

	var psiA, psiB float64
	if l.Variant.EqualCompression {
		// Ablation: fixed equal ratios sized so both directions fill the
		// remaining window.
		psi := remaining * minBW / 8 / float64(2*modelBytes)
		psiA = math.Min(1, psi)
		psiB = psiA
	} else {
		// Line 13: optimize compression ratios with Eq. (7).
		phiA := l.fitPhi(e, va, evalA)
		phiB := l.fitPhi(e, vb, evalB)
		sol := optimize.Solve(optimize.Problem{
			PhiSelf:         phiA,
			PhiPeer:         phiB,
			LossSelfOnPeer:  lossAonB,
			LossPeerOnSelf:  lossBonA,
			ModelBytes:      modelBytes,
			MinBandwidthBps: minBW,
			TimeBudget:      remaining,
			ContactTime:     contact - elapsed,
			LambdaC:         e.Cfg.LambdaC,
		})
		psiA, psiB = sol.PsiSelf, sol.PsiPeer
		if e.Cfg.LogChats {
			phiDump := func(c *optimize.PhiCurve) string {
				if c == nil {
					return "nil"
				}
				return fmt.Sprintf("φ(.2)=%.4f φ(.5)=%.4f φ(.9)=%.4f φ(1)=%.4f",
					c.Predict(0.2), c.Predict(0.5), c.Predict(0.9), c.Predict(1))
			}
			log.Printf("chat %d<->%d t=%.0f contact=%.1f win=%.1f lossAonB=%.4f lossBonA=%.4f | A:%s | B:%s | ψA=%.2f ψB=%.2f obj=%.5f",
				a, b, e.Now(), contact, remaining, lossAonB, lossBonA, phiDump(phiA), phiDump(phiB), psiA, psiB, sol.Objective)
		}
	}

	// Line 14: exchange compressed models (A's model travels to B first).
	sentA, okA, tA := l.sendModel(e, va, vb, psiA, remaining)
	elapsed += tA
	remaining -= tA
	sentB, okB, tB := l.sendModel(e, vb, va, psiB, remaining)
	elapsed += tB

	doneAt := e.Now() + elapsed

	// Lines 15–16 take effect when the payloads land. Peer coresets are
	// absorbed regardless of the model transfers' fate — they already made
	// it across during line 9 (or during the broken session a resumed leg
	// came from, in which case absorption must not repeat).
	schedule := func(recv *Vehicle, sent []float64, ok bool, senderCore *coreset.Coreset, absorb bool) {
		var peerFlat []float64
		if ok && sent != nil {
			peerFlat = sent
		}
		e.Events.Schedule(doneAt, func() {
			if peerFlat != nil {
				l.mergeInto(e, recv, peerFlat, senderCore)
			}
			if absorb && !l.Variant.NoDataExpansion {
				_ = e.AbsorbCoreset(recv, senderCore)
			}
		})
	}
	schedule(vb, sentA, okA, caAtB, !legAB.resumed)
	schedule(va, sentB, okB, cbAtA, !legBA.resumed)
	e.Emit(telemetry.ChatCompleted{Time: e.Now(), A: a, B: b, Elapsed: elapsed})
	e.MarkChatted(a, b, doneAt)
}

// sendCoreset plays one coreset leg from→to with bounded retry-with-backoff
// (TransferResilient), salvaging the intact prefix of an incomplete or
// corrupted payload into a weight-discounted coreset the receiver can still
// use. It returns what the receiver holds and the air time spent.
func (l *LbChat) sendCoreset(e *Engine, cs *coreset.Coreset, from, to int, deadline float64) (legOutcome, float64) {
	if deadline <= 0 {
		return legOutcome{}, 0
	}
	res := e.TransferResilient(telemetry.PayloadCoreset, e.CoresetWireBytes(cs.Len()), from, to, deadline)
	frames := cs.Len()
	full := res.Completed
	if !full {
		frames = res.BytesDelivered / e.Cfg.PaperFrameBytes
		if frames > cs.Len() {
			frames = cs.Len()
		}
	} else if keep := e.FaultCorruptCoreset(from, to, frames); keep < frames {
		frames, full = keep, false
	}
	out := legOutcome{frames: frames, full: full}
	switch {
	case full:
		out.core = cs
	case frames > 0:
		out.core = salvageCoreset(cs, frames)
		e.Emit(telemetry.PartialSalvage{
			Time: e.Now(), Vehicle: to, From: from,
			Frames: frames, Total: cs.Len(),
			Discount: float64(frames) / float64(cs.Len()),
		})
	}
	return out, res.Elapsed
}

// adaptCoresetSize updates the vehicle's contact-duration estimate and
// retunes its coreset budget so the coreset exchange stays a small share of
// a typical encounter.
func (l *LbChat) adaptCoresetSize(e *Engine, v *Vehicle, contact float64) {
	if v.ContactEMA == 0 {
		v.ContactEMA = contact
	} else {
		v.ContactEMA = (1-contactEMAAlpha)*v.ContactEMA + contactEMAAlpha*contact
	}
	budgetBytes := adaptiveCoresetShare * v.ContactEMA * v.Bandwidth / 8
	size := int(budgetBytes / float64(e.Cfg.PaperFrameBytes))
	if size < adaptiveCoresetMin {
		size = adaptiveCoresetMin
	}
	if size > adaptiveCoresetMax {
		size = adaptiveCoresetMax
	}
	v.CoresetSizeOverride = size
}

// fitPhi samples the vehicle's own model at the configured ψ levels,
// evaluates each compressed variant on the vehicle's coreset subset, and
// fits the Akima φ curve (§III-C).
func (l *LbChat) fitPhi(e *Engine, v *Vehicle, evalItems []dataset.Weighted) *optimize.PhiCurve {
	flat := v.Policy.Flat()
	samples := e.Cfg.PsiSamples
	psis := make([]float64, 0, len(samples))
	losses := make([]float64, 0, len(samples))
	for _, psi := range samples {
		var loss float64
		if psi >= 1 {
			loss = v.Policy.Loss(evalItems)
		} else {
			sp := e.CompressDelta(flat, psi)
			if err := l.scratch.SetFlat(e.ReconstructDelta(sp)); err != nil {
				continue
			}
			loss = l.scratch.Loss(evalItems)
		}
		psis = append(psis, psi)
		losses = append(losses, loss)
	}
	curve, err := optimize.FitPhi(psis, losses)
	if err != nil {
		return nil
	}
	return curve
}

// sendModel compresses the sender's model at ψ and simulates its transfer,
// returning the receiver-side reconstruction. ψ = 0 means "do not send" (no
// attempt is counted). The receiver's receive-rate counter records the
// outcome.
func (l *LbChat) sendModel(e *Engine, from, to *Vehicle, psi, deadline float64) ([]float64, bool, float64) {
	if psi <= 0 {
		return nil, false, 0
	}
	rec := e.CompressReconstruct(from.Policy.Flat(), psi)
	bytes := e.CompressedModelBytes(psi)
	e.Emit(telemetry.CompressionChosen{Time: e.Now(), From: from.ID, To: to.ID, Psi: psi, Bytes: bytes})
	res := e.SimulateTransfer(bytes, from.ID, to.ID, deadline)
	to.Recv.Record(res.Completed)
	return rec, res.Completed, res.Elapsed
}

// mergeInto aggregates a received peer model into the vehicle's policy with
// the Eq. (8) weights computed on the joint coreset (fast path of §III-D).
func (l *LbChat) mergeInto(e *Engine, v *Vehicle, peerFlat []float64, senderCore *coreset.Coreset) {
	var wSelf, wPeer float64
	if l.Variant.AverageAggregation {
		wSelf, wPeer = 0.5, 0.5
	} else {
		joint := JointEvalSet(e, v, senderCore.Items())
		lossSelf := v.Policy.Loss(joint)
		if err := l.scratch.SetFlat(peerFlat); err != nil {
			return
		}
		lossPeer := l.scratch.Loss(joint)
		wSelf, wPeer = AggregationWeights(lossSelf, lossPeer, l.Variant.LiteralEq8)
	}
	e.Emit(telemetry.Aggregation{Time: e.Now(), Vehicle: v.ID, WSelf: wSelf, WPeer: wPeer})
	// Length mismatches are impossible (identical architectures); ignore
	// the error to keep the event handler simple.
	_ = MergeModels(v, peerFlat, wSelf, wPeer)
}
