package core

import "sort"

// CandidatePair is a potential pairwise exchange with its Eq. (5) score.
type CandidatePair struct {
	A, B  int
	Score float64
}

// CandidatePairs enumerates vehicle pairs that are currently able to chat:
// both free (not mid-exchange, past their chat cooldown), present (not
// departed by a churn fault), within radio range, and past the per-pair
// cooldown. score computes the pair's priority; pairs scoring zero or less
// are dropped.
//
// The in-range enumeration goes through the engine's spatial index (cell
// size = radio range), so a tick costs O(F·k) in the free-vehicle count F
// and mean neighborhood size k instead of O(F²). The index returns pairs in
// the same canonical (A, B)-ascending order as the classic double loop and
// confirms every candidate with the exact same distance comparison, so the
// output — and any randomness score draws — is bit-identical to the
// brute-force path (Cfg.DisableSpatialIndex, kept as the A/B reference).
func (e *Engine) CandidatePairs(score func(a, b int) float64) []CandidatePair {
	now := e.now
	free := e.freeScratch[:0]
	for _, v := range e.Vehicles {
		if v.BusyUntil <= now && v.NextChatAt <= now && !e.VehicleAway(v.ID) {
			free = append(free, v.ID)
		}
	}
	e.freeScratch = free
	maxRange := e.Radio.Params.MaxRangeMeters
	var out []CandidatePair
	emit := func(a, b int) {
		if last, ok := e.Vehicles[a].lastChat[b]; ok && now-last < e.Cfg.PairCooldown {
			return
		}
		if s := score(a, b); s > 0 {
			out = append(out, CandidatePair{A: a, B: b, Score: s})
		}
	}
	if e.Cfg.DisableSpatialIndex {
		for ai := 0; ai < len(free); ai++ {
			for bi := ai + 1; bi < len(free); bi++ {
				if e.Distance(free[ai], free[bi]) > maxRange {
					continue
				}
				emit(free[ai], free[bi])
			}
		}
		return out
	}
	// One contiguous row read serves every free vehicle's position.
	row := e.Trace.RowAt(now)
	pts := e.spatialPts[:0]
	for _, id := range free {
		pts = append(pts, row[id])
	}
	e.spatialPts = pts
	for _, pr := range e.rangePairs(pts, maxRange) {
		emit(free[pr.A], free[pr.B])
	}
	return out
}

// GreedyMatch selects a maximal set of disjoint pairs in descending score
// order — each vehicle chats with at most one peer at a time, and every
// vehicle prefers its highest-scoring available neighbor, which realizes the
// Eq. (5) exchange-sequence determination across the fleet. Ties break by
// (A, B) for determinism.
//
// The standalone function allocates its taken-set per call; protocols on a
// live engine should prefer (*Engine).GreedyMatch, which reuses an
// ID-indexed scratch slice across ticks.
func GreedyMatch(pairs []CandidatePair) []CandidatePair {
	out, _ := greedyMatch(pairs, nil)
	return out
}

// GreedyMatch is the engine-scoped variant of the package-level function:
// identical selection, but the vehicle-taken set is a reusable []bool keyed
// by vehicle ID instead of a per-tick map allocation.
func (e *Engine) GreedyMatch(pairs []CandidatePair) []CandidatePair {
	out, taken := greedyMatch(pairs, e.matchTaken)
	e.matchTaken = taken
	return out
}

// greedyMatch implements the selection over a caller-provided taken scratch
// ([]bool indexed by vehicle ID, grown as needed), returning the possibly
// regrown scratch for reuse.
func greedyMatch(pairs []CandidatePair, taken []bool) ([]CandidatePair, []bool) {
	sorted := append([]CandidatePair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	maxID := -1
	for _, p := range sorted {
		if p.A > maxID {
			maxID = p.A
		}
		if p.B > maxID {
			maxID = p.B
		}
	}
	if cap(taken) < maxID+1 {
		taken = make([]bool, maxID+1)
	}
	taken = taken[:maxID+1]
	for i := range taken {
		taken[i] = false
	}
	var out []CandidatePair
	for _, p := range sorted {
		if taken[p.A] || taken[p.B] {
			continue
		}
		taken[p.A] = true
		taken[p.B] = true
		out = append(out, p)
	}
	return out, taken
}

// MarkChatted stamps the pair's cooldown bookkeeping.
func (e *Engine) MarkChatted(a, b int, busyUntil float64) {
	va, vb := e.Vehicles[a], e.Vehicles[b]
	va.BusyUntil = busyUntil
	vb.BusyUntil = busyUntil
	va.NextChatAt = busyUntil + e.Cfg.ChatCooldown
	vb.NextChatAt = busyUntil + e.Cfg.ChatCooldown
	va.lastChat[b] = e.now
	vb.lastChat[a] = e.now
}
