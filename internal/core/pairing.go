package core

import "sort"

// CandidatePair is a potential pairwise exchange with its Eq. (5) score.
type CandidatePair struct {
	A, B  int
	Score float64
}

// CandidatePairs enumerates vehicle pairs that are currently able to chat:
// both free (not mid-exchange, past their chat cooldown), present (not
// departed by a churn fault), within radio range, and past the per-pair
// cooldown. score computes the pair's priority; pairs scoring zero or less
// are dropped.
func (e *Engine) CandidatePairs(score func(a, b int) float64) []CandidatePair {
	now := e.now
	free := make([]int, 0, len(e.Vehicles))
	for _, v := range e.Vehicles {
		if v.BusyUntil <= now && v.NextChatAt <= now && !e.VehicleAway(v.ID) {
			free = append(free, v.ID)
		}
	}
	var out []CandidatePair
	for ai := 0; ai < len(free); ai++ {
		for bi := ai + 1; bi < len(free); bi++ {
			a, b := free[ai], free[bi]
			if e.Distance(a, b) > e.Radio.Params.MaxRangeMeters {
				continue
			}
			if last, ok := e.Vehicles[a].lastChat[b]; ok && now-last < e.Cfg.PairCooldown {
				continue
			}
			if s := score(a, b); s > 0 {
				out = append(out, CandidatePair{A: a, B: b, Score: s})
			}
		}
	}
	return out
}

// GreedyMatch selects a maximal set of disjoint pairs in descending score
// order — each vehicle chats with at most one peer at a time, and every
// vehicle prefers its highest-scoring available neighbor, which realizes the
// Eq. (5) exchange-sequence determination across the fleet. Ties break by
// (A, B) for determinism.
func GreedyMatch(pairs []CandidatePair) []CandidatePair {
	sorted := append([]CandidatePair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	taken := make(map[int]bool, len(sorted)*2)
	var out []CandidatePair
	for _, p := range sorted {
		if taken[p.A] || taken[p.B] {
			continue
		}
		taken[p.A] = true
		taken[p.B] = true
		out = append(out, p)
	}
	return out
}

// MarkChatted stamps the pair's cooldown bookkeeping.
func (e *Engine) MarkChatted(a, b int, busyUntil float64) {
	va, vb := e.Vehicles[a], e.Vehicles[b]
	va.BusyUntil = busyUntil
	vb.BusyUntil = busyUntil
	va.NextChatAt = busyUntil + e.Cfg.ChatCooldown
	vb.NextChatAt = busyUntil + e.Cfg.ChatCooldown
	va.lastChat[b] = e.now
	vb.lastChat[a] = e.now
}
