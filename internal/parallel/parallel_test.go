package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			hits := make([]atomic.Int64, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		_, err := MapErr(workers, 20, func(i int) (int, error) {
			switch i {
			case 5:
				return 0, errB
			case 3:
				return 0, errA
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want lowest-index error %v", workers, err, errA)
		}
	}
	out, err := MapErr(4, 10, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 10 {
		t.Errorf("clean MapErr: out=%v err=%v", out, err)
	}
}

func TestChunksCoverRangeExactly(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 64} {
		for _, n := range []int{0, 1, 5, 17, 100} {
			hits := make([]atomic.Int64, n)
			Chunks(workers, n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d covered %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestChunkBoundariesDependOnlyOnWorkerCount pins the determinism contract:
// the same (workers, n) always yields the same chunking.
func TestChunkBoundariesDependOnlyOnWorkerCount(t *testing.T) {
	record := func() []int {
		var mu atomic.Int64
		bounds := make([]int, 0, 8)
		var collect [128][2]int
		Chunks(4, 100, func(lo, hi int) {
			collect[mu.Add(1)-1] = [2]int{lo, hi}
		})
		k := int(mu.Load())
		seen := collect[:k]
		for _, b := range seen {
			bounds = append(bounds, b[0]*1000+b[1])
		}
		// Order of completion varies; normalize by sorting (insertion sort,
		// the set is tiny).
		for i := 1; i < len(bounds); i++ {
			for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
				bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
			}
		}
		return bounds
	}
	a, b := record(), record()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("chunk boundaries varied between runs: %v vs %v", a, b)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
				}
			}()
			ForEach(workers, 10, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForEachConcurrentMutation exercises real concurrency under -race: every
// index owns its slot, which is the usage pattern the package prescribes.
func TestForEachConcurrentMutation(t *testing.T) {
	const n = 1000
	out := make([]float64, n)
	ForEach(8, n, func(i int) { out[i] = float64(i) * 0.5 })
	for i, v := range out {
		if v != float64(i)*0.5 {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}
