package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a configured worker count to an effective one: zero or
// negative means "one worker per logical CPU" (GOMAXPROCS), the repository's
// default everywhere a Workers knob exists.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n). With an effective worker count of
// one (or n <= 1) it runs inline, serially, in index order. Otherwise up to
// `workers` goroutines pull indices from a shared counter until the range is
// drained; fn must only mutate state owned by its index (shared state may be
// read). A panic in any fn is re-raised on the calling goroutine, matching
// the serial path's behavior.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// Map runs fn for every index and returns the results in index order,
// regardless of which worker computed what.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible work. All indices run to completion; if any
// failed, the error at the LOWEST failing index is returned — the same error
// a serial loop that stops at the first failure would surface — alongside
// the full result slice.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Chunks splits [0, n) into at most `workers` contiguous ranges and runs
// fn(lo, hi) on each concurrently. Chunk boundaries depend only on (workers,
// n), so a kernel whose per-element work is independent of its chunk
// assignment stays bit-identical across worker counts. With one effective
// worker the whole range runs inline as fn(0, n).
func Chunks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	numChunks := (n + chunk - 1) / chunk
	ForEach(workers, numChunks, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
