// Package parallel provides the deterministic fan-out primitives the
// simulator's hot loops are built on: a bounded worker pool with
// order-preserving Map/ForEach helpers and a contiguous-chunk splitter for
// data-parallel kernels.
//
// Determinism contract: every helper assigns work by index, writes results
// into index-addressed slots, and reduces (where it reduces at all) in index
// order. A computation whose per-index work is itself deterministic therefore
// produces bit-identical output at any worker count, including the inline
// serial path taken when workers == 1 — which is exactly the pre-parallel
// behavior of the code that now calls these helpers.
package parallel
