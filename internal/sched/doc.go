// Package sched provides the discrete-event machinery for the virtual-time
// co-simulation: a deterministic event queue ordered by (time, sequence) so
// simultaneous events fire in insertion order, making whole runs
// reproducible.
//
// The queue carries deferred effects — chiefly transfer completions: a chat
// decides its outcome at initiation time but the dataset expansion and model
// merge take effect only when the payload would actually have landed.
package sched
