// Package sched provides the discrete-event machinery for the virtual-time
// co-simulation: a deterministic event queue ordered by (time, sequence) so
// simultaneous events fire in insertion order, making whole runs
// reproducible.
//
// The queue carries deferred effects — chiefly transfer completions: a chat
// decides its outcome at initiation time but the dataset expansion and model
// merge take effect only when the payload would actually have landed.
//
// Calendar is the tick-indexed due-time queue behind the engine's training
// scheduler (DESIGN.md §15): a power-of-two ring of buckets keyed by
// (dueTick, vehicleID) with lazy deletion, so an empty tick costs O(1) and a
// tick with k due vehicles costs O(k) — replacing the per-tick O(fleet) scan,
// which the engine keeps behind -legacy-due-scan as a byte-identical A/B arm.
package sched
