package sched

import "container/heap"

// Event is a scheduled callback.
type Event struct {
	// Time is the virtual time at which the event fires (seconds).
	Time float64
	// Fire runs the event's effect.
	Fire func()

	seq   uint64
	index int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue struct {
	heap eventHeap
	seq  uint64
}

// Schedule enqueues fire to run at time t and returns the event handle.
func (q *Queue) Schedule(t float64, fire func()) *Event {
	e := &Event{Time: t, Fire: fire, seq: q.seq}
	q.seq++
	heap.Push(&q.heap, e)
	return e
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// NextTime returns the time of the earliest pending event; ok is false when
// the queue is empty.
func (q *Queue) NextTime() (t float64, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].Time, true
}

// RunUntil fires every event scheduled at or before t, in (time, insertion)
// order. Events scheduled during execution are fired too if they fall within
// the bound.
func (q *Queue) RunUntil(t float64) {
	for len(q.heap) > 0 && q.heap[0].Time <= t {
		e := heap.Pop(&q.heap).(*Event)
		e.Fire()
	}
}
