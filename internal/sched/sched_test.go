package sched

import (
	"testing"
	"testing/quick"
)

func TestRunUntilOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(3, func() { got = append(got, 3) })
	q.Schedule(1, func() { got = append(got, 1) })
	q.Schedule(2, func() { got = append(got, 2) })
	q.RunUntil(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("fire order = %v", got)
	}
}

func TestRunUntilBoundary(t *testing.T) {
	var q Queue
	fired := 0
	q.Schedule(5, func() { fired++ })
	q.Schedule(5.0001, func() { fired++ })
	q.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired %d events at t=5, want 1 (inclusive boundary)", fired)
	}
	if q.Len() != 1 {
		t.Errorf("pending = %d", q.Len())
	}
}

func TestSimultaneousEventsFireInInsertionOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(1, func() { got = append(got, i) })
	}
	q.RunUntil(1)
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order violated: %v", got)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var q Queue
	var got []string
	q.Schedule(1, func() {
		got = append(got, "a")
		q.Schedule(2, func() { got = append(got, "b") })
		q.Schedule(99, func() { got = append(got, "never") })
	})
	q.RunUntil(5)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("nested scheduling: %v", got)
	}
}

func TestNextTime(t *testing.T) {
	var q Queue
	if _, ok := q.NextTime(); ok {
		t.Error("empty queue reported a next time")
	}
	q.Schedule(7, func() {})
	q.Schedule(3, func() {})
	if nt, ok := q.NextTime(); !ok || nt != 3 {
		t.Errorf("NextTime = %v, %v", nt, ok)
	}
}

func TestQueueDrainsCompletely(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		fired, want := 0, 0
		for _, tt := range times {
			if tt != tt || tt > 1e300 || tt < -1e300 { // NaN / ±Inf never fire
				continue
			}
			q.Schedule(tt, func() { fired++ })
			want++
		}
		q.RunUntil(1e300)
		return fired == want && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
