package sched

import (
	"math/rand"
	"slices"
	"testing"
)

func TestCalendarEmptyTickIsCheap(t *testing.T) {
	c := NewCalendar(8)
	out, buckets := c.PopDue(0, nil)
	if len(out) != 0 || buckets != 1 {
		t.Fatalf("empty pop: %v ids, %d buckets", out, buckets)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCalendarPopsAscendingIDOrder(t *testing.T) {
	c := NewCalendar(16)
	// Enqueue a same-tick cohort in scrambled order: the pop must come back
	// tie-broken by id.
	for _, id := range []int32{9, 2, 14, 0, 7} {
		c.Schedule(id, 5)
	}
	out, _ := c.PopDue(5, nil)
	want := []int32{0, 2, 7, 9, 14}
	if !slices.Equal(out, want) {
		t.Fatalf("popped %v, want %v", out, want)
	}
}

func TestCalendarRescheduleReplaces(t *testing.T) {
	c := NewCalendar(4)
	c.Schedule(1, 3)
	c.Schedule(1, 9) // replaces: the tick-3 entry must not fire
	out, _ := c.PopDue(8, nil)
	if len(out) != 0 {
		t.Fatalf("stale entry fired: %v", out)
	}
	out, _ = c.PopDue(9, out[:0])
	if !slices.Equal(out, []int32{1}) {
		t.Fatalf("popped %v, want [1]", out)
	}
	if tick, ok := c.Scheduled(1); ok {
		t.Fatalf("id 1 still scheduled at %d after pop", tick)
	}
}

func TestCalendarRemove(t *testing.T) {
	c := NewCalendar(4)
	c.Schedule(0, 2)
	c.Schedule(1, 2)
	c.Remove(0)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after remove, want 1", c.Len())
	}
	out, _ := c.PopDue(2, nil)
	if !slices.Equal(out, []int32{1}) {
		t.Fatalf("popped %v, want [1]", out)
	}
}

func TestCalendarPastTickClampsToPresent(t *testing.T) {
	c := NewCalendar(2)
	if _, _ = c.PopDue(10, nil); c.Len() != 0 {
		t.Fatal("setup")
	}
	c.Schedule(0, 3) // behind the cursor: must clamp, not vanish
	out, _ := c.PopDue(11, nil)
	if !slices.Equal(out, []int32{0}) {
		t.Fatalf("past-tick schedule popped %v, want [0]", out)
	}
}

func TestCalendarGrowsPastHorizon(t *testing.T) {
	c := NewCalendar(3)
	c.Schedule(0, 1)
	c.Schedule(1, 1000)  // far beyond the initial 64-slot ring
	c.Schedule(2, 70000) // forces a second growth
	out, _ := c.PopDue(999, nil)
	if !slices.Equal(out, []int32{0}) {
		t.Fatalf("pre-growth pop %v, want [0]", out)
	}
	out, _ = c.PopDue(1000, out[:0])
	if !slices.Equal(out, []int32{1}) {
		t.Fatalf("post-growth pop %v, want [1]", out)
	}
	out, _ = c.PopDue(70000, out[:0])
	if !slices.Equal(out, []int32{2}) {
		t.Fatalf("second-growth pop %v, want [2]", out)
	}
}

// calendarOracle is the reference implementation: a flat (tick, id) list
// kept sorted, scanned linearly. Same semantics, none of the wheel
// machinery.
type calendarOracle struct {
	due map[int32]int64
	cur int64
}

func (o *calendarOracle) schedule(id int32, tick int64) {
	if tick < o.cur {
		tick = o.cur
	}
	o.due[id] = tick
}

func (o *calendarOracle) remove(id int32) { delete(o.due, id) }

func (o *calendarOracle) popDue(tick int64) []int32 {
	var out []int32
	for id, t := range o.due {
		if t <= tick {
			out = append(out, id)
			delete(o.due, id)
		}
	}
	slices.Sort(out)
	o.cur = tick + 1
	return out
}

// TestCalendarMatchesOracle drives random enqueue / re-enqueue / remove /
// pop sequences against the sorted-slice oracle. Same-tick cohorts must
// come back tie-broken by id, removals must never fire, and re-enqueues
// must supersede prior schedules — across ring growths and long idle gaps.
func TestCalendarMatchesOracle(t *testing.T) {
	const population = 64
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		c := NewCalendar(population)
		o := &calendarOracle{due: make(map[int32]int64)}
		var tick int64
		var scratch []int32
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // schedule (or re-enqueue) a random id
				id := int32(rng.Intn(population))
				// Mostly near-future ticks, occasionally far enough to grow
				// the ring or land behind the cursor.
				var at int64
				switch rng.Intn(8) {
				case 0:
					at = tick + int64(rng.Intn(500))
				case 1:
					at = tick - int64(rng.Intn(20)) // past: clamps
				default:
					at = tick + int64(rng.Intn(12))
				}
				c.Schedule(id, at)
				o.schedule(id, at)
			case op < 7: // remove a random id
				id := int32(rng.Intn(population))
				c.Remove(id)
				o.remove(id)
			default: // advance and pop
				tick += int64(1 + rng.Intn(6))
				var got []int32
				got, _ = c.PopDue(tick, scratch[:0])
				scratch = got
				want := o.popDue(tick)
				if !slices.Equal(got, want) {
					t.Fatalf("trial %d step %d tick %d: popped %v, oracle %v",
						trial, step, tick, got, want)
				}
				if c.Len() != len(o.due) {
					t.Fatalf("trial %d step %d: Len = %d, oracle %d",
						trial, step, c.Len(), len(o.due))
				}
			}
		}
		// Drain: everything still scheduled must eventually fire, once.
		got, _ := c.PopDue(tick+100000, nil)
		want := o.popDue(tick + 100000)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d drain: popped %v, oracle %v", trial, got, want)
		}
		if c.Len() != 0 {
			t.Fatalf("trial %d: %d ids left after drain", trial, c.Len())
		}
	}
}
