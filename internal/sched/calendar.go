package sched

import "slices"

// Calendar is a deterministic due-time calendar queue: a bucketed tick
// wheel keyed by (dueTick, id). It schedules a fixed population of integer
// ids — one pending due tick per id — and pops the ids due at each tick in
// ascending id order, so a consumer that previously discovered due work by
// scanning the whole population in id order sees the identical sequence.
//
// Cost model: Schedule and Remove are O(1); PopDue over an empty tick is
// O(1) and a tick with k due ids costs O(k) (amortized — a bucket holding
// unsorted runs from several source ticks pays one O(k log k) sort), all
// independent of the population size. That is the property the engine's
// trainTick needs: per-tick cost scales with due work, not fleet size.
//
// Internals: the wheel is a power-of-two ring of buckets indexed by
// tick&mask, growing whenever a schedule lands beyond the current horizon.
// Remove is lazy — the authoritative schedule is the per-id due array, and
// a ring entry whose recorded due tick no longer matches is skipped (and
// dropped) at pop time, so rescheduling an id never has to search its old
// bucket. The zero Calendar is unusable; construct with NewCalendar. A
// Calendar is not safe for concurrent use.
type Calendar struct {
	ring [][]int32 // ring[t&mask]: ids scheduled for tick t (may hold stale entries)
	mask int64
	due  []int64 // due[id]: scheduled tick, or unscheduled (-1)
	cur  int64   // next tick PopDue will drain

	scheduled int // live (non-stale) entries across the wheel
	merge     []int32
}

// unscheduled marks an id with no pending due tick.
const unscheduled = -1

// NewCalendar returns an empty calendar over the id population [0, n).
func NewCalendar(n int) *Calendar {
	c := &Calendar{
		ring: make([][]int32, 64),
		mask: 63,
		due:  make([]int64, n),
	}
	for i := range c.due {
		c.due[i] = unscheduled
	}
	return c
}

// Len returns the number of scheduled ids.
func (c *Calendar) Len() int { return c.scheduled }

// Scheduled returns an id's pending due tick; ok is false when the id has
// none.
func (c *Calendar) Scheduled(id int32) (tick int64, ok bool) {
	if t := c.due[id]; t != unscheduled {
		return t, true
	}
	return 0, false
}

// Schedule sets an id's due tick, replacing any pending one. Ticks in the
// past (before the next PopDue tick) are clamped to the present, so the id
// fires on the very next pop rather than being lost behind the cursor.
func (c *Calendar) Schedule(id int32, tick int64) {
	if tick < c.cur {
		tick = c.cur
	}
	if c.due[id] == unscheduled {
		c.scheduled++
	}
	// The stale prior entry (if any) is skipped lazily at pop time.
	c.due[id] = tick
	if tick-c.cur > c.mask {
		c.grow(tick)
	}
	b := tick & c.mask
	c.ring[b] = append(c.ring[b], id)
}

// Remove unschedules an id: its pending due tick (if any) is discarded and
// PopDue will never return it until it is scheduled again. The wheel entry
// is dropped lazily.
func (c *Calendar) Remove(id int32) {
	if c.due[id] != unscheduled {
		c.due[id] = unscheduled
		c.scheduled--
	}
}

// PopDue appends to dst every id due at or before tick, in ascending id
// order, unscheduling them, and advances the cursor past tick; buckets
// reports how many wheel buckets were examined. Ids scheduled exactly at
// the cursor by earlier pops are included — the wheel never loses work
// behind the cursor.
func (c *Calendar) PopDue(tick int64, dst []int32) (out []int32, buckets int) {
	out = dst
	base := len(out)
	for ; c.cur <= tick; c.cur++ {
		b := c.cur & c.mask
		bucket := c.ring[b]
		if len(bucket) == 0 {
			buckets++
			continue
		}
		buckets++
		for _, id := range bucket {
			if c.due[id] == c.cur {
				c.due[id] = unscheduled
				c.scheduled--
				out = append(out, id)
			}
		}
		c.ring[b] = bucket[:0]
	}
	// Buckets fill with ascending runs (producers re-enqueue in id order),
	// so a popped cohort is a concatenation of few sorted runs: already
	// sorted (one O(k) scan), two runs from two producer ticks (one O(k)
	// merge — the steady state when float-conservative early pops re-enqueue
	// alongside the regular cohort), or, rarely, more (full sort).
	c.restoreOrder(out[base:])
	return out, buckets
}

// restoreOrder sorts a popped cohort, exploiting its run structure.
func (c *Calendar) restoreOrder(popped []int32) {
	descent := 0
	for i := 1; i < len(popped); i++ {
		if popped[i] < popped[i-1] {
			if descent != 0 {
				slices.Sort(popped)
				return
			}
			descent = i
		}
	}
	if descent == 0 {
		return
	}
	// Exactly two ascending runs: merge left into place through scratch.
	left := append(c.merge[:0], popped[:descent]...)
	c.merge = left
	right := popped[descent:]
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if left[i] <= right[j] {
			popped[k] = left[i]
			i++
		} else {
			popped[k] = right[j]
			j++
		}
		k++
	}
	copy(popped[k:], left[i:])
}

// grow widens the ring to cover through tick, re-bucketing live entries.
func (c *Calendar) grow(tick int64) {
	size := int64(len(c.ring))
	for tick-c.cur > size-1 {
		size *= 2
	}
	old := c.ring
	c.ring = make([][]int32, size)
	c.mask = size - 1
	for _, bucket := range old {
		for _, id := range bucket {
			if t := c.due[id]; t != unscheduled {
				b := t & c.mask
				c.ring[b] = append(c.ring[b], id)
			}
		}
	}
}
