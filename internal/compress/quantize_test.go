package compress

import (
	"math"
	"testing"

	"lbchat/internal/simrand"
)

func TestQuantizeRoundTripBounds(t *testing.T) {
	rng := simrand.New(1)
	flat := []float64{-2, -0.5, 0, 0.3, 1.7}
	q, err := Quantize(flat, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := q.Dense()
	step := (q.Hi - q.Lo) / 255
	for i := range flat {
		if math.Abs(got[i]-flat[i]) > step {
			t.Errorf("[%d] error %v exceeds one step %v", i, got[i]-flat[i], step)
		}
	}
}

func TestQuantizeUnbiased(t *testing.T) {
	// Stochastic rounding: the mean reconstruction over many draws
	// approaches the true value.
	rng := simrand.New(2)
	const v = 0.3337
	flat := []float64{0, v, 1} // fixed range [0,1]
	var acc float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		q, err := Quantize(flat, 3, rng) // coarse: 7 levels
		if err != nil {
			t.Fatal(err)
		}
		acc += q.Dense()[1]
	}
	mean := acc / trials
	if math.Abs(mean-v) > 0.01 {
		t.Errorf("mean reconstruction %v, want ≈%v (unbiased)", mean, v)
	}
}

func TestQuantizeMoreBitsLessError(t *testing.T) {
	rng := simrand.New(3)
	flat := make([]float64, 500)
	for i := range flat {
		flat[i] = rng.Normal(0, 1)
	}
	errAt := func(bits int) float64 {
		q, err := Quantize(flat, bits, simrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		var acc float64
		for i, v := range q.Dense() {
			acc += (v - flat[i]) * (v - flat[i])
		}
		return acc
	}
	if e4, e8 := errAt(4), errAt(8); e8 >= e4 {
		t.Errorf("8-bit error %v not below 4-bit error %v", e8, e4)
	}
}

func TestQuantizeEdgeCases(t *testing.T) {
	rng := simrand.New(4)
	if _, err := Quantize(nil, 8, rng); err != nil {
		t.Errorf("empty vector: %v", err)
	}
	q, err := Quantize([]float64{5, 5, 5}, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range q.Dense() {
		if v != 5 {
			t.Errorf("constant vector reconstructed as %v", v)
		}
	}
	if _, err := Quantize([]float64{1}, 0, rng); err == nil {
		t.Error("0-bit width accepted")
	}
	if _, err := Quantize([]float64{1}, 17, rng); err == nil {
		t.Error("17-bit width accepted")
	}
}

func TestQuantWireSize(t *testing.T) {
	rng := simrand.New(5)
	flat := make([]float64, 1000)
	q8, _ := Quantize(flat, 8, rng)
	q4, _ := Quantize(flat, 4, rng)
	if q4.WireSize() >= q8.WireSize() {
		t.Errorf("4-bit wire %d not below 8-bit %d", q4.WireSize(), q8.WireSize())
	}
	// 8-bit ≈ 1000 bytes + header.
	if q8.WireSize() < 1000 || q8.WireSize() > 1100 {
		t.Errorf("8-bit wire size = %d", q8.WireSize())
	}
	if QuantPsi(8) != 0.25 || QuantPsi(32) != 1 {
		t.Error("QuantPsi baseline wrong")
	}
}
