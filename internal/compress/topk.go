package compress

import (
	"fmt"
	"math"
	"sort"
)

// Bytes-per-entry constants for compressed payload sizing.
const (
	// valueBytes is the wire size of one parameter value (float32).
	valueBytes = 4
	// indexBytes is the wire size of one parameter index (uint32).
	indexBytes = 4
	// headerBytes covers magic + counts.
	headerBytes = 12
)

// Sparse is a top-k sparsified model: the k largest-magnitude parameters as
// index–value pairs, plus the dense length for reconstruction.
type Sparse struct {
	// Len is the dense parameter count.
	Len int
	// Indices are the kept parameter positions, strictly increasing.
	Indices []int
	// Values are the kept parameter values, parallel to Indices.
	Values []float64
}

// K returns the number of retained parameters.
func (s *Sparse) K() int { return len(s.Indices) }

// WireSize returns the transmission size in bytes. When more than half the
// parameters are kept, a dense encoding (bitmap-free, full vector) is
// cheaper and is what the size accounts for — so WireSize is monotone in K
// and never exceeds the uncompressed size plus header.
func (s *Sparse) WireSize() int {
	sparse := headerBytes + s.K()*(indexBytes+valueBytes)
	dense := headerBytes + s.Len*valueBytes
	if sparse < dense {
		return sparse
	}
	return dense
}

// KForPsi returns the number of parameters to keep so that the compressed
// size is approximately ψ × the uncompressed size. ψ is clamped to [0, 1].
func KForPsi(numParams int, psi float64) int {
	if psi <= 0 {
		return 0
	}
	if psi >= 1 {
		return numParams
	}
	// Budget in bytes relative to the dense payload.
	budget := psi * float64(numParams*valueBytes)
	k := int(budget / float64(indexBytes+valueBytes))
	if k > numParams {
		k = numParams
	}
	if k < 1 {
		k = 1
	}
	return k
}

// PsiForK returns the effective ψ (relative payload size) of keeping k
// parameters out of numParams.
func PsiForK(numParams, k int) float64 {
	if numParams == 0 || k <= 0 {
		return 0
	}
	if k >= numParams {
		return 1
	}
	return math.Min(1, float64(k*(indexBytes+valueBytes))/float64(numParams*valueBytes))
}

// TopK sparsifies a dense parameter vector to its k largest-magnitude
// entries. k is clamped to [0, len(flat)].
func TopK(flat []float64, k int) *Sparse {
	n := len(flat)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	s := &Sparse{Len: n}
	if k == 0 {
		return s
	}
	if k == n {
		s.Indices = make([]int, n)
		s.Values = make([]float64, n)
		for i, v := range flat {
			s.Indices[i] = i
			s.Values[i] = v
		}
		return s
	}
	// Select the k largest magnitudes via a threshold found by sorting a
	// copy of magnitudes. O(n log n) but n is the parameter count and this
	// runs once per exchange, not per training step.
	mags := make([]float64, n)
	for i, v := range flat {
		mags[i] = math.Abs(v)
	}
	sorted := append([]float64(nil), mags...)
	sort.Float64s(sorted)
	threshold := sorted[n-k]
	// First pass: everything strictly above threshold.
	s.Indices = make([]int, 0, k)
	s.Values = make([]float64, 0, k)
	for i, v := range flat {
		if mags[i] > threshold {
			s.Indices = append(s.Indices, i)
			s.Values = append(s.Values, v)
		}
	}
	// Second pass: fill remaining slots with ties at the threshold.
	for i, v := range flat {
		if len(s.Indices) >= k {
			break
		}
		if mags[i] == threshold {
			s.Indices = append(s.Indices, i)
			s.Values = append(s.Values, v)
		}
	}
	sortPairs(s)
	return s
}

// Compress sparsifies flat to the level ψ (relative payload size).
func Compress(flat []float64, psi float64) *Sparse {
	return TopK(flat, KForPsi(len(flat), psi))
}

// Dense reconstructs the dense vector, zero-filling dropped parameters —
// the standard biased top-k decompression.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Len)
	for i, idx := range s.Indices {
		out[idx] = s.Values[i]
	}
	return out
}

// ApplyAsUpdate reconstructs a dense vector using base for the dropped
// coordinates: kept coordinates take the transmitted values, dropped ones
// keep the receiver's own parameters. This is how a receiver materializes a
// compressed peer model for evaluation and aggregation without zero-holes.
func (s *Sparse) ApplyAsUpdate(base []float64) ([]float64, error) {
	if len(base) != s.Len {
		return nil, fmt.Errorf("compress: base length %d != sparse length %d", len(base), s.Len)
	}
	out := append([]float64(nil), base...)
	for i, idx := range s.Indices {
		out[idx] = s.Values[i]
	}
	return out, nil
}

func sortPairs(s *Sparse) {
	type pair struct {
		i int
		v float64
	}
	ps := make([]pair, len(s.Indices))
	for j := range s.Indices {
		ps[j] = pair{s.Indices[j], s.Values[j]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	for j, p := range ps {
		s.Indices[j] = p.i
		s.Values[j] = p.v
	}
}
