package compress

import (
	"fmt"
	"math"

	"lbchat/internal/simrand"
)

// Quantized is a uniformly quantized parameter vector: each value is encoded
// as a level index in [0, 2^Bits) over the vector's dynamic range, with
// stochastic rounding so the encoding is unbiased (QSGD-style). It is the
// "quantization" alternative the paper notes can replace top-k
// sparsification in LbChat's exchanges.
type Quantized struct {
	// Bits is the per-value code width (1..16).
	Bits int
	// Lo and Hi bound the represented range; levels are spread uniformly
	// across it.
	Lo, Hi float64
	// Codes holds one level index per parameter.
	Codes []uint16
}

// MaxQuantBits bounds the supported code width.
const MaxQuantBits = 16

// Quantize encodes flat at the given bit width with stochastic rounding.
// rng drives the rounding; pass a derived stream for reproducibility.
func Quantize(flat []float64, bits int, rng *simrand.Rand) (*Quantized, error) {
	if bits < 1 || bits > MaxQuantBits {
		return nil, fmt.Errorf("compress: bit width %d outside [1, %d]", bits, MaxQuantBits)
	}
	q := &Quantized{Bits: bits, Codes: make([]uint16, len(flat))}
	if len(flat) == 0 {
		return q, nil
	}
	lo, hi := flat[0], flat[0]
	for _, v := range flat {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	q.Lo, q.Hi = lo, hi
	levels := float64(uint32(1)<<bits - 1)
	if hi == lo {
		return q, nil // all-equal vector: all codes zero, Dense returns lo
	}
	scale := levels / (hi - lo)
	for i, v := range flat {
		exact := (v - lo) * scale
		base := math.Floor(exact)
		frac := exact - base
		code := base
		// Stochastic rounding: round up with probability frac, making the
		// quantizer unbiased in expectation.
		if rng.Float64() < frac {
			code++
		}
		if code > levels {
			code = levels
		}
		q.Codes[i] = uint16(code)
	}
	return q, nil
}

// Dense reconstructs the quantized vector.
func (q *Quantized) Dense() []float64 {
	out := make([]float64, len(q.Codes))
	if len(q.Codes) == 0 {
		return out
	}
	levels := float64(uint32(1)<<q.Bits - 1)
	if q.Hi == q.Lo || levels == 0 {
		for i := range out {
			out[i] = q.Lo
		}
		return out
	}
	step := (q.Hi - q.Lo) / levels
	for i, c := range q.Codes {
		out[i] = q.Lo + float64(c)*step
	}
	return out
}

// WireSize returns the transmission size in bytes: packed codes plus the
// range header.
func (q *Quantized) WireSize() int {
	const header = 12 + 16 // magic+count+bits, two float64 bounds
	return header + (len(q.Codes)*q.Bits+7)/8
}

// QuantPsi returns the effective ψ (relative payload size) of a bit width,
// against the float32 wire baseline.
func QuantPsi(bits int) float64 {
	return float64(bits) / 32
}
