// Package compress implements the model compression used during exchanges:
// top-k sparsification [22] with index–value pair encoding [23]. The
// compression level is expressed as ψ = 1/φ ∈ [0, 1], the reciprocal of the
// paper's compression ratio φ = S/S_c: ψ = 0 sends nothing, ψ = 1 sends the
// model uncompressed.
package compress
