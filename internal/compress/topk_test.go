package compress

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKSelectsLargestMagnitudes(t *testing.T) {
	flat := []float64{0.1, -5, 3, 0, -0.2, 4}
	sp := TopK(flat, 3)
	if sp.K() != 3 {
		t.Fatalf("K = %d", sp.K())
	}
	want := map[int]float64{1: -5, 5: 4, 2: 3}
	for i, idx := range sp.Indices {
		if v, ok := want[idx]; !ok || v != sp.Values[i] {
			t.Errorf("kept (%d, %v), want one of %v", idx, sp.Values[i], want)
		}
	}
}

func TestTopKIndicesSorted(t *testing.T) {
	flat := []float64{9, -8, 7, -6, 5}
	sp := TopK(flat, 4)
	if !sort.IntsAreSorted(sp.Indices) {
		t.Errorf("indices not sorted: %v", sp.Indices)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	flat := []float64{1, 2, 3}
	if sp := TopK(flat, 0); sp.K() != 0 || sp.Len != 3 {
		t.Error("k=0 broken")
	}
	if sp := TopK(flat, 99); sp.K() != 3 {
		t.Error("k>n not clamped")
	}
	if sp := TopK(flat, -1); sp.K() != 0 {
		t.Error("negative k not clamped")
	}
	if sp := TopK(nil, 1); sp.K() != 0 || sp.Len != 0 {
		t.Error("empty input broken")
	}
}

func TestTopKTies(t *testing.T) {
	flat := []float64{1, 1, 1, 1}
	sp := TopK(flat, 2)
	if sp.K() != 2 {
		t.Fatalf("tie handling kept %d", sp.K())
	}
}

func TestDenseRoundTrip(t *testing.T) {
	flat := []float64{0.5, -2, 0, 3}
	sp := TopK(flat, 4)
	got := sp.Dense()
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatalf("full-k dense differs at %d", i)
		}
	}
	sp = TopK(flat, 2)
	got = sp.Dense()
	want := []float64{0, -2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dense[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestApplyAsUpdate(t *testing.T) {
	flat := []float64{10, -20, 30}
	sp := TopK(flat, 1) // keeps index 2 (30)
	base := []float64{1, 2, 3}
	got, err := sp.ApplyAsUpdate(base)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if base[2] != 3 {
		t.Error("ApplyAsUpdate mutated base")
	}
	if _, err := sp.ApplyAsUpdate([]float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestWireSizeMonotone(t *testing.T) {
	flat := make([]float64, 1000)
	for i := range flat {
		flat[i] = float64(i)
	}
	prev := -1
	for k := 0; k <= 1000; k += 100 {
		size := TopK(flat, k).WireSize()
		if size < prev {
			t.Fatalf("wire size not monotone at k=%d: %d < %d", k, size, prev)
		}
		prev = size
	}
	// Never more than dense + header.
	if full := TopK(flat, 1000).WireSize(); full > headerBytes+1000*valueBytes {
		t.Errorf("full-k wire size %d exceeds dense encoding", full)
	}
}

func TestKForPsiAndBack(t *testing.T) {
	n := 10000
	for _, psi := range []float64{0.01, 0.1, 0.5, 0.9} {
		k := KForPsi(n, psi)
		eff := PsiForK(n, k)
		if math.Abs(eff-psi) > 0.01 {
			t.Errorf("psi %v → k %d → eff %v", psi, k, eff)
		}
	}
	if KForPsi(n, 0) != 0 || KForPsi(n, -1) != 0 {
		t.Error("non-positive psi should keep nothing")
	}
	if KForPsi(n, 1) != n || KForPsi(n, 2) != n {
		t.Error("psi ≥ 1 should keep everything")
	}
	if PsiForK(0, 5) != 0 || PsiForK(n, 0) != 0 || PsiForK(n, n) != 1 {
		t.Error("PsiForK edge cases")
	}
}

func TestCompressEnergyProperty(t *testing.T) {
	// The kept coordinates must carry at least as much L2 energy as any
	// other subset of equal size — in particular at least k/n of the total.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		flat := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			flat[i] = math.Mod(v, 1e3)
			total += flat[i] * flat[i]
		}
		k := len(flat)/2 + 1
		sp := TopK(flat, k)
		var kept float64
		for _, v := range sp.Values {
			kept += v * v
		}
		return kept+1e-9 >= total*float64(k)/float64(len(flat))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
