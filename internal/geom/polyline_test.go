package geom

import (
	"math"
	"testing"
)

func line(pts ...Point) *Polyline { return NewPolyline(pts) }

func TestPolylineLength(t *testing.T) {
	pl := line(Pt(0, 0), Pt(3, 0), Pt(3, 4))
	if !near(pl.Length(), 7) {
		t.Errorf("length = %v, want 7", pl.Length())
	}
}

func TestPolylineCollapsesDuplicates(t *testing.T) {
	pl := line(Pt(0, 0), Pt(0, 0), Pt(1, 0))
	if pl.Len() != 2 {
		t.Errorf("len = %d, want 2", pl.Len())
	}
}

func TestPolylineAt(t *testing.T) {
	pl := line(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		s    float64
		want Point
	}{
		{-5, Pt(0, 0)},
		{0, Pt(0, 0)},
		{4, Pt(4, 0)},
		{10, Pt(10, 0)},
		{99, Pt(10, 0)},
	}
	for _, c := range cases {
		if got := pl.At(c.s); !near(got.X, c.want.X) || !near(got.Y, c.want.Y) {
			t.Errorf("At(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPolylineAtCorner(t *testing.T) {
	pl := line(Pt(0, 0), Pt(10, 0), Pt(10, 10))
	p := pl.At(15)
	if !near(p.X, 10) || !near(p.Y, 5) {
		t.Errorf("At(15) = %v, want (10,5)", p)
	}
}

func TestHeadingAt(t *testing.T) {
	pl := line(Pt(0, 0), Pt(10, 0), Pt(10, 10))
	if h := pl.HeadingAt(5); !near(h, 0) {
		t.Errorf("heading on first leg = %v", h)
	}
	if h := pl.HeadingAt(15); !near(h, math.Pi/2) {
		t.Errorf("heading on second leg = %v", h)
	}
}

func TestProject(t *testing.T) {
	pl := line(Pt(0, 0), Pt(10, 0), Pt(10, 10))
	arc, dist := pl.Project(Pt(4, 3))
	if !near(arc, 4) || !near(dist, 3) {
		t.Errorf("project (4,3): arc=%v dist=%v", arc, dist)
	}
	arc, dist = pl.Project(Pt(12, 7))
	if !near(arc, 17) || !near(dist, 2) {
		t.Errorf("project (12,7): arc=%v dist=%v", arc, dist)
	}
}

func TestProjectEmpty(t *testing.T) {
	pl := line()
	_, dist := pl.Project(Pt(1, 1))
	if !math.IsInf(dist, 1) {
		t.Errorf("empty polyline distance = %v, want +Inf", dist)
	}
}

func TestProjectSinglePoint(t *testing.T) {
	pl := line(Pt(2, 2))
	arc, dist := pl.Project(Pt(2, 5))
	if arc != 0 || !near(dist, 3) {
		t.Errorf("single point: arc=%v dist=%v", arc, dist)
	}
}

func TestResample(t *testing.T) {
	pl := line(Pt(0, 0), Pt(10, 0))
	pts := pl.Resample(2.5)
	if len(pts) != 5 {
		t.Fatalf("resampled %d points, want 5", len(pts))
	}
	last := pts[len(pts)-1]
	if !near(last.X, 10) {
		t.Errorf("final resample point = %v", last)
	}
}

func TestConcat(t *testing.T) {
	a := line(Pt(0, 0), Pt(5, 0))
	b := line(Pt(5, 0), Pt(5, 5))
	c := a.Concat(b)
	if !near(c.Length(), 10) {
		t.Errorf("concat length = %v", c.Length())
	}
}

func TestProjectConsistentWithAt(t *testing.T) {
	// Projecting a point ON the polyline must return (≈arc, ≈0).
	pl := line(Pt(0, 0), Pt(20, 0), Pt(20, 15), Pt(0, 15))
	for s := 0.0; s <= pl.Length(); s += 1.7 {
		arc, dist := pl.Project(pl.At(s))
		if dist > 1e-9 {
			t.Fatalf("on-line point at s=%v has dist %v", s, dist)
		}
		if math.Abs(arc-s) > 1e-6 {
			t.Fatalf("on-line point at s=%v projects to arc %v", s, arc)
		}
	}
}
