package geom

import "math"

// Polyline is a sequence of points with a precomputed arc-length
// parameterization, used for lane centerlines and vehicle routes.
type Polyline struct {
	pts    []Point
	cumLen []float64 // cumLen[i] = arc length from pts[0] to pts[i]
}

// NewPolyline builds a polyline from the given points. Consecutive duplicate
// points are collapsed. A polyline needs at least one point to be useful;
// an empty input yields an empty polyline with zero length.
func NewPolyline(pts []Point) *Polyline {
	clean := make([]Point, 0, len(pts))
	for _, p := range pts {
		if n := len(clean); n > 0 && clean[n-1].Dist(p) < 1e-12 {
			continue
		}
		clean = append(clean, p)
	}
	cum := make([]float64, len(clean))
	for i := 1; i < len(clean); i++ {
		cum[i] = cum[i-1] + clean[i-1].Dist(clean[i])
	}
	return &Polyline{pts: clean, cumLen: cum}
}

// Len returns the number of points.
func (pl *Polyline) Len() int { return len(pl.pts) }

// Points returns a copy of the underlying points.
func (pl *Polyline) Points() []Point {
	out := make([]Point, len(pl.pts))
	copy(out, pl.pts)
	return out
}

// Point returns the i-th point.
func (pl *Polyline) Point(i int) Point { return pl.pts[i] }

// Length returns the total arc length.
func (pl *Polyline) Length() float64 {
	if len(pl.cumLen) == 0 {
		return 0
	}
	return pl.cumLen[len(pl.cumLen)-1]
}

// At returns the point at arc length s from the start, clamped to the
// polyline's extent.
func (pl *Polyline) At(s float64) Point {
	n := len(pl.pts)
	switch {
	case n == 0:
		return Point{}
	case n == 1 || s <= 0:
		return pl.pts[0]
	case s >= pl.Length():
		return pl.pts[n-1]
	}
	i := pl.segmentIndex(s)
	segLen := pl.cumLen[i+1] - pl.cumLen[i]
	t := (s - pl.cumLen[i]) / segLen
	return Lerp(pl.pts[i], pl.pts[i+1], t)
}

// HeadingAt returns the tangent heading at arc length s.
func (pl *Polyline) HeadingAt(s float64) float64 {
	n := len(pl.pts)
	if n < 2 {
		return 0
	}
	i := pl.segmentIndex(Clamp(s, 0, pl.Length()))
	return pl.pts[i+1].Sub(pl.pts[i]).Heading()
}

// segmentIndex returns the index i of the segment [pts[i], pts[i+1]]
// containing arc length s. s must be within [0, Length()] and the polyline
// must have at least two points.
func (pl *Polyline) segmentIndex(s float64) int {
	lo, hi := 0, len(pl.cumLen)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if pl.cumLen[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Project returns the arc length of the point on the polyline closest to p,
// together with the distance from p to that point.
func (pl *Polyline) Project(p Point) (arc, dist float64) {
	n := len(pl.pts)
	if n == 0 {
		return 0, math.Inf(1)
	}
	if n == 1 {
		return 0, pl.pts[0].Dist(p)
	}
	bestDist := math.Inf(1)
	bestArc := 0.0
	for i := 0; i < n-1; i++ {
		seg := Segment{A: pl.pts[i], B: pl.pts[i+1]}
		q, t := seg.ClosestPoint(p)
		if d := q.Dist(p); d < bestDist {
			bestDist = d
			bestArc = pl.cumLen[i] + t*seg.Length()
		}
	}
	return bestArc, bestDist
}

// Resample returns points spaced ds apart along the polyline, always
// including the final point.
func (pl *Polyline) Resample(ds float64) []Point {
	if pl.Len() == 0 || ds <= 0 {
		return nil
	}
	total := pl.Length()
	out := make([]Point, 0, int(total/ds)+2)
	for s := 0.0; s < total; s += ds {
		out = append(out, pl.At(s))
	}
	out = append(out, pl.At(total))
	return out
}

// Concat returns a new polyline consisting of pl followed by other.
func (pl *Polyline) Concat(other *Polyline) *Polyline {
	pts := make([]Point, 0, len(pl.pts)+other.Len())
	pts = append(pts, pl.pts...)
	pts = append(pts, other.pts...)
	return NewPolyline(pts)
}
