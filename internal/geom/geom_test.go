package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -6-4 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestUnitAndZero(t *testing.T) {
	if got := Pt(0, 0).Unit(); got != Pt(0, 0) {
		t.Errorf("Unit of zero = %v", got)
	}
	u := Pt(3, 4).Unit()
	if !near(u.Norm(), 1) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
}

func TestRotate(t *testing.T) {
	p := Pt(1, 0).Rotate(math.Pi / 2)
	if !near(p.X, 0) || !near(p.Y, 1) {
		t.Errorf("rotate 90° = %v", p)
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		// Bound magnitudes to avoid float overflow noise.
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		theta = math.Mod(theta, 2*math.Pi)
		p := Pt(x, y)
		return math.Abs(p.Rotate(theta).Norm()-p.Norm()) < 1e-6*(1+p.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0: %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1: %v", got)
	}
	if got := Lerp(a, b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp t=0.5: %v", got)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{A: Pt(0, 0), B: Pt(10, 0)}
	q, tt := s.ClosestPoint(Pt(5, 3))
	if q != Pt(5, 0) || !near(tt, 0.5) {
		t.Errorf("mid projection: %v t=%v", q, tt)
	}
	q, tt = s.ClosestPoint(Pt(-4, 2))
	if q != Pt(0, 0) || tt != 0 {
		t.Errorf("before-start clamps: %v t=%v", q, tt)
	}
	q, tt = s.ClosestPoint(Pt(99, 2))
	if q != Pt(10, 0) || tt != 1 {
		t.Errorf("after-end clamps: %v t=%v", q, tt)
	}
}

func TestSegmentDegenerate(t *testing.T) {
	s := Segment{A: Pt(2, 2), B: Pt(2, 2)}
	q, tt := s.ClosestPoint(Pt(5, 6))
	if q != Pt(2, 2) || tt != 0 {
		t.Errorf("degenerate segment: %v t=%v", q, tt)
	}
	if got := s.DistToPoint(Pt(5, 6)); !near(got, 5) {
		t.Errorf("degenerate distance = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !near(got, c.want) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1000)
		w := WrapAngle(a)
		return w > -math.Pi-tol && w <= math.Pi+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Origin: Pt(10, -5), Heading: 1.1}
	pts := []Point{Pt(0, 0), Pt(3, 4), Pt(-7, 2)}
	for _, p := range pts {
		back := f.ToWorld(f.ToLocal(p))
		if !near(back.X, p.X) || !near(back.Y, p.Y) {
			t.Errorf("round trip of %v gives %v", p, back)
		}
	}
}

func TestFrameAheadIsPositiveX(t *testing.T) {
	// A point straight ahead of the ego maps to +x in the local frame.
	f := Frame{Origin: Pt(0, 0), Heading: math.Pi / 2} // facing north
	local := f.ToLocal(Pt(0, 10))
	if !near(local.X, 10) || !near(local.Y, 0) {
		t.Errorf("ahead point maps to %v, want (10,0)", local)
	}
	// A point to the left (west when facing north) maps to +y.
	local = f.ToLocal(Pt(-3, 0))
	if !near(local.X, 0) || !near(local.Y, 3) {
		t.Errorf("left point maps to %v, want (0,3)", local)
	}
}
