package geom

import "math"

// Point is a 2D point or vector in world coordinates (meters).
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the 3D cross product of p and q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Heading returns the angle of the vector p in radians, in (-π, π].
func (p Point) Heading() float64 { return math.Atan2(p.Y, p.X) }

// Unit returns p normalized to unit length, or the zero vector if p is zero.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return Point{}
	}
	return Point{p.X / n, p.Y / n}
}

// Rotate returns p rotated by theta radians counterclockwise.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// Lerp linearly interpolates between p and q: t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Segment is a directed line segment.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// ClosestPoint returns the point on s closest to p and the parameter
// t ∈ [0, 1] such that the point equals Lerp(s.A, s.B, t).
func (s Segment) ClosestPoint(p Point) (Point, float64) {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(d) / den
	t = Clamp(t, 0, 1)
	return Lerp(s.A, s.B, t), t
}

// DistToPoint returns the distance from p to the nearest point of s.
func (s Segment) DistToPoint(p Point) float64 {
	q, _ := s.ClosestPoint(p)
	return q.Dist(p)
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WrapAngle normalizes an angle to (-π, π].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Frame is a rigid 2D ego frame: origin at Origin, x-axis pointing along
// Heading. World points transform into the frame so that "ahead of the ego"
// maps to positive x.
type Frame struct {
	Origin  Point
	Heading float64
}

// ToLocal transforms a world-frame point into the ego frame.
func (f Frame) ToLocal(world Point) Point {
	return world.Sub(f.Origin).Rotate(-f.Heading)
}

// ToWorld transforms an ego-frame point back into world coordinates.
func (f Frame) ToWorld(local Point) Point {
	return local.Rotate(f.Heading).Add(f.Origin)
}
