// Package geom provides the 2D geometry primitives used by the driving-world
// simulator: points, segments, polylines with arc-length parameterization,
// and ego-frame transforms for bird's-eye-view rasterization.
//
// Polyline is the workhorse: routes, lanes, and vehicle paths are all
// polylines, and arc-length parameterization (PointAt, length-preserving
// resampling) is what lets the trace layer place vehicles and estimate
// contact durations along shared routes.
package geom
