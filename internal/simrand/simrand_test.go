package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/50 identical draws", same)
	}
}

func TestDeriveStable(t *testing.T) {
	// Derivation must not depend on parent consumption.
	a := New(7)
	d1 := a.Derive("x").Float64()
	b := New(7)
	for i := 0; i < 10; i++ {
		b.Float64()
	}
	d2 := b.Derive("x").Float64()
	if d1 != d2 {
		t.Error("Derive depends on parent consumption")
	}
}

func TestDeriveIndependent(t *testing.T) {
	r := New(7)
	x := r.Derive("x").Float64()
	y := r.Derive("y").Float64()
	if x == y {
		t.Error("differently named derived streams coincide")
	}
	i0 := r.DeriveIndexed("v", 0).Float64()
	i1 := r.DeriveIndexed("v", 1).Float64()
	if i0 == i1 {
		t.Error("differently indexed derived streams coincide")
	}
}

func TestUniformBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) = %v out of bounds", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(3)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(11)
	n, hits := 10000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / float64(n)
	if math.Abs(freq-0.3) > 0.03 {
		t.Errorf("Bernoulli(0.3) frequency = %.3f", freq)
	}
}

func TestExponentialNonPositiveRate(t *testing.T) {
	r := New(5)
	if !math.IsInf(r.Exponential(0), 1) {
		t.Error("Exponential(0) should be +Inf")
	}
}

func TestWeightedIndexRespectsWeights(t *testing.T) {
	r := New(9)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		idx := r.WeightedIndex(weights)
		if idx < 0 || idx >= 4 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight indices sampled: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("weight-3 vs weight-1 ratio = %.2f, want ≈3", ratio)
	}
}

func TestWeightedIndexDegenerate(t *testing.T) {
	r := New(9)
	if idx := r.WeightedIndex(nil); idx != -1 {
		t.Errorf("empty weights: got %d, want -1", idx)
	}
	if idx := r.WeightedIndex([]float64{0, -1}); idx != -1 {
		t.Errorf("non-positive weights: got %d, want -1", idx)
	}
}

func TestWeightedSampleWithoutReplacement(t *testing.T) {
	r := New(13)
	weights := []float64{1, 2, 3, 4, 5}
	got := r.WeightedSampleWithoutReplacement(weights, 3)
	if len(got) != 3 {
		t.Fatalf("got %d indices, want 3", len(got))
	}
	seen := make(map[int]bool)
	for _, idx := range got {
		if idx < 0 || idx >= 5 {
			t.Fatalf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
}

func TestWeightedSampleAllWhenKExceeds(t *testing.T) {
	r := New(13)
	got := r.WeightedSampleWithoutReplacement([]float64{1, 0, 2}, 10)
	if len(got) != 2 {
		t.Fatalf("got %d indices, want 2 (only positive weights)", len(got))
	}
}

func TestWeightedSampleBias(t *testing.T) {
	// Heavier items must be selected more often when k < n.
	r := New(17)
	counts := make([]int, 3)
	for trial := 0; trial < 4000; trial++ {
		for _, idx := range r.WeightedSampleWithoutReplacement([]float64{1, 1, 10}, 1) {
			counts[idx]++
		}
	}
	if counts[2] < counts[0]+counts[1] {
		t.Errorf("heavy item under-sampled: %v", counts)
	}
}

func TestPermIsPermutation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%20)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWeightedSamplePropertyNoDuplicates(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed uint64, raw []float64) bool {
		r := New(seed)
		weights := make([]float64, len(raw))
		for i, w := range raw {
			weights[i] = math.Abs(w)
		}
		k := len(weights)/2 + 1
		got := r.WeightedSampleWithoutReplacement(weights, k)
		seen := map[int]bool{}
		for _, idx := range got {
			if idx < 0 || idx >= len(weights) || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return len(got) <= k
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
