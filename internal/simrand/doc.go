// Package simrand provides deterministic, splittable random number
// generation for the simulator.
//
// Every stochastic component in the repository draws from an explicit
// *simrand.Rand so that a whole experiment is reproducible bit-for-bit from a
// single root seed. Streams are derived by name (Derive) so that adding a new
// consumer does not perturb the draws seen by existing consumers — a property
// plain sequential seeding does not have.
package simrand
