package simrand

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
)

// Rand is a deterministic random stream. It wraps math/rand with a
// fixed source and adds derivation and weighted-sampling helpers used
// throughout the simulator. A Rand is NOT safe for concurrent use; derive a
// separate stream per goroutine instead.
type Rand struct {
	seed uint64
	rng  *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{
		seed: seed,
		rng:  rand.New(rand.NewSource(int64(seed))), //nolint:gosec // simulation, not crypto
	}
}

// Seed returns the seed this stream was created with.
func (r *Rand) Seed() uint64 { return r.seed }

// Derive returns a new independent stream identified by name. Derivation is
// stable: the same (seed, name) pair always yields the same stream,
// regardless of how many other streams have been derived or how much the
// parent has been consumed.
func (r *Rand) Derive(name string) *Rand {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(r.seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return New(h.Sum64())
}

// DeriveIndexed returns a derived stream for the name-index pair, e.g. one
// stream per vehicle.
func (r *Rand) DeriveIndexed(name string, index int) *Rand {
	return r.Derive(name + "#" + strconv.Itoa(index))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (r *Rand) Int63() int64 { return r.rng.Int63() }

// NormFloat64 returns a standard normal sample.
func (r *Rand) NormFloat64() float64 { return r.rng.NormFloat64() }

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.rng.Float64()
}

// Normal returns a normal sample with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.rng.NormFloat64()
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.rng.Float64() < p
}

// Exponential returns an exponential sample with the given rate. It returns
// +Inf when rate <= 0.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.rng.ExpFloat64() / rate
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.rng.Shuffle(n, swap) }

// WeightedIndex samples an index proportionally to weights. Non-positive
// weights are treated as zero. It returns -1 when all weights are
// non-positive or the slice is empty.
func (r *Rand) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	target := r.rng.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point round-off can leave target marginally above acc; return
	// the last positive-weight index in that case.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// WeightedSampleWithoutReplacement samples k distinct indices from weights
// using the Efraimidis–Spirakis exponential-keys method. If fewer than k
// indices have positive weight, all positive-weight indices are returned.
// The returned order is by descending key (i.e. effectively random).
func (r *Rand) WeightedSampleWithoutReplacement(weights []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	type keyed struct {
		idx int
		key float64
	}
	items := make([]keyed, 0, len(weights))
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		// key = u^(1/w); larger keys win. Use log for numeric stability.
		u := r.rng.Float64()
		for u == 0 {
			u = r.rng.Float64()
		}
		items = append(items, keyed{idx: i, key: math.Log(u) / w})
	}
	if len(items) <= k {
		out := make([]int, len(items))
		for i, it := range items {
			out[i] = it.idx
		}
		return out
	}
	// Partial selection of the k largest keys.
	for sel := 0; sel < k; sel++ {
		best := sel
		for j := sel + 1; j < len(items); j++ {
			if items[j].key > items[best].key {
				best = j
			}
		}
		items[sel], items[best] = items[best], items[sel]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = items[i].idx
	}
	return out
}
