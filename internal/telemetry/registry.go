package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Histogram is a fixed-bucket histogram. For ascending edges e_0 < … < e_k
// there are k+2 buckets:
//
//	bucket 0:    v < e_0
//	bucket i:    e_{i-1} <= v < e_i   (1 <= i <= k)
//	bucket k+1:  v >= e_k
//
// A value exactly on an edge lands in the bucket that STARTS at that edge.
// Edges are fixed at construction, so merged or compared histograms from
// different runs always line up.
type Histogram struct {
	Edges  []float64 `json:"edges"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	N      int64     `json:"n"`
}

// NewHistogram builds an empty histogram over the given ascending edges.
func NewHistogram(edges ...float64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("telemetry: histogram edges not ascending: %v", edges))
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int64, len(edges)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Edges, v)
	// SearchFloat64s returns the first index with Edges[i] >= v; an exact
	// edge hit must land in the bucket starting at that edge (one past).
	if i < len(h.Edges) && h.Edges[i] == v {
		i++
	}
	h.Counts[i]++
	h.Sum += v
	h.N++
}

// Mean returns the mean of the observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Registry aggregates named counters and histograms. Snapshots iterate in
// sorted name order, never map order, so rendered output is deterministic.
// The zero value is not ready; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the named counter's current value (0 when absent).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Observe records a value into the named histogram, creating it with the
// given edges on first use. Later calls may pass nil edges.
func (r *Registry) Observe(name string, edges []float64, v float64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(edges...)
		r.hists[name] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// Hist returns the named histogram, or nil.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// CounterNames returns all counter names in sorted order.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistNames returns all histogram names in sorted order.
func (r *Registry) HistNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteCSV renders the registry as CSV rows:
//
//	counter,<name>,,<value>
//	hist,<name>,lt:<edge>,<count>      (bucket below the first edge)
//	hist,<name>,ge:<edge>,<count>      (buckets starting at an edge)
//	hist,<name>,sum,<sum>
//	hist,<name>,count,<n>
//
// Rows are sorted by name, so two identical registries render identically.
func (r *Registry) WriteCSV(w io.Writer) error {
	for _, name := range r.CounterNames() {
		if _, err := fmt.Fprintf(w, "counter,%s,,%d\n", name, r.Counter(name)); err != nil {
			return err
		}
	}
	for _, name := range r.HistNames() {
		h := r.Hist(name)
		for i, c := range h.Counts {
			label := "all"
			if i == 0 && len(h.Edges) > 0 {
				label = fmt.Sprintf("lt:%g", h.Edges[0])
			} else if i > 0 {
				label = fmt.Sprintf("ge:%g", h.Edges[i-1])
			}
			if _, err := fmt.Fprintf(w, "hist,%s,%s,%d\n", name, label, c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "hist,%s,sum,%g\nhist,%s,count,%d\n", name, h.Sum, name, h.N); err != nil {
			return err
		}
	}
	return nil
}
