package telemetry

import "sync"

// Sink consumes telemetry events. Engine emission is single-goroutine by
// construction (parallel phases buffer and emit serially), but sinks shipped
// by this package are additionally mutex-guarded so one sink can safely be
// shared across concurrent protocol runs.
type Sink interface {
	// Emit records one event.
	Emit(ev Event)
	// Close flushes buffered state and releases resources.
	Close() error
}

// WallObserver receives wall-clock measurements from the engine. It is a
// separate, optional interface — not an Event — so wall time can never leak
// into the deterministic event stream: sinks that record events (JSONL,
// MemorySink) do not implement it, while aggregating sinks (Summary) fold the
// observations into histograms only.
type WallObserver interface {
	// ObserveTrainWall records the wall time of one vehicle's training work
	// within one engine tick, in nanoseconds.
	ObserveTrainWall(nanos int64)
}

// ShardScan describes one shard's share of a sharded encounter scan: how
// many vehicles it owned, how many halo copies it imported from neighboring
// regions, and how many radio-range pairs it emitted.
type ShardScan struct {
	// Shard is the shard's index; Shards is the run's shard count.
	Shard, Shards int
	// Locals, Guests, and Pairs are the shard's population and output sizes.
	Locals, Guests, Pairs int
}

// ShardObserver receives per-shard scan statistics from the engine. Like
// WallObserver it is a separate, optional interface — not an Event — so
// shard topology can never leak into the deterministic event stream, which
// stays byte-identical across shard counts.
type ShardObserver interface {
	// ObserveShardScan records one shard's share of one encounter scan.
	ObserveShardScan(scan ShardScan)
}

// TraceChunk describes one streaming-trace window operation: a chunk load,
// evict, or prefetch issue, with the window's resident chunk count after
// the operation.
type TraceChunk struct {
	// Op is "load", "evict", or "prefetch".
	Op string
	// Chunk is the chunk's index in the stream; Ticks its tick count.
	Chunk, Ticks int
	// Resident is the retained chunk count after the operation.
	Resident int
	// Depth is the adaptive prefetch depth in effect at the operation.
	Depth int
	// Retries counts transport-level retries the chunk's fetch needed
	// (loads from a remote chunk source; zero locally).
	Retries int
	// WaitNs is how long the window's Advance blocked waiting for this
	// chunk's fetch (loads only); zero means the prefetcher hid it.
	WaitNs int64
}

// TraceObserver receives streaming-trace chunk operations from the engine.
// Like the other side channels it is a separate, optional interface — not
// an Event — so streamed and resident runs produce byte-identical event
// streams even though only one of them loads and evicts chunks.
type TraceObserver interface {
	// ObserveTraceChunk records one window chunk operation.
	ObserveTraceChunk(op TraceChunk)
}

// CoresetRefresh describes one incremental coreset refresh: how many
// partition-tree leaves were rebuilt vs served from cache, and how many
// merge nodes were recomputed on the dirty leaves' root paths.
type CoresetRefresh struct {
	// Vehicle is the refreshing vehicle's ID.
	Vehicle int
	// LeavesRebuilt and LeavesCached partition the tree's leaves at this
	// refresh.
	LeavesRebuilt, LeavesCached int
	// TreeMerges counts the merge-and-reduce nodes recomputed.
	TreeMerges int
}

// CoresetObserver receives incremental-refresh statistics from the engine.
// Like the other side channels it is a separate, optional interface — not an
// Event — so cache behavior can never leak into the deterministic event
// stream: the full-rebuild and incremental arms emit the same CoresetRebuilt
// events even though only one of them has leaves to cache.
type CoresetObserver interface {
	// ObserveCoresetRefresh records one incremental coreset refresh.
	ObserveCoresetRefresh(r CoresetRefresh)
}

// SchedTick describes one engine tick's due-vehicle scheduling work: how
// many vehicles the calendar queue dequeued as due, how many wheel buckets
// the pop examined, and how many shard-major batches the tick's per-vehicle
// phases dispatched (zero when the run is unsharded or the phase was empty).
type SchedTick struct {
	// DueDequeued is the number of due vehicles the calendar queue popped.
	DueDequeued int
	// BucketsTouched is the number of tick-wheel buckets the pop examined.
	BucketsTouched int
	// ShardBatches is the number of shard-grouped work batches dispatched.
	ShardBatches int
}

// SchedObserver receives due-time scheduling statistics from the engine.
// Like the other side channels it is a separate, optional interface — not an
// Event — so scheduler internals can never leak into the deterministic event
// stream: the calendar-queue and legacy-scan arms emit byte-identical events
// even though only one of them has buckets to touch.
type SchedObserver interface {
	// ObserveSchedTick records one tick's scheduling work.
	ObserveSchedTick(s SchedTick)
}

// MemorySink buffers every event in memory: the test sink, and the per-run
// buffer the experiment harness uses to serialize concurrent runs into one
// output stream.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit implements Sink.
func (m *MemorySink) Emit(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// Close implements Sink (no-op).
func (m *MemorySink) Close() error { return nil }

// Events returns the recorded events in emission order.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Len returns the number of recorded events.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Drain replays the recorded events into dst in order and empties the sink.
func (m *MemorySink) Drain(dst Sink) {
	m.mu.Lock()
	events := m.events
	m.events = nil
	m.mu.Unlock()
	for _, ev := range events {
		dst.Emit(ev)
	}
}

// multiSink fans events (and side-channel observations) out to several
// sinks.
type multiSink struct {
	sinks    []Sink
	walls    []WallObserver
	shards   []ShardObserver
	traces   []TraceObserver
	coresets []CoresetObserver
	scheds   []SchedObserver
}

// Tee returns a sink that forwards every event to all given sinks (nils are
// skipped). Wall observations are forwarded to the members that accept them.
// A single non-nil sink is returned unwrapped.
func Tee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	m := &multiSink{sinks: live}
	for _, s := range live {
		if w, ok := s.(WallObserver); ok {
			m.walls = append(m.walls, w)
		}
		if o, ok := s.(ShardObserver); ok {
			m.shards = append(m.shards, o)
		}
		if o, ok := s.(TraceObserver); ok {
			m.traces = append(m.traces, o)
		}
		if o, ok := s.(CoresetObserver); ok {
			m.coresets = append(m.coresets, o)
		}
		if o, ok := s.(SchedObserver); ok {
			m.scheds = append(m.scheds, o)
		}
	}
	return m
}

// Emit implements Sink.
func (m *multiSink) Emit(ev Event) {
	for _, s := range m.sinks {
		s.Emit(ev)
	}
}

// ObserveTrainWall implements WallObserver.
func (m *multiSink) ObserveTrainWall(nanos int64) {
	for _, w := range m.walls {
		w.ObserveTrainWall(nanos)
	}
}

// ObserveShardScan implements ShardObserver.
func (m *multiSink) ObserveShardScan(scan ShardScan) {
	for _, o := range m.shards {
		o.ObserveShardScan(scan)
	}
}

// ObserveTraceChunk implements TraceObserver.
func (m *multiSink) ObserveTraceChunk(op TraceChunk) {
	for _, o := range m.traces {
		o.ObserveTraceChunk(op)
	}
}

// ObserveCoresetRefresh implements CoresetObserver.
func (m *multiSink) ObserveCoresetRefresh(r CoresetRefresh) {
	for _, o := range m.coresets {
		o.ObserveCoresetRefresh(r)
	}
}

// ObserveSchedTick implements SchedObserver.
func (m *multiSink) ObserveSchedTick(s SchedTick) {
	for _, o := range m.scheds {
		o.ObserveSchedTick(s)
	}
}

// Close implements Sink: closes every member, returning the first error.
func (m *multiSink) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
