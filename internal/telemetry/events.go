// Package telemetry is the structured observability layer of the LbChat
// stack: typed events emitted from the protocol hot paths (chats, transfers,
// coreset maintenance, training steps), aggregated into counters and
// fixed-bucket histograms, and delivered to pluggable sinks (in-memory for
// tests and summaries, JSONL for offline analysis, CSV for metric dumps).
//
// Design rules, in order of importance:
//
//  1. A nil sink costs ~zero: every emission site guards with a nil check
//     before constructing the event, so a run with telemetry disabled is
//     bit-identical to — and essentially as fast as — a run predating the
//     telemetry layer.
//  2. Events carry VIRTUAL time (engine seconds / tick indices), never wall
//     clock, and are emitted in deterministic order (parallel phases buffer
//     per-vehicle results and emit in vehicle-index order). The event stream
//     of a run is therefore bit-identical at every worker count. Wall-clock
//     measurements exist only as histogram aggregates behind the separate
//     WallObserver interface, which the JSONL sink deliberately does not
//     implement.
//  3. Telemetry never consumes simulation randomness and never feeds values
//     back into the simulation.
package telemetry

// Event is one structured telemetry record. Implementations are small value
// types; Kind returns a stable snake_case tag used by the JSONL envelope.
type Event interface {
	Kind() string
}

// Event kind tags. These are a wire format: renaming one breaks recorded
// JSONL files, so they are append-only.
const (
	KindRunStarted        = "run_started"
	KindRunFinished       = "run_finished"
	KindChatInitiated     = "chat_initiated"
	KindChatCompleted     = "chat_completed"
	KindChatAborted       = "chat_aborted"
	KindCompressionChosen = "compression_chosen"
	KindTransfer          = "transfer"
	KindAggregation       = "aggregation"
	KindCoresetAbsorbed   = "coreset_absorbed"
	KindCoresetEvicted    = "coreset_evicted"
	KindCoresetRebuilt    = "coreset_rebuilt"
	KindContactOpen       = "contact_open"
	KindContactClose      = "contact_close"
	KindTrainStep         = "train_step"
	KindLossRecorded      = "loss_recorded"
)

// Payload labels for Transfer events.
const (
	// PayloadModel marks a (compressed) model parameter payload.
	PayloadModel = "model"
	// PayloadCoreset marks a coreset-frame payload.
	PayloadCoreset = "coreset"
)

// PeerInfra is the pseudo vehicle ID used for infrastructure endpoints
// (the ProxSkip central server, RSU coordinators) in Transfer events.
const PeerInfra = -1

// Transfer truncation reasons (mirrors radio.TransferResult.Truncated).
const (
	TruncDeadline = "deadline"
	TruncRange    = "range"
	TruncLoss     = "loss"
)

// RunStarted brackets the beginning of one protocol training run.
type RunStarted struct {
	Protocol string `json:"protocol"`
	Lossless bool   `json:"lossless"`
}

// RunFinished brackets the end of one protocol training run.
type RunFinished struct {
	Protocol string `json:"protocol"`
	// Time is the virtual time at which the run stopped (s).
	Time float64 `json:"time"`
	// FinalLoss is the last recorded probe loss.
	FinalLoss float64 `json:"final_loss"`
	// Canceled reports an early stop via context cancellation.
	Canceled bool `json:"canceled,omitempty"`
}

// ChatInitiated records the start of one pairwise exchange session.
type ChatInitiated struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
	// Contact is the estimated remaining contact duration (s).
	Contact float64 `json:"contact"`
	// Window is min(T_B, contact), the usable exchange window (s).
	Window float64 `json:"window"`
}

// ChatCompleted records a chat that ran to the end of its exchange sequence
// (some individual transfers within it may still have failed).
type ChatCompleted struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
	// Elapsed is the total air time the chat consumed (s).
	Elapsed float64 `json:"elapsed"`
}

// ChatAborted records a chat that decoupled before the model exchange.
type ChatAborted struct {
	Time   float64 `json:"time"`
	A      int     `json:"a"`
	B      int     `json:"b"`
	Reason string  `json:"reason"`
}

// Chat abort reasons.
const (
	AbortCoresetBuild    = "coreset_build"
	AbortCoresetExchange = "coreset_exchange"
)

// CompressionChosen records one direction's Eq. (7) decision: the chosen
// compression level ψ and the resulting over-the-air payload size.
type CompressionChosen struct {
	Time  float64 `json:"time"`
	From  int     `json:"from"`
	To    int     `json:"to"`
	Psi   float64 `json:"psi"`
	Bytes int     `json:"bytes"`
}

// Transfer records one simulated payload transfer (any protocol, any
// payload, vehicle-to-vehicle or vehicle-to-infrastructure).
type Transfer struct {
	Time float64 `json:"time"`
	From int     `json:"from"`
	To   int     `json:"to"`
	// Payload is PayloadModel or PayloadCoreset.
	Payload string `json:"payload"`
	// BytesRequested is the payload size handed to the radio.
	BytesRequested int `json:"bytes_requested"`
	// BytesDelivered counts bytes that made it across before any abort.
	BytesDelivered int     `json:"bytes_delivered"`
	Completed      bool    `json:"completed"`
	Elapsed        float64 `json:"elapsed"`
	// Truncated names why an incomplete transfer stopped ("deadline",
	// "range", "loss"); empty when Completed.
	Truncated string `json:"truncated,omitempty"`
}

// Aggregation records one Eq. (8) model merge on the receiving vehicle.
type Aggregation struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	WSelf   float64 `json:"w_self"`
	WPeer   float64 `json:"w_peer"`
}

// CoresetAbsorbed records a peer coreset expanding a vehicle's local
// dataset (§III-D data expansion).
type CoresetAbsorbed struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	// Frames is the number of absorbed coreset frames.
	Frames int `json:"frames"`
}

// CoresetEvicted records frames dropped by the merge-and-reduce step to
// hold the coreset at its budget |C|.
type CoresetEvicted struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	Dropped int     `json:"dropped"`
}

// CoresetRebuilt records a from-scratch Algorithm 1 coreset construction.
type CoresetRebuilt struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	Size    int     `json:"size"`
}

// ContactOpen records two vehicles entering radio range.
type ContactOpen struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
}

// ContactClose records two vehicles leaving radio range (or the run ending
// with the window still open).
type ContactClose struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
	// Duration is how long the contact window stayed open (s).
	Duration float64 `json:"duration"`
}

// TrainStep records one vehicle's local-SGD work in one engine tick.
type TrainStep struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	// Steps is how many SGD steps came due this tick (usually 1).
	Steps int `json:"steps"`
	// Loss is the minibatch training loss of the last step.
	Loss float64 `json:"loss"`
}

// LossRecorded is one probe-loss curve sample (the Fig. 2 observable).
type LossRecorded struct {
	Time float64 `json:"time"`
	Loss float64 `json:"loss"`
}

// Kind implementations.
func (RunStarted) Kind() string        { return KindRunStarted }
func (RunFinished) Kind() string       { return KindRunFinished }
func (ChatInitiated) Kind() string     { return KindChatInitiated }
func (ChatCompleted) Kind() string     { return KindChatCompleted }
func (ChatAborted) Kind() string       { return KindChatAborted }
func (CompressionChosen) Kind() string { return KindCompressionChosen }
func (Transfer) Kind() string          { return KindTransfer }
func (Aggregation) Kind() string       { return KindAggregation }
func (CoresetAbsorbed) Kind() string   { return KindCoresetAbsorbed }
func (CoresetEvicted) Kind() string    { return KindCoresetEvicted }
func (CoresetRebuilt) Kind() string    { return KindCoresetRebuilt }
func (ContactOpen) Kind() string       { return KindContactOpen }
func (ContactClose) Kind() string      { return KindContactClose }
func (TrainStep) Kind() string         { return KindTrainStep }
func (LossRecorded) Kind() string      { return KindLossRecorded }
