package telemetry

// Event is one structured telemetry record. Implementations are small value
// types; Kind returns a stable snake_case tag used by the JSONL envelope.
type Event interface {
	Kind() string
}

// Event kind tags. These are a wire format: renaming one breaks recorded
// JSONL files, so they are append-only.
const (
	KindRunStarted        = "run_started"
	KindRunFinished       = "run_finished"
	KindChatInitiated     = "chat_initiated"
	KindChatCompleted     = "chat_completed"
	KindChatAborted       = "chat_aborted"
	KindCompressionChosen = "compression_chosen"
	KindTransfer          = "transfer"
	KindAggregation       = "aggregation"
	KindCoresetAbsorbed   = "coreset_absorbed"
	KindCoresetEvicted    = "coreset_evicted"
	KindCoresetRebuilt    = "coreset_rebuilt"
	KindContactOpen       = "contact_open"
	KindContactClose      = "contact_close"
	KindTrainStep         = "train_step"
	KindLossRecorded      = "loss_recorded"
	KindFaultInjected     = "fault_injected"
	KindChatResumed       = "chat_resumed"
	KindPartialSalvage    = "partial_salvage"
)

// Payload labels for Transfer events.
const (
	// PayloadModel marks a (compressed) model parameter payload.
	PayloadModel = "model"
	// PayloadCoreset marks a coreset-frame payload.
	PayloadCoreset = "coreset"
)

// PeerInfra is the pseudo vehicle ID used for infrastructure endpoints
// (the ProxSkip central server, RSU coordinators) in Transfer events.
const PeerInfra = -1

// Transfer truncation reasons (mirrors radio.TransferResult.Truncated).
const (
	TruncDeadline = "deadline"
	TruncRange    = "range"
	TruncLoss     = "loss"
)

// RunStarted brackets the beginning of one protocol training run.
type RunStarted struct {
	Protocol string `json:"protocol"`
	Lossless bool   `json:"lossless"`
}

// RunFinished brackets the end of one protocol training run.
type RunFinished struct {
	Protocol string `json:"protocol"`
	// Time is the virtual time at which the run stopped (s).
	Time float64 `json:"time"`
	// FinalLoss is the last recorded probe loss.
	FinalLoss float64 `json:"final_loss"`
	// Canceled reports an early stop via context cancellation.
	Canceled bool `json:"canceled,omitempty"`
}

// ChatInitiated records the start of one pairwise exchange session.
type ChatInitiated struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
	// Contact is the estimated remaining contact duration (s).
	Contact float64 `json:"contact"`
	// Window is min(T_B, contact), the usable exchange window (s).
	Window float64 `json:"window"`
}

// ChatCompleted records a chat that ran to the end of its exchange sequence
// (some individual transfers within it may still have failed).
type ChatCompleted struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
	// Elapsed is the total air time the chat consumed (s).
	Elapsed float64 `json:"elapsed"`
}

// ChatAborted records a chat that decoupled before the model exchange.
type ChatAborted struct {
	Time   float64 `json:"time"`
	A      int     `json:"a"`
	B      int     `json:"b"`
	Reason string  `json:"reason"`
}

// Chat abort reasons.
const (
	AbortCoresetBuild    = "coreset_build"
	AbortCoresetExchange = "coreset_exchange"
)

// CompressionChosen records one direction's Eq. (7) decision: the chosen
// compression level ψ and the resulting over-the-air payload size.
type CompressionChosen struct {
	Time  float64 `json:"time"`
	From  int     `json:"from"`
	To    int     `json:"to"`
	Psi   float64 `json:"psi"`
	Bytes int     `json:"bytes"`
}

// Transfer records one simulated payload transfer (any protocol, any
// payload, vehicle-to-vehicle or vehicle-to-infrastructure).
type Transfer struct {
	Time float64 `json:"time"`
	From int     `json:"from"`
	To   int     `json:"to"`
	// Payload is PayloadModel or PayloadCoreset.
	Payload string `json:"payload"`
	// BytesRequested is the payload size handed to the radio.
	BytesRequested int `json:"bytes_requested"`
	// BytesDelivered counts bytes that made it across before any abort.
	BytesDelivered int     `json:"bytes_delivered"`
	Completed      bool    `json:"completed"`
	Elapsed        float64 `json:"elapsed"`
	// Truncated names why an incomplete transfer stopped ("deadline",
	// "range", "loss"); empty when Completed.
	Truncated string `json:"truncated,omitempty"`
}

// Aggregation records one Eq. (8) model merge on the receiving vehicle.
type Aggregation struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	WSelf   float64 `json:"w_self"`
	WPeer   float64 `json:"w_peer"`
}

// CoresetAbsorbed records a peer coreset expanding a vehicle's local
// dataset (§III-D data expansion).
type CoresetAbsorbed struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	// Frames is the number of absorbed coreset frames.
	Frames int `json:"frames"`
}

// CoresetEvicted records frames dropped by the merge-and-reduce step to
// hold the coreset at its budget |C|.
type CoresetEvicted struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	Dropped int     `json:"dropped"`
}

// CoresetRebuilt records a from-scratch Algorithm 1 coreset construction.
type CoresetRebuilt struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	Size    int     `json:"size"`
}

// ContactOpen records two vehicles entering radio range.
type ContactOpen struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
}

// ContactClose records two vehicles leaving radio range (or the run ending
// with the window still open).
type ContactClose struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
	// Duration is how long the contact window stayed open (s).
	Duration float64 `json:"duration"`
}

// TrainStep records one vehicle's local-SGD work in one engine tick.
type TrainStep struct {
	Time    float64 `json:"time"`
	Vehicle int     `json:"vehicle"`
	// Steps is how many SGD steps came due this tick (usually 1).
	Steps int `json:"steps"`
	// Loss is the minibatch training loss of the last step.
	Loss float64 `json:"loss"`
}

// LossRecorded is one probe-loss curve sample (the Fig. 2 observable).
type LossRecorded struct {
	Time float64 `json:"time"`
	Loss float64 `json:"loss"`
}

// Fault labels for FaultInjected events (see internal/faults and DESIGN.md
// §9 for the fault taxonomy). Like event kinds, they are a wire format and
// append-only.
const (
	// FaultBurstLoss marks a transfer starting inside a burst packet-loss
	// episode layered over the distance-loss table.
	FaultBurstLoss = "burst_loss"
	// FaultWindowTrunc marks a chat whose contact window was cut short.
	FaultWindowTrunc = "window_trunc"
	// FaultChurnDepart / FaultChurnRejoin bracket a vehicle leaving the
	// communication system and coming back with its (now stale) model.
	FaultChurnDepart = "churn_depart"
	FaultChurnRejoin = "churn_rejoin"
	// FaultPayloadCorrupt marks a coreset payload that completed on air but
	// arrived with only a prefix of its frames intact.
	FaultPayloadCorrupt = "payload_corrupt"
)

// NoPeer is the B value of FaultInjected events that concern a single
// vehicle rather than a link (churn faults).
const NoPeer = -1

// FaultInjected records one injected fault from the internal/faults layer.
type FaultInjected struct {
	Time float64 `json:"time"`
	// Fault is one of the Fault* labels.
	Fault string `json:"fault"`
	// A is the affected vehicle; B the peer for link-scoped faults
	// (NoPeer for vehicle-scoped faults such as churn).
	A int `json:"a"`
	B int `json:"b"`
	// Value is the fault-specific magnitude: the truncated window (s) for
	// window_trunc, the absence duration (s) for churn_depart, the number
	// of intact frames for payload_corrupt, the added packet-error rate
	// for burst_loss, 0 otherwise.
	Value float64 `json:"value,omitempty"`
}

// ChatResumed records a re-encountered pair resuming an interrupted
// exchange session from the last completed payload instead of restarting.
type ChatResumed struct {
	Time float64 `json:"time"`
	A    int     `json:"a"`
	B    int     `json:"b"`
	// SavedBytes is the over-the-air volume the resumption avoided
	// re-sending (the completed coreset payloads of the broken session).
	SavedBytes int `json:"saved_bytes"`
	// Age is how long ago the interrupted session broke (s).
	Age float64 `json:"age"`
}

// PartialSalvage records an incompletely received coreset being truncated
// to its intact prefix and still used, with its weight discounted by the
// delivered fraction (DESIGN.md §9 salvage rules).
type PartialSalvage struct {
	Time float64 `json:"time"`
	// Vehicle is the receiver that salvaged the payload; From the sender.
	Vehicle int `json:"vehicle"`
	From    int `json:"from"`
	// Frames of the sender's Total-frame coreset survived.
	Frames int `json:"frames"`
	Total  int `json:"total"`
	// Discount is the weight multiplier applied to the salvaged samples
	// (Frames/Total).
	Discount float64 `json:"discount"`
}

// Kind implementations.
func (RunStarted) Kind() string        { return KindRunStarted }
func (RunFinished) Kind() string       { return KindRunFinished }
func (ChatInitiated) Kind() string     { return KindChatInitiated }
func (ChatCompleted) Kind() string     { return KindChatCompleted }
func (ChatAborted) Kind() string       { return KindChatAborted }
func (CompressionChosen) Kind() string { return KindCompressionChosen }
func (Transfer) Kind() string          { return KindTransfer }
func (Aggregation) Kind() string       { return KindAggregation }
func (CoresetAbsorbed) Kind() string   { return KindCoresetAbsorbed }
func (CoresetEvicted) Kind() string    { return KindCoresetEvicted }
func (CoresetRebuilt) Kind() string    { return KindCoresetRebuilt }
func (ContactOpen) Kind() string       { return KindContactOpen }
func (ContactClose) Kind() string      { return KindContactClose }
func (TrainStep) Kind() string         { return KindTrainStep }
func (LossRecorded) Kind() string      { return KindLossRecorded }
func (FaultInjected) Kind() string     { return KindFaultInjected }
func (ChatResumed) Kind() string       { return KindChatResumed }
func (PartialSalvage) Kind() string    { return KindPartialSalvage }
