// Package telemetry is the structured observability layer of the LbChat
// stack: typed events emitted from the protocol hot paths (chats, transfers,
// coreset maintenance, training steps), aggregated into counters and
// fixed-bucket histograms, and delivered to pluggable sinks (in-memory for
// tests and summaries, JSONL for offline analysis, CSV for metric dumps).
//
// Design rules, in order of importance:
//
//  1. A nil sink costs ~zero: every emission site guards with a nil check
//     before constructing the event, so a run with telemetry disabled is
//     bit-identical to — and essentially as fast as — a run predating the
//     telemetry layer.
//  2. Events carry VIRTUAL time (engine seconds / tick indices), never wall
//     clock, and are emitted in deterministic order (parallel phases buffer
//     per-vehicle results and emit in vehicle-index order). The event stream
//     of a run is therefore bit-identical at every worker count. Wall-clock
//     measurements exist only as histogram aggregates behind the separate
//     WallObserver interface, which the JSONL sink deliberately does not
//     implement.
//  3. Telemetry never consumes simulation randomness and never feeds values
//     back into the simulation.
//
// Event kinds and metric names are an append-only wire format: JSONL streams
// written by older builds must keep decoding, so new behaviour (like the
// fault-injection and resilience events fault_injected, chat_resumed, and
// partial_salvage — see internal/faults and DESIGN.md §9) adds kinds rather
// than changing existing ones.
package telemetry
