package telemetry

import (
	"strings"
	"testing"
)

// TestHistogramBoundaries pins the bucket rule at the edges: a value exactly
// on an edge lands in the bucket that starts at that edge.
func TestHistogramBoundaries(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	if len(h.Counts) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(h.Counts))
	}
	cases := []struct {
		v      float64
		bucket int
	}{
		{0.99, 0},  // below first edge
		{1, 1},     // exactly first edge → starts bucket 1
		{1.5, 1},   // interior
		{2, 2},     // exactly second edge
		{4.999, 2}, // just under third edge
		{5, 3},     // exactly last edge → overflow bucket
		{100, 3},   // far overflow
		{-3, 0},    // negative underflow
	}
	for _, c := range cases {
		before := append([]int64(nil), h.Counts...)
		h.Observe(c.v)
		for i := range h.Counts {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if h.Counts[i] != want {
				t.Errorf("Observe(%v): bucket %d count %d, want %d", c.v, i, h.Counts[i], want)
			}
		}
	}
	if h.N != int64(len(cases)) {
		t.Errorf("N = %d, want %d", h.N, len(cases))
	}
}

func TestHistogramRejectsUnsortedEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending edges accepted")
		}
	}()
	NewHistogram(1, 1)
}

func TestRegistryCountersAndCSV(t *testing.T) {
	r := NewRegistry()
	r.Inc("b.count", 2)
	r.Inc("a.count", 1)
	r.Inc("b.count", 3)
	r.Observe("lat", []float64{1, 10}, 0.5)
	r.Observe("lat", nil, 10)

	if got := r.Counter("b.count"); got != 5 {
		t.Errorf("b.count = %d", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d", got)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantLines := []string{
		"counter,a.count,,1",
		"counter,b.count,,5",
		"hist,lat,lt:1,1",
		"hist,lat,ge:1,0",
		"hist,lat,ge:10,1",
		"hist,lat,count,2",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("CSV missing %q:\n%s", w, out)
		}
	}
	// Counters must precede histograms and sort by name: deterministic.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Error("counters not sorted")
	}
}

func TestSummaryAggregation(t *testing.T) {
	s := NewSummary()
	s.Emit(RunStarted{Protocol: "LbChat", Lossless: true})
	s.Emit(ChatInitiated{Time: 10, A: 0, B: 1, Contact: 40, Window: 15})
	s.Emit(Transfer{Time: 10, From: 0, To: 1, Payload: PayloadCoreset, BytesRequested: 600_000, BytesDelivered: 600_000, Completed: true})
	s.Emit(CompressionChosen{Time: 10, From: 0, To: 1, Psi: 0.35, Bytes: 18_200_000})
	s.Emit(Transfer{Time: 10, From: 0, To: 1, Payload: PayloadModel, BytesRequested: 18_200_000, BytesDelivered: 9_000_000, Truncated: TruncDeadline})
	s.Emit(ChatCompleted{Time: 10, A: 0, B: 1, Elapsed: 14.2})
	s.Emit(Aggregation{Time: 11, Vehicle: 1, WSelf: 0.4, WPeer: 0.6})
	s.Emit(TrainStep{Time: 12, Vehicle: 0, Steps: 2, Loss: 0.5})
	s.Emit(LossRecorded{Time: 60, Loss: 0.42})
	s.ObserveTrainWall(5_000_000)

	if s.Protocol != "LbChat" || !s.Lossless {
		t.Errorf("run identity: %q lossless=%v", s.Protocol, s.Lossless)
	}
	if init, done, aborted := s.Chats(); init != 1 || done != 1 || aborted != 0 {
		t.Errorf("chats = %d/%d/%d", init, done, aborted)
	}
	m, c := s.BytesRequested()
	if m != 18_200_000 || c != 600_000 {
		t.Errorf("bytes requested = %d model, %d coreset", m, c)
	}
	if got := s.TotalBytesRequested(); got != 18_800_000 {
		t.Errorf("total bytes = %d", got)
	}
	gm, gc := s.BytesDelivered()
	if gm != 9_000_000 || gc != 600_000 {
		t.Errorf("bytes delivered = %d model, %d coreset", gm, gc)
	}
	if s.Reg.Counter(MTransferTruncate) != 1 {
		t.Errorf("truncated = %d", s.Reg.Counter(MTransferTruncate))
	}
	if s.Reg.Counter(MTrainSteps) != 2 {
		t.Errorf("train steps = %d", s.Reg.Counter(MTrainSteps))
	}
	if s.FinalLoss != 0.42 {
		t.Errorf("final loss = %v", s.FinalLoss)
	}
	if h := s.Reg.Hist(MTrainWallNs); h == nil || h.N != 1 {
		t.Error("wall histogram not recorded")
	}
	if h := s.Reg.Hist(MChatPsi); h == nil || h.N != 1 {
		t.Error("psi histogram not recorded")
	}
}

func TestMemorySinkAndTee(t *testing.T) {
	a, b := NewMemorySink(), NewMemorySink()
	s := NewSummary()
	tee := Tee(nil, a, s, b)
	tee.Emit(ChatInitiated{Time: 1, A: 0, B: 1})
	tee.Emit(ChatAborted{Time: 2, A: 0, B: 1, Reason: AbortCoresetExchange})
	if a.Len() != 2 || b.Len() != 2 {
		t.Errorf("tee fan-out lens = %d, %d", a.Len(), b.Len())
	}
	if _, _, aborted := s.Chats(); aborted != 1 {
		t.Error("summary member did not aggregate")
	}
	// Wall observations route only to WallObserver members.
	if w, ok := tee.(WallObserver); !ok {
		t.Fatal("tee with a Summary member must expose WallObserver")
	} else {
		w.ObserveTrainWall(1000)
	}
	if h := s.Reg.Hist(MTrainWallNs); h == nil || h.N != 1 {
		t.Error("wall observation not forwarded")
	}

	dst := NewMemorySink()
	a.Drain(dst)
	if a.Len() != 0 || dst.Len() != 2 {
		t.Errorf("drain: src %d, dst %d", a.Len(), dst.Len())
	}
	if dst.Events()[0].Kind() != KindChatInitiated {
		t.Error("drain reordered events")
	}

	// Tee with a single live sink unwraps.
	if got := Tee(nil, a); got != Sink(a) {
		t.Error("single-member tee not unwrapped")
	}
	if got := Tee(nil, nil); got != nil {
		t.Error("empty tee must be nil")
	}
}
