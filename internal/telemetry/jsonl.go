package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// envelope is the JSONL wire format: one event per line, tagged by kind so
// readers can dispatch to the right type.
type envelope struct {
	Kind string          `json:"kind"`
	Ev   json.RawMessage `json:"ev"`
}

// Encode marshals one event into its JSONL line (without the newline).
func Encode(ev Event) ([]byte, error) {
	raw, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("telemetry: marshaling %s: %w", ev.Kind(), err)
	}
	return json.Marshal(envelope{Kind: ev.Kind(), Ev: raw})
}

// decode unmarshals a raw payload into a concrete event type.
func decode[T Event](raw json.RawMessage) (Event, error) {
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// decoders dispatches envelope kinds to typed decoders.
var decoders = map[string]func(json.RawMessage) (Event, error){
	KindRunStarted:        decode[RunStarted],
	KindRunFinished:       decode[RunFinished],
	KindChatInitiated:     decode[ChatInitiated],
	KindChatCompleted:     decode[ChatCompleted],
	KindChatAborted:       decode[ChatAborted],
	KindCompressionChosen: decode[CompressionChosen],
	KindTransfer:          decode[Transfer],
	KindAggregation:       decode[Aggregation],
	KindCoresetAbsorbed:   decode[CoresetAbsorbed],
	KindCoresetEvicted:    decode[CoresetEvicted],
	KindCoresetRebuilt:    decode[CoresetRebuilt],
	KindContactOpen:       decode[ContactOpen],
	KindContactClose:      decode[ContactClose],
	KindTrainStep:         decode[TrainStep],
	KindLossRecorded:      decode[LossRecorded],
	KindFaultInjected:     decode[FaultInjected],
	KindChatResumed:       decode[ChatResumed],
	KindPartialSalvage:    decode[PartialSalvage],
}

// Decode parses one JSONL line back into its typed event.
func Decode(line []byte) (Event, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("telemetry: bad envelope: %w", err)
	}
	dec, ok := decoders[env.Kind]
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown event kind %q", env.Kind)
	}
	ev, err := dec(env.Ev)
	if err != nil {
		return nil, fmt.Errorf("telemetry: decoding %s: %w", env.Kind, err)
	}
	return ev, nil
}

// ReadJSONL decodes every non-empty line of r.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := Decode(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// JSONL streams events to a writer, one envelope-tagged JSON object per
// line. It deliberately does NOT implement WallObserver: its output stays a
// pure function of the simulation, bit-identical at every worker count.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONL wraps a writer as a JSONL event sink. When w is also an
// io.Closer, Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit implements Sink. The first write or encode error is retained and
// returned by Close; later events are dropped.
func (j *JSONL) Emit(ev Event) {
	line, err := Encode(ev)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.bw.Write(line); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
	}
}

// Close implements Sink: flushes, closes the underlying writer when it is a
// Closer, and reports the first error seen anywhere in the sink's life.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.c = nil
	}
	return j.err
}
