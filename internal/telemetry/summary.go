package telemetry

// Canonical metric names aggregated by Summary. They are shared with the
// CSV output, so they are append-only like the event kinds.
const (
	MChatInitiated = "chat.initiated"
	MChatCompleted = "chat.completed"
	MChatAborted   = "chat.aborted"
	MChatElapsedS  = "chat.elapsed_s"
	MChatPsi       = "chat.psi"

	MTransModel       = "transfer.model.count"
	MTransModelOK     = "transfer.model.completed"
	MBytesModelReq    = "bytes.model.requested"
	MBytesModelGot    = "bytes.model.delivered"
	MTransCoreset     = "transfer.coreset.count"
	MTransCoresetOK   = "transfer.coreset.completed"
	MBytesCoresetReq  = "bytes.coreset.requested"
	MBytesCoresetGot  = "bytes.coreset.delivered"
	MTransferBytes    = "transfer.bytes"
	MTransferTruncate = "transfer.truncated"

	MAggregations = "aggregation.count"
	MAggWPeer     = "aggregation.w_peer"

	MCoresetAbsorbFrames = "coreset.absorbed_frames"
	MCoresetEvictFrames  = "coreset.evicted_frames"
	MCoresetRebuilds     = "coreset.rebuilds"

	MCoresetLeavesRebuilt = "coreset.leaves_rebuilt"
	MCoresetLeavesCached  = "coreset.leaves_cached"
	MCoresetTreeMerges    = "coreset.tree_merges"

	MContactsOpened  = "contact.opened"
	MContactDuration = "contact.duration_s"

	MTrainSteps  = "train.steps"
	MTrainWallNs = "train.wall_ns"

	MShardScans  = "shard.scans"
	MShardPairs  = "shard.pairs"
	MShardGuests = "shard.guests"
	MShardLocals = "shard.locals"

	MSchedDueDequeued    = "sched.due_dequeued"
	MSchedBucketsTouched = "sched.buckets_touched"
	MSchedShardBatches   = "sched.shard_batches"

	MTraceLoads         = "trace.chunk_loads"
	MTraceEvicts        = "trace.chunk_evicts"
	MTracePrefetches    = "trace.chunk_prefetches"
	MTraceResident      = "trace.resident_chunks"
	MTraceFetchRetries  = "trace.chunk_fetch_retries"
	MTraceFetchWaitNs   = "trace.chunk_fetch_wait_ns"
	MTracePrefetchDepth = "trace.chunk_prefetch_depth"

	MFaultsInjected = "fault.injected"
	MChatResumed    = "chat.resumed"
	MResumeSavedB   = "chat.resume_saved_bytes"
	MSalvages       = "salvage.count"
	MSalvageFrames  = "salvage.frames"
)

// KnownMetrics lists every canonical metric name a Summary can emit, for
// validators (cmd/telemetry-lint -summary) to check CSV dumps against.
// Per-fault counters ("fault.<name>") are dynamic and not listed; accept
// any name under the "fault." prefix alongside this list.
func KnownMetrics() []string {
	return []string{
		MChatInitiated, MChatCompleted, MChatAborted, MChatElapsedS, MChatPsi,
		MTransModel, MTransModelOK, MBytesModelReq, MBytesModelGot,
		MTransCoreset, MTransCoresetOK, MBytesCoresetReq, MBytesCoresetGot,
		MTransferBytes, MTransferTruncate,
		MAggregations, MAggWPeer,
		MCoresetAbsorbFrames, MCoresetEvictFrames, MCoresetRebuilds,
		MCoresetLeavesRebuilt, MCoresetLeavesCached, MCoresetTreeMerges,
		MContactsOpened, MContactDuration,
		MTrainSteps, MTrainWallNs,
		MShardScans, MShardPairs, MShardGuests, MShardLocals,
		MSchedDueDequeued, MSchedBucketsTouched, MSchedShardBatches,
		MTraceLoads, MTraceEvicts, MTracePrefetches, MTraceResident,
		MTraceFetchRetries, MTraceFetchWaitNs, MTracePrefetchDepth,
		MFaultsInjected, MChatResumed, MResumeSavedB, MSalvages, MSalvageFrames,
	}
}

// Fixed bucket edges for the Summary histograms. Fixed across runs so
// per-protocol summaries are directly comparable.
var (
	psiEdges     = []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1}
	elapsedEdges = []float64{1, 2, 5, 10, 15, 20}
	bytesEdges   = []float64{1e4, 1e5, 1e6, 5e6, 1e7, 5e7}
	contactEdges = []float64{5, 15, 30, 60, 120, 300}
	wPeerEdges   = []float64{0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}
	trainNsEdges  = []float64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	localsEdges   = []float64{16, 64, 256, 1024, 4096, 16384}
	residentEdges = []float64{1, 2, 3, 4, 6, 8, 16}
	depthEdges    = []float64{1, 2, 3, 4, 6, 8, 16}
)

// Summary is the always-cheap aggregating sink: it folds the event stream
// into a Registry of counters and fixed-bucket histograms and keeps the
// run-level identifiers, never retaining events. It is the basis of the
// end-of-run communication-efficiency report.
type Summary struct {
	// Protocol and Lossless identify the run (from its RunStarted event).
	Protocol string
	Lossless bool
	// FinalLoss tracks the last recorded probe loss.
	FinalLoss float64
	// Canceled reports whether the run stopped early.
	Canceled bool
	// Reg holds the aggregated counters and histograms.
	Reg *Registry
}

// NewSummary returns an empty summary collector.
func NewSummary() *Summary {
	return &Summary{Reg: NewRegistry()}
}

// Emit implements Sink.
func (s *Summary) Emit(ev Event) {
	switch e := ev.(type) {
	case RunStarted:
		s.Protocol, s.Lossless = e.Protocol, e.Lossless
	case RunFinished:
		s.FinalLoss, s.Canceled = e.FinalLoss, e.Canceled
	case ChatInitiated:
		s.Reg.Inc(MChatInitiated, 1)
	case ChatCompleted:
		s.Reg.Inc(MChatCompleted, 1)
		s.Reg.Observe(MChatElapsedS, elapsedEdges, e.Elapsed)
	case ChatAborted:
		s.Reg.Inc(MChatAborted, 1)
	case CompressionChosen:
		s.Reg.Observe(MChatPsi, psiEdges, e.Psi)
	case Transfer:
		switch e.Payload {
		case PayloadCoreset:
			s.Reg.Inc(MTransCoreset, 1)
			s.Reg.Inc(MBytesCoresetReq, int64(e.BytesRequested))
			s.Reg.Inc(MBytesCoresetGot, int64(e.BytesDelivered))
			if e.Completed {
				s.Reg.Inc(MTransCoresetOK, 1)
			}
		default: // model payloads, including infrastructure legs
			s.Reg.Inc(MTransModel, 1)
			s.Reg.Inc(MBytesModelReq, int64(e.BytesRequested))
			s.Reg.Inc(MBytesModelGot, int64(e.BytesDelivered))
			if e.Completed {
				s.Reg.Inc(MTransModelOK, 1)
			}
		}
		if !e.Completed {
			s.Reg.Inc(MTransferTruncate, 1)
		}
		s.Reg.Observe(MTransferBytes, bytesEdges, float64(e.BytesRequested))
	case Aggregation:
		s.Reg.Inc(MAggregations, 1)
		s.Reg.Observe(MAggWPeer, wPeerEdges, e.WPeer)
	case CoresetAbsorbed:
		s.Reg.Inc(MCoresetAbsorbFrames, int64(e.Frames))
	case CoresetEvicted:
		s.Reg.Inc(MCoresetEvictFrames, int64(e.Dropped))
	case CoresetRebuilt:
		s.Reg.Inc(MCoresetRebuilds, 1)
	case ContactOpen:
		s.Reg.Inc(MContactsOpened, 1)
	case ContactClose:
		s.Reg.Observe(MContactDuration, contactEdges, e.Duration)
	case TrainStep:
		s.Reg.Inc(MTrainSteps, int64(e.Steps))
	case LossRecorded:
		s.FinalLoss = e.Loss
	case FaultInjected:
		s.Reg.Inc(MFaultsInjected, 1)
		s.Reg.Inc("fault."+e.Fault, 1)
	case ChatResumed:
		s.Reg.Inc(MChatResumed, 1)
		s.Reg.Inc(MResumeSavedB, int64(e.SavedBytes))
	case PartialSalvage:
		s.Reg.Inc(MSalvages, 1)
		s.Reg.Inc(MSalvageFrames, int64(e.Frames))
	}
}

// ObserveTrainWall implements WallObserver: wall time lives only in this
// aggregate histogram, never in the event stream.
func (s *Summary) ObserveTrainWall(nanos int64) {
	s.Reg.Observe(MTrainWallNs, trainNsEdges, float64(nanos))
}

// ObserveShardScan implements ShardObserver: shard topology lives only in
// these aggregates, never in the event stream, so event output stays
// byte-identical across shard counts.
func (s *Summary) ObserveShardScan(scan ShardScan) {
	s.Reg.Inc(MShardScans, 1)
	s.Reg.Inc(MShardPairs, int64(scan.Pairs))
	s.Reg.Inc(MShardGuests, int64(scan.Guests))
	s.Reg.Observe(MShardLocals, localsEdges, float64(scan.Locals))
}

// ObserveSchedTick implements SchedObserver: calendar-queue and batching
// internals live only in these aggregates, never in the event stream, so
// the calendar and legacy-due-scan arms emit byte-identical events.
func (s *Summary) ObserveSchedTick(t SchedTick) {
	s.Reg.Inc(MSchedDueDequeued, int64(t.DueDequeued))
	s.Reg.Inc(MSchedBucketsTouched, int64(t.BucketsTouched))
	s.Reg.Inc(MSchedShardBatches, int64(t.ShardBatches))
}

// ObserveCoresetRefresh implements CoresetObserver: incremental-refresh
// cache behavior lives only in these aggregates, never in the event stream,
// so the incremental and full-rebuild arms emit identically-shaped events.
func (s *Summary) ObserveCoresetRefresh(r CoresetRefresh) {
	s.Reg.Inc(MCoresetLeavesRebuilt, int64(r.LeavesRebuilt))
	s.Reg.Inc(MCoresetLeavesCached, int64(r.LeavesCached))
	s.Reg.Inc(MCoresetTreeMerges, int64(r.TreeMerges))
}

// ObserveTraceChunk implements TraceObserver: streaming-window chunk
// traffic lives only in these aggregates, never in the event stream, so
// streamed and resident runs emit byte-identical events.
func (s *Summary) ObserveTraceChunk(op TraceChunk) {
	switch op.Op {
	case "load":
		s.Reg.Inc(MTraceLoads, 1)
		if op.Retries > 0 {
			s.Reg.Inc(MTraceFetchRetries, int64(op.Retries))
		}
		if op.WaitNs > 0 {
			s.Reg.Inc(MTraceFetchWaitNs, op.WaitNs)
		}
	case "evict":
		s.Reg.Inc(MTraceEvicts, 1)
	case "prefetch":
		s.Reg.Inc(MTracePrefetches, 1)
		s.Reg.Observe(MTracePrefetchDepth, depthEdges, float64(op.Depth))
	}
	s.Reg.Observe(MTraceResident, residentEdges, float64(op.Resident))
}

// Close implements Sink (no-op).
func (s *Summary) Close() error { return nil }

// Chats returns the initiated/completed/aborted chat counts.
func (s *Summary) Chats() (initiated, completed, aborted int64) {
	return s.Reg.Counter(MChatInitiated), s.Reg.Counter(MChatCompleted), s.Reg.Counter(MChatAborted)
}

// BytesRequested returns the over-the-air bytes handed to the radio, split
// by payload.
func (s *Summary) BytesRequested() (model, coreset int64) {
	return s.Reg.Counter(MBytesModelReq), s.Reg.Counter(MBytesCoresetReq)
}

// BytesDelivered returns the bytes that made it across, split by payload.
func (s *Summary) BytesDelivered() (model, coreset int64) {
	return s.Reg.Counter(MBytesModelGot), s.Reg.Counter(MBytesCoresetGot)
}

// TotalBytesRequested is the run's total over-the-air byte demand.
func (s *Summary) TotalBytesRequested() int64 {
	m, c := s.BytesRequested()
	return m + c
}
