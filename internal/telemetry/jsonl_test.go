package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// allEventKinds is one populated instance of every event type; the
// round-trip test walks it so a new event type cannot be added without
// registering a decoder.
var allEventKinds = []Event{
	RunStarted{Protocol: "LbChat", Lossless: true},
	RunFinished{Protocol: "LbChat", Time: 2400, FinalLoss: 0.31, Canceled: true},
	ChatInitiated{Time: 10, A: 1, B: 2, Contact: 44.5, Window: 15},
	ChatCompleted{Time: 10, A: 1, B: 2, Elapsed: 13.7},
	ChatAborted{Time: 11, A: 3, B: 4, Reason: AbortCoresetExchange},
	CompressionChosen{Time: 10, From: 1, To: 2, Psi: 0.35, Bytes: 18_200_000},
	Transfer{Time: 10, From: 1, To: 2, Payload: PayloadModel, BytesRequested: 100, BytesDelivered: 50, Elapsed: 3.2, Truncated: TruncRange},
	Aggregation{Time: 12, Vehicle: 2, WSelf: 0.45, WPeer: 0.55},
	CoresetAbsorbed{Time: 12, Vehicle: 2, Frames: 150},
	CoresetEvicted{Time: 12, Vehicle: 2, Dropped: 150},
	CoresetRebuilt{Time: 13, Vehicle: 1, Size: 150},
	ContactOpen{Time: 9, A: 1, B: 2},
	ContactClose{Time: 60, A: 1, B: 2, Duration: 51},
	TrainStep{Time: 14, Vehicle: 0, Steps: 1, Loss: 0.8},
	LossRecorded{Time: 60, Loss: 0.44},
	FaultInjected{Time: 15, Fault: FaultBurstLoss, A: 1, B: 2, Value: 0.4},
	ChatResumed{Time: 70, A: 1, B: 2, SavedBytes: 120_000, Age: 33},
	PartialSalvage{Time: 70, Vehicle: 1, From: 2, Frames: 3, Total: 30, Discount: 0.1},
}

func TestJSONLRoundTripEveryKind(t *testing.T) {
	if len(allEventKinds) != len(decoders) {
		t.Fatalf("test covers %d kinds, decoder table has %d", len(allEventKinds), len(decoders))
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, ev := range allEventKinds {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(allEventKinds) {
		t.Fatalf("decoded %d events, wrote %d", len(got), len(allEventKinds))
	}
	for i, want := range allEventKinds {
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("event %d: got %#v, want %#v", i, got[i], want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode([]byte(`{"kind":"nope","ev":{}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Decode([]byte(`{"kind":"transfer","ev":{"from":"x"}}`)); err == nil {
		t.Error("type-mismatched payload accepted")
	}
}

func TestReadJSONLSkipsBlankLinesAndReportsLine(t *testing.T) {
	in := `{"kind":"contact_open","ev":{"time":1,"a":0,"b":1}}

{"kind":"broken"`
	events, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("broken trailing line accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error does not name the line: %v", err)
	}
	if len(events) != 1 {
		t.Errorf("got %d events before the error", len(events))
	}
}
