// Package traceserve moves the streaming trace engine's chunk paging over
// HTTP: a Server exposes an LBTC trace's chunks by index, and a client
// Source implements trace.ChunkSource against such a server, so a
// trace.Window can page a mobility trace that lives in another process —
// a peer vehicle, an edge node, or a blob store front — exactly as it
// pages a local file.
//
// # Wire format
//
// Two endpoints, both GET, versioned under /v1:
//
//	/v1/meta         → JSON stream header: dt, vehicles, chunk_ticks,
//	                   total_ticks, num_chunks
//	/v1/chunk/<idx>  → one chunk body: ticks×vehicles little-endian
//	                   (float64 x, float64 y) pairs — the exact LBTC chunk
//	                   body bytes, no re-encoding.
//
// Every chunk response carries Content-Length (ticks×vehicles×16),
// X-Lbtc-Ticks (the chunk's tick count; the tail chunk may be short), and
// X-Lbtc-Crc32 (IEEE CRC-32 of the body, hex). The client verifies all
// three, so truncated or corrupted responses are detected before a single
// decoded point reaches the window.
//
// # Determinism
//
// The transport changes nothing about results: the client retries failed
// or corrupt fetches with exponential backoff, and a chunk is either
// delivered bit-identical to the file bytes or the window poisons itself
// with a position-annotated *trace.ChunkError. Fetch effort (retries,
// wait time, prefetch depth) flows only through the trace.ChunkOp side
// channel into the trace.chunk_* summary counters, never the telemetry
// event stream — a remote-served run's event stream is byte-identical to
// the local-streamed and resident runs' (TestStreamABDeterminism, make
// remote-stream-smoke).
//
// # Fault injection
//
// ServerConfig takes a faults.FetchConfig (added latency, request loss)
// so the retry and adaptive-prefetch paths can be exercised on localhost;
// cmd/trace-serve exposes it as -fetch-faults {off,slow,lossy,flaky}.
package traceserve
