package traceserve

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"lbchat/internal/geom"
	"lbchat/internal/trace"
)

// ClientConfig parameterizes a chunk client. The zero value takes every
// default.
type ClientConfig struct {
	// Timeout bounds each individual request (connect through body read);
	// 0 takes DefaultTimeout.
	Timeout time.Duration
	// Retries is how many times a failed fetch is retried before the
	// window is poisoned; negative disables retries, 0 takes
	// DefaultRetries.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt;
	// 0 takes DefaultBackoff.
	Backoff time.Duration
	// CacheChunks is the decoded-chunk LRU capacity; negative disables
	// caching, 0 takes DefaultCacheChunks.
	CacheChunks int
	// HTTPClient overrides the transport (tests); nil builds one with the
	// configured timeout.
	HTTPClient *http.Client
}

// Client defaults: a localhost or rack-local chunk server answers in
// microseconds to low milliseconds, so a 5s timeout only trips on real
// faults; three retries with doubling backoff ride out transient drops
// without stalling a poisoned stream for long.
const (
	DefaultTimeout     = 5 * time.Second
	DefaultRetries     = 3
	DefaultBackoff     = 50 * time.Millisecond
	DefaultCacheChunks = 8
)

// Client is a trace.ChunkSource over a chunk server: every ReadChunk is a
// bounded-retry HTTP fetch with checksum verification and an LRU of
// decoded chunks. It is safe for concurrent use — the window's adaptive
// prefetcher keeps several fetches in flight at once.
type Client struct {
	base string
	cfg  ClientConfig
	hc   *http.Client
	meta Meta

	mu    sync.Mutex
	cache map[int]*list.Element // chunk idx → lru element
	lru   *list.List            // front = most recent; values are cacheEntry
}

// cacheEntry is one decoded chunk in the client LRU.
type cacheEntry struct {
	idx   int
	pts   []geom.Point
	ticks int
}

// OpenWindow dials a chunk server and wraps the client in a sliding
// window — the remote counterpart of trace.OpenWindowFile. The returned
// closer drains the window's prefetches and releases the client's
// connections.
func OpenWindow(baseURL string, wcfg trace.WindowConfig, ccfg ClientConfig) (*trace.Window, io.Closer, error) {
	c, err := Dial(baseURL, ccfg)
	if err != nil {
		return nil, nil, err
	}
	w := trace.NewWindowSource(c, wcfg)
	return w, &windowCloser{w: w, c: c}, nil
}

// windowCloser drains a window before releasing its client.
type windowCloser struct {
	w *trace.Window
	c *Client
}

func (wc *windowCloser) Close() error {
	wc.w.Close()
	return wc.c.Close()
}

// Dial fetches the server's stream metadata and returns a ready chunk
// source. The base URL is the server root (e.g. "http://10.0.0.7:9347").
func Dial(baseURL string, cfg ClientConfig) (*Client, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.CacheChunks == 0 {
		cfg.CacheChunks = DefaultCacheChunks
	} else if cfg.CacheChunks < 0 {
		cfg.CacheChunks = 0
	}
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		cfg:   cfg,
		hc:    cfg.HTTPClient,
		cache: make(map[int]*list.Element),
		lru:   list.New(),
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	raw, _, err := c.fetch("/v1/meta", -1)
	if err != nil {
		return nil, fmt.Errorf("traceserve: fetching %s/v1/meta: %w", c.base, err)
	}
	if err := json.Unmarshal(raw, &c.meta); err != nil {
		return nil, fmt.Errorf("traceserve: decoding meta: %w", err)
	}
	m := c.meta
	if m.DT <= 0 || m.ChunkTicks <= 0 || m.TotalTicks < 0 || m.Vehicles < 0 ||
		m.NumChunks != trace.NumChunks(m.TotalTicks, m.ChunkTicks) {
		return nil, fmt.Errorf("traceserve: inconsistent meta %+v", m)
	}
	return c, nil
}

// Meta returns the served stream's header metadata.
func (c *Client) Meta() Meta { return c.meta }

// DT returns the stream's tick interval in seconds.
func (c *Client) DT() float64 { return c.meta.DT }

// NumVehicles returns the stream's vehicle count.
func (c *Client) NumVehicles() int { return c.meta.Vehicles }

// ChunkTicks returns the stream's chunk capacity in ticks.
func (c *Client) ChunkTicks() int { return c.meta.ChunkTicks }

// NumTicks returns the stream's total tick count.
func (c *Client) NumTicks() int { return c.meta.TotalTicks }

// ReadChunk implements trace.ChunkSource: serve from the LRU when
// possible, otherwise fetch with bounded retries, verify, decode, cache.
func (c *Client) ReadChunk(idx int, dst []geom.Point) (trace.ChunkFetch, error) {
	if idx < 0 || idx >= c.meta.NumChunks {
		return trace.ChunkFetch{}, fmt.Errorf("traceserve: chunk %d outside stream of %d chunks", idx, c.meta.NumChunks)
	}
	if pts, ticks, ok := c.cacheGet(idx, dst); ok {
		return trace.ChunkFetch{Pts: pts, Ticks: ticks}, nil
	}
	body, retries, err := c.fetchChunk(idx)
	if err != nil {
		return trace.ChunkFetch{Retries: retries}, err
	}
	ticks := len(body) / (c.meta.Vehicles * 16)
	pts, err := trace.DecodePoints(body, dst)
	if err != nil {
		return trace.ChunkFetch{Retries: retries}, err
	}
	c.cachePut(idx, pts, ticks)
	return trace.ChunkFetch{Pts: pts, Ticks: ticks, Retries: retries}, nil
}

// Close releases idle connections. Windows over this source must be
// closed (prefetches drained) first.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// cacheGet copies a cached chunk into dst and bumps its recency.
func (c *Client) cacheGet(idx int, dst []geom.Point) ([]geom.Point, int, bool) {
	if c.cfg.CacheChunks == 0 {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.cache[idx]
	if !ok {
		return nil, 0, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(cacheEntry)
	if cap(dst) < len(e.pts) {
		dst = make([]geom.Point, len(e.pts))
	}
	dst = dst[:len(e.pts)]
	copy(dst, e.pts)
	return dst, e.ticks, true
}

// cachePut stores its own copy of a decoded chunk, evicting the least
// recently used entry past capacity.
func (c *Client) cachePut(idx int, pts []geom.Point, ticks int) {
	if c.cfg.CacheChunks == 0 {
		return
	}
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.cache[idx]; ok {
		c.lru.MoveToFront(el)
		el.Value = cacheEntry{idx: idx, pts: cp, ticks: ticks}
		return
	}
	c.cache[idx] = c.lru.PushFront(cacheEntry{idx: idx, pts: cp, ticks: ticks})
	for c.lru.Len() > c.cfg.CacheChunks {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.cache, old.Value.(cacheEntry).idx)
	}
}

// fetchChunk fetches and verifies chunk idx's body, retrying with
// exponential backoff. It returns the body and how many retries were
// spent (also on failure, for the telemetry counters).
func (c *Client) fetchChunk(idx int) ([]byte, int, error) {
	body, retries, err := c.fetch("/v1/chunk/"+strconv.Itoa(idx), idx)
	return body, retries, err
}

// fetch GETs one path with the retry/backoff/timeout policy. chunkIdx ≥ 0
// enables chunk-response verification (tick header, length, checksum);
// -1 marks a metadata fetch.
func (c *Client) fetch(path string, chunkIdx int) ([]byte, int, error) {
	var lastErr error
	backoff := c.cfg.Backoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		body, err := c.fetchOnce(path, chunkIdx)
		if err == nil {
			return body, attempt, nil
		}
		lastErr = err
		if attempt == c.cfg.Retries {
			return nil, attempt, fmt.Errorf("%d attempt(s) failed: %w", attempt+1, lastErr)
		}
	}
}

// fetchOnce performs one bounded request and, for chunk responses,
// verifies the tick header, body length, and CRC-32.
func (c *Client) fetchOnce(path string, chunkIdx int) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if chunkIdx < 0 {
		return body, nil
	}
	ticksHdr := resp.Header.Get(HeaderTicks)
	ticks, err := strconv.Atoi(ticksHdr)
	if err != nil || ticks <= 0 || ticks > c.meta.ChunkTicks {
		return nil, fmt.Errorf("bad %s header %q", HeaderTicks, ticksHdr)
	}
	if want := ticks * c.meta.Vehicles * 16; len(body) != want {
		return nil, fmt.Errorf("chunk body of %d bytes, want %d (%d ticks × %d vehicles)",
			len(body), want, ticks, c.meta.Vehicles)
	}
	if sumHdr := resp.Header.Get(HeaderCRC32); sumHdr != "" {
		sum, err := strconv.ParseUint(sumHdr, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("bad %s header %q", HeaderCRC32, sumHdr)
		}
		if got := crc32.ChecksumIEEE(body); got != uint32(sum) {
			return nil, fmt.Errorf("chunk checksum %08x, header says %08x", got, sum)
		}
	}
	return body, nil
}
