package traceserve

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"lbchat/internal/faults"
	"lbchat/internal/simrand"
	"lbchat/internal/trace"
)

// Meta is the /v1/meta payload: the LBTC stream header plus the totals a
// random-access client needs up front.
type Meta struct {
	DT         float64 `json:"dt"`
	Vehicles   int     `json:"vehicles"`
	ChunkTicks int     `json:"chunk_ticks"`
	TotalTicks int     `json:"total_ticks"`
	NumChunks  int     `json:"num_chunks"`
}

// Chunk response headers.
const (
	// HeaderTicks carries the chunk's tick count (tail chunks are short).
	HeaderTicks = "X-Lbtc-Ticks"
	// HeaderCRC32 carries the IEEE CRC-32 of the body, lowercase hex.
	HeaderCRC32 = "X-Lbtc-Crc32"
)

// ServerConfig parameterizes a chunk server.
type ServerConfig struct {
	// Faults injects per-request latency and loss (see faults.FetchConfig);
	// the zero value serves every request immediately.
	Faults faults.FetchConfig
}

// Server serves one LBTC trace's chunks by index over HTTP. It implements
// http.Handler and is safe for concurrent requests: chunk reads go through
// the indexed source's positioned-read path, and fault draws are mutex-
// serialized.
type Server struct {
	src  *trace.IndexedChunkSource
	meta Meta
	cfg  ServerConfig

	mu       sync.Mutex
	rng      *simrand.Rand
	requests int64
}

// NewServer wraps an indexed chunk source (see trace.OpenFileSource) in a
// chunk-serving handler. The server does not own the source; close it
// after the HTTP server shuts down.
func NewServer(src *trace.IndexedChunkSource, cfg ServerConfig) (*Server, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		src: src,
		meta: Meta{
			DT:         src.DT(),
			Vehicles:   src.NumVehicles(),
			ChunkTicks: src.ChunkTicks(),
			TotalTicks: src.NumTicks(),
			NumChunks:  src.NumChunks(),
		},
		cfg: cfg,
	}
	if cfg.Faults.Enabled() {
		s.rng = simrand.New(cfg.Faults.Seed).Derive("traceserve")
	}
	return s, nil
}

// Meta returns the served stream's header metadata.
func (s *Server) Meta() Meta { return s.meta }

// Requests returns how many requests the server has handled.
func (s *Server) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// injectFaults applies the configured per-request latency and loss draw.
// It reports whether the request should be dropped.
func (s *Server) injectFaults() bool {
	if !s.cfg.Faults.Enabled() {
		s.mu.Lock()
		s.requests++
		s.mu.Unlock()
		return false
	}
	s.mu.Lock()
	s.requests++
	drop := s.cfg.Faults.LossProb > 0 && s.rng.Bernoulli(s.cfg.Faults.LossProb)
	s.mu.Unlock()
	if s.cfg.Faults.Latency > 0 {
		time.Sleep(s.cfg.Faults.Latency)
	}
	return drop
}

// ServeHTTP routes /v1/meta and /v1/chunk/<idx>.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch {
	case r.URL.Path == "/v1/meta":
		if s.injectFaults() {
			http.Error(w, "injected fetch loss", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.meta)
	case strings.HasPrefix(r.URL.Path, "/v1/chunk/"):
		s.serveChunk(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveChunk streams one chunk body with its length, tick-count, and
// checksum headers.
func (s *Server) serveChunk(w http.ResponseWriter, r *http.Request) {
	idxStr := strings.TrimPrefix(r.URL.Path, "/v1/chunk/")
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		http.Error(w, fmt.Sprintf("bad chunk index %q", idxStr), http.StatusBadRequest)
		return
	}
	if idx >= s.meta.NumChunks {
		http.Error(w, fmt.Sprintf("chunk %d outside stream of %d chunks", idx, s.meta.NumChunks), http.StatusNotFound)
		return
	}
	if s.injectFaults() {
		http.Error(w, "injected fetch loss", http.StatusServiceUnavailable)
		return
	}
	body, ticks, err := s.src.ReadRawChunk(idx, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	h.Set(HeaderTicks, strconv.Itoa(ticks))
	h.Set(HeaderCRC32, fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body)
}
