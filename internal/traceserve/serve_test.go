package traceserve_test

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lbchat/internal/faults"
	"lbchat/internal/geom"
	"lbchat/internal/trace"
	"lbchat/internal/traceserve"
)

// buildTrace returns a deterministic resident trace plus its LBTC bytes.
func buildTrace(t *testing.T, vehicles, ticks, chunkTicks int) (*trace.Trace, []byte) {
	t.Helper()
	tr := trace.NewChunked(0.5, vehicles, chunkTicks)
	for tick := 0; tick < ticks; tick++ {
		row := tr.AppendRow()
		for v := range row {
			row[v] = geom.Point{X: float64(tick*100 + v), Y: -float64(tick) + 0.5*float64(v)}
		}
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// startServer serves the LBTC bytes over a localhost listener.
func startServer(t *testing.T, raw []byte, cfg traceserve.ServerConfig) (*traceserve.Server, *httptest.Server) {
	t.Helper()
	src, err := trace.NewBytesSource(raw)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := traceserve.NewServer(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

// checkClientMatches reads every chunk through the client and compares each
// decoded position against the resident trace, returning the total retries.
func checkClientMatches(t *testing.T, c *traceserve.Client, tr trace.Source) int {
	t.Helper()
	vehicles, chunkTicks := tr.NumVehicles(), c.ChunkTicks()
	retries := 0
	for idx := 0; idx < trace.NumChunks(tr.NumTicks(), chunkTicks); idx++ {
		cf, err := c.ReadChunk(idx, nil)
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", idx, err)
		}
		retries += cf.Retries
		first := idx * chunkTicks
		for k := 0; k < cf.Ticks; k++ {
			row := tr.Row(first + k)
			for v := 0; v < vehicles; v++ {
				if cf.Pts[k*vehicles+v] != row[v] {
					t.Fatalf("chunk %d tick %d vehicle %d: %v, want %v",
						idx, first+k, v, cf.Pts[k*vehicles+v], row[v])
				}
			}
		}
	}
	return retries
}

// TestClientMatchesResident round-trips every chunk through a healthy
// server and checks meta plus decoded positions against the resident trace.
func TestClientMatchesResident(t *testing.T) {
	tr, raw := buildTrace(t, 3, 90, 8)
	_, hs := startServer(t, raw, traceserve.ServerConfig{})
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.DT() != 0.5 || c.NumVehicles() != 3 || c.ChunkTicks() != 8 || c.NumTicks() != 90 {
		t.Fatalf("client shape dt=%g vehicles=%d chunkTicks=%d ticks=%d",
			c.DT(), c.NumVehicles(), c.ChunkTicks(), c.NumTicks())
	}
	if retries := checkClientMatches(t, c, tr); retries != 0 {
		t.Fatalf("healthy server needed %d retries", retries)
	}
	if _, err := c.ReadChunk(trace.NumChunks(90, 8), nil); err == nil {
		t.Fatal("reading past the last chunk succeeded")
	}
}

// TestClientCacheServesRepeats pins the LRU: re-reading a chunk must not
// touch the server again, and values must still match.
func TestClientCacheServesRepeats(t *testing.T) {
	tr, raw := buildTrace(t, 2, 32, 8)
	srv, hs := startServer(t, raw, traceserve.ServerConfig{})
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{CacheChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadChunk(0, nil); err != nil {
		t.Fatal(err)
	}
	before := srv.Requests()
	cf, err := c.ReadChunk(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Requests() != before {
		t.Fatalf("cached re-read hit the server (%d → %d requests)", before, srv.Requests())
	}
	row := tr.Row(0)
	for v := range row {
		if cf.Pts[v] != row[v] {
			t.Fatalf("cached chunk differs at vehicle %d", v)
		}
	}
	// Capacity 2: reading chunks 1 and 2 evicts chunk 0.
	for idx := 1; idx <= 2; idx++ {
		if _, err := c.ReadChunk(idx, nil); err != nil {
			t.Fatal(err)
		}
	}
	before = srv.Requests()
	if _, err := c.ReadChunk(0, nil); err != nil {
		t.Fatal(err)
	}
	if srv.Requests() != before+1 {
		t.Fatalf("evicted chunk not refetched (%d → %d requests)", before, srv.Requests())
	}
}

// TestClientRetriesLossyServer drives a loss-injecting server: the client
// must absorb the 503s with retries and still deliver bit-identical chunks.
func TestClientRetriesLossyServer(t *testing.T) {
	tr, raw := buildTrace(t, 2, 64, 8)
	_, hs := startServer(t, raw, traceserve.ServerConfig{
		Faults: faults.FetchConfig{LossProb: 0.4, Seed: 7},
	})
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{
		Retries: 20, Backoff: time.Millisecond, CacheChunks: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if retries := checkClientMatches(t, c, tr); retries == 0 {
		t.Fatal("a 40%-loss server needed zero retries")
	}
}

// faultyHandler wraps a healthy server and rewrites chunk responses per
// test: always-503, corrupted body, truncated body, or first-try stall.
type faultyHandler struct {
	inner http.Handler
	mode  string // "deny", "corrupt", "truncate", "stall"

	mu    sync.Mutex
	tries map[string]int
}

func (f *faultyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/v1/chunk/") {
		f.inner.ServeHTTP(w, r)
		return
	}
	f.mu.Lock()
	f.tries[r.URL.Path]++
	tries := f.tries[r.URL.Path]
	f.mu.Unlock()
	switch f.mode {
	case "deny":
		http.Error(w, "boom", http.StatusServiceUnavailable)
		return
	case "stall":
		if tries == 1 {
			time.Sleep(300 * time.Millisecond)
		}
	}
	rec := httptest.NewRecorder()
	f.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	switch f.mode {
	case "corrupt":
		body[len(body)/2] ^= 0xFF
	case "truncate":
		body = body[:len(body)-16]
	}
	h := w.Header()
	h.Set(traceserve.HeaderTicks, rec.Header().Get(traceserve.HeaderTicks))
	h.Set(traceserve.HeaderCRC32, rec.Header().Get(traceserve.HeaderCRC32))
	h.Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(rec.Code)
	w.Write(body)
}

// startFaulty serves raw through a faultyHandler in the given mode.
func startFaulty(t *testing.T, raw []byte, mode string) *httptest.Server {
	t.Helper()
	src, err := trace.NewBytesSource(raw)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := traceserve.NewServer(src, traceserve.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(&faultyHandler{inner: srv, mode: mode, tries: map[string]int{}})
	t.Cleanup(hs.Close)
	return hs
}

// TestClientExhaustedRetries pins the terminal-failure contract: after the
// retry budget a wrapped error comes back — no panic, no partial chunk.
func TestClientExhaustedRetries(t *testing.T) {
	_, raw := buildTrace(t, 2, 32, 8)
	hs := startFaulty(t, raw, "deny")
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cf, err := c.ReadChunk(0, nil)
	if err == nil {
		t.Fatal("ReadChunk succeeded against an always-503 server")
	}
	if !strings.Contains(err.Error(), "3 attempt(s) failed") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("exhausted-retry error = %v", err)
	}
	if cf.Retries != 2 {
		t.Fatalf("failed fetch reported %d retries, want 2", cf.Retries)
	}
}

// TestClientRejectsCorruptChunk pins checksum verification: a bit-flipped
// body must never decode, even after retries.
func TestClientRejectsCorruptChunk(t *testing.T) {
	_, raw := buildTrace(t, 2, 32, 8)
	hs := startFaulty(t, raw, "corrupt")
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{Retries: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ReadChunk(0, nil)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt chunk error = %v", err)
	}
}

// TestClientRejectsTruncatedChunk pins length verification against the
// tick-count header.
func TestClientRejectsTruncatedChunk(t *testing.T) {
	_, raw := buildTrace(t, 2, 32, 8)
	hs := startFaulty(t, raw, "truncate")
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{Retries: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ReadChunk(0, nil)
	if err == nil || !strings.Contains(err.Error(), "want") {
		t.Fatalf("truncated chunk error = %v", err)
	}
}

// TestClientTimeoutThenRetry pins the timeout path: a first attempt that
// outlives the request timeout is abandoned and the retry must deliver the
// chunk bit-identical.
func TestClientTimeoutThenRetry(t *testing.T) {
	tr, raw := buildTrace(t, 2, 16, 8)
	hs := startFaulty(t, raw, "stall")
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{
		Timeout: 50 * time.Millisecond, Retries: 3, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cf, err := c.ReadChunk(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Retries < 1 {
		t.Fatalf("stalled first attempt reported %d retries", cf.Retries)
	}
	row := tr.Row(0)
	for v := range row {
		if cf.Pts[v] != row[v] {
			t.Fatalf("retried chunk differs at vehicle %d", v)
		}
	}
}

// TestWindowOverFlakyServer is the end-to-end determinism check: a
// prefetching window paged through a latency- and loss-injecting server
// must produce exactly the resident trace's positions at every cursor.
func TestWindowOverFlakyServer(t *testing.T) {
	const ticks = 96
	tr, raw := buildTrace(t, 2, ticks, 8)
	_, hs := startServer(t, raw, traceserve.ServerConfig{
		Faults: faults.FetchConfig{Latency: time.Millisecond, LossProb: 0.2, Seed: 3},
	})
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{
		Retries: 20, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := trace.NewWindowSource(c, trace.WindowConfig{Behind: 2, Ahead: 5, Prefetch: true})
	defer w.Close()
	for cursor := 0; cursor < ticks; cursor++ {
		if err := w.Advance(cursor); err != nil {
			t.Fatalf("Advance(%d): %v", cursor, err)
		}
		now := float64(cursor) * 0.5
		for v := 0; v < 2; v++ {
			if got, want := w.At(v, now), tr.At(v, now); got != want {
				t.Fatalf("cursor %d vehicle %d: %v, want %v", cursor, v, got, want)
			}
		}
	}
	if retries, _ := w.FetchStats(); retries == 0 {
		t.Error("a 20%-loss server needed zero retries")
	}
}

// TestWindowPoisonedByBadServer pins that exhausted retries surface as a
// position-annotated *trace.ChunkError and poison the window.
func TestWindowPoisonedByBadServer(t *testing.T) {
	_, raw := buildTrace(t, 2, 64, 8)
	hs := startFaulty(t, raw, "deny")
	c, err := traceserve.Dial(hs.URL, traceserve.ClientConfig{Retries: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := trace.NewWindowSource(c, trace.WindowConfig{Behind: 2, Ahead: 2})
	defer w.Close()
	advErr := w.Advance(0)
	var ce *trace.ChunkError
	if !errors.As(advErr, &ce) {
		t.Fatalf("Advance error %v is not a *trace.ChunkError", advErr)
	}
	if ce.Chunk != 0 || ce.FirstTick != 0 {
		t.Fatalf("ChunkError at chunk %d first tick %d, want chunk 0", ce.Chunk, ce.FirstTick)
	}
	if err := w.Advance(1); err == nil {
		t.Fatal("poisoned window accepted another Advance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("lookup on a poisoned window did not panic")
		}
	}()
	w.Row(0)
}

// TestServerRejectsBadRequests pins the HTTP error paths.
func TestServerRejectsBadRequests(t *testing.T) {
	_, raw := buildTrace(t, 2, 32, 8)
	_, hs := startServer(t, raw, traceserve.ServerConfig{})
	for path, want := range map[string]int{
		"/v1/chunk/abc": http.StatusBadRequest,
		"/v1/chunk/-1":  http.StatusBadRequest,
		"/v1/chunk/99":  http.StatusNotFound,
		"/v2/meta":      http.StatusNotFound,
	} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Post(hs.URL+"/v1/meta", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/meta = %d, want 405", resp.StatusCode)
	}
}
