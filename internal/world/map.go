package world

import (
	"fmt"
	"math"

	"lbchat/internal/geom"
)

// NodeID identifies a map node (intersection or road endpoint).
type NodeID int

// EdgeID identifies a directed road edge.
type EdgeID int

// Node is a junction in the road graph.
type Node struct {
	ID  NodeID
	Pos geom.Point
	// Out lists outgoing edges.
	Out []EdgeID
}

// Edge is a directed road segment with its driving-lane centerline (offset
// to the right-hand side of the road axis).
type Edge struct {
	ID         EdgeID
	From, To   NodeID
	Lane       *geom.Polyline
	SpeedLimit float64 // m/s
}

// Length returns the lane length in meters.
func (e *Edge) Length() float64 { return e.Lane.Length() }

// Map is the immutable road network. It also precomputes a drivable-road
// occupancy bitmap used by BEV rasterization and off-road detection.
type Map struct {
	Nodes []Node
	Edges []Edge

	// reverse[e] is the edge running opposite to e (or -1).
	reverse []EdgeID

	bitmap     []bool
	bmMinX     float64
	bmMinY     float64
	bmCols     int
	bmRows     int
	bmCellSize float64

	width, height float64
}

// Config parameterizes map generation.
type Config struct {
	// GridN is the town grid dimension (GridN × GridN intersections).
	GridN int
	// GridSpacing is the distance between adjacent town intersections (m).
	GridSpacing float64
	// GridOffset shifts the town grid away from the map origin (m).
	GridOffset float64
	// Rural adds the country-road loop east and north of the town.
	Rural bool
	// LaneOffset is the lateral offset of the driving lane from the road
	// axis (right-hand traffic).
	LaneOffset float64
	// RoadHalfWidth is the half-width of the drivable surface (m).
	RoadHalfWidth float64
	// TownSpeed and RuralSpeed are the speed limits (m/s).
	TownSpeed  float64
	RuralSpeed float64
	// BitmapCell is the road-bitmap resolution (m).
	BitmapCell float64
}

// DefaultConfig is the ~1 km × 1 km town-plus-rural map used throughout the
// experiments, mirroring the paper's "largest built-in map ... about 1km×1km,
// including both town and rural areas".
func DefaultConfig() Config {
	return Config{
		GridN:         5,
		GridSpacing:   150,
		GridOffset:    50,
		Rural:         true,
		LaneOffset:    2.0,
		RoadHalfWidth: 6.0,
		TownSpeed:     9,
		RuralSpeed:    14,
		BitmapCell:    1.0,
	}
}

// NewMap generates a road network from the config.
func NewMap(cfg Config) (*Map, error) {
	if cfg.GridN < 2 {
		return nil, fmt.Errorf("world: grid dimension %d too small", cfg.GridN)
	}
	if cfg.GridSpacing <= 0 || cfg.BitmapCell <= 0 {
		return nil, fmt.Errorf("world: non-positive spacing %g or bitmap cell %g", cfg.GridSpacing, cfg.BitmapCell)
	}
	m := &Map{}

	// Town grid nodes.
	gridIdx := make(map[[2]int]NodeID, cfg.GridN*cfg.GridN)
	for i := 0; i < cfg.GridN; i++ {
		for j := 0; j < cfg.GridN; j++ {
			id := NodeID(len(m.Nodes))
			gridIdx[[2]int{i, j}] = id
			m.Nodes = append(m.Nodes, Node{
				ID:  id,
				Pos: geom.Pt(cfg.GridOffset+float64(i)*cfg.GridSpacing, cfg.GridOffset+float64(j)*cfg.GridSpacing),
			})
		}
	}
	// Town grid edges (bidirectional).
	for i := 0; i < cfg.GridN; i++ {
		for j := 0; j < cfg.GridN; j++ {
			if i+1 < cfg.GridN {
				m.addRoad(gridIdx[[2]int{i, j}], gridIdx[[2]int{i + 1, j}], cfg, cfg.TownSpeed)
			}
			if j+1 < cfg.GridN {
				m.addRoad(gridIdx[[2]int{i, j}], gridIdx[[2]int{i, j + 1}], cfg, cfg.TownSpeed)
			}
		}
	}

	if cfg.Rural {
		townMax := cfg.GridOffset + float64(cfg.GridN-1)*cfg.GridSpacing
		ruralX := townMax + 300
		ruralY := townMax + 300
		mid := cfg.GridN / 2
		// Country loop east and north of town, attached at three town nodes.
		a := m.addNode(geom.Pt(ruralX, cfg.GridOffset))
		b := m.addNode(geom.Pt(ruralX, townMax/2+cfg.GridOffset))
		c := m.addNode(geom.Pt(ruralX, ruralY))
		d := m.addNode(geom.Pt(townMax/2+cfg.GridOffset, ruralY))
		e := m.addNode(geom.Pt(cfg.GridOffset, ruralY))
		m.addRoad(gridIdx[[2]int{cfg.GridN - 1, 0}], a, cfg, cfg.RuralSpeed)
		m.addRoad(a, b, cfg, cfg.RuralSpeed)
		m.addRoad(gridIdx[[2]int{cfg.GridN - 1, mid}], b, cfg, cfg.RuralSpeed)
		m.addRoad(b, c, cfg, cfg.RuralSpeed)
		m.addRoad(c, d, cfg, cfg.RuralSpeed)
		m.addRoad(d, gridIdx[[2]int{mid, cfg.GridN - 1}], cfg, cfg.RuralSpeed)
		m.addRoad(d, e, cfg, cfg.RuralSpeed)
		m.addRoad(e, gridIdx[[2]int{0, cfg.GridN - 1}], cfg, cfg.RuralSpeed)
	}

	m.buildReverse()
	m.buildBitmap(cfg)
	return m, nil
}

func (m *Map) addNode(p geom.Point) NodeID {
	id := NodeID(len(m.Nodes))
	m.Nodes = append(m.Nodes, Node{ID: id, Pos: p})
	return id
}

// addRoad adds a bidirectional road between a and b as two directed edges,
// each with its lane offset to the right of travel.
func (m *Map) addRoad(a, b NodeID, cfg Config, speed float64) {
	m.addDirected(a, b, cfg, speed)
	m.addDirected(b, a, cfg, speed)
}

func (m *Map) addDirected(from, to NodeID, cfg Config, speed float64) {
	pa, pb := m.Nodes[from].Pos, m.Nodes[to].Pos
	dir := pb.Sub(pa).Unit()
	right := geom.Pt(dir.Y, -dir.X).Scale(cfg.LaneOffset)
	lane := geom.NewPolyline([]geom.Point{pa.Add(right), pb.Add(right)})
	id := EdgeID(len(m.Edges))
	m.Edges = append(m.Edges, Edge{ID: id, From: from, To: to, Lane: lane, SpeedLimit: speed})
	m.Nodes[from].Out = append(m.Nodes[from].Out, id)
}

func (m *Map) buildReverse() {
	m.reverse = make([]EdgeID, len(m.Edges))
	for i := range m.reverse {
		m.reverse[i] = -1
	}
	type key struct{ a, b NodeID }
	byPair := make(map[key]EdgeID, len(m.Edges))
	for _, e := range m.Edges {
		byPair[key{e.From, e.To}] = e.ID
	}
	for _, e := range m.Edges {
		if r, ok := byPair[key{e.To, e.From}]; ok {
			m.reverse[e.ID] = r
		}
	}
}

// Reverse returns the opposite-direction edge of e, or -1 if the road is
// one-way.
func (m *Map) Reverse(e EdgeID) EdgeID { return m.reverse[e] }

func (m *Map) buildBitmap(cfg Config) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, n := range m.Nodes {
		minX = math.Min(minX, n.Pos.X)
		minY = math.Min(minY, n.Pos.Y)
		maxX = math.Max(maxX, n.Pos.X)
		maxY = math.Max(maxY, n.Pos.Y)
	}
	margin := cfg.RoadHalfWidth + 5
	minX -= margin
	minY -= margin
	maxX += margin
	maxY += margin
	m.bmMinX, m.bmMinY = minX, minY
	m.bmCellSize = cfg.BitmapCell
	m.bmCols = int(math.Ceil((maxX-minX)/cfg.BitmapCell)) + 1
	m.bmRows = int(math.Ceil((maxY-minY)/cfg.BitmapCell)) + 1
	m.width, m.height = maxX-minX, maxY-minY
	m.bitmap = make([]bool, m.bmCols*m.bmRows)

	halfW := cfg.RoadHalfWidth
	rad := int(math.Ceil(halfW/cfg.BitmapCell)) + 1
	// Every edge pair shares a road axis; painting both directions is
	// harmless (idempotent) and keeps the code simple.
	for _, e := range m.Edges {
		axis := geom.Segment{A: m.Nodes[e.From].Pos, B: m.Nodes[e.To].Pos}
		length := axis.Length()
		steps := int(length/cfg.BitmapCell) + 1
		for s := 0; s <= steps; s++ {
			p := geom.Lerp(axis.A, axis.B, float64(s)/float64(steps))
			ci := int((p.X - minX) / cfg.BitmapCell)
			ri := int((p.Y - minY) / cfg.BitmapCell)
			for dr := -rad; dr <= rad; dr++ {
				for dc := -rad; dc <= rad; dc++ {
					r, c := ri+dr, ci+dc
					if r < 0 || r >= m.bmRows || c < 0 || c >= m.bmCols {
						continue
					}
					center := geom.Pt(minX+(float64(c)+0.5)*cfg.BitmapCell, minY+(float64(r)+0.5)*cfg.BitmapCell)
					if axis.DistToPoint(center) <= halfW {
						m.bitmap[r*m.bmCols+c] = true
					}
				}
			}
		}
	}
}

// IsRoad reports whether p lies on drivable road surface. It implements
// bev.RoadSampler.
func (m *Map) IsRoad(p geom.Point) bool {
	c := int((p.X - m.bmMinX) / m.bmCellSize)
	r := int((p.Y - m.bmMinY) / m.bmCellSize)
	if r < 0 || r >= m.bmRows || c < 0 || c >= m.bmCols {
		return false
	}
	return m.bitmap[r*m.bmCols+c]
}

// Bounds returns the map extent (width, height) in meters.
func (m *Map) Bounds() (w, h float64) { return m.width, m.height }

// NodePos returns the position of node id.
func (m *Map) NodePos(id NodeID) geom.Point { return m.Nodes[id].Pos }

// Edge lookups panic on out-of-range IDs, which always indicates a bug in
// the caller rather than a runtime condition.

// EdgeByID returns the edge with the given ID.
func (m *Map) EdgeByID(id EdgeID) *Edge { return &m.Edges[id] }

// ShortestPath returns the node sequence of the minimum-length path from src
// to dst using Dijkstra's algorithm, or an error when dst is unreachable.
func (m *Map) ShortestPath(src, dst NodeID) ([]NodeID, error) {
	const inf = math.MaxFloat64
	dist := make([]float64, len(m.Nodes))
	prev := make([]NodeID, len(m.Nodes))
	done := make([]bool, len(m.Nodes))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	for {
		// Linear scan: the graph has tens of nodes, a heap is not worth it.
		best := NodeID(-1)
		bestD := inf
		for i, d := range dist {
			if !done[i] && d < bestD {
				best = NodeID(i)
				bestD = d
			}
		}
		if best == -1 {
			break
		}
		if best == dst {
			break
		}
		done[best] = true
		for _, eid := range m.Nodes[best].Out {
			e := &m.Edges[eid]
			if nd := bestD + e.Length(); nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = best
			}
		}
	}
	if dist[dst] == inf {
		return nil, fmt.Errorf("world: node %d unreachable from %d", dst, src)
	}
	var path []NodeID
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != src {
		return nil, fmt.Errorf("world: path reconstruction failed from %d to %d", src, dst)
	}
	return path, nil
}

// EdgeBetween returns the directed edge from a to b, or an error when the
// nodes are not adjacent.
func (m *Map) EdgeBetween(a, b NodeID) (EdgeID, error) {
	for _, eid := range m.Nodes[a].Out {
		if m.Edges[eid].To == b {
			return eid, nil
		}
	}
	return -1, fmt.Errorf("world: no edge from node %d to %d", a, b)
}
