package world

import (
	"lbchat/internal/geom"
	"lbchat/internal/simrand"
)

// Pedestrian is a random-waypoint walker roaming the whole map off the
// drivable surface, crossing roads only while traveling between targets —
// like CARLA's pedestrians, who keep to sidewalks and open ground and cross
// occasionally. Crossing pedestrians are the hazard the driving model must
// learn to brake for.
type Pedestrian struct {
	ID        int
	Pos       geom.Point
	target    geom.Point
	speed     float64
	waitUntil float64 // dwell at the current spot until this world time
	rng       *simrand.Rand
	bounds    geom.Point // map extent for target sampling
}

// NewPedestrian spawns a pedestrian at a random off-road position.
func NewPedestrian(id int, m *Map, rng *simrand.Rand) *Pedestrian {
	w, h := m.Bounds()
	p := &Pedestrian{
		ID:     id,
		rng:    rng,
		bounds: geom.Pt(w, h),
		speed:  rng.Uniform(1.0, 1.7),
	}
	p.Pos = p.samplePoint(m)
	p.target = p.samplePoint(m)
	return p
}

// samplePoint picks a uniformly random off-road target, so walking legs
// cross roads transiently but pedestrians never linger on them.
func (p *Pedestrian) samplePoint(m *Map) geom.Point {
	for tries := 0; tries < 64; tries++ {
		cand := geom.Pt(p.rng.Uniform(0, p.bounds.X), p.rng.Uniform(0, p.bounds.Y))
		if !m.IsRoad(cand) {
			return cand
		}
	}
	return geom.Pt(p.rng.Uniform(0, p.bounds.X), p.rng.Uniform(0, p.bounds.Y))
}

// yieldDistance is how close an approaching car may get before a pedestrian
// waits instead of stepping onto the road. Real pedestrians (and CARLA
// walkers) do not walk into moving vehicles.
const yieldDistance = 9.0

// Step advances the pedestrian toward its target, re-sampling a new target
// on arrival. Before entering the drivable surface the pedestrian yields to
// nearby moving cars.
func (p *Pedestrian) Step(w *World, dt float64) {
	m := w.Map
	if w.Time < p.waitUntil {
		return
	}
	to := p.target.Sub(p.Pos)
	dist := to.Norm()
	if dist < 1.0 {
		// Arrived: dwell a while, like a real pedestrian at a storefront,
		// then pick the next destination. Dwell keeps the instantaneous
		// share of road-crossing pedestrians low, as in CARLA.
		p.target = p.samplePoint(m)
		p.waitUntil = w.Time + p.rng.Uniform(10, 60)
		return
	}
	next := p.Pos.Add(to.Unit().Scale(p.speed * dt))
	// Yield only when about to STEP ONTO the road: once crossing, keep
	// moving and clear the lane (a pedestrian frozen mid-road would be a
	// guaranteed collision).
	if m.IsRoad(next) && !m.IsRoad(p.Pos) && w.anyCarNear(next, yieldDistance) {
		return // wait at the curb
	}
	p.Pos = next
}
