// Package world is the driving-world simulator substituting for CARLA: a
// road-network map (town grid plus rural roads), expert autopilot vehicles
// that follow planned routes, roaming background traffic and pedestrians,
// collision detection, and frame collection into training samples.
//
// The learning and communication layers consume only what this package
// produces — (BEV, command, waypoints) frames and vehicle positions over
// time — so a kinematic 2D world preserves the causal structure the paper's
// evaluation depends on: per-vehicle data distributions that differ by
// region and command mix, and realistic encounter dynamics.
package world
