package world

import (
	"math"

	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/simrand"
)

// Kinematic and controller constants for the expert autopilot.
const (
	maxAccel         = 3.0  // m/s²
	maxBrake         = 6.0  // m/s²
	followGap        = 22.0 // begin slowing for a leading vehicle at this gap (m)
	stopGap          = 7.0  // hard-stop gap (m)
	pedSlowGap       = 14.0 // begin slowing for a pedestrian ahead (m)
	pedStopGap       = 5.0  // hard-stop gap for pedestrians (m)
	turnSlowdown     = 0.6  // speed-limit factor while a turn command is active
	yieldLookahead   = 24.0 // begin yielding to an occupied intersection (m)
	yieldStopDist    = 9.0  // stop line before an occupied intersection (m)
	intersectionR    = 8.0  // radius of the intersection conflict disc (m)
	deadlockPatience = 8.0  // full-stop seconds before creeping (s)
	creepSpeed       = 1.0  // deadlock-breaking creep speed (m/s)
	vehicleRadius    = 1.5  // collision radius of a car (m)
	pedRadius        = 0.35 // collision radius of a pedestrian (m)
)

// Vehicle is a route-following car controlled by the expert autopilot: it
// tracks its route's lane centerline, obeys speed limits, and brakes for
// vehicles and pedestrians ahead. Expert vehicles are the paper's "expert
// autopilots" that both generate training data and act as moving peers;
// background vehicles use the same controller but never collect data.
type Vehicle struct {
	ID    int
	Route *Route
	// S is the arc position along the route (m).
	S float64
	// V is the current speed (m/s).
	V float64
	// Background marks pure-traffic vehicles.
	Background bool
	// roamLength is how far ahead the route is extended when running low.
	roamLength float64
	// stuckFor accumulates time spent fully stopped, for deadlock breaking.
	stuckFor float64
	rng      *simrand.Rand
}

// NewVehicle places a vehicle at the start of route.
func NewVehicle(id int, route *Route, rng *simrand.Rand) *Vehicle {
	return &Vehicle{ID: id, Route: route, roamLength: 600, rng: rng}
}

// Pos returns the vehicle's world position.
func (v *Vehicle) Pos() geom.Point { return v.Route.PosAt(v.S) }

// Heading returns the vehicle's heading (radians).
func (v *Vehicle) Heading() float64 { return v.Route.HeadingAt(v.S) }

// Frame returns the vehicle's ego frame.
func (v *Vehicle) Frame() geom.Frame {
	return geom.Frame{Origin: v.Pos(), Heading: v.Heading()}
}

// Command returns the active high-level command.
func (v *Vehicle) Command() dataset.Command { return v.Route.CommandAt(v.S) }

// desiredSpeed computes the target speed from the speed limit, upcoming
// turns, and obstacles ahead reported by the world.
func (v *Vehicle) desiredSpeed(w *World) float64 {
	target := v.Route.SpeedLimitAt(v.S)
	if cmd := v.Route.CommandAt(v.S); cmd != dataset.CmdFollow {
		target *= turnSlowdown
	}
	// Leading-vehicle gap control.
	if gap := w.nearestVehicleAhead(v); gap < followGap {
		if gap <= stopGap {
			return 0
		}
		target = math.Min(target, target*(gap-stopGap)/(followGap-stopGap))
	}
	// Pedestrian caution.
	if gap := w.nearestPedestrianAhead(v); gap < pedSlowGap {
		if gap <= pedStopGap {
			return 0
		}
		target = math.Min(target, target*(gap-pedStopGap)/(pedSlowGap-pedStopGap))
	}
	// Red light: hold at the stop line (signal state arrives over V2I).
	if red := redLightAhead(w.Map, v.Route, v.S, w.Time); !math.IsInf(red, 1) {
		if red <= 1.5 {
			return 0
		}
		target = math.Min(target, target*red/signalApproach+0.3)
	}
	// Intersection right of way: yield to traffic already in
	// the intersection ahead. The slow-down is visible in the expert's
	// waypoints, so the driving model learns to approach occupied
	// intersections cautiously — and the yielding itself prevents the
	// cross-traffic collisions an uncontrolled simulation would be full of.
	if nodeArc, ok := v.Route.NextInteriorNode(v.S, yieldLookahead); ok {
		distToNode := nodeArc - v.S
		if w.intersectionOccupied(v, v.Route.PosAt(nodeArc)) {
			if distToNode <= yieldStopDist {
				return 0
			}
			target = math.Min(target, target*(distToNode-yieldStopDist)/(yieldLookahead-yieldStopDist))
		}
	}
	return target
}

// Step advances the vehicle by dt seconds, extending its route when it runs
// low so roaming never terminates.
func (v *Vehicle) Step(w *World, dt float64) {
	target := v.desiredSpeed(w)
	// Deadlock breaking: two stopped vehicles waiting on each other (e.g. a
	// head-on standoff after a lane excursion) would wait forever. After a
	// long full stop, creep forward if nothing is immediately touching.
	if target <= 0 && v.V < 0.1 {
		v.stuckFor += dt
		if v.stuckFor > deadlockPatience && w.nearestVehicleAhead(v) > 3.2 {
			target = creepSpeed
		}
	} else {
		v.stuckFor = 0
	}
	if target > v.V {
		v.V = math.Min(target, v.V+maxAccel*dt)
	} else {
		v.V = math.Max(target, v.V-maxBrake*dt)
	}
	v.S += v.V * dt
	if v.S > v.Route.Length()-100 {
		// Best-effort extension; on pathological graphs the vehicle simply
		// stops at the end of its route.
		_ = v.Route.ExtendRandom(w.Map, v.roamLength, v.rng)
	}
	if v.S > v.Route.Length() {
		v.S = v.Route.Length()
	}
}

// PlannedWaypoints returns the next k expert waypoints in the EGO frame,
// spaced horizonStep seconds apart at the currently planned speed. A stopped
// expert therefore emits waypoints collapsed at the origin — which is exactly
// the behaviour the model must imitate to learn braking.
func (v *Vehicle) PlannedWaypoints(w *World, k int, horizonStep float64) []geom.Point {
	frame := v.Frame()
	speed := v.desiredSpeed(w)
	out := make([]geom.Point, 0, k)
	for i := 1; i <= k; i++ {
		s := v.S + speed*horizonStep*float64(i)
		out = append(out, frame.ToLocal(v.Route.PosAt(s)))
	}
	return out
}
