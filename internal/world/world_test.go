package world

import (
	"math"
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/simrand"
)

func testMap(t *testing.T) *Map {
	t.Helper()
	m, err := NewMap(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapGeneration(t *testing.T) {
	m := testMap(t)
	if len(m.Nodes) != 30 { // 5×5 town grid + 5 rural nodes
		t.Errorf("node count = %d, want 30", len(m.Nodes))
	}
	// Every edge must have a reverse (all roads bidirectional).
	for _, e := range m.Edges {
		r := m.Reverse(e.ID)
		if r < 0 {
			t.Fatalf("edge %d has no reverse", e.ID)
		}
		re := m.EdgeByID(r)
		if re.From != e.To || re.To != e.From {
			t.Fatalf("reverse mismatch for edge %d", e.ID)
		}
	}
	w, h := m.Bounds()
	if w < 900 || h < 900 {
		t.Errorf("map extent %v×%v too small for ~1km² target", w, h)
	}
}

func TestMapValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.GridN = 1
	if _, err := NewMap(bad); err == nil {
		t.Error("1×1 grid accepted")
	}
	bad = DefaultConfig()
	bad.GridSpacing = 0
	if _, err := NewMap(bad); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestIsRoadOnAndOff(t *testing.T) {
	m := testMap(t)
	// Node positions sit on the road.
	for _, n := range m.Nodes[:5] {
		if !m.IsRoad(n.Pos) {
			t.Errorf("node position %v not on road", n.Pos)
		}
	}
	// Mid-block between two grid roads is open ground.
	if m.IsRoad(geom.Pt(125, 125)) {
		t.Error("block interior counted as road")
	}
	if m.IsRoad(geom.Pt(-500, -500)) {
		t.Error("far outside the map counted as road")
	}
}

func TestShortestPath(t *testing.T) {
	m := testMap(t)
	path, err := m.ShortestPath(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[len(path)-1] != 24 {
		t.Errorf("path endpoints wrong: %v", path)
	}
	// Opposite grid corners: manhattan distance is 8 edges.
	if len(path) != 9 {
		t.Errorf("corner-to-corner path has %d nodes, want 9", len(path))
	}
	if _, err := m.ShortestPath(3, 3); err != nil {
		t.Errorf("self path: %v", err)
	}
}

func TestEdgeBetween(t *testing.T) {
	m := testMap(t)
	path, _ := m.ShortestPath(0, 24)
	if _, err := m.EdgeBetween(path[0], path[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EdgeBetween(0, 24); err == nil {
		t.Error("non-adjacent nodes reported an edge")
	}
}

func TestRouteGeometry(t *testing.T) {
	m := testMap(t)
	path, _ := m.ShortestPath(0, 24)
	r, err := NewRoute(m, path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length() < 1000 {
		t.Errorf("corner-to-corner route only %v m", r.Length())
	}
	// The lane stays on the drivable surface everywhere.
	for s := 0.0; s < r.Length(); s += 3 {
		if !m.IsRoad(r.PosAt(s)) {
			t.Fatalf("route leaves the road at s=%v (%v)", s, r.PosAt(s))
		}
	}
}

func TestRouteRejectsBadPaths(t *testing.T) {
	m := testMap(t)
	if _, err := NewRoute(m, []NodeID{3}); err == nil {
		t.Error("single-node route accepted")
	}
	if _, err := NewRoute(m, []NodeID{0, 24}); err == nil {
		t.Error("non-adjacent route accepted")
	}
}

func TestRouteCommands(t *testing.T) {
	m := testMap(t)
	// An L-shaped path across the grid has exactly one turn.
	path, _ := m.ShortestPath(0, 24)
	r, _ := NewRoute(m, path)
	turns := r.NumTurns()
	if turns < 1 {
		t.Errorf("corner-to-corner route reports %d turns", turns)
	}
	// Commands appear in the lead window before a turning node and
	// revert to follow elsewhere.
	sawTurnCmd := false
	for s := 0.0; s < r.Length(); s += 2 {
		cmd := r.CommandAt(s)
		if cmd == dataset.CmdLeft || cmd == dataset.CmdRight {
			sawTurnCmd = true
		}
	}
	if !sawTurnCmd {
		t.Error("no turn command announced along a turning route")
	}
	if r.CommandAt(1) != dataset.CmdFollow {
		t.Error("command at route start should be follow")
	}
}

func TestNextInteriorNode(t *testing.T) {
	m := testMap(t)
	path, _ := m.ShortestPath(0, 2) // straight two-edge run through node 1
	r, _ := NewRoute(m, path)
	arc, ok := r.NextInteriorNode(0, r.Length())
	if !ok {
		t.Fatal("interior node not found")
	}
	if math.Abs(arc-r.Length()/2) > 20 {
		t.Errorf("interior node at arc %v of %v", arc, r.Length())
	}
	if id, ok := r.InteriorNodeAt(arc); !ok || id != 1 {
		t.Errorf("InteriorNodeAt = %v, %v", id, ok)
	}
	if _, ok := r.NextInteriorNode(r.Length()-1, 10); ok {
		t.Error("found interior node past the last one")
	}
}

func TestRandomWalkRouteLength(t *testing.T) {
	m := testMap(t)
	rng := simrand.New(4)
	r, err := RandomWalkRoute(m, 7, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length() < 500 {
		t.Errorf("walk length %v < 500", r.Length())
	}
}

func TestExtendRandomPreservesPrefix(t *testing.T) {
	m := testMap(t)
	rng := simrand.New(5)
	r, _ := RandomWalkRoute(m, 0, 300, rng)
	before := r.Length()
	posAt100 := r.PosAt(100)
	if err := r.ExtendRandom(m, 300, rng); err != nil {
		t.Fatal(err)
	}
	if r.Length() < before+250 {
		t.Errorf("extension too short: %v -> %v", before, r.Length())
	}
	if r.PosAt(100).Dist(posAt100) > 1e-6 {
		t.Error("extension changed the existing parameterization")
	}
}

func TestVehicleFollowsRoute(t *testing.T) {
	m := testMap(t)
	rng := simrand.New(6)
	w, err := New(m, SpawnConfig{Experts: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	v := w.Experts[0]
	start := v.S
	for i := 0; i < 100; i++ {
		w.Step(0.5)
	}
	if v.S <= start {
		t.Error("vehicle did not advance")
	}
	if v.V <= 0 {
		t.Error("vehicle has no speed on an empty road")
	}
	if !m.IsRoad(v.Pos()) {
		t.Errorf("vehicle off road at %v", v.Pos())
	}
}

func TestVehicleBrakesForLeader(t *testing.T) {
	m := testMap(t)
	rng := simrand.New(7)
	w, _ := New(m, SpawnConfig{}, rng)
	// Two vehicles on the same long route, follower close behind a
	// stopped leader.
	path, _ := m.ShortestPath(0, 4)
	route, _ := NewRoute(m, path)
	leader := NewVehicle(0, route, rng.Derive("l"))
	leader.S = 120
	follower := NewVehicle(1, route, rng.Derive("f"))
	follower.S = 105
	follower.V = 9
	w.Experts = append(w.Experts, leader, follower)
	for i := 0; i < 30; i++ {
		// Step only the follower so the leader stays put.
		follower.Step(w, 0.5)
	}
	if follower.S >= leader.S-2 {
		t.Errorf("follower rear-ended the leader: %.1f vs %.1f", follower.S, leader.S)
	}
}

func TestWorldSpawnPopulation(t *testing.T) {
	m := testMap(t)
	w, err := New(m, SpawnConfig{Experts: 3, BackgroundCars: 5, Pedestrians: 7}, simrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Experts) != 3 || len(w.Background) != 5 || len(w.Pedestrians) != 7 {
		t.Errorf("population = %d/%d/%d", len(w.Experts), len(w.Background), len(w.Pedestrians))
	}
	for _, bg := range w.Background {
		if !bg.Background {
			t.Error("background car not flagged")
		}
	}
}

func TestCollisionAt(t *testing.T) {
	m := testMap(t)
	w, _ := New(m, SpawnConfig{Experts: 1}, simrand.New(9))
	pos := w.Experts[0].Pos()
	if !w.CollisionAt(pos, -1) {
		t.Error("overlapping positions not a collision")
	}
	if w.CollisionAt(pos, w.Experts[0].ID) {
		t.Error("self-exclusion broken")
	}
	if w.CollisionAt(pos.Add(geom.Pt(50, 50)), -1) {
		t.Error("distant point reported a collision")
	}
}

func TestPedestrianStaysInBounds(t *testing.T) {
	m := testMap(t)
	rng := simrand.New(10)
	p := NewPedestrian(0, m, rng)
	w, _ := New(m, SpawnConfig{}, rng)
	w.Pedestrians = append(w.Pedestrians, p)
	mw, mh := m.Bounds()
	for i := 0; i < 2000; i++ {
		p.Step(w, 0.5)
		if p.Pos.X < -20 || p.Pos.Y < -20 || p.Pos.X > mw+40 || p.Pos.Y > mh+40 {
			t.Fatalf("pedestrian escaped the map: %v", p.Pos)
		}
	}
}

func TestCollectFrameShape(t *testing.T) {
	m := testMap(t)
	w, _ := New(m, SpawnConfig{Experts: 1, BackgroundCars: 2, Pedestrians: 3}, simrand.New(11))
	ras := newTestRasterizer(m)
	s := CollectFrame(w, w.Experts[0], ras, 5)
	if len(s.BEV) != ras.Config().Size() {
		t.Errorf("BEV size = %d", len(s.BEV))
	}
	if len(s.Targets) != 10 {
		t.Errorf("targets size = %d", len(s.Targets))
	}
	if !s.Command.Valid() {
		t.Errorf("invalid command %v", s.Command)
	}
	if s.Speed < 0 || s.Speed > 1 || s.NavDist < 0 || s.NavDist > 1 || s.RedDist < 0 || s.RedDist > 1 {
		t.Errorf("scalar inputs out of range: %+v", s)
	}
}

func TestCollectDatasetCounts(t *testing.T) {
	m := testMap(t)
	w, _ := New(m, SpawnConfig{Experts: 2, BackgroundCars: 1, Pedestrians: 2}, simrand.New(12))
	ras := newTestRasterizer(m)
	sets := CollectDataset(w, ras, 5, 40, 0.5)
	if len(sets) != 2 {
		t.Fatalf("datasets = %d", len(sets))
	}
	for i, d := range sets {
		if d.Len() != 40 {
			t.Errorf("dataset %d has %d frames", i, d.Len())
		}
		if d.TotalWeight() != 40 {
			t.Errorf("dataset %d weight %v", i, d.TotalWeight())
		}
	}
}

func TestSignalsPhasesAlternate(t *testing.T) {
	m := testMap(t)
	// Node 6 is an interior town intersection (4 roads).
	id := NodeID(6)
	if !m.signalized(id) {
		t.Fatalf("node %d not signalized", id)
	}
	sawNS, sawEW := false, false
	for tt := 0.0; tt < SignalPeriod*1.5; tt += 1 {
		switch m.SignalPhaseAt(id, tt) {
		case PhaseNorthSouth:
			sawNS = true
		case PhaseEastWest:
			sawEW = true
		}
	}
	if !sawNS || !sawEW {
		t.Error("signal never alternated")
	}
	// Exactly one of the two perpendicular approaches faces red.
	for tt := 0.0; tt < SignalPeriod; tt += 3 {
		ns := m.SignalRed(id, math.Pi/2, tt)
		ew := m.SignalRed(id, 0, tt)
		if ns == ew {
			t.Fatalf("t=%v: NS red=%v and EW red=%v must differ", tt, ns, ew)
		}
	}
}

func TestSignalsOnlyAtIntersections(t *testing.T) {
	m := testMap(t)
	// Corner node 0 has only 2 roads: never signalized.
	if m.SignalRed(0, 0, 5) {
		t.Error("2-way node shows a red light")
	}
}

func TestRedDistInput(t *testing.T) {
	m := testMap(t)
	path, _ := m.ShortestPath(0, 2)
	r, _ := NewRoute(m, path)
	nodeArc, _ := r.NextInteriorNode(0, r.Length())
	// Find a time when the approach faces red.
	var redT float64 = -1
	for tt := 0.0; tt < SignalPeriod; tt += 1 {
		if RedDistInput(m, r, nodeArc-20, tt) < 1 {
			redT = tt
			break
		}
	}
	if redT < 0 {
		t.Skip("approach never red within one period (node not signalized)")
	}
	near := RedDistInput(m, r, nodeArc-12, redT)
	far := RedDistInput(m, r, nodeArc-25, redT)
	if near >= far {
		t.Errorf("red-distance input not decreasing on approach: near %v, far %v", near, far)
	}
}

func TestVehicleStopsAtRedLight(t *testing.T) {
	m := testMap(t)
	path, _ := m.ShortestPath(6, 8) // straight through interior node 7
	route, _ := NewRoute(m, path)
	nodeArc, ok := route.NextInteriorNode(0, route.Length())
	if !ok {
		t.Fatal("no interior node")
	}
	rng := simrand.New(13)
	w, _ := New(m, SpawnConfig{}, rng)
	v := NewVehicle(0, route, rng)
	v.S = nodeArc - 30
	w.Experts = append(w.Experts, v)
	// Find the red phase for this approach.
	node, _ := route.InteriorNodeAt(nodeArc)
	for !m.SignalRed(node, route.HeadingAt(v.S), w.Time) {
		w.Time += 1
	}
	for i := 0; i < 10; i++ {
		v.Step(w, 0.5) // without advancing w.Time: light stays red
	}
	if v.S > nodeArc-5 {
		t.Errorf("vehicle ran the red light: S=%v, node at %v", v.S, nodeArc)
	}
}

func newTestRasterizer(m *Map) *bev.Rasterizer {
	return bev.NewRasterizer(bev.DefaultConfig(), m)
}

func TestTurnSlowdownInCommandWindow(t *testing.T) {
	m := testMap(t)
	path, _ := m.ShortestPath(0, 24) // has turns
	route, _ := NewRoute(m, path)
	// Find a turn command window.
	var turnArc float64 = -1
	for s := 0.0; s < route.Length(); s += 2 {
		c := route.CommandAt(s)
		if c == dataset.CmdLeft || c == dataset.CmdRight {
			turnArc = s
			break
		}
	}
	if turnArc < 0 {
		t.Skip("no turn window found")
	}
	rng := simrand.New(20)
	w, _ := New(m, SpawnConfig{}, rng)
	v := NewVehicle(0, route, rng)
	v.S = turnArc
	slowed := v.desiredSpeed(w)
	v.S = 2 // straight, far from any turn
	if cruise := v.desiredSpeed(w); slowed >= cruise {
		t.Errorf("turn-window speed %v not below cruise %v", slowed, cruise)
	}
}

func TestRedDistInputFarFromNode(t *testing.T) {
	m := testMap(t)
	path, _ := m.ShortestPath(0, 4)
	route, _ := NewRoute(m, path)
	// Right at the start there is no signal within the approach window.
	if got := RedDistInput(m, route, 0, 3); got != 1 {
		t.Errorf("far-from-signal input = %v, want 1", got)
	}
}

func TestFreeAgentVisibleToTraffic(t *testing.T) {
	m := testMap(t)
	rng := simrand.New(22)
	w, _ := New(m, SpawnConfig{Experts: 1}, rng)
	v := w.Experts[0]
	// Park a free agent directly ahead of the expert: it must slow down.
	frame := v.Frame()
	w.FreeAgents = append(w.FreeAgents, &FreeAgent{Pos: frame.ToWorld(geom.Pt(10, 0))})
	if gap := w.nearestVehicleAhead(v); gap > 11 {
		t.Errorf("free agent ahead not detected: gap %v", gap)
	}
	if v.desiredSpeed(w) >= v.Route.SpeedLimitAt(v.S) {
		t.Error("expert does not brake for a free agent")
	}
}

func TestVehiclePositionsSeenByExcludesObserver(t *testing.T) {
	// Regression: an agent must never appear in its own BEV — when it did,
	// the emergency brake froze every trial at spawn.
	m := testMap(t)
	w, _ := New(m, SpawnConfig{Experts: 1}, simrand.New(23))
	agent := &FreeAgent{Pos: geom.Pt(100, 100)}
	other := &FreeAgent{Pos: geom.Pt(200, 200)}
	w.FreeAgents = append(w.FreeAgents, agent, other)
	seen := w.VehiclePositionsSeenBy(-1, agent)
	for _, p := range seen {
		if p == agent.Pos {
			t.Fatal("observer included in its own view")
		}
	}
	foundOther := false
	for _, p := range seen {
		if p == other.Pos {
			foundOther = true
		}
	}
	if !foundOther {
		t.Error("other free agent missing from the view")
	}
	// AllVehiclePositions keeps everyone.
	if got := len(w.AllVehiclePositions(-1)); got != 3 {
		t.Errorf("AllVehiclePositions = %d entries, want 3", got)
	}
}
