package world

import (
	"math"

	"lbchat/internal/geom"
)

// Traffic signals: every real intersection (3+ roads) runs a fixed-cycle
// two-phase signal separating the north–south and east–west flows, like the
// signalized junctions in CARLA's town maps. Connected vehicles receive
// signal phase and timing over V2I (SAE J2735 SPaT messages), which is how
// both the expert autopilots and the learned driving model know the state of
// the light ahead — the model gets it as a scalar input, exactly as CARLA
// agents receive red-light state.
const (
	// SignalPeriod is one full cycle (both phases) in seconds.
	SignalPeriod = 32.0
	// signalStopLine is where vehicles hold before a red light (m before
	// the node).
	signalStopLine = 9.0
	// signalApproach is the distance within which a red light constrains
	// the approach speed (m).
	signalApproach = 28.0
)

// SignalPhase identifies which flow currently has green at a node.
type SignalPhase int

// Signal phases.
const (
	PhaseNorthSouth SignalPhase = iota + 1
	PhaseEastWest
)

// signalized reports whether the node runs a signal (3+ outgoing roads).
func (m *Map) signalized(id NodeID) bool {
	return len(m.Nodes[id].Out) >= 3
}

// SignalPhaseAt returns the active phase of node id at time t. Phases are
// staggered across nodes so the whole town does not switch in lockstep.
func (m *Map) SignalPhaseAt(id NodeID, t float64) SignalPhase {
	offset := float64(int(id)%4) * SignalPeriod / 4
	if math.Mod(t+offset, SignalPeriod) < SignalPeriod/2 {
		return PhaseNorthSouth
	}
	return PhaseEastWest
}

// SignalRed reports whether a vehicle approaching node id with the given
// travel heading faces a red light at time t. Unsignalized nodes are never
// red.
func (m *Map) SignalRed(id NodeID, approachHeading, t float64) bool {
	if !m.signalized(id) {
		return false
	}
	northSouth := math.Abs(math.Sin(approachHeading)) > math.Abs(math.Cos(approachHeading))
	phase := m.SignalPhaseAt(id, t)
	if northSouth {
		return phase != PhaseNorthSouth
	}
	return phase != PhaseEastWest
}

// redLightAhead returns the distance to a red stop line ahead of arc s on
// the route (math.Inf(1) when the next signal is green or absent). The
// approach heading is taken at the current position.
func redLightAhead(m *Map, route *Route, s, t float64) float64 {
	nodeArc, ok := route.NextInteriorNode(s, signalApproach+signalStopLine)
	if !ok {
		return math.Inf(1)
	}
	node, ok := route.InteriorNodeAt(nodeArc)
	if !ok {
		return math.Inf(1)
	}
	if !m.SignalRed(node, route.HeadingAt(s), t) {
		return math.Inf(1)
	}
	stop := nodeArc - signalStopLine - s
	if stop < -2 {
		// Already past the stop line (e.g. caught mid-intersection by the
		// phase flip): proceed and clear the box.
		return math.Inf(1)
	}
	return math.Max(stop, 0)
}

// RedDistInput converts the red-light distance into the model's normalized
// scalar input: 1 when no red light constrains the approach, down to 0 at
// the stop line.
func RedDistInput(m *Map, route *Route, s, t float64) float64 {
	d := redLightAhead(m, route, s, t)
	if math.IsInf(d, 1) {
		return 1
	}
	return geom.Clamp(d/signalApproach, 0, 1)
}
