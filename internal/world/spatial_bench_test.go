package world

import (
	"fmt"
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/simrand"
)

// benchWorld spawns a world with n cars (half experts, half background)
// and n pedestrians on the default map.
func benchWorld(b *testing.B, n int, disableIndex bool) *World {
	b.Helper()
	m, err := NewMap(DefaultConfig())
	if err != nil {
		b.Fatalf("NewMap: %v", err)
	}
	w, err := New(m, SpawnConfig{Experts: n / 2, BackgroundCars: n - n/2, Pedestrians: n}, simrand.New(uint64(n)))
	if err != nil {
		b.Fatalf("world.New: %v", err)
	}
	w.DisableSpatialIndex = disableIndex
	return w
}

// BenchmarkWorldTick measures one full world step — every car's driving
// cone, pedestrian, intersection, and yielding queries plus every walker's
// road-entry check — with the spatial index against the pre-index entity
// scans, at scaled populations.
func BenchmarkWorldTick(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		for _, path := range []struct {
			name    string
			disable bool
		}{{"index", false}, {"brute", true}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, path.name), func(b *testing.B) {
				w := benchWorld(b, n, path.disable)
				w.Step(0.5) // warm: spawn settling + first index build
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.Step(0.5)
				}
			})
		}
	}
}

// BenchmarkBEV measures one BEV rasterization including the entity
// gathering that feeds it: ego-window culling through the spatial index
// against the full-fleet position copy of the brute path. The tensor is
// byte-identical either way (Rasterize applies the exact window test per
// entity); only the work to get there differs.
func BenchmarkBEV(b *testing.B) {
	cfg := bev.DefaultConfig()
	for _, n := range []int{16, 64, 256} {
		for _, path := range []struct {
			name    string
			disable bool
		}{{"index", false}, {"brute", true}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, path.name), func(b *testing.B) {
				w := benchWorld(b, n, path.disable)
				ras := bev.NewRasterizer(cfg, w.Map)
				w.Step(0.5)
				ego := w.Experts[0]
				frame := ego.Frame()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ras.Rasterize(frame,
						w.VehiclePositionsNearSeenBy(frame.Origin, cfg.VehicleCullRadius(), ego.ID, nil),
						w.PedestrianPositionsNear(frame.Origin, cfg.PedestrianCullRadius()))
				}
			})
		}
	}
}
