package world

import (
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/simrand"
)

// twinWorlds builds two identically seeded worlds, one on the spatial-index
// fast path and one on the brute-force reference path.
func twinWorlds(t *testing.T, spawn SpawnConfig) (indexed, brute *World) {
	t.Helper()
	m, err := NewMap(DefaultConfig())
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	build := func(disable bool) *World {
		w, err := New(m, spawn, simrand.New(99))
		if err != nil {
			t.Fatalf("world.New: %v", err)
		}
		w.DisableSpatialIndex = disable
		return w
	}
	return build(false), build(true)
}

// TestStepSpatialIndexBitIdentical is the world half of the PR's A/B
// acceptance criterion: stepping with the spatial index enabled must yield
// bit-identical trajectories — every car's arc position and speed, every
// pedestrian's position — to the pre-index brute-force scans, tick after
// tick, including the in-step mixed old/new-position query states.
func TestStepSpatialIndexBitIdentical(t *testing.T) {
	wi, wb := twinWorlds(t, SpawnConfig{Experts: 6, BackgroundCars: 14, Pedestrians: 60})
	for tick := 0; tick < 400; tick++ {
		wi.Step(0.5)
		wb.Step(0.5)
		for i := range wi.Experts {
			a, b := wi.Experts[i], wb.Experts[i]
			if a.S != b.S || a.V != b.V {
				t.Fatalf("tick %d: expert %d diverged: (S=%v V=%v) vs brute (S=%v V=%v)", tick, i, a.S, a.V, b.S, b.V)
			}
		}
		for i := range wi.Background {
			a, b := wi.Background[i], wb.Background[i]
			if a.S != b.S || a.V != b.V {
				t.Fatalf("tick %d: background %d diverged: (S=%v V=%v) vs brute (S=%v V=%v)", tick, i, a.S, a.V, b.S, b.V)
			}
		}
		for i := range wi.Pedestrians {
			a, b := wi.Pedestrians[i], wb.Pedestrians[i]
			if a.Pos != b.Pos {
				t.Fatalf("tick %d: pedestrian %d diverged: %v vs brute %v", tick, i, a.Pos, b.Pos)
			}
		}
	}
}

// TestCollectDatasetSpatialIndexBitIdentical drives the full collection
// pipeline — stepping, index-culled BEV rasterization, waypoint targets —
// on both paths and requires byte-identical samples.
func TestCollectDatasetSpatialIndexBitIdentical(t *testing.T) {
	wi, wb := twinWorlds(t, SpawnConfig{Experts: 4, BackgroundCars: 10, Pedestrians: 40})
	ras := bev.NewRasterizer(bev.DefaultConfig(), wi.Map)
	di := CollectDataset(wi, ras, 4, 120, 0.5)
	db := CollectDataset(wb, ras, 4, 120, 0.5)
	for v := range di {
		si, sb := di[v].Items(), db[v].Items()
		if len(si) != len(sb) {
			t.Fatalf("vehicle %d: %d samples vs brute %d", v, len(si), len(sb))
		}
		for k := range si {
			a, b := si[k].Sample, sb[k].Sample
			if len(a.BEV) != len(b.BEV) {
				t.Fatalf("vehicle %d sample %d: BEV sizes differ", v, k)
			}
			for c := range a.BEV {
				if a.BEV[c] != b.BEV[c] {
					t.Fatalf("vehicle %d sample %d: BEV cell %d = %d, brute %d", v, k, c, a.BEV[c], b.BEV[c])
				}
			}
			if a.Command != b.Command || a.Speed != b.Speed || a.NavDist != b.NavDist || a.RedDist != b.RedDist {
				t.Fatalf("vehicle %d sample %d: scalar inputs diverged: %+v vs %+v", v, k, a, b)
			}
			for c := range a.Targets {
				if a.Targets[c] != b.Targets[c] {
					t.Fatalf("vehicle %d sample %d: target %d = %v, brute %v", v, k, c, a.Targets[c], b.Targets[c])
				}
			}
		}
	}
}

// TestWorldQueriesAfterExternalTeleport pins the InvalidateIndex contract:
// positions mutated outside Step must be visible to queries after an
// invalidation, matching the brute-force path.
func TestWorldQueriesAfterExternalTeleport(t *testing.T) {
	wi, wb := twinWorlds(t, SpawnConfig{Experts: 4, BackgroundCars: 10, Pedestrians: 20})
	wi.Step(0.5) // build + use the index once
	wb.Step(0.5)
	for _, w := range []*World{wi, wb} {
		for _, bg := range w.Background {
			bg.S += 60
			if bg.S > bg.Route.Length() {
				bg.S = bg.Route.Length()
			}
		}
		w.InvalidateIndex()
	}
	probe := wi.Experts[0].Pos()
	for r := 1.0; r <= 4096; r *= 4 {
		if got, want := wi.CollisionAt(probe, wi.Experts[0].ID), wb.CollisionAt(probe, wb.Experts[0].ID); got != want {
			t.Fatalf("CollisionAt after teleport: index %v, brute %v", got, want)
		}
		if got, want := wi.anyCarNear(probe, r), wb.anyCarNear(probe, r); got != want {
			t.Fatalf("anyCarNear(r=%g) after teleport: index %v, brute %v", r, got, want)
		}
	}
}
