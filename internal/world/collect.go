package world

import (
	"math"

	"lbchat/internal/bev"
	"lbchat/internal/dataset"
	"lbchat/internal/geom"
)

// FrameHorizonStep is the time spacing between consecutive expert waypoints
// in a collected frame (seconds).
const FrameHorizonStep = 0.6

// SpeedNorm normalizes ego speed into the model's [0, 1] speed input.
const SpeedNorm = 15.0

// NavHorizon normalizes the distance-to-maneuver input (m).
const NavHorizon = 60.0

// Pose-perturbation bounds for data collection. The expert drives exactly
// on the lane centerline, so frames taken from its own pose would never
// teach the model to correct drift (the covariate-shift problem of behavior
// cloning [1]). Like the paper's underlying imitation pipeline [19], we
// record each frame from a randomly perturbed virtual pose while the
// waypoint targets keep pointing back to the expert's route.
const (
	maxLateralPerturb = 2.2  // meters
	maxHeadingPerturb = 0.35 // radians (~20°)
)

// CollectFrame records one training frame for an expert vehicle: the BEV
// seen from a perturbed ego pose, the active high-level command, the current
// speed, and the expert's next numWaypoints waypoints normalized to the BEV
// range. This is the 2 fps data-collection path of §IV-A.
func CollectFrame(w *World, v *Vehicle, ras *bev.Rasterizer, numWaypoints int) dataset.Sample {
	base := v.Frame()
	lat := v.rng.Uniform(-maxLateralPerturb, maxLateralPerturb)
	dh := v.rng.Uniform(-maxHeadingPerturb, maxHeadingPerturb)
	right := geom.Pt(1, 0).Rotate(base.Heading - math.Pi/2)
	frame := geom.Frame{
		Origin:  base.Origin.Add(right.Scale(lat)),
		Heading: geom.WrapAngle(base.Heading + dh),
	}

	// Cull entities to the ego window through the spatial index before
	// rasterizing; Rasterize's exact per-entity window test makes the
	// superset harmless, so the tensor is byte-identical to a full scan.
	cfg := ras.Config()
	bevTensor := ras.Rasterize(frame,
		w.VehiclePositionsNearSeenBy(frame.Origin, cfg.VehicleCullRadius(), v.ID, nil),
		w.PedestrianPositionsNear(frame.Origin, cfg.PedestrianCullRadius()))
	speed := v.desiredSpeed(w)
	targets := make([]float64, 0, 2*numWaypoints)
	for i := 1; i <= numWaypoints; i++ {
		wp := v.Route.PosAt(v.S + speed*FrameHorizonStep*float64(i))
		x, y := ras.Config().NormalizeWaypoint(frame.ToLocal(wp))
		targets = append(targets, x, y)
	}
	return dataset.Sample{
		BEV:     bevTensor,
		Command: v.Command(),
		Speed:   geom.Clamp(v.V/SpeedNorm, 0, 1),
		NavDist: NavDistAt(v.Route, v.S),
		RedDist: RedDistInput(w.Map, v.Route, v.S, w.Time),
		Targets: targets,
	}
}

// NavDistAt returns the normalized distance from arc s to the route's next
// maneuver point (1 when none is within the navigation horizon).
func NavDistAt(route *Route, s float64) float64 {
	if arc, ok := route.NextInteriorNode(s, NavHorizon); ok {
		return geom.Clamp((arc-s)/NavHorizon, 0, 1)
	}
	return 1
}

// CollectDataset steps the world for the given number of ticks of dt
// seconds, collecting one frame per expert vehicle per tick (the paper
// collects at 2 fps, i.e. dt = 0.5). It returns one dataset per expert, all
// samples carrying unit weight.
func CollectDataset(w *World, ras *bev.Rasterizer, numWaypoints, ticks int, dt float64) []*dataset.Dataset {
	out := make([]*dataset.Dataset, len(w.Experts))
	for i := range out {
		out[i] = dataset.New(ticks)
	}
	for t := 0; t < ticks; t++ {
		w.Step(dt)
		for i, v := range w.Experts {
			out[i].Add(CollectFrame(w, v, ras, numWaypoints), 1)
		}
	}
	return out
}
