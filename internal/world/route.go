package world

import (
	"fmt"
	"math"

	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/simrand"
)

// Command-window geometry: the navigation service announces a turn this far
// before the intersection and keeps it active until the corner is cleared,
// so the whole curved section carries the turn command (in training data and
// during online evaluation alike).
const (
	commandLead = 30.0
	commandTail = 12.0
)

// cornerCut is how far before/after an interior node the lane is cut back
// and replaced by a Bézier fillet, producing drivable corner geometry.
const cornerCut = 8.0

// Route is a drivable path through the road graph: an ordered node sequence,
// the concatenated lane polyline, and precomputed arc positions of the
// interior nodes together with their turn commands.
type Route struct {
	nodes    []NodeID
	edges    []EdgeID
	lane     *geom.Polyline
	nodeArcs []float64         // arc position of each interior node boundary
	commands []dataset.Command // command active approaching each interior node
	limits   []float64         // speed limit per edge
	edgeArcs []float64         // arc position where each edge begins
}

// NewRoute builds a route along the given node path. The path must contain
// at least two adjacent nodes.
func NewRoute(m *Map, nodes []NodeID) (*Route, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("world: route needs at least 2 nodes, got %d", len(nodes))
	}
	r := &Route{nodes: append([]NodeID(nil), nodes...)}
	lanes := make([]*geom.Polyline, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		eid, err := m.EdgeBetween(nodes[i], nodes[i+1])
		if err != nil {
			return nil, err
		}
		e := m.EdgeByID(eid)
		r.edges = append(r.edges, eid)
		r.limits = append(r.limits, e.SpeedLimit)
		lanes = append(lanes, e.Lane)
	}

	// Assemble the drivable lane: each edge's straight section, cut back by
	// the fillet length at interior nodes, joined by quadratic Bézier
	// fillets so corners are smooth and physically drivable. Interior-node
	// arcs land on the fillet midpoints.
	var pts []geom.Point
	var interiorMarks []int // index into pts of each fillet midpoint
	for i, lane := range lanes {
		startCut, endCut := 0.0, 0.0
		if i > 0 {
			startCut = math.Min(cornerCut, lane.Length()/3)
		}
		if i+1 < len(lanes) {
			endCut = math.Min(cornerCut, lane.Length()/3)
		}
		// Straight section.
		for s := startCut; s <= lane.Length()-endCut; s += 2 {
			pts = append(pts, lane.At(s))
		}
		pts = append(pts, lane.At(lane.Length()-endCut))
		// Fillet into the next edge.
		if i+1 < len(lanes) {
			next := lanes[i+1]
			nextCut := math.Min(cornerCut, next.Length()/3)
			p1 := lane.At(lane.Length() - endCut)
			p2 := next.At(nextCut)
			ctrl := geom.Lerp(lane.At(lane.Length()), next.At(0), 0.5)
			const filletSteps = 6
			for k := 1; k < filletSteps; k++ {
				t := float64(k) / filletSteps
				a := geom.Lerp(p1, ctrl, t)
				b := geom.Lerp(ctrl, p2, t)
				pts = append(pts, geom.Lerp(a, b, t))
				if k == filletSteps/2 {
					interiorMarks = append(interiorMarks, len(pts)-1)
				}
			}
		}
	}
	r.lane = geom.NewPolyline(pts)
	// Recover interior-node arcs by projecting the marked fillet midpoints.
	for _, mk := range interiorMarks {
		arc, _ := r.lane.Project(pts[mk])
		r.nodeArcs = append(r.nodeArcs, arc)
	}
	// Edge start arcs: project each lane's cut-back start point.
	for i, lane := range lanes {
		if i == 0 {
			r.edgeArcs = append(r.edgeArcs, 0)
			continue
		}
		startCut := math.Min(cornerCut, lane.Length()/3)
		arc, _ := r.lane.Project(lane.At(startCut))
		r.edgeArcs = append(r.edgeArcs, arc)
	}
	r.commands = classifyTurns(m, nodes)
	return r, nil
}

// classifyTurns returns the command approaching each interior node of the
// path: Left/Right for turns sharper than 30°, Straight when passing through
// a real intersection (3+ outgoing roads), Follow when the road continues.
func classifyTurns(m *Map, nodes []NodeID) []dataset.Command {
	cmds := make([]dataset.Command, 0, len(nodes)-2)
	for i := 1; i+1 < len(nodes); i++ {
		hIn := m.NodePos(nodes[i]).Sub(m.NodePos(nodes[i-1])).Heading()
		hOut := m.NodePos(nodes[i+1]).Sub(m.NodePos(nodes[i])).Heading()
		delta := geom.WrapAngle(hOut - hIn)
		switch {
		case delta > math.Pi/6:
			cmds = append(cmds, dataset.CmdLeft)
		case delta < -math.Pi/6:
			cmds = append(cmds, dataset.CmdRight)
		default:
			// Going straight: announce "straight" only at real intersections
			// (where the driver has a choice); otherwise just follow the road.
			if len(m.Nodes[nodes[i]].Out) > 2 {
				cmds = append(cmds, dataset.CmdStraight)
			} else {
				cmds = append(cmds, dataset.CmdFollow)
			}
		}
	}
	return cmds
}

// Nodes returns the route's node sequence.
func (r *Route) Nodes() []NodeID { return r.nodes }

// Length returns the route length in meters.
func (r *Route) Length() float64 { return r.lane.Length() }

// PosAt returns the world position at arc length s.
func (r *Route) PosAt(s float64) geom.Point { return r.lane.At(s) }

// HeadingAt returns the lane tangent heading at arc length s.
func (r *Route) HeadingAt(s float64) float64 { return r.lane.HeadingAt(s) }

// SpeedLimitAt returns the speed limit of the edge containing arc length s.
func (r *Route) SpeedLimitAt(s float64) float64 {
	if len(r.limits) == 0 {
		return 0
	}
	idx := len(r.edgeArcs) - 1
	for i, start := range r.edgeArcs {
		if s < start {
			idx = i - 1
			break
		}
	}
	if idx < 0 {
		idx = 0
	}
	return r.limits[idx]
}

// CommandAt returns the active high-level command at arc length s: the
// nearby interior node's turn command when within its announcement window
// (commandLead before the corner through commandTail past it), Follow
// otherwise.
func (r *Route) CommandAt(s float64) dataset.Command {
	for i, arc := range r.nodeArcs {
		if s >= arc-commandLead && s <= arc+commandTail {
			return r.commands[i]
		}
		if s < arc-commandLead {
			break
		}
	}
	return dataset.CmdFollow
}

// NextInteriorNode returns the arc position of the first interior node at
// or after arc s within the given horizon, and whether one exists.
func (r *Route) NextInteriorNode(s, horizon float64) (float64, bool) {
	for _, arc := range r.nodeArcs {
		if arc >= s && arc-s <= horizon {
			return arc, true
		}
		if arc > s+horizon {
			break
		}
	}
	return 0, false
}

// InteriorNodeAt returns the NodeID of the interior node whose arc position
// equals arc (as returned by NextInteriorNode).
func (r *Route) InteriorNodeAt(arc float64) (NodeID, bool) {
	for i, a := range r.nodeArcs {
		if a == arc {
			return r.nodes[i+1], true
		}
	}
	return 0, false
}

// NumTurns returns how many interior nodes the route turns (left or right)
// at. Used to build the Straight / One Turn / Navigation evaluation suites.
func (r *Route) NumTurns() int {
	n := 0
	for _, c := range r.commands {
		if c == dataset.CmdLeft || c == dataset.CmdRight {
			n++
		}
	}
	return n
}

// RandomWalkRoute generates a roaming route of approximately the given
// length starting at node start, avoiding immediate U-turns when possible.
func RandomWalkRoute(m *Map, start NodeID, minLength float64, rng *simrand.Rand) (*Route, error) {
	nodes := []NodeID{start}
	cur := start
	prev := NodeID(-1)
	var length float64
	for length < minLength || len(nodes) < 2 {
		out := m.Nodes[cur].Out
		if len(out) == 0 {
			return nil, fmt.Errorf("world: node %d has no outgoing edges", cur)
		}
		candidates := make([]EdgeID, 0, len(out))
		for _, eid := range out {
			if m.Edges[eid].To != prev {
				candidates = append(candidates, eid)
			}
		}
		if len(candidates) == 0 {
			candidates = out // dead end: U-turn allowed
		}
		eid := candidates[rng.Intn(len(candidates))]
		e := m.EdgeByID(eid)
		nodes = append(nodes, e.To)
		length += e.Length()
		prev = cur
		cur = e.To
		if len(nodes) > 10_000 {
			return nil, fmt.Errorf("world: random walk failed to reach length %g", minLength)
		}
	}
	return NewRoute(m, nodes)
}

// ExtendRandom appends a random continuation of at least extra meters to the
// route, avoiding an immediate U-turn when possible. The route's arc
// parameterization is preserved (existing arc lengths remain valid).
func (r *Route) ExtendRandom(m *Map, extra float64, rng *simrand.Rand) error {
	tail, err := RandomWalkRoute(m, r.nodes[len(r.nodes)-1], extra, rng)
	if err != nil {
		return err
	}
	// Drop tail's first node (it duplicates our last) and rebuild.
	joined := append(append([]NodeID(nil), r.nodes...), tail.nodes[1:]...)
	nr, err := NewRoute(m, joined)
	if err != nil {
		return err
	}
	*r = *nr
	return nil
}
