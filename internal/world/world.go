package world

import (
	"fmt"
	"math"

	"lbchat/internal/geom"
	"lbchat/internal/simrand"
	"lbchat/internal/spatial"
)

// Spatial-index cell sizes (m), on the order of the dominant query radius
// so a query touches at most a 3×3 cell neighborhood: the widest vehicle
// query is the driving cone (followGap+10 ahead), the widest pedestrian
// query the caution cone (pedSlowGap+6 ahead).
const (
	vehIndexCell = followGap + 10
	pedIndexCell = pedSlowGap + 6
)

// FreeAgent is a vehicle not bound to a route polyline — the model-driven
// testing autopilot during online evaluation. The world includes free agents
// in proximity queries so background traffic reacts to them.
type FreeAgent struct {
	Pos     geom.Point
	Heading float64
	V       float64
}

// Frame returns the agent's ego frame.
func (a *FreeAgent) Frame() geom.Frame {
	return geom.Frame{Origin: a.Pos, Heading: a.Heading}
}

// World holds the full simulated environment and advances it in lockstep.
type World struct {
	Map         *Map
	Experts     []*Vehicle
	Background  []*Vehicle
	Pedestrians []*Pedestrian
	FreeAgents  []*FreeAgent

	// Time is the current simulation time in seconds.
	Time float64

	// DisableSpatialIndex forces every proximity query down the pre-index
	// O(N) entity scans (DESIGN.md §10). Query results are identical either
	// way — the flag is the A/B reference for determinism tests and the
	// brute-force benchmark baseline.
	DisableSpatialIndex bool

	// vehIndex holds routed cars (Experts then Background, parallel to
	// idxVehicles); pedIndex holds pedestrians. Both are rebuilt at the top
	// of every Step and updated entity-by-entity as the step advances, so
	// mid-step queries see exactly the mixed old/new positions the
	// sequential brute-force scans saw. Free agents move outside Step and
	// are deliberately NOT indexed: every query scans them linearly (there
	// are at most a handful).
	vehIndex    *spatial.Index
	pedIndex    *spatial.Index
	idxVehicles []*Vehicle
	ptsScratch  []geom.Point
	indexBuilt  bool
}

// SpawnConfig sets the population of a world.
type SpawnConfig struct {
	// Experts is the number of data-collecting autopilot vehicles (the
	// paper runs 32).
	Experts int
	// BackgroundCars is the roaming traffic count (the paper adds 50).
	BackgroundCars int
	// Pedestrians is the walker count (the paper adds 250).
	Pedestrians int
}

// DefaultSpawnConfig mirrors the paper's population: 32 experts, 50
// background cars, 250 pedestrians.
func DefaultSpawnConfig() SpawnConfig {
	return SpawnConfig{Experts: 32, BackgroundCars: 50, Pedestrians: 250}
}

// New creates a world on the given map and spawns its population
// deterministically from rng.
func New(m *Map, spawn SpawnConfig, rng *simrand.Rand) (*World, error) {
	w := &World{Map: m}
	numNodes := len(m.Nodes)
	if numNodes == 0 {
		return nil, fmt.Errorf("world: empty map")
	}
	for i := 0; i < spawn.Experts; i++ {
		vr := rng.DeriveIndexed("expert", i)
		route, err := RandomWalkRoute(m, NodeID(vr.Intn(numNodes)), 600, vr)
		if err != nil {
			return nil, fmt.Errorf("world: spawning expert %d: %w", i, err)
		}
		v := NewVehicle(i, route, vr)
		v.S = vr.Uniform(0, route.Length()/2)
		w.Experts = append(w.Experts, v)
	}
	for i := 0; i < spawn.BackgroundCars; i++ {
		vr := rng.DeriveIndexed("bg", i)
		route, err := RandomWalkRoute(m, NodeID(vr.Intn(numNodes)), 600, vr)
		if err != nil {
			return nil, fmt.Errorf("world: spawning background car %d: %w", i, err)
		}
		v := NewVehicle(1000+i, route, vr)
		v.Background = true
		v.S = vr.Uniform(0, route.Length()/2)
		w.Background = append(w.Background, v)
	}
	for i := 0; i < spawn.Pedestrians; i++ {
		w.Pedestrians = append(w.Pedestrians, NewPedestrian(i, m, rng.DeriveIndexed("ped", i)))
	}
	return w, nil
}

// useIndex reports whether queries should go through the spatial indices.
func (w *World) useIndex() bool { return !w.DisableSpatialIndex }

// InvalidateIndex discards the spatial indices so the next query rebuilds
// them. Call it after mutating entity positions outside Step (e.g. teleport
// adjustments at spawn time); Step itself always rebuilds.
func (w *World) InvalidateIndex() { w.indexBuilt = false }

// ensureIndexes lazily (re)builds the indices before a query. Population
// growth (entities appended since the last build) also triggers a rebuild.
func (w *World) ensureIndexes() {
	if w.indexBuilt &&
		len(w.idxVehicles) == len(w.Experts)+len(w.Background) &&
		w.pedIndex.Len() == len(w.Pedestrians) {
		return
	}
	w.rebuildIndexes()
}

// rebuildIndexes re-indexes every routed car and pedestrian at its current
// position. Scratch slices are reused, so steady-state rebuilds allocate
// nothing.
func (w *World) rebuildIndexes() {
	if w.vehIndex == nil {
		w.vehIndex = spatial.New(vehIndexCell)
		w.pedIndex = spatial.New(pedIndexCell)
	}
	w.idxVehicles = w.idxVehicles[:0]
	w.idxVehicles = append(w.idxVehicles, w.Experts...)
	w.idxVehicles = append(w.idxVehicles, w.Background...)
	pts := w.ptsScratch[:0]
	for _, v := range w.idxVehicles {
		pts = append(pts, v.Pos())
	}
	w.vehIndex.Rebuild(pts)
	pts = pts[:0]
	for _, p := range w.Pedestrians {
		pts = append(pts, p.Pos)
	}
	w.pedIndex.Rebuild(pts)
	w.ptsScratch = pts[:0]
	w.indexBuilt = true
}

// Step advances every entity by dt seconds. With the spatial index enabled
// the indices are rebuilt from the pre-step state and then updated entity by
// entity as each one moves, so the in-step proximity queries (which run
// while part of the fleet has moved and part has not) see exactly the same
// mixed state as the sequential brute-force scans — trajectories are
// bit-identical on both paths.
func (w *World) Step(dt float64) {
	if w.useIndex() {
		w.rebuildIndexes()
		for i, v := range w.Experts {
			v.Step(w, dt)
			w.vehIndex.Update(i, v.Pos())
		}
		off := len(w.Experts)
		for i, v := range w.Background {
			v.Step(w, dt)
			w.vehIndex.Update(off+i, v.Pos())
		}
		for i, p := range w.Pedestrians {
			p.Step(w, dt)
			w.pedIndex.Update(i, p.Pos)
		}
	} else {
		for _, v := range w.Experts {
			v.Step(w, dt)
		}
		for _, v := range w.Background {
			v.Step(w, dt)
		}
		for _, p := range w.Pedestrians {
			p.Step(w, dt)
		}
	}
	w.Time += dt
}

// AllVehiclePositions returns the positions of every car except the one with
// ID excludeID (-1 excludes nothing), including free agents.
func (w *World) AllVehiclePositions(excludeID int) []geom.Point {
	return w.VehiclePositionsSeenBy(excludeID, nil)
}

// VehiclePositionsSeenBy returns every car position visible to an observer:
// excludeID removes a routed vehicle observing itself, excludeAgent removes
// a free agent observing itself (an agent must never appear in its own BEV).
func (w *World) VehiclePositionsSeenBy(excludeID int, excludeAgent *FreeAgent) []geom.Point {
	out := make([]geom.Point, 0, len(w.Experts)+len(w.Background)+len(w.FreeAgents))
	for _, v := range w.Experts {
		if v.ID != excludeID {
			out = append(out, v.Pos())
		}
	}
	for _, v := range w.Background {
		if v.ID != excludeID {
			out = append(out, v.Pos())
		}
	}
	for _, a := range w.FreeAgents {
		if a != excludeAgent {
			out = append(out, a.Pos)
		}
	}
	return out
}

// VehiclePositionsNearSeenBy returns the positions of cars that may lie
// within radius r of center — a SUPERSET of the cars actually inside the
// disc (grid-cell granularity; free agents are always included). It is the
// BEV culling fast path: callers apply their own exact window test per
// entity, so a superset changes nothing. Exclusion semantics match
// VehiclePositionsSeenBy.
func (w *World) VehiclePositionsNearSeenBy(center geom.Point, r float64, excludeID int, excludeAgent *FreeAgent) []geom.Point {
	if !w.useIndex() {
		return w.VehiclePositionsSeenBy(excludeID, excludeAgent)
	}
	w.ensureIndexes()
	out := make([]geom.Point, 0, 16)
	w.vehIndex.ForCandidates(center, r, func(i int, p geom.Point) bool {
		if w.idxVehicles[i].ID != excludeID {
			out = append(out, p)
		}
		return true
	})
	for _, a := range w.FreeAgents {
		if a != excludeAgent {
			out = append(out, a.Pos)
		}
	}
	return out
}

// PedestrianPositions returns all pedestrian positions.
func (w *World) PedestrianPositions() []geom.Point {
	out := make([]geom.Point, len(w.Pedestrians))
	for i, p := range w.Pedestrians {
		out[i] = p.Pos
	}
	return out
}

// PedestrianPositionsNear returns the positions of pedestrians that may lie
// within radius r of center — a superset at grid-cell granularity, like
// VehiclePositionsNearSeenBy.
func (w *World) PedestrianPositionsNear(center geom.Point, r float64) []geom.Point {
	if !w.useIndex() {
		return w.PedestrianPositions()
	}
	w.ensureIndexes()
	out := make([]geom.Point, 0, 16)
	w.pedIndex.ForCandidates(center, r, func(_ int, p geom.Point) bool {
		out = append(out, p)
		return true
	})
	return out
}

// aheadDistance returns the forward distance to point p within a driving
// cone of the frame (ahead up to maxDist, lateral half-width corridor), or
// +Inf when p is outside the cone.
func aheadDistance(frame geom.Frame, p geom.Point, maxDist, corridor float64) float64 {
	local := frame.ToLocal(p)
	if local.X <= 0 || local.X > maxDist {
		return math.Inf(1)
	}
	if math.Abs(local.Y) > corridor {
		return math.Inf(1)
	}
	return local.X
}

// nearestVehicleAhead returns the gap to the closest car in v's driving
// cone (excluding v itself).
func (w *World) nearestVehicleAhead(v *Vehicle) float64 {
	frame := v.Frame()
	const maxDist, corridor = followGap + 10, 3.0
	best := math.Inf(1)
	consider := func(p geom.Point) {
		if d := aheadDistance(frame, p, maxDist, corridor); d < best {
			best = d
		}
	}
	if w.useIndex() {
		w.ensureIndexes()
		// Everything in the cone lies within its circumradius of the ego.
		bound := math.Hypot(maxDist, corridor)
		w.vehIndex.ForCandidates(frame.Origin, bound, func(i int, p geom.Point) bool {
			if w.idxVehicles[i].ID != v.ID {
				consider(p)
			}
			return true
		})
	} else {
		for _, o := range w.Experts {
			if o.ID != v.ID {
				consider(o.Pos())
			}
		}
		for _, o := range w.Background {
			if o.ID != v.ID {
				consider(o.Pos())
			}
		}
	}
	for _, a := range w.FreeAgents {
		consider(a.Pos)
	}
	return best
}

// nearestPedestrianAhead returns the gap to the closest pedestrian in v's
// caution cone.
func (w *World) nearestPedestrianAhead(v *Vehicle) float64 {
	frame := v.Frame()
	const maxDist, corridor = pedSlowGap + 6, 2.5
	best := math.Inf(1)
	if w.useIndex() {
		w.ensureIndexes()
		bound := math.Hypot(maxDist, corridor)
		w.pedIndex.ForCandidates(frame.Origin, bound, func(_ int, p geom.Point) bool {
			if d := aheadDistance(frame, p, maxDist, corridor); d < best {
				best = d
			}
			return true
		})
		return best
	}
	for _, p := range w.Pedestrians {
		if d := aheadDistance(frame, p.Pos, maxDist, corridor); d < best {
			best = d
		}
	}
	return best
}

// intersectionOccupied reports whether another car currently occupies the
// conflict disc around an intersection ahead of v (cars behind v are
// ignored — they are followers, not crossing traffic).
func (w *World) intersectionOccupied(v *Vehicle, node geom.Point) bool {
	frame := v.Frame()
	occupied := func(p geom.Point) bool {
		if p.Dist(node) > intersectionR {
			return false
		}
		return frame.ToLocal(p).X > 2
	}
	if w.useIndex() {
		w.ensureIndexes()
		found := false
		w.vehIndex.ForCandidates(node, intersectionR, func(i int, p geom.Point) bool {
			if w.idxVehicles[i].ID != v.ID && occupied(p) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	} else {
		for _, o := range w.Experts {
			if o.ID != v.ID && occupied(o.Pos()) {
				return true
			}
		}
		for _, o := range w.Background {
			if o.ID != v.ID && occupied(o.Pos()) {
				return true
			}
		}
	}
	for _, a := range w.FreeAgents {
		if occupied(a.Pos) {
			return true
		}
	}
	return false
}

// anyCarNear reports whether any car (expert, background, or free agent)
// is within r of pos and moving.
func (w *World) anyCarNear(pos geom.Point, r float64) bool {
	if w.useIndex() {
		w.ensureIndexes()
		found := false
		w.vehIndex.ForCandidates(pos, r, func(i int, p geom.Point) bool {
			if w.idxVehicles[i].V > 0.5 && pos.Dist(p) < r {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	} else {
		for _, v := range w.Experts {
			if v.V > 0.5 && pos.Dist(v.Pos()) < r {
				return true
			}
		}
		for _, v := range w.Background {
			if v.V > 0.5 && pos.Dist(v.Pos()) < r {
				return true
			}
		}
	}
	for _, a := range w.FreeAgents {
		if a.V > 0.5 && pos.Dist(a.Pos) < r {
			return true
		}
	}
	return false
}

// CollisionAt reports whether a car body at pos (with standard vehicle
// radius) overlaps any other car or pedestrian. excludeID removes one
// expert/background car from the check (the agent itself when it is a
// routed vehicle; pass -1 for free agents).
func (w *World) CollisionAt(pos geom.Point, excludeID int) bool {
	const carGap = 2 * vehicleRadius
	const pedGap = vehicleRadius + pedRadius
	if w.useIndex() {
		w.ensureIndexes()
		hit := false
		w.vehIndex.ForCandidates(pos, carGap, func(i int, p geom.Point) bool {
			if w.idxVehicles[i].ID != excludeID && pos.Dist(p) < carGap {
				hit = true
				return false
			}
			return true
		})
		if hit {
			return true
		}
		w.pedIndex.ForCandidates(pos, pedGap, func(_ int, p geom.Point) bool {
			if pos.Dist(p) < pedGap {
				hit = true
				return false
			}
			return true
		})
		return hit
	}
	for _, v := range w.Experts {
		if v.ID != excludeID && pos.Dist(v.Pos()) < carGap {
			return true
		}
	}
	for _, v := range w.Background {
		if v.ID != excludeID && pos.Dist(v.Pos()) < carGap {
			return true
		}
	}
	for _, p := range w.Pedestrians {
		if pos.Dist(p.Pos) < pedGap {
			return true
		}
	}
	return false
}
