package world

import (
	"fmt"
	"math"

	"lbchat/internal/geom"
	"lbchat/internal/simrand"
)

// FreeAgent is a vehicle not bound to a route polyline — the model-driven
// testing autopilot during online evaluation. The world includes free agents
// in proximity queries so background traffic reacts to them.
type FreeAgent struct {
	Pos     geom.Point
	Heading float64
	V       float64
}

// Frame returns the agent's ego frame.
func (a *FreeAgent) Frame() geom.Frame {
	return geom.Frame{Origin: a.Pos, Heading: a.Heading}
}

// World holds the full simulated environment and advances it in lockstep.
type World struct {
	Map         *Map
	Experts     []*Vehicle
	Background  []*Vehicle
	Pedestrians []*Pedestrian
	FreeAgents  []*FreeAgent

	// Time is the current simulation time in seconds.
	Time float64
}

// SpawnConfig sets the population of a world.
type SpawnConfig struct {
	// Experts is the number of data-collecting autopilot vehicles (the
	// paper runs 32).
	Experts int
	// BackgroundCars is the roaming traffic count (the paper adds 50).
	BackgroundCars int
	// Pedestrians is the walker count (the paper adds 250).
	Pedestrians int
}

// DefaultSpawnConfig mirrors the paper's population: 32 experts, 50
// background cars, 250 pedestrians.
func DefaultSpawnConfig() SpawnConfig {
	return SpawnConfig{Experts: 32, BackgroundCars: 50, Pedestrians: 250}
}

// New creates a world on the given map and spawns its population
// deterministically from rng.
func New(m *Map, spawn SpawnConfig, rng *simrand.Rand) (*World, error) {
	w := &World{Map: m}
	numNodes := len(m.Nodes)
	if numNodes == 0 {
		return nil, fmt.Errorf("world: empty map")
	}
	for i := 0; i < spawn.Experts; i++ {
		vr := rng.DeriveIndexed("expert", i)
		route, err := RandomWalkRoute(m, NodeID(vr.Intn(numNodes)), 600, vr)
		if err != nil {
			return nil, fmt.Errorf("world: spawning expert %d: %w", i, err)
		}
		v := NewVehicle(i, route, vr)
		v.S = vr.Uniform(0, route.Length()/2)
		w.Experts = append(w.Experts, v)
	}
	for i := 0; i < spawn.BackgroundCars; i++ {
		vr := rng.DeriveIndexed("bg", i)
		route, err := RandomWalkRoute(m, NodeID(vr.Intn(numNodes)), 600, vr)
		if err != nil {
			return nil, fmt.Errorf("world: spawning background car %d: %w", i, err)
		}
		v := NewVehicle(1000+i, route, vr)
		v.Background = true
		v.S = vr.Uniform(0, route.Length()/2)
		w.Background = append(w.Background, v)
	}
	for i := 0; i < spawn.Pedestrians; i++ {
		w.Pedestrians = append(w.Pedestrians, NewPedestrian(i, m, rng.DeriveIndexed("ped", i)))
	}
	return w, nil
}

// Step advances every entity by dt seconds.
func (w *World) Step(dt float64) {
	for _, v := range w.Experts {
		v.Step(w, dt)
	}
	for _, v := range w.Background {
		v.Step(w, dt)
	}
	for _, p := range w.Pedestrians {
		p.Step(w, dt)
	}
	w.Time += dt
}

// AllVehiclePositions returns the positions of every car except the one with
// ID excludeID (-1 excludes nothing), including free agents.
func (w *World) AllVehiclePositions(excludeID int) []geom.Point {
	return w.VehiclePositionsSeenBy(excludeID, nil)
}

// VehiclePositionsSeenBy returns every car position visible to an observer:
// excludeID removes a routed vehicle observing itself, excludeAgent removes
// a free agent observing itself (an agent must never appear in its own BEV).
func (w *World) VehiclePositionsSeenBy(excludeID int, excludeAgent *FreeAgent) []geom.Point {
	out := make([]geom.Point, 0, len(w.Experts)+len(w.Background)+len(w.FreeAgents))
	for _, v := range w.Experts {
		if v.ID != excludeID {
			out = append(out, v.Pos())
		}
	}
	for _, v := range w.Background {
		if v.ID != excludeID {
			out = append(out, v.Pos())
		}
	}
	for _, a := range w.FreeAgents {
		if a != excludeAgent {
			out = append(out, a.Pos)
		}
	}
	return out
}

// PedestrianPositions returns all pedestrian positions.
func (w *World) PedestrianPositions() []geom.Point {
	out := make([]geom.Point, len(w.Pedestrians))
	for i, p := range w.Pedestrians {
		out[i] = p.Pos
	}
	return out
}

// aheadDistance returns the forward distance to point p within a driving
// cone of the frame (ahead up to maxDist, lateral half-width corridor), or
// +Inf when p is outside the cone.
func aheadDistance(frame geom.Frame, p geom.Point, maxDist, corridor float64) float64 {
	local := frame.ToLocal(p)
	if local.X <= 0 || local.X > maxDist {
		return math.Inf(1)
	}
	if math.Abs(local.Y) > corridor {
		return math.Inf(1)
	}
	return local.X
}

// nearestVehicleAhead returns the gap to the closest car in v's driving
// cone (excluding v itself).
func (w *World) nearestVehicleAhead(v *Vehicle) float64 {
	frame := v.Frame()
	best := math.Inf(1)
	consider := func(p geom.Point) {
		if d := aheadDistance(frame, p, followGap+10, 3.0); d < best {
			best = d
		}
	}
	for _, o := range w.Experts {
		if o.ID != v.ID {
			consider(o.Pos())
		}
	}
	for _, o := range w.Background {
		if o.ID != v.ID {
			consider(o.Pos())
		}
	}
	for _, a := range w.FreeAgents {
		consider(a.Pos)
	}
	return best
}

// nearestPedestrianAhead returns the gap to the closest pedestrian in v's
// caution cone.
func (w *World) nearestPedestrianAhead(v *Vehicle) float64 {
	frame := v.Frame()
	best := math.Inf(1)
	for _, p := range w.Pedestrians {
		if d := aheadDistance(frame, p.Pos, pedSlowGap+6, 2.5); d < best {
			best = d
		}
	}
	return best
}

// intersectionOccupied reports whether another car currently occupies the
// conflict disc around an intersection ahead of v (cars behind v are
// ignored — they are followers, not crossing traffic).
func (w *World) intersectionOccupied(v *Vehicle, node geom.Point) bool {
	frame := v.Frame()
	occupied := func(p geom.Point) bool {
		if p.Dist(node) > intersectionR {
			return false
		}
		return frame.ToLocal(p).X > 2
	}
	for _, o := range w.Experts {
		if o.ID != v.ID && occupied(o.Pos()) {
			return true
		}
	}
	for _, o := range w.Background {
		if o.ID != v.ID && occupied(o.Pos()) {
			return true
		}
	}
	for _, a := range w.FreeAgents {
		if occupied(a.Pos) {
			return true
		}
	}
	return false
}

// anyCarNear reports whether any car (expert, background, or free agent)
// is within r of pos and moving.
func (w *World) anyCarNear(pos geom.Point, r float64) bool {
	for _, v := range w.Experts {
		if v.V > 0.5 && pos.Dist(v.Pos()) < r {
			return true
		}
	}
	for _, v := range w.Background {
		if v.V > 0.5 && pos.Dist(v.Pos()) < r {
			return true
		}
	}
	for _, a := range w.FreeAgents {
		if a.V > 0.5 && pos.Dist(a.Pos) < r {
			return true
		}
	}
	return false
}

// CollisionAt reports whether a car body at pos (with standard vehicle
// radius) overlaps any other car or pedestrian. excludeID removes one
// expert/background car from the check (the agent itself when it is a
// routed vehicle; pass -1 for free agents).
func (w *World) CollisionAt(pos geom.Point, excludeID int) bool {
	for _, v := range w.Experts {
		if v.ID != excludeID && pos.Dist(v.Pos()) < 2*vehicleRadius {
			return true
		}
	}
	for _, v := range w.Background {
		if v.ID != excludeID && pos.Dist(v.Pos()) < 2*vehicleRadius {
			return true
		}
	}
	for _, p := range w.Pedestrians {
		if pos.Dist(p.Pos) < vehicleRadius+pedRadius {
			return true
		}
	}
	return false
}
