package spatial

import (
	"math"
	"testing"

	"lbchat/internal/geom"
	"lbchat/internal/simrand"
)

// bruteNeighbors is the reference O(N) scan Neighbors must agree with.
func bruteNeighbors(pts []geom.Point, p geom.Point, r float64) []int {
	var out []int
	for i, q := range pts {
		if q.Dist(p) <= r {
			out = append(out, i)
		}
	}
	return out
}

// brutePairs is the reference O(N²) double loop Pairs must agree with,
// including enumeration order.
func brutePairs(pts []geom.Point, r float64) []Pair {
	var out []Pair
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			if pts[a].Dist(pts[b]) <= r {
				out = append(out, Pair{A: a, B: b})
			}
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomScene scatters n points over a box spanning negative and positive
// coordinates, with a cluster thrown in so some cells are dense.
func randomScene(rng *simrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%4 == 0 { // dense cluster near the origin
			pts[i] = geom.Pt(rng.Uniform(-20, 20), rng.Uniform(-20, 20))
		} else {
			pts[i] = geom.Pt(rng.Uniform(-500, 900), rng.Uniform(-400, 800))
		}
	}
	return pts
}

// TestIndexMatchesBruteForceRandomized is the core property test: on many
// randomized scenes, cell sizes, and radii, Neighbors and Pairs must agree
// with the brute-force scans exactly — same sets, same canonical order.
func TestIndexMatchesBruteForceRandomized(t *testing.T) {
	rng := simrand.New(42)
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(120)
		pts := randomScene(rng, n)
		cell := rng.Uniform(0.5, 200)
		r := rng.Uniform(0, 300)
		ix := New(cell)
		ix.Rebuild(pts)

		if got, want := ix.Pairs(nil, r), brutePairs(pts, r); !equalPairs(got, want) {
			t.Fatalf("trial %d (n=%d cell=%g r=%g): Pairs = %v, brute = %v", trial, n, cell, r, got, want)
		}
		for q := 0; q < 10; q++ {
			p := geom.Pt(rng.Uniform(-600, 1000), rng.Uniform(-500, 900))
			if got, want := ix.Neighbors(nil, p, r), bruteNeighbors(pts, p, r); !equalInts(got, want) {
				t.Fatalf("trial %d: Neighbors(%v, %g) = %v, brute = %v", trial, p, r, got, want)
			}
		}
	}
}

// TestIndexUpdateMatchesRebuild moves points one at a time (the world's
// in-tick pattern) and checks that incremental updates answer queries
// exactly like a fresh rebuild at every step.
func TestIndexUpdateMatchesRebuild(t *testing.T) {
	rng := simrand.New(7)
	pts := randomScene(rng, 80)
	ix := New(25)
	ix.Rebuild(pts)
	fresh := New(25)
	for step := 0; step < 200; step++ {
		i := rng.Intn(len(pts))
		pts[i] = pts[i].Add(geom.Pt(rng.Uniform(-40, 40), rng.Uniform(-40, 40)))
		ix.Update(i, pts[i])
		fresh.Rebuild(pts)
		r := rng.Uniform(0, 120)
		p := pts[rng.Intn(len(pts))]
		got := ix.Neighbors(nil, p, r)
		want := fresh.Neighbors(nil, p, r)
		if !equalInts(got, want) {
			t.Fatalf("step %d: updated index Neighbors = %v, rebuilt = %v", step, got, want)
		}
		if gp, wp := ix.Pairs(nil, r), fresh.Pairs(nil, r); !equalPairs(gp, wp) {
			t.Fatalf("step %d: updated index Pairs = %v, rebuilt = %v", step, gp, wp)
		}
	}
}

// TestIndexEdgeCases pins the behaviors a uniform grid gets wrong when
// written carelessly: points exactly on cell boundaries, radii larger than
// the whole extent, empty indices, single entities, and negative
// coordinates.
func TestIndexEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		cell float64
		pts  []geom.Point
		q    geom.Point
		r    float64
	}{
		{
			name: "empty index",
			cell: 10,
			pts:  nil,
			q:    geom.Pt(3, 4),
			r:    100,
		},
		{
			name: "single entity hit",
			cell: 10,
			pts:  []geom.Point{geom.Pt(5, 5)},
			q:    geom.Pt(6, 5),
			r:    2,
		},
		{
			name: "single entity miss",
			cell: 10,
			pts:  []geom.Point{geom.Pt(5, 5)},
			q:    geom.Pt(50, 50),
			r:    2,
		},
		{
			name: "entities exactly on cell boundaries",
			cell: 10,
			pts: []geom.Point{
				geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(10, 10),
				geom.Pt(-10, 0), geom.Pt(0, -10), geom.Pt(-10, -10),
				geom.Pt(20, 20), geom.Pt(30, 10),
			},
			q: geom.Pt(10, 10),
			r: 10,
		},
		{
			name: "query exactly on boundary with radius touching neighbors",
			cell: 5,
			pts:  []geom.Point{geom.Pt(4.999999, 0), geom.Pt(5, 0), geom.Pt(5.000001, 0), geom.Pt(10, 0)},
			q:    geom.Pt(5, 0),
			r:    5,
		},
		{
			name: "radius larger than the map",
			cell: 10,
			pts:  []geom.Point{geom.Pt(-300, -200), geom.Pt(0, 0), geom.Pt(450, 500), geom.Pt(12, -7)},
			q:    geom.Pt(20, 30),
			r:    1e9,
		},
		{
			name: "negative coordinates",
			cell: 7,
			pts:  []geom.Point{geom.Pt(-1, -1), geom.Pt(-7, -7), geom.Pt(-6.999, -7.001), geom.Pt(-100, -50), geom.Pt(3, -2)},
			q:    geom.Pt(-5, -5),
			r:    8,
		},
		{
			name: "coincident points",
			cell: 10,
			pts:  []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1, 1)},
			q:    geom.Pt(1, 1),
			r:    0,
		},
		{
			name: "zero radius",
			cell: 10,
			pts:  []geom.Point{geom.Pt(1, 2), geom.Pt(1, 2), geom.Pt(3, 4)},
			q:    geom.Pt(1, 2),
			r:    0,
		},
		{
			name: "negative radius returns nothing",
			cell: 10,
			pts:  []geom.Point{geom.Pt(1, 2)},
			q:    geom.Pt(1, 2),
			r:    -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := New(tc.cell)
			ix.Rebuild(tc.pts)
			if got, want := ix.Neighbors(nil, tc.q, tc.r), bruteNeighbors(tc.pts, tc.q, tc.r); !equalInts(got, want) {
				t.Errorf("Neighbors = %v, brute = %v", got, want)
			}
			if got, want := ix.Pairs(nil, tc.r), brutePairs(tc.pts, tc.r); !equalPairs(got, want) {
				t.Errorf("Pairs = %v, brute = %v", got, want)
			}
		})
	}
}

// TestForCandidatesSuperset checks the ForCandidates contract: it must
// visit a superset of the exact closed-ball neighbors and stop on demand.
func TestForCandidatesSuperset(t *testing.T) {
	rng := simrand.New(11)
	pts := randomScene(rng, 100)
	ix := New(30)
	ix.Rebuild(pts)
	for q := 0; q < 30; q++ {
		p := geom.Pt(rng.Uniform(-500, 900), rng.Uniform(-400, 800))
		r := rng.Uniform(0, 200)
		seen := map[int]bool{}
		ix.ForCandidates(p, r, func(i int, pt geom.Point) bool {
			if pt != pts[i] {
				t.Fatalf("candidate %d reported position %v, want %v", i, pt, pts[i])
			}
			seen[i] = true
			return true
		})
		for _, i := range bruteNeighbors(pts, p, r) {
			if !seen[i] {
				t.Fatalf("ForCandidates(%v, %g) missed exact neighbor %d", p, r, i)
			}
		}
	}
	// Early termination: fn returning false stops after the first visit.
	visits := 0
	ix.ForCandidates(geom.Pt(0, 0), 1e9, func(int, geom.Point) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early-stop enumeration visited %d candidates, want 1", visits)
	}
}

// TestNewDegenerateCellSize checks the fallback for nonsensical cell sizes.
func TestNewDegenerateCellSize(t *testing.T) {
	for _, cell := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		ix := New(cell)
		if ix.CellSize() != 1 {
			t.Errorf("New(%v) cell size = %g, want fallback 1", cell, ix.CellSize())
		}
		ix.Rebuild([]geom.Point{geom.Pt(2, 2), geom.Pt(2.5, 2)})
		if got := ix.Neighbors(nil, geom.Pt(2, 2), 1); len(got) != 2 {
			t.Errorf("New(%v) Neighbors = %v, want both points", cell, got)
		}
	}
}
