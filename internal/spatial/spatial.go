package spatial

import (
	"math"
	"slices"

	"lbchat/internal/geom"
)

// cellKey addresses one grid cell by its integer coordinates.
type cellKey struct {
	cx, cy int32
}

// Index is a uniform-grid spatial index over a set of 2D points. Points are
// identified by their index in the slice passed to Rebuild; Update moves a
// single point without a full rebuild, which is how the world keeps the
// index exact while entities move one at a time inside a tick.
//
// The zero value is not usable; construct with New.
type Index struct {
	cell  float64
	pts   []geom.Point
	cells map[cellKey][]int32
	keys  []cellKey // keys[i] is the cell currently holding point i

	// Occupied cell extent, maintained so queries with huge radii clamp
	// to the populated area instead of sweeping empty cells.
	minCx, maxCx int32
	minCy, maxCy int32

	scratch []int32
}

// New creates an index with the given cell size in meters. The cell size
// should be on the order of the dominant query radius: queries then visit
// at most a 3×3 cell neighborhood. Non-positive or non-finite sizes fall
// back to 1 m.
func New(cellSize float64) *Index {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		cellSize = 1
	}
	return &Index{cell: cellSize, cells: make(map[cellKey][]int32)}
}

// CellSize returns the configured cell size in meters.
func (ix *Index) CellSize() float64 { return ix.cell }

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// At returns indexed point i.
func (ix *Index) At(i int) geom.Point { return ix.pts[i] }

func (ix *Index) keyFor(p geom.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / ix.cell)),
		cy: int32(math.Floor(p.Y / ix.cell)),
	}
}

// Rebuild re-indexes the given points, copying them into the index (the
// caller's slice is not retained). Buckets and the point copy are reused
// across rebuilds, so a steady-state rebuild allocates nothing.
func (ix *Index) Rebuild(pts []geom.Point) {
	ix.pts = append(ix.pts[:0], pts...)
	if cap(ix.keys) < len(pts) {
		ix.keys = make([]cellKey, len(pts))
	}
	ix.keys = ix.keys[:len(pts)]
	for k, bucket := range ix.cells {
		ix.cells[k] = bucket[:0]
	}
	ix.minCx, ix.maxCx = math.MaxInt32, math.MinInt32
	ix.minCy, ix.maxCy = math.MaxInt32, math.MinInt32
	for i, p := range pts {
		k := ix.keyFor(p)
		ix.keys[i] = k
		ix.cells[k] = append(ix.cells[k], int32(i))
		ix.growExtent(k)
	}
}

func (ix *Index) growExtent(k cellKey) {
	if k.cx < ix.minCx {
		ix.minCx = k.cx
	}
	if k.cx > ix.maxCx {
		ix.maxCx = k.cx
	}
	if k.cy < ix.minCy {
		ix.minCy = k.cy
	}
	if k.cy > ix.maxCy {
		ix.maxCy = k.cy
	}
}

// Update moves point i to p, relocating it across cells when needed. The
// occupied extent only grows between rebuilds — queries stay correct, at
// worst visiting a few extra empty cells until the next Rebuild.
func (ix *Index) Update(i int, p geom.Point) {
	ix.pts[i] = p
	oldKey, newKey := ix.keys[i], ix.keyFor(p)
	if oldKey == newKey {
		return
	}
	bucket := ix.cells[oldKey]
	for bi, id := range bucket {
		if id == int32(i) {
			bucket[bi] = bucket[len(bucket)-1]
			ix.cells[oldKey] = bucket[:len(bucket)-1]
			break
		}
	}
	ix.keys[i] = newKey
	ix.cells[newKey] = append(ix.cells[newKey], int32(i))
	ix.growExtent(newKey)
}

// clampedCellRange returns the cell-coordinate range covering [lo, hi],
// clamped to the occupied extent on the given axis.
func clampedCellRange(lo, hi float64, cell float64, minC, maxC int32) (int32, int32) {
	c0 := int32(math.Floor(lo / cell))
	c1 := int32(math.Floor(hi / cell))
	if c0 < minC {
		c0 = minC
	}
	if c1 > maxC {
		c1 = maxC
	}
	return c0, c1
}

// ForCandidates calls fn for every indexed point in the cells overlapping
// the axis-aligned bounding box of the disc (p, r) — a superset of the
// points within distance r of p. fn returning false stops the enumeration
// early. Visit order is unspecified (it depends on update history), so fn
// must compute an order-independent reduction — a min, an any, or an
// idempotent mark. No exact distance check is applied; callers apply their
// own predicate, which is what keeps index-backed queries bit-identical to
// the brute-force scans they replace.
func (ix *Index) ForCandidates(p geom.Point, r float64, fn func(i int, q geom.Point) bool) {
	if len(ix.pts) == 0 || r < 0 {
		return
	}
	cx0, cx1 := clampedCellRange(p.X-r, p.X+r, ix.cell, ix.minCx, ix.maxCx)
	cy0, cy1 := clampedCellRange(p.Y-r, p.Y+r, ix.cell, ix.minCy, ix.maxCy)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range ix.cells[cellKey{cx, cy}] {
				if !fn(int(id), ix.pts[id]) {
					return
				}
			}
		}
	}
}

// withinBall reports whether q lies in the closed ball (p, r), returning
// exactly what the predicate `q.Dist(p) <= r` would. A squared-distance
// screen decides candidates whose squared distance is more than a relative
// margin away from r² — the margin (1e-12) is orders of magnitude above the
// combined rounding error of the three-operation square (≈3 ulp) and
// math.Hypot's documented 1-ulp bound, so the screen can never contradict
// the exact predicate. Only borderline candidates pay for the Hypot call,
// which keeps index-backed queries bit-identical to the brute-force scans
// they replace at a fraction of the cost.
func withinBall(p, q geom.Point, r, rr float64) bool {
	return WithinBall(p, q, r, rr)
}

// WithinBall reports whether q lies in the closed ball (p, r); rr must be
// r*r. It is the exported form of the screened predicate, shared with
// internal/shard so sharded scans apply the bit-identical in-range test.
func WithinBall(p, q geom.Point, r, rr float64) bool {
	dx, dy := q.X-p.X, q.Y-p.Y
	sq := dx*dx + dy*dy
	const margin = 1e-12
	if sq > rr*(1+margin) {
		return false
	}
	if sq < rr*(1-margin) {
		return true
	}
	return q.Dist(p) <= r
}

// Neighbors returns the indices of all points within distance r of p
// (closed ball, the same `Dist(p) <= r` comparison a brute-force scan
// makes), in ascending index order. The returned slice is appended to dst,
// which may be nil.
func (ix *Index) Neighbors(dst []int, p geom.Point, r float64) []int {
	start := len(dst)
	rr := r * r
	ix.ForCandidates(p, r, func(i int, q geom.Point) bool {
		if withinBall(p, q, r, rr) {
			dst = append(dst, i)
		}
		return true
	})
	slices.Sort(dst[start:])
	return dst
}

// Pair is an unordered point pair with A < B.
type Pair struct {
	A, B int
}

// Pairs appends to dst every pair of indexed points within distance r of
// each other (closed ball), in canonical ascending (A, B) order — exactly
// the enumeration order of the classic `for a { for b > a }` brute-force
// double loop, so replacing that loop with Pairs preserves downstream
// iteration order bit for bit.
func (ix *Index) Pairs(dst []Pair, r float64) []Pair {
	if len(ix.pts) == 0 || r < 0 {
		return dst
	}
	rr := r * r
	for a, p := range ix.pts {
		ix.scratch = ix.scratch[:0]
		cx0, cx1 := clampedCellRange(p.X-r, p.X+r, ix.cell, ix.minCx, ix.maxCx)
		cy0, cy1 := clampedCellRange(p.Y-r, p.Y+r, ix.cell, ix.minCy, ix.maxCy)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				for _, id := range ix.cells[cellKey{cx, cy}] {
					if int(id) > a && withinBall(p, ix.pts[id], r, rr) {
						ix.scratch = append(ix.scratch, id)
					}
				}
			}
		}
		slices.Sort(ix.scratch)
		for _, b := range ix.scratch {
			dst = append(dst, Pair{A: a, B: int(b)})
		}
	}
	return dst
}
