// Package spatial provides a deterministic uniform-grid index over 2D
// points, the fast path behind every proximity query in the simulator:
// radio-range pair enumeration in the engine, lead-vehicle / pedestrian /
// intersection / collision queries in the world, and ego-window entity
// culling for BEV rasterization.
//
// The index buckets points into square cells of a fixed size chosen from
// the dominant query radius (radio range for the engine, the driving-cone
// bound for the world). A query for radius r visits only the cells
// overlapping the query disc's bounding box — clamped to the occupied
// extent, so a radius larger than the whole map degrades to a full scan,
// never to an empty-cell sweep.
//
// Determinism is part of the contract, not an accident: Neighbors and
// Pairs return candidates in canonical ID-ascending order, and every
// candidate is confirmed with the exact same geom.Point.Dist comparison a
// brute-force scan would use. Replacing an O(N²) scan with the index
// therefore changes neither the result set nor its order — sim output
// stays bit-identical at any worker count (see the property and A/B
// determinism tests). ForCandidates trades the canonical order for
// zero-allocation enumeration; it is only suitable for order-independent
// reductions (any/min), which is what the world queries are.
//
// The index is not safe for concurrent mutation; the simulator rebuilds
// or updates it from the single-threaded tick loop only.
package spatial
