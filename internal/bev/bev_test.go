package bev

import (
	"testing"

	"lbchat/internal/geom"
)

// bandRoad is drivable wherever |Y| < halfWidth — an infinite horizontal
// road along the x-axis.
type bandRoad struct{ halfWidth float64 }

func (b bandRoad) IsRoad(p geom.Point) bool { return p.Y > -b.halfWidth && p.Y < b.halfWidth }

func cellAt(cfg Config, out []uint8, channel, row, col int) uint8 {
	return out[channel*cfg.Height*cfg.Width+row*cfg.Width+col]
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Size() != NumChannels*cfg.Height*cfg.Width {
		t.Errorf("Size = %d", cfg.Size())
	}
	if cfg.CellSize() != cfg.Range/float64(cfg.Height) {
		t.Errorf("CellSize = %v", cfg.CellSize())
	}
}

func TestRoadChannelAhead(t *testing.T) {
	cfg := Config{Height: 8, Width: 8, Range: 32}
	ras := NewRasterizer(cfg, bandRoad{halfWidth: 6})
	// Ego at origin heading east: the road band straddles the center
	// columns of the grid for every row ahead.
	out := ras.Rasterize(geom.Frame{Origin: geom.Pt(0, 0), Heading: 0}, nil, nil)
	for row := 0; row < cfg.Height; row++ {
		// Lateral extent of road: |lat| < 6 → columns 2..5 (cells of 4 m).
		for col := 0; col < cfg.Width; col++ {
			lat := -16 + (float64(col)+0.5)*4
			want := uint8(0)
			if lat > -6 && lat < 6 {
				want = 1
			}
			if got := cellAt(cfg, out, ChannelRoad, row, col); got != want {
				t.Fatalf("road[%d][%d] = %d, want %d", row, col, got, want)
			}
		}
	}
}

func TestVehicleMarkPosition(t *testing.T) {
	cfg := Config{Height: 16, Width: 16, Range: 32}
	ras := NewRasterizer(cfg, bandRoad{halfWidth: 100})
	frame := geom.Frame{Origin: geom.Pt(0, 0), Heading: 0}
	// One car 10 m directly ahead.
	out := ras.Rasterize(frame, []geom.Point{geom.Pt(10, 0)}, nil)
	// Forward 10 m → row = H-1 - 10/2 = 10; center columns.
	found := false
	plane := cfg.Height * cfg.Width
	for row := 9; row <= 11; row++ {
		for col := 6; col <= 9; col++ {
			if out[ChannelVehicles*plane+row*cfg.Width+col] == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("car ahead not marked near expected cells")
	}
	// Nothing in the pedestrian channel.
	for i := 0; i < plane; i++ {
		if out[ChannelPedestrians*plane+i] != 0 {
			t.Fatal("pedestrian channel contaminated")
		}
	}
}

func TestEntitiesBehindInvisible(t *testing.T) {
	cfg := DefaultConfig()
	ras := NewRasterizer(cfg, bandRoad{halfWidth: 100})
	frame := geom.Frame{Origin: geom.Pt(0, 0), Heading: 0}
	out := ras.Rasterize(frame, []geom.Point{geom.Pt(-15, 0)}, []geom.Point{geom.Pt(-8, 1)})
	plane := cfg.Height * cfg.Width
	for i := plane; i < 3*plane; i++ {
		if out[i] != 0 {
			t.Fatal("entity behind the ego appeared in the BEV")
		}
	}
}

func TestFootprintLargerForVehicles(t *testing.T) {
	cfg := Config{Height: 16, Width: 16, Range: 32}
	ras := NewRasterizer(cfg, bandRoad{halfWidth: 100})
	frame := geom.Frame{Origin: geom.Pt(0, 0), Heading: 0}
	out := ras.Rasterize(frame, []geom.Point{geom.Pt(16, 0)}, []geom.Point{geom.Pt(16, 0)})
	plane := cfg.Height * cfg.Width
	cars, peds := 0, 0
	for i := 0; i < plane; i++ {
		cars += int(out[ChannelVehicles*plane+i])
		peds += int(out[ChannelPedestrians*plane+i])
	}
	if cars <= peds {
		t.Errorf("car footprint (%d cells) not larger than pedestrian (%d)", cars, peds)
	}
	if cars == 0 || peds == 0 {
		t.Errorf("footprints missing: cars=%d peds=%d", cars, peds)
	}
}

func TestRasterizeRespectsHeading(t *testing.T) {
	cfg := Config{Height: 8, Width: 8, Range: 32}
	ras := NewRasterizer(cfg, bandRoad{halfWidth: 100})
	// Ego heading north; a car due north is "ahead".
	frame := geom.Frame{Origin: geom.Pt(0, 0), Heading: 1.5707963}
	out := ras.Rasterize(frame, []geom.Point{geom.Pt(0, 12)}, nil)
	plane := cfg.Height * cfg.Width
	marked := 0
	for i := 0; i < plane; i++ {
		marked += int(out[ChannelVehicles*plane+i])
	}
	if marked == 0 {
		t.Error("northbound ego cannot see car to the north")
	}
}

func TestWaypointNormalizationRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	pts := []geom.Point{geom.Pt(5, -3), geom.Pt(0, 0), geom.Pt(31, 10)}
	for _, p := range pts {
		x, y := cfg.NormalizeWaypoint(p)
		back := cfg.DenormalizeWaypoint(x, y)
		if back.Dist(p) > 1e-9 {
			t.Errorf("round trip of %v gives %v", p, back)
		}
	}
	x, _ := cfg.NormalizeWaypoint(geom.Pt(cfg.Range, 0))
	if x != 1 {
		t.Errorf("range-distance waypoint normalizes to %v, want 1", x)
	}
}
