package bev

import (
	"math"

	"lbchat/internal/geom"
)

// RoadSampler answers point-in-road queries; the world's map implements it.
type RoadSampler interface {
	// IsRoad reports whether the world point lies on drivable road.
	IsRoad(p geom.Point) bool
}

// Channel indices within the BEV tensor.
const (
	ChannelRoad = iota
	ChannelVehicles
	ChannelPedestrians
	NumChannels
)

// Config describes BEV geometry. The grid covers the area ahead of the ego
// vehicle: rows sweep the forward axis (row 0 is farthest ahead), columns
// sweep laterally, and the ego sits at the middle of the bottom row.
type Config struct {
	Height int     // grid rows
	Width  int     // grid columns
	Range  float64 // forward view distance in meters (also normalization scale)
}

// DefaultConfig matches model.DefaultConfig's 3×16×16 BEV with a 32 m view
// (2 m cells — fine enough for lateral localization on a 10 m road).
func DefaultConfig() Config {
	return Config{Height: 16, Width: 16, Range: 32}
}

// Size returns the flattened tensor size (NumChannels × Height × Width).
func (c Config) Size() int { return NumChannels * c.Height * c.Width }

// CellSize returns the forward extent of one grid cell in meters.
func (c Config) CellSize() float64 { return c.Range / float64(c.Height) }

// Rasterizer renders BEV tensors for a fixed config and road map.
type Rasterizer struct {
	cfg   Config
	roads RoadSampler
}

// NewRasterizer creates a rasterizer over the given road sampler.
func NewRasterizer(cfg Config, roads RoadSampler) *Rasterizer {
	return &Rasterizer{cfg: cfg, roads: roads}
}

// Config returns the rasterizer's configuration.
func (r *Rasterizer) Config() Config { return r.cfg }

// Rasterize renders the BEV for an ego frame. vehicles and pedestrians are
// world-frame positions of OTHER entities (the ego must not be included).
// The output layout is channel-major: [road | vehicles | pedestrians], each
// Height×Width row-major with row 0 farthest ahead.
func (r *Rasterizer) Rasterize(frame geom.Frame, vehicles, pedestrians []geom.Point) []uint8 {
	cfg := r.cfg
	out := make([]uint8, cfg.Size())
	plane := cfg.Height * cfg.Width
	cell := cfg.CellSize()
	halfWidth := float64(cfg.Width) / 2 * cell

	// Road channel: sample each cell center.
	for row := 0; row < cfg.Height; row++ {
		// Row 0 is farthest ahead; the bottom row touches the ego.
		fwd := cfg.Range - (float64(row)+0.5)*cell
		for col := 0; col < cfg.Width; col++ {
			lat := -halfWidth + (float64(col)+0.5)*cell
			world := frame.ToWorld(geom.Pt(fwd, lat))
			if r.roads.IsRoad(world) {
				out[ChannelRoad*plane+row*cfg.Width+col] = 1
			}
		}
	}

	// Entities paint their physical footprint (a disc), not a single point:
	// a car two cells long must look like one.
	mark := func(channel int, p geom.Point, radius float64) {
		local := frame.ToLocal(p)
		if local.X < -radius || local.X >= cfg.Range+radius {
			return
		}
		if local.Y < -halfWidth-radius || local.Y >= halfWidth+radius {
			return
		}
		rowLo := cfg.Height - 1 - int((local.X+radius)/cell)
		rowHi := cfg.Height - 1 - int((local.X-radius)/cell)
		colLo := int((local.Y - radius + halfWidth) / cell)
		colHi := int((local.Y + radius + halfWidth) / cell)
		for row := rowLo; row <= rowHi; row++ {
			if row < 0 || row >= cfg.Height {
				continue
			}
			fwd := cfg.Range - (float64(row)+0.5)*cell
			for col := colLo; col <= colHi; col++ {
				if col < 0 || col >= cfg.Width {
					continue
				}
				lat := -halfWidth + (float64(col)+0.5)*cell
				dx, dy := fwd-local.X, lat-local.Y
				if dx*dx+dy*dy <= (radius+cell/2)*(radius+cell/2) {
					out[channel*plane+row*cfg.Width+col] = 1
				}
			}
		}
	}
	for _, v := range vehicles {
		mark(ChannelVehicles, v, vehicleMarkRadius)
	}
	for _, p := range pedestrians {
		mark(ChannelPedestrians, p, pedestrianMarkRadius)
	}
	return out
}

// Footprint radii for entity rasterization (meters).
const (
	vehicleMarkRadius    = 2.2
	pedestrianMarkRadius = 0.9
)

// cullRadius returns the radius of the smallest ego-centered disc
// containing every entity of the given footprint radius that Rasterize
// could paint: the entity window spans local X ∈ [-r, Range+r) and
// |Y| < halfWidth+r, and every point of that box lies within the box
// corner's distance of the ego origin.
func (c Config) cullRadius(entityRadius float64) float64 {
	halfWidth := float64(c.Width) / 2 * c.CellSize()
	return math.Hypot(c.Range+entityRadius, halfWidth+entityRadius)
}

// VehicleCullRadius returns the ego-centered radius outside which a vehicle
// cannot mark any BEV cell. Callers use it to pre-cull entities through a
// spatial index; Rasterize applies the exact per-entity window test either
// way, so culling with any superset of this disc leaves the output
// byte-identical.
func (c Config) VehicleCullRadius() float64 { return c.cullRadius(vehicleMarkRadius) }

// PedestrianCullRadius is VehicleCullRadius for pedestrian footprints.
func (c Config) PedestrianCullRadius() float64 { return c.cullRadius(pedestrianMarkRadius) }

// NormalizeWaypoint converts an ego-frame waypoint (meters) into the
// normalized coordinates the model is trained on.
func (c Config) NormalizeWaypoint(local geom.Point) (x, y float64) {
	return local.X / c.Range, local.Y / c.Range
}

// DenormalizeWaypoint converts a normalized model output back into ego-frame
// meters.
func (c Config) DenormalizeWaypoint(x, y float64) geom.Point {
	return geom.Pt(x*c.Range, y*c.Range)
}
