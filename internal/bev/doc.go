// Package bev rasterizes ego-centric bird's-eye-view (BEV) tensors from
// simulator ground truth. The BEV is the sparse binary multi-channel tensor
// the paper's driving model consumes: a top-down view of the area ahead of
// the vehicle with separate channels for drivable road, nearby vehicles, and
// pedestrians.
package bev
