package eval

import (
	"testing"

	"lbchat/internal/dataset"
	"lbchat/internal/world"
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSuite(m, SuiteConfig{RoutesPerCondition: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConditionsOrderAndNames(t *testing.T) {
	if len(Conditions) != 5 {
		t.Fatalf("conditions = %d", len(Conditions))
	}
	if Conditions[0].String() != "Straight" || Conditions[4].String() != "Navi. (Dense)" {
		t.Errorf("condition labels wrong: %v ... %v", Conditions[0], Conditions[4])
	}
}

func TestBuildSuiteRouteShapes(t *testing.T) {
	s := testSuite(t)
	for _, r := range s.Routes[CondStraight] {
		if r.NumTurns() != 0 {
			t.Errorf("straight route has %d turns", r.NumTurns())
		}
		if r.Length() < 200 || r.Length() > 500 {
			t.Errorf("straight route length %v", r.Length())
		}
	}
	for _, r := range s.Routes[CondOneTurn] {
		if r.NumTurns() != 1 {
			t.Errorf("one-turn route has %d turns", r.NumTurns())
		}
	}
	for _, r := range s.Routes[CondNaviEmpty] {
		if r.NumTurns() < 2 {
			t.Errorf("navigation route has only %d turns", r.NumTurns())
		}
	}
}

func TestNaviTiersShareRoutes(t *testing.T) {
	s := testSuite(t)
	// The paper evaluates "the same full navigation routes but with
	// traffic".
	for i, r := range s.Routes[CondNaviEmpty] {
		if s.Routes[CondNaviNormal][i] != r || s.Routes[CondNaviDense][i] != r {
			t.Fatal("navigation tiers use different routes")
		}
	}
}

func TestBuildSuiteRejectsBadConfig(t *testing.T) {
	m, _ := world.NewMap(world.DefaultConfig())
	if _, err := BuildSuite(m, SuiteConfig{RoutesPerCondition: 0}); err == nil {
		t.Error("zero quota accepted")
	}
}

func TestTrafficScaling(t *testing.T) {
	normal := world.SpawnConfig{BackgroundCars: 50, Pedestrians: 250}
	if got := trafficFor(CondStraight, normal); got.BackgroundCars != 0 || got.Pedestrians != 0 {
		t.Error("straight tier should be traffic-free")
	}
	if got := trafficFor(CondNaviNormal, normal); got.BackgroundCars != 50 {
		t.Errorf("normal tier cars = %d", got.BackgroundCars)
	}
	dense := trafficFor(CondNaviDense, normal)
	if dense.BackgroundCars != 60 || dense.Pedestrians != 300 {
		t.Errorf("dense tier = %d cars / %d peds, want 1.2×", dense.BackgroundCars, dense.Pedestrians)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeSuccess, OutcomeCollision, OutcomeOffRoad, OutcomeTimeout} {
		if o.String() == "" {
			t.Errorf("outcome %d has no name", o)
		}
	}
}

// stoppedDriver predicts collapsed waypoints (full stop) forever.
type stoppedDriver struct{}

func (stoppedDriver) Predict([]uint8, float64, float64, float64, dataset.Command) []float64 {
	return []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
}

func TestStoppedDriverTimesOut(t *testing.T) {
	s := testSuite(t)
	ev := NewEvaluator(s)
	route := s.Routes[CondStraight][0]
	if got := ev.RunTrial(stoppedDriver{}, CondStraight, route, 77); got != OutcomeTimeout {
		t.Errorf("stopped driver outcome = %v, want timeout", got)
	}
}

func TestTrialDeterministic(t *testing.T) {
	s := testSuite(t)
	ev := NewEvaluator(s)
	route := s.Routes[CondNaviNormal][0]
	a := ev.RunTrial(stoppedDriver{}, CondNaviNormal, route, 7)
	b := ev.RunTrial(stoppedDriver{}, CondNaviNormal, route, 7)
	if a != b {
		t.Errorf("same seed gave %v then %v", a, b)
	}
}

func TestRunStatsAggregates(t *testing.T) {
	s := testSuite(t)
	ev := NewEvaluator(s)
	stats := ev.RunStats(stoppedDriver{}, CondStraight, 4, 5)
	if stats.Trials != 4 {
		t.Fatalf("trials = %d", stats.Trials)
	}
	if stats.Timeouts != 4 {
		t.Errorf("stopped driver should always time out: %+v", stats)
	}
	if stats.SuccessRate() != 0 {
		t.Errorf("success rate = %v", stats.SuccessRate())
	}
	if stats.MeanProgress > 0.2 {
		t.Errorf("stopped driver progressed %v", stats.MeanProgress)
	}
	if stats.String() == "" {
		t.Error("empty summary")
	}
	empty := ev.RunStats(stoppedDriver{}, CondStraight, 0, 5)
	if empty.Trials != 0 {
		t.Error("zero-trials stats non-empty")
	}
}

func TestTrialReportFields(t *testing.T) {
	s := testSuite(t)
	ev := NewEvaluator(s)
	route := s.Routes[CondStraight][0]
	agent := &world.FreeAgent{Pos: route.PosAt(12), Heading: route.HeadingAt(12)}
	rep := ev.RunTrialReport(stoppedDriver{}, CondStraight, route, 5, agent)
	if rep.Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %v", rep.Outcome)
	}
	if rep.RouteLength != route.Length() {
		t.Errorf("route length = %v", rep.RouteLength)
	}
	if rep.Time <= 0 {
		t.Errorf("time = %v", rep.Time)
	}
	if rep.HitKind != "" {
		t.Errorf("timeout with hit kind %q", rep.HitKind)
	}
}
