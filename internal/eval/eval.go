package eval

import (
	"fmt"
	"math"
	"sync/atomic"

	"lbchat/internal/bev"
	"lbchat/internal/dataset"
	"lbchat/internal/geom"
	"lbchat/internal/parallel"
	"lbchat/internal/simrand"
	"lbchat/internal/world"
)

// Condition is a driving-benchmark difficulty tier.
type Condition int

// Benchmark conditions, in the paper's difficulty order.
const (
	CondStraight Condition = iota + 1
	CondOneTurn
	CondNaviEmpty
	CondNaviNormal
	CondNaviDense
)

// Conditions lists all tiers in presentation order.
var Conditions = []Condition{CondStraight, CondOneTurn, CondNaviEmpty, CondNaviNormal, CondNaviDense}

// String returns the paper's row label for the condition.
func (c Condition) String() string {
	switch c {
	case CondStraight:
		return "Straight"
	case CondOneTurn:
		return "One Turn"
	case CondNaviEmpty:
		return "Navi. (Empty)"
	case CondNaviNormal:
		return "Navi. (Normal)"
	case CondNaviDense:
		return "Navi. (Dense)"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// trafficFor returns the background population for a condition. Navi
// (Dense) runs 1.2× the normal roaming cars and pedestrians, as in §IV-D.
func trafficFor(c Condition, normal world.SpawnConfig) world.SpawnConfig {
	switch c {
	case CondStraight, CondOneTurn, CondNaviEmpty:
		return world.SpawnConfig{}
	case CondNaviDense:
		return world.SpawnConfig{
			BackgroundCars: int(math.Round(1.2 * float64(normal.BackgroundCars))),
			Pedestrians:    int(math.Round(1.2 * float64(normal.Pedestrians))),
		}
	default:
		return world.SpawnConfig{
			BackgroundCars: normal.BackgroundCars,
			Pedestrians:    normal.Pedestrians,
		}
	}
}

// Suite is a set of benchmark routes per condition on one map.
type Suite struct {
	Map    *world.Map
	Routes map[Condition][]*world.Route
}

// SuiteConfig controls route generation.
type SuiteConfig struct {
	// RoutesPerCondition is the number of distinct routes per tier.
	RoutesPerCondition int
	// Seed drives route selection.
	Seed uint64
}

// DefaultSuiteConfig returns the experiment default.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{RoutesPerCondition: 12, Seed: 99}
}

// BuildSuite samples benchmark routes from the map: straight runs (no
// turns), single-turn routes, and long multi-turn navigation routes. The
// same navigation routes serve the Empty/Normal/Dense tiers, mirroring the
// paper ("the same full navigation routes but with traffic").
func BuildSuite(m *world.Map, cfg SuiteConfig) (*Suite, error) {
	if cfg.RoutesPerCondition <= 0 {
		return nil, fmt.Errorf("eval: non-positive route quota %d", cfg.RoutesPerCondition)
	}
	rng := simrand.New(cfg.Seed)
	s := &Suite{Map: m, Routes: make(map[Condition][]*world.Route)}

	type spec struct {
		cond      Condition
		turns     func(int) bool
		minLength float64
		maxLength float64
	}
	specs := []spec{
		{CondStraight, func(t int) bool { return t == 0 }, 200, 500},
		{CondOneTurn, func(t int) bool { return t == 1 }, 220, 550},
		{CondNaviEmpty, func(t int) bool { return t >= 2 }, 400, 1200},
	}
	numNodes := len(m.Nodes)
	for _, sp := range specs {
		var routes []*world.Route
		for attempt := 0; attempt < 20000 && len(routes) < cfg.RoutesPerCondition; attempt++ {
			src := world.NodeID(rng.Intn(numNodes))
			dst := world.NodeID(rng.Intn(numNodes))
			if src == dst {
				continue
			}
			path, err := m.ShortestPath(src, dst)
			if err != nil {
				continue
			}
			r, err := world.NewRoute(m, path)
			if err != nil {
				continue
			}
			if !sp.turns(r.NumTurns()) || r.Length() < sp.minLength || r.Length() > sp.maxLength {
				continue
			}
			routes = append(routes, r)
		}
		if len(routes) == 0 {
			return nil, fmt.Errorf("eval: no routes found for %v", sp.cond)
		}
		s.Routes[sp.cond] = routes
	}
	// Normal and Dense reuse the navigation routes.
	s.Routes[CondNaviNormal] = s.Routes[CondNaviEmpty]
	s.Routes[CondNaviDense] = s.Routes[CondNaviEmpty]
	return s, nil
}

// Outcome describes one trial's result.
type Outcome int

// Trial outcomes.
const (
	OutcomeSuccess Outcome = iota + 1
	OutcomeCollision
	OutcomeOffRoad
	OutcomeTimeout
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeCollision:
		return "collision"
	case OutcomeOffRoad:
		return "off-road"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Driver produces waypoint predictions for the testing autopilot.
// *model.Policy implements it; tests substitute oracles.
type Driver interface {
	// Predict maps a BEV tensor, normalized ego speed, normalized distance
	// to the next maneuver, normalized red-light distance, and command to
	// normalized ego-frame waypoints (x0, y0, x1, y1, ...).
	Predict(bev []uint8, speed, navDist, redDist float64, cmd dataset.Command) []float64
}

// Evaluator runs closed-loop driving trials.
type Evaluator struct {
	Suite *Suite
	// BEV is the rasterizer config; it must match the policy's input.
	BEV bev.Config
	// NormalTraffic is the population scaled per condition.
	NormalTraffic world.SpawnConfig
	// DT is the control period (s). Data collection runs at the paper's
	// 2 fps, but the driving controller runs at 10 Hz like CARLA agents —
	// closed-loop stability needs a far faster loop than data logging.
	DT float64
	// GraceSeconds ignores collisions immediately after spawn, before the
	// agent has had a chance to act (spawn-overlap artifacts).
	GraceSeconds float64
	// Workers bounds trial-level parallelism in SuccessRateParallel. 0 means
	// one worker per available CPU; 1 forces the serial path.
	Workers int
}

// NewEvaluator returns an evaluator with the experiment defaults: the
// paper's traffic population and 2 fps control.
func NewEvaluator(s *Suite) *Evaluator {
	return &Evaluator{
		Suite:         s,
		BEV:           bev.DefaultConfig(),
		NormalTraffic: world.SpawnConfig{BackgroundCars: 50, Pedestrians: 250},
		DT:            0.2,
		GraceSeconds:  3,
	}
}

// RunTrial drives the policy along one route under the condition's traffic
// and returns the outcome.
func (ev *Evaluator) RunTrial(policy Driver, cond Condition, route *world.Route, seed uint64) Outcome {
	// Spawn a few meters INTO the first edge: route start nodes are often
	// intersections, where an unguided ("follow") agent facing four roads
	// has no way to know which one the route takes.
	s0 := math.Min(12, route.Length()/4)
	agent := &world.FreeAgent{
		Pos:     route.PosAt(s0),
		Heading: route.HeadingAt(s0),
	}
	return ev.RunTrialWithAgent(policy, cond, route, seed, agent)
}

// TrialReport carries a trial's outcome plus termination diagnostics.
type TrialReport struct {
	Outcome Outcome
	// Time is the virtual time at termination (s).
	Time float64
	// Arc is the final on-route progress (m); RouteLength the route length.
	Arc, RouteLength float64
	// AgentSpeed is the agent's speed at termination (m/s).
	AgentSpeed float64
	// HitKind classifies collisions: "car-front", "car-side", "car-behind",
	// or "pedestrian"; empty for non-collision outcomes.
	HitKind string
}

// RunTrialWithAgent runs a trial with a caller-provided testing agent —
// oracles and instrumented drivers hold a reference to the live agent.
func (ev *Evaluator) RunTrialWithAgent(policy Driver, cond Condition, route *world.Route, seed uint64, agent *world.FreeAgent) Outcome {
	return ev.RunTrialReport(policy, cond, route, seed, agent).Outcome
}

// RunTrialReport is RunTrialWithAgent with termination diagnostics.
func (ev *Evaluator) RunTrialReport(policy Driver, cond Condition, route *world.Route, seed uint64, agent *world.FreeAgent) TrialReport {
	rng := simrand.New(seed)
	w, err := world.New(ev.Suite.Map, trafficFor(cond, ev.NormalTraffic), rng)
	if err != nil {
		return TrialReport{Outcome: OutcomeTimeout, RouteLength: route.Length()}
	}
	ras := bev.NewRasterizer(ev.BEV, ev.Suite.Map)
	w.FreeAgents = append(w.FreeAgents, agent)
	// Clean spawn, as in the CARLA benchmark: background cars parked on top
	// of the agent's start would deadlock the trial before it begins.
	for _, bg := range w.Background {
		if bg.Pos().Dist(agent.Pos) < 30 {
			bg.S += 60
			if bg.S > bg.Route.Length() {
				bg.S = bg.Route.Length()
			}
		}
	}
	// Positions were teleported outside Step; drop any spatial index built
	// over the pre-adjustment state.
	w.InvalidateIndex()

	// Budget: generous time at a conservative average speed.
	timeLimit := route.Length()/2.5 + 60
	ctrl := newController(ev.BEV)

	var lastArc float64
	for t := 0.0; t < timeLimit; t += ev.DT {
		// Perceive.
		frame := agent.Frame()
		bevT := ras.Rasterize(frame,
			w.VehiclePositionsNearSeenBy(frame.Origin, ev.BEV.VehicleCullRadius(), -1, agent),
			w.PedestrianPositionsNear(frame.Origin, ev.BEV.PedestrianCullRadius()))
		arc, lateral := routeProgress(route, agent.Pos)
		lastArc = arc
		cmd := route.CommandAt(arc)
		// Act.
		pred := policy.Predict(bevT, agent.V/world.SpeedNorm, world.NavDistAt(route, arc),
			world.RedDistInput(ev.Suite.Map, route, arc, w.Time), cmd)
		ctrl.step(agent, pred, bevT, ev.DT)
		// Advance the rest of the world.
		w.Step(ev.DT)
		// Judge.
		// Destination reached: the agent is on the final on-route stretch
		// just before the terminal node. (Requiring proximity to the node
		// itself would turn every goal at an intersection into a lottery
		// over which exit road the unguided agent picks.)
		report := func(o Outcome, hit string) TrialReport {
			return TrialReport{
				Outcome: o, Time: t, Arc: arc, RouteLength: route.Length(),
				AgentSpeed: agent.V, HitKind: hit,
			}
		}
		if arc > route.Length()-18 && lateral < 6 {
			return report(OutcomeSuccess, "")
		}
		if t > ev.GraceSeconds {
			if w.CollisionAt(agent.Pos, -1) {
				return report(OutcomeCollision, classifyHitDetailed(w, frame, agent.Pos))
			}
			// The paper's criterion is reaching the destination in time
			// without collision; brushing a corner is not failure. Leaving
			// the route corridor entirely is hopeless, so it is called
			// early rather than waiting out the clock.
			if lateral > 14 {
				return report(OutcomeOffRoad, "")
			}
		}
	}
	return TrialReport{
		Outcome: OutcomeTimeout, Time: timeLimit, Arc: lastArc,
		RouteLength: route.Length(), AgentSpeed: agent.V,
	}
}

// classifyHit labels the entity a colliding agent struck, by proximity and
// bearing in the agent frame.
func classifyHit(w *world.World, frame geom.Frame, pos geom.Point) string {
	minCar, minPed := math.Inf(1), math.Inf(1)
	var carLocal geom.Point
	for _, p := range w.AllVehiclePositions(-1) {
		if d := pos.Dist(p); d < minCar {
			minCar, carLocal = d, frame.ToLocal(p)
		}
	}
	for _, p := range w.PedestrianPositions() {
		if d := pos.Dist(p); d < minPed {
			minPed = d
		}
	}
	switch {
	case minPed < minCar:
		return "pedestrian"
	case carLocal.X < 0:
		return "car-behind"
	case math.Abs(carLocal.Y) > 1.8:
		return "car-side"
	default:
		return "car-front"
	}
}

// classifyHitDetailed adds the struck car's travel direction relative to the
// agent: "oncoming" (≈180°), "crossing" (≈±90°), or "ahead" (same way).
func classifyHitDetailed(w *world.World, frame geom.Frame, pos geom.Point) string {
	base := classifyHit(w, frame, pos)
	if base == "pedestrian" {
		return base
	}
	best := math.Inf(1)
	var rel float64
	consider := func(p geom.Point, heading float64) {
		if d := pos.Dist(p); d < best {
			best = d
			rel = math.Abs(geom.WrapAngle(heading - frame.Heading))
		}
	}
	for _, v := range w.Experts {
		consider(v.Pos(), v.Heading())
	}
	for _, v := range w.Background {
		consider(v.Pos(), v.Heading())
	}
	switch {
	case rel > 2.3:
		return base + "-oncoming"
	case rel > 0.8:
		return base + "-crossing"
	default:
		return base + "-sameway"
	}
}

// routeProgress projects the agent onto the route, returning its arc
// position and lateral deviation.
func routeProgress(route *world.Route, pos geom.Point) (arc, lateral float64) {
	// Project onto the route's lane polyline via dense sampling: routes are
	// a few hundred meters, so a 5 m scan plus local refinement is plenty.
	best := math.Inf(1)
	bestArc := 0.0
	for s := 0.0; s <= route.Length(); s += 5 {
		if d := route.PosAt(s).Dist(pos); d < best {
			best, bestArc = d, s
		}
	}
	for s := math.Max(0, bestArc-5); s <= math.Min(route.Length(), bestArc+5); s += 0.5 {
		if d := route.PosAt(s).Dist(pos); d < best {
			best, bestArc = d, s
		}
	}
	return bestArc, best
}

// SuccessRate runs trials trials of the condition (cycling through its
// routes) and returns the success percentage in [0, 100].
func (ev *Evaluator) SuccessRate(policy Driver, cond Condition, trials int, seed uint64) float64 {
	routes := ev.Suite.Routes[cond]
	if len(routes) == 0 || trials <= 0 {
		return math.NaN()
	}
	success := 0
	for i := 0; i < trials; i++ {
		route := routes[i%len(routes)]
		if ev.RunTrial(policy, cond, route, seed+uint64(i)*7919) == OutcomeSuccess {
			success++
		}
	}
	return 100 * float64(success) / float64(trials)
}

// SuccessRateParallel is SuccessRate with trials fanned out across
// ev.Workers. Drivers cache forward activations and are not safe for
// concurrent use, so newDriver must return a fresh Driver per call (e.g.
// model.Policy.Clone — identical parameters, so identical predictions); it
// is invoked once per worker chunk. Every trial keeps the exact seed the
// serial loop would give it, each trial builds its own private world, and
// the success count is an integer — addition order cannot change it — so the
// returned rate is bit-identical to SuccessRate at any worker count.
func (ev *Evaluator) SuccessRateParallel(newDriver func() Driver, cond Condition, trials int, seed uint64) float64 {
	routes := ev.Suite.Routes[cond]
	if len(routes) == 0 || trials <= 0 {
		return math.NaN()
	}
	var success atomic.Int64
	parallel.Chunks(parallel.Resolve(ev.Workers), trials, func(lo, hi int) {
		drv := newDriver()
		n := 0
		for i := lo; i < hi; i++ {
			route := routes[i%len(routes)]
			if ev.RunTrial(drv, cond, route, seed+uint64(i)*7919) == OutcomeSuccess {
				n++
			}
		}
		success.Add(int64(n))
	})
	return 100 * float64(success.Load()) / float64(trials)
}

// controller converts predicted waypoints into free-agent motion: steer
// toward a lookahead waypoint, match the speed implied by waypoint spacing.
type controller struct {
	bev bev.Config
	// stoppedFor accumulates full-stop time for deadlock-breaking creep.
	stoppedFor float64
	// prevYawRate smooths steering across frames (the model's per-frame
	// waypoint jitter would otherwise wobble the car).
	prevYawRate float64
}

func newController(b bev.Config) *controller {
	return &controller{bev: b}
}

// Control limits for the testing autopilot.
const (
	maxYawRate  = 1.5  // rad/s
	maxSpeed    = 15.0 // m/s
	ctrlAccel   = 3.0  // m/s²
	ctrlBrake   = 6.0  // m/s²
	minLookAt   = 5.0  // meters: skip waypoints closer than this for steering
	speedPerGap = 1 / world.FrameHorizonStep
)

// step applies one control period.
func (c *controller) step(agent *world.FreeAgent, pred []float64, bevT []uint8, dt float64) {
	// Decode waypoints into ego-frame meters.
	wps := make([]geom.Point, 0, len(pred)/2)
	for i := 0; i+1 < len(pred); i += 2 {
		wps = append(wps, c.bev.DenormalizeWaypoint(pred[i], pred[i+1]))
	}
	if len(wps) == 0 {
		return
	}
	// Pure-pursuit steering: aim at the first waypoint beyond a
	// speed-scaled lookahead and turn along the circle through it.
	lookahead := geom.Clamp(1.2*agent.V, minLookAt, 16)
	target := wps[len(wps)-1]
	for _, wp := range wps {
		if wp.Norm() >= lookahead {
			target = wp
			break
		}
	}
	var yawRate float64
	if dist := target.Norm(); dist > 0.3 {
		curvature := 2 * target.Y / (dist * dist)
		// A floor on the speed keeps the agent able to steer out from a
		// near-standstill.
		yawRate = geom.Clamp(math.Max(agent.V, 2.5)*curvature, -maxYawRate, maxYawRate)
		// Exponential smoothing damps frame-to-frame prediction jitter.
		yawRate = yawSmoothing*c.prevYawRate + (1-yawSmoothing)*yawRate
		c.prevYawRate = yawRate
		agent.Heading = geom.WrapAngle(agent.Heading + yawRate*dt)
	}

	// Speed from first-waypoint spacing: collapsed waypoints mean "stop".
	desiredSpeed := geom.Clamp(wps[0].Norm()*speedPerGap, 0, maxSpeed)
	// Lateral-acceleration limit: the platform caps speed in sharp
	// maneuvers (a_lat = v·ω), exactly like a real vehicle's stability
	// control.
	if math.Abs(yawRate) > 0.15 {
		desiredSpeed = math.Min(desiredSpeed, maxLatAccel/math.Abs(yawRate))
	}
	// Emergency-brake safety layer: MSE-trained imitation regresses toward
	// mean speeds and brakes too softly for full stops, so the vehicle
	// platform adds automatic emergency braking — standard equipment on any
	// modern car. It reads only the BEV the model itself sees, and applies
	// identically under every training protocol, so comparisons are fair.
	if gap := c.nearestObstacleAhead(bevT); gap < aebRange {
		// Physics-based envelope: the speed from which a comfortable
		// braking rate can still stop before the obstacle.
		allowed := math.Sqrt(2 * aebDecel * math.Max(0, gap-aebStopGap))
		desiredSpeed = math.Min(desiredSpeed, allowed)
		// Deadlock breaking, mirroring the routed vehicles: after a long
		// full stop with nothing touching, creep so head-on standoffs
		// resolve instead of timing out.
		if desiredSpeed <= 0 && agent.V < 0.1 {
			c.stoppedFor += dt
			if c.stoppedFor > aebPatience && gap > 3.0 {
				desiredSpeed = aebCreep
			}
		} else {
			c.stoppedFor = 0
		}
	}
	if desiredSpeed > agent.V {
		agent.V = math.Min(desiredSpeed, agent.V+ctrlAccel*dt)
	} else {
		agent.V = math.Max(desiredSpeed, agent.V-ctrlBrake*dt)
	}
	dir := geom.Pt(math.Cos(agent.Heading), math.Sin(agent.Heading))
	agent.Pos = agent.Pos.Add(dir.Scale(agent.V * dt))
}

// AEB parameters: the safety layer begins limiting speed when an obstacle
// cell appears within aebRange ahead in the ego lane corridor and enforces a
// full stop at aebStopGap.
const (
	aebRange    = 26.0
	aebStopGap  = 4.0
	aebDecel    = 4.5
	aebHalfLat  = 2.2
	aebPatience = 6.0
	aebCreep    = 1.2
	// maxLatAccel caps v·ω during maneuvers (m/s²).
	maxLatAccel = 4.0
	// yawSmoothing is the EMA factor on the steering command. Zero means
	// no smoothing: lag at corner entry costs more than jitter does.
	yawSmoothing = 0.0
)

// nearestObstacleAhead scans the BEV's vehicle and pedestrian channels for
// the closest marked cell in the forward ego-lane corridor.
func (c *controller) nearestObstacleAhead(bevT []uint8) float64 {
	cfg := c.bev
	plane := cfg.Height * cfg.Width
	cell := cfg.CellSize()
	halfWidth := float64(cfg.Width) / 2 * cell
	best := math.Inf(1)
	for _, ch := range []int{bev.ChannelVehicles, bev.ChannelPedestrians} {
		for row := 0; row < cfg.Height; row++ {
			fwd := cfg.Range - (float64(row)+0.5)*cell
			if fwd >= best || fwd > aebRange {
				continue
			}
			for col := 0; col < cfg.Width; col++ {
				if bevT[ch*plane+row*cfg.Width+col] == 0 {
					continue
				}
				lat := -halfWidth + (float64(col)+0.5)*cell
				if math.Abs(lat) <= aebHalfLat {
					best = fwd
					break
				}
			}
		}
	}
	return best
}

// ProbeSet builds a held-out evaluation set for loss curves: frames
// collected by fresh expert vehicles on the map, disjoint from any training
// run that uses a different seed.
func ProbeSet(m *world.Map, bevCfg bev.Config, numWaypoints, frames int, seed uint64) ([]dataset.Weighted, error) {
	rng := simrand.New(seed)
	w, err := world.New(m, world.SpawnConfig{Experts: 4, BackgroundCars: 12, Pedestrians: 40}, rng)
	if err != nil {
		return nil, fmt.Errorf("eval: building probe world: %w", err)
	}
	ras := bev.NewRasterizer(bevCfg, m)
	perVehicle := (frames + len(w.Experts) - 1) / len(w.Experts)
	sets := world.CollectDataset(w, ras, numWaypoints, perVehicle, 0.5)
	var out []dataset.Weighted
	for _, ds := range sets {
		out = append(out, ds.Items()...)
	}
	if len(out) > frames {
		out = out[:frames]
	}
	return out, nil
}
