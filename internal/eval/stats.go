package eval

import (
	"fmt"
	"math"

	"lbchat/internal/world"
)

// DrivingStats aggregates trial outcomes beyond the headline success rate —
// the "other metrics for evaluating a driving model" the paper leaves to
// future work (§IV-D). Progress and speed come from the trial reports, so
// the statistics cost nothing extra to collect.
type DrivingStats struct {
	Trials     int
	Successes  int
	Collisions int
	OffRoute   int
	Timeouts   int
	// PedestrianHits and VehicleHits split the collisions by victim.
	PedestrianHits int
	VehicleHits    int
	// MeanProgress is the mean fraction of the route completed at
	// termination (1 for successes).
	MeanProgress float64
	// MeanSpeed is the mean effective speed over completed distance (m/s).
	MeanSpeed float64
}

// SuccessRate returns the success percentage in [0, 100].
func (s DrivingStats) SuccessRate() float64 {
	if s.Trials == 0 {
		return math.NaN()
	}
	return 100 * float64(s.Successes) / float64(s.Trials)
}

// String renders a one-line summary.
func (s DrivingStats) String() string {
	return fmt.Sprintf("%d trials: %.0f%% success, %d collisions (%d ped/%d veh), %d off-route, %d timeouts, %.0f%% mean progress, %.1f m/s",
		s.Trials, s.SuccessRate(), s.Collisions, s.PedestrianHits, s.VehicleHits,
		s.OffRoute, s.Timeouts, 100*s.MeanProgress, s.MeanSpeed)
}

// RunStats runs trials of a condition (cycling through its routes) and
// aggregates full driving statistics.
func (ev *Evaluator) RunStats(policy Driver, cond Condition, trials int, seed uint64) DrivingStats {
	routes := ev.Suite.Routes[cond]
	var out DrivingStats
	if len(routes) == 0 || trials <= 0 {
		return out
	}
	var progressAcc, speedAcc float64
	speedSamples := 0
	for i := 0; i < trials; i++ {
		route := routes[i%len(routes)]
		s0 := math.Min(12, route.Length()/4)
		agent := &world.FreeAgent{Pos: route.PosAt(s0), Heading: route.HeadingAt(s0)}
		rep := ev.RunTrialReport(policy, cond, route, seed+uint64(i)*7919, agent)
		out.Trials++
		switch rep.Outcome {
		case OutcomeSuccess:
			out.Successes++
		case OutcomeCollision:
			out.Collisions++
			if rep.HitKind == "pedestrian" {
				out.PedestrianHits++
			} else {
				out.VehicleHits++
			}
		case OutcomeOffRoad:
			out.OffRoute++
		case OutcomeTimeout:
			out.Timeouts++
		}
		if rep.RouteLength > 0 {
			frac := rep.Arc / rep.RouteLength
			if rep.Outcome == OutcomeSuccess {
				frac = 1
			}
			progressAcc += math.Min(frac, 1)
		}
		if rep.Time > 1 {
			speedAcc += rep.Arc / rep.Time
			speedSamples++
		}
	}
	out.MeanProgress = progressAcc / float64(out.Trials)
	if speedSamples > 0 {
		out.MeanSpeed = speedAcc / float64(speedSamples)
	}
	return out
}
