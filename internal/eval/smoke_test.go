package eval_test

import (
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/eval"
	"lbchat/internal/model"
	"lbchat/internal/simrand"
	"lbchat/internal/world"
)

// TestTrainedBeatsUntrained is the end-to-end check of the online
// evaluation: a model trained on expert data must clearly out-drive an
// untrained one on traffic-free conditions.
func TestTrainedBeatsUntrained(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop driving eval is slow")
	}
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	rng := simrand.New(11)
	w, err := world.New(m, world.SpawnConfig{Experts: 6, BackgroundCars: 20, Pedestrians: 60}, rng)
	if err != nil {
		t.Fatalf("world.New: %v", err)
	}
	mcfg := model.DefaultConfig()
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	datasets := world.CollectDataset(w, ras, mcfg.NumWaypoints, 900, 0.5)
	union := datasets[0]
	for _, d := range datasets[1:] {
		union.Absorb(d, 1)
	}
	trained, err := model.New(mcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	trng := simrand.New(17)
	for step := 0; step < 2500; step++ {
		trained.TrainStep(union.SampleBatch(32, trng))
	}
	untrained, _ := model.New(mcfg, 3)

	suite, err := eval.BuildSuite(m, eval.SuiteConfig{RoutesPerCondition: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.NewEvaluator(suite)
	for _, cond := range []eval.Condition{eval.CondStraight, eval.CondOneTurn} {
		good := ev.SuccessRate(trained, cond, 10, 1000)
		bad := ev.SuccessRate(untrained, cond, 10, 1000)
		t.Logf("%v: trained %.0f%% vs untrained %.0f%%", cond, good, bad)
		if good <= bad {
			t.Errorf("%v: trained (%.0f%%) not better than untrained (%.0f%%)", cond, good, bad)
		}
		if good < 60 {
			t.Errorf("%v: trained model only %.0f%%", cond, good)
		}
	}
}
