package eval_test

import (
	"testing"

	"lbchat/internal/bev"
	"lbchat/internal/dataset"
	"lbchat/internal/eval"
	"lbchat/internal/geom"
	"lbchat/internal/world"
)

// oracleDriver emits ground-truth waypoints computed from the live route
// and agent state, bypassing the learned model. It validates the
// closed-loop controller and judge independently of model quality.
type oracleDriver struct {
	route *world.Route
	agent *world.FreeAgent
	bev   bev.Config
	speed float64
}

func (o *oracleDriver) Predict(_ []uint8, _, _, _ float64, _ dataset.Command) []float64 {
	// Project the agent onto the route, then emit waypoints spaced at the
	// oracle speed, exactly as expert data collection does.
	arc := 0.0
	best := 1e18
	for s := 0.0; s <= o.route.Length(); s += 2 {
		if d := o.route.PosAt(s).Dist(o.agent.Pos); d < best {
			best, arc = d, s
		}
	}
	frame := o.agent.Frame()
	out := make([]float64, 0, 10)
	for i := 1; i <= 5; i++ {
		wp := o.route.PosAt(arc + o.speed*world.FrameHorizonStep*float64(i))
		local := frame.ToLocal(wp)
		x, y := o.bev.NormalizeWaypoint(local)
		out = append(out, x, y)
	}
	return out
}

// TestOracleDriverSucceeds drives ground-truth waypoints through the
// controller on every condition's first route with no traffic: the
// controller and judge must let a perfect driver through.
func TestOracleDriverSucceeds(t *testing.T) {
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	suite, err := eval.BuildSuite(m, eval.SuiteConfig{RoutesPerCondition: 4, Seed: 5})
	if err != nil {
		t.Fatalf("BuildSuite: %v", err)
	}
	ev := eval.NewEvaluator(suite)
	for _, cond := range []eval.Condition{eval.CondStraight, eval.CondOneTurn, eval.CondNaviEmpty} {
		for ri, route := range suite.Routes[cond] {
			oracle := &oracleDriver{route: route, bev: ev.BEV, speed: 7}
			// RunTrial needs the agent pointer before it exists; replicate
			// its wiring through a tiny shim: the evaluator exposes the
			// agent via the driver's first Predict call. Instead, run the
			// trial with a fresh agent bound through the suite helper.
			outcome := runOracleTrial(ev, oracle, cond, route, uint64(100+ri))
			if outcome != eval.OutcomeSuccess {
				t.Errorf("%v route %d: oracle got %v, want success (len %.0f m, turns %d)",
					cond, ri, outcome, route.Length(), route.NumTurns())
			}
		}
	}
}

// runOracleTrial wires the oracle to the trial's live agent: it creates the
// agent the same way RunTrial does, hands it to the oracle, then delegates.
func runOracleTrial(ev *eval.Evaluator, oracle *oracleDriver, cond eval.Condition, route *world.Route, seed uint64) eval.Outcome {
	agent := &world.FreeAgent{Pos: route.PosAt(0), Heading: route.HeadingAt(0)}
	oracle.agent = agent
	return ev.RunTrialWithAgent(oracle, cond, route, seed, agent)
}

var _ = geom.Point{}
