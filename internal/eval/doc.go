// Package eval implements the paper's online evaluation (§IV-D): a trained
// model is deployed on a testing autopilot that navigates predefined routes
// under the CARLA-benchmark-style conditions — Straight, One Turn, and full
// navigation with empty, normal, and dense traffic — and the driving
// success rate is the fraction of trials that reach the destination within
// a time budget without collisions or leaving the road.
package eval
