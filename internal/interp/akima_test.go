package interp

import (
	"math"
	"testing"
)

func TestAkimaInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 2, 5, 4}
	a, err := NewAkima(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := a.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestAkimaExactOnLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 5, 9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x - 3
	}
	a, err := NewAkima(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := -1.0; x <= 10; x += 0.37 {
		want := 2*x - 3
		if got := a.Eval(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("linear Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestAkimaSortsInput(t *testing.T) {
	a, err := NewAkima([]float64{3, 1, 2}, []float64{9, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Eval(2); math.Abs(got-4) > 1e-9 {
		t.Errorf("Eval(2) = %v after sorting", got)
	}
	knots := a.Knots()
	if knots[0] != 1 || knots[2] != 3 {
		t.Errorf("knots not sorted: %v", knots)
	}
}

func TestAkimaRejectsBadInput(t *testing.T) {
	if _, err := NewAkima([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewAkima([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewAkima([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("duplicate x accepted")
	}
}

func TestAkimaNoOvershootOnStep(t *testing.T) {
	// Akima's method is famous for not oscillating on step-like data the
	// way global cubic splines do: between flat knots the curve stays flat.
	xs := []float64{0, 1, 2, 3, 4, 5, 6}
	ys := []float64{0, 0, 0, 1, 1, 1, 1}
	a, err := NewAkima(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 2.0; x += 0.1 {
		if v := a.Eval(x); math.Abs(v) > 1e-9 {
			t.Errorf("flat region Eval(%v) = %v, want 0", x, v)
		}
	}
	for x := 4.0; x <= 6.0; x += 0.1 {
		if v := a.Eval(x); math.Abs(v-1) > 1e-9 {
			t.Errorf("flat region Eval(%v) = %v, want 1", x, v)
		}
	}
}

func TestAkimaMonotoneDataStaysBounded(t *testing.T) {
	xs := []float64{0, 0.1, 0.3, 0.6, 1.0}
	ys := []float64{5, 3, 1.5, 1.1, 1.0}
	a, err := NewAkima(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 1.0; x += 0.01 {
		v := a.Eval(x)
		if v < 0.5 || v > 5.5 {
			t.Errorf("Eval(%v) = %v escapes the data envelope", x, v)
		}
	}
}

func TestAkimaTwoPointLinear(t *testing.T) {
	a, err := NewAkima([]float64{0, 2}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Eval(1); math.Abs(got-3) > 1e-9 {
		t.Errorf("midpoint = %v, want 3", got)
	}
}

func TestAkimaExtrapolatesLinearly(t *testing.T) {
	a, err := NewAkima([]float64{0, 1, 2}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Eval(4); math.Abs(got-4) > 1e-9 {
		t.Errorf("right extrapolation = %v", got)
	}
	if got := a.Eval(-2); math.Abs(got+2) > 1e-9 {
		t.Errorf("left extrapolation = %v", got)
	}
}

func TestAkimaKnotInterpolationProperty(t *testing.T) {
	// For arbitrary strictly increasing xs and bounded ys, the spline must
	// pass through every knot exactly.
	for seed := 0; seed < 30; seed++ {
		n := 3 + seed%6
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + float64(seed%3)*0.25
			ys[i] = math.Sin(float64(seed+i)) * 10
		}
		a, err := NewAkima(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if got := a.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-9 {
				t.Fatalf("seed %d: Eval(%v) = %v, want %v", seed, xs[i], got, ys[i])
			}
		}
	}
}
