// Package interp implements Akima's interpolation and smooth curve fitting
// (Akima, JACM 1970), the method the paper uses (its reference [21]) to fit
// the mapping function φ between a model's compression level ψ and its
// resulting loss on a coreset.
//
// Akima splines are local: each interval's cubic depends only on nearby
// points, so one noisy sample does not ripple across the whole curve —
// well-suited to the small, irregular (ψ, loss) sample sets vehicles collect.
package interp
