package interp

import (
	"fmt"
	"math"
	"sort"
)

// Akima is a fitted Akima spline.
type Akima struct {
	xs, ys []float64
	slopes []float64 // spline slope t_i at each knot
}

// NewAkima fits an Akima spline through the given points. At least two
// points are required; x values must be strictly increasing after sorting
// (duplicates are rejected).
func NewAkima(xs, ys []float64) (*Akima, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("interp: %d xs vs %d ys", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return nil, fmt.Errorf("interp: need at least 2 points, got %d", n)
	}
	// Sort points by x, keeping pairs together.
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	sx := make([]float64, n)
	sy := make([]float64, n)
	for i, p := range pts {
		sx[i] = p.x
		sy[i] = p.y
	}
	for i := 1; i < n; i++ {
		if sx[i] == sx[i-1] {
			return nil, fmt.Errorf("interp: duplicate x value %g", sx[i])
		}
	}

	// Segment slopes m_i, extended by two phantom slopes at each end per
	// Akima's prescription.
	m := make([]float64, n+3) // m[2..n] are real; m[0],m[1],m[n+1],m[n+2] extrapolated
	for i := 0; i < n-1; i++ {
		m[i+2] = (sy[i+1] - sy[i]) / (sx[i+1] - sx[i])
	}
	if n == 2 {
		// A two-point fit is a line: all phantom slopes equal the one real
		// slope (the general formulas below would be circular).
		m[0], m[1], m[3], m[4] = m[2], m[2], m[2], m[2]
	} else {
		m[1] = 2*m[2] - m[3]
		m[0] = 2*m[1] - m[2]
		m[n+1] = 2*m[n] - m[n-1]
		m[n+2] = 2*m[n+1] - m[n]
	}

	slopes := make([]float64, n)
	for i := 0; i < n; i++ {
		w1 := math.Abs(m[i+3] - m[i+2]) // |m_{i+1} - m_i|
		w2 := math.Abs(m[i+1] - m[i])   // |m_{i-1} - m_{i-2}|
		if w1+w2 == 0 {
			slopes[i] = (m[i+1] + m[i+2]) / 2
		} else {
			slopes[i] = (w1*m[i+1] + w2*m[i+2]) / (w1 + w2)
		}
	}
	return &Akima{xs: sx, ys: sy, slopes: slopes}, nil
}

// Eval evaluates the spline at x. Outside the knot range the spline
// extrapolates linearly from the boundary slope.
func (a *Akima) Eval(x float64) float64 {
	n := len(a.xs)
	if x <= a.xs[0] {
		return a.ys[0] + a.slopes[0]*(x-a.xs[0])
	}
	if x >= a.xs[n-1] {
		return a.ys[n-1] + a.slopes[n-1]*(x-a.xs[n-1])
	}
	// Binary search for the interval with xs[i] <= x < xs[i+1].
	i := sort.SearchFloat64s(a.xs, x)
	if i > 0 && (i == n || a.xs[i] != x) {
		i--
	}
	h := a.xs[i+1] - a.xs[i]
	t := (x - a.xs[i]) / h
	y0, y1 := a.ys[i], a.ys[i+1]
	t0, t1 := a.slopes[i]*h, a.slopes[i+1]*h
	// Cubic Hermite basis.
	t2 := t * t
	t3 := t2 * t
	return y0*(2*t3-3*t2+1) + t0*(t3-2*t2+t) + y1*(-2*t3+3*t2) + t1*(t3-t2)
}

// Knots returns the spline's sorted x knots.
func (a *Akima) Knots() []float64 {
	out := make([]float64, len(a.xs))
	copy(out, a.xs)
	return out
}
