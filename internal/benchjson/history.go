package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// HistoryEntry is one recorded benchmark run in a JSONL history file. The
// label identifies the run (a PR tag, commit, or "local"); Benchmarks holds
// the full result set of that run.
type HistoryEntry struct {
	Label      string `json:"label"`
	Benchmarks File   `json:"benchmarks"`
}

// LoadHistory reads a JSONL history file, one HistoryEntry per line, in
// recorded order. A missing file is an empty history, not an error, so the
// first append needs no bootstrap step.
func LoadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()

	var entries []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// AppendHistory appends one run to the JSONL history file, creating it if
// needed. Each entry is a single compact JSON line so the file diffs and
// concatenates cleanly across CI artifact merges.
func AppendHistory(path, label string, results File) error {
	data, err := json.Marshal(HistoryEntry{Label: label, Benchmarks: results})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TrendRow is the ns/op trajectory of one benchmark across history entries.
// Vals is parallel to the entry list handed to Trend; entries missing the
// benchmark hold NaN-free zero values with Present false at that index.
type TrendRow struct {
	Name    string
	Vals    []float64
	Present []bool
}

// Trend extracts the per-entry ns/op series of every benchmark whose name
// contains one of the patterns (all benchmarks when patterns is empty),
// sorted by name. Use it to render "is this hot path drifting?" reports
// from a history file.
func Trend(entries []HistoryEntry, patterns []string) []TrendRow {
	match := func(name string) bool {
		if len(patterns) == 0 {
			return true
		}
		for _, p := range patterns {
			if p != "" && strings.Contains(name, p) {
				return true
			}
		}
		return false
	}
	names := map[string]bool{}
	for _, e := range entries {
		for name := range e.Benchmarks {
			if match(name) {
				names[name] = true
			}
		}
	}
	rows := make([]TrendRow, 0, len(names))
	for name := range names {
		row := TrendRow{
			Name:    name,
			Vals:    make([]float64, len(entries)),
			Present: make([]bool, len(entries)),
		}
		for i, e := range entries {
			if res, ok := e.Benchmarks[name]; ok {
				row.Vals[i] = res.NsOp
				row.Present[i] = true
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}
