package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds the standard metrics of one benchmark.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// File maps benchmark names to their metrics. Names carry the full sub-
// benchmark path (e.g. "BenchmarkCandidatePairs/N=256/index") with the
// trailing -GOMAXPROCS suffix stripped.
type File map[string]Result

// trimProcSuffix drops the "-8"-style GOMAXPROCS suffix go test appends to
// benchmark names, so files recorded on machines with different core
// counts stay comparable.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Parse reads `go test -bench -benchmem` output (possibly spanning several
// packages) and extracts every benchmark line that reports ns/op. Custom
// metrics from b.ReportMetric are skipped; a benchmark run twice keeps its
// last result. Parse never fails on non-benchmark lines — headers, PASS/ok
// trailers and build noise are ignored — but reports an unparsable metric
// value on an otherwise well-formed benchmark line.
func Parse(r io.Reader) (File, error) {
	out := File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		var res Result
		seenNs := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad %s value %q", f[0], f[i+1], f[i])
			}
			switch f[i+1] {
			case "ns/op":
				res.NsOp = v
				seenNs = true
			case "B/op":
				res.BOp = v
			case "allocs/op":
				res.AllocsOp = v
			}
		}
		if seenNs {
			out[trimProcSuffix(f[0])] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Load reads a JSON file previously written by Marshal (or cmd/bench-json).
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Marshal renders the file as indented JSON with a trailing newline. Go
// sorts map keys during marshalling, so output is byte-stable for a given
// set of results.
func (f File) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Delta is the ns/op movement of one benchmark between two files.
type Delta struct {
	Name     string
	Old, New float64 // ns/op
	Pct      float64 // signed percent change; positive is slower
	Hot      bool    // matched a hot-path pattern
}

// Compare diffs baseline against candidate. Hot patterns are matched as
// substrings of the benchmark name; a hot benchmark counts as a regression
// when its ns/op grows by more than limitPct percent, or when it exists in
// the baseline but vanished from the candidate. Non-hot benchmarks are
// reported but never fail the comparison. Deltas come back sorted by name.
func Compare(baseline, candidate File, hot []string, limitPct float64) (deltas []Delta, regressions []string) {
	isHot := func(name string) bool {
		for _, h := range hot {
			if h != "" && strings.Contains(name, h) {
				return true
			}
		}
		return false
	}
	for name, old := range baseline {
		d := Delta{Name: name, Old: old.NsOp, Hot: isHot(name)}
		cur, ok := candidate[name]
		if !ok {
			if d.Hot {
				regressions = append(regressions, fmt.Sprintf("%s: missing from candidate", name))
			}
			continue
		}
		d.New = cur.NsOp
		if old.NsOp > 0 {
			d.Pct = (cur.NsOp - old.NsOp) / old.NsOp * 100
		}
		deltas = append(deltas, d)
		if d.Hot && d.Pct > limitPct {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.1f%% > %+.1f%%)",
				name, d.Old, d.New, d.Pct, limitPct))
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(regressions)
	return deltas, regressions
}
