package benchjson

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: lbchat/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCandidatePairs/N=256/index-8         	    6969	    160672 ns/op	      1384 pairs	  126952 B/op	      13 allocs/op
BenchmarkCandidatePairs/N=256/brute-8         	    2646	    445509 ns/op	      1384 pairs	  126952 B/op	      13 allocs/op
PASS
ok  	lbchat/internal/core	3.587s
pkg: lbchat/internal/world
BenchmarkWorldTick/N=256/index-8      	     750	    531681 ns/op	   15832 B/op	      17 allocs/op
BenchmarkNoMem-16	 1000000	      1042 ns/op
PASS
ok  	lbchat/internal/world	47.959s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := File{
		"BenchmarkCandidatePairs/N=256/index": {NsOp: 160672, BOp: 126952, AllocsOp: 13},
		"BenchmarkCandidatePairs/N=256/brute": {NsOp: 445509, BOp: 126952, AllocsOp: 13},
		"BenchmarkWorldTick/N=256/index":      {NsOp: 531681, BOp: 15832, AllocsOp: 17},
		"BenchmarkNoMem":                      {NsOp: 1042},
	}
	if len(f) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(f), len(want), f)
	}
	for name, res := range want {
		if f[name] != res {
			t.Errorf("%s = %+v, want %+v", name, f[name], res)
		}
	}
}

func TestParseBadValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 10 oops ns/op\n")); err == nil {
		t.Fatal("Parse accepted an unparsable ns/op value")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkFoo-8", "BenchmarkFoo"},
		{"BenchmarkFoo-128", "BenchmarkFoo"},
		{"BenchmarkFoo/N=16/index-4", "BenchmarkFoo/N=16/index"},
		{"BenchmarkFoo", "BenchmarkFoo"},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar"},
		{"BenchmarkFoo-", "BenchmarkFoo-"},
	}
	for _, c := range cases {
		if got := trimProcSuffix(c.in); got != c.want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := File{
		"BenchmarkCandidatePairs/N=256/index": {NsOp: 100},
		"BenchmarkWorldTick/N=256/index":      {NsOp: 200},
		"BenchmarkBEV/N=256/index":            {NsOp: 50},
		"BenchmarkGone/hot":                   {NsOp: 10},
	}
	candidate := File{
		"BenchmarkCandidatePairs/N=256/index": {NsOp: 120}, // +20%: hot regression
		"BenchmarkWorldTick/N=256/index":      {NsOp: 210}, // +5%: within limit
		"BenchmarkBEV/N=256/index":            {NsOp: 500}, // +900% but not hot
	}
	hot := []string{"CandidatePairs", "WorldTick", "Gone"}
	deltas, regressions := Compare(baseline, candidate, hot, 15)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3: %v", len(deltas), deltas)
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i-1].Name >= deltas[i].Name {
			t.Fatalf("deltas not sorted by name: %v", deltas)
		}
	}
	if len(regressions) != 2 {
		t.Fatalf("got %d regressions, want 2 (hot slowdown + hot missing): %v", len(regressions), regressions)
	}
	for _, r := range regressions {
		if !strings.Contains(r, "CandidatePairs") && !strings.Contains(r, "Gone") {
			t.Errorf("unexpected regression entry: %s", r)
		}
	}

	if _, regressions := Compare(baseline, candidate, nil, 15); len(regressions) != 0 {
		t.Errorf("no hot patterns should mean no failures, got %v", regressions)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := File{"BenchmarkFoo": {NsOp: 1.5, BOp: 64, AllocsOp: 2}}
	data, err := f.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back["BenchmarkFoo"] != f["BenchmarkFoo"] {
		t.Fatalf("round trip: %+v != %+v", back["BenchmarkFoo"], f["BenchmarkFoo"])
	}
}
