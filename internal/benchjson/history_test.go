package benchjson

import (
	"os"
	"path/filepath"
	"testing"
)

func TestHistoryAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")

	if entries, err := LoadHistory(path); err != nil || entries != nil {
		t.Fatalf("missing file should load as empty history, got %v, %v", entries, err)
	}

	runs := []HistoryEntry{
		{Label: "pr4", Benchmarks: File{"BenchmarkA": {NsOp: 100, BOp: 8, AllocsOp: 1}}},
		{Label: "pr6", Benchmarks: File{"BenchmarkA": {NsOp: 90}, "BenchmarkB": {NsOp: 5}}},
	}
	for _, r := range runs {
		if err := AppendHistory(path, r.Label, r.Benchmarks); err != nil {
			t.Fatalf("AppendHistory(%s): %v", r.Label, err)
		}
	}

	entries, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	if len(entries) != len(runs) {
		t.Fatalf("loaded %d entries, want %d", len(entries), len(runs))
	}
	for i, e := range entries {
		if e.Label != runs[i].Label {
			t.Errorf("entry %d label = %q, want %q", i, e.Label, runs[i].Label)
		}
		if len(e.Benchmarks) != len(runs[i].Benchmarks) {
			t.Errorf("entry %d has %d benchmarks, want %d", i, len(e.Benchmarks), len(runs[i].Benchmarks))
		}
		for name, want := range runs[i].Benchmarks {
			if e.Benchmarks[name] != want {
				t.Errorf("entry %d %s = %+v, want %+v", i, name, e.Benchmarks[name], want)
			}
		}
	}
}

func TestHistoryToleratesBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	content := `{"label":"a","benchmarks":{"BenchmarkX":{"ns_op":1,"b_op":0,"allocs_op":0}}}

{"label":"b","benchmarks":{}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	if len(entries) != 2 || entries[0].Label != "a" || entries[1].Label != "b" {
		t.Fatalf("unexpected entries: %+v", entries)
	}
}

func TestHistoryRejectsCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := os.WriteFile(path, []byte("{\"label\":\"a\",\"benchmarks\":{}}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(path); err == nil {
		t.Fatal("LoadHistory accepted a corrupt line")
	}
}

func TestTrend(t *testing.T) {
	entries := []HistoryEntry{
		{Label: "r1", Benchmarks: File{
			"BenchmarkHot/N=16": {NsOp: 100},
			"BenchmarkCold":     {NsOp: 7},
		}},
		{Label: "r2", Benchmarks: File{
			"BenchmarkHot/N=16": {NsOp: 80},
			"BenchmarkHot/N=64": {NsOp: 400},
		}},
	}

	rows := Trend(entries, []string{"Hot"})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(rows), rows)
	}
	if rows[0].Name != "BenchmarkHot/N=16" || rows[1].Name != "BenchmarkHot/N=64" {
		t.Fatalf("rows not sorted by name: %+v", rows)
	}
	if rows[0].Vals[0] != 100 || rows[0].Vals[1] != 80 || !rows[0].Present[0] || !rows[0].Present[1] {
		t.Errorf("N=16 series wrong: %+v", rows[0])
	}
	if rows[1].Present[0] || !rows[1].Present[1] || rows[1].Vals[1] != 400 {
		t.Errorf("N=64 should be absent in r1, 400 in r2: %+v", rows[1])
	}

	all := Trend(entries, nil)
	if len(all) != 3 {
		t.Fatalf("empty patterns should match all benchmarks, got %d rows", len(all))
	}
}
