// Package benchjson parses `go test -bench -benchmem` output into a stable
// JSON document and diffs two such documents for performance regressions.
//
// The JSON form is a map from benchmark name (GOMAXPROCS suffix stripped,
// so files compare across machines) to the three standard metrics ns/op,
// B/op and allocs/op. cmd/bench-json produces these files; cmd/bench-compare
// consumes a baseline and a candidate and fails when a named hot path slows
// down past a threshold, which is how CI tracks the spatial-index fast
// paths without blocking on benchmark noise elsewhere.
package benchjson
