package faults

import (
	"fmt"

	"lbchat/internal/simrand"
)

// Config parameterizes one fault-injection regime. The zero value disables
// every fault class, draws no randomness, and leaves runs bit-identical to
// a build without the faults layer.
type Config struct {
	// BurstPerHour is the expected number of burst-loss episodes per hour
	// on each vehicle pair's link; 0 disables bursts.
	BurstPerHour float64
	// BurstMeanSecs is the mean episode duration (s).
	BurstMeanSecs float64
	// BurstAddedPER is the packet-error rate added to the distance-loss
	// table while an episode is active (clamped to 1 at the radio).
	BurstAddedPER float64

	// TruncProb is the probability that an initiated chat's exchange
	// window is cut short; 0 disables window truncation.
	TruncProb float64
	// TruncKeepMax bounds the surviving window: a truncated window keeps a
	// Uniform(0, TruncKeepMax) fraction of its length.
	TruncKeepMax float64

	// ChurnPerHour is the expected number of departures per hour per
	// vehicle; 0 disables churn.
	ChurnPerHour float64
	// AwayMeanSecs is the mean absence duration (s) of a departed vehicle.
	AwayMeanSecs float64

	// CorruptProb is the probability that a fully delivered coreset
	// payload arrives with only a prefix of its frames intact.
	CorruptProb float64

	// MaxRetries bounds the retry-with-backoff recovery for loss-truncated
	// transfers inside a contact window (recovery, not a fault: it is only
	// active while faults are enabled).
	MaxRetries int
	// RetryBackoffSecs is the first retry's backoff (s); it doubles per
	// attempt and is spent from the transfer's window.
	RetryBackoffSecs float64
}

// Enabled reports whether any fault class is configured. The engine skips
// every injection hook when false.
func (c Config) Enabled() bool { return c != Config{} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.BurstPerHour < 0 || c.BurstMeanSecs < 0 || c.BurstAddedPER < 0 || c.BurstAddedPER > 1:
		return fmt.Errorf("faults: invalid burst parameters (%g/h, %gs, +%g PER)",
			c.BurstPerHour, c.BurstMeanSecs, c.BurstAddedPER)
	case c.BurstPerHour > 0 && (c.BurstMeanSecs <= 0 || c.BurstAddedPER <= 0):
		return fmt.Errorf("faults: bursts enabled but duration %gs / added PER %g not positive",
			c.BurstMeanSecs, c.BurstAddedPER)
	case c.TruncProb < 0 || c.TruncProb > 1 || c.TruncKeepMax < 0 || c.TruncKeepMax > 1:
		return fmt.Errorf("faults: invalid truncation parameters (p=%g, keep≤%g)", c.TruncProb, c.TruncKeepMax)
	case c.ChurnPerHour < 0 || c.AwayMeanSecs < 0:
		return fmt.Errorf("faults: invalid churn parameters (%g/h, %gs away)", c.ChurnPerHour, c.AwayMeanSecs)
	case c.ChurnPerHour > 0 && c.AwayMeanSecs <= 0:
		return fmt.Errorf("faults: churn enabled but absence duration %gs not positive", c.AwayMeanSecs)
	case c.CorruptProb < 0 || c.CorruptProb > 1:
		return fmt.Errorf("faults: invalid corruption probability %g", c.CorruptProb)
	case c.MaxRetries < 0 || c.RetryBackoffSecs < 0:
		return fmt.Errorf("faults: invalid retry parameters (%d retries, %gs backoff)", c.MaxRetries, c.RetryBackoffSecs)
	}
	return nil
}

// Light returns a mild fault regime: occasional short loss bursts, rare
// window cuts, light churn.
func Light() Config {
	return Config{
		BurstPerHour: 6, BurstMeanSecs: 20, BurstAddedPER: 0.25,
		TruncProb: 0.1, TruncKeepMax: 0.6,
		ChurnPerHour: 1, AwayMeanSecs: 180,
		CorruptProb: 0.05,
		MaxRetries:  2, RetryBackoffSecs: 0.5,
	}
}

// Heavy returns an aggressive fault regime: frequent deep loss bursts,
// common window cuts, heavy churn, and regular payload corruption.
func Heavy() Config {
	return Config{
		BurstPerHour: 18, BurstMeanSecs: 30, BurstAddedPER: 0.45,
		TruncProb: 0.25, TruncKeepMax: 0.5,
		ChurnPerHour: 3, AwayMeanSecs: 300,
		CorruptProb: 0.15,
		MaxRetries:  2, RetryBackoffSecs: 0.5,
	}
}

// ByName resolves a -faults flag value to a profile: "off" (or empty),
// "light", or "heavy".
func ByName(name string) (Config, error) {
	switch name {
	case "", "off", "none":
		return Config{}, nil
	case "light":
		return Light(), nil
	case "heavy":
		return Heavy(), nil
	}
	return Config{}, fmt.Errorf("faults: unknown profile %q (want off, light, or heavy)", name)
}

// Injector is one run's live fault state. It is created from a dedicated
// simrand stream derived from the run's root seed and must only be touched
// from the engine's serial phases (see the package invariants).
type Injector struct {
	cfg Config
	// root derives per-link and per-vehicle streams; chat serves the
	// serial protocol-path draws (window truncation, corruption).
	root *simrand.Rand
	chat *simrand.Rand

	links map[[2]int]*burstTimeline
	churn []*churnState
}

// NewInjector builds the injector for a fleet of numVehicles from its own
// derived random stream.
func NewInjector(cfg Config, rng *simrand.Rand, numVehicles int) *Injector {
	j := &Injector{
		cfg:   cfg,
		root:  rng,
		chat:  rng.Derive("chat"),
		links: make(map[[2]int]*burstTimeline),
	}
	if cfg.ChurnPerHour > 0 {
		j.churn = make([]*churnState, numVehicles)
		for i := range j.churn {
			r := rng.DeriveIndexed("churn", i)
			j.churn[i] = &churnState{rng: r, nextDepart: r.Exponential(cfg.ChurnPerHour / 3600)}
		}
	}
	return j
}

// Config returns the injector's configuration (retry tuning etc.).
func (j *Injector) Config() Config { return j.cfg }

// burstTimeline is one link's renewal process of loss episodes: exponential
// quiet gaps alternating with exponential burst durations, advanced lazily
// and forward-only.
type burstTimeline struct {
	rng        *simrand.Rand
	start, end float64 // current (or most recent) episode
	next       float64 // start of the episode after it
}

func (tl *burstTimeline) boost(t float64, c Config) float64 {
	for t >= tl.next {
		tl.start = tl.next
		tl.end = tl.start + tl.rng.Exponential(1/c.BurstMeanSecs)
		tl.next = tl.end + tl.rng.Exponential(c.BurstPerHour/3600)
	}
	if t >= tl.start && t < tl.end {
		return c.BurstAddedPER
	}
	return 0
}

// LinkBoost returns the added packet-error rate on the (a, b) link as a
// function of absolute time, for the radio's perturbed-transfer hook, or
// nil when bursts are disabled. Queries on one link must be monotone in
// time; link order does not matter.
func (j *Injector) LinkBoost(a, b int) func(t float64) float64 {
	if j.cfg.BurstPerHour <= 0 || j.cfg.BurstAddedPER <= 0 {
		return nil
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	tl, ok := j.links[key]
	if !ok {
		tl = &burstTimeline{rng: j.root.Derive(fmt.Sprintf("burst#%d#%d", a, b))}
		tl.start, tl.end = -1, -1
		tl.next = tl.rng.Exponential(j.cfg.BurstPerHour / 3600)
		j.links[key] = tl
	}
	return func(t float64) float64 { return tl.boost(t, j.cfg) }
}

// churnState is one vehicle's depart/rejoin renewal process.
type churnState struct {
	rng        *simrand.Rand
	nextDepart float64
	rejoinAt   float64 // 0 while the vehicle is present
}

// ChurnEvent is one churn transition surfaced by Tick for telemetry.
type ChurnEvent struct {
	Vehicle int
	// Rejoin distinguishes a return from a departure.
	Rejoin bool
	// Until is the departure's scheduled rejoin time (absolute, s).
	Until float64
}

// Tick advances churn to virtual time now and returns the transitions that
// fired, in vehicle-index order. Call exactly once per engine tick, from
// the serial phase.
func (j *Injector) Tick(now float64) []ChurnEvent {
	if len(j.churn) == 0 {
		return nil
	}
	var out []ChurnEvent
	for i, cs := range j.churn {
		if cs.rejoinAt > 0 {
			if now >= cs.rejoinAt {
				cs.rejoinAt = 0
				out = append(out, ChurnEvent{Vehicle: i, Rejoin: true})
			}
			continue
		}
		if now >= cs.nextDepart {
			cs.rejoinAt = now + cs.rng.Exponential(1/j.cfg.AwayMeanSecs)
			cs.nextDepart = cs.rejoinAt + cs.rng.Exponential(j.cfg.ChurnPerHour/3600)
			out = append(out, ChurnEvent{Vehicle: i, Until: cs.rejoinAt})
		}
	}
	return out
}

// Away reports whether the vehicle is currently departed (as of the last
// Tick). Departed vehicles neither train nor chat; their model freezes and
// is stale on rejoin.
func (j *Injector) Away(v int) bool {
	if len(j.churn) == 0 {
		return false
	}
	return j.churn[v].rejoinAt > 0
}

// TruncateWindow draws whether a chat's exchange window is cut short and
// returns the surviving window. One serial draw sequence feeds all chats,
// in chat order.
func (j *Injector) TruncateWindow(window float64) (float64, bool) {
	if j.cfg.TruncProb <= 0 || window <= 0 {
		return window, false
	}
	if !j.chat.Bernoulli(j.cfg.TruncProb) {
		return window, false
	}
	return window * j.chat.Uniform(0, j.cfg.TruncKeepMax), true
}

// CorruptPayload draws whether a fully delivered frames-frame coreset
// payload arrives with only a prefix intact, returning the intact count
// (possibly 0). Same serial draw stream as TruncateWindow.
func (j *Injector) CorruptPayload(frames int) (int, bool) {
	if j.cfg.CorruptProb <= 0 || frames <= 0 {
		return frames, false
	}
	if !j.chat.Bernoulli(j.cfg.CorruptProb) {
		return frames, false
	}
	return j.chat.Intn(frames), true
}
