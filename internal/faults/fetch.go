package faults

import (
	"fmt"
	"time"
)

// FetchConfig parameterizes chunk-fetch fault injection at the trace chunk
// server (internal/traceserve): added per-request latency and a
// probability of failing a request outright. It exercises the client's
// retry-with-backoff and the window's adaptive prefetch depth without a
// real degraded network. The zero value disables injection.
//
// Injection is server-side and request-scoped: a lost request surfaces to
// the client as a 503, which the client retries, so — as with every other
// fault class — simulation results stay bit-identical; only fetch timing
// and retry counters change.
type FetchConfig struct {
	// Latency is added to every chunk response before the first body byte.
	Latency time.Duration
	// LossProb is the probability that a chunk request is dropped (served
	// as a 503) instead of answered.
	LossProb float64
	// Seed drives the loss draws; requests are counted, so a fixed seed
	// yields a reproducible loss pattern per server lifetime.
	Seed uint64
}

// Enabled reports whether any fetch fault is configured.
func (c FetchConfig) Enabled() bool { return c.Latency > 0 || c.LossProb > 0 }

// Validate reports configuration errors.
func (c FetchConfig) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("faults: negative fetch latency %v", c.Latency)
	}
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("faults: invalid fetch loss probability %g", c.LossProb)
	}
	return nil
}

// FetchByName resolves a -fetch-faults flag value to a profile: "off" (or
// empty), "slow" (WAN-ish latency), "lossy" (drops without latency), or
// "flaky" (both).
func FetchByName(name string) (FetchConfig, error) {
	switch name {
	case "", "off", "none":
		return FetchConfig{}, nil
	case "slow":
		return FetchConfig{Latency: 20 * time.Millisecond, Seed: 1}, nil
	case "lossy":
		return FetchConfig{LossProb: 0.1, Seed: 1}, nil
	case "flaky":
		return FetchConfig{Latency: 10 * time.Millisecond, LossProb: 0.1, Seed: 1}, nil
	}
	return FetchConfig{}, fmt.Errorf("faults: unknown fetch profile %q (want off, slow, lossy, or flaky)", name)
}
