// Package faults is the deterministic fault-injection layer of the
// simulator: it perturbs the communication substrate with the failure modes
// an opportunistic vehicular network actually exhibits, so the resilience
// logic in internal/core (session resumption, partial-transfer salvage,
// retry-with-backoff) has something real to push against.
//
// Four fault classes are modeled (the taxonomy and the recovery state
// machine are documented in DESIGN.md §9 "Fault model & resilience"):
//
//   - Burst packet loss: per-link episodes that ADD to the distance-based
//     packet-error table while active, driven by an alternating
//     exponential gap/duration renewal process.
//   - Contact-window truncation: a chat's usable exchange window is cut to
//     a random fraction, modeling encounters that break off early.
//   - Vehicle churn: vehicles depart the communication system and rejoin
//     later with their (now stale) frozen model.
//   - Payload corruption: a coreset payload that completed on air arrives
//     with only a prefix of its frames intact.
//
// Key types: Config (one knob set per fault class; the zero value disables
// everything and draws no randomness), the off/light/heavy profiles behind
// the -faults CLI flag (ByName), and Injector, the stateful per-run
// instance the engine consults.
//
// Invariants:
//
//   - Determinism. Every draw comes from simrand streams derived from the
//     engine's root seed: one stream per link for burst timelines, one per
//     vehicle for churn, and one serial "chat" stream for window/corruption
//     draws made on the protocol path. All Injector methods are called only
//     from the engine's serial phases, so the injected fault stream — and
//     therefore the whole run — is bit-identical at any -workers count.
//   - Monotone queries. Burst timelines advance forward only; LinkBoost
//     closures must be queried with non-decreasing times per link, which
//     the engine's monotone virtual clock guarantees.
//   - The zero Config is free: Enabled() is false, the engine skips every
//     hook, and runs behave exactly as if this package did not exist.
package faults
