package faults

import (
	"testing"

	"lbchat/internal/simrand"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !Light().Enabled() || !Heavy().Enabled() {
		t.Error("profiles report disabled")
	}
	if !(Config{MaxRetries: 1}).Enabled() {
		t.Error("any non-zero field should enable the layer")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{{}, Light(), Heavy()} {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{BurstPerHour: -1},
		{BurstAddedPER: 1.5},
		{BurstPerHour: 2}, // bursts on, but no duration/PER
		{TruncProb: 2},
		{TruncKeepMax: -0.1},
		{ChurnPerHour: 1}, // churn on, but no absence duration
		{AwayMeanSecs: -5},
		{CorruptProb: -0.2},
		{MaxRetries: -1},
		{RetryBackoffSecs: -1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "off", "none"} {
		c, err := ByName(name)
		if err != nil || c.Enabled() {
			t.Errorf("ByName(%q) = %+v, %v; want disabled zero config", name, c, err)
		}
	}
	if c, err := ByName("light"); err != nil || c != Light() {
		t.Errorf("ByName(light) = %+v, %v", c, err)
	}
	if c, err := ByName("heavy"); err != nil || c != Heavy() {
		t.Errorf("ByName(heavy) = %+v, %v", c, err)
	}
	if _, err := ByName("catastrophic"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestLinkBoostDeterministicAndSymmetric pins the burst timeline's two
// contracts: the boost sequence on a link is a pure function of the seed
// (two injectors built from identically seeded streams agree at every query
// time), and link order does not matter — (a, b) and (b, a) share one
// timeline.
func TestLinkBoostDeterministicAndSymmetric(t *testing.T) {
	cfg := Heavy()
	j1 := NewInjector(cfg, simrand.New(11).Derive("faults"), 4)
	j2 := NewInjector(cfg, simrand.New(11).Derive("faults"), 4)
	b1 := j1.LinkBoost(2, 0)
	b2 := j2.LinkBoost(0, 2)
	if b1 == nil || b2 == nil {
		t.Fatal("bursts enabled but LinkBoost returned nil")
	}
	sawBurst := false
	for ti := 0; ti < 4000; ti++ {
		now := float64(ti)
		v1, v2 := b1(now), b2(now)
		if v1 != v2 {
			t.Fatalf("t=%v: boost %v vs %v across injectors/link orders", now, v1, v2)
		}
		if v1 != 0 {
			sawBurst = true
			if v1 != cfg.BurstAddedPER {
				t.Fatalf("t=%v: boost %v, want %v", now, v1, cfg.BurstAddedPER)
			}
		}
	}
	if !sawBurst {
		t.Error("no burst episode in over an hour at 18/h")
	}
	// Same injector, same pair again: must reuse the existing timeline, not
	// re-derive and restart it.
	if j1.LinkBoost(0, 2)(3999) != b2(3999) {
		t.Error("re-requested link boost diverges from its timeline")
	}
}

func TestLinkBoostDisabled(t *testing.T) {
	j := NewInjector(Config{TruncProb: 0.5, TruncKeepMax: 0.5}, simrand.New(1), 2)
	if j.LinkBoost(0, 1) != nil {
		t.Error("bursts disabled but LinkBoost returned a hook")
	}
}

// TestChurnTick walks an aggressive churn regime through an hour of ticks
// and checks the state machine: depart and rejoin events alternate per
// vehicle, Away tracks them exactly, and the whole trajectory is a pure
// function of the seed.
func TestChurnTick(t *testing.T) {
	cfg := Config{ChurnPerHour: 30, AwayMeanSecs: 60}
	run := func() []ChurnEvent {
		j := NewInjector(cfg, simrand.New(5).Derive("faults"), 3)
		var all []ChurnEvent
		away := map[int]bool{}
		for ti := 0; ti < 3600; ti++ {
			for _, ev := range j.Tick(float64(ti)) {
				if ev.Rejoin != away[ev.Vehicle] {
					t.Fatalf("t=%d: vehicle %d rejoin=%v while away=%v", ti, ev.Vehicle, ev.Rejoin, away[ev.Vehicle])
				}
				if !ev.Rejoin && ev.Until <= float64(ti) {
					t.Fatalf("t=%d: departure with rejoin time %v in the past", ti, ev.Until)
				}
				away[ev.Vehicle] = !ev.Rejoin
				all = append(all, ev)
			}
			for v := 0; v < 3; v++ {
				if j.Away(v) != away[v] {
					t.Fatalf("t=%d: Away(%d) = %v, want %v", ti, v, j.Away(v), away[v])
				}
			}
		}
		return all
	}
	first := run()
	if len(first) < 4 {
		t.Fatalf("only %d churn events in an hour at 30/h/vehicle", len(first))
	}
	second := run()
	if len(first) != len(second) {
		t.Fatalf("churn not deterministic: %d vs %d events", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("churn event %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestChurnDisabled(t *testing.T) {
	j := NewInjector(Config{CorruptProb: 0.5}, simrand.New(1), 4)
	if evs := j.Tick(1e6); evs != nil {
		t.Errorf("churn disabled but Tick returned %v", evs)
	}
	if j.Away(0) {
		t.Error("churn disabled but vehicle away")
	}
}

func TestTruncateWindow(t *testing.T) {
	j := NewInjector(Config{TruncProb: 1, TruncKeepMax: 0.5}, simrand.New(9), 2)
	for i := 0; i < 100; i++ {
		got, cut := j.TruncateWindow(10)
		if !cut {
			t.Fatal("TruncProb=1 did not truncate")
		}
		if got < 0 || got > 5 {
			t.Fatalf("truncated window %v outside [0, 5]", got)
		}
	}
	if got, cut := j.TruncateWindow(0); cut || got != 0 {
		t.Error("zero window truncated")
	}
	off := NewInjector(Config{CorruptProb: 0.5}, simrand.New(9), 2)
	if got, cut := off.TruncateWindow(10); cut || got != 10 {
		t.Error("truncation disabled but window changed")
	}
}

func TestCorruptPayload(t *testing.T) {
	j := NewInjector(Config{CorruptProb: 1}, simrand.New(9), 2)
	for i := 0; i < 100; i++ {
		got, hit := j.CorruptPayload(30)
		if !hit {
			t.Fatal("CorruptProb=1 did not corrupt")
		}
		if got < 0 || got >= 30 {
			t.Fatalf("intact prefix %d outside [0, 30)", got)
		}
	}
	if got, hit := j.CorruptPayload(0); hit || got != 0 {
		t.Error("empty payload corrupted")
	}
	off := NewInjector(Config{TruncProb: 0.5, TruncKeepMax: 1}, simrand.New(9), 2)
	if got, hit := off.CorruptPayload(30); hit || got != 30 {
		t.Error("corruption disabled but payload changed")
	}
}
