package model

import (
	"math"
	"testing"

	"lbchat/internal/dataset"
	"lbchat/internal/simrand"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.BEVHeight, cfg.BEVWidth = 6, 6
	cfg.Hidden = 16
	cfg.NumWaypoints = 2
	return cfg
}

// syntheticSet builds samples whose targets depend deterministically on the
// BEV content, speed, and command — learnable structure.
func syntheticSet(cfg Config, n int, rng *simrand.Rand) []dataset.Weighted {
	out := make([]dataset.Weighted, 0, n)
	for i := 0; i < n; i++ {
		bev := make([]uint8, cfg.BEVSize())
		ones := 0
		for j := range bev {
			if rng.Bernoulli(0.3) {
				bev[j] = 1
				ones++
			}
		}
		speed := rng.Float64()
		cmd := dataset.Command(rng.Intn(dataset.NumCommands) + 1)
		density := float64(ones) / float64(len(bev))
		targets := make([]float64, cfg.TargetSize())
		for k := range targets {
			targets[k] = 0.3*speed + 0.2*density + 0.05*float64(cmd.Index())
		}
		out = append(out, dataset.Weighted{
			Sample: dataset.Sample{BEV: bev, Command: cmd, Speed: speed, NavDist: 1, Targets: targets},
			Weight: 1,
		})
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Hidden = 0
	if bad.Validate() == nil {
		t.Error("zero hidden accepted")
	}
	bad = DefaultConfig()
	bad.LR = 0
	if bad.Validate() == nil {
		t.Error("zero LR accepted")
	}
	bad = DefaultConfig()
	bad.BEVHeight = -1
	if bad.Validate() == nil {
		t.Error("negative BEV accepted")
	}
}

func TestSameSeedSameInit(t *testing.T) {
	cfg := tinyConfig()
	a, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg, 5)
	fa, fb := a.Flat(), b.Flat()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed produced different parameters")
		}
	}
	c, _ := New(cfg, 6)
	diff := 0
	for i, v := range c.Flat() {
		if v != fa[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical parameters")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	cfg := tinyConfig()
	pol, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(2)
	data := syntheticSet(cfg, 256, rng)
	before := pol.Loss(data)
	for step := 0; step < 300; step++ {
		batch := make([]dataset.Weighted, 16)
		for i := range batch {
			batch[i] = data[rng.Intn(len(data))]
		}
		pol.TrainStep(batch)
	}
	after := pol.Loss(data)
	t.Logf("loss %v -> %v", before, after)
	if after > before/2 {
		t.Errorf("training barely reduced loss: %v -> %v", before, after)
	}
}

func TestCloneIsIndependentCopy(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 1)
	rng := simrand.New(3)
	data := syntheticSet(cfg, 32, rng)
	cp := pol.Clone()
	if lossA, lossB := pol.Loss(data), cp.Loss(data); lossA != lossB {
		t.Errorf("clone loss differs: %v vs %v", lossA, lossB)
	}
	cp.TrainStep(data)
	if pol.Loss(data) != cp.Loss(data) {
		// Expected: training the clone must not affect the original.
		orig := pol.Flat()
		reclone := pol.Clone().Flat()
		for i := range orig {
			if orig[i] != reclone[i] {
				t.Fatal("training the clone mutated the original")
			}
		}
	} else {
		t.Error("training the clone had no effect")
	}
}

func TestFlatSetFlatRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 1)
	flat := pol.Flat()
	for i := range flat {
		flat[i] = float64(i%7) / 10
	}
	if err := pol.SetFlat(flat); err != nil {
		t.Fatal(err)
	}
	got := pol.Flat()
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatal("round trip mismatch")
		}
	}
	if err := pol.SetFlat(flat[:5]); err == nil {
		t.Error("short vector accepted")
	}
}

func TestPredictUsesCommandHead(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 1)
	bev := make([]uint8, cfg.BEVSize())
	bev[3] = 1
	a := pol.Predict(bev, 0.5, 1, 1, dataset.CmdLeft)
	b := pol.Predict(bev, 0.5, 1, 1, dataset.CmdRight)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different commands produced identical predictions")
	}
	if len(a) != cfg.TargetSize() {
		t.Errorf("prediction size = %d", len(a))
	}
}

func TestPredictDeterministic(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 1)
	bev := make([]uint8, cfg.BEVSize())
	a := pol.Predict(bev, 0.2, 0.8, 1, dataset.CmdFollow)
	b := pol.Predict(bev, 0.2, 0.8, 1, dataset.CmdFollow)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prediction not deterministic")
		}
	}
}

func TestPerSampleLossesMatchLoss(t *testing.T) {
	cfg := tinyConfig()
	cfg.L2Penalty = 0
	cfg.EntropyPenalty = 0
	pol, _ := New(cfg, 1)
	rng := simrand.New(4)
	data := syntheticSet(cfg, 64, rng)
	per := pol.PerSampleLosses(data)
	var mean float64
	for _, l := range per {
		mean += l
	}
	mean /= float64(len(per))
	if math.Abs(pol.Loss(data)-mean) > 1e-9 {
		t.Errorf("Loss %v != mean per-sample %v (penalties disabled)", pol.Loss(data), mean)
	}
}

func TestLossIncludesPenalties(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 1)
	rng := simrand.New(5)
	data := syntheticSet(cfg, 64, rng)
	withPenalty := pol.Loss(data)
	cfgNo := cfg
	cfgNo.L2Penalty = 0
	cfgNo.EntropyPenalty = 0
	bare, _ := New(cfgNo, 1)
	if err := bare.SetFlat(pol.Flat()); err != nil {
		t.Fatal(err)
	}
	if withPenalty <= bare.Loss(data) {
		t.Errorf("Eq.(6) penalties missing: %v <= %v", withPenalty, bare.Loss(data))
	}
}

func TestCommandImbalance(t *testing.T) {
	// Equal per-command losses → zero imbalance.
	per := []float64{1, 1, 1, 1}
	w := []float64{1, 1, 1, 1}
	cmds := []dataset.Command{dataset.CmdFollow, dataset.CmdLeft, dataset.CmdRight, dataset.CmdStraight}
	if got := CommandImbalance(per, w, cmds); math.Abs(got) > 1e-12 {
		t.Errorf("balanced imbalance = %v", got)
	}
	// Extremely skewed losses → positive imbalance.
	per = []float64{10, 0.001, 0.001, 0.001}
	if got := CommandImbalance(per, w, cmds); got < 0.5 {
		t.Errorf("skewed imbalance = %v", got)
	}
	// Single command: undefined, reported as zero.
	if got := CommandImbalance([]float64{5}, []float64{1}, cmds[:1]); got != 0 {
		t.Errorf("single-command imbalance = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 1)
	if pol.TrainStep(nil) != 0 {
		t.Error("empty TrainStep should return 0")
	}
	if pol.Loss(nil) != 0 {
		t.Error("empty Loss should return 0")
	}
	if pol.PerSampleLosses(nil) != nil {
		t.Error("empty PerSampleLosses should return nil")
	}
}

func TestWireSize(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 1)
	if pol.WireSize() <= pol.NumParams() {
		t.Errorf("wire size %d vs %d params", pol.WireSize(), pol.NumParams())
	}
}

func TestConvVariantTrains(t *testing.T) {
	cfg := tinyConfig()
	cfg.UseConv = true
	cfg.ConvChannels = 4
	pol, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(6)
	data := syntheticSet(cfg, 128, rng)
	before := pol.Loss(data)
	for step := 0; step < 150; step++ {
		batch := make([]dataset.Weighted, 16)
		for i := range batch {
			batch[i] = data[rng.Intn(len(data))]
		}
		pol.TrainStep(batch)
	}
	if after := pol.Loss(data); after >= before {
		t.Errorf("conv policy failed to learn: %v -> %v", before, after)
	}
}
