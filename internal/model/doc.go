// Package model implements the BEV-based driving decision model: a
// command-branched imitation-learning network that maps a bird's-eye-view
// tensor and a high-level navigation command to the next few waypoints,
// trained with the penalized loss of Eq. (6).
//
// It stands in for the paper's 52 MB "privileged agent" [19]: same I/O
// contract and loss family, with a configurable parameter count so a pure-Go
// CPU simulation can train dozens of replicas concurrently.
package model
