package model

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lbchat/internal/nn"
)

// Persistence: trained policies serialize to a self-describing byte blob —
// a fixed header carrying the architecture so a loader can verify shape
// compatibility, followed by the nn wire-format parameter vector. Used by
// the CLI tools to hand trained fleets between training and evaluation runs.

const (
	persistMagic   = 0x4C625031 // "LbP1"
	persistHdrSize = 4 + 8*4    // magic + 8 uint32 architecture fields
)

// ErrBadModelBlob is returned when a payload fails validation.
var ErrBadModelBlob = errors.New("model: bad model blob")

// MarshalBinary encodes the policy's architecture and parameters.
func (p *Policy) MarshalBinary() ([]byte, error) {
	cfg := p.cfg
	hdr := make([]byte, persistHdrSize)
	binary.LittleEndian.PutUint32(hdr[0:], persistMagic)
	fields := []uint32{
		uint32(cfg.BEVChannels), uint32(cfg.BEVHeight), uint32(cfg.BEVWidth),
		boolWord(cfg.UseConv), uint32(cfg.ConvChannels),
		uint32(cfg.Hidden), uint32(cfg.NumWaypoints),
		uint32(p.NumParams()),
	}
	for i, f := range fields {
		binary.LittleEndian.PutUint32(hdr[4+4*i:], f)
	}
	return append(hdr, nn.Serialize(p.Flat())...), nil
}

// UnmarshalBinary loads parameters from a blob produced by MarshalBinary.
// The blob's architecture must match the policy's.
func (p *Policy) UnmarshalBinary(blob []byte) error {
	if len(blob) < persistHdrSize {
		return fmt.Errorf("%w: %d bytes", ErrBadModelBlob, len(blob))
	}
	if binary.LittleEndian.Uint32(blob[0:]) != persistMagic {
		return fmt.Errorf("%w: bad magic", ErrBadModelBlob)
	}
	get := func(i int) uint32 { return binary.LittleEndian.Uint32(blob[4+4*i:]) }
	cfg := p.cfg
	want := []uint32{
		uint32(cfg.BEVChannels), uint32(cfg.BEVHeight), uint32(cfg.BEVWidth),
		boolWord(cfg.UseConv), uint32(cfg.ConvChannels),
		uint32(cfg.Hidden), uint32(cfg.NumWaypoints),
		uint32(p.NumParams()),
	}
	names := []string{"channels", "height", "width", "conv", "convChannels", "hidden", "waypoints", "params"}
	for i, w := range want {
		if got := get(i); got != w {
			return fmt.Errorf("%w: %s mismatch (blob %d, policy %d)", ErrBadModelBlob, names[i], got, w)
		}
	}
	flat, err := nn.Deserialize(blob[persistHdrSize:])
	if err != nil {
		return fmt.Errorf("model: decoding parameters: %w", err)
	}
	return p.SetFlat(flat)
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
