package model

import (
	"fmt"
	"math"

	"lbchat/internal/dataset"
	"lbchat/internal/nn"
	"lbchat/internal/simrand"
	"lbchat/internal/tensor"
)

// Config describes the policy architecture and training hyper-parameters.
type Config struct {
	// BEV geometry (channels, height, width).
	BEVChannels int
	BEVHeight   int
	BEVWidth    int

	// UseConv inserts a strided convolution front-end before the dense trunk.
	UseConv      bool
	ConvChannels int

	// Hidden is the width of the dense trunk.
	Hidden int
	// NumWaypoints is the number of predicted future waypoints (each is an
	// (x, y) pair in the normalized ego frame).
	NumWaypoints int

	// LR is the Adam learning rate.
	LR float64
	// L2Penalty is λ1 of Eq. (6) (structural-risk regularizer).
	L2Penalty float64
	// EntropyPenalty is λ2 of Eq. (6) (command-balance penalty).
	EntropyPenalty float64
	// GradClip bounds the gradient L2 norm per step (0 disables clipping).
	GradClip float64
}

// DefaultConfig returns the configuration used throughout the experiments:
// a compact trunk sized so that the co-simulation can train tens of replicas
// on CPU, with the paper's learning rate of 1e-4... scaled up (1e-3) to
// compensate for the smaller model; see DESIGN.md.
func DefaultConfig() Config {
	return Config{
		BEVChannels:    3,
		BEVHeight:      16,
		BEVWidth:       16,
		UseConv:        false,
		ConvChannels:   8,
		Hidden:         64,
		NumWaypoints:   5,
		LR:             1e-3,
		L2Penalty:      1e-4,
		EntropyPenalty: 0.6,
		GradClip:       5,
	}
}

// BEVSize returns the flattened BEV input size.
func (c Config) BEVSize() int { return c.BEVChannels * c.BEVHeight * c.BEVWidth }

// InputSize returns the full network input size: the BEV plus the
// ego-speed, distance-to-maneuver, and red-light-distance scalars.
func (c Config) InputSize() int { return c.BEVSize() + 3 }

// TargetSize returns the flattened waypoint-target size.
func (c Config) TargetSize() int { return 2 * c.NumWaypoints }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.BEVChannels <= 0 || c.BEVHeight <= 0 || c.BEVWidth <= 0:
		return fmt.Errorf("model: invalid BEV geometry %dx%dx%d", c.BEVChannels, c.BEVHeight, c.BEVWidth)
	case c.Hidden <= 0:
		return fmt.Errorf("model: non-positive hidden width %d", c.Hidden)
	case c.NumWaypoints <= 0:
		return fmt.Errorf("model: non-positive waypoint count %d", c.NumWaypoints)
	case c.LR <= 0:
		return fmt.Errorf("model: non-positive learning rate %g", c.LR)
	case c.UseConv && c.ConvChannels <= 0:
		return fmt.Errorf("model: conv enabled with non-positive channel count %d", c.ConvChannels)
	}
	return nil
}

// Policy is the branched driving model. It is not safe for concurrent use.
type Policy struct {
	cfg    Config
	trunk  *nn.Sequential
	heads  [dataset.NumCommands]*nn.Dense
	opt    *nn.Adam
	params nn.ParamSet
}

// New builds a policy with deterministic initialization from seed. All
// policies built with the same (cfg, seed) have identical parameters, which
// implements the paper's "same initialization on all vehicles" assumption.
func New(cfg Config, seed uint64) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := simrand.New(seed)
	var layers []nn.Layer
	trunkIn := cfg.InputSize()
	if cfg.UseConv {
		// The conv front-end sees only the BEV; the scalar inputs join at
		// the dense trunk via a SplitTail wrapper.
		conv := nn.NewConv2D("conv1", cfg.BEVChannels, cfg.BEVHeight, cfg.BEVWidth,
			cfg.ConvChannels, 3, 2, 1, rng.Derive("conv1"))
		layers = append(layers, nn.NewSplitTail(conv, 3), nn.NewReLU())
		trunkIn = conv.OutSize() + 3
	}
	layers = append(layers,
		nn.NewDense("fc1", trunkIn, cfg.Hidden, rng.Derive("fc1")),
		nn.NewReLU(),
		nn.NewDense("fc2", cfg.Hidden, cfg.Hidden, rng.Derive("fc2")),
		nn.NewReLU(),
	)
	p := &Policy{
		cfg:   cfg,
		trunk: nn.NewSequential(layers...),
		opt:   nn.NewAdam(cfg.LR),
	}
	for i := range p.heads {
		p.heads[i] = nn.NewDense(fmt.Sprintf("head%d", i), cfg.Hidden, cfg.TargetSize(),
			rng.DeriveIndexed("head", i))
	}
	p.params = append(nn.ParamSet{}, p.trunk.Params()...)
	for _, h := range p.heads {
		p.params = append(p.params, h.Params()...)
	}
	return p, nil
}

// Config returns the policy configuration.
func (p *Policy) Config() Config { return p.cfg }

// Params returns the policy's parameters in stable order.
func (p *Policy) Params() nn.ParamSet { return p.params }

// NumParams returns the total scalar parameter count.
func (p *Policy) NumParams() int { return p.params.NumElements() }

// WireSize returns the serialized (uncompressed) model size in bytes; this is
// the S of the compression ratio φ = S/S_c.
func (p *Policy) WireSize() int { return nn.WireSize(p.NumParams()) }

// Flat returns a copy of the flat parameter vector.
func (p *Policy) Flat() []float64 { return p.params.Flatten() }

// SetFlat loads a flat parameter vector into the policy.
func (p *Policy) SetFlat(flat []float64) error { return p.params.LoadFlat(flat) }

// Clone returns a policy with identical parameters and a fresh optimizer
// state.
func (p *Policy) Clone() *Policy {
	// Error cases are impossible: cfg was validated at construction and the
	// flat vector comes from an identically shaped policy.
	cp, err := New(p.cfg, 0)
	if err != nil {
		panic(fmt.Sprintf("model: cloning valid policy failed: %v", err))
	}
	if err := cp.SetFlat(p.Flat()); err != nil {
		panic(fmt.Sprintf("model: cloning valid policy failed: %v", err))
	}
	return cp
}

// forward runs the batch through trunk and heads, returning per-sample
// predictions shaped (batch, 2K). byCmd groups sample indices per head so
// backward can route gradients.
func (p *Policy) forward(x *tensor.Dense, cmds []dataset.Command) (*tensor.Dense, [dataset.NumCommands][]int) {
	batch := x.Shape()[0]
	hidden := p.trunk.Forward(x)
	var byCmd [dataset.NumCommands][]int
	for i, c := range cmds {
		byCmd[c.Index()] = append(byCmd[c.Index()], i)
	}
	preds := tensor.New(batch, p.cfg.TargetSize())
	for h, idxs := range byCmd {
		if len(idxs) == 0 {
			continue
		}
		sub := gatherRows(hidden, idxs)
		out := p.heads[h].Forward(sub)
		scatterRows(preds, out, idxs)
	}
	return preds, byCmd
}

// Predict returns the policy's waypoint prediction for one BEV + normalized
// ego speed + normalized distance-to-maneuver + command. It implements
// eval.Driver.
func (p *Policy) Predict(bev []uint8, speed, navDist, redDist float64, cmd dataset.Command) []float64 {
	flat := make([]float64, p.cfg.InputSize())
	for i, v := range bev {
		flat[i] = float64(v)
	}
	flat[len(flat)-3] = speed
	flat[len(flat)-2] = navDist
	flat[len(flat)-1] = redDist
	x := tensor.FromSlice(flat, 1, p.cfg.InputSize())
	preds, _ := p.forward(x, []dataset.Command{cmd})
	out := make([]float64, p.cfg.TargetSize())
	copy(out, preds.Data())
	return out
}

func gatherRows(src *tensor.Dense, idxs []int) *tensor.Dense {
	cols := src.Shape()[1]
	out := tensor.New(len(idxs), cols)
	for r, i := range idxs {
		copy(out.Data()[r*cols:(r+1)*cols], src.Data()[i*cols:(i+1)*cols])
	}
	return out
}

func scatterRows(dst, src *tensor.Dense, idxs []int) {
	cols := dst.Shape()[1]
	for r, i := range idxs {
		copy(dst.Data()[i*cols:(i+1)*cols], src.Data()[r*cols:(r+1)*cols])
	}
}

func buildBatch(cfg Config, items []dataset.Weighted) (*tensor.Dense, *tensor.Dense, []dataset.Command, []float64) {
	batch := len(items)
	in := cfg.InputSize()
	x := tensor.New(batch, in)
	y := tensor.New(batch, cfg.TargetSize())
	cmds := make([]dataset.Command, batch)
	weights := make([]float64, batch)
	for i, it := range items {
		row := x.Data()[i*in : (i+1)*in]
		for j, v := range it.Sample.BEV {
			row[j] = float64(v)
		}
		row[in-3] = it.Sample.Speed
		row[in-2] = it.Sample.NavDist
		row[in-1] = it.Sample.RedDist
		copy(y.Data()[i*cfg.TargetSize():(i+1)*cfg.TargetSize()], it.Sample.Targets)
		cmds[i] = it.Sample.Command
		weights[i] = it.Weight
	}
	return x, y, cmds, weights
}

// TrainStep performs one optimizer step on the weighted batch and returns
// the Eq. (6) training loss before the update.
func (p *Policy) TrainStep(items []dataset.Weighted) float64 {
	if len(items) == 0 {
		return 0
	}
	x, y, cmds, weights := buildBatch(p.cfg, items)
	preds, byCmd := p.forward(x, cmds)

	batch := len(items)
	tgt := p.cfg.TargetSize()
	perSample := make([]float64, batch)
	var totalW float64
	for i := 0; i < batch; i++ {
		var acc float64
		pr := preds.Data()[i*tgt : (i+1)*tgt]
		ty := y.Data()[i*tgt : (i+1)*tgt]
		for j := range pr {
			dv := pr[j] - ty[j]
			acc += dv * dv
		}
		perSample[i] = acc / float64(tgt)
		totalW += weights[i]
	}
	if totalW <= 0 {
		return 0
	}

	// Command-rebalance multipliers: a first-order realization of the λ2
	// entropy penalty in Eq. (6) — commands whose mean loss exceeds the
	// overall mean get up-weighted gradients, pushing per-command losses
	// toward balance. See DESIGN.md §2.
	cmdMult := commandMultipliers(perSample, weights, cmds, p.cfg.EntropyPenalty)

	// dLoss/dPred with per-sample weights folded in.
	grad := tensor.New(batch, tgt)
	for i := 0; i < batch; i++ {
		w := weights[i] / totalW * cmdMult[cmds[i].Index()]
		pr := preds.Data()[i*tgt : (i+1)*tgt]
		ty := y.Data()[i*tgt : (i+1)*tgt]
		g := grad.Data()[i*tgt : (i+1)*tgt]
		for j := range pr {
			g[j] = 2 * w * (pr[j] - ty[j]) / float64(tgt)
		}
	}

	p.params.ZeroGrad()
	hiddenGrad := tensor.New(batch, p.cfg.Hidden)
	for h, idxs := range byCmd {
		if len(idxs) == 0 {
			continue
		}
		sub := gatherRows(grad, idxs)
		dHidden := p.heads[h].Backward(sub)
		scatterRows(hiddenGrad, dHidden, idxs)
	}
	p.trunk.Backward(hiddenGrad)
	// λ1 term: L2 structural risk enters as weight decay on the gradient.
	if p.cfg.L2Penalty > 0 {
		for _, prm := range p.params {
			prm.Grad.AxpyInPlace(2*p.cfg.L2Penalty, prm.Value)
		}
	}
	if p.cfg.GradClip > 0 {
		nn.ClipGradNorm(p.params, p.cfg.GradClip)
	}
	p.opt.Step(p.params)

	return p.lossFromPerSample(perSample, weights, cmds)
}

// PerSampleLosses evaluates the unpenalized per-sample losses f(x; d) for
// each item, without touching gradients. Used by coreset layering and value
// assessment.
func (p *Policy) PerSampleLosses(items []dataset.Weighted) []float64 {
	if len(items) == 0 {
		return nil
	}
	x, y, cmds, _ := buildBatch(p.cfg, items)
	preds, _ := p.forward(x, cmds)
	tgt := p.cfg.TargetSize()
	out := make([]float64, len(items))
	for i := range items {
		var acc float64
		pr := preds.Data()[i*tgt : (i+1)*tgt]
		ty := y.Data()[i*tgt : (i+1)*tgt]
		for j := range pr {
			dv := pr[j] - ty[j]
			acc += dv * dv
		}
		out[i] = acc / float64(tgt)
	}
	return out
}

// Loss evaluates the full Eq. (6) loss of the policy on a weighted sample
// set: weighted empirical risk + λ1·‖x‖ + λ2·σ(x).
func (p *Policy) Loss(items []dataset.Weighted) float64 {
	if len(items) == 0 {
		return 0
	}
	perSample := p.PerSampleLosses(items)
	weights := make([]float64, len(items))
	cmds := make([]dataset.Command, len(items))
	for i, it := range items {
		weights[i] = it.Weight
		cmds[i] = it.Sample.Command
	}
	return p.lossFromPerSample(perSample, weights, cmds)
}

// LossOnDataset evaluates Eq. (6) over a whole dataset.
func (p *Policy) LossOnDataset(d *dataset.Dataset) float64 {
	return p.Loss(d.Items())
}

func (p *Policy) lossFromPerSample(perSample, weights []float64, cmds []dataset.Command) float64 {
	var risk, totalW float64
	for i, l := range perSample {
		risk += weights[i] * l
		totalW += weights[i]
	}
	if totalW > 0 {
		risk /= totalW
	}
	loss := risk
	if p.cfg.L2Penalty > 0 {
		loss += p.cfg.L2Penalty * p.params.L2Norm()
	}
	if p.cfg.EntropyPenalty > 0 {
		// The σ term is reported at a fixed small scale; EntropyPenalty
		// itself chiefly controls the gradient rebalancing strength.
		loss += 0.05 * CommandImbalance(perSample, weights, cmds)
	}
	return loss
}

// CommandImbalance computes σ(x) of Eq. (6): the KL divergence from uniform
// of the normalized per-command mean losses (equivalently log K minus the
// entropy of the loss distribution across commands). Zero means the model
// handles all observed commands equally well.
func CommandImbalance(perSample, weights []float64, cmds []dataset.Command) float64 {
	var sums, ws [dataset.NumCommands]float64
	for i, l := range perSample {
		idx := cmds[i].Index()
		sums[idx] += weights[i] * l
		ws[idx] += weights[i]
	}
	means := make([]float64, 0, dataset.NumCommands)
	var total float64
	for i := range sums {
		if ws[i] > 0 {
			m := sums[i] / ws[i]
			means = append(means, m)
			total += m
		}
	}
	if len(means) < 2 || total <= 0 {
		return 0
	}
	logK := math.Log(float64(len(means)))
	var entropy float64
	for _, m := range means {
		q := m / total
		if q > 0 {
			entropy -= q * math.Log(q)
		}
	}
	return logK - entropy
}

func commandMultipliers(perSample, weights []float64, cmds []dataset.Command, lambda float64) [dataset.NumCommands]float64 {
	var mult [dataset.NumCommands]float64
	for i := range mult {
		mult[i] = 1
	}
	if lambda <= 0 {
		return mult
	}
	var sums, ws [dataset.NumCommands]float64
	for i, l := range perSample {
		idx := cmds[i].Index()
		sums[idx] += weights[i] * l
		ws[idx] += weights[i]
	}
	var mean float64
	var seen int
	for i := range sums {
		if ws[i] > 0 {
			mean += sums[i] / ws[i]
			seen++
		}
	}
	if seen == 0 || mean == 0 {
		return mult
	}
	mean /= float64(seen)
	for i := range mult {
		if ws[i] > 0 && mean > 0 {
			ratio := (sums[i] / ws[i]) / mean
			// Linear in the loss imbalance, clamped for stability: commands
			// the model underserves (rare turn commands) get a materially
			// larger gradient share, which is what keeps every head trained
			// (the paper's stated purpose for the σ penalty).
			m := 1 + lambda*(ratio-1)
			mult[i] = math.Max(1-lambda, math.Min(1+4*lambda, m))
		}
	}
	return mult
}
