package model

import (
	"math"
	"testing"

	"lbchat/internal/simrand"
)

func TestMarshalRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 3)
	rng := simrand.New(9)
	data := syntheticSet(cfg, 64, rng)
	for i := 0; i < 50; i++ {
		pol.TrainStep(data)
	}
	blob, err := pol.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(cfg, 99)
	if err := fresh.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// float32 wire precision: losses match to ~1e-6 relative.
	a, b := pol.Loss(data), fresh.Loss(data)
	if math.Abs(a-b) > 1e-5*(1+math.Abs(a)) {
		t.Errorf("loaded policy loss %v, want %v", b, a)
	}
}

func TestUnmarshalRejectsMismatch(t *testing.T) {
	cfg := tinyConfig()
	pol, _ := New(cfg, 3)
	blob, _ := pol.MarshalBinary()

	other := cfg
	other.Hidden = 24
	wrong, _ := New(other, 3)
	if err := wrong.UnmarshalBinary(blob); err == nil {
		t.Error("architecture mismatch accepted")
	}
	if err := pol.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("truncated blob accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if err := pol.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
	cut := append([]byte(nil), blob[:len(blob)-4]...)
	if err := pol.UnmarshalBinary(cut); err == nil {
		t.Error("short parameter payload accepted")
	}
}
