package trace

import (
	"bytes"
	"math"
	"testing"

	"lbchat/internal/geom"
	"lbchat/internal/simrand"
	"lbchat/internal/world"
)

func record(t *testing.T, vehicles, ticks int) *Trace {
	t.Helper()
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(m, world.SpawnConfig{Experts: vehicles}, simrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return Record(w, ticks, 0.5)
}

func TestRecordShape(t *testing.T) {
	tr := record(t, 3, 40)
	if tr.NumTicks() != 40 {
		t.Errorf("ticks = %d", tr.NumTicks())
	}
	if tr.NumVehicles() != 3 {
		t.Errorf("vehicles = %d", tr.NumVehicles())
	}
	if tr.Duration() != 20 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := record(t, 2, 10)
	tr.chunks[0] = tr.chunks[0][:3]
	if tr.Validate() == nil {
		t.Error("truncated chunk accepted")
	}
	tr2 := &Trace{}
	if tr2.Validate() == nil {
		t.Error("zero tick interval accepted")
	}
}

func TestAtClampsTime(t *testing.T) {
	tr := record(t, 2, 20)
	first := tr.At(0, -5)
	if first != tr.Row(0)[0] {
		t.Error("negative time should clamp to first tick")
	}
	last := tr.At(0, 9999)
	if last != tr.Row(tr.NumTicks() - 1)[0] {
		t.Error("overlong time should clamp to last tick")
	}
}

func TestVehiclesActuallyMove(t *testing.T) {
	tr := record(t, 2, 120)
	if tr.At(0, 0).Dist(tr.At(0, 60)) < 20 {
		t.Error("vehicle barely moved over a minute")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	tr := record(t, 3, 30)
	if tr.Distance(0, 1, 5) != tr.Distance(1, 0, 5) {
		t.Error("distance not symmetric")
	}
	if tr.Distance(2, 2, 5) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestNeighborsWithinRange(t *testing.T) {
	tr := record(t, 5, 10)
	for _, n := range tr.Neighbors(0, 2, 300) {
		if n == 0 {
			t.Fatal("vehicle is its own neighbor")
		}
		if tr.Distance(0, n, 2) > 300 {
			t.Fatalf("neighbor %d out of range", n)
		}
	}
	// With an enormous range, everyone is a neighbor.
	if got := len(tr.Neighbors(0, 2, 1e9)); got != 4 {
		t.Errorf("universal range found %d neighbors", got)
	}
	if got := len(tr.Neighbors(0, 2, 0.001)); got != 0 {
		t.Errorf("zero range found %d neighbors", got)
	}
}

func TestContactDuration(t *testing.T) {
	tr := record(t, 4, 400)
	// Out-of-range pairs have zero contact.
	found := false
	for a := 0; a < 4 && !found; a++ {
		for b := a + 1; b < 4 && !found; b++ {
			if tr.Distance(a, b, 0) > 200 {
				if got := tr.ContactDuration(a, b, 0, 200, 60); got != 0 {
					t.Errorf("out-of-range contact = %v", got)
				}
				found = true
			}
		}
	}
	// In-range contact durations are bounded by the horizon and positive.
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if tr.Distance(a, b, 0) <= 500 {
				d := tr.ContactDuration(a, b, 0, 500, 60)
				if d < 0 || d > 60 {
					t.Errorf("contact duration %v outside [0, horizon]", d)
				}
			}
		}
	}
}

func TestContactDurationHorizonCap(t *testing.T) {
	tr := record(t, 2, 1000)
	d := tr.ContactDuration(0, 1, 0, 1e9, 30)
	if math.Abs(d-30) > tr.DT() {
		t.Errorf("infinite-range contact should cap at horizon: %v", d)
	}
}

func TestRecordDeterministic(t *testing.T) {
	a := record(t, 3, 50)
	b := record(t, 3, 50)
	for tick := 0; tick < a.NumTicks(); tick++ {
		ra, rb := a.Row(tick), b.Row(tick)
		for v := range ra {
			if ra[v] != rb[v] {
				t.Fatalf("traces diverge at tick %d vehicle %d", tick, v)
			}
		}
	}
}

func TestChunkBoundaries(t *testing.T) {
	// 4-tick chunks, 10 ticks: two full chunks plus a 2-tick tail. Every
	// accessor must agree across the boundaries.
	tr := NewChunked(0.5, 3, 4)
	rows := make([][]geom.Point, 10)
	for tick := range rows {
		rows[tick] = make([]geom.Point, 3)
		row := tr.AppendRow()
		for v := range row {
			p := geom.Point{X: float64(tick*10 + v), Y: float64(tick - v)}
			row[v] = p
			rows[tick][v] = p
		}
	}
	if tr.NumTicks() != 10 || tr.NumVehicles() != 3 {
		t.Fatalf("shape = %d ticks × %d vehicles", tr.NumTicks(), tr.NumVehicles())
	}
	if len(tr.chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(tr.chunks))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for tick := range rows {
		got := tr.Row(tick)
		for v := range rows[tick] {
			if got[v] != rows[tick][v] {
				t.Fatalf("Row(%d)[%d] = %v, want %v", tick, v, got[v], rows[tick][v])
			}
			if at := tr.At(v, float64(tick)*tr.DT()); at != rows[tick][v] {
				t.Fatalf("At(%d, tick %d) = %v, want %v", v, tick, at, rows[tick][v])
			}
		}
	}
	// FromRows over the same data is identical.
	fr := FromRows(0.5, rows)
	for tick := range rows {
		a, b := tr.Row(tick), fr.Row(tick)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("FromRows diverges at tick %d vehicle %d", tick, v)
			}
		}
	}
}

func TestAppendRowDoesNotAllocatePerTick(t *testing.T) {
	tr := NewChunked(1, 64, 256)
	// Prime the first chunk so steady-state (within-chunk) appends are
	// measured; 100 runs stay well inside the 256-tick chunk.
	tr.AppendRow()
	allocs := testing.AllocsPerRun(100, func() {
		tr.AppendRow()
	})
	if allocs != 0 {
		t.Errorf("AppendRow allocates %.1f objects per steady-state tick", allocs)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	tr := record(t, 5, 70)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DT() != tr.DT() || got.NumTicks() != tr.NumTicks() || got.NumVehicles() != tr.NumVehicles() {
		t.Fatalf("round-trip shape: dt %v ticks %d vehicles %d", got.DT(), got.NumTicks(), got.NumVehicles())
	}
	for tick := 0; tick < tr.NumTicks(); tick++ {
		a, b := tr.Row(tick), got.Row(tick)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("round-trip diverges at tick %d vehicle %d: %v vs %v", tick, v, a[v], b[v])
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRoundTripChunkBoundary(t *testing.T) {
	// Exactly full chunks and a partial tail, tiny chunk size.
	for _, ticks := range []int{0, 1, 4, 8, 9} {
		tr := NewChunked(0.25, 2, 4)
		for i := 0; i < ticks; i++ {
			row := tr.AppendRow()
			row[0] = geom.Point{X: float64(i), Y: -float64(i)}
			row[1] = geom.Point{X: float64(2 * i), Y: 0.5 * float64(i)}
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumTicks() != ticks {
			t.Fatalf("ticks=%d: round-trip has %d ticks", ticks, got.NumTicks())
		}
		for tick := 0; tick < ticks; tick++ {
			a, b := tr.Row(tick), got.Row(tick)
			if a[0] != b[0] || a[1] != b[1] {
				t.Fatalf("ticks=%d: diverges at tick %d", ticks, tick)
			}
		}
	}
}

func TestStreamWriterIncremental(t *testing.T) {
	// Writing through ChunkWriter directly matches Trace.Encode byte for
	// byte.
	tr := record(t, 3, 30)
	var direct bytes.Buffer
	cw := NewChunkWriter(&direct, tr.DT(), tr.NumVehicles(), tr.ChunkTicks())
	for tick := 0; tick < tr.NumTicks(); tick++ {
		copy(cw.AppendRow(), tr.Row(tick))
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	var viaTrace bytes.Buffer
	if err := tr.Encode(&viaTrace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaTrace.Bytes()) {
		t.Error("ChunkWriter and Trace.Encode produce different streams")
	}
	if cw.NumTicks() != tr.NumTicks() {
		t.Errorf("writer counted %d ticks, want %d", cw.NumTicks(), tr.NumTicks())
	}
}

func TestStreamRejectsCorruption(t *testing.T) {
	tr := record(t, 2, 10)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	bad = append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}

	if _, err := ReadTrace(bytes.NewReader(good[:len(good)-6])); err == nil {
		t.Error("truncated stream accepted")
	}

	if _, err := ReadTrace(bytes.NewReader(good[:8])); err == nil {
		t.Error("truncated header accepted")
	}
}
