package trace

import (
	"math"
	"testing"

	"lbchat/internal/simrand"
	"lbchat/internal/world"
)

func record(t *testing.T, vehicles, ticks int) *Trace {
	t.Helper()
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(m, world.SpawnConfig{Experts: vehicles}, simrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return Record(w, ticks, 0.5)
}

func TestRecordShape(t *testing.T) {
	tr := record(t, 3, 40)
	if tr.NumTicks() != 40 {
		t.Errorf("ticks = %d", tr.NumTicks())
	}
	if tr.NumVehicles() != 3 {
		t.Errorf("vehicles = %d", tr.NumVehicles())
	}
	if tr.Duration() != 20 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := record(t, 2, 10)
	tr.Positions[3] = tr.Positions[3][:1]
	if tr.Validate() == nil {
		t.Error("ragged snapshot accepted")
	}
	tr2 := &Trace{DT: 0}
	if tr2.Validate() == nil {
		t.Error("zero DT accepted")
	}
}

func TestAtClampsTime(t *testing.T) {
	tr := record(t, 2, 20)
	first := tr.At(0, -5)
	if first != tr.Positions[0][0] {
		t.Error("negative time should clamp to first tick")
	}
	last := tr.At(0, 9999)
	if last != tr.Positions[len(tr.Positions)-1][0] {
		t.Error("overlong time should clamp to last tick")
	}
}

func TestVehiclesActuallyMove(t *testing.T) {
	tr := record(t, 2, 120)
	if tr.At(0, 0).Dist(tr.At(0, 60)) < 20 {
		t.Error("vehicle barely moved over a minute")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	tr := record(t, 3, 30)
	if tr.Distance(0, 1, 5) != tr.Distance(1, 0, 5) {
		t.Error("distance not symmetric")
	}
	if tr.Distance(2, 2, 5) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestNeighborsWithinRange(t *testing.T) {
	tr := record(t, 5, 10)
	for _, n := range tr.Neighbors(0, 2, 300) {
		if n == 0 {
			t.Fatal("vehicle is its own neighbor")
		}
		if tr.Distance(0, n, 2) > 300 {
			t.Fatalf("neighbor %d out of range", n)
		}
	}
	// With an enormous range, everyone is a neighbor.
	if got := len(tr.Neighbors(0, 2, 1e9)); got != 4 {
		t.Errorf("universal range found %d neighbors", got)
	}
	if got := len(tr.Neighbors(0, 2, 0.001)); got != 0 {
		t.Errorf("zero range found %d neighbors", got)
	}
}

func TestContactDuration(t *testing.T) {
	tr := record(t, 4, 400)
	// Out-of-range pairs have zero contact.
	found := false
	for a := 0; a < 4 && !found; a++ {
		for b := a + 1; b < 4 && !found; b++ {
			if tr.Distance(a, b, 0) > 200 {
				if got := tr.ContactDuration(a, b, 0, 200, 60); got != 0 {
					t.Errorf("out-of-range contact = %v", got)
				}
				found = true
			}
		}
	}
	// In-range contact durations are bounded by the horizon and positive.
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if tr.Distance(a, b, 0) <= 500 {
				d := tr.ContactDuration(a, b, 0, 500, 60)
				if d < 0 || d > 60 {
					t.Errorf("contact duration %v outside [0, horizon]", d)
				}
			}
		}
	}
}

func TestContactDurationHorizonCap(t *testing.T) {
	tr := record(t, 2, 1000)
	d := tr.ContactDuration(0, 1, 0, 1e9, 30)
	if math.Abs(d-30) > tr.DT {
		t.Errorf("infinite-range contact should cap at horizon: %v", d)
	}
}

func TestRecordDeterministic(t *testing.T) {
	a := record(t, 3, 50)
	b := record(t, 3, 50)
	for tick := range a.Positions {
		for v := range a.Positions[tick] {
			if a.Positions[tick][v] != b.Positions[tick][v] {
				t.Fatalf("traces diverge at tick %d vehicle %d", tick, v)
			}
		}
	}
}
