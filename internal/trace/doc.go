// Package trace records and replays vehicle mobility: position snapshots at
// a fixed frame rate, encounter detection within radio range, and
// contact-duration estimation from shared future routes — the "assistive
// information" of Eq. (5).
//
// The paper runs its CARLA world for 120 hours and records expert positions
// at 2 fps; we generate traces the same way from internal/world.
package trace
