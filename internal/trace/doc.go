// Package trace records and replays vehicle mobility: position snapshots at
// a fixed frame rate, encounter detection within radio range, and
// contact-duration estimation from shared future routes — the "assistive
// information" of Eq. (5).
//
// The paper runs its CARLA world for 120 hours and records expert positions
// at 2 fps; we generate traces the same way from internal/world.
//
// Storage is columnar and chunked: positions live in flat []geom.Point
// backing arrays of fixed tick capacity, laid out row-major [tick][vehicle],
// so appending a tick allocates nothing in steady state and a whole tick is
// one contiguous Row. ChunkWriter/ChunkReader stream the same chunks through
// io.Writer/io.Reader (format "LBTC"), so 10k-vehicle recordings need not be
// resident.
//
// Consumers address mobility through the Source interface, which Trace (the
// resident store) and Window (a bounded sliding window over a ChunkReader)
// both satisfy. A Window retains only the chunks covering [cursor−behind,
// cursor+ahead], advanced by a monotone cursor, evicting behind and
// optionally prefetching ahead; out-of-window reads panic with
// *WindowViolation and decode failures surface as position-annotated
// *ChunkError. Both implementations share the clamping and derived-query
// code, so streamed and resident replays are bit-identical (DESIGN.md §12).
package trace
