package trace

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"lbchat/internal/geom"
)

// windowOver encodes tr and reopens it as a sliding window with the given
// config, returning the window alongside the resident reference.
func windowOver(t *testing.T, tr *Trace, cfg WindowConfig) *Window {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return NewWindow(cr, tr.NumTicks(), cfg)
}

// syntheticTrace builds a deterministic trace with distinct per-(tick,
// vehicle) coordinates so any misaligned read is caught by value.
func syntheticTrace(dt float64, vehicles, ticks, chunkTicks int) *Trace {
	tr := NewChunked(dt, vehicles, chunkTicks)
	for tick := 0; tick < ticks; tick++ {
		row := tr.AppendRow()
		for v := range row {
			row[v] = geom.Point{X: float64(tick*1000 + v), Y: float64(tick) - 0.25*float64(v)}
		}
	}
	return tr
}

// TestWindowMatchesResident is the window-contract property test: for a
// cursor swept over every tick, Window.At/Row/Distance/ContactDuration
// must equal the resident trace for every time reachable under the
// reserved span — the exact guarantee the engine relies on for byte-
// identical streamed runs.
func TestWindowMatchesResident(t *testing.T) {
	const (
		dt       = 0.5
		vehicles = 3
		ticks    = 90
		behind   = 4.0 // seconds
		ahead    = 10.0
	)
	for _, chunkTicks := range []int{4, 7, 32} {
		tr := syntheticTrace(dt, vehicles, ticks, chunkTicks)
		w := windowOver(t, tr, WindowConfig{Behind: behind, Ahead: ahead})
		if w.NumTicks() != ticks || w.NumVehicles() != vehicles || w.Duration() != tr.Duration() {
			t.Fatalf("chunkTicks=%d: window shape %d×%d over %gs", chunkTicks, w.NumTicks(), w.NumVehicles(), w.Duration())
		}
		for cursor := 0; cursor < ticks; cursor++ {
			if err := w.Advance(cursor); err != nil {
				t.Fatalf("chunkTicks=%d: Advance(%d): %v", chunkTicks, cursor, err)
			}
			now := float64(cursor) * dt
			loTick := cursor - int(behind/dt)
			if loTick < 0 {
				loTick = 0
			}
			hiTick := cursor + int(ahead/dt)
			if hiTick >= ticks {
				hiTick = ticks - 1
			}
			for tick := loTick; tick <= hiTick; tick++ {
				at := float64(tick) * dt
				for v := 0; v < vehicles; v++ {
					if got, want := w.At(v, at), tr.At(v, at); got != want {
						t.Fatalf("chunkTicks=%d cursor=%d: At(%d, %g) = %v, want %v", chunkTicks, cursor, v, at, got, want)
					}
				}
				gotRow, wantRow := w.Row(tick), tr.Row(tick)
				for v := range wantRow {
					if gotRow[v] != wantRow[v] {
						t.Fatalf("chunkTicks=%d cursor=%d: Row(%d)[%d] differs", chunkTicks, cursor, tick, v)
					}
				}
			}
			if got, want := w.Distance(0, 1, now), tr.Distance(0, 1, now); got != want {
				t.Fatalf("chunkTicks=%d cursor=%d: Distance = %v, want %v", chunkTicks, cursor, got, want)
			}
			// ContactDuration reads up to `ahead` seconds past now — the
			// engine's deepest in-window lookahead.
			if got, want := w.ContactDuration(0, 1, now, 1e9, ahead-dt), tr.ContactDuration(0, 1, now, 1e9, ahead-dt); got != want {
				t.Fatalf("chunkTicks=%d cursor=%d: ContactDuration = %v, want %v", chunkTicks, cursor, got, want)
			}
			gotN, wantN := w.Neighbors(0, now, 1e9), tr.Neighbors(0, now, 1e9)
			if len(gotN) != len(wantN) {
				t.Fatalf("chunkTicks=%d cursor=%d: %d neighbors, want %d", chunkTicks, cursor, len(gotN), len(wantN))
			}
		}
	}
}

// TestWindowPrefetchMatchesSync pins that background prefetch changes
// neither values nor the load/evict sequence.
func TestWindowPrefetchMatchesSync(t *testing.T) {
	tr := syntheticTrace(0.5, 2, 64, 8)
	type rec struct {
		kind  ChunkOpKind
		chunk int
	}
	runOps := func(prefetch bool) (ops []rec) {
		w := windowOver(t, tr, WindowConfig{Behind: 2, Ahead: 6, Prefetch: prefetch})
		w.SetChunkObserver(func(op ChunkOp) {
			if op.Kind != OpPrefetch {
				ops = append(ops, rec{op.Kind, op.Chunk})
			}
		})
		for cursor := 0; cursor < tr.NumTicks(); cursor++ {
			if err := w.Advance(cursor); err != nil {
				t.Fatalf("prefetch=%v Advance(%d): %v", prefetch, cursor, err)
			}
			if got, want := w.RowAt(float64(cursor)*0.5), tr.RowAt(float64(cursor)*0.5); got[0] != want[0] {
				t.Fatalf("prefetch=%v cursor=%d: row differs", prefetch, cursor)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return ops
	}
	sync, pre := runOps(false), runOps(true)
	if len(sync) != len(pre) {
		t.Fatalf("op counts differ: sync %d, prefetch %d", len(sync), len(pre))
	}
	for i := range sync {
		if sync[i] != pre[i] {
			t.Fatalf("op %d differs: sync %+v, prefetch %+v", i, sync[i], pre[i])
		}
	}
}

// TestWindowChunkSeam pins correctness at the default chunk seam: ticks
// 255 and 256 live in different chunks and both must read back exactly.
func TestWindowChunkSeam(t *testing.T) {
	const dt = 0.5
	tr := syntheticTrace(dt, 2, 520, DefaultChunkTicks)
	w := windowOver(t, tr, WindowConfig{Behind: 1, Ahead: 2})
	for _, tick := range []int{0, 254, 255, 256, 257, 511, 512, 519} {
		if err := w.Advance(tick); err != nil {
			t.Fatalf("Advance(%d): %v", tick, err)
		}
		if got, want := w.Row(tick)[1], tr.Row(tick)[1]; got != want {
			t.Fatalf("tick %d: %v, want %v", tick, got, want)
		}
		if got, want := w.At(0, float64(tick)*dt), tr.At(0, float64(tick)*dt); got != want {
			t.Fatalf("tick %d: At = %v, want %v", tick, got, want)
		}
	}
}

// TestWindowEviction pins the eviction edge: once the cursor passes
// behind+chunk, the oldest chunk is recycled, the resident count stays
// O(window), and reading the evicted tick panics with *WindowViolation.
func TestWindowEviction(t *testing.T) {
	tr := syntheticTrace(1.0, 2, 64, 4) // 16 chunks of 4 ticks
	w := windowOver(t, tr, WindowConfig{Behind: 4, Ahead: 8})
	var evicted []int
	maxResident := 0
	w.SetChunkObserver(func(op ChunkOp) {
		if op.Kind == OpEvict {
			evicted = append(evicted, op.Chunk)
		}
		if op.Resident > maxResident {
			maxResident = op.Resident
		}
	})
	for cursor := 0; cursor < 64; cursor++ {
		if err := w.Advance(cursor); err != nil {
			t.Fatal(err)
		}
	}
	if len(evicted) == 0 {
		t.Fatal("full sweep evicted nothing")
	}
	for i, c := range evicted {
		if c != i {
			t.Fatalf("evictions out of order: %v", evicted)
		}
	}
	// behind(4)+ahead(8) ticks span at most 4 chunks of 4 ticks plus one
	// seam chunk.
	if maxResident > 5 {
		t.Fatalf("resident peaked at %d chunks, window should bound it", maxResident)
	}
	loads, evicts, _ := w.Stats()
	if loads != 16 {
		t.Fatalf("loaded %d chunks, want every chunk exactly once", loads)
	}
	if evicts != len(evicted) {
		t.Fatalf("Stats evicts %d, observer saw %d", evicts, len(evicted))
	}

	func() {
		defer func() {
			v, ok := recover().(*WindowViolation)
			if !ok {
				t.Fatalf("reading evicted tick: recovered %v, want *WindowViolation", v)
			}
			if v.Tick != 0 {
				t.Fatalf("violation reports tick %d, want 0", v.Tick)
			}
		}()
		w.Row(0)
	}()
}

// TestWindowViolationAhead pins the strict-window error path on the
// leading edge: a lookup past the reserved span must panic, not silently
// load the rest of the trace.
func TestWindowViolationAhead(t *testing.T) {
	tr := syntheticTrace(1.0, 2, 64, 4)
	w := windowOver(t, tr, WindowConfig{Behind: 2, Ahead: 4})
	if err := w.Advance(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v, ok := recover().(*WindowViolation)
		if !ok {
			t.Fatalf("recovered %v, want *WindowViolation", v)
		}
		if v.Tick != 63 || v.Cursor != 0 {
			t.Fatalf("violation = %+v", v)
		}
		if !strings.Contains(v.Error(), "outside retained window") {
			t.Fatalf("violation message %q", v.Error())
		}
	}()
	w.At(0, 63) // clamps to tick 63, far past the 4-second leading edge
}

// TestWindowCursorMonotone pins that the cursor cannot move backward —
// a sequential stream cannot rewind.
func TestWindowCursorMonotone(t *testing.T) {
	tr := syntheticTrace(1.0, 2, 32, 4)
	w := windowOver(t, tr, WindowConfig{Behind: 2, Ahead: 4})
	if err := w.Advance(10); err != nil {
		t.Fatal(err)
	}
	if err := w.Advance(10); err != nil {
		t.Fatalf("re-advancing to the same tick: %v", err)
	}
	if err := w.Advance(9); err == nil {
		t.Fatal("backward Advance accepted")
	}
}

// TestWindowCorruptionPositioned is the mid-stream corruption fix: decode
// failures surfacing through Advance must carry the chunk index and first
// tick, not just the bare decode error.
func TestWindowCorruptionPositioned(t *testing.T) {
	const (
		vehicles   = 2
		chunkTicks = 4
		ticks      = 16 // 4 full chunks
	)
	tr := syntheticTrace(1.0, vehicles, ticks, chunkTicks)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	chunkBytes := 4 + chunkTicks*vehicles*16
	headerLen := streamHeaderLen

	cases := []struct {
		name      string
		corrupt   func([]byte) []byte
		wantChunk int
	}{
		{
			name: "oversized chunk length mid-stream",
			corrupt: func(b []byte) []byte {
				// Chunk 2's length field claims more ticks than capacity.
				off := headerLen + 2*chunkBytes
				b[off] = 0xff
				return b
			},
			wantChunk: 2,
		},
		{
			name: "stream truncated inside chunk body",
			corrupt: func(b []byte) []byte {
				return b[:headerLen+2*chunkBytes+10]
			},
			wantChunk: 2,
		},
		{
			name: "end marker where chunks remain",
			corrupt: func(b []byte) []byte {
				// Replace chunk 3's length with the end-of-stream marker.
				off := headerLen + 3*chunkBytes
				b[off], b[off+1], b[off+2], b[off+3] = 0, 0, 0, 0
				return b[:off+4]
			},
			wantChunk: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.corrupt(append([]byte(nil), good...))
			cr, err := NewChunkReader(bytes.NewReader(bad))
			if err != nil {
				t.Fatalf("header should still parse: %v", err)
			}
			w := NewWindow(cr, ticks, WindowConfig{Behind: 2, Ahead: 2})
			var advErr error
			for cursor := 0; cursor < ticks && advErr == nil; cursor++ {
				advErr = w.Advance(cursor)
			}
			if advErr == nil {
				t.Fatal("corrupt stream advanced cleanly")
			}
			var ce *ChunkError
			if !errors.As(advErr, &ce) {
				t.Fatalf("error %v is not a *ChunkError", advErr)
			}
			if ce.Chunk != tc.wantChunk {
				t.Fatalf("error names chunk %d, want %d: %v", ce.Chunk, tc.wantChunk, advErr)
			}
			if ce.FirstTick != tc.wantChunk*chunkTicks {
				t.Fatalf("error names first tick %d, want %d", ce.FirstTick, tc.wantChunk*chunkTicks)
			}
			// The window is poisoned: further lookups fail loudly through
			// Window.At with the same positioned error.
			defer func() {
				r := recover()
				var pe *ChunkError
				if err, ok := r.(error); !ok || !errors.As(err, &pe) {
					t.Fatalf("poisoned At recovered %v, want *ChunkError", r)
				}
			}()
			w.At(0, 0)
		})
	}
}

// TestCountTicks pins the header-only pre-scan against traces of assorted
// shapes, including empty and partial-tail streams.
func TestCountTicks(t *testing.T) {
	for _, ticks := range []int{0, 1, 4, 9, 70} {
		tr := syntheticTrace(0.5, 3, ticks, 4)
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := CountTicks(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ticks=%d: %v", ticks, err)
		}
		if got != ticks {
			t.Fatalf("CountTicks = %d, want %d", got, ticks)
		}
	}
	// Truncation is an error, not a short count.
	tr := syntheticTrace(0.5, 3, 12, 4)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := CountTicks(bytes.NewReader(buf.Bytes()[:buf.Len()-6])); err == nil {
		t.Fatal("truncated stream counted cleanly")
	}
}

// TestWindowEmptyTrace mirrors resident zero-value semantics.
func TestWindowEmptyTrace(t *testing.T) {
	tr := NewChunked(0.5, 3, 4)
	w := windowOver(t, tr, WindowConfig{})
	if err := w.Advance(0); err != nil {
		t.Fatal(err)
	}
	if w.NumVehicles() != 0 || w.NumTicks() != 0 {
		t.Fatalf("empty window shape %d×%d", w.NumTicks(), w.NumVehicles())
	}
	if got := w.At(0, 5); got != (geom.Point{}) {
		t.Fatalf("empty At = %v", got)
	}
	if w.RowAt(0) != nil {
		t.Fatal("empty RowAt should be nil")
	}
}

// TestOpenWindowFile covers the file-backed path used by the CLIs and the
// experiment harness.
func TestOpenWindowFile(t *testing.T) {
	tr := syntheticTrace(0.5, 2, 40, 8)
	path := t.TempDir() + "/trace.lbtc"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	w, closer, err := OpenWindowFile(path, WindowConfig{Behind: 2, Ahead: 4, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if w.NumTicks() != 40 || w.NumVehicles() != 2 {
		t.Fatalf("file window shape %d×%d", w.NumTicks(), w.NumVehicles())
	}
	for cursor := 0; cursor < 40; cursor++ {
		if err := w.Advance(cursor); err != nil {
			t.Fatal(err)
		}
		if got, want := w.Row(cursor)[0], tr.Row(cursor)[0]; got != want {
			t.Fatalf("tick %d: %v, want %v", cursor, got, want)
		}
	}
	if _, _, err := OpenWindowFile(path+".missing", WindowConfig{}); err == nil {
		t.Fatal("missing file opened")
	}
}
