package trace

import (
	"bytes"
	"testing"
)

// benchStream encodes a synthetic trace once and hands out fresh readers:
// windows are forward-only, so every benchmark iteration pages through a
// new window over the same bytes.
func benchStream(b *testing.B, vehicles, ticks int) ([]byte, *Trace) {
	b.Helper()
	tr := NewChunked(0.5, vehicles, DefaultChunkTicks)
	for t := 0; t < ticks; t++ {
		row := tr.AppendRow()
		for v := range row {
			row[v].X = float64(t%97) + float64(v)
			row[v].Y = float64(t%89) - float64(v)
		}
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), tr
}

// BenchmarkWindowAdvance pages a window across the whole trace tick by tick
// — the per-engine-tick cost of the streaming source, dominated by chunk
// decode at each seam crossing. The prefetch variant overlaps the decode
// with the ticks before the seam.
func BenchmarkWindowAdvance(b *testing.B) {
	const vehicles, ticks = 64, 4096
	raw, _ := benchStream(b, vehicles, ticks)
	for _, mode := range []struct {
		name     string
		prefetch bool
	}{{"sync", false}, {"prefetch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cr, err := NewChunkReader(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				w := NewWindow(cr, ticks, WindowConfig{Prefetch: mode.prefetch})
				for t := 0; t < ticks; t++ {
					if err := w.Advance(t); err != nil {
						b.Fatal(err)
					}
				}
				w.Close()
			}
		})
	}
}

// BenchmarkWindowRowAt measures the in-window lookup path against the
// resident trace's: after Advance, Row/RowAt must cost the same few
// instructions either way — the window adds one range check and a chunk
// ring lookup, nothing per-vehicle.
func BenchmarkWindowRowAt(b *testing.B) {
	const vehicles, ticks = 64, 1024
	raw, tr := benchStream(b, vehicles, ticks)
	cr, err := NewChunkReader(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	w := NewWindow(cr, ticks, WindowConfig{Behind: 1e9, Ahead: 1e9})
	defer w.Close()
	if err := w.Advance(ticks - 1); err != nil {
		b.Fatal(err)
	}
	for _, src := range []struct {
		name string
		s    Source
	}{{"window", w}, {"resident", tr}} {
		b.Run(src.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				row := src.s.RowAt(float64(i%ticks) * 0.5)
				sink += row[i%vehicles].X
			}
			benchSink = sink
		})
	}
}

var benchSink float64
