package trace

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"lbchat/internal/geom"
)

// benchStream encodes a synthetic trace once and hands out fresh readers:
// windows are forward-only, so every benchmark iteration pages through a
// new window over the same bytes.
func benchStream(b *testing.B, vehicles, ticks int) ([]byte, *Trace) {
	b.Helper()
	tr := NewChunked(0.5, vehicles, DefaultChunkTicks)
	for t := 0; t < ticks; t++ {
		row := tr.AppendRow()
		for v := range row {
			row[v].X = float64(t%97) + float64(v)
			row[v].Y = float64(t%89) - float64(v)
		}
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), tr
}

// BenchmarkWindowAdvance pages a window across the whole trace tick by tick
// — the per-engine-tick cost of the streaming source, dominated by chunk
// decode at each seam crossing. The prefetch variant overlaps the decode
// with the ticks before the seam.
func BenchmarkWindowAdvance(b *testing.B) {
	const vehicles, ticks = 64, 4096
	raw, _ := benchStream(b, vehicles, ticks)
	for _, mode := range []struct {
		name     string
		prefetch bool
	}{{"sync", false}, {"prefetch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cr, err := NewChunkReader(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				w := NewWindow(cr, ticks, WindowConfig{Prefetch: mode.prefetch})
				for t := 0; t < ticks; t++ {
					if err := w.Advance(t); err != nil {
						b.Fatal(err)
					}
				}
				w.Close()
			}
		})
	}
}

// consumeRow is the benchmark's stand-in for the engine's per-tick trace
// reads: a few passes of distance arithmetic over the row, so the cursor
// advances at a realistic rate instead of memory speed — which is what
// gives the adaptive depth a rate to measure against the fetch latency.
func consumeRow(row []geom.Point) float64 {
	var sum float64
	for rep := 0; rep < 16; rep++ {
		for v := range row {
			sum += row[v].Dist(row[0])
		}
	}
	return sum
}

// BenchmarkWindowAdvanceLatency pages the window over a chunk source with
// an injected 3ms per-fetch latency — a stand-in for a chunk server on a
// degraded link — under three policies: no readahead (sync), the old fixed
// one-chunk readahead (depth1), and the adaptive depth (adaptive). The
// per-tick consumer work makes one chunk's worth of ticks cheaper than one
// fetch, so depth-1 stalls at every seam while the adaptive pipeline keeps
// enough fetches in flight to hide the latency; nolat/sync is the
// zero-latency floor the adaptive variant is judged against (EXPERIMENTS.md
// holds the measured table).
func BenchmarkWindowAdvanceLatency(b *testing.B) {
	const vehicles, ticks = 64, 32768
	raw, _ := benchStream(b, vehicles, ticks)
	for _, mode := range []struct {
		name    string
		latency time.Duration
		cfg     WindowConfig
	}{
		{"nolat/sync", 0, WindowConfig{}},
		{"lat3ms/sync", 3 * time.Millisecond, WindowConfig{}},
		{"lat3ms/depth1", 3 * time.Millisecond, WindowConfig{Prefetch: true, PrefetchBudget: 1}},
		{"lat3ms/adaptive", 3 * time.Millisecond, WindowConfig{Prefetch: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var sum float64
			for i := 0; i < b.N; i++ {
				inner, err := NewBytesSource(raw)
				if err != nil {
					b.Fatal(err)
				}
				var src ChunkSource = inner
				if mode.latency > 0 {
					src = &delaySource{ChunkSource: inner, delay: mode.latency}
				}
				w := NewWindowSource(src, mode.cfg)
				for t := 0; t < ticks; t++ {
					if err := w.Advance(t); err != nil {
						b.Fatal(err)
					}
					sum += consumeRow(w.Row(t))
					// The engine's tick is full of scheduling points (shard
					// barriers, worker channels); an unbroken busy loop would
					// starve the prefetch goroutines' timers on a single-core
					// box and measure the scheduler, not the readahead policy.
					// Yielding every few ticks is enough for ms-scale timers.
					if t%16 == 0 {
						runtime.Gosched()
					}
				}
				w.Close()
			}
			benchSink = sum
		})
	}
}

// BenchmarkWindowRowAt measures the in-window lookup path against the
// resident trace's: after Advance, Row/RowAt must cost the same few
// instructions either way — the window adds one range check and a chunk
// ring lookup, nothing per-vehicle.
func BenchmarkWindowRowAt(b *testing.B) {
	const vehicles, ticks = 64, 1024
	raw, tr := benchStream(b, vehicles, ticks)
	cr, err := NewChunkReader(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	w := NewWindow(cr, ticks, WindowConfig{Behind: 1e9, Ahead: 1e9})
	defer w.Close()
	if err := w.Advance(ticks - 1); err != nil {
		b.Fatal(err)
	}
	for _, src := range []struct {
		name string
		s    Source
	}{{"window", w}, {"resident", tr}} {
		b.Run(src.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				row := src.s.RowAt(float64(i%ticks) * 0.5)
				sink += row[i%vehicles].X
			}
			benchSink = sink
		})
	}
}

var benchSink float64
