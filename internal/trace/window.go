package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"lbchat/internal/geom"
)

// Default retained span around the window cursor, in seconds. The engine
// widens the leading side to its actual lookahead (ContactHorizon plus the
// transfer time budget) via Reserve; the defaults only need to cover
// consumers that never call Reserve.
const (
	DefaultWindowBehind = 30.0
	DefaultWindowAhead  = 150.0
)

// DefaultPrefetchBudget bounds the adaptive readahead: the window never
// keeps more than this many chunk fetches in flight, no matter what the
// observed fetch latency asks for. Chosen so a worst-case prefetch pipeline
// stays a small multiple of the retained window itself.
const DefaultPrefetchBudget = 8

// WindowConfig sizes a sliding window.
type WindowConfig struct {
	// Behind and Ahead are the retained span around the cursor in
	// seconds. Non-positive values take the package defaults.
	Behind float64
	Ahead  float64
	// Prefetch reads chunks past the leading edge on background
	// goroutines so a steady-state Advance rarely blocks on fetch or
	// decode. The readahead depth adapts to the observed cursor rate and
	// chunk fetch latency (see DESIGN.md §13), clamped by PrefetchBudget.
	// It never changes results or the telemetry event stream — chunk
	// operations are reported through the side-channel observer only, and
	// always from the Advance goroutine.
	Prefetch bool
	// PrefetchBudget caps the in-flight fetch count; 0 takes
	// DefaultPrefetchBudget, 1 pins the fixed one-chunk readahead.
	PrefetchBudget int
}

// ChunkOpKind classifies a window chunk operation.
type ChunkOpKind uint8

const (
	// OpLoad: a chunk was decoded and added to the retained window.
	OpLoad ChunkOpKind = iota
	// OpEvict: a chunk fell behind the trailing edge and was recycled.
	OpEvict
	// OpPrefetch: a background read of an upcoming chunk was issued.
	OpPrefetch
)

// String names the operation for telemetry labels.
func (k ChunkOpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpEvict:
		return "evict"
	case OpPrefetch:
		return "prefetch"
	}
	return fmt.Sprintf("ChunkOpKind(%d)", uint8(k))
}

// ChunkOp describes one window chunk operation for the side-channel
// observer: which chunk, how many ticks it covers, how many chunks the
// window retains after the operation, and — for loads and prefetch issues —
// how the adaptive fetch pipeline behaved.
type ChunkOp struct {
	Kind     ChunkOpKind
	Chunk    int
	Ticks    int
	Resident int
	// Depth is the prefetch depth in effect when the operation happened
	// (1 when prefetch is off).
	Depth int
	// Retries counts transport-level retries the chunk's fetch needed
	// (loads only; always zero for local sources).
	Retries int
	// WaitNs is how long Advance blocked waiting for this chunk's fetch
	// (loads only): zero means the prefetcher fully hid the fetch.
	WaitNs int64
}

// WindowViolation is the panic value raised when a lookup reaches outside
// the retained window — the strict-window error path. It means the
// consumer's Reserve span does not cover its actual lookahead (or it
// forgot to Advance), which must fail loudly instead of silently loading
// the trace resident.
type WindowViolation struct {
	// Tick is the out-of-window tick that was requested; Lo and Hi bound
	// the retained ticks and Cursor is the last Advance position.
	Tick, Lo, Hi, Cursor int
}

func (v *WindowViolation) Error() string {
	return fmt.Sprintf("trace: tick %d outside retained window [%d, %d] (cursor at tick %d)",
		v.Tick, v.Lo, v.Hi, v.Cursor)
}

// ChunkError annotates a chunk fetch or decode failure with its stream
// position so mid-stream corruption (or a failing chunk server) reports
// where the trace broke, not just how.
type ChunkError struct {
	// Chunk is the chunk index in the stream; FirstTick the first tick it
	// covers.
	Chunk, FirstTick int
	// Err is the underlying fetch or decode error.
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("trace: chunk %d (first tick %d): %v", e.Chunk, e.FirstTick, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// fetchResult carries a background chunk fetch back to Advance.
type fetchResult struct {
	pts     []geom.Point
	ticks   int
	retries int
	latency time.Duration
	err     error
}

// ewmaAlpha weighs new fetch-latency and cursor-rate samples; high enough
// to track a phase change within a few chunks, low enough not to thrash on
// one slow fetch.
const ewmaAlpha = 0.3

// Window is a bounded sliding-window Source over a ChunkSource: it keeps
// only the chunks covering [cursor−Behind, cursor+Ahead], evicting behind
// the cursor and loading (or prefetching) ahead, so a full co-simulation's
// trace working set is O(window) chunks regardless of trace length — and
// regardless of whether chunks come from a local file or a remote chunk
// server (internal/traceserve).
//
// The cursor moves forward only: Advance must be called with
// non-decreasing ticks, and lookups outside the retained span panic with
// *WindowViolation. Window methods are not safe for concurrent use — the
// engine reads positions only from its serial tick phases, which is what
// makes the single-goroutine contract (plus the internal prefetch
// handshake) sound.
type Window struct {
	src        ChunkSource
	totalTicks int
	dt         float64
	vehicles   int
	chunkTicks int
	numChunks  int

	behindTicks int
	aheadTicks  int
	prefetch    bool
	budget      int

	advanced bool
	cursor   int
	lo       int // first retained chunk index
	next     int // next chunk index Advance will deliver; retained = [lo, next)
	issued   int // next chunk index the prefetcher will issue; inflight = [next, issued)
	chunks   [][]geom.Point
	free     [][]geom.Point
	inflight map[int]chan fetchResult
	onOp     func(ChunkOp)
	err      error // sticky load error; poisons the window

	// Adaptive-depth state: the prefetch depth is re-derived every Advance
	// from the observed cursor rate (ticks/s of wall time, stall time
	// excluded) and chunk fetch latency, then clamped by the budget.
	depth       int
	latEWMA     float64 // seconds per chunk fetch
	rateEWMA    float64 // cursor ticks per wall second
	lastAdv     time.Time
	lastAdvTick int
	stallNs     int64         // fetch-wait time since the last rate sample
	stalled     bool          // a load blocked since the last depth update
	crossedSeam bool          // a chunk was loaded since the last depth update
	lastWait    time.Duration // most recent load's blocking time

	loads, evicts, prefetches int
	retries                   int
	waitNs                    int64
}

// NewWindowSource wraps a random-access ChunkSource in a sliding window.
// The source's total tick count sizes the window's chunk arithmetic.
func NewWindowSource(src ChunkSource, cfg WindowConfig) *Window {
	if cfg.Behind <= 0 {
		cfg.Behind = DefaultWindowBehind
	}
	if cfg.Ahead <= 0 {
		cfg.Ahead = DefaultWindowAhead
	}
	if cfg.PrefetchBudget <= 0 {
		cfg.PrefetchBudget = DefaultPrefetchBudget
	}
	w := &Window{
		src:        src,
		totalTicks: src.NumTicks(),
		dt:         src.DT(),
		vehicles:   src.NumVehicles(),
		chunkTicks: src.ChunkTicks(),
		prefetch:   cfg.Prefetch,
		budget:     cfg.PrefetchBudget,
		depth:      1,
		inflight:   make(map[int]chan fetchResult),
	}
	w.numChunks = NumChunks(w.totalTicks, w.chunkTicks)
	w.Reserve(cfg.Behind, cfg.Ahead)
	return w
}

// NewWindow wraps a positioned ChunkReader (fresh from NewChunkReader) in
// a sliding window over totalTicks ticks. The LBTC header does not carry a
// total tick count, so the caller supplies it — from the recorder that
// produced the stream, or via CountTicks over a seekable file. Prefetches
// against a sequential reader pipeline in stream order; random-access
// sources (OpenFileSource, traceserve.Dial) fetch concurrently.
func NewWindow(cr *ChunkReader, totalTicks int, cfg WindowConfig) *Window {
	return NewWindowSource(NewSequentialSource(cr, totalTicks), cfg)
}

// DT returns the tick interval in seconds.
func (w *Window) DT() float64 { return w.dt }

// NumTicks returns the underlying trace's total tick count.
func (w *Window) NumTicks() int { return w.totalTicks }

// NumVehicles returns the vehicle count (0 for an empty trace).
func (w *Window) NumVehicles() int {
	if w.totalTicks == 0 {
		return 0
	}
	return w.vehicles
}

// ChunkTicks returns the stream's chunk capacity in ticks.
func (w *Window) ChunkTicks() int { return w.chunkTicks }

// Duration returns the trace's covered time span in seconds.
func (w *Window) Duration() float64 { return float64(w.totalTicks) * w.dt }

// Reserve widens the retained span to at least behind/ahead seconds around
// the cursor (non-positive arguments leave the corresponding side alone).
// It never shrinks the span, so independent consumers can each state their
// own lookahead.
func (w *Window) Reserve(behind, ahead float64) {
	if t := secondsToTicks(behind, w.dt); t > w.behindTicks {
		w.behindTicks = t
	}
	if t := secondsToTicks(ahead, w.dt); t > w.aheadTicks {
		w.aheadTicks = t
	}
}

// secondsToTicks converts a span to whole ticks, rounding up.
func secondsToTicks(s, dt float64) int {
	if s <= 0 || dt <= 0 {
		return 0
	}
	t := int(s / dt)
	if float64(t)*dt < s {
		t++
	}
	return t
}

// SetChunkObserver installs the side-channel callback invoked on every
// chunk load, evict, and prefetch issue. Calls always happen on the
// goroutine driving Advance, in a deterministic order.
func (w *Window) SetChunkObserver(fn func(ChunkOp)) { w.onOp = fn }

// Stats returns the window's lifetime chunk-operation counts
// (loads, evicts, prefetch issues).
func (w *Window) Stats() (loads, evicts, prefetches int) {
	return w.loads, w.evicts, w.prefetches
}

// FetchStats returns the window's lifetime fetch-pipeline counters: total
// transport retries across all chunk fetches, and the total time Advance
// spent blocked waiting for fetches.
func (w *Window) FetchStats() (retries int, waitNs int64) {
	return w.retries, w.waitNs
}

// PrefetchDepth returns the current adaptive readahead depth (1 when
// prefetch is off or nothing has been measured yet).
func (w *Window) PrefetchDepth() int { return w.depth }

// Advance moves the cursor to the given tick (clamped to the trace
// extent), loading chunks up to the leading edge and evicting those fully
// behind the trailing edge. The cursor is monotone: moving it backward is
// an error. A chunk fetch failure is returned as a *ChunkError and
// poisons the window.
func (w *Window) Advance(tick int) error {
	if w.err != nil {
		return w.err
	}
	if w.totalTicks == 0 {
		return nil
	}
	if tick < 0 {
		tick = 0
	}
	if tick >= w.totalTicks {
		tick = w.totalTicks - 1
	}
	if w.advanced && tick < w.cursor {
		return fmt.Errorf("trace: window cursor moved backward to tick %d (cursor at %d)", tick, w.cursor)
	}
	if w.prefetch {
		w.observeRate(tick)
	}
	w.advanced = true
	w.cursor = tick

	loTick := tick - w.behindTicks
	if loTick < 0 {
		loTick = 0
	}
	hiTick := tick + w.aheadTicks
	if hiTick >= w.totalTicks {
		hiTick = w.totalTicks - 1
	}
	wantLo, wantHi := loTick/w.chunkTicks, hiTick/w.chunkTicks

	for w.next <= wantHi {
		if err := w.loadNext(); err != nil {
			w.err = err
			return err
		}
	}
	for w.lo < wantLo && w.lo < w.next {
		w.evictFront()
	}
	if w.prefetch {
		w.updateDepth()
		w.issuePrefetches()
	}
	return nil
}

// observeRate folds the cursor's advance rate (ticks per wall second,
// excluding time spent blocked on fetches) into its EWMA. Wall time feeds
// only the prefetch depth — results and the telemetry event stream are
// identical no matter what the clock says.
func (w *Window) observeRate(tick int) {
	now := time.Now()
	if !w.lastAdv.IsZero() && tick > w.lastAdvTick {
		elapsed := now.Sub(w.lastAdv) - time.Duration(w.stallNs)
		if elapsed > 0 {
			rate := float64(tick-w.lastAdvTick) / elapsed.Seconds()
			if w.rateEWMA == 0 {
				w.rateEWMA = rate
			} else {
				w.rateEWMA += ewmaAlpha * (rate - w.rateEWMA)
			}
		}
		w.lastAdv, w.lastAdvTick, w.stallNs = now, tick, 0
	} else if w.lastAdv.IsZero() {
		w.lastAdv, w.lastAdvTick = now, tick
	}
}

// observeLatency folds one fetch-latency sample into its EWMA.
func (w *Window) observeLatency(d time.Duration) {
	s := d.Seconds()
	if w.latEWMA == 0 {
		w.latEWMA = s
	} else {
		w.latEWMA += ewmaAlpha * (s - w.latEWMA)
	}
}

// updateDepth re-derives the adaptive readahead depth: enough in-flight
// fetches to cover the chunks the cursor will cross during one fetch
// latency (latency × rate / chunkTicks), plus one for the seam in
// progress; bumped past the current depth whenever a load still blocked,
// and clamped to [1, budget].
func (w *Window) updateDepth() {
	target := 1
	if w.latEWMA > 0 && w.rateEWMA > 0 {
		target = 1 + int(math.Ceil(w.latEWMA*w.rateEWMA/float64(w.chunkTicks)))
	}
	if w.stalled {
		if t := w.depth + 1; t > target {
			target = t
		}
		w.stalled = false
	}
	// Grow to the target at once, but decay at most one step per chunk
	// crossed: Advance runs every tick, so letting each of the hundreds of
	// intra-chunk updates step the depth down would collapse the pipeline
	// microseconds after one fast rate sample. A too-deep readahead wastes
	// a little memory; a too-shallow one stalls the cursor for a full
	// fetch latency.
	if target < w.depth {
		if w.crossedSeam {
			target = w.depth - 1
		} else {
			target = w.depth
		}
	}
	w.crossedSeam = false
	if target > w.budget {
		target = w.budget
	}
	if target < 1 {
		target = 1
	}
	w.depth = target
}

// loadNext appends chunk w.next to the retained window, absorbing its
// in-flight prefetch if one was issued, or fetching synchronously.
func (w *Window) loadNext() error {
	idx := w.next
	var res fetchResult
	if ch, ok := w.inflight[idx]; ok {
		start := time.Now()
		res = <-ch
		wait := time.Since(start)
		delete(w.inflight, idx)
		// res.latency keeps the goroutine's full fetch duration: the depth
		// target must plan for what a fetch truly costs, not for the wait a
		// lucky prefetch happened to hide — feeding hidden (near-zero) waits
		// into the EWMA collapses the depth and reintroduces the stalls.
		w.noteWait(wait)
	} else {
		start := time.Now()
		cf, err := w.src.ReadChunk(idx, w.grabBuf(idx))
		res = fetchResult{pts: cf.Pts, ticks: cf.Ticks, retries: cf.Retries, err: err, latency: time.Since(start)}
		w.noteWait(res.latency)
	}
	if res.err != nil {
		return &ChunkError{Chunk: idx, FirstTick: idx * w.chunkTicks, Err: res.err}
	}
	if want := w.ticksIn(idx); res.ticks != want {
		return &ChunkError{Chunk: idx, FirstTick: idx * w.chunkTicks,
			Err: fmt.Errorf("chunk holds %d ticks, expected %d", res.ticks, want)}
	}
	w.observeLatency(res.latency)
	w.retries += res.retries
	w.chunks = append(w.chunks, res.pts)
	w.next++
	if w.issued < w.next {
		w.issued = w.next
	}
	w.loads++
	w.crossedSeam = true
	w.emit(ChunkOp{Kind: OpLoad, Chunk: idx, Ticks: w.ticksIn(idx), Resident: len(w.chunks),
		Depth: w.depth, Retries: res.retries, WaitNs: w.lastWaitNs()})
	return nil
}

// noteWait records time Advance spent blocked on a fetch, feeding the
// stall accounting that keeps the rate EWMA honest and the depth bump.
func (w *Window) noteWait(d time.Duration) {
	w.lastWait = d
	if d <= 0 {
		return
	}
	w.waitNs += d.Nanoseconds()
	w.stallNs += d.Nanoseconds()
	w.stalled = true
}

// lastWait is the most recent load's blocking time, surfaced on its
// ChunkOp.
func (w *Window) lastWaitNs() int64 { return w.lastWait.Nanoseconds() }

// evictFront recycles the oldest retained chunk.
func (w *Window) evictFront() {
	idx := w.lo
	buf := w.chunks[0]
	copy(w.chunks, w.chunks[1:])
	w.chunks = w.chunks[:len(w.chunks)-1]
	w.free = append(w.free, buf)
	w.lo++
	w.evicts++
	w.emit(ChunkOp{Kind: OpEvict, Chunk: idx, Ticks: w.ticksIn(idx), Resident: len(w.chunks), Depth: w.depth})
}

// issuePrefetches tops the fetch pipeline up to the current depth:
// background reads of chunks [issued, …) until depth fetches are in
// flight or the stream ends. Buffers are taken from the free list on this
// goroutine; each background read touches only the ChunkSource and its
// private buffer.
func (w *Window) issuePrefetches() {
	for len(w.inflight) < w.depth && w.issued < w.numChunks {
		idx := w.issued
		buf := w.grabBuf(idx)
		ch := make(chan fetchResult, 1)
		w.inflight[idx] = ch
		w.issued++
		w.prefetches++
		w.emit(ChunkOp{Kind: OpPrefetch, Chunk: idx, Ticks: w.ticksIn(idx), Resident: len(w.chunks), Depth: w.depth})
		go func() {
			start := time.Now()
			cf, err := w.src.ReadChunk(idx, buf)
			ch <- fetchResult{pts: cf.Pts, ticks: cf.Ticks, retries: cf.Retries, err: err, latency: time.Since(start)}
		}()
	}
}

// grabBuf returns a recycled (or fresh) buffer sized for chunk idx.
func (w *Window) grabBuf(idx int) []geom.Point {
	n := w.ticksIn(idx) * w.vehicles
	if l := len(w.free); l > 0 {
		buf := w.free[l-1]
		w.free = w.free[:l-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]geom.Point, n)
}

// ticksIn returns the tick count of chunk idx (the tail chunk may be
// short).
func (w *Window) ticksIn(idx int) int {
	if rem := w.totalTicks - idx*w.chunkTicks; rem < w.chunkTicks {
		return rem
	}
	return w.chunkTicks
}

func (w *Window) emit(op ChunkOp) {
	if w.onOp != nil {
		w.onOp(op)
	}
}

// Close drains outstanding prefetches so no background read races the
// underlying source's teardown. It does not close the source —
// OpenWindowFile's closer owns that.
func (w *Window) Close() error {
	for idx, ch := range w.inflight {
		<-ch
		delete(w.inflight, idx)
	}
	return nil
}

// Row returns every vehicle's position at the given tick as one contiguous
// slice, valid until the next Advance. Ticks outside the retained window
// panic with *WindowViolation.
func (w *Window) Row(tick int) []geom.Point {
	if w.err != nil {
		panic(w.err)
	}
	c := tick / w.chunkTicks
	if tick < 0 || tick >= w.totalTicks || c < w.lo || c >= w.next {
		panic(&WindowViolation{Tick: tick, Lo: w.lo * w.chunkTicks, Hi: w.next*w.chunkTicks - 1, Cursor: w.cursor})
	}
	chunk := w.chunks[c-w.lo]
	off := (tick - c*w.chunkTicks) * w.vehicles
	return chunk[off : off+w.vehicles]
}

// RowAt is Row addressed by time (clamped to the trace extent, snapped to
// a tick), mirroring the resident trace.
func (w *Window) RowAt(t float64) []geom.Point {
	if w.totalTicks == 0 {
		return nil
	}
	return w.Row(clampTick(t, w.dt, w.totalTicks))
}

// At returns the position of vehicle v at time t (clamped, snapped to a
// tick). The snapped tick must be inside the retained window.
func (w *Window) At(v int, t float64) geom.Point {
	if w.totalTicks == 0 {
		return geom.Point{}
	}
	return w.Row(clampTick(t, w.dt, w.totalTicks))[v]
}

// Distance returns the distance between vehicles a and b at time t.
func (w *Window) Distance(a, b int, t float64) float64 {
	if w.totalTicks == 0 {
		return 0
	}
	row := w.Row(clampTick(t, w.dt, w.totalTicks))
	return row[a].Dist(row[b])
}

// Neighbors returns the vehicles within commRange of vehicle v at time t.
func (w *Window) Neighbors(v int, t float64, commRange float64) []int {
	return sourceNeighbors(w, v, t, commRange)
}

// ContactDuration estimates how long vehicles a and b remain within
// commRange from time t, capped at horizon seconds; identical to the
// resident implementation (both delegate to one helper).
func (w *Window) ContactDuration(a, b int, t, commRange, horizon float64) float64 {
	return sourceContactDuration(w, a, b, t, commRange, horizon)
}

// Validate performs basic structural checks on the window's header-derived
// shape.
func (w *Window) Validate() error {
	if w.dt <= 0 {
		return fmt.Errorf("trace: non-positive tick interval %g", w.dt)
	}
	if w.chunkTicks <= 0 {
		return fmt.Errorf("trace: non-positive chunk capacity %d", w.chunkTicks)
	}
	if w.totalTicks > 0 && w.vehicles <= 0 {
		return fmt.Errorf("trace: %d ticks of %d vehicles", w.totalTicks, w.vehicles)
	}
	return nil
}

// CountTicks scans a seekable LBTC stream and returns its total tick
// count, seeking over chunk bodies so the cost is header-sized reads per
// chunk. The stream position is left after the end marker; callers reseek
// before handing the stream to NewChunkReader.
func CountTicks(rs io.ReadSeeker) (int, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("trace: seeking stream start: %w", err)
	}
	head := make([]byte, streamHeaderLen)
	if _, err := io.ReadFull(rs, head); err != nil {
		return 0, fmt.Errorf("trace: reading stream header: %w", err)
	}
	_, vehicles, chunkTicks, err := decodeStreamHeader(head)
	if err != nil {
		return 0, err
	}
	total := 0
	var lenBuf [4]byte
	for chunk := 0; ; chunk++ {
		if _, err := io.ReadFull(rs, lenBuf[:]); err != nil {
			return 0, &ChunkError{Chunk: chunk, FirstTick: total,
				Err: fmt.Errorf("reading chunk length: %w", err)}
		}
		n := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if n == 0 {
			return total, nil
		}
		if n > chunkTicks {
			return 0, &ChunkError{Chunk: chunk, FirstTick: total,
				Err: fmt.Errorf("chunk of %d ticks exceeds capacity %d", n, chunkTicks)}
		}
		if _, err := rs.Seek(int64(n)*int64(vehicles)*16, io.SeekCurrent); err != nil {
			return 0, &ChunkError{Chunk: chunk, FirstTick: total,
				Err: fmt.Errorf("seeking over chunk body: %w", err)}
		}
		total += n
	}
}

// OpenWindowFile opens an LBTC trace file as a bounded sliding window over
// a random-access file source (chunk offsets indexed once at open). The
// returned closer owns the file handle (and drains the window's
// prefetches) — close it when the window is done.
func OpenWindowFile(path string, cfg WindowConfig) (*Window, io.Closer, error) {
	src, err := OpenFileSource(path)
	if err != nil {
		return nil, nil, err
	}
	w := NewWindowSource(src, cfg)
	return w, &windowCloser{w: w, src: src}, nil
}

// windowCloser ties a window's prefetch drain to its backing source.
type windowCloser struct {
	w   *Window
	src ChunkSource
}

func (c *windowCloser) Close() error {
	c.w.Close()
	return c.src.Close()
}
