package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"lbchat/internal/geom"
)

// Default retained span around the window cursor, in seconds. The engine
// widens the leading side to its actual lookahead (ContactHorizon plus the
// transfer time budget) via Reserve; the defaults only need to cover
// consumers that never call Reserve.
const (
	DefaultWindowBehind = 30.0
	DefaultWindowAhead  = 150.0
)

// WindowConfig sizes a sliding window.
type WindowConfig struct {
	// Behind and Ahead are the retained span around the cursor in
	// seconds. Non-positive values take the package defaults.
	Behind float64
	Ahead  float64
	// Prefetch reads the chunk just past the leading edge on a background
	// goroutine so a steady-state Advance rarely blocks on decode. It
	// never changes results or the telemetry event stream — chunk
	// operations are reported through the side-channel observer only, and
	// always from the Advance goroutine.
	Prefetch bool
}

// ChunkOpKind classifies a window chunk operation.
type ChunkOpKind uint8

const (
	// OpLoad: a chunk was decoded and added to the retained window.
	OpLoad ChunkOpKind = iota
	// OpEvict: a chunk fell behind the trailing edge and was recycled.
	OpEvict
	// OpPrefetch: a background read of the next chunk was issued.
	OpPrefetch
)

// String names the operation for telemetry labels.
func (k ChunkOpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpEvict:
		return "evict"
	case OpPrefetch:
		return "prefetch"
	}
	return fmt.Sprintf("ChunkOpKind(%d)", uint8(k))
}

// ChunkOp describes one window chunk operation for the side-channel
// observer: which chunk, how many ticks it covers, and how many chunks the
// window retains after the operation.
type ChunkOp struct {
	Kind     ChunkOpKind
	Chunk    int
	Ticks    int
	Resident int
}

// WindowViolation is the panic value raised when a lookup reaches outside
// the retained window — the strict-window error path. It means the
// consumer's Reserve span does not cover its actual lookahead (or it
// forgot to Advance), which must fail loudly instead of silently loading
// the trace resident.
type WindowViolation struct {
	// Tick is the out-of-window tick that was requested; Lo and Hi bound
	// the retained ticks and Cursor is the last Advance position.
	Tick, Lo, Hi, Cursor int
}

func (v *WindowViolation) Error() string {
	return fmt.Sprintf("trace: tick %d outside retained window [%d, %d] (cursor at tick %d)",
		v.Tick, v.Lo, v.Hi, v.Cursor)
}

// ChunkError annotates a chunk decode failure with its stream position so
// mid-stream corruption reports where the trace broke, not just how.
type ChunkError struct {
	// Chunk is the chunk index in the stream; FirstTick the first tick it
	// covers.
	Chunk, FirstTick int
	// Err is the underlying decode error.
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("trace: chunk %d (first tick %d): %v", e.Chunk, e.FirstTick, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// prefetched carries a background chunk read back to Advance.
type prefetched struct {
	pts []geom.Point
	err error
}

// Window is a bounded sliding-window Source over a ChunkReader: it keeps
// only the chunks covering [cursor−Behind, cursor+Ahead], evicting behind
// the cursor and loading (or prefetching) ahead, so a full co-simulation's
// trace working set is O(window) chunks regardless of trace length.
//
// The cursor moves forward only: Advance must be called with
// non-decreasing ticks, and lookups outside the retained span panic with
// *WindowViolation. Window methods are not safe for concurrent use — the
// engine reads positions only from its serial tick phases, which is what
// makes the single-goroutine contract (plus the internal prefetch
// handshake) sound.
type Window struct {
	cr         *ChunkReader
	totalTicks int
	dt         float64
	vehicles   int
	chunkTicks int
	numChunks  int

	behindTicks int
	aheadTicks  int
	prefetch    bool

	advanced bool
	cursor   int
	lo       int // first retained chunk index
	next     int // next chunk index the reader will yield; retained = [lo, next)
	chunks   [][]geom.Point
	free     [][]geom.Point
	pending  chan prefetched // outstanding background read of chunk `next`
	onOp     func(ChunkOp)
	err      error // sticky load error; poisons the window

	loads, evicts, prefetches int
}

// NewWindow wraps a positioned ChunkReader (fresh from NewChunkReader) in
// a sliding window over totalTicks ticks. The LBTC header does not carry a
// total tick count, so the caller supplies it — from the recorder that
// produced the stream, or via CountTicks over a seekable file.
func NewWindow(cr *ChunkReader, totalTicks int, cfg WindowConfig) *Window {
	if totalTicks < 0 {
		totalTicks = 0
	}
	if cfg.Behind <= 0 {
		cfg.Behind = DefaultWindowBehind
	}
	if cfg.Ahead <= 0 {
		cfg.Ahead = DefaultWindowAhead
	}
	w := &Window{
		cr:         cr,
		totalTicks: totalTicks,
		dt:         cr.DT(),
		vehicles:   cr.NumVehicles(),
		chunkTicks: cr.ChunkTicks(),
		prefetch:   cfg.Prefetch,
	}
	w.numChunks = (totalTicks + w.chunkTicks - 1) / w.chunkTicks
	w.Reserve(cfg.Behind, cfg.Ahead)
	return w
}

// DT returns the tick interval in seconds.
func (w *Window) DT() float64 { return w.dt }

// NumTicks returns the underlying trace's total tick count.
func (w *Window) NumTicks() int { return w.totalTicks }

// NumVehicles returns the vehicle count (0 for an empty trace).
func (w *Window) NumVehicles() int {
	if w.totalTicks == 0 {
		return 0
	}
	return w.vehicles
}

// ChunkTicks returns the stream's chunk capacity in ticks.
func (w *Window) ChunkTicks() int { return w.chunkTicks }

// Duration returns the trace's covered time span in seconds.
func (w *Window) Duration() float64 { return float64(w.totalTicks) * w.dt }

// Reserve widens the retained span to at least behind/ahead seconds around
// the cursor (non-positive arguments leave the corresponding side alone).
// It never shrinks the span, so independent consumers can each state their
// own lookahead.
func (w *Window) Reserve(behind, ahead float64) {
	if t := secondsToTicks(behind, w.dt); t > w.behindTicks {
		w.behindTicks = t
	}
	if t := secondsToTicks(ahead, w.dt); t > w.aheadTicks {
		w.aheadTicks = t
	}
}

// secondsToTicks converts a span to whole ticks, rounding up.
func secondsToTicks(s, dt float64) int {
	if s <= 0 || dt <= 0 {
		return 0
	}
	t := int(s / dt)
	if float64(t)*dt < s {
		t++
	}
	return t
}

// SetChunkObserver installs the side-channel callback invoked on every
// chunk load, evict, and prefetch issue. Calls always happen on the
// goroutine driving Advance, in a deterministic order.
func (w *Window) SetChunkObserver(fn func(ChunkOp)) { w.onOp = fn }

// Stats returns the window's lifetime chunk-operation counts
// (loads, evicts, prefetch issues).
func (w *Window) Stats() (loads, evicts, prefetches int) {
	return w.loads, w.evicts, w.prefetches
}

// Advance moves the cursor to the given tick (clamped to the trace
// extent), loading chunks up to the leading edge and evicting those fully
// behind the trailing edge. The cursor is monotone: moving it backward is
// an error. A chunk decode failure is returned as a *ChunkError and
// poisons the window.
func (w *Window) Advance(tick int) error {
	if w.err != nil {
		return w.err
	}
	if w.totalTicks == 0 {
		return nil
	}
	if tick < 0 {
		tick = 0
	}
	if tick >= w.totalTicks {
		tick = w.totalTicks - 1
	}
	if w.advanced && tick < w.cursor {
		return fmt.Errorf("trace: window cursor moved backward to tick %d (cursor at %d)", tick, w.cursor)
	}
	w.advanced = true
	w.cursor = tick

	loTick := tick - w.behindTicks
	if loTick < 0 {
		loTick = 0
	}
	hiTick := tick + w.aheadTicks
	if hiTick >= w.totalTicks {
		hiTick = w.totalTicks - 1
	}
	wantLo, wantHi := loTick/w.chunkTicks, hiTick/w.chunkTicks

	for w.next <= wantHi {
		if err := w.loadNext(); err != nil {
			w.err = err
			return err
		}
	}
	for w.lo < wantLo && w.lo < w.next {
		w.evictFront()
	}
	if w.prefetch && w.pending == nil && w.next < w.numChunks {
		w.issuePrefetch()
	}
	return nil
}

// loadNext appends chunk w.next to the retained window, absorbing an
// outstanding prefetch if one covers it.
func (w *Window) loadNext() error {
	idx := w.next
	var buf []geom.Point
	if w.pending != nil {
		res := <-w.pending
		w.pending = nil
		if res.err != nil {
			return res.err
		}
		buf = res.pts
	} else {
		var err error
		buf, err = w.readChunk(idx, w.grabBuf(idx))
		if err != nil {
			return err
		}
	}
	w.chunks = append(w.chunks, buf)
	w.next++
	w.loads++
	w.emit(ChunkOp{Kind: OpLoad, Chunk: idx, Ticks: w.ticksIn(idx), Resident: len(w.chunks)})
	return nil
}

// evictFront recycles the oldest retained chunk.
func (w *Window) evictFront() {
	idx := w.lo
	buf := w.chunks[0]
	copy(w.chunks, w.chunks[1:])
	w.chunks = w.chunks[:len(w.chunks)-1]
	w.free = append(w.free, buf)
	w.lo++
	w.evicts++
	w.emit(ChunkOp{Kind: OpEvict, Chunk: idx, Ticks: w.ticksIn(idx), Resident: len(w.chunks)})
}

// issuePrefetch starts a background read of chunk w.next. The buffer is
// taken from the free list on this goroutine, so the background read
// touches only the ChunkReader and its private buffer; Advance absorbs the
// result (blocking if necessary) before it reads the stream again.
func (w *Window) issuePrefetch() {
	idx := w.next
	buf := w.grabBuf(idx)
	ch := make(chan prefetched, 1)
	w.pending = ch
	w.prefetches++
	w.emit(ChunkOp{Kind: OpPrefetch, Chunk: idx, Ticks: w.ticksIn(idx), Resident: len(w.chunks)})
	go func() {
		pts, err := w.readChunk(idx, buf)
		ch <- prefetched{pts: pts, err: err}
	}()
}

// readChunk decodes the next stream chunk (expected to be chunk idx) into
// buf, annotating any failure with the chunk's stream position.
func (w *Window) readChunk(idx int, buf []geom.Point) ([]geom.Point, error) {
	pts, ticks, err := w.cr.Next()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("stream ended %d chunks early", w.numChunks-idx)
		}
		return nil, &ChunkError{Chunk: idx, FirstTick: idx * w.chunkTicks, Err: err}
	}
	if want := w.ticksIn(idx); ticks != want {
		return nil, &ChunkError{Chunk: idx, FirstTick: idx * w.chunkTicks,
			Err: fmt.Errorf("chunk holds %d ticks, expected %d", ticks, want)}
	}
	buf = buf[:len(pts)]
	copy(buf, pts)
	return buf, nil
}

// grabBuf returns a recycled (or fresh) buffer sized for chunk idx.
func (w *Window) grabBuf(idx int) []geom.Point {
	n := w.ticksIn(idx) * w.vehicles
	if l := len(w.free); l > 0 {
		buf := w.free[l-1]
		w.free = w.free[:l-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]geom.Point, n)
}

// ticksIn returns the tick count of chunk idx (the tail chunk may be
// short).
func (w *Window) ticksIn(idx int) int {
	if rem := w.totalTicks - idx*w.chunkTicks; rem < w.chunkTicks {
		return rem
	}
	return w.chunkTicks
}

func (w *Window) emit(op ChunkOp) {
	if w.onOp != nil {
		w.onOp(op)
	}
}

// Close drains any outstanding prefetch so no background read races the
// underlying reader's teardown. It does not close the reader's underlying
// stream — OpenWindowFile's closer owns that.
func (w *Window) Close() error {
	if w.pending != nil {
		<-w.pending
		w.pending = nil
	}
	return nil
}

// Row returns every vehicle's position at the given tick as one contiguous
// slice, valid until the next Advance. Ticks outside the retained window
// panic with *WindowViolation.
func (w *Window) Row(tick int) []geom.Point {
	if w.err != nil {
		panic(w.err)
	}
	c := tick / w.chunkTicks
	if tick < 0 || tick >= w.totalTicks || c < w.lo || c >= w.next {
		panic(&WindowViolation{Tick: tick, Lo: w.lo * w.chunkTicks, Hi: w.next*w.chunkTicks - 1, Cursor: w.cursor})
	}
	chunk := w.chunks[c-w.lo]
	off := (tick - c*w.chunkTicks) * w.vehicles
	return chunk[off : off+w.vehicles]
}

// RowAt is Row addressed by time (clamped to the trace extent, snapped to
// a tick), mirroring the resident trace.
func (w *Window) RowAt(t float64) []geom.Point {
	if w.totalTicks == 0 {
		return nil
	}
	return w.Row(clampTick(t, w.dt, w.totalTicks))
}

// At returns the position of vehicle v at time t (clamped, snapped to a
// tick). The snapped tick must be inside the retained window.
func (w *Window) At(v int, t float64) geom.Point {
	if w.totalTicks == 0 {
		return geom.Point{}
	}
	return w.Row(clampTick(t, w.dt, w.totalTicks))[v]
}

// Distance returns the distance between vehicles a and b at time t.
func (w *Window) Distance(a, b int, t float64) float64 {
	if w.totalTicks == 0 {
		return 0
	}
	row := w.Row(clampTick(t, w.dt, w.totalTicks))
	return row[a].Dist(row[b])
}

// Neighbors returns the vehicles within commRange of vehicle v at time t.
func (w *Window) Neighbors(v int, t float64, commRange float64) []int {
	return sourceNeighbors(w, v, t, commRange)
}

// ContactDuration estimates how long vehicles a and b remain within
// commRange from time t, capped at horizon seconds; identical to the
// resident implementation (both delegate to one helper).
func (w *Window) ContactDuration(a, b int, t, commRange, horizon float64) float64 {
	return sourceContactDuration(w, a, b, t, commRange, horizon)
}

// Validate performs basic structural checks on the window's header-derived
// shape.
func (w *Window) Validate() error {
	if w.dt <= 0 {
		return fmt.Errorf("trace: non-positive tick interval %g", w.dt)
	}
	if w.chunkTicks <= 0 {
		return fmt.Errorf("trace: non-positive chunk capacity %d", w.chunkTicks)
	}
	if w.totalTicks > 0 && w.vehicles <= 0 {
		return fmt.Errorf("trace: %d ticks of %d vehicles", w.totalTicks, w.vehicles)
	}
	return nil
}

// CountTicks scans a seekable LBTC stream and returns its total tick
// count, seeking over chunk bodies so the cost is header-sized reads per
// chunk. The stream position is left after the end marker; callers reseek
// before handing the stream to NewChunkReader.
func CountTicks(rs io.ReadSeeker) (int, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("trace: seeking stream start: %w", err)
	}
	head := make([]byte, streamHeaderLen)
	if _, err := io.ReadFull(rs, head); err != nil {
		return 0, fmt.Errorf("trace: reading stream header: %w", err)
	}
	_, vehicles, chunkTicks, err := decodeStreamHeader(head)
	if err != nil {
		return 0, err
	}
	total := 0
	var lenBuf [4]byte
	for chunk := 0; ; chunk++ {
		if _, err := io.ReadFull(rs, lenBuf[:]); err != nil {
			return 0, &ChunkError{Chunk: chunk, FirstTick: total,
				Err: fmt.Errorf("reading chunk length: %w", err)}
		}
		n := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if n == 0 {
			return total, nil
		}
		if n > chunkTicks {
			return 0, &ChunkError{Chunk: chunk, FirstTick: total,
				Err: fmt.Errorf("chunk of %d ticks exceeds capacity %d", n, chunkTicks)}
		}
		if _, err := rs.Seek(int64(n)*int64(vehicles)*16, io.SeekCurrent); err != nil {
			return 0, &ChunkError{Chunk: chunk, FirstTick: total,
				Err: fmt.Errorf("seeking over chunk body: %w", err)}
		}
		total += n
	}
}

// OpenWindowFile opens an LBTC trace file as a bounded sliding window,
// counting its ticks with a header-only pre-scan. The returned closer owns
// the file handle (and drains the window's prefetch) — close it when the
// window is done.
func OpenWindowFile(path string, cfg WindowConfig) (*Window, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	ticks, err := CountTicks(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("trace: counting ticks in %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("trace: rewinding %s: %w", path, err)
	}
	cr, err := NewChunkReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w := NewWindow(cr, ticks, cfg)
	return w, &windowCloser{w: w, f: f}, nil
}

// windowCloser ties a window's prefetch drain to its backing file handle.
type windowCloser struct {
	w *Window
	f *os.File
}

func (c *windowCloser) Close() error {
	c.w.Close()
	return c.f.Close()
}
