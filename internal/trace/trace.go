package trace

import (
	"fmt"

	"lbchat/internal/geom"
	"lbchat/internal/world"
)

// DefaultChunkTicks is the tick capacity of one columnar chunk. 256 ticks
// of a 10k-vehicle fleet is a 40 MB chunk — big enough that chunk-boundary
// bookkeeping is noise, small enough that a streaming consumer holds only a
// bounded window in memory.
const DefaultChunkTicks = 256

// Trace holds the positions of n vehicles over time at a fixed tick
// interval, stored columnar and chunked: each chunk is one flat
// []geom.Point backing array covering up to chunkTicks ticks, laid out
// row-major ([tick][vehicle]). Appending a tick never allocates a per-tick
// slice — a row is carved out of the current chunk — and a whole tick's
// positions are one contiguous subslice (Row), which is what the engine's
// encounter scans iterate.
//
// Construct with New, FromRows, Record, or ReadTrace; the zero value is an
// empty trace with an invalid tick interval.
//
// Trace is the trivial whole-trace Source implementation: every tick is
// resident, so Advance is free and At never fails.
type Trace struct {
	dt         float64
	vehicles   int
	chunkTicks int
	ticks      int
	chunks     [][]geom.Point
}

// New returns an empty trace for the given vehicle count and tick interval,
// using the default chunk size.
func New(dt float64, vehicles int) *Trace {
	return NewChunked(dt, vehicles, DefaultChunkTicks)
}

// NewChunked is New with an explicit chunk capacity in ticks (useful in
// tests that exercise chunk boundaries). Non-positive chunkTicks falls back
// to DefaultChunkTicks.
func NewChunked(dt float64, vehicles, chunkTicks int) *Trace {
	if chunkTicks <= 0 {
		chunkTicks = DefaultChunkTicks
	}
	if vehicles < 0 {
		vehicles = 0
	}
	return &Trace{dt: dt, vehicles: vehicles, chunkTicks: chunkTicks}
}

// FromRows builds a trace from per-tick position rows (all rows must share
// one length). It is the replacement for constructing the old struct
// literal with a [][]geom.Point.
func FromRows(dt float64, rows [][]geom.Point) *Trace {
	vehicles := 0
	if len(rows) > 0 {
		vehicles = len(rows[0])
	}
	tr := New(dt, vehicles)
	for _, row := range rows {
		if len(row) != vehicles {
			panic(fmt.Sprintf("trace: ragged row of %d positions, expected %d", len(row), vehicles))
		}
		copy(tr.AppendRow(), row)
	}
	return tr
}

// AppendRow extends the trace by one tick and returns the new row's backing
// slice (length NumVehicles) for the caller to fill in place. The row lives
// inside the current chunk: steady-state appends allocate nothing, and one
// chunk backing array is allocated every chunkTicks ticks.
func (tr *Trace) AppendRow() []geom.Point {
	inChunk := tr.ticks % tr.chunkTicks
	if inChunk == 0 {
		tr.chunks = append(tr.chunks, make([]geom.Point, 0, tr.chunkTicks*tr.vehicles))
	}
	c := len(tr.chunks) - 1
	chunk := tr.chunks[c][: (inChunk+1)*tr.vehicles : tr.chunkTicks*tr.vehicles]
	tr.chunks[c] = chunk
	tr.ticks++
	return chunk[inChunk*tr.vehicles:]
}

// Record steps the world for ticks intervals of dt seconds, recording expert
// positions each tick. The world is advanced in place.
func Record(w *world.World, ticks int, dt float64) *Trace {
	tr := New(dt, len(w.Experts))
	for t := 0; t < ticks; t++ {
		w.Step(dt)
		row := tr.AppendRow()
		for i, v := range w.Experts {
			row[i] = v.Pos()
		}
	}
	return tr
}

// RecordStream is Record writing through a ChunkWriter instead of building
// a resident trace: identical world stepping, identical positions, but the
// recording's working set is one chunk. The caller owns cw and must Close
// it to flush the tail chunk.
func RecordStream(w *world.World, ticks int, dt float64, cw *ChunkWriter) error {
	for t := 0; t < ticks; t++ {
		w.Step(dt)
		row := cw.AppendRow()
		if row == nil {
			return fmt.Errorf("trace: stream writer failed at tick %d: %w", t, cw.Close())
		}
		for i, v := range w.Experts {
			row[i] = v.Pos()
		}
	}
	return nil
}

// DT returns the tick interval in seconds.
func (tr *Trace) DT() float64 { return tr.dt }

// NumTicks returns the number of recorded ticks.
func (tr *Trace) NumTicks() int { return tr.ticks }

// NumVehicles returns the vehicle count (0 for an empty trace).
func (tr *Trace) NumVehicles() int {
	if tr.ticks == 0 {
		return 0
	}
	return tr.vehicles
}

// ChunkTicks returns the trace's chunk capacity in ticks.
func (tr *Trace) ChunkTicks() int { return tr.chunkTicks }

// Duration returns the trace's covered time span in seconds.
func (tr *Trace) Duration() float64 { return float64(tr.ticks) * tr.dt }

// Advance is the Source window contract; a resident trace keeps every tick
// loaded, so it is a no-op.
func (tr *Trace) Advance(tick int) error { return nil }

// tickFor clamps a time to the trace extent and snaps it to a tick.
func (tr *Trace) tickFor(t float64) int {
	return clampTick(t, tr.dt, tr.ticks)
}

// clampTick snaps a time to a tick index, clamped to [0, ticks-1]. It is
// the one place this arithmetic lives so every Source implementation snaps
// identically — bit-identical A/B streams depend on it.
func clampTick(t, dt float64, ticks int) int {
	tick := int(t / dt)
	if tick < 0 {
		tick = 0
	}
	if tick >= ticks {
		tick = ticks - 1
	}
	return tick
}

// Row returns the positions of every vehicle at the given tick as one
// contiguous subslice of the backing chunk. Callers must not modify or
// retain it across appends.
func (tr *Trace) Row(tick int) []geom.Point {
	chunk := tr.chunks[tick/tr.chunkTicks]
	off := (tick % tr.chunkTicks) * tr.vehicles
	return chunk[off : off+tr.vehicles]
}

// RowAt is Row addressed by time (clamped to the trace extent, snapped to
// the nearest tick), mirroring At.
func (tr *Trace) RowAt(t float64) []geom.Point {
	if tr.ticks == 0 {
		return nil
	}
	return tr.Row(tr.tickFor(t))
}

// At returns the position of vehicle v at time t (clamped to the trace
// extent, snapped to the nearest tick).
func (tr *Trace) At(v int, t float64) geom.Point {
	if tr.ticks == 0 {
		return geom.Point{}
	}
	return tr.Row(tr.tickFor(t))[v]
}

// Distance returns the distance between vehicles a and b at time t.
func (tr *Trace) Distance(a, b int, t float64) float64 {
	if tr.ticks == 0 {
		return 0
	}
	row := tr.Row(tr.tickFor(t))
	return row[a].Dist(row[b])
}

// Neighbors returns the vehicles within commRange of vehicle v at time t.
func (tr *Trace) Neighbors(v int, t float64, commRange float64) []int {
	return sourceNeighbors(tr, v, t, commRange)
}

// ContactDuration estimates how long vehicles a and b will remain within
// commRange starting from time t, by replaying their shared future routes
// (the paper's vehicles exchange their next-few-minutes routes from the
// navigation service). The estimate is capped at horizon seconds.
func (tr *Trace) ContactDuration(a, b int, t, commRange, horizon float64) float64 {
	return sourceContactDuration(tr, a, b, t, commRange, horizon)
}

// Validate performs basic structural checks. The columnar layout makes
// ragged ticks unconstructible through the API, so the remaining checks are
// on the scalar invariants.
func (tr *Trace) Validate() error {
	if tr.dt <= 0 {
		return fmt.Errorf("trace: non-positive tick interval %g", tr.dt)
	}
	if tr.ticks > 0 && tr.chunkTicks <= 0 {
		return fmt.Errorf("trace: non-positive chunk capacity %d", tr.chunkTicks)
	}
	for c, chunk := range tr.chunks {
		want := tr.chunkTicks * tr.vehicles
		if c == len(tr.chunks)-1 {
			if rem := tr.ticks - c*tr.chunkTicks; rem < tr.chunkTicks {
				want = rem * tr.vehicles
			}
		}
		if len(chunk) != want {
			return fmt.Errorf("trace: chunk %d holds %d positions, expected %d", c, len(chunk), want)
		}
	}
	return nil
}
