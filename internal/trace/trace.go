package trace

import (
	"fmt"

	"lbchat/internal/geom"
	"lbchat/internal/world"
)

// Trace holds the positions of n vehicles over time at a fixed tick
// interval.
type Trace struct {
	// DT is the tick interval in seconds.
	DT float64
	// Positions[t][v] is the position of vehicle v at tick t.
	Positions [][]geom.Point
}

// Record steps the world for ticks intervals of dt seconds, recording expert
// positions each tick. The world is advanced in place.
func Record(w *world.World, ticks int, dt float64) *Trace {
	tr := &Trace{DT: dt, Positions: make([][]geom.Point, 0, ticks)}
	for t := 0; t < ticks; t++ {
		w.Step(dt)
		snap := make([]geom.Point, len(w.Experts))
		for i, v := range w.Experts {
			snap[i] = v.Pos()
		}
		tr.Positions = append(tr.Positions, snap)
	}
	return tr
}

// NumTicks returns the number of recorded ticks.
func (tr *Trace) NumTicks() int { return len(tr.Positions) }

// NumVehicles returns the vehicle count (0 for an empty trace).
func (tr *Trace) NumVehicles() int {
	if len(tr.Positions) == 0 {
		return 0
	}
	return len(tr.Positions[0])
}

// Duration returns the trace's covered time span in seconds.
func (tr *Trace) Duration() float64 { return float64(len(tr.Positions)) * tr.DT }

// At returns the position of vehicle v at time t (clamped to the trace
// extent, snapped to the nearest tick).
func (tr *Trace) At(v int, t float64) geom.Point {
	if len(tr.Positions) == 0 {
		return geom.Point{}
	}
	tick := int(t / tr.DT)
	if tick < 0 {
		tick = 0
	}
	if tick >= len(tr.Positions) {
		tick = len(tr.Positions) - 1
	}
	return tr.Positions[tick][v]
}

// Distance returns the distance between vehicles a and b at time t.
func (tr *Trace) Distance(a, b int, t float64) float64 {
	return tr.At(a, t).Dist(tr.At(b, t))
}

// Neighbors returns the vehicles within commRange of vehicle v at time t.
func (tr *Trace) Neighbors(v int, t float64, commRange float64) []int {
	var out []int
	for o := 0; o < tr.NumVehicles(); o++ {
		if o == v {
			continue
		}
		if tr.Distance(v, o, t) <= commRange {
			out = append(out, o)
		}
	}
	return out
}

// ContactDuration estimates how long vehicles a and b will remain within
// commRange starting from time t, by replaying their shared future routes
// (the paper's vehicles exchange their next-few-minutes routes from the
// navigation service). The estimate is capped at horizon seconds.
func (tr *Trace) ContactDuration(a, b int, t, commRange, horizon float64) float64 {
	if tr.Distance(a, b, t) > commRange {
		return 0
	}
	end := t + horizon
	if traceEnd := tr.Duration(); end > traceEnd {
		end = traceEnd
	}
	for u := t; u < end; u += tr.DT {
		if tr.Distance(a, b, u) > commRange {
			return u - t
		}
	}
	return end - t
}

// Validate performs basic structural checks.
func (tr *Trace) Validate() error {
	if tr.DT <= 0 {
		return fmt.Errorf("trace: non-positive tick interval %g", tr.DT)
	}
	n := tr.NumVehicles()
	for t, snap := range tr.Positions {
		if len(snap) != n {
			return fmt.Errorf("trace: tick %d has %d vehicles, expected %d", t, len(snap), n)
		}
	}
	return nil
}
