package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"lbchat/internal/geom"
)

// Stream format ("LBTC", little-endian throughout):
//
//	header:  magic "LBTC" | uint32 version | float64 dt |
//	         uint32 vehicles | uint32 chunkTicks
//	chunk:   uint32 ticksInChunk | ticksInChunk*vehicles × (float64 x, float64 y)
//	footer:  uint32 0 (a zero-tick chunk marks end of stream)
//
// Chunks arrive in tick order; every chunk except the last carries exactly
// chunkTicks ticks. The format is self-delimiting, so traces can be framed
// inside a larger stream.
const (
	streamMagic   = "LBTC"
	streamVersion = 1
)

// ChunkWriter streams trace chunks to an io.Writer so a recording can be
// spilled incrementally instead of held resident. Rows are appended with
// AppendRow (same contract as Trace.AppendRow); full chunks are flushed as
// they complete, and Close flushes the tail chunk plus the end-of-stream
// marker.
type ChunkWriter struct {
	w          *bufio.Writer
	dt         float64
	vehicles   int
	chunkTicks int
	buf        []geom.Point // current partial chunk, row-major
	ticks      int          // ticks written overall (committed + buffered)
	scratch    []byte
	headerOK   bool
	closed     bool
	err        error
}

// NewChunkWriter returns a writer streaming to w. Non-positive chunkTicks
// falls back to DefaultChunkTicks. The header is written lazily on the
// first append (or Close), so constructing a writer is infallible.
func NewChunkWriter(w io.Writer, dt float64, vehicles, chunkTicks int) *ChunkWriter {
	if chunkTicks <= 0 {
		chunkTicks = DefaultChunkTicks
	}
	if vehicles < 0 {
		vehicles = 0
	}
	return &ChunkWriter{
		w:          bufio.NewWriter(w),
		dt:         dt,
		vehicles:   vehicles,
		chunkTicks: chunkTicks,
		buf:        make([]geom.Point, 0, chunkTicks*vehicles),
	}
}

// AppendRow extends the stream by one tick and returns the row's backing
// slice (length vehicles) for the caller to fill in place before the next
// AppendRow or Close call. Appending after Close, or after a write error,
// returns nil.
func (cw *ChunkWriter) AppendRow() []geom.Point {
	if cw.err != nil || cw.closed {
		return nil
	}
	if len(cw.buf) == cw.chunkTicks*cw.vehicles && cw.vehicles > 0 {
		cw.flushChunk()
		if cw.err != nil {
			return nil
		}
	}
	off := len(cw.buf)
	cw.buf = cw.buf[: off+cw.vehicles : cw.chunkTicks*cw.vehicles]
	cw.ticks++
	return cw.buf[off:]
}

// NumTicks returns the number of rows appended so far.
func (cw *ChunkWriter) NumTicks() int { return cw.ticks }

func (cw *ChunkWriter) writeHeader() {
	if cw.headerOK || cw.err != nil {
		return
	}
	if _, err := cw.w.WriteString(streamMagic); err != nil {
		cw.err = err
		return
	}
	cw.scratch = binary.LittleEndian.AppendUint32(cw.scratch[:0], streamVersion)
	cw.scratch = binary.LittleEndian.AppendUint64(cw.scratch, math.Float64bits(cw.dt))
	cw.scratch = binary.LittleEndian.AppendUint32(cw.scratch, uint32(cw.vehicles))
	cw.scratch = binary.LittleEndian.AppendUint32(cw.scratch, uint32(cw.chunkTicks))
	_, cw.err = cw.w.Write(cw.scratch)
	cw.headerOK = true
}

func (cw *ChunkWriter) flushChunk() {
	cw.writeHeader()
	if cw.err != nil {
		return
	}
	ticksInChunk := 0
	if cw.vehicles > 0 {
		ticksInChunk = len(cw.buf) / cw.vehicles
	}
	if ticksInChunk == 0 {
		return
	}
	cw.scratch = binary.LittleEndian.AppendUint32(cw.scratch[:0], uint32(ticksInChunk))
	for _, p := range cw.buf {
		cw.scratch = binary.LittleEndian.AppendUint64(cw.scratch, math.Float64bits(p.X))
		cw.scratch = binary.LittleEndian.AppendUint64(cw.scratch, math.Float64bits(p.Y))
	}
	_, cw.err = cw.w.Write(cw.scratch)
	cw.buf = cw.buf[:0]
}

// Close flushes the partial tail chunk and the end-of-stream marker. It is
// idempotent; the first error encountered anywhere in the stream's life is
// returned.
func (cw *ChunkWriter) Close() error {
	if cw.closed {
		return cw.err
	}
	cw.closed = true
	cw.flushChunk()
	cw.writeHeader()
	if cw.err == nil {
		cw.scratch = binary.LittleEndian.AppendUint32(cw.scratch[:0], 0)
		_, cw.err = cw.w.Write(cw.scratch)
	}
	if cw.err == nil {
		cw.err = cw.w.Flush()
	}
	return cw.err
}

// ChunkReader streams trace chunks from an io.Reader. Next returns each
// chunk's rows without retaining previous chunks, so a consumer's working
// set is one chunk regardless of trace length.
type ChunkReader struct {
	r          *bufio.Reader
	dt         float64
	vehicles   int
	chunkTicks int
	buf        []geom.Point
	scratch    []byte
	done       bool
}

// streamHeaderLen is the encoded size of the LBTC header.
const streamHeaderLen = len(streamMagic) + 4 + 8 + 4 + 4

// decodeStreamHeader parses and validates an encoded LBTC header.
func decodeStreamHeader(head []byte) (dt float64, vehicles, chunkTicks int, err error) {
	if string(head[:4]) != streamMagic {
		return 0, 0, 0, fmt.Errorf("trace: bad stream magic %q", head[:4])
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version != streamVersion {
		return 0, 0, 0, fmt.Errorf("trace: unsupported stream version %d", version)
	}
	dt = math.Float64frombits(binary.LittleEndian.Uint64(head[8:]))
	vehicles = int(binary.LittleEndian.Uint32(head[16:]))
	chunkTicks = int(binary.LittleEndian.Uint32(head[20:]))
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return 0, 0, 0, fmt.Errorf("trace: stream header carries invalid dt %g", dt)
	}
	if chunkTicks <= 0 {
		return 0, 0, 0, fmt.Errorf("trace: stream header carries invalid chunk capacity %d", chunkTicks)
	}
	return dt, vehicles, chunkTicks, nil
}

// NewChunkReader parses the stream header and returns a reader positioned
// at the first chunk.
func NewChunkReader(r io.Reader) (*ChunkReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, streamHeaderLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading stream header: %w", err)
	}
	dt, vehicles, chunkTicks, err := decodeStreamHeader(head)
	if err != nil {
		return nil, err
	}
	return &ChunkReader{r: br, dt: dt, vehicles: vehicles, chunkTicks: chunkTicks}, nil
}

// DT returns the stream's tick interval.
func (cr *ChunkReader) DT() float64 { return cr.dt }

// NumVehicles returns the stream's vehicle count.
func (cr *ChunkReader) NumVehicles() int { return cr.vehicles }

// ChunkTicks returns the stream's chunk capacity in ticks.
func (cr *ChunkReader) ChunkTicks() int { return cr.chunkTicks }

// Next returns the next chunk's positions (row-major, ticksInChunk ×
// vehicles) and its tick count, or io.EOF after the end-of-stream marker.
// The returned slice is reused by the following Next call.
func (cr *ChunkReader) Next() ([]geom.Point, int, error) {
	if cr.done {
		return nil, 0, io.EOF
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(cr.r, lenBuf[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: reading chunk length: %w", err)
	}
	ticksInChunk := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if ticksInChunk == 0 {
		cr.done = true
		return nil, 0, io.EOF
	}
	if ticksInChunk > cr.chunkTicks {
		return nil, 0, fmt.Errorf("trace: chunk of %d ticks exceeds capacity %d", ticksInChunk, cr.chunkTicks)
	}
	n := ticksInChunk * cr.vehicles
	if cap(cr.scratch) < n*16 {
		cr.scratch = make([]byte, n*16)
	}
	raw := cr.scratch[:n*16]
	if _, err := io.ReadFull(cr.r, raw); err != nil {
		return nil, 0, fmt.Errorf("trace: reading chunk body: %w", err)
	}
	if cap(cr.buf) < n {
		cr.buf = make([]geom.Point, n)
	}
	pts := cr.buf[:n]
	for i := range pts {
		pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
		pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
	}
	return pts, ticksInChunk, nil
}

// Encode streams the trace through a ChunkWriter onto w, preserving the
// trace's chunk capacity.
func (tr *Trace) Encode(w io.Writer) error {
	cw := NewChunkWriter(w, tr.dt, tr.vehicles, tr.chunkTicks)
	for t := 0; t < tr.ticks; t++ {
		copy(cw.AppendRow(), tr.Row(t))
	}
	return cw.Close()
}

// ReadTrace materializes a streamed trace back into memory.
func ReadTrace(r io.Reader) (*Trace, error) {
	cr, err := NewChunkReader(r)
	if err != nil {
		return nil, err
	}
	tr := NewChunked(cr.DT(), cr.NumVehicles(), cr.ChunkTicks())
	for {
		pts, ticksInChunk, err := cr.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		for t := 0; t < ticksInChunk; t++ {
			copy(tr.AppendRow(), pts[t*cr.NumVehicles():(t+1)*cr.NumVehicles()])
		}
	}
}
